package buckwild

import (
	"os"
	"testing"
)

func TestParseSignature(t *testing.T) {
	sig, err := ParseSignature("D8M8")
	if err != nil {
		t.Fatal(err)
	}
	if sig.String() != "D8M8" {
		t.Errorf("round-trip: %v", sig)
	}
	if _, err := ParseSignature("bogus"); err == nil {
		t.Error("bad signature should fail")
	}
}

func TestPredictThroughput(t *testing.T) {
	sig, _ := ParseSignature("D8M8")
	one, err := PredictThroughput(sig, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := PredictThroughput(sig, 1<<20, 18)
	if err != nil {
		t.Fatal(err)
	}
	if !(one > 0 && many > one) {
		t.Errorf("throughputs: 1t=%v 18t=%v", one, many)
	}
}

func TestTrainDenseFacade(t *testing.T) {
	ds, err := GenerateDense("D8M8", 64, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{
		Signature: "D8M8",
		Threads:   2,
		Epochs:    4,
		StepSize:  0.1,
		Seed:      2,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.9 {
		t.Errorf("training did not converge: %v", res.TrainLoss)
	}
}

func TestTrainSparseFacade(t *testing.T) {
	ds, err := GenerateSparse("D8i16M8", 512, 1000, 0.03, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainSparse(Config{
		Signature: "D8i16M8",
		Epochs:    6,
		StepSize:  0.2,
		Seed:      4,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.95 {
		t.Errorf("sparse training did not converge: %v", res.TrainLoss)
	}
}

func TestFacadeValidation(t *testing.T) {
	dense, _ := GenerateDense("D8M8", 16, 10, 1)
	if _, err := TrainDense(Config{Signature: "D8i8M8"}, dense); err == nil {
		t.Error("sparse signature on dense data should fail")
	}
	if _, err := TrainDense(Config{Signature: "D8M8", Problem: "kmeans"}, dense); err == nil {
		t.Error("unknown problem should fail")
	}
	if _, err := TrainDense(Config{Signature: "D8M8", Rounding: "coin-flip"}, dense); err == nil {
		t.Error("unknown rounding should fail")
	}
	if _, err := GenerateSparse("D8M8", 16, 10, 0.5, 1); err == nil {
		t.Error("dense signature for sparse generation should fail")
	}
	sp, _ := GenerateSparse("D8i16M8", 64, 10, 0.1, 1)
	if _, err := TrainSparse(Config{Signature: "D8i32M8"}, sp); err == nil {
		t.Error("index precision mismatch should fail")
	}
	if _, err := TrainDense(Config{Signature: "D12M12"}, dense); err == nil {
		t.Error("unsupported precision should fail")
	}
}

func TestRoundingOptions(t *testing.T) {
	ds, err := GenerateDense("D8M8", 32, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Rounding{Biased, UnbiasedMT, UnbiasedXorshift, UnbiasedShared} {
		if _, err := TrainDense(Config{Signature: "D8M8", Rounding: r, Epochs: 1}, ds); err != nil {
			t.Errorf("rounding %q failed: %v", r, err)
		}
	}
}

func TestSimulateThroughputFacade(t *testing.T) {
	r8, err := SimulateThroughput("D8M8", 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := SimulateThroughput("D32fM32f", 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r8.GNPS <= r32.GNPS {
		t.Errorf("8-bit (%v) should beat float (%v)", r8.GNPS, r32.GNPS)
	}
	if _, err := SimulateThroughput("nope", 100, 1); err == nil {
		t.Error("bad signature should fail")
	}
}

func TestFullPrecisionDefaults(t *testing.T) {
	ds, err := GenerateDense("", 32, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{Epochs: 3}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Error("default full-precision run did not improve")
	}
}

func TestGradientTermInSignature(t *testing.T) {
	ds, err := GenerateDense("D8M8G10", 64, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{Signature: "D8M8G10", Epochs: 4, StepSize: 0.1}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Error("G10 training did not improve")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ds, err := GenerateDense("D8M8", 32, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{Signature: "D8M8", Epochs: 3, StepSize: 0.1}, ds)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := SaveModelFile(path, "D8M8", res.W); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Signature != "D8M8" || len(m.Weights) != 32 {
		t.Fatalf("loaded model wrong: %s, %d weights", m.Signature, len(m.Weights))
	}
	for i := range m.Weights {
		if m.Weights[i] != res.W[i] {
			t.Fatal("weights changed in round trip")
		}
	}
	// Predictions agree with direct evaluation.
	margin, err := m.PredictDense(ds.Raw[0])
	if err != nil {
		t.Fatal(err)
	}
	var want float32
	for j, v := range ds.Raw[0] {
		want += res.W[j] * v
	}
	if margin != want {
		t.Errorf("PredictDense = %v, want %v", margin, want)
	}
	sparseMargin, err := m.Predict([]int32{0, 5}, []float32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sparseMargin != res.W[0]+2*res.W[5] {
		t.Errorf("sparse Predict = %v", sparseMargin)
	}
}

func TestModelIOErrors(t *testing.T) {
	if err := SaveModelFile(t.TempDir()+"/x.gob", "D8M8", nil); err == nil {
		t.Error("empty model should fail")
	}
	if err := SaveModelFile(t.TempDir()+"/x.gob", "bogus", []float32{1}); err == nil {
		t.Error("bad signature should fail")
	}
	if _, err := LoadModelFile("/nonexistent/model.gob"); err == nil {
		t.Error("missing file should fail")
	}
	m := &SavedModel{Weights: []float32{1, 2}}
	if _, err := m.Predict([]int32{5}, []float32{1}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := m.Predict([]int32{0, 1}, []float32{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := m.PredictDense([]float32{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestLoadLibSVMFacade(t *testing.T) {
	path := t.TempDir() + "/data.libsvm"
	content := "+1 1:0.5 3:0.25\n-1 2:-0.5\n+1 1:0.25 2:0.125 3:-0.25\n"
	if err := osWriteFile(path, content); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadLibSVM(path, "D8i16M8")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.N != 3 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.N)
	}
	if _, err := LoadLibSVM(path, "D8M8"); err == nil {
		t.Error("dense signature should fail")
	}
	if _, err := LoadLibSVM("/nonexistent", "D8i16M8"); err == nil {
		t.Error("missing file should fail")
	}
}

// osWriteFile is a tiny helper to keep the os import localized.
func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestTrainSyncFacade(t *testing.T) {
	ds, err := GenerateDense("", 64, 1024, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainSync(SyncConfig{
		CommBits:       1,
		Workers:        4,
		BatchPerWorker: 4,
		ErrorFeedback:  true,
		Epochs:         4,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.9 {
		t.Errorf("1-bit sync training did not converge: %v", res.TrainLoss)
	}
	if _, err := TrainSync(SyncConfig{Problem: "kmeans", CommBits: 8}, ds); err == nil {
		t.Error("unknown problem should fail")
	}
	if _, err := TrainSync(SyncConfig{CommBits: 0}, ds); err == nil {
		t.Error("zero CommBits should fail")
	}
}
