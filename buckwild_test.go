package buckwild

import (
	"os"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParseSignature(t *testing.T) {
	sig, err := ParseSignature("D8M8")
	if err != nil {
		t.Fatal(err)
	}
	if sig.String() != "D8M8" {
		t.Errorf("round-trip: %v", sig)
	}
	if _, err := ParseSignature("bogus"); err == nil {
		t.Error("bad signature should fail")
	}
}

func TestPredictThroughput(t *testing.T) {
	sig, _ := ParseSignature("D8M8")
	one, err := PredictThroughput(sig, 1<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := PredictThroughput(sig, 1<<20, 18)
	if err != nil {
		t.Fatal(err)
	}
	if !(one > 0 && many > one) {
		t.Errorf("throughputs: 1t=%v 18t=%v", one, many)
	}
}

func TestTrainDenseFacade(t *testing.T) {
	ds, err := GenerateDense("D8M8", 64, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{
		Signature: "D8M8",
		Threads:   2,
		Epochs:    4,
		StepSize:  0.1,
		Seed:      2,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.9 {
		t.Errorf("training did not converge: %v", res.TrainLoss)
	}
}

func TestTrainSparseFacade(t *testing.T) {
	ds, err := GenerateSparse("D8i16M8", 512, 1000, 0.03, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainSparse(Config{
		Signature: "D8i16M8",
		Epochs:    6,
		StepSize:  0.2,
		Seed:      4,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.95 {
		t.Errorf("sparse training did not converge: %v", res.TrainLoss)
	}
}

func TestFacadeValidation(t *testing.T) {
	dense, _ := GenerateDense("D8M8", 16, 10, 1)
	if _, err := TrainDense(Config{Signature: "D8i8M8"}, dense); err == nil {
		t.Error("sparse signature on dense data should fail")
	}
	if _, err := TrainDense(Config{Signature: "D8M8", Problem: "kmeans"}, dense); err == nil {
		t.Error("unknown problem should fail")
	}
	if _, err := TrainDense(Config{Signature: "D8M8", Rounding: "coin-flip"}, dense); err == nil {
		t.Error("unknown rounding should fail")
	}
	if _, err := GenerateSparse("D8M8", 16, 10, 0.5, 1); err == nil {
		t.Error("dense signature for sparse generation should fail")
	}
	sp, _ := GenerateSparse("D8i16M8", 64, 10, 0.1, 1)
	if _, err := TrainSparse(Config{Signature: "D8i32M8"}, sp); err == nil {
		t.Error("index precision mismatch should fail")
	}
	if _, err := TrainDense(Config{Signature: "D12M12"}, dense); err == nil {
		t.Error("unsupported precision should fail")
	}
}

func TestRoundingOptions(t *testing.T) {
	ds, err := GenerateDense("D8M8", 32, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []Rounding{Biased, UnbiasedMT, UnbiasedXorshift, UnbiasedShared} {
		if _, err := TrainDense(Config{Signature: "D8M8", Rounding: r, Epochs: 1}, ds); err != nil {
			t.Errorf("rounding %q failed: %v", r, err)
		}
	}
}

func TestSimulateThroughputFacade(t *testing.T) {
	r8, err := SimulateThroughput("D8M8", 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	r32, err := SimulateThroughput("D32fM32f", 1<<16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r8.GNPS <= r32.GNPS {
		t.Errorf("8-bit (%v) should beat float (%v)", r8.GNPS, r32.GNPS)
	}
	if _, err := SimulateThroughput("nope", 100, 1); err == nil {
		t.Error("bad signature should fail")
	}
}

func TestFullPrecisionDefaults(t *testing.T) {
	ds, err := GenerateDense("", 32, 300, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{Epochs: 3}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Error("default full-precision run did not improve")
	}
}

func TestGradientTermInSignature(t *testing.T) {
	ds, err := GenerateDense("D8M8G10", 64, 500, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{Signature: "D8M8G10", Epochs: 4, StepSize: 0.1}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Error("G10 training did not improve")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	ds, err := GenerateDense("D8M8", 32, 300, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainDense(Config{Signature: "D8M8", Epochs: 3, StepSize: 0.1}, ds)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := SaveModelFile(path, "D8M8", res.W); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Signature != "D8M8" || len(m.Weights) != 32 {
		t.Fatalf("loaded model wrong: %s, %d weights", m.Signature, len(m.Weights))
	}
	for i := range m.Weights {
		if m.Weights[i] != res.W[i] {
			t.Fatal("weights changed in round trip")
		}
	}
	// Predictions agree with direct evaluation.
	margin, err := m.PredictDense(ds.Raw[0])
	if err != nil {
		t.Fatal(err)
	}
	var want float32
	for j, v := range ds.Raw[0] {
		want += res.W[j] * v
	}
	if margin != want {
		t.Errorf("PredictDense = %v, want %v", margin, want)
	}
	sparseMargin, err := m.Predict([]int32{0, 5}, []float32{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sparseMargin != res.W[0]+2*res.W[5] {
		t.Errorf("sparse Predict = %v", sparseMargin)
	}
}

func TestModelIOErrors(t *testing.T) {
	if err := SaveModelFile(t.TempDir()+"/x.gob", "D8M8", nil); err == nil {
		t.Error("empty model should fail")
	}
	if err := SaveModelFile(t.TempDir()+"/x.gob", "bogus", []float32{1}); err == nil {
		t.Error("bad signature should fail")
	}
	if _, err := LoadModelFile("/nonexistent/model.gob"); err == nil {
		t.Error("missing file should fail")
	}
	m := &SavedModel{Weights: []float32{1, 2}}
	if _, err := m.Predict([]int32{5}, []float32{1}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := m.Predict([]int32{0, 1}, []float32{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := m.PredictDense([]float32{1}); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestLoadLibSVMFacade(t *testing.T) {
	path := t.TempDir() + "/data.libsvm"
	content := "+1 1:0.5 3:0.25\n-1 2:-0.5\n+1 1:0.25 2:0.125 3:-0.25\n"
	if err := osWriteFile(path, content); err != nil {
		t.Fatal(err)
	}
	ds, err := LoadLibSVM(path, "D8i16M8")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.N != 3 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.N)
	}
	if _, err := LoadLibSVM(path, "D8M8"); err == nil {
		t.Error("dense signature should fail")
	}
	if _, err := LoadLibSVM("/nonexistent", "D8i16M8"); err == nil {
		t.Error("missing file should fail")
	}
}

// osWriteFile is a tiny helper to keep the os import localized.
func osWriteFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestTrainSyncFacade(t *testing.T) {
	ds, err := GenerateDense("", 64, 1024, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainSync(SyncConfig{
		CommBits:       1,
		Workers:        4,
		BatchPerWorker: 4,
		ErrorFeedback:  true,
		Epochs:         4,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.9 {
		t.Errorf("1-bit sync training did not converge: %v", res.TrainLoss)
	}
	if _, err := TrainSync(SyncConfig{Problem: "kmeans", CommBits: 8}, ds); err == nil {
		t.Error("unknown problem should fail")
	}
	if _, err := TrainSync(SyncConfig{CommBits: 0}, ds); err == nil {
		t.Error("zero CommBits should fail")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Signature: "bogus"},
		{Problem: "ridge"},
		{Rounding: "unbiased-quantum"},
		{Threads: -1},
		{MiniBatch: -2},
		{Epochs: -1},
		{StepSize: -0.5},
		{StepDecay: -1},
		{StepSample: -3},
	}
	for i, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("case %d (%+v): Validate accepted a bad config", i, cfg)
			continue
		}
		if !strings.HasPrefix(err.Error(), "buckwild:") {
			t.Errorf("case %d: error %q lacks the buckwild: prefix", i, err)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config should validate: %v", err)
	}
	if err := (Config{Signature: "D8M8", Problem: SVM, Rounding: Biased, Threads: 4}).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestValidateRoutedThroughEntryPoints(t *testing.T) {
	bad := Config{Problem: "ridge", Epochs: 1}
	ds, err := GenerateDense("", 16, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TrainDense(bad, ds); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("TrainDense: %v", err)
	}
	sds, err := GenerateSparse("D8i16M8", 64, 128, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	badSparse := Config{Signature: "D8i16M8", Rounding: "nope", Epochs: 1}
	if _, err := TrainSparse(badSparse, sds); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("TrainSparse: %v", err)
	}
	if _, err := TrainDense(Config{Epochs: 1}, nil); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("nil dataset: %v", err)
	}
	if _, err := TrainSparse(Config{Epochs: 1}, &SparseDataset{}); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("empty sparse dataset: %v", err)
	}
	if _, err := GenerateDense("bogus", 8, 8, 1); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("GenerateDense bad signature: %v", err)
	}
	if _, err := GenerateDense("", 0, 8, 1); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("GenerateDense zero n: %v", err)
	}
	if _, err := GenerateSparse("D8i16M8", 8, 8, 0, 1); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("GenerateSparse zero density: %v", err)
	}
	// Precision mismatches are caught at the facade with its prefix.
	if _, err := TrainDense(Config{Signature: "D16M16", Epochs: 1}, ds); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Errorf("precision mismatch: %v", err)
	}
}

func TestTypedProblemCompat(t *testing.T) {
	// Untyped string literals must still assign to the typed field.
	cfg := Config{Problem: "svm"}
	if cfg.Problem != SVM {
		t.Errorf("literal %q != SVM", cfg.Problem)
	}
	if Problem("").String() != "logistic" {
		t.Errorf("zero problem = %q", Problem("").String())
	}
	for _, p := range []Problem{"", Logistic, Linear, SVM} {
		if !p.Valid() {
			t.Errorf("%q should be valid", p)
		}
	}
	if Problem("ridge").Valid() {
		t.Error("ridge should be invalid")
	}
	// SyncConfig shares the typed problem.
	if _, err := TrainSync(SyncConfig{Problem: "ridge"}, &DenseDataset{}); err == nil {
		t.Error("bad sync problem accepted")
	}
}

func TestSimOptionsZeroValueIdentity(t *testing.T) {
	for _, sig := range []string{"D8M8", "D4M4", "D8i16M8"} {
		base, err := SimulateThroughput(sig, 1<<12, 4)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SimulateThroughput(sig, 1<<12, 4, SimOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if base.GNPS != opt.GNPS || base.CyclesPerRound != opt.CyclesPerRound {
			t.Errorf("%s: zero SimOptions changed the result: %v vs %v", sig, base.GNPS, opt.GNPS)
		}
	}
}

func TestSimOptionsVariants(t *testing.T) {
	gen, err := SimulateThroughput("D8M8", 1<<14, 1, SimOptions{Variant: "generic"})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := SimulateThroughput("D8M8", 1<<14, 1, SimOptions{Variant: "handopt"})
	if err != nil {
		t.Fatal(err)
	}
	if hand.GNPS <= gen.GNPS {
		t.Errorf("handopt (%.3f) should beat generic (%.3f)", hand.GNPS, gen.GNPS)
	}
	npf, err := SimulateThroughput("D8M8", 1<<18, 1, SimOptions{Prefetch: Off})
	if err != nil {
		t.Fatal(err)
	}
	if npf.GNPS >= hand.GNPS*4 {
		t.Errorf("prefetch-off result implausible: %.3f", npf.GNPS)
	}
	if _, err := SimulateThroughput("D8M8", 1<<12, 1, SimOptions{Variant: "jit"}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := SimulateThroughput("D8M8", 1<<12, 1, SimOptions{Density: 2}); err == nil {
		t.Error("bad density accepted")
	}
	if _, err := SimulateThroughput("D8M8", 1<<12, 1, SimOptions{}, SimOptions{}); err == nil {
		t.Error("two SimOptions accepted")
	}
	if _, err := SimulateThroughput("D8M8", 1<<12, 1, SimOptions{Rounding: UnbiasedHardware}); err != nil {
		t.Errorf("hardware rounding: %v", err)
	}
}

// facadeHooks counts callbacks through the re-exported aliases.
type facadeHooks struct {
	NopHooks
	epochs atomic.Uint64
}

func (h *facadeHooks) OnEpoch(EpochInfo) { h.epochs.Add(1) }

func TestFacadeObservability(t *testing.T) {
	ds, err := GenerateDense("D8M8", 64, 256, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := &facadeHooks{}
	res, err := TrainDense(Config{
		Signature: "D8M8", Threads: 2, Epochs: 2, Seed: 3,
		Hooks: h, StepSample: 1,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if h.epochs.Load() != 2 {
		t.Errorf("OnEpoch fired %d times, want 2", h.epochs.Load())
	}
	if res.Stats == nil || res.Stats.Steps != 2*256 {
		t.Errorf("stats = %+v", res.Stats)
	}
	// CollectStats without hooks still fills Result.Stats.
	res, err = TrainDense(Config{Signature: "D8M8", Epochs: 1, CollectStats: true}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats == nil || res.Stats.Steps != 256 {
		t.Errorf("CollectStats stats = %+v", res.Stats)
	}
	// And without either, training is uninstrumented.
	res, err = TrainDense(Config{Signature: "D8M8", Epochs: 1}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Error("Stats should be nil without hooks or CollectStats")
	}
}
