module buckwild

go 1.22
