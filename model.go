package buckwild

// This file is the serving half of the facade's model API: Model is the
// immutable predict handle shared by every inference path — models
// loaded from disk (SavedModel.Handle), models published live by a
// running supervisor (RunConfig.Snapshotter), and models promoted into a
// serving daemon (NewModelServer / SnapshotPromoter). There is exactly
// one predict implementation — predictDense / predictSparse below — and
// everything else, SavedModel.Predict* included, is a thin wrapper over
// it, so a file-loaded model and a live-promoted one can never disagree
// on an inference result.

import (
	"errors"
	"fmt"
)

// Typed predict errors. Every predict entry point reports malformed
// requests with one of these sentinels in its chain (errors.Is), wrapped
// with the concrete dimensions — and, like every facade error, prefixed
// "buckwild:".
var (
	// ErrEmptyExample rejects a request with no features: a zero-length
	// dense vector or a zero-length sparse index set.
	ErrEmptyExample = errors.New("buckwild: empty example")
	// ErrDimension rejects a request whose shape disagrees with the
	// model: a dense example of the wrong dimension, or a sparse request
	// with mismatched index and value counts.
	ErrDimension = errors.New("buckwild: example dimension mismatch")
	// ErrIndexRange rejects a sparse request with an index outside the
	// model.
	ErrIndexRange = errors.New("buckwild: sparse index outside model")
)

// predictSparse is the one sparse inference implementation: the margin
// w.x of an example given as (index, value) pairs. It reads only its
// arguments, so it is safe for any number of concurrent callers.
func predictSparse(w []float32, idx []int32, vals []float32) (float32, error) {
	if len(idx) != len(vals) {
		return 0, fmt.Errorf("%w: %d indices, %d values", ErrDimension, len(idx), len(vals))
	}
	if len(idx) == 0 {
		return 0, fmt.Errorf("%w: zero-length sparse request", ErrEmptyExample)
	}
	var s float32
	for k, j := range idx {
		if j < 0 || int(j) >= len(w) {
			return 0, fmt.Errorf("%w: index %d outside model of size %d", ErrIndexRange, j, len(w))
		}
		s += w[j] * vals[k]
	}
	return s, nil
}

// predictDense is the one dense inference implementation: the margin w.x
// of a dense example. Safe for concurrent use like predictSparse.
func predictDense(w, x []float32) (float32, error) {
	if len(x) == 0 {
		return 0, fmt.Errorf("%w: zero-length dense request", ErrEmptyExample)
	}
	if len(x) != len(w) {
		return 0, fmt.Errorf("%w: example dim %d, model dim %d", ErrDimension, len(x), len(w))
	}
	var s float32
	for j, v := range x {
		s += w[j] * v
	}
	return s, nil
}

// Model is an immutable handle on a trained linear model: the signature
// it was trained under and the dequantized weights. Nothing mutates a
// Model after construction, so one Model may serve any number of
// concurrent Predict* calls — this is the type a serving daemon swaps
// atomically under live traffic.
//
// Build one with NewModel, SavedModel.Handle (file-loaded models) or
// receive them from a RunConfig.Snapshotter (live-promoted models).
type Model struct {
	sigText string
	w       []float32
}

// NewModel builds an immutable predict handle from a signature (empty
// means "unspecified") and weights; both are validated and the weights
// are copied, so later mutation of the caller's slice cannot reach the
// handle.
func NewModel(sigText string, weights []float32) (*Model, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("buckwild: model has no weights")
	}
	if sigText != "" {
		if _, err := ParseSignature(sigText); err != nil {
			return nil, wrapErr(err)
		}
	}
	return &Model{sigText: sigText, w: append([]float32(nil), weights...)}, nil
}

// Dim returns the model dimension (the dense example length it accepts).
func (m *Model) Dim() int { return len(m.w) }

// Signature returns the DMGC signature text the model was trained under
// ("" if unspecified).
func (m *Model) Signature() string { return m.sigText }

// Weights returns a copy of the dequantized weights.
func (m *Model) Weights() []float32 { return append([]float32(nil), m.w...) }

// PredictDense returns the margin w.x for a dense example. Safe for
// concurrent use.
func (m *Model) PredictDense(x []float32) (float32, error) {
	return predictDense(m.w, x)
}

// PredictSparse returns the margin w.x for an example given as (index,
// value) pairs. Safe for concurrent use.
func (m *Model) PredictSparse(idx []int32, vals []float32) (float32, error) {
	return predictSparse(m.w, idx, vals)
}

// PredictBatch predicts every dense example in xs. out, when non-nil, is
// the preallocated result slice (it must have len(xs) elements) — the
// allocation-free form a serving hot loop wants; nil allocates. Safe for
// concurrent use as long as concurrent callers pass distinct out slices.
func (m *Model) PredictBatch(xs [][]float32, out []float32) ([]float32, error) {
	if out == nil {
		out = make([]float32, len(xs))
	}
	if len(out) != len(xs) {
		return nil, fmt.Errorf("%w: %d examples, %d preallocated outputs", ErrDimension, len(xs), len(out))
	}
	for i, x := range xs {
		v, err := predictDense(m.w, x)
		if err != nil {
			return nil, fmt.Errorf("%w (batch example %d)", err, i)
		}
		out[i] = v
	}
	return out, nil
}

// ModelSnapshot is a promotable model published by a running supervisor:
// the immutable handle plus where in the run it was taken. Epoch counts
// cumulatively across resumes, so a serving tier can use it as a
// monotonic version.
type ModelSnapshot struct {
	// Epoch is the cumulative completed-epoch count at the snapshot.
	Epoch int
	// Loss is the full-precision training loss at the snapshot.
	Loss float64
	// Model is the immutable predict handle.
	Model *Model
}

// Snapshotter receives promotable model snapshots from a supervised run
// (install one in RunConfig.Snapshotter). OnSnapshot is called on the
// run's coordinating goroutine at every checkpoint boundary, after the
// checkpoint file is durably on disk; a slow implementation delays
// training, so hand off expensive work. SnapshotPromoter adapts a
// ModelServer into one.
type Snapshotter interface {
	OnSnapshot(ModelSnapshot)
}
