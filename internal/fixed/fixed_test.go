package fixed

import (
	"math"
	"testing"
	"testing/quick"

	"buckwild/internal/prng"
)

func TestFormatBounds(t *testing.T) {
	cases := []struct {
		f          Format
		maxI, minI int32
	}{
		{Q4, 7, -8},
		{Q8, 127, -128},
		{Q16, 32767, -32768},
		{Q32, math.MaxInt32, math.MinInt32},
	}
	for _, c := range cases {
		if got := c.f.MaxInt(); got != c.maxI {
			t.Errorf("%v MaxInt = %d, want %d", c.f, got, c.maxI)
		}
		if got := c.f.MinInt(); got != c.minI {
			t.Errorf("%v MinInt = %d, want %d", c.f, got, c.minI)
		}
		if !c.f.Valid() {
			t.Errorf("%v should be valid", c.f)
		}
	}
}

func TestByBits(t *testing.T) {
	for _, bits := range []uint{4, 8, 16, 32} {
		f, err := ByBits(bits)
		if err != nil {
			t.Fatalf("ByBits(%d): %v", bits, err)
		}
		if f.Bits != bits {
			t.Errorf("ByBits(%d).Bits = %d", bits, f.Bits)
		}
	}
	if _, err := ByBits(7); err == nil {
		t.Error("ByBits(7) should fail")
	}
}

func TestQuantizeBiasedRoundsToNearest(t *testing.T) {
	f := Q8 // scale 64
	cases := []struct {
		x    float32
		want int32
	}{
		{0, 0},
		{1.0 / 64, 1},
		{0.4 / 64, 0},
		{0.6 / 64, 1},
		{-0.6 / 64, -1},
		{1, 64},
		{-1, -64},
		{100, 127},   // saturate high
		{-100, -128}, // saturate low
	}
	for _, c := range cases {
		if got := f.QuantizeBiased(c.x); got != c.want {
			t.Errorf("QuantizeBiased(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestQuantizeBiasedNaN(t *testing.T) {
	if got := Q8.QuantizeBiased(float32(math.NaN())); got != 0 {
		t.Errorf("QuantizeBiased(NaN) = %d, want 0", got)
	}
	rs := prng.NewXorshift32(1)
	if got := Q8.QuantizeUnbiased(float32(math.NaN()), rs); got != 0 {
		t.Errorf("QuantizeUnbiased(NaN) = %d, want 0", got)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	// Values exactly representable in the format must round-trip under
	// both rounding modes.
	rs := prng.NewXorshift32(7)
	for _, f := range []Format{Q4, Q8, Q16} {
		for v := f.MinInt(); v <= f.MaxInt(); v++ {
			x := f.Dequantize(v)
			if got := f.QuantizeBiased(x); got != v {
				t.Fatalf("%v: biased round-trip of raw %d: got %d", f, v, got)
			}
			if got := f.QuantizeUnbiased(x, rs); got != v {
				t.Fatalf("%v: unbiased round-trip of raw %d: got %d", f, v, got)
			}
		}
	}
}

func TestQuantizeUnbiasedIsUnbiased(t *testing.T) {
	// E[Q(x)] must equal x*scale for in-range x. Check a value exactly
	// halfway between representable points: mean should be ~0.5 above
	// the floor.
	f := Q8
	x := 2.5 / 64.0 // halfway between raw 2 and raw 3
	rs := prng.NewXorshift32(99)
	const n = 200000
	var sum int64
	for i := 0; i < n; i++ {
		sum += int64(f.QuantizeUnbiased(float32(x), rs))
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.01 {
		t.Errorf("unbiased rounding mean = %v, want ~2.5", mean)
	}
}

func TestQuantizeUnbiasedNeverFar(t *testing.T) {
	// Stochastic rounding may only move to one of the two neighbouring
	// representable values.
	f := Q8
	rs := prng.NewXorshift32(3)
	for i := 0; i < 1000; i++ {
		x := (prng.Float32(rs)*4 - 2) // in [-2, 2)
		got := f.QuantizeUnbiased(x, rs)
		lo := int32(math.Floor(float64(x) * 64))
		hi := lo + 1
		if got != f.Saturate(int64(lo)) && got != f.Saturate(int64(hi)) {
			t.Fatalf("QuantizeUnbiased(%v) = %d, want %d or %d", x, got, lo, hi)
		}
	}
}

func TestQuantizeSliceModes(t *testing.T) {
	src := []float32{0.5, -0.25, 1.5, -2}
	dst := make([]int32, len(src))
	Q8.QuantizeSlice(dst, src, Biased, nil)
	want := []int32{32, -16, 96, -128}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("biased slice[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	rs := prng.NewXorshift32(5)
	Q8.QuantizeSlice(dst, src, Unbiased, rs)
	for i := range want {
		if dst[i] != want[i] { // all inputs exactly representable
			t.Errorf("unbiased slice[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
}

func TestDequantizeSlice(t *testing.T) {
	raw := []int32{64, -64, 32, 0}
	out := make([]float32, len(raw))
	Q8.DequantizeSlice(out, raw)
	want := []float32{1, -1, 0.5, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("DequantizeSlice[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestRoundRaw(t *testing.T) {
	// Requantize from Q16 (frac 14) down to Q8 (frac 6): shift 8.
	f := Q8
	shift := uint(Q16.Frac - Q8.Frac)
	if got := f.RoundRaw(256, shift, Biased, nil); got != 1 {
		t.Errorf("RoundRaw(256) = %d, want 1", got)
	}
	if got := f.RoundRaw(127, shift, Biased, nil); got != 0 {
		t.Errorf("RoundRaw(127) = %d, want 0 (rounds down)", got)
	}
	if got := f.RoundRaw(128, shift, Biased, nil); got != 1 {
		t.Errorf("RoundRaw(128) = %d, want 1 (ties up)", got)
	}
	if got := f.RoundRaw(1<<30, shift, Biased, nil); got != f.MaxInt() {
		t.Errorf("RoundRaw(huge) = %d, want saturation at %d", got, f.MaxInt())
	}
	if got := f.RoundRaw(42, 0, Biased, nil); got != 42 {
		t.Errorf("RoundRaw shift=0 = %d, want 42", got)
	}
}

func TestRoundRawUnbiasedMean(t *testing.T) {
	f := Q8
	rs := prng.NewXorshift32(11)
	shift := uint(8)
	v := int64(384) // 1.5 quanta after shift
	const n = 100000
	var sum int64
	for i := 0; i < n; i++ {
		sum += int64(f.RoundRaw(v, shift, Unbiased, rs))
	}
	mean := float64(sum) / n
	if math.Abs(mean-1.5) > 0.02 {
		t.Errorf("RoundRaw unbiased mean = %v, want ~1.5", mean)
	}
}

func TestQuantizePropertyBiasedError(t *testing.T) {
	// Property: biased quantization error is at most half a quantum for
	// in-range inputs.
	f := Q16
	check := func(x float32) bool {
		if x != x || x > f.MaxReal() || x < f.MinReal() {
			return true // out of scope
		}
		got := f.Dequantize(f.QuantizeBiased(x))
		return math.Abs(float64(got-x)) <= float64(f.Quantum())/2+1e-9
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestSaturateHelpers(t *testing.T) {
	if got := AddSat8(100, 100); got != 127 {
		t.Errorf("AddSat8 overflow = %d", got)
	}
	if got := AddSat8(-100, -100); got != -128 {
		t.Errorf("AddSat8 underflow = %d", got)
	}
	if got := AddSat8(5, -3); got != 2 {
		t.Errorf("AddSat8(5,-3) = %d", got)
	}
	if got := AddSat16(30000, 30000); got != 32767 {
		t.Errorf("AddSat16 overflow = %d", got)
	}
	if got := AddSat32(2147483000, 2147483000); got != 2147483647 {
		t.Errorf("AddSat32 overflow = %d", got)
	}
	if got := AddSat32(-2147483000, -2147483000); got != -2147483648 {
		t.Errorf("AddSat32 underflow = %d", got)
	}
}

func TestMulAddWidening(t *testing.T) {
	// -128 * -128 = 16384 fits exactly in 16 bits: the multiply is exact.
	if got := MulAdd8to16(-128, -128, 0); got != 16384 {
		t.Errorf("MulAdd8to16(-128,-128,0) = %d, want 16384", got)
	}
	// Accumulation saturates.
	if got := MulAdd8to16(127, 127, 32000); got != 32767 {
		t.Errorf("MulAdd8to16 saturating acc = %d, want 32767", got)
	}
	if got := MulAdd16to32(-32768, -32768, 0); got != 1073741824 {
		t.Errorf("MulAdd16to32 = %d", got)
	}
}

func TestClamps(t *testing.T) {
	if Clamp8(300) != 127 || Clamp8(-300) != -128 || Clamp8(5) != 5 {
		t.Error("Clamp8 wrong")
	}
	if Clamp16(70000) != 32767 || Clamp16(-70000) != -32768 || Clamp16(-7) != -7 {
		t.Error("Clamp16 wrong")
	}
	if Clamp4(20) != 7 || Clamp4(-20) != -8 || Clamp4(3) != 3 {
		t.Error("Clamp4 wrong")
	}
}

func TestQuantizePropertySaturation(t *testing.T) {
	// Property: quantization never escapes the representable raw range.
	rs := prng.NewXorshift32(17)
	check := func(x float32, unbiased bool) bool {
		for _, f := range []Format{Q4, Q8, Q16} {
			var v int32
			if unbiased {
				v = f.QuantizeUnbiased(x, rs)
			} else {
				v = f.QuantizeBiased(x)
			}
			if v > f.MaxInt() || v < f.MinInt() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFormatString(t *testing.T) {
	if got := Q8.String(); got != "Q8.6" {
		t.Errorf("Q8.String() = %q", got)
	}
	if got := Biased.String(); got != "biased" {
		t.Errorf("Biased.String() = %q", got)
	}
	if got := Unbiased.String(); got != "unbiased" {
		t.Errorf("Unbiased.String() = %q", got)
	}
}
