package fixed

import (
	"math"
	"testing"

	"buckwild/internal/prng"
)

// TestCountingVariantsMatchPlain checks the core counting contract: every
// *C helper returns bit-identical results to its plain counterpart, with a
// nil counter and with a live one.
func TestCountingVariantsMatchPlain(t *testing.T) {
	var c NumCounts
	for a := -128; a <= 127; a += 3 {
		for b := -128; b <= 127; b += 7 {
			a8, b8 := int8(a), int8(b)
			if got, want := AddSat8C(a8, b8, nil), AddSat8(a8, b8); got != want {
				t.Fatalf("AddSat8C(%d,%d,nil) = %d, want %d", a, b, got, want)
			}
			if got, want := AddSat8C(a8, b8, &c), AddSat8(a8, b8); got != want {
				t.Fatalf("AddSat8C(%d,%d,&c) = %d, want %d", a, b, got, want)
			}
			for _, acc := range []int16{0, 30000, -30000, 32767, -32768} {
				if got, want := MulAdd8to16C(a8, b8, acc, &c), MulAdd8to16(a8, b8, acc); got != want {
					t.Fatalf("MulAdd8to16C(%d,%d,%d) = %d, want %d", a, b, acc, got, want)
				}
			}
		}
	}
	for v := int32(-70000); v <= 70000; v += 997 {
		if got, want := Clamp4C(v, &c), Clamp4(v); got != want {
			t.Fatalf("Clamp4C(%d) = %d, want %d", v, got, want)
		}
		if got, want := Clamp8C(v, &c), Clamp8(v); got != want {
			t.Fatalf("Clamp8C(%d) = %d, want %d", v, got, want)
		}
		if got, want := Clamp16C(v, &c), Clamp16(v); got != want {
			t.Fatalf("Clamp16C(%d) = %d, want %d", v, got, want)
		}
	}
	for _, a := range []int16{-32768, -1000, 0, 1000, 32767} {
		for _, b := range []int16{-32768, -3, 3, 32767} {
			if got, want := AddSat16C(a, b, &c), AddSat16(a, b); got != want {
				t.Fatalf("AddSat16C(%d,%d) = %d, want %d", a, b, got, want)
			}
			for _, acc := range []int32{0, math.MaxInt32, math.MinInt32} {
				if got, want := MulAdd16to32C(a, b, acc, &c), MulAdd16to32(a, b, acc); got != want {
					t.Fatalf("MulAdd16to32C(%d,%d,%d) = %d, want %d", a, b, acc, got, want)
				}
			}
		}
	}
	for _, a := range []int32{math.MinInt32, -5, 0, 5, math.MaxInt32} {
		for _, b := range []int32{math.MinInt32, -1, 1, math.MaxInt32} {
			if got, want := AddSat32C(a, b, &c), AddSat32(a, b); got != want {
				t.Fatalf("AddSat32C(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	for _, f := range []Format{Q4, Q8, Q16} {
		for v := int64(-100000); v <= 100000; v += 991 {
			if got, want := f.SaturateC(v, &c), f.Saturate(v); got != want {
				t.Fatalf("%v.SaturateC(%d) = %d, want %d", f, v, got, want)
			}
		}
	}
}

// TestCountingQuantizeMatchesPlain checks that the counting quantizers
// produce the same codes as the plain ones (including unbiased rounding,
// which must consume the random stream identically).
func TestCountingQuantizeMatchesPlain(t *testing.T) {
	for _, f := range []Format{Q4, Q8, Q16} {
		var c NumCounts
		vals := prng.NewXorshift32(99)
		// Separate-but-identically-seeded rounding sources stay in
		// lockstep because the counting variant delegates to the plain
		// quantizer, consuming the stream identically.
		rs1 := prng.NewXorshift32(11)
		rs2 := prng.NewXorshift32(11)
		for i := 0; i < 2000; i++ {
			x := prng.Float32(vals)*6 - 3
			want := f.Quantize(x, Unbiased, rs1)
			got := f.QuantizeC(x, Unbiased, rs2, &c)
			if got != want {
				t.Fatalf("%v.QuantizeC(%g, unbiased) = %d, want %d", f, x, got, want)
			}
			bwant := f.QuantizeBiased(x)
			bgot := f.QuantizeBiasedC(x, &c)
			if bgot != bwant {
				t.Fatalf("%v.QuantizeBiasedC(%g) = %d, want %d", f, x, bgot, bwant)
			}
		}
		if c.BiasN == 0 && c.Sat[SiteQuantize] == 0 {
			t.Fatalf("%v: no bias samples and no quantize saturations counted", f)
		}
	}
}

// TestQuantizeCountsSaturationAndBias pins the counting semantics: values
// beyond the format range count SiteQuantize events (and no bias), values
// in range feed the signed bias accumulator.
func TestQuantizeCountsSaturationAndBias(t *testing.T) {
	f := Q8 // scale 64, range just under [-2, 2)
	var c NumCounts
	if got := f.QuantizeBiasedC(100, &c); got != f.MaxInt() {
		t.Fatalf("QuantizeBiasedC(100) = %d, want %d", got, f.MaxInt())
	}
	if got := f.QuantizeBiasedC(-100, &c); got != f.MinInt() {
		t.Fatalf("QuantizeBiasedC(-100) = %d, want %d", got, f.MinInt())
	}
	if c.Sat[SiteQuantize] != 2 || c.BiasN != 0 {
		t.Fatalf("after saturating converts: Sat[quantize]=%d BiasN=%d, want 2, 0", c.Sat[SiteQuantize], c.BiasN)
	}
	// 0.25 quanta above a grid point: biased rounding rounds down, so the
	// signed error is −0.25 quanta.
	c = NumCounts{}
	x := float32(10.25) / f.Scale()
	if got := f.QuantizeBiasedC(x, &c); got != 10 {
		t.Fatalf("QuantizeBiasedC(10.25q) = %d, want 10", got)
	}
	if c.BiasN != 1 || math.Abs(c.BiasSumQ+0.25) > 1e-3 {
		t.Fatalf("bias after one rounded-down write: N=%d sum=%g, want 1, -0.25", c.BiasN, c.BiasSumQ)
	}
}

// TestUnbiasedBiasNearZero checks the measurement itself: over many
// stochastic roundings of the same off-grid value, the accumulated mean
// bias stays near zero while biased rounding's drifts to the exact offset.
func TestUnbiasedBiasNearZero(t *testing.T) {
	f := Q8
	x := float32(5.3) / f.Scale() // 0.3 quanta above the grid
	rs := prng.NewXorshift32(42)
	var cu, cb NumCounts
	const n = 20000
	for i := 0; i < n; i++ {
		f.QuantizeUnbiasedC(x, rs, &cu)
		f.QuantizeBiasedC(x, &cb)
	}
	if cu.BiasN != n || cb.BiasN != n {
		t.Fatalf("BiasN = %d, %d, want %d", cu.BiasN, cb.BiasN, n)
	}
	meanU := cu.BiasSumQ / float64(cu.BiasN)
	meanB := cb.BiasSumQ / float64(cb.BiasN)
	if math.Abs(meanU) > 0.02 {
		t.Errorf("unbiased mean rounding error %g, want near 0", meanU)
	}
	if math.Abs(meanB-(-0.3)) > 0.01 {
		t.Errorf("biased mean rounding error %g, want near -0.3", meanB)
	}
}

// TestRoundRawCMatchesPlain checks RoundRawC against RoundRaw across
// shifts, modes and formats, with lockstep random sources.
func TestRoundRawCMatchesPlain(t *testing.T) {
	var c NumCounts
	for _, f := range []Format{Q4, Q8, Q16} {
		for _, shift := range []uint{0, 1, 4, 9} {
			rs1 := prng.NewXorshift32(5)
			rs2 := prng.NewXorshift32(5)
			for v := int64(-1 << 20); v <= 1<<20; v += 10007 {
				for _, mode := range []Rounding{Biased, Unbiased} {
					want := f.RoundRaw(v, shift, mode, rs1)
					got := f.RoundRawC(v, shift, mode, rs2, &c)
					if got != want {
						t.Fatalf("%v.RoundRawC(%d, %d, %v) = %d, want %d", f, v, shift, mode, got, want)
					}
					ngot := f.RoundRawC(v, shift, mode, rs2, nil)
					nwant := f.RoundRaw(v, shift, mode, rs1)
					if ngot != nwant {
						t.Fatalf("%v.RoundRawC(%d, %d, %v, nil) = %d, want %d", f, v, shift, mode, ngot, nwant)
					}
				}
			}
		}
	}
	if c.BiasN == 0 {
		t.Fatal("RoundRawC counted no bias samples")
	}
}

// TestNumCountsMerge checks Merge (including nil-safety).
func TestNumCountsMerge(t *testing.T) {
	a := &NumCounts{Underflows: 3, BiasN: 2, BiasSumQ: 0.5}
	a.Sat[SiteClamp8] = 7
	b := &NumCounts{Underflows: 4, BiasN: 1, BiasSumQ: -0.25}
	b.Sat[SiteClamp8] = 1
	b.Sat[SiteSaturate] = 9
	a.Merge(b)
	if a.Underflows != 7 || a.BiasN != 3 || a.BiasSumQ != 0.25 {
		t.Fatalf("merged scalars: %+v", a)
	}
	if a.Sat[SiteClamp8] != 8 || a.Sat[SiteSaturate] != 9 {
		t.Fatalf("merged sites: %v", a.Sat)
	}
	if a.SatTotal() != 17 {
		t.Fatalf("SatTotal = %d, want 17", a.SatTotal())
	}
	var nilC *NumCounts
	nilC.Merge(a) // must not panic
	a.Merge(nil)  // must not panic
	if nilC.SatTotal() != 0 {
		t.Fatal("nil SatTotal should be 0")
	}
}

// TestSiteNames ensures every site has a distinct, stable name (they key
// the exported saturation maps and the Prometheus site label).
func TestSiteNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Site(0); s < NumSites; s++ {
		name := s.String()
		if name == "" || name == "site?" {
			t.Errorf("site %d has no name", s)
		}
		if seen[name] {
			t.Errorf("duplicate site name %q", name)
		}
		seen[name] = true
	}
}
