package fixed

// SWAR (SIMD-within-a-register) primitives: saturating lane adds over a
// uint64 word, emulating the paddsb/paddsw half of the hand-optimized AVX2
// kernels with plain 64-bit integer arithmetic. A word packs eight int8
// lanes (or four int16 lanes) little-endian, so lane i of word w is element
// 8*w+i of the underlying int8 array — the layout kernels.Vec guarantees on
// little-endian hosts.
//
// The carry discipline is the classic sign-bit split: adding the low seven
// bits of every lane cannot carry across a lane boundary, the sign bits are
// recombined with xor, and true two's-complement overflow is detected per
// lane as "operand signs equal, result sign different". Overflowed lanes
// are then forced to the format extreme matching the first operand's sign.
// For the full-width formats (Q8 into int8 lanes, Q16 into int16 lanes)
// this is bit-identical to Saturate(int64(a)+int64(b)) applied per lane,
// which the differential tests in package kernels verify exhaustively.

const (
	lo7x8  = 0x7F7F7F7F7F7F7F7F
	hi1x8  = 0x8080808080808080
	lo15x4 = 0x7FFF7FFF7FFF7FFF
	hi1x4  = 0x8000800080008000
)

// AddSat8x8 adds two words of eight int8 lanes with per-lane signed
// saturation at [-128, 127].
func AddSat8x8(a, b uint64) uint64 {
	low := (a & lo7x8) + (b & lo7x8)
	r := low ^ ((a ^ b) & hi1x8)
	ov := (a ^ r) & (b ^ r) & hi1x8
	if ov == 0 {
		return r
	}
	// Each overflowed lane becomes 0x7F + sign(a): 0x7F for positive
	// overflow, 0x80 for negative. The byte multiplies cannot carry
	// across lanes (0x01*0x7F and the +1 both stay inside the byte).
	lanes := ov >> 7
	sat := lanes*0x7F + (a&ov)>>7
	keep := ^(lanes * 0xFF)
	return r&keep | sat
}

// AddSat16x4 adds two words of four int16 lanes with per-lane signed
// saturation at [-32768, 32767].
func AddSat16x4(a, b uint64) uint64 {
	low := (a & lo15x4) + (b & lo15x4)
	r := low ^ ((a ^ b) & hi1x4)
	ov := (a ^ r) & (b ^ r) & hi1x4
	if ov == 0 {
		return r
	}
	lanes := ov >> 15
	sat := lanes*0x7FFF + (a&ov)>>15
	keep := ^(lanes * 0xFFFF)
	return r&keep | sat
}
