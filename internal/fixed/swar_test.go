package fixed

import "testing"

func sat8(a, b int8) int8 {
	s := int16(a) + int16(b)
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return int8(s)
}

func sat16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// TestAddSat8x8Exhaustive packs every int8 pair (all 65536) into lane
// words, eight unrelated pairs per word, and checks each lane against the
// scalar saturating add — covering both the arithmetic and the absence of
// cross-lane interference.
func TestAddSat8x8Exhaustive(t *testing.T) {
	var av, bv [8]int8
	lane := 0
	flush := func() {
		var a, b uint64
		for i := 0; i < 8; i++ {
			a |= uint64(uint8(av[i])) << (8 * i)
			b |= uint64(uint8(bv[i])) << (8 * i)
		}
		r := AddSat8x8(a, b)
		for i := 0; i < 8; i++ {
			want := sat8(av[i], bv[i])
			if got := int8(r >> (8 * i)); got != want {
				t.Fatalf("lane %d: %d + %d = %d, want %d", i, av[i], bv[i], got, want)
			}
		}
		lane = 0
	}
	for x := -128; x <= 127; x++ {
		for y := -128; y <= 127; y++ {
			av[lane], bv[lane] = int8(x), int8(y)
			lane++
			if lane == 8 {
				flush()
			}
		}
	}
	if lane != 0 {
		flush()
	}
}

// TestAddSat16x4 checks the 16-bit lanes against the scalar reference on
// every combination of the edge values in adjacent lanes plus a large
// pseudorandom sweep.
func TestAddSat16x4(t *testing.T) {
	edges := []int16{-32768, -32767, -1, 0, 1, 32766, 32767, -256, 255}
	var av, bv [4]int16
	check := func() {
		t.Helper()
		var a, b uint64
		for i := 0; i < 4; i++ {
			a |= uint64(uint16(av[i])) << (16 * i)
			b |= uint64(uint16(bv[i])) << (16 * i)
		}
		r := AddSat16x4(a, b)
		for i := 0; i < 4; i++ {
			want := sat16(av[i], bv[i])
			if got := int16(r >> (16 * i)); got != want {
				t.Fatalf("lane %d: %d + %d = %d, want %d", i, av[i], bv[i], got, want)
			}
		}
	}
	// Every edge pair in lane 1, with overflowing neighbours in lanes 0,
	// 2, 3 to provoke any cross-lane leak.
	for _, x := range edges {
		for _, y := range edges {
			av = [4]int16{32767, x, -32768, 12345}
			bv = [4]int16{32767, y, -32768, 30000}
			check()
		}
	}
	// Pseudorandom sweep (xorshift64, fixed seed).
	s := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
	for n := 0; n < 200000; n++ {
		a, b := next(), next()
		for i := 0; i < 4; i++ {
			av[i] = int16(a >> (16 * i))
			bv[i] = int16(b >> (16 * i))
		}
		check()
	}
}

// TestRoundRawUMatchesRoundRaw verifies the pure-core refactor: RoundRawU
// fed the word a source would have produced behaves exactly like RoundRaw
// drawing from that source, for both modes, all shifts, and the counting
// variants.
func TestRoundRawUMatchesRoundRaw(t *testing.T) {
	vals := []int64{0, 1, -1, 513, -8192, 1 << 20, -(1 << 30), 1<<40 + 12345}
	words := []uint32{0, 1, 0x7FFFFFFF, 0xFFFFFFFF, 0xDEADBEEF}
	for _, f := range []Format{Q4, Q8, Q16, Q32} {
		for _, shift := range []uint{0, 1, 6, 14, 22} {
			for _, v := range vals {
				for _, w := range words {
					for _, mode := range []Rounding{Biased, Unbiased} {
						src := &replaySrc{w: w}
						want := f.RoundRaw(v, shift, mode, src)
						if got := f.RoundRawU(v, shift, mode, w); got != want {
							t.Fatalf("%v RoundRawU(%d, %d, %v, %#x) = %d, want %d", f, v, shift, mode, w, got, want)
						}
						var c1, c2 NumCounts
						src2 := &replaySrc{w: w}
						wantC := f.RoundRawC(v, shift, mode, src2, &c1)
						gotC := f.RoundRawUC(v, shift, mode, w, &c2)
						if gotC != wantC || c1 != c2 {
							t.Fatalf("%v RoundRawUC(%d, %d, %v, %#x) = %d (%+v), want %d (%+v)",
								f, v, shift, mode, w, gotC, c2, wantC, c1)
						}
					}
				}
			}
		}
	}
}

// replaySrc returns a fixed word forever.
type replaySrc struct{ w uint32 }

func (r *replaySrc) Uint32() uint32 { return r.w }
