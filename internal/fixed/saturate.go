package fixed

// Saturating scalar arithmetic helpers used by the low-precision kernels.
// These mirror the behaviour of the AVX2 saturating integer instructions
// (vpaddsb, vpaddsw, ...) that the hand-optimized kernels in the paper rely
// on: results that overflow the type clamp to the type bounds instead of
// wrapping.

// AddSat8 returns a+b saturated to the int8 range.
func AddSat8(a, b int8) int8 {
	s := int16(a) + int16(b)
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return int8(s)
}

// AddSat16 returns a+b saturated to the int16 range.
func AddSat16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// AddSat32 returns a+b saturated to the int32 range.
func AddSat32(a, b int32) int32 {
	s := int64(a) + int64(b)
	if s > 2147483647 {
		return 2147483647
	}
	if s < -2147483648 {
		return -2147483648
	}
	return int32(s)
}

// MulAdd8to16 computes a*b + c with the 8-bit operands widened to 16 bits
// and the accumulation saturated to int16. This is the per-lane behaviour of
// the vpmaddubsw-style fused multiply-add the hand-optimized dot kernel is
// built on: the multiply itself is exact (8x8 -> 16 bits) and only the
// accumulate saturates.
func MulAdd8to16(a, b int8, c int16) int16 {
	return AddSat16(int16(a)*int16(b), c)
}

// MulAdd16to32 computes a*b + c with the 16-bit operands widened to 32 bits
// and the accumulation saturated to int32 (vpmaddwd-style).
func MulAdd16to32(a, b int16, c int32) int32 {
	return AddSat32(int32(a)*int32(b), c)
}

// Clamp8 saturates a wide value to int8.
func Clamp8(v int32) int8 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return int8(v)
}

// Clamp16 saturates a wide value to int16.
func Clamp16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// Clamp4 saturates a wide value to the 4-bit signed range [-8, 7]. 4-bit
// values are stored in int8 containers (two per byte in packed storage).
func Clamp4(v int32) int8 {
	if v > 7 {
		return 7
	}
	if v < -8 {
		return -8
	}
	return int8(v)
}
