// Package fixed implements the low-precision fixed-point arithmetic that
// Buckwild! SGD uses in place of 32-bit floating point.
//
// A fixed-point format is described by a total signed bit width and a number
// of fractional bits; the real value represented by the integer v is
// v / 2^frac. The package provides saturating conversion between float and
// fixed point under the two rounding disciplines discussed in Section 3 of
// the paper:
//
//   - biased (nearest-neighbor) rounding, which is cheapest in hardware, and
//   - unbiased (stochastic) rounding, which rounds up or down at random so
//     that the expected value of the output equals the input. Unbiased
//     rounding requires a pseudorandom source; see package prng.
//
// The formats used throughout the reproduction are Q4, Q8 and Q16, matching
// the 4-, 8- and 16-bit model/dataset precisions in the paper's DMGC
// signatures.
package fixed

import (
	"fmt"
	"math"
)

// Format describes a signed fixed-point number format.
type Format struct {
	// Bits is the total signed width in bits, including the sign bit.
	// Supported widths are 2 through 32.
	Bits uint
	// Frac is the number of fractional bits. The representable step
	// (quantum) is 1/2^Frac.
	Frac uint
}

// Standard formats. The fractional splits follow the convention used by the
// paper's reference implementation: values are kept in roughly [-1, 1] for
// models and datasets sampled from [-1, 1]^n, so most bits are fractional.
var (
	// Q4 is a 4-bit format with 2 fractional bits: range [-2, 1.75].
	Q4 = Format{Bits: 4, Frac: 2}
	// Q8 is an 8-bit format with 6 fractional bits: range [-2, ~1.98].
	Q8 = Format{Bits: 8, Frac: 6}
	// Q16 is a 16-bit format with 14 fractional bits: range [-2, ~2).
	Q16 = Format{Bits: 16, Frac: 14}
	// Q32 is a 32-bit fixed-point format with 24 fractional bits. It is
	// used where a full-precision fixed-point accumulator is needed.
	Q32 = Format{Bits: 32, Frac: 24}
)

// ByBits returns the standard format with the given total width.
// It returns an error for widths without a standard format.
func ByBits(bits uint) (Format, error) {
	switch bits {
	case 4:
		return Q4, nil
	case 8:
		return Q8, nil
	case 16:
		return Q16, nil
	case 32:
		return Q32, nil
	}
	return Format{}, fmt.Errorf("fixed: no standard format with %d bits", bits)
}

// Valid reports whether the format is usable.
func (f Format) Valid() bool {
	return f.Bits >= 2 && f.Bits <= 32 && f.Frac < f.Bits
}

// MaxInt returns the largest representable raw integer value.
func (f Format) MaxInt() int32 {
	return int32(1)<<(f.Bits-1) - 1
}

// MinInt returns the smallest (most negative) representable raw integer value.
func (f Format) MinInt() int32 {
	return -(int32(1) << (f.Bits - 1))
}

// Scale returns the scaling factor 2^Frac that converts reals to raw values.
func (f Format) Scale() float32 {
	return float32(int64(1) << f.Frac)
}

// Quantum returns the representable step 1/2^Frac.
func (f Format) Quantum() float32 {
	return 1 / f.Scale()
}

// MaxReal returns the largest representable real value.
func (f Format) MaxReal() float32 {
	return float32(f.MaxInt()) * f.Quantum()
}

// MinReal returns the smallest representable real value.
func (f Format) MinReal() float32 {
	return float32(f.MinInt()) * f.Quantum()
}

// String renders the format as, e.g., "Q8.6" (8 total bits, 6 fractional).
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d", f.Bits, f.Frac)
}

// Saturate clamps a raw integer to the representable range of the format.
func (f Format) Saturate(v int64) int32 {
	if v > int64(f.MaxInt()) {
		return f.MaxInt()
	}
	if v < int64(f.MinInt()) {
		return f.MinInt()
	}
	return int32(v)
}

// Dequantize converts a raw fixed-point value to its real value.
func (f Format) Dequantize(v int32) float32 {
	return float32(v) * f.Quantum()
}

// DequantizeSlice converts raw values to reals, writing into dst.
// dst must have the same length as src.
func (f Format) DequantizeSlice(dst []float32, src []int32) {
	q := f.Quantum()
	for i, v := range src {
		dst[i] = float32(v) * q
	}
}

// Rounding selects how reals are converted to raw fixed-point values.
type Rounding int

const (
	// Biased rounds to the nearest representable value (ties away from
	// zero). It needs no randomness and is the hardware-cheapest choice,
	// but introduces a systematic bias that hurts statistical efficiency
	// at very low precision.
	Biased Rounding = iota
	// Unbiased rounds up or down at random such that the expectation of
	// the output equals the input (stochastic rounding). It requires a
	// pseudorandom source.
	Unbiased
)

// String returns the rounding mode name.
func (r Rounding) String() string {
	switch r {
	case Biased:
		return "biased"
	case Unbiased:
		return "unbiased"
	}
	return fmt.Sprintf("Rounding(%d)", int(r))
}

// RandSource supplies uniform random 32-bit words for unbiased rounding.
// It is satisfied by the generators in package prng.
type RandSource interface {
	Uint32() uint32
}

// QuantizeBiased converts a real to the nearest representable raw value,
// saturating at the format bounds. NaN quantizes to zero.
func (f Format) QuantizeBiased(x float32) int32 {
	if x != x { // NaN
		return 0
	}
	scaled := float64(x) * float64(f.Scale())
	var r float64
	if scaled >= 0 {
		r = math.Floor(scaled + 0.5)
	} else {
		r = math.Ceil(scaled - 0.5)
	}
	if r > float64(f.MaxInt()) {
		return f.MaxInt()
	}
	if r < float64(f.MinInt()) {
		return f.MinInt()
	}
	return int32(r)
}

// QuantizeUnbiased converts a real to a raw value using stochastic rounding
// driven by rs, saturating at the format bounds: the result is
// floor(x*scale + u) for u uniform on [0, 1), so E[result] = x*scale for
// in-range x. NaN quantizes to zero.
func (f Format) QuantizeUnbiased(x float32, rs RandSource) int32 {
	if x != x { // NaN
		return 0
	}
	scaled := float64(x) * float64(f.Scale())
	// u in [0,1) with 24 bits of resolution, plenty for <=32-bit formats.
	u := float64(rs.Uint32()>>8) * (1.0 / (1 << 24))
	r := math.Floor(scaled + u)
	if r > float64(f.MaxInt()) {
		return f.MaxInt()
	}
	if r < float64(f.MinInt()) {
		return f.MinInt()
	}
	return int32(r)
}

// Quantize converts a real using the given rounding mode. For Unbiased
// rounding rs must be non-nil; for Biased it is ignored.
func (f Format) Quantize(x float32, mode Rounding, rs RandSource) int32 {
	if mode == Unbiased {
		return f.QuantizeUnbiased(x, rs)
	}
	return f.QuantizeBiased(x)
}

// QuantizeSlice quantizes src into dst (same length) under the given mode.
func (f Format) QuantizeSlice(dst []int32, src []float32, mode Rounding, rs RandSource) {
	if mode == Unbiased {
		for i, x := range src {
			dst[i] = f.QuantizeUnbiased(x, rs)
		}
		return
	}
	for i, x := range src {
		dst[i] = f.QuantizeBiased(x)
	}
}

// RoundRaw requantizes a raw value expressed at a higher-precision format
// src into format f: it is the fixed-point analogue of Quantize and is the
// operation performed on every model write in low-precision SGD (the AXPY
// result is computed at higher precision and then rounded into the model
// format). shift is src.Frac - f.Frac and must be non-negative.
func (f Format) RoundRaw(v int64, shift uint, mode Rounding, rs RandSource) int32 {
	var u uint32
	if mode == Unbiased && shift != 0 {
		u = rs.Uint32()
	}
	return f.RoundRawU(v, shift, mode, u)
}

// RoundRawU is RoundRaw with the random word supplied by the caller instead
// of drawn from a source. It is the pure core of the rounding pipeline: the
// batched paths draw one 64-bit word per eight values, fan it out into lane
// words, and feed each lane here, producing results bit-identical to
// RoundRaw fed the same words one at a time. u is ignored for Biased mode
// and when shift is zero (exactly the cases RoundRaw does not draw).
func (f Format) RoundRawU(v int64, shift uint, mode Rounding, u uint32) int32 {
	if shift == 0 {
		return f.Saturate(v)
	}
	mask := int64(1)<<shift - 1
	var r int64
	if mode == Unbiased {
		// floor((v + u) / 2^shift) with u uniform on [0, 2^shift).
		r = (v + int64(u)&mask) >> shift
	} else {
		// Round to nearest; ties away from zero for non-negative,
		// which matches the float path closely enough for SGD.
		half := int64(1) << (shift - 1)
		r = (v + half) >> shift
	}
	return f.Saturate(r)
}
