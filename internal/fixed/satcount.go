package fixed

// Numerical-health counting: optional counting variants of the saturating
// helpers and the quantization entry points. "Taming the Wild" and the
// paper's Section 3 argue that saturation and rounding bias are the
// mechanisms behind low-precision accuracy gaps; these variants make both
// observable per run without touching the uninstrumented paths.
//
// The contract mirrors the engine's observability convention: every
// counting variant takes a *NumCounts and behaves bit-identically to its
// plain counterpart when the counter is nil, so call sites pay one nil
// check and nothing else when health collection is off. A NumCounts is
// owned by exactly one worker goroutine and written with plain stores;
// the coordinator reads it only after joining the workers (the epoch
// WaitGroup provides the happens-before edge), exactly like the engine's
// counter shards.

// Site identifies one saturation (clamp) site in the low-precision
// arithmetic. Each counting variant increments exactly one site when its
// result clamps at a type or format bound.
type Site int

// The saturation sites, one per saturating helper plus the two
// format-level sites (Saturate on raw model writes, Quantize on
// float-to-fixed conversion hitting the format bounds).
const (
	SiteClamp4 Site = iota
	SiteClamp8
	SiteClamp16
	SiteAddSat8
	SiteAddSat16
	SiteAddSat32
	SiteMulAdd8to16
	SiteMulAdd16to32
	SiteSaturate
	SiteQuantize
	// NumSites bounds the Site enum; it is the length of NumCounts.Sat.
	NumSites
)

// String names the site as it appears in exported saturation maps.
func (s Site) String() string {
	switch s {
	case SiteClamp4:
		return "clamp4"
	case SiteClamp8:
		return "clamp8"
	case SiteClamp16:
		return "clamp16"
	case SiteAddSat8:
		return "addsat8"
	case SiteAddSat16:
		return "addsat16"
	case SiteAddSat32:
		return "addsat32"
	case SiteMulAdd8to16:
		return "muladd8to16"
	case SiteMulAdd16to32:
		return "muladd16to32"
	case SiteSaturate:
		return "saturate"
	case SiteQuantize:
		return "quantize"
	}
	return "site?"
}

// NumCounts is one worker's private numerical-health counter block:
// saturation events per site, the signed rounding-bias accumulator
// (measured error rounded − exact, in quanta of the destination format),
// and underflow events (a nonzero value quantized to zero, counted by the
// call sites that know a zero result means "no update"). All fields are
// plain (non-atomic); see the ownership contract above. A nil *NumCounts
// is valid everywhere one is accepted and counts nothing.
type NumCounts struct {
	// Sat counts saturation events by site.
	Sat [NumSites]uint64
	// Underflows counts nonzero values quantized to zero.
	Underflows uint64
	// BiasN and BiasSumQ accumulate the signed rounding error of
	// quantized writes: BiasSumQ sums (rounded − exact) in quanta over
	// BiasN writes, so BiasSumQ/BiasN is the measured rounding bias —
	// near zero for unbiased (stochastic) rounding, drifting for biased.
	// Saturated writes are excluded (clamping error is not rounding
	// error).
	BiasN    uint64
	BiasSumQ float64
}

// SatTotal sums the saturation events across all sites.
func (c *NumCounts) SatTotal() uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for _, v := range c.Sat {
		n += v
	}
	return n
}

// Merge folds other into c (both may be nil; a nil receiver ignores the
// call, matching the rest of the counting API).
func (c *NumCounts) Merge(other *NumCounts) {
	if c == nil || other == nil {
		return
	}
	for i := range c.Sat {
		c.Sat[i] += other.Sat[i]
	}
	c.Underflows += other.Underflows
	c.BiasN += other.BiasN
	c.BiasSumQ += other.BiasSumQ
}

// AddSat8C is AddSat8 with saturation counting.
func AddSat8C(a, b int8, c *NumCounts) int8 {
	s := int16(a) + int16(b)
	if s > 127 {
		if c != nil {
			c.Sat[SiteAddSat8]++
		}
		return 127
	}
	if s < -128 {
		if c != nil {
			c.Sat[SiteAddSat8]++
		}
		return -128
	}
	return int8(s)
}

// AddSat16C is AddSat16 with saturation counting.
func AddSat16C(a, b int16, c *NumCounts) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		if c != nil {
			c.Sat[SiteAddSat16]++
		}
		return 32767
	}
	if s < -32768 {
		if c != nil {
			c.Sat[SiteAddSat16]++
		}
		return -32768
	}
	return int16(s)
}

// AddSat32C is AddSat32 with saturation counting.
func AddSat32C(a, b int32, c *NumCounts) int32 {
	s := int64(a) + int64(b)
	if s > 2147483647 {
		if c != nil {
			c.Sat[SiteAddSat32]++
		}
		return 2147483647
	}
	if s < -2147483648 {
		if c != nil {
			c.Sat[SiteAddSat32]++
		}
		return -2147483648
	}
	return int32(s)
}

// MulAdd8to16C is MulAdd8to16 with saturation counting (the multiply is
// exact; only the accumulate can clamp).
func MulAdd8to16C(a, b int8, acc int16, c *NumCounts) int16 {
	s := int32(int16(a)*int16(b)) + int32(acc)
	if s > 32767 {
		if c != nil {
			c.Sat[SiteMulAdd8to16]++
		}
		return 32767
	}
	if s < -32768 {
		if c != nil {
			c.Sat[SiteMulAdd8to16]++
		}
		return -32768
	}
	return int16(s)
}

// MulAdd16to32C is MulAdd16to32 with saturation counting.
func MulAdd16to32C(a, b int16, acc int32, c *NumCounts) int32 {
	s := int64(a)*int64(b) + int64(acc)
	if s > 2147483647 {
		if c != nil {
			c.Sat[SiteMulAdd16to32]++
		}
		return 2147483647
	}
	if s < -2147483648 {
		if c != nil {
			c.Sat[SiteMulAdd16to32]++
		}
		return -2147483648
	}
	return int32(s)
}

// Clamp8C is Clamp8 with saturation counting.
func Clamp8C(v int32, c *NumCounts) int8 {
	if v > 127 {
		if c != nil {
			c.Sat[SiteClamp8]++
		}
		return 127
	}
	if v < -128 {
		if c != nil {
			c.Sat[SiteClamp8]++
		}
		return -128
	}
	return int8(v)
}

// Clamp16C is Clamp16 with saturation counting.
func Clamp16C(v int32, c *NumCounts) int16 {
	if v > 32767 {
		if c != nil {
			c.Sat[SiteClamp16]++
		}
		return 32767
	}
	if v < -32768 {
		if c != nil {
			c.Sat[SiteClamp16]++
		}
		return -32768
	}
	return int16(v)
}

// Clamp4C is Clamp4 with saturation counting.
func Clamp4C(v int32, c *NumCounts) int8 {
	if v > 7 {
		if c != nil {
			c.Sat[SiteClamp4]++
		}
		return 7
	}
	if v < -8 {
		if c != nil {
			c.Sat[SiteClamp4]++
		}
		return -8
	}
	return int8(v)
}

// SaturateC is Saturate with saturation counting — the site every raw
// model write passes through in the integer AXPY pipeline.
func (f Format) SaturateC(v int64, c *NumCounts) int32 {
	if v > int64(f.MaxInt()) {
		if c != nil {
			c.Sat[SiteSaturate]++
		}
		return f.MaxInt()
	}
	if v < int64(f.MinInt()) {
		if c != nil {
			c.Sat[SiteSaturate]++
		}
		return f.MinInt()
	}
	return int32(v)
}

// QuantizeBiasedC is QuantizeBiased with saturation counting and
// rounding-bias accumulation: the signed error (rounded − exact) in
// quanta of f is added to the bias accumulator for in-range results.
func (f Format) QuantizeBiasedC(x float32, c *NumCounts) int32 {
	if x != x { // NaN
		return 0
	}
	out := f.QuantizeBiased(x)
	if c != nil {
		f.countQuant(float64(x)*float64(f.Scale()), out, c)
	}
	return out
}

// QuantizeUnbiasedC is QuantizeUnbiased with saturation counting and
// rounding-bias accumulation.
func (f Format) QuantizeUnbiasedC(x float32, rs RandSource, c *NumCounts) int32 {
	if x != x { // NaN
		return 0
	}
	out := f.QuantizeUnbiased(x, rs)
	if c != nil {
		f.countQuant(float64(x)*float64(f.Scale()), out, c)
	}
	return out
}

// QuantizeC dispatches to the counting variant for the given mode.
func (f Format) QuantizeC(x float32, mode Rounding, rs RandSource, c *NumCounts) int32 {
	if mode == Unbiased {
		return f.QuantizeUnbiasedC(x, rs, c)
	}
	return f.QuantizeBiasedC(x, c)
}

// countQuant records the health of one float-to-fixed conversion: the
// exact scaled value, the rounded output. Saturated conversions count a
// SiteQuantize event; in-range ones feed the bias accumulator.
func (f Format) countQuant(scaled float64, out int32, c *NumCounts) {
	if (out == f.MaxInt() && scaled > float64(f.MaxInt())) ||
		(out == f.MinInt() && scaled < float64(f.MinInt())) {
		c.Sat[SiteQuantize]++
		return
	}
	c.BiasN++
	c.BiasSumQ += float64(out) - scaled
}

// RoundRawC is RoundRaw with saturation counting and rounding-bias
// accumulation: the exact value is v/2^shift in quanta of f; the signed
// error of the rounded (pre-saturation) result feeds the bias
// accumulator, and a clamped result counts a SiteSaturate event instead.
func (f Format) RoundRawC(v int64, shift uint, mode Rounding, rs RandSource, c *NumCounts) int32 {
	var u uint32
	if mode == Unbiased && shift != 0 {
		u = rs.Uint32()
	}
	return f.RoundRawUC(v, shift, mode, u, c)
}

// RoundRawUC is RoundRawU with saturation counting and rounding-bias
// accumulation; it draws nothing, so counted and uncounted runs consume a
// randomness stream identically (the lockstep invariant the differential
// tests pin down).
func (f Format) RoundRawUC(v int64, shift uint, mode Rounding, u uint32, c *NumCounts) int32 {
	if c == nil {
		return f.RoundRawU(v, shift, mode, u)
	}
	if shift == 0 {
		out := f.SaturateC(v, c)
		if int64(out) == v {
			c.BiasN++ // exact requantization: zero rounding error
		}
		return out
	}
	mask := int64(1)<<shift - 1
	var r int64
	if mode == Unbiased {
		r = (v + int64(u)&mask) >> shift
	} else {
		half := int64(1) << (shift - 1)
		r = (v + half) >> shift
	}
	out := f.SaturateC(r, c)
	if int64(out) == r {
		c.BiasN++
		c.BiasSumQ += float64(r) - float64(v)/float64(int64(1)<<shift)
	}
	return out
}
