package prng

import (
	"fmt"
	"math"
)

// Statistical quality checks for the generators, used to back the paper's
// Section 5.2 observation that XORSHIFT, while "not very statistically
// reliable" by cryptographic standards, has more than enough quality for
// stochastic rounding (Figure 5a). Each test returns a z-like statistic
// whose magnitude should be small (|z| < ~4) for an adequate generator.

// MonobitZ performs the frequency (monobit) test over n words: the
// fraction of one bits should be 1/2. It returns the normal-approximation
// z statistic.
func MonobitZ(s Source, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("prng: MonobitZ needs n >= 1")
	}
	ones := 0
	for i := 0; i < n; i++ {
		v := s.Uint32()
		for v != 0 {
			ones += int(v & 1)
			v >>= 1
		}
	}
	total := float64(n) * 32
	return (float64(ones) - total/2) / math.Sqrt(total/4), nil
}

// RunsZ performs the runs test on the top bit of n outputs: the number of
// runs of consecutive equal bits should match the expectation for a fair
// coin. It returns the z statistic.
func RunsZ(s Source, n int) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("prng: RunsZ needs n >= 2")
	}
	prev := s.Uint32() >> 31
	ones := int(prev)
	runs := 1
	for i := 1; i < n; i++ {
		b := s.Uint32() >> 31
		ones += int(b)
		if b != prev {
			runs++
		}
		prev = b
	}
	p := float64(ones) / float64(n)
	if p == 0 || p == 1 {
		return math.Inf(1), nil
	}
	expected := 2*float64(n)*p*(1-p) + 1
	variance := 2 * float64(n) * p * (1 - p) * (2*float64(n)*p*(1-p) - 1) / (float64(n) - 1)
	if variance <= 0 {
		return math.Inf(1), nil
	}
	return (float64(runs) - expected) / math.Sqrt(variance), nil
}

// SerialCorrelation returns the lag-1 correlation of n uniform samples in
// [0, 1); it should be near zero (|r|*sqrt(n) behaves like a z statistic).
func SerialCorrelation(s Source, n int) (float64, error) {
	if n < 3 {
		return 0, fmt.Errorf("prng: SerialCorrelation needs n >= 3")
	}
	xs := make([]float64, n)
	var mean float64
	for i := range xs {
		xs[i] = float64(Float32(s))
		mean += xs[i]
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n-1; i++ {
		num += (xs[i] - mean) * (xs[i+1] - mean)
	}
	for _, x := range xs {
		den += (x - mean) * (x - mean)
	}
	if den == 0 {
		return math.Inf(1), nil
	}
	return num / den, nil
}

// Adequate runs all three tests over n samples and reports whether the
// source passes at roughly the 4-sigma level — a deliberately loose bar:
// stochastic rounding only needs approximate uniformity and independence.
func Adequate(s Source, n int) (bool, error) {
	z1, err := MonobitZ(s, n)
	if err != nil {
		return false, err
	}
	z2, err := RunsZ(s, n)
	if err != nil {
		return false, err
	}
	r, err := SerialCorrelation(s, n)
	if err != nil {
		return false, err
	}
	z3 := r * math.Sqrt(float64(n))
	return math.Abs(z1) < 4 && math.Abs(z2) < 4 && math.Abs(z3) < 4, nil
}
