package prng

// MT19937 is the 32-bit Mersenne twister of Matsumoto and Nishimura (1998),
// the default generator in the Boost library that the paper's baseline
// unbiased-rounding implementation calls once per model write. It is
// implemented from the published recurrence; no external code is used.
type MT19937 struct {
	state [mtN]uint32
	index int
}

const (
	mtN           = 624
	mtM           = 397
	mtMatrixA     = 0x9908B0DF
	mtUpperMask   = 0x80000000
	mtLowerMask   = 0x7FFFFFFF
	mtInitMult    = 1812433253
	mtDefaultSeed = 5489
)

// NewMT19937 returns a Mersenne twister seeded with seed using the standard
// initialization recurrence. A zero seed selects the reference default 5489.
func NewMT19937(seed uint32) *MT19937 {
	if seed == 0 {
		seed = mtDefaultSeed
	}
	m := &MT19937{}
	m.state[0] = seed
	for i := 1; i < mtN; i++ {
		m.state[i] = mtInitMult*(m.state[i-1]^(m.state[i-1]>>30)) + uint32(i)
	}
	m.index = mtN
	return m
}

func (m *MT19937) generate() {
	for i := 0; i < mtN; i++ {
		y := (m.state[i] & mtUpperMask) | (m.state[(i+1)%mtN] & mtLowerMask)
		next := m.state[(i+mtM)%mtN] ^ (y >> 1)
		if y&1 != 0 {
			next ^= mtMatrixA
		}
		m.state[i] = next
	}
	m.index = 0
}

// Uint32 returns the next tempered output word.
func (m *MT19937) Uint32() uint32 {
	if m.index >= mtN {
		m.generate()
	}
	y := m.state[m.index]
	m.index++
	y ^= y >> 11
	y ^= (y << 7) & 0x9D2C5680
	y ^= (y << 15) & 0xEFC60000
	y ^= y >> 18
	return y
}
