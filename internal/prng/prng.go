// Package prng implements the pseudorandom number generators used by
// Buckwild! SGD for unbiased (stochastic) rounding, as described in
// Section 5.2 of the paper:
//
//   - XORSHIFT (Marsaglia 2003): a very fast, statistically adequate
//     generator; the paper hand-vectorizes it with AVX2. Here Batch provides
//     the 8-lane equivalent.
//   - MT19937 (Mersenne twister): the Boost default the paper compares
//     against; much slower per number, with excellent statistical quality.
//   - Shared: a wrapper that amortizes generator calls by reusing one random
//     word for several consecutive roundings, trading a little statistical
//     efficiency for hardware efficiency (the strategy the paper uses for
//     its headline numbers).
//
// All generators implement the fixed.RandSource interface via Uint32.
package prng

import "fmt"

// Source is a stream of uniform random words. It is intentionally minimal so
// that the quantizers can be driven by any of the generators here.
type Source interface {
	// Uint32 returns the next 32 uniformly distributed random bits.
	Uint32() uint32
}

// Source64 is a Source that can also hand out 64 bits in one draw. The
// batched rounding paths use it to pull one wide word and stretch it across
// eight packed values (Section 4's "generate fewer random bits" strategy);
// Batch implements it by draining two buffered lane words per call.
type Source64 interface {
	Source
	// Uint64 returns the next 64 uniformly distributed random bits,
	// consuming the stream exactly as two consecutive Uint32 calls would.
	Uint64() uint64
}

// Float32 derives a uniform float in [0, 1) from a source word.
func Float32(s Source) float32 {
	return float32(s.Uint32()>>8) * (1.0 / (1 << 24))
}

// Xorshift32 is Marsaglia's 32-bit xorshift generator (13, 17, 5 triple).
// The zero value is invalid; use NewXorshift32.
type Xorshift32 struct {
	state uint32
}

// NewXorshift32 returns a generator seeded with seed. A zero seed is
// replaced with a fixed non-zero constant, since the all-zero state is a
// fixed point of the xorshift recurrence.
func NewXorshift32(seed uint32) *Xorshift32 {
	if seed == 0 {
		seed = 0x9E3779B9
	}
	return &Xorshift32{state: seed}
}

// Uint32 advances the generator and returns the next word.
func (x *Xorshift32) Uint32() uint32 {
	s := x.state
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	x.state = s
	return s
}

// Xorshift64 is Marsaglia's 64-bit xorshift generator (13, 7, 17 triple).
type Xorshift64 struct {
	state uint64
}

// NewXorshift64 returns a generator seeded with seed (zero is remapped).
func NewXorshift64(seed uint64) *Xorshift64 {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Xorshift64{state: seed}
}

// Uint64 advances the generator and returns the next 64-bit word.
func (x *Xorshift64) Uint64() uint64 {
	s := x.state
	s ^= s << 13
	s ^= s >> 7
	s ^= s << 17
	x.state = s
	return s
}

// Uint32 returns the high half of the next 64-bit word.
func (x *Xorshift64) Uint32() uint32 {
	return uint32(x.Uint64() >> 32)
}

// Xorshift128 is Marsaglia's 128-bit xorshift generator, the variant the
// paper's AVX2 implementation vectorizes.
type Xorshift128 struct {
	x, y, z, w uint32
}

// NewXorshift128 returns a generator seeded from seed via a splitmix-style
// expansion so that distinct seeds give well-separated states.
func NewXorshift128(seed uint64) *Xorshift128 {
	g := &Xorshift128{}
	sm := seed
	next := func() uint32 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return uint32(z ^ (z >> 31))
	}
	g.x, g.y, g.z, g.w = next(), next(), next(), next()
	if g.x|g.y|g.z|g.w == 0 {
		g.w = 1
	}
	return g
}

// Uint32 advances the generator and returns the next word.
func (g *Xorshift128) Uint32() uint32 {
	t := g.x ^ (g.x << 11)
	g.x, g.y, g.z = g.y, g.z, g.w
	g.w = (g.w ^ (g.w >> 19)) ^ (t ^ (t >> 8))
	return g.w
}

// BatchLanes is the number of parallel xorshift lanes in a Batch generator.
// Eight 32-bit lanes correspond to one 256-bit AVX2 register, matching the
// paper's hand-vectorized XORSHIFT that produces "256 fresh bits of
// randomness" per invocation.
const BatchLanes = 8

// Batch runs BatchLanes independent xorshift128 lanes in lockstep,
// modelling the AVX2-vectorized XORSHIFT of Section 5.2. Refill advances all
// lanes with one (simulated) vector instruction sequence; Uint32 then drains
// the buffered lane outputs.
type Batch struct {
	x, y, z, w [BatchLanes]uint32
	buf        [BatchLanes]uint32
	pos        int
}

// NewBatch returns a batch generator with lanes seeded from seed.
func NewBatch(seed uint64) *Batch {
	b := &Batch{}
	sm := seed
	next := func() uint32 {
		sm += 0x9E3779B97F4A7C15
		z := sm
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return uint32(z ^ (z >> 31))
	}
	for i := 0; i < BatchLanes; i++ {
		b.x[i], b.y[i], b.z[i], b.w[i] = next(), next(), next(), next()
		if b.x[i]|b.y[i]|b.z[i]|b.w[i] == 0 {
			b.w[i] = uint32(i) + 1
		}
	}
	b.pos = BatchLanes // force a refill on first use
	return b
}

// Refill advances every lane once and buffers the eight fresh words.
func (b *Batch) Refill() {
	for i := 0; i < BatchLanes; i++ {
		t := b.x[i] ^ (b.x[i] << 11)
		b.x[i], b.y[i], b.z[i] = b.y[i], b.z[i], b.w[i]
		b.w[i] = (b.w[i] ^ (b.w[i] >> 19)) ^ (t ^ (t >> 8))
		b.buf[i] = b.w[i]
	}
	b.pos = 0
}

// Uint32 returns the next buffered word, refilling all lanes when drained.
func (b *Batch) Uint32() uint32 {
	if b.pos >= BatchLanes {
		b.Refill()
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

// Uint64 returns the next 64 buffered random bits — two consecutive lane
// words, identical to two Uint32 calls. One Uint64 is the block draw behind
// batched stochastic rounding: its eight bytes seed the rounding words for
// eight packed values (see kernels.Quantizer), so a full lane refill pays
// for 32 roundings instead of 8.
func (b *Batch) Uint64() uint64 {
	if b.pos+2 <= BatchLanes {
		v := uint64(b.buf[b.pos])<<32 | uint64(b.buf[b.pos+1])
		b.pos += 2
		return v
	}
	hi := b.Uint32()
	lo := b.Uint32()
	return uint64(hi)<<32 | uint64(lo)
}

// Words returns the current buffered words without consuming them,
// refilling first if the buffer is drained. It is used by kernels that share
// one vector of randomness across a whole AXPY (see Shared).
func (b *Batch) Words() *[BatchLanes]uint32 {
	if b.pos >= BatchLanes {
		b.Refill()
	}
	return &b.buf
}

// Shared wraps a Source and reuses each generated word Period times before
// drawing a fresh one. This is the "share randomness among multiple rounded
// numbers" strategy of Section 5.2: each individual rounding remains
// unbiased, but consecutive roundings are no longer independent. Period
// controls the statistical/hardware efficiency trade-off; Period == 1 is
// equivalent to the underlying source.
type Shared struct {
	src    Source
	period int
	count  int
	cur    uint32
}

// NewShared returns a sharing wrapper over src with the given reuse period.
func NewShared(src Source, period int) (*Shared, error) {
	if src == nil {
		return nil, fmt.Errorf("prng: NewShared: nil source")
	}
	if period < 1 {
		return nil, fmt.Errorf("prng: NewShared: period %d < 1", period)
	}
	return &Shared{src: src, period: period, count: period}, nil
}

// Period returns the reuse period.
func (s *Shared) Period() int { return s.period }

// Uint32 returns the current shared word, drawing a fresh one from the
// underlying source every Period calls.
func (s *Shared) Uint32() uint32 {
	if s.count >= s.period {
		s.cur = s.src.Uint32()
		s.count = 0
	}
	s.count++
	return s.cur
}

// Draws reports how many words have been drawn from the underlying source;
// only meaningful when the underlying source is a *Counting.
func Draws(s Source) (int, bool) {
	c, ok := s.(*Counting)
	if !ok {
		return 0, false
	}
	return c.n, true
}

// Counting wraps a Source and counts the words drawn from it. It is used by
// tests and by the hardware-efficiency experiments to verify the
// amortization behaviour of Shared.
type Counting struct {
	Src Source
	n   int
}

// Uint32 draws from the wrapped source and increments the counter.
func (c *Counting) Uint32() uint32 {
	c.n++
	return c.Src.Uint32()
}

// Count returns the number of words drawn so far.
func (c *Counting) Count() int { return c.n }
