package prng

import (
	"math"
	"testing"
)

// badLCG is a deliberately weak generator (tiny-modulus LCG) used to show
// the tests have teeth.
type badLCG struct{ s uint32 }

func (g *badLCG) Uint32() uint32 {
	g.s = (g.s*13 + 7) % 64 // period <= 64, top bits nearly constant
	return g.s << 26
}

// constSource always returns the same word.
type constSource struct{}

func (constSource) Uint32() uint32 { return 0xDEADBEEF }

func TestGoodGeneratorsAdequate(t *testing.T) {
	for _, mk := range []struct {
		name string
		src  Source
	}{
		{"xorshift32", NewXorshift32(7)},
		{"xorshift128", NewXorshift128(7)},
		{"mt19937", NewMT19937(7)},
		{"batch", NewBatch(7)},
	} {
		ok, err := Adequate(mk.src, 20000)
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		if !ok {
			t.Errorf("%s judged inadequate", mk.name)
		}
	}
}

func TestBadGeneratorsFail(t *testing.T) {
	if ok, err := Adequate(&badLCG{s: 1}, 20000); err != nil || ok {
		t.Errorf("tiny LCG should fail (ok=%v, err=%v)", ok, err)
	}
	if ok, err := Adequate(constSource{}, 20000); err != nil || ok {
		t.Errorf("constant source should fail (ok=%v, err=%v)", ok, err)
	}
}

func TestMonobitZ(t *testing.T) {
	z, err := MonobitZ(NewXorshift128(3), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z) > 4 {
		t.Errorf("xorshift monobit z = %v", z)
	}
	z, err = MonobitZ(constSource{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 0xDEADBEEF has 24 one bits out of 32: heavily biased.
	if math.Abs(z) < 10 {
		t.Errorf("biased source monobit z = %v, should be huge", z)
	}
	if _, err := MonobitZ(constSource{}, 0); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestRunsZ(t *testing.T) {
	z, err := RunsZ(NewMT19937(5), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(z) > 4 {
		t.Errorf("mt19937 runs z = %v", z)
	}
	// A constant top bit gives a degenerate (infinite) statistic.
	z, err = RunsZ(constSource{}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(z, 1) {
		t.Errorf("constant-bit runs z = %v, want +Inf", z)
	}
	if _, err := RunsZ(constSource{}, 1); err == nil {
		t.Error("n=1 should fail")
	}
}

func TestSerialCorrelation(t *testing.T) {
	r, err := SerialCorrelation(NewXorshift64(9), 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r)*math.Sqrt(10000) > 4 {
		t.Errorf("xorshift64 serial correlation = %v", r)
	}
	if _, err := SerialCorrelation(NewXorshift64(9), 2); err == nil {
		t.Error("n=2 should fail")
	}
}
