package prng

import (
	"math"
	"testing"
	"testing/quick"
)

// meanAndChi2 computes the mean of n samples in [0,1) and a chi-squared
// statistic over 16 equal bins, used as a cheap uniformity check.
func meanAndChi2(s Source, n int) (mean, chi2 float64) {
	const bins = 16
	var counts [bins]int
	var sum float64
	for i := 0; i < n; i++ {
		u := float64(Float32(s))
		sum += u
		b := int(u * bins)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	expected := float64(n) / bins
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return sum / float64(n), chi2
}

func checkUniform(t *testing.T, name string, s Source) {
	t.Helper()
	mean, chi2 := meanAndChi2(s, 100000)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("%s: mean = %v, want ~0.5", name, mean)
	}
	// 15 dof; chi2 > 60 would be wildly non-uniform.
	if chi2 > 60 {
		t.Errorf("%s: chi2 = %v, too non-uniform", name, chi2)
	}
}

func TestGeneratorsUniform(t *testing.T) {
	checkUniform(t, "xorshift32", NewXorshift32(12345))
	checkUniform(t, "xorshift64", NewXorshift64(12345))
	checkUniform(t, "xorshift128", NewXorshift128(12345))
	checkUniform(t, "mt19937", NewMT19937(12345))
	checkUniform(t, "batch", NewBatch(12345))
}

func TestZeroSeedRemapped(t *testing.T) {
	// A zero state would make xorshift emit zeros forever.
	g32 := NewXorshift32(0)
	g64 := NewXorshift64(0)
	if g32.Uint32() == 0 && g32.Uint32() == 0 {
		t.Error("Xorshift32 zero seed not remapped")
	}
	if g64.Uint32() == 0 && g64.Uint32() == 0 {
		t.Error("Xorshift64 zero seed not remapped")
	}
}

func TestMT19937Reference(t *testing.T) {
	// First outputs for the reference seed 5489, from the published
	// mt19937ar implementation.
	m := NewMT19937(5489)
	want := []uint32{3499211612, 581869302, 3890346734, 3586334585, 545404204}
	for i, w := range want {
		if got := m.Uint32(); got != w {
			t.Fatalf("MT19937 output %d = %d, want %d", i, got, w)
		}
	}
}

func TestMT19937ZeroSeedDefaults(t *testing.T) {
	a := NewMT19937(0)
	b := NewMT19937(5489)
	for i := 0; i < 10; i++ {
		if a.Uint32() != b.Uint32() {
			t.Fatal("zero seed should select reference default 5489")
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := []func() Source{
		func() Source { return NewXorshift32(42) },
		func() Source { return NewXorshift64(42) },
		func() Source { return NewXorshift128(42) },
		func() Source { return NewMT19937(42) },
		func() Source { return NewBatch(42) },
	}
	for _, f := range mk {
		a, b := f(), f()
		for i := 0; i < 100; i++ {
			if a.Uint32() != b.Uint32() {
				t.Fatalf("%T not deterministic at step %d", a, i)
			}
		}
	}
}

func TestBatchMatchesScalarLanes(t *testing.T) {
	// The batch generator's lanes must each follow the xorshift128
	// recurrence independently; consuming 8 words takes exactly one
	// refill of all lanes.
	b := NewBatch(7)
	w1 := *b.Words()
	for i := 0; i < BatchLanes; i++ {
		if got := b.Uint32(); got != w1[i] {
			t.Fatalf("lane %d: Uint32 = %d, Words = %d", i, got, w1[i])
		}
	}
	w2 := *b.Words()
	if w1 == w2 {
		t.Error("Words did not refresh after draining")
	}
}

func TestSharedPeriod(t *testing.T) {
	c := &Counting{Src: NewXorshift32(9)}
	s, err := NewShared(c, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Period() != 8 {
		t.Errorf("Period = %d", s.Period())
	}
	var vals []uint32
	for i := 0; i < 24; i++ {
		vals = append(vals, s.Uint32())
	}
	if c.Count() != 3 {
		t.Errorf("underlying draws = %d, want 3 for 24 outputs at period 8", c.Count())
	}
	for i := 0; i < 8; i++ {
		if vals[i] != vals[0] || vals[8+i] != vals[8] || vals[16+i] != vals[16] {
			t.Fatal("values within a period must be identical")
		}
	}
	if vals[0] == vals[8] && vals[8] == vals[16] {
		t.Error("fresh draws should (almost surely) differ")
	}
}

func TestSharedErrors(t *testing.T) {
	if _, err := NewShared(nil, 4); err == nil {
		t.Error("NewShared(nil) should fail")
	}
	if _, err := NewShared(NewXorshift32(1), 0); err == nil {
		t.Error("NewShared(period 0) should fail")
	}
}

func TestSharedPeriodOneMatchesSource(t *testing.T) {
	a := NewXorshift32(77)
	b := NewXorshift32(77)
	s, err := NewShared(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Uint32() != s.Uint32() {
			t.Fatal("period-1 Shared must match underlying source")
		}
	}
}

func TestDraws(t *testing.T) {
	c := &Counting{Src: NewXorshift32(1)}
	c.Uint32()
	c.Uint32()
	if n, ok := Draws(c); !ok || n != 2 {
		t.Errorf("Draws = %d,%v; want 2,true", n, ok)
	}
	if _, ok := Draws(NewXorshift32(1)); ok {
		t.Error("Draws on plain source should report false")
	}
}

func TestFloat32Range(t *testing.T) {
	check := func(seed uint32) bool {
		g := NewXorshift32(seed)
		for i := 0; i < 100; i++ {
			f := Float32(g)
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestXorshift128FullPeriodSmoke(t *testing.T) {
	// Not a full-period proof, just: no short cycle within 1e5 steps.
	g := NewXorshift128(3)
	seen := make(map[uint32]int, 100000)
	for i := 0; i < 100000; i++ {
		v := g.Uint32()
		if j, ok := seen[v]; ok && i-j < 4 {
			t.Fatalf("suspicious immediate repeat of %d at steps %d and %d", v, j, i)
		}
		seen[v] = i
	}
}

func TestBatchUint64(t *testing.T) {
	// Uint64 must consume the lane stream exactly as two Uint32 calls,
	// from any buffer alignment (including straddling a refill).
	ref := NewBatch(77)
	var words []uint32
	for i := 0; i < 40; i++ {
		words = append(words, ref.Uint32())
	}

	b := NewBatch(77)
	pos := 0
	take32 := func() uint32 {
		w := b.Uint32()
		if w != words[pos] {
			t.Fatalf("word %d: Uint32 = %#x, want %#x", pos, w, words[pos])
		}
		pos++
		return w
	}
	take64 := func() {
		w := b.Uint64()
		want := uint64(words[pos])<<32 | uint64(words[pos+1])
		if w != want {
			t.Fatalf("word %d: Uint64 = %#x, want %#x", pos, w, want)
		}
		pos += 2
	}
	take64() // aligned
	take32() // odd position
	take64() // misaligned
	for pos < 7 {
		take32()
	}
	take64() // straddles the lane refill at word 8
	for i := 0; i < 5; i++ {
		take64()
	}
}
