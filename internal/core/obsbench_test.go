package core

import (
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// BenchmarkObsOverhead is the observability overhead audit: the same
// training run with each obs layer switched on individually, against a
// nil-Observer baseline. The budget (DESIGN.md §15) is ≤5% on the
// training hot path for any single layer at the default sampling rate;
// CI runs this informationally, and the steps/s metric is the number to
// compare across variants.
//
//	go test ./internal/core/ -run xxx -bench BenchmarkObsOverhead -benchtime 2s
func BenchmarkObsOverhead(b *testing.B) {
	const m, threads = 4096, 4
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: m, P: kernels.I8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	base := func() Config {
		return Config{
			Problem: Logistic, D: kernels.I8, M: kernels.I8,
			Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
			Threads: threads, StepSize: 0.05, Epochs: 1,
			Sharing: Racy, Seed: 7,
		}
	}

	variants := []struct {
		name string
		cfg  func(b *testing.B) Config
	}{
		{"baseline", func(*testing.B) Config { return base() }},
		// Counters only: the Observer exists but installs no hooks; the
		// engine pays the sharded-counter increments and sampling checks.
		{"counters", func(*testing.B) Config {
			cfg := base()
			cfg.Observer = &obs.Observer{}
			return cfg
		}},
		// User hooks at the default sampling rate.
		{"hooks", func(*testing.B) Config {
			cfg := base()
			cfg.Observer = &obs.Observer{Hooks: &countingHooks{}}
			return cfg
		}},
		{"series", func(*testing.B) Config {
			cfg := base()
			cfg.Observer = &obs.Observer{Series: obs.NewSeries(0)}
			return cfg
		}},
		{"tracer", func(*testing.B) Config {
			cfg := base()
			cfg.Observer = &obs.Observer{Tracer: obs.NewTracer(0)}
			return cfg
		}},
		{"flight", func(*testing.B) Config {
			cfg := base()
			cfg.Observer = &obs.Observer{Flight: obs.NewFlightRecorder(0)}
			return cfg
		}},
		{"numhealth", func(*testing.B) Config {
			cfg := base()
			cfg.Observer = &obs.Observer{NumHealth: true}
			return cfg
		}},
		// The continuous profiler samples out-of-band; its cost to the
		// training loop is whatever the capture rounds steal. CPU capture
		// is disabled here — the benchmark harness owns the one allowed
		// CPU profile — so this measures the heap/goroutine/mutex rounds.
		{"profiler", func(b *testing.B) Config {
			p, err := obs.NewProfiler(obs.ProfileConfig{
				Dir: b.TempDir(), Interval: 50e6, CPUDuration: 0, MutexFraction: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			p.Start()
			b.Cleanup(p.Stop)
			return base()
		}},
		// Everything at once: the "run with full observability" cost.
		{"everything", func(*testing.B) Config {
			cfg := base()
			cfg.Observer = &obs.Observer{
				Hooks:     &countingHooks{},
				Series:    obs.NewSeries(0),
				Tracer:    obs.NewTracer(0),
				Flight:    obs.NewFlightRecorder(0),
				NumHealth: true,
			}
			return cfg
		}},
	}

	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			cfg := v.cfg(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := TrainDense(cfg, ds); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			steps := float64(b.N) * float64(m)
			b.ReportMetric(steps/b.Elapsed().Seconds(), "steps/s")
		})
	}
}
