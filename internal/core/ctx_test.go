package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
)

func ctxTestConfig(epochs int) Config {
	return Config{
		Problem: Logistic, D: kernels.I8, M: kernels.I8,
		StepSize: 0.2, StepDecay: 0.9, Epochs: epochs,
		Sharing: Sequential, Seed: 17,
	}
}

func ctxTestSet(t *testing.T) *dataset.DenseSet {
	t.Helper()
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 16, M: 100, P: kernels.I8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestTrainDenseCtxPreCancelled(t *testing.T) {
	ds := ctxTestSet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := ctxTestConfig(3)
	cfg.Ctx = ctx
	if _, err := TrainDense(cfg, ds); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestTrainDenseCtxCustomCause(t *testing.T) {
	ds := ctxTestSet(t)
	cause := fmt.Errorf("the supervisor says stop")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	cfg := ctxTestConfig(3)
	cfg.Ctx = ctx
	if _, err := TrainDense(cfg, ds); !errors.Is(err, cause) {
		t.Fatalf("got %v, want the cancellation cause", err)
	}
}

func TestTrainSparseCtxPreCancelled(t *testing.T) {
	ds, err := dataset.GenSparse(dataset.SparseConfig{N: 64, M: 80, Density: 0.1, P: kernels.I8, IdxBits: 16, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := ctxTestConfig(3)
	cfg.Ctx = ctx
	if _, err := TrainSparse(cfg, ds); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestTrainSyncCtxPreCancelled(t *testing.T) {
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 16, M: 100, P: kernels.F32, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = TrainSyncDense(SyncConfig{
		Problem: Logistic, CommBits: 8, Workers: 2, BatchPerWorker: 4,
		StepSize: 0.1, Epochs: 3, Seed: 1, Ctx: ctx,
	}, ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestStartEpochResumeMatchesUninterrupted is the engine-level core of
// the checkpoint/resume determinism story: a run split at an epoch
// boundary (resuming from the dequantized weights) must be bit-identical
// to an uninterrupted run, because the per-(worker, epoch) PRNG streams
// depend only on absolute epoch numbers.
func TestStartEpochResumeMatchesUninterrupted(t *testing.T) {
	ds := ctxTestSet(t)
	const epochs, split = 6, 3

	full, err := TrainDense(ctxTestConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}

	firstCfg := ctxTestConfig(split)
	first, err := TrainDense(firstCfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	resumeCfg := ctxTestConfig(epochs)
	resumeCfg.StartEpoch = split
	resumeCfg.InitWeights = first.W
	second, err := TrainDense(resumeCfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.W {
		if full.W[i] != second.W[i] {
			t.Fatalf("weight %d diverged after resume: %v vs %v", i, full.W[i], second.W[i])
		}
	}
	if got, want := second.TrainLoss[len(second.TrainLoss)-1], full.TrainLoss[epochs]; got != want {
		t.Fatalf("resumed final loss %v, uninterrupted %v", got, want)
	}
	// The resumed run's trajectory covers [split, epochs]; its first
	// entry is the resume-point loss.
	if len(second.TrainLoss) != epochs-split+1 {
		t.Fatalf("resumed trajectory has %d entries, want %d", len(second.TrainLoss), epochs-split+1)
	}
	if second.TrainLoss[0] != full.TrainLoss[split] {
		t.Fatalf("resume-point loss %v, uninterrupted epoch-%d loss %v", second.TrainLoss[0], split, full.TrainLoss[split])
	}
}

func TestStartEpochValidation(t *testing.T) {
	ds := ctxTestSet(t)
	cfg := ctxTestConfig(3)
	cfg.StartEpoch = 4
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Fatal("StartEpoch beyond Epochs should fail")
	}
	cfg = ctxTestConfig(3)
	cfg.StartEpoch = -1
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Fatal("negative StartEpoch should fail")
	}
	cfg = ctxTestConfig(3)
	cfg.InitWeights = []float32{1, 2} // model needs 16
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Fatal("mis-sized InitWeights should fail")
	}
}

func TestEpochEndAbortsRun(t *testing.T) {
	ds := ctxTestSet(t)
	boom := fmt.Errorf("checkpoint write failed")
	cfg := ctxTestConfig(5)
	calls := 0
	cfg.EpochEnd = func(st EpochState) error {
		calls++
		if st.Epoch == 2 {
			return boom
		}
		return nil
	}
	if _, err := TrainDense(cfg, ds); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the EpochEnd error", err)
	}
	if calls != 2 {
		t.Fatalf("EpochEnd called %d times, want 2", calls)
	}
}
