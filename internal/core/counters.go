package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"unsafe"

	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// This file holds the engine side of the observability layer: lock-free
// sharded counters that the workers bump without synchronization, plus
// the sampled write–read staleness measurement.
//
// Design constraints, in order:
//
//   - Zero cost when off. Every instrumentation site is guarded by a
//     single nil check on the worker's *runObs; with no Observer in the
//     Config the engine executes the bare algorithm (bench_test.go's
//     training benchmarks verify no regression).
//   - No contention when on. Each worker owns one cache-line-padded
//     shard and writes it with plain stores; the epoch WaitGroup gives
//     the coordinator a happens-before edge to read them, so neither
//     locks nor atomics appear on the per-step path. The only shared
//     atomic is the model-write clock, which the staleness measurement
//     fundamentally needs (it is what "time" means for staleness).
//   - Racy-safe. Shards are indexed by worker id, so even Racy-sharing
//     runs keep their counters exact while the model itself races.

// obsShardSize pads each worker's counters to two cache lines so shards
// of adjacent workers never false-share.
const obsShardSize = 128

// obsShard is one worker's private counter block. Fields are written
// only by the owning worker; the coordinator reads them after wg.Wait.
type obsShard struct {
	steps        uint64
	modelWrites  uint64
	mutexWaits   uint64
	batchFlushes uint64
	sampled      uint64
	_            [obsShardSize - 5*8]byte
}

// numShard is one worker's numerical-health counter block, padded to the
// shard size so adjacent workers never false-share. Same ownership rules
// as obsShard: the owning worker writes with plain stores, the
// coordinator reads after wg.Wait.
type numShard struct {
	c fixed.NumCounts
	_ [(obsShardSize - unsafe.Sizeof(fixed.NumCounts{})%obsShardSize) % obsShardSize]byte
}

// runObs carries one run's observability state across epochs.
type runObs struct {
	hooks  obs.Hooks
	sample uint64
	// tracer records the run's coarse phase spans (nil when tracing is
	// off; all its methods no-op on nil). tid is the trace track the
	// run's spans render on, taken from the bounding context so runs
	// launched by the sweep pool land on their worker's track.
	tracer *obs.Tracer
	tid    int
	// series is the windowed time-series recorder (nil when off).
	series *obs.Series
	// writeKind labels the model-write counter with the run's rounding
	// strategy.
	writeKind string
	// writes is the global model-write clock: every model write by any
	// worker advances it, and the staleness of a sampled step is the
	// clock distance between its model read and its own write, less the
	// write itself.
	writes atomic.Uint64
	shards []obsShard
	stale  obs.Histogram
	// num holds the per-worker numerical-health shards; nil unless the
	// Observer enabled NumHealth (the kernels then count through the
	// shard handed to them by numCounts).
	num []numShard
	// weights is the newest per-epoch weight-distribution pass, written
	// and read only on the coordinating goroutine.
	weights *obs.WeightStats
}

// newRunObs builds the run's observability state, or nil when the config
// installs no Observer (the zero-cost path).
func newRunObs(cfg *Config) *runObs {
	if cfg.Observer == nil {
		return nil
	}
	threads := cfg.Threads
	if cfg.Sharing == Sequential || threads < 1 {
		threads = 1
	}
	kind := "full-precision"
	if cfg.M != kernels.F32 {
		kind = cfg.Quant.String()
	}
	tracer := cfg.Observer.Tracer
	if tracer == nil {
		tracer = obs.TracerFrom(cfg.Ctx)
	}
	ro := &runObs{
		hooks:     cfg.Observer.Hooks,
		sample:    cfg.Observer.SamplePeriod(),
		tracer:    tracer,
		tid:       obs.TraceTID(cfg.Ctx),
		series:    cfg.Observer.Series,
		writeKind: kind,
		shards:    make([]obsShard, threads),
	}
	if cfg.Observer.NumHealth {
		ro.num = make([]numShard, threads)
	}
	return ro
}

// numCounts returns worker w's numerical-health counter block, or nil
// when health collection is off (the kernels' nil fast path).
func (ro *runObs) numCounts(w int) *fixed.NumCounts {
	if ro == nil || ro.num == nil {
		return nil
	}
	return &ro.num[w].c
}

// span opens a trace span for one of the run's coarse phases. A nil
// runObs (or a runObs without a tracer) returns an inert handle.
func (ro *runObs) span(name string) obs.SpanHandle {
	if ro == nil {
		return obs.SpanHandle{}
	}
	return ro.tracer.Begin("core", name, ro.tid)
}

// stepBegin opens one step for worker w: it bumps the step counter and,
// on sampling steps, records the model-write clock at read time. It
// returns the clock and whether this step is sampled.
func (ro *runObs) stepBegin(w int) (readClock uint64, sampled bool) {
	sh := &ro.shards[w]
	sh.steps++
	if sh.steps%ro.sample != 0 {
		return 0, false
	}
	return ro.writes.Load(), true
}

// stepEnd closes one step: wrote reports whether the step updated the
// model (advancing the write clock), grad is the step's AXPY scale (the
// gradient-magnitude proxy the time-series records), and on sampling
// steps the staleness is measured and reported.
func (ro *runObs) stepEnd(w, epoch int, readClock uint64, sampled, wrote bool, grad float32) {
	sh := &ro.shards[w]
	if wrote {
		sh.modelWrites++
		ro.writes.Add(1)
	}
	if !sampled {
		return
	}
	sh.sampled++
	d := ro.writes.Load() - readClock
	if wrote {
		d-- // exclude this step's own write
	}
	ro.stale.Observe(d)
	if ro.series != nil {
		if grad < 0 {
			grad = -grad
		}
		ro.series.ObserveSample(d, float64(grad))
	}
	if ro.hooks != nil {
		ro.hooks.OnStep(obs.StepInfo{Worker: w, Epoch: epoch, Step: sh.steps, Staleness: d})
	}
}

// lock acquires mu for worker w, counting acquisitions that had to wait.
func (ro *runObs) lock(w int, mu *sync.Mutex) {
	if !mu.TryLock() {
		ro.shards[w].mutexWaits++
		mu.Lock()
	}
}

// workerDone reports a worker finishing its epoch range; stepsBefore is
// the worker's cumulative step count when the epoch began.
func (ro *runObs) workerDone(w, epoch int, stepsBefore uint64) {
	if ro.hooks != nil {
		ro.hooks.OnWorker(obs.WorkerInfo{
			Worker: w, Epoch: epoch, Steps: ro.shards[w].steps - stepsBefore,
		})
	}
}

// observeWeights runs the per-epoch weight-distribution pass over the
// model: magnitude histogram in quanta, real-unit extrema and mean, and
// the count of weights pinned at the format bounds. It runs on the
// coordinating goroutine while the workers are joined (the same boundary
// the loss evaluation uses), and only when health collection is on.
func (ro *runObs) observeWeights(epoch int, w kernels.Vec) {
	if ro == nil || ro.num == nil {
		return
	}
	n := w.Len()
	ws := &obs.WeightStats{Epoch: epoch, Count: n}
	ro.weights = ws
	if n == 0 {
		return
	}
	if w.P == kernels.F32 {
		var sum float64
		finite := 0
		for i := 0; i < n; i++ {
			v := float64(w.F32[i])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ws.NonFinite++
				continue
			}
			if finite == 0 || v < ws.Min {
				ws.Min = v
			}
			if finite == 0 || v > ws.Max {
				ws.Max = v
			}
			sum += v
			finite++
			// Float weights histogram in quanta of 2^-24, the finest
			// fixed grid the engine uses, so fixed and float runs chart
			// on comparable axes.
			q := math.Abs(v) * (1 << 24)
			if q > float64(uint64(1)<<62) {
				q = float64(uint64(1) << 62)
			}
			ws.Magnitude.Observe(uint64(q))
		}
		if finite > 0 {
			ws.Mean = sum / float64(finite)
		}
		return
	}
	f := w.P.Fixed()
	maxRaw, minRaw := f.MaxInt(), f.MinInt()
	minR, maxR := w.Raw(0), w.Raw(0)
	var sumRaw int64
	for i := 0; i < n; i++ {
		r := w.Raw(i)
		if r == maxRaw || r == minRaw {
			ws.AtBounds++
		}
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		sumRaw += int64(r)
		a := r
		if a < 0 {
			a = -a
		}
		ws.Magnitude.Observe(uint64(a))
	}
	q := float64(f.Quantum())
	ws.Min = float64(minR) * q
	ws.Max = float64(maxR) * q
	ws.Mean = float64(sumRaw) * q / float64(n)
}

// epochDone reports a finished epoch (1-based) and its loss to the hooks
// and the time-series recorder, with the numerical-health counters when
// collected (HealthTick lands before EpochTick so both hit the same
// window; OnHealth fires after OnEpoch).
func (ro *runObs) epochDone(epoch int, loss float64) {
	if ro == nil || (ro.hooks == nil && ro.series == nil && ro.num == nil) {
		return
	}
	var steps, waits, writes uint64
	for i := range ro.shards {
		steps += ro.shards[i].steps
		waits += ro.shards[i].mutexWaits
		writes += ro.shards[i].modelWrites
	}
	var health fixed.NumCounts
	if ro.num != nil {
		for i := range ro.num {
			health.Merge(&ro.num[i].c)
		}
		ro.series.HealthTick(health.SatTotal(), health.Underflows, health.BiasN, health.BiasSumQ)
		if ro.tracer != nil {
			biasMean := 0.0
			if health.BiasN > 0 {
				biasMean = health.BiasSumQ / float64(health.BiasN)
			}
			var atBounds uint64
			if ro.weights != nil {
				atBounds = ro.weights.AtBounds
			}
			ro.tracer.Instant("core", "num-health", ro.tid, map[string]string{
				"epoch":       fmt.Sprint(epoch),
				"saturations": fmt.Sprint(health.SatTotal()),
				"underflows":  fmt.Sprint(health.Underflows),
				"bias_mean":   fmt.Sprintf("%.6g", biasMean),
				"at_bounds":   fmt.Sprint(atBounds),
			})
		}
	}
	ro.series.EpochTick(epoch, loss, steps, waits)
	if ro.hooks != nil {
		ro.hooks.OnEpoch(obs.EpochInfo{Epoch: epoch, Loss: loss, Steps: steps})
		if hh, ok := ro.hooks.(obs.HealthHooks); ok && ro.num != nil {
			hi := obs.HealthInfo{
				Epoch: epoch, Loss: loss, Steps: steps, ModelWrites: writes,
				Saturations:   health.SatTotal(),
				Underflows:    health.Underflows,
				BiasSamples:   health.BiasN,
				BiasSumQuanta: health.BiasSumQ,
			}
			if ro.weights != nil {
				hi.WeightsAtBounds = ro.weights.AtBounds
				hi.WeightCount = ro.weights.Count
			}
			hh.OnHealth(hi)
		}
	}
}

// snapshot folds the shards into the exportable run statistics.
func (ro *runObs) snapshot() *obs.RunStats {
	if ro == nil {
		return nil
	}
	s := &obs.RunStats{Staleness: ro.stale.Snapshot()}
	var writes uint64
	for i := range ro.shards {
		sh := &ro.shards[i]
		s.Steps += sh.steps
		writes += sh.modelWrites
		s.MutexWaits += sh.mutexWaits
		s.BatchFlushes += sh.batchFlushes
		s.SampledSteps += sh.sampled
	}
	s.ModelWrites = map[string]uint64{ro.writeKind: writes}
	if ro.num != nil {
		var total fixed.NumCounts
		for i := range ro.num {
			total.Merge(&ro.num[i].c)
		}
		ns := &obs.NumStats{
			Saturations: total.SatTotal(),
			Underflows:  total.Underflows,
			Bias: obs.RoundingBias{
				Mode:      ro.writeKind,
				Samples:   total.BiasN,
				SumQuanta: total.BiasSumQ,
			},
		}
		for site := fixed.Site(0); site < fixed.NumSites; site++ {
			if n := total.Sat[site]; n > 0 {
				if ns.SatBySite == nil {
					ns.SatBySite = make(map[string]uint64)
				}
				ns.SatBySite[site.String()] = n
			}
		}
		if ro.weights != nil {
			w := *ro.weights
			ns.Weights = &w
		}
		s.NumHealth = ns
	}
	return s
}
