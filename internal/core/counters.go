package core

import (
	"sync"
	"sync/atomic"

	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// This file holds the engine side of the observability layer: lock-free
// sharded counters that the workers bump without synchronization, plus
// the sampled write–read staleness measurement.
//
// Design constraints, in order:
//
//   - Zero cost when off. Every instrumentation site is guarded by a
//     single nil check on the worker's *runObs; with no Observer in the
//     Config the engine executes the bare algorithm (bench_test.go's
//     training benchmarks verify no regression).
//   - No contention when on. Each worker owns one cache-line-padded
//     shard and writes it with plain stores; the epoch WaitGroup gives
//     the coordinator a happens-before edge to read them, so neither
//     locks nor atomics appear on the per-step path. The only shared
//     atomic is the model-write clock, which the staleness measurement
//     fundamentally needs (it is what "time" means for staleness).
//   - Racy-safe. Shards are indexed by worker id, so even Racy-sharing
//     runs keep their counters exact while the model itself races.

// obsShardSize pads each worker's counters to two cache lines so shards
// of adjacent workers never false-share.
const obsShardSize = 128

// obsShard is one worker's private counter block. Fields are written
// only by the owning worker; the coordinator reads them after wg.Wait.
type obsShard struct {
	steps        uint64
	modelWrites  uint64
	mutexWaits   uint64
	batchFlushes uint64
	sampled      uint64
	_            [obsShardSize - 5*8]byte
}

// runObs carries one run's observability state across epochs.
type runObs struct {
	hooks  obs.Hooks
	sample uint64
	// tracer records the run's coarse phase spans (nil when tracing is
	// off; all its methods no-op on nil). tid is the trace track the
	// run's spans render on, taken from the bounding context so runs
	// launched by the sweep pool land on their worker's track.
	tracer *obs.Tracer
	tid    int
	// series is the windowed time-series recorder (nil when off).
	series *obs.Series
	// writeKind labels the model-write counter with the run's rounding
	// strategy.
	writeKind string
	// writes is the global model-write clock: every model write by any
	// worker advances it, and the staleness of a sampled step is the
	// clock distance between its model read and its own write, less the
	// write itself.
	writes atomic.Uint64
	shards []obsShard
	stale  obs.Histogram
}

// newRunObs builds the run's observability state, or nil when the config
// installs no Observer (the zero-cost path).
func newRunObs(cfg *Config) *runObs {
	if cfg.Observer == nil {
		return nil
	}
	threads := cfg.Threads
	if cfg.Sharing == Sequential || threads < 1 {
		threads = 1
	}
	kind := "full-precision"
	if cfg.M != kernels.F32 {
		kind = cfg.Quant.String()
	}
	tracer := cfg.Observer.Tracer
	if tracer == nil {
		tracer = obs.TracerFrom(cfg.Ctx)
	}
	return &runObs{
		hooks:     cfg.Observer.Hooks,
		sample:    cfg.Observer.SamplePeriod(),
		tracer:    tracer,
		tid:       obs.TraceTID(cfg.Ctx),
		series:    cfg.Observer.Series,
		writeKind: kind,
		shards:    make([]obsShard, threads),
	}
}

// span opens a trace span for one of the run's coarse phases. A nil
// runObs (or a runObs without a tracer) returns an inert handle.
func (ro *runObs) span(name string) obs.SpanHandle {
	if ro == nil {
		return obs.SpanHandle{}
	}
	return ro.tracer.Begin("core", name, ro.tid)
}

// stepBegin opens one step for worker w: it bumps the step counter and,
// on sampling steps, records the model-write clock at read time. It
// returns the clock and whether this step is sampled.
func (ro *runObs) stepBegin(w int) (readClock uint64, sampled bool) {
	sh := &ro.shards[w]
	sh.steps++
	if sh.steps%ro.sample != 0 {
		return 0, false
	}
	return ro.writes.Load(), true
}

// stepEnd closes one step: wrote reports whether the step updated the
// model (advancing the write clock), grad is the step's AXPY scale (the
// gradient-magnitude proxy the time-series records), and on sampling
// steps the staleness is measured and reported.
func (ro *runObs) stepEnd(w, epoch int, readClock uint64, sampled, wrote bool, grad float32) {
	sh := &ro.shards[w]
	if wrote {
		sh.modelWrites++
		ro.writes.Add(1)
	}
	if !sampled {
		return
	}
	sh.sampled++
	d := ro.writes.Load() - readClock
	if wrote {
		d-- // exclude this step's own write
	}
	ro.stale.Observe(d)
	if ro.series != nil {
		if grad < 0 {
			grad = -grad
		}
		ro.series.ObserveSample(d, float64(grad))
	}
	if ro.hooks != nil {
		ro.hooks.OnStep(obs.StepInfo{Worker: w, Epoch: epoch, Step: sh.steps, Staleness: d})
	}
}

// lock acquires mu for worker w, counting acquisitions that had to wait.
func (ro *runObs) lock(w int, mu *sync.Mutex) {
	if !mu.TryLock() {
		ro.shards[w].mutexWaits++
		mu.Lock()
	}
}

// workerDone reports a worker finishing its epoch range; stepsBefore is
// the worker's cumulative step count when the epoch began.
func (ro *runObs) workerDone(w, epoch int, stepsBefore uint64) {
	if ro.hooks != nil {
		ro.hooks.OnWorker(obs.WorkerInfo{
			Worker: w, Epoch: epoch, Steps: ro.shards[w].steps - stepsBefore,
		})
	}
}

// epochDone reports a finished epoch (1-based) and its loss to the hooks
// and the time-series recorder.
func (ro *runObs) epochDone(epoch int, loss float64) {
	if ro == nil || (ro.hooks == nil && ro.series == nil) {
		return
	}
	var steps, waits uint64
	for i := range ro.shards {
		steps += ro.shards[i].steps
		waits += ro.shards[i].mutexWaits
	}
	ro.series.EpochTick(epoch, loss, steps, waits)
	if ro.hooks != nil {
		ro.hooks.OnEpoch(obs.EpochInfo{Epoch: epoch, Loss: loss, Steps: steps})
	}
}

// snapshot folds the shards into the exportable run statistics.
func (ro *runObs) snapshot() *obs.RunStats {
	if ro == nil {
		return nil
	}
	s := &obs.RunStats{Staleness: ro.stale.Snapshot()}
	var writes uint64
	for i := range ro.shards {
		sh := &ro.shards[i]
		s.Steps += sh.steps
		writes += sh.modelWrites
		s.MutexWaits += sh.mutexWaits
		s.BatchFlushes += sh.batchFlushes
		s.SampledSteps += sh.sampled
	}
	s.ModelWrites = map[string]uint64{ro.writeKind: writes}
	return s
}
