package core

import (
	"sync/atomic"
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// countingHooks counts invocations with atomics so it is safe under
// concurrent workers (and clean under -race).
type countingHooks struct {
	epochs  atomic.Uint64
	steps   atomic.Uint64
	workers atomic.Uint64
	// lastEpochSteps records the cumulative step count reported by the
	// final OnEpoch.
	lastEpochSteps atomic.Uint64
	maxStaleness   atomic.Uint64
}

func (h *countingHooks) OnEpoch(e obs.EpochInfo) {
	h.epochs.Add(1)
	h.lastEpochSteps.Store(e.Steps)
}

func (h *countingHooks) OnStep(s obs.StepInfo) {
	h.steps.Add(1)
	for {
		m := h.maxStaleness.Load()
		if s.Staleness <= m || h.maxStaleness.CompareAndSwap(m, s.Staleness) {
			return
		}
	}
}

func (h *countingHooks) OnWorker(obs.WorkerInfo) { h.workers.Add(1) }

func denseObsConfig(threads int, sharing Sharing, hooks obs.Hooks, sample int) Config {
	return Config{
		Problem: Logistic, D: kernels.I8, M: kernels.I8,
		Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
		Threads: threads, StepSize: 0.05, Epochs: 2,
		Sharing: sharing, Seed: 7,
		Observer: &obs.Observer{Hooks: hooks, StepSample: sample},
	}
}

func TestHooksSequentialDense(t *testing.T) {
	const m = 200
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: m, P: kernels.I8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := &countingHooks{}
	res, err := TrainDense(denseObsConfig(1, Sequential, h, 1), ds)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := uint64(2 * m)
	if got := h.epochs.Load(); got != 2 {
		t.Errorf("OnEpoch fired %d times, want 2", got)
	}
	if got := h.workers.Load(); got != 2 {
		t.Errorf("OnWorker fired %d times, want 2 (1 worker x 2 epochs)", got)
	}
	if got := h.steps.Load(); got != wantSteps {
		t.Errorf("OnStep fired %d times, want %d (StepSample=1)", got, wantSteps)
	}
	if res.Stats == nil {
		t.Fatal("Result.Stats is nil with an Observer installed")
	}
	if res.Stats.Steps != wantSteps || h.lastEpochSteps.Load() != wantSteps {
		t.Errorf("steps: stats=%d hook=%d want %d", res.Stats.Steps, h.lastEpochSteps.Load(), wantSteps)
	}
	// A single sequential worker can never observe remote writes.
	if h.maxStaleness.Load() != 0 || res.Stats.Staleness.Max != 0 {
		t.Errorf("sequential staleness: hook=%d hist=%d, want 0",
			h.maxStaleness.Load(), res.Stats.Staleness.Max)
	}
	if res.Stats.MutexWaits != 0 {
		t.Errorf("sequential run counted %d mutex waits", res.Stats.MutexWaits)
	}
	if got := res.Stats.ModelWrites["unbiased-shared"]; got == 0 || got > wantSteps {
		t.Errorf("model writes by kind = %v", res.Stats.ModelWrites)
	}
}

func TestHooksLockedDense(t *testing.T) {
	const m, threads = 400, 4
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: m, P: kernels.I8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := &countingHooks{}
	res, err := TrainDense(denseObsConfig(threads, Locked, h, 1), ds)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.workers.Load(); got != threads*2 {
		t.Errorf("OnWorker fired %d times, want %d", got, threads*2)
	}
	if res.Stats.Steps != 2*m {
		t.Errorf("steps = %d, want %d", res.Stats.Steps, 2*m)
	}
	if got := h.steps.Load(); got != 2*m {
		t.Errorf("OnStep fired %d times, want %d", got, 2*m)
	}
	if res.Stats.SampledSteps != 2*m {
		t.Errorf("sampled = %d, want %d", res.Stats.SampledSteps, 2*m)
	}
}

// diagonalSparseSet builds a sparse dataset where example i touches only
// coordinate i. Contiguous worker ranges then update disjoint model
// words, so even Racy sharing has no data races and the test runs clean
// under -race while genuinely exercising concurrent hook delivery.
func diagonalSparseSet(n int) *dataset.SparseSet {
	ds := &dataset.SparseSet{N: n, IdxBits: 16}
	for i := 0; i < n; i++ {
		v := kernels.NewVec(kernels.F32, 1)
		v.F32[0] = 1
		ds.Idx = append(ds.Idx, []int32{int32(i)})
		ds.Val = append(ds.Val, v)
		ds.RawVal = append(ds.RawVal, []float32{1})
		y := float32(1)
		if i%2 == 0 {
			y = -1
		}
		ds.Y = append(ds.Y, y)
		ds.TrueW = append(ds.TrueW, y)
	}
	return ds
}

func TestHooksRacySparseDisjoint(t *testing.T) {
	const n, threads = 256, 4
	ds := diagonalSparseSet(n)
	h := &countingHooks{}
	cfg := Config{
		Problem: Logistic, D: kernels.F32, M: kernels.F32,
		Variant: kernels.HandOpt,
		Threads: threads, StepSize: 0.5, Epochs: 3,
		Sharing: Racy, Seed: 11,
		Observer: &obs.Observer{Hooks: h, StepSample: 1},
	}
	res, err := TrainSparse(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := uint64(3 * n)
	if res.Stats.Steps != wantSteps {
		t.Errorf("steps = %d, want %d", res.Stats.Steps, wantSteps)
	}
	if got := h.steps.Load(); got != wantSteps {
		t.Errorf("OnStep fired %d times, want %d", got, wantSteps)
	}
	if got := h.workers.Load(); got != threads*3 {
		t.Errorf("OnWorker fired %d times, want %d", got, threads*3)
	}
	if got := h.epochs.Load(); got != 3 {
		t.Errorf("OnEpoch fired %d times, want 3", got)
	}
	// The logistic gradient never vanishes, so every step writes.
	if got := res.Stats.ModelWrites["full-precision"]; got != wantSteps {
		t.Errorf("model writes = %v, want %d", res.Stats.ModelWrites, wantSteps)
	}
	if res.Stats.Staleness.Count != wantSteps {
		t.Errorf("staleness samples = %d, want %d", res.Stats.Staleness.Count, wantSteps)
	}
	if res.Stats.MutexWaits != 0 {
		t.Errorf("racy run counted %d mutex waits", res.Stats.MutexWaits)
	}
}

func TestHooksSamplingAndBatchFlushes(t *testing.T) {
	const m, batch = 256, 4
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: m, P: kernels.I8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Problem: Logistic, D: kernels.I8, M: kernels.I8,
		Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
		Threads: 1, MiniBatch: batch, StepSize: 0.05, Epochs: 1,
		Sharing: Sequential, Seed: 4,
		Observer: &obs.Observer{StepSample: 8},
	}
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	wantSteps := uint64(m / batch)
	if res.Stats.Steps != wantSteps {
		t.Errorf("steps = %d, want %d", res.Stats.Steps, wantSteps)
	}
	if res.Stats.BatchFlushes != wantSteps {
		t.Errorf("batch flushes = %d, want %d (logistic always writes)",
			res.Stats.BatchFlushes, wantSteps)
	}
	if want := wantSteps / 8; res.Stats.SampledSteps != want {
		t.Errorf("sampled = %d, want %d (period 8)", res.Stats.SampledSteps, want)
	}
}

func TestHooksDisabledByDefault(t *testing.T) {
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 16, M: 64, P: kernels.I8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Problem: Logistic, D: kernels.I8, M: kernels.I8,
		Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
		Threads: 1, StepSize: 0.05, Epochs: 1, Sharing: Sequential, Seed: 6,
	}
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != nil {
		t.Error("Result.Stats should be nil without an Observer")
	}
	cfg.Observer = &obs.Observer{StepSample: -1}
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Error("negative StepSample should fail validation")
	}
}
