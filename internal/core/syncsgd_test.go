package core

import (
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
)

func syncData(t *testing.T) *dataset.DenseSet {
	t.Helper()
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: 2048, P: kernels.F32, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func syncRun(t *testing.T, ds *dataset.DenseSet, bits uint, ef bool) *Result {
	t.Helper()
	res, err := TrainSyncDense(SyncConfig{
		Problem:        Logistic,
		CommBits:       bits,
		Workers:        4,
		BatchPerWorker: 4,
		ErrorFeedback:  ef,
		StepSize:       0.1,
		Epochs:         6,
		Seed:           1,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSyncFullPrecisionConverges(t *testing.T) {
	ds := syncData(t)
	res := syncRun(t, ds, 32, false)
	if last := res.TrainLoss[len(res.TrainLoss)-1]; last >= res.TrainLoss[0]*0.8 {
		t.Errorf("synchronous SGD did not converge: %v", res.TrainLoss)
	}
	if res.Steps == 0 {
		t.Error("no rounds executed")
	}
}

func TestOneBitWithErrorFeedbackMatchesFullPrecision(t *testing.T) {
	// The Seide et al. result (Table 1, C1s): 1-bit gradients with a
	// carried-forward error converge close to full precision.
	ds := syncData(t)
	full := syncRun(t, ds, 32, false)
	oneBit := syncRun(t, ds, 1, true)
	lf := full.TrainLoss[len(full.TrainLoss)-1]
	lo := oneBit.TrainLoss[len(oneBit.TrainLoss)-1]
	if lo > lf*1.3+0.05 {
		t.Errorf("1-bit+EF loss %v too far above full-precision %v", lo, lf)
	}
}

func TestErrorFeedbackMatters(t *testing.T) {
	// Without the carried-forward residual, 1-bit quantization loses
	// the gradient magnitude information and converges worse.
	ds := syncData(t)
	withEF := syncRun(t, ds, 1, true)
	withoutEF := syncRun(t, ds, 1, false)
	le := withEF.TrainLoss[len(withEF.TrainLoss)-1]
	ln := withoutEF.TrainLoss[len(withoutEF.TrainLoss)-1]
	if le >= ln {
		t.Errorf("error feedback (%v) should beat none (%v) at 1 bit", le, ln)
	}
}

func TestMidPrecisionComm(t *testing.T) {
	ds := syncData(t)
	full := syncRun(t, ds, 32, false)
	eight := syncRun(t, ds, 8, true)
	lf := full.TrainLoss[len(full.TrainLoss)-1]
	l8 := eight.TrainLoss[len(eight.TrainLoss)-1]
	if l8 > lf*1.15+0.02 {
		t.Errorf("8-bit comm loss %v too far above full %v", l8, lf)
	}
}

func TestSyncValidation(t *testing.T) {
	ds := syncData(t)
	if _, err := TrainSyncDense(SyncConfig{CommBits: 0, StepSize: 0.1}, ds); err == nil {
		t.Error("zero CommBits should fail")
	}
	if _, err := TrainSyncDense(SyncConfig{CommBits: 33, StepSize: 0.1}, ds); err == nil {
		t.Error("CommBits > 32 should fail")
	}
	if _, err := TrainSyncDense(SyncConfig{CommBits: 8}, ds); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := TrainSyncDense(SyncConfig{CommBits: 8, StepSize: 0.1}, nil); err == nil {
		t.Error("nil dataset should fail")
	}
}

func TestSyncLossHelper(t *testing.T) {
	ds := syncData(t)
	w := make([]float32, ds.N)
	for _, p := range []Problem{Logistic, Linear, SVM} {
		if _, err := SyncLoss(p, w, ds); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}
