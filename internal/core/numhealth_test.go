package core

import (
	"context"
	"errors"
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// TestHooksHealthWatchdogTripsQ4 runs a seeded 4-bit model with an
// oversized step — the update magnitudes saturate the tiny format on
// nearly every write — under a HealthWatchdog with a tight saturation
// budget, and checks the whole divergence path: the watchdog fires, the
// run's context is cancelled with the detailed cause, and TrainDense
// returns an error matching obs.ErrDivergence. The TestHooks prefix keeps
// it in the race-enabled CI filter.
func TestHooksHealthWatchdogTripsQ4(t *testing.T) {
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: 400, P: kernels.I8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	wd := &obs.HealthWatchdog{MaxSatRate: 0.01, MinEpochs: 1, Cancel: cancel}
	cfg := Config{
		Problem: Logistic, D: kernels.I8, M: kernels.I4,
		Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
		Threads: 1, StepSize: 2.0, Epochs: 8,
		Sharing: Sequential, Seed: 7,
		Ctx:      ctx,
		Observer: &obs.Observer{Hooks: wd, NumHealth: true},
	}
	_, err = TrainDense(cfg, ds)
	if err == nil {
		t.Fatal("saturating Q4 run completed without tripping the watchdog")
	}
	if !errors.Is(err, obs.ErrDivergence) {
		t.Fatalf("error %v does not match obs.ErrDivergence", err)
	}
	var de *obs.DivergenceError
	if !errors.As(err, &de) {
		t.Fatalf("error %v carries no DivergenceError detail", err)
	}
	if de.Info.SatRate <= 0.01 {
		t.Errorf("divergence detail reports sat rate %v, want > threshold", de.Info.SatRate)
	}
	if !wd.Fired() {
		t.Error("watchdog did not record firing")
	}
}

// TestHooksNumStatsOnResult checks that enabling NumHealth populates
// Result.NumStats for the async engine, and that the counters are
// plausible for a quantized run (every model write is a bias sample).
func TestHooksNumStatsOnResult(t *testing.T) {
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: 300, P: kernels.I8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Problem: Logistic, D: kernels.I8, M: kernels.I8,
		Variant: kernels.HandOpt, Quant: kernels.QShared, QuantPeriod: 8,
		Threads: 2, StepSize: 0.05, Epochs: 2,
		Sharing: Locked, Seed: 11,
		Observer: &obs.Observer{NumHealth: true},
	}
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	ns := res.NumStats
	if ns == nil || res.Stats == nil || res.Stats.NumHealth != ns {
		t.Fatal("NumStats not exposed on the result with NumHealth enabled")
	}
	if ns.Bias.Samples == 0 {
		t.Error("quantized run measured no rounding-bias samples")
	}
	if ns.Bias.Mode == "" {
		t.Error("bias mode not recorded")
	}
	if ns.Weights == nil || ns.Weights.Count == 0 {
		t.Error("weight distribution not collected")
	}
	// Without the flag the collection stays off and the result is nil.
	cfg.Observer = &obs.Observer{}
	res, err = TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStats != nil {
		t.Error("NumStats collected without NumHealth")
	}
}

// TestSyncNumHealth checks the synchronous engine's comm-grid counting:
// every quantized coordinate is a bias sample, and tiny gradients late in
// a converged run underflow the 4-bit grid.
func TestSyncNumHealth(t *testing.T) {
	ds := syncData(t)
	res, err := TrainSyncDense(SyncConfig{
		Problem:          Logistic,
		CommBits:         4,
		Workers:          2,
		BatchPerWorker:   4,
		ErrorFeedback:    true,
		StepSize:         0.1,
		Epochs:           3,
		Seed:             1,
		CollectNumHealth: true,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	ns := res.NumStats
	if ns == nil {
		t.Fatal("sync run with CollectNumHealth produced no NumStats")
	}
	if ns.Bias.Mode != "comm-grid" {
		t.Errorf("bias mode %q, want comm-grid", ns.Bias.Mode)
	}
	if ns.Bias.Samples == 0 {
		t.Error("no comm-grid bias samples counted")
	}
	if ns.Underflows == 0 {
		t.Error("4-bit comm grid counted no underflows")
	}
	// The grid rounds to nearest, so the mean signed error stays within
	// half a quantum.
	if m := ns.Bias.MeanQuanta(); m < -0.5 || m > 0.5 {
		t.Errorf("comm-grid mean bias %v quanta outside [-0.5, 0.5]", m)
	}

	// Off by default.
	res, err = TrainSyncDense(SyncConfig{
		Problem: Logistic, CommBits: 4, Workers: 2, BatchPerWorker: 4,
		ErrorFeedback: true, StepSize: 0.1, Epochs: 1, Seed: 1,
	}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumStats != nil {
		t.Error("sync NumStats collected without CollectNumHealth")
	}
}
