// Package core implements the Buckwild! training engine — the paper's
// primary contribution: stochastic gradient descent that combines
// asynchronous lock-free execution (Hogwild!) with low-precision fixed-
// point arithmetic, configurable over the full DMGC space.
//
// Worker goroutines share one model vector and update it without
// synchronization; as in the paper, the resulting races are part of the
// algorithm's semantics and provably benign for well-behaved problems. A
// Locked sharing mode is provided as the baseline that Hogwild! famously
// outruns, and a Sequential mode for deterministic single-thread runs.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/metrics"
	"buckwild/internal/obs"
	"buckwild/internal/prng"
)

// Problem selects the loss being minimized. All three have the
// dot-and-AXPY step structure of Section 2.
type Problem int

const (
	// Logistic is l(w) = log(1+exp(-y w.x)), the paper's running
	// example.
	Logistic Problem = iota
	// Linear is squared loss (w.x - y)^2 / 2.
	Linear
	// SVM is hinge loss max(0, 1 - y w.x).
	SVM
)

// String names the problem.
func (p Problem) String() string {
	switch p {
	case Logistic:
		return "logistic"
	case Linear:
		return "linear"
	case SVM:
		return "svm"
	}
	return fmt.Sprintf("Problem(%d)", int(p))
}

// Sharing selects how workers share the model.
type Sharing int

const (
	// Racy is true Hogwild!/Buckwild!: lock-free unsynchronized
	// updates.
	Racy Sharing = iota
	// Locked serializes every step with a mutex — the slow baseline.
	Locked
	// Sequential runs all work on the calling goroutine regardless of
	// Threads, for deterministic experiments.
	Sequential
)

// String names the sharing mode.
func (s Sharing) String() string {
	switch s {
	case Racy:
		return "racy"
	case Locked:
		return "locked"
	case Sequential:
		return "sequential"
	}
	return fmt.Sprintf("Sharing(%d)", int(s))
}

// Config configures a training run.
type Config struct {
	Problem Problem
	// D and M are the dataset and model precisions. D must match the
	// dataset's storage precision.
	D, M kernels.Prec
	// Variant selects generic or hand-optimized kernel semantics.
	Variant kernels.Variant
	// Quant picks the model-write rounding strategy (ignored for F32
	// models); QuantPeriod is the sharing period for QShared.
	Quant       kernels.QuantKind
	QuantPeriod int
	// GradBits is the DMGC G term: the precision of intermediate
	// gradient values (the dot result and the AXPY scalar). Zero or 32
	// means full precision (the G term is omitted from the signature).
	// Low-precision gradients use nearest rounding over a fixed-point
	// grid with range [-16, 16), like the low-precision multipliers of
	// Courbariaux et al. (Table 1's G10).
	GradBits uint
	// Threads is the number of asynchronous workers.
	Threads int
	// MiniBatch is B, the examples per model update (default 1).
	MiniBatch int
	// StepSize is the initial eta; StepDecay multiplies it after each
	// epoch (default 1: constant step).
	StepSize  float32
	StepDecay float32
	Epochs    int
	Sharing   Sharing
	// ObstinateQ emulates the statistical effect of the obstinate cache
	// (Section 6.2) in software: each worker reads the model through a
	// private snapshot that it re-synchronizes from the shared model
	// with probability 1-q before each step, so with probability q a
	// step computes on stale values, exactly as a cache that ignored
	// invalidates would. Writes always reach the shared model. Zero
	// disables the emulation (fully coherent reads).
	ObstinateQ float64
	Seed       uint64
	// Observer installs the run-level observability layer: sharded
	// counters, the sampled staleness histogram, and optional hooks
	// (see internal/obs). Nil runs the bare algorithm — the engine's
	// hot paths then pay only a nil check per step.
	Observer *obs.Observer

	// Ctx, when non-nil, bounds the run: it is checked at every epoch
	// boundary and every ctxCheckMask+1 steps inside the worker loops, so
	// cancellation or deadline expiry stops the run well within one epoch.
	// The run then returns context.Cause(Ctx) — context.Canceled,
	// context.DeadlineExceeded, or whatever cause the canceller supplied
	// (the run supervisor uses causes to tell injected faults apart).
	// Nil means the run is unbounded; the workers then pay only a nil
	// check per ctxCheckMask steps.
	Ctx context.Context
	// StartEpoch is the number of epochs a previous (checkpointed) run of
	// the same configuration already completed: training covers epochs
	// [StartEpoch, Epochs) and the step-size decay schedule continues
	// from where it stopped. Because every worker PRNG is derived from
	// (Seed, worker, epoch), resuming at an epoch boundary replays
	// exactly the updates an uninterrupted run would have performed.
	StartEpoch int
	// InitWeights, when non-nil, seeds the model with these dequantized
	// values instead of zeros — the resume path. The values are
	// re-quantized with nearest rounding, which round-trips exactly for
	// weights that came out of a model at the same precision.
	InitWeights []float32
	// EpochEnd, when non-nil, is invoked on the coordinating goroutine
	// after each epoch's loss evaluation, while the workers are joined —
	// the natural checkpoint boundary. Returning an error aborts the run
	// with that error. The callback must not retain W past its return.
	EpochEnd func(EpochState) error
}

// EpochState is the snapshot EpochEnd receives at an epoch boundary.
type EpochState struct {
	// Epoch is the cumulative number of completed epochs, counting the
	// StartEpoch epochs completed by previous runs.
	Epoch int
	// Loss is the full-precision training loss after the epoch.
	Loss float64
	// W is the live model vector; callers that retain weights must copy
	// (e.g. W.Floats()).
	W kernels.Vec
	// TrainLoss is the loss trajectory of this run so far (index 0 is
	// the loss before this run's first epoch — the resume-point loss
	// when StartEpoch > 0).
	TrainLoss []float64
}

// ctxCheckMask throttles the worker-loop context checks: the context is
// polled every 64 steps, keeping the bare-algorithm hot path free of
// per-step synchronization while bounding cancellation latency.
const ctxCheckMask = 63

// ctxErr returns the context's cause if ctx is cancelled, nil otherwise
// (including for a nil context).
func ctxErr(ctx context.Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	return context.Cause(ctx)
}

func (c *Config) fill() error {
	if c.Threads < 1 {
		c.Threads = 1
	}
	if c.MiniBatch < 1 {
		c.MiniBatch = 1
	}
	if c.Epochs < 1 {
		c.Epochs = 1
	}
	if c.StepSize <= 0 {
		return fmt.Errorf("core: StepSize must be positive")
	}
	if c.StepDecay == 0 {
		c.StepDecay = 1
	}
	if c.StepDecay < 0 || c.StepDecay > 1 {
		return fmt.Errorf("core: StepDecay must be in (0, 1]")
	}
	if c.ObstinateQ < 0 || c.ObstinateQ > 1 {
		return fmt.Errorf("core: ObstinateQ must be in [0, 1]")
	}
	if c.GradBits != 0 && (c.GradBits < 6 || c.GradBits > 32) {
		return fmt.Errorf("core: GradBits must be 0 (full) or in [6, 32]")
	}
	if c.Observer != nil && c.Observer.StepSample < 0 {
		return fmt.Errorf("core: Observer.StepSample must be non-negative")
	}
	if c.StartEpoch < 0 || c.StartEpoch > c.Epochs {
		return fmt.Errorf("core: StartEpoch %d outside [0, Epochs=%d]", c.StartEpoch, c.Epochs)
	}
	return nil
}

// gradFormat returns the fixed-point grid for gradient intermediates, or
// nil for full precision.
func (c *Config) gradFormat() *fixed.Format {
	if c.GradBits == 0 || c.GradBits >= 32 {
		return nil
	}
	f := fixed.Format{Bits: c.GradBits, Frac: c.GradBits - 5} // range [-16, 16)
	return &f
}

// Result reports a finished run.
type Result struct {
	// W is the final model, dequantized.
	W []float32
	// TrainLoss holds the full-precision training loss after each
	// epoch (index 0 is the loss before training).
	TrainLoss []float64
	// Steps counts model updates; Elapsed is wall time spent in
	// workers.
	Steps   int
	Elapsed time.Duration
	// NumbersPerSec is the measured dataset throughput on the host
	// (meaningful for relative comparisons only; absolute hardware
	// efficiency comes from package machine).
	NumbersPerSec float64
	// Stats holds the run's observability counters; nil unless the
	// config installed an Observer.
	Stats *obs.RunStats
	// Series is the windowed training time-series; nil unless the
	// Observer installed a Series recorder.
	Series *obs.SeriesSnapshot
	// NumStats is the run's numerical-health snapshot (also reachable as
	// Stats.NumHealth); nil unless the Observer enabled NumHealth.
	NumStats *obs.NumStats
	// Cluster is the simulated-interconnect snapshot (exact wire bytes,
	// simulated time, update staleness); nil unless the run went through
	// the internal/cluster tier.
	Cluster *obs.ClusterStats
}

// TrainDense runs Buckwild! SGD on a dense dataset.
func TrainDense(cfg Config, ds *dataset.DenseSet) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if ds.X[0].P != cfg.D {
		return nil, fmt.Errorf("core: dataset stored at %v but config says %v", ds.X[0].P, cfg.D)
	}
	w, err := initModel(&cfg, ds.N)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	loss, err := denseLoss(cfg.Problem, w.Floats(), ds)
	if err != nil {
		return nil, err
	}
	res.TrainLoss = append(res.TrainLoss, loss)

	eta := resumeEta(&cfg)
	ro := newRunObs(&cfg)
	trainSpan := ro.span("train-dense")
	start := time.Now()
	var numbers float64
	epochsRun := 0
	for epoch := cfg.StartEpoch; epoch < cfg.Epochs; epoch++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		epochSpan := ro.span("epoch")
		if err := runDenseEpoch(cfg, ds, w, eta, epoch, ro); err != nil {
			return nil, err
		}
		epochsRun++
		numbers += float64(ds.Len()) * float64(ds.N)
		eta *= cfg.StepDecay
		loss, err := denseLoss(cfg.Problem, w.Floats(), ds)
		if err != nil {
			return nil, err
		}
		res.TrainLoss = append(res.TrainLoss, loss)
		ro.observeWeights(epoch+1, w)
		ro.epochDone(epoch+1, loss)
		epochSpan.EndArgs(map[string]string{"epoch": fmt.Sprint(epoch + 1), "loss": fmt.Sprintf("%.6g", loss)})
		if cfg.EpochEnd != nil {
			if err := cfg.EpochEnd(EpochState{Epoch: epoch + 1, Loss: loss, W: w, TrainLoss: res.TrainLoss}); err != nil {
				return nil, err
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.W = w.Floats()
	res.Steps = epochsRun * (ds.Len() / cfg.MiniBatch)
	if res.Elapsed > 0 {
		res.NumbersPerSec = numbers / res.Elapsed.Seconds()
	}
	trainSpan.EndArgs(map[string]string{"epochs": fmt.Sprint(epochsRun)})
	res.Stats = ro.snapshot()
	if res.Stats != nil {
		res.NumStats = res.Stats.NumHealth
	}
	if ro != nil {
		res.Series = ro.series.Snapshot()
	}
	return res, nil
}

// initModel builds the run's model vector: zeros for a fresh run, or the
// re-quantized InitWeights for a resumed one.
func initModel(cfg *Config, n int) (kernels.Vec, error) {
	w := kernels.NewVec(cfg.M, n)
	if cfg.InitWeights == nil {
		return w, nil
	}
	if len(cfg.InitWeights) != n {
		return kernels.Vec{}, fmt.Errorf("core: InitWeights has %d elements, model needs %d", len(cfg.InitWeights), n)
	}
	if w.P == kernels.F32 {
		copy(w.F32, cfg.InitWeights)
		return w, nil
	}
	f := w.P.Fixed()
	for i, x := range cfg.InitWeights {
		w.SetRaw(i, f.QuantizeBiased(x))
	}
	return w, nil
}

// resumeEta replays the step-decay schedule over the epochs a previous
// run already completed.
func resumeEta(cfg *Config) float32 {
	eta := cfg.StepSize
	for i := 0; i < cfg.StartEpoch; i++ {
		eta *= cfg.StepDecay
	}
	return eta
}

// runDenseEpoch processes every example once, spread over the workers.
func runDenseEpoch(cfg Config, ds *dataset.DenseSet, w kernels.Vec, eta float32, epoch int, ro *runObs) error {
	threads := cfg.Threads
	if cfg.Sharing == Sequential {
		threads = 1
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for t := 0; t < threads; t++ {
		worker, err := newDenseWorker(cfg, t, epoch)
		if err != nil {
			return err
		}
		worker.ro = ro
		if nc := ro.numCounts(t); nc != nil {
			worker.nc = nc
			worker.kernel.Num = nc
			if worker.kernel.Q != nil {
				worker.kernel.Q.Num = nc
			}
		}
		lo := t * ds.Len() / threads
		hi := (t + 1) * ds.Len() / threads
		run := func(t, lo, hi int, wk *denseWorker) {
			defer wg.Done()
			errs[t] = wk.run(ds, w, eta, lo, hi, cfg.Sharing == Locked, &mu)
		}
		wg.Add(1)
		if cfg.Sharing == Sequential {
			run(t, lo, hi, worker)
		} else {
			go run(t, lo, hi, worker)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// denseWorker holds one worker's kernels and scratch state.
type denseWorker struct {
	cfg     Config
	kernel  *kernels.Dense
	scratch []float32
	order   *prng.Xorshift64
	// id and epoch locate the worker for observability; ro is the run's
	// shared observability state (nil when no Observer is installed).
	id    int
	epoch int
	ro    *runObs
	// snapshot is the worker's stale view of the model when the
	// obstinate-cache emulation is active (ObstinateQ > 0).
	snapshot kernels.Vec
	// gradFmt quantizes gradient intermediates (nil = full precision).
	gradFmt *fixed.Format
	// nc is the worker's numerical-health counter block (nil when health
	// collection is off); the same block is shared with the kernel and
	// its quantizer.
	nc *fixed.NumCounts
}

// quantGrad rounds a gradient intermediate onto the G grid, counting a
// nonzero value that quantizes to zero as an underflow when health
// collection is on.
func (dw *denseWorker) quantGrad(v float32) float32 {
	if dw.gradFmt == nil {
		return v
	}
	q := dw.gradFmt.QuantizeBiased(v)
	if dw.nc != nil && q == 0 && v != 0 {
		dw.nc.Underflows++
	}
	return dw.gradFmt.Dequantize(q)
}

func newDenseWorker(cfg Config, id, epoch int) (*denseWorker, error) {
	var q *kernels.Quantizer
	var err error
	if cfg.M != kernels.F32 {
		q, err = kernels.NewQuantizer(cfg.M, cfg.Quant, cfg.QuantPeriod,
			cfg.Seed^uint64(id)*0x9E3779B9+uint64(epoch)|1)
		if err != nil {
			return nil, err
		}
	}
	k, err := kernels.NewDense(cfg.D, cfg.M, cfg.Variant, q)
	if err != nil {
		return nil, err
	}
	return &denseWorker{cfg: cfg, kernel: k, gradFmt: cfg.gradFormat(), id: id, epoch: epoch,
		order: prng.NewXorshift64(cfg.Seed ^ (uint64(id)+1)*0x51ED2701 ^ uint64(epoch))}, nil
}

// run processes examples [lo, hi) in mini-batches.
func (dw *denseWorker) run(ds *dataset.DenseSet, w kernels.Vec, eta float32, lo, hi int, locked bool, mu *sync.Mutex) error {
	b := dw.cfg.MiniBatch
	var stepsBefore uint64
	if dw.ro != nil {
		stepsBefore = dw.ro.shards[dw.id].steps
	}
	var steps uint64
	for i := lo; i < hi; i += b {
		if dw.cfg.Ctx != nil && steps&ctxCheckMask == 0 {
			if err := ctxErr(dw.cfg.Ctx); err != nil {
				return err
			}
		}
		steps++
		end := i + b
		if end > hi {
			end = hi
		}
		if locked {
			if dw.ro != nil {
				dw.ro.lock(dw.id, mu)
			} else {
				mu.Lock()
			}
		}
		if b == 1 {
			dw.step(ds, w, eta, i)
		} else {
			dw.batchStep(ds, w, eta, i, end)
		}
		if locked {
			mu.Unlock()
		}
	}
	if dw.ro != nil {
		dw.ro.workerDone(dw.id, dw.epoch, stepsBefore)
	}
	return nil
}

// step performs one single-example update: dot, scalar glue, AXPY.
func (dw *denseWorker) step(ds *dataset.DenseSet, w kernels.Vec, eta float32, i int) {
	var readClock uint64
	var sampled bool
	if dw.ro != nil {
		readClock, sampled = dw.ro.stepBegin(dw.id)
	}
	x := ds.X[i]
	view := w
	if dw.cfg.ObstinateQ > 0 {
		view = dw.obstinateView(w)
	}
	d := dw.quantGrad(dw.kernel.Dot(x, view))
	a := dw.quantGrad(GradScale(dw.cfg.Problem, d, ds.Y[i], eta))
	wrote := a != 0
	if wrote {
		dw.kernel.Axpy(a, x, w)
		if dw.cfg.ObstinateQ > 0 && !sameVec(view, w) {
			// The worker's own writes land in its cached copy.
			dw.kernel.Axpy(a, x, view)
		}
	}
	if dw.ro != nil {
		dw.ro.stepEnd(dw.id, dw.epoch, readClock, sampled, wrote, a)
	}
}

// obstinateView returns the model view for this step: with probability
// 1-q the snapshot is refreshed from the shared model (the invalidate was
// honoured); otherwise the stale snapshot is used as-is.
func (dw *denseWorker) obstinateView(w kernels.Vec) kernels.Vec {
	if dw.snapshot.Len() == 0 {
		dw.snapshot = w.Clone()
		return dw.snapshot
	}
	u := float64(dw.order.Uint32()>>8) * (1.0 / (1 << 24))
	if u >= dw.cfg.ObstinateQ {
		copyVec(dw.snapshot, w)
	}
	return dw.snapshot
}

// sameVec reports whether two Vecs alias the same storage.
func sameVec(a, b kernels.Vec) bool {
	if a.P != b.P || a.Len() != b.Len() || a.Len() == 0 {
		return false
	}
	switch a.P {
	case kernels.F32:
		return &a.F32[0] == &b.F32[0]
	case kernels.I16:
		return &a.I16[0] == &b.I16[0]
	default:
		return &a.I8[0] == &b.I8[0]
	}
}

// copyVec copies src's storage into dst (same precision and length).
func copyVec(dst, src kernels.Vec) {
	switch src.P {
	case kernels.F32:
		copy(dst.F32, src.F32)
	case kernels.I16:
		copy(dst.I16, src.I16)
	default:
		copy(dst.I8, src.I8)
	}
}

// batchStep accumulates B gradients at full precision and writes the model
// once (Section 5.4: the model is written less frequently, so cache lines
// are invalidated correspondingly less frequently).
func (dw *denseWorker) batchStep(ds *dataset.DenseSet, w kernels.Vec, eta float32, lo, hi int) {
	var readClock uint64
	var sampled bool
	if dw.ro != nil {
		readClock, sampled = dw.ro.stepBegin(dw.id)
	}
	if dw.scratch == nil {
		dw.scratch = make([]float32, w.Len())
	}
	g := dw.scratch
	for j := range g {
		g[j] = 0
	}
	any := false
	var gradAbs float32
	for i := lo; i < hi; i++ {
		d := dw.quantGrad(dw.kernel.Dot(ds.X[i], w))
		a := dw.quantGrad(GradScale(dw.cfg.Problem, d, ds.Y[i], eta) / float32(hi-lo))
		if a == 0 {
			continue
		}
		any = true
		if a < 0 {
			gradAbs -= a
		} else {
			gradAbs += a
		}
		x := ds.X[i]
		for j := 0; j < x.Len(); j++ {
			g[j] += a * x.At(j)
		}
	}
	if any {
		q := dw.kernel.Q
		for j := range g {
			if g[j] != 0 || w.P == kernels.F32 {
				w.Set(j, w.At(j)+g[j], q)
			}
		}
	}
	if dw.ro != nil {
		if any {
			dw.ro.shards[dw.id].batchFlushes++
		}
		dw.ro.stepEnd(dw.id, dw.epoch, readClock, sampled, any, gradAbs)
	}
}

// GradScale returns the AXPY scalar a such that the SGD update is
// w <- w + a*x. It is exported for the engines layered on top of the
// per-step kernels (the synchronous C-term engine here and the cluster
// tier in internal/cluster), so every engine shares one gradient rule.
func GradScale(p Problem, dot, y, eta float32) float32 {
	switch p {
	case Logistic:
		// -grad = y * sigmoid(-y (w.x)) * x
		return eta * y * sigmoid(-y*dot)
	case Linear:
		return eta * (y - dot)
	default: // SVM
		if y*dot < 1 {
			return eta * y
		}
		return 0
	}
}

func sigmoid(z float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(z))))
}

// denseLoss evaluates the configured loss on the raw data.
func denseLoss(p Problem, w []float32, ds *dataset.DenseSet) (float64, error) {
	switch p {
	case Logistic:
		return metrics.LogisticLoss(w, ds.Raw, ds.Y)
	case Linear:
		return metrics.SquaredLoss(w, ds.Raw, ds.Y)
	default:
		return metrics.HingeLoss(w, ds.Raw, ds.Y)
	}
}
