package core

import (
	"math"
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/metrics"
)

func denseData(t *testing.T, n, m int, p kernels.Prec, seed uint64) *dataset.DenseSet {
	t.Helper()
	ds, err := dataset.GenDense(dataset.DenseConfig{N: n, M: m, P: p, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func baseCfg(d, m kernels.Prec) Config {
	return Config{
		Problem:     Logistic,
		D:           d,
		M:           m,
		Variant:     kernels.HandOpt,
		Quant:       kernels.QShared,
		QuantPeriod: 8,
		Threads:     1,
		StepSize:    0.1,
		Epochs:      5,
		Sharing:     Sequential,
		Seed:        7,
	}
}

func TestTrainDenseFullPrecisionConverges(t *testing.T) {
	ds := denseData(t, 64, 2000, kernels.F32, 1)
	cfg := baseCfg(kernels.F32, kernels.F32)
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1]
	if last >= first*0.8 {
		t.Errorf("loss did not fall enough: %v -> %v", first, last)
	}
	errRate, _ := metrics.BinaryError(res.W, ds.Raw, ds.Y)
	if errRate > 0.25 {
		t.Errorf("training error %v too high", errRate)
	}
	if res.Steps != 5*2000 {
		t.Errorf("Steps = %d", res.Steps)
	}
	if res.NumbersPerSec <= 0 {
		t.Error("throughput not measured")
	}
}

func TestTrainDenseLowPrecisionConverges(t *testing.T) {
	// The paper's headline statistical claim: 8-bit Buckwild! with
	// unbiased rounding reaches quality close to full precision.
	ds32 := denseData(t, 64, 2000, kernels.F32, 2)
	ds8, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: 2000, P: kernels.I8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := TrainDense(baseCfg(kernels.F32, kernels.F32), ds32)
	if err != nil {
		t.Fatal(err)
	}
	low, err := TrainDense(baseCfg(kernels.I8, kernels.I8), ds8)
	if err != nil {
		t.Fatal(err)
	}
	fl := full.TrainLoss[len(full.TrainLoss)-1]
	ll := low.TrainLoss[len(low.TrainLoss)-1]
	if ll > fl*1.35+0.05 {
		t.Errorf("8-bit loss %v too far above full-precision loss %v", ll, fl)
	}
}

func TestBiasedRoundingHurtsAtLowPrecision(t *testing.T) {
	// Figure 5a: biased rounding stalls (small updates vanish), while
	// unbiased keeps making progress.
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: 1500, P: kernels.I8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	unb := baseCfg(kernels.I8, kernels.I8)
	unb.StepSize = 0.02
	biased := unb
	biased.Quant = kernels.QBiased
	ru, err := TrainDense(unb, ds)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := TrainDense(biased, ds)
	if err != nil {
		t.Fatal(err)
	}
	lu := ru.TrainLoss[len(ru.TrainLoss)-1]
	lb := rb.TrainLoss[len(rb.TrainLoss)-1]
	if lu >= lb {
		t.Errorf("unbiased (%v) should beat biased (%v) at small steps", lu, lb)
	}
}

func TestRacyHogwildConverges(t *testing.T) {
	ds := denseData(t, 64, 2000, kernels.I8, 4)
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.Sharing = Racy
	cfg.Threads = 4
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1]
	if last >= first*0.85 {
		t.Errorf("racy training did not converge: %v -> %v", first, last)
	}
}

func TestLockedMatchesRacyQuality(t *testing.T) {
	ds := denseData(t, 48, 1500, kernels.I8, 5)
	racy := baseCfg(kernels.I8, kernels.I8)
	racy.Sharing = Racy
	racy.Threads = 4
	locked := racy
	locked.Sharing = Locked
	rr, err := TrainDense(racy, ds)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := TrainDense(locked, ds)
	if err != nil {
		t.Fatal(err)
	}
	lr := rr.TrainLoss[len(rr.TrainLoss)-1]
	ll := rl.TrainLoss[len(rl.TrainLoss)-1]
	if math.Abs(lr-ll) > 0.2*math.Max(lr, ll)+0.05 {
		t.Errorf("racy (%v) and locked (%v) should reach similar quality", lr, ll)
	}
}

func TestMiniBatchTrains(t *testing.T) {
	ds := denseData(t, 64, 2000, kernels.I8, 6)
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.MiniBatch = 8
	cfg.StepSize = 0.4
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1]
	if last >= first*0.9 {
		t.Errorf("mini-batch training did not converge: %v -> %v", first, last)
	}
	if res.Steps != 5*(2000/8) {
		t.Errorf("Steps = %d", res.Steps)
	}
}

func TestVeryLargeMiniBatchHurtsStatistically(t *testing.T) {
	// Figure 6e: with the epoch budget fixed, very large B makes fewer
	// updates and converges worse.
	ds := denseData(t, 64, 2000, kernels.F32, 7)
	small := baseCfg(kernels.F32, kernels.F32)
	small.MiniBatch = 1
	big := small
	big.MiniBatch = 256
	rs, err := TrainDense(small, ds)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := TrainDense(big, ds)
	if err != nil {
		t.Fatal(err)
	}
	ls := rs.TrainLoss[len(rs.TrainLoss)-1]
	lb := rb.TrainLoss[len(rb.TrainLoss)-1]
	if lb <= ls {
		t.Errorf("B=256 (%v) should trail B=1 (%v) at fixed epochs", lb, ls)
	}
}

func TestLinearAndSVMProblems(t *testing.T) {
	lin, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: 1000, P: kernels.F32, Regression: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(kernels.F32, kernels.F32)
	cfg.Problem = Linear
	cfg.StepSize = 0.05
	res, err := TrainDense(cfg, lin)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.5 {
		t.Errorf("linear regression did not converge: %v", res.TrainLoss)
	}

	svm := denseData(t, 32, 1000, kernels.F32, 9)
	cfg = baseCfg(kernels.F32, kernels.F32)
	cfg.Problem = SVM
	cfg.StepSize = 0.02
	res, err = TrainDense(cfg, svm)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.8 {
		t.Errorf("SVM did not converge: %v", res.TrainLoss)
	}
}

func TestTrainSparseConverges(t *testing.T) {
	ds, err := dataset.GenSparse(dataset.SparseConfig{
		N: 512, M: 2000, Density: 0.03, P: kernels.I8, IdxBits: 16, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.StepSize = 0.2
	cfg.Epochs = 8
	res, err := TrainSparse(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.TrainLoss[0], res.TrainLoss[len(res.TrainLoss)-1]
	if last >= first*0.9 {
		t.Errorf("sparse training did not converge: %v -> %v", first, last)
	}
}

func TestTrainSparseRacyThreads(t *testing.T) {
	ds, err := dataset.GenSparse(dataset.SparseConfig{
		N: 512, M: 2000, Density: 0.03, P: kernels.I8, IdxBits: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.Sharing = Racy
	cfg.Threads = 4
	cfg.StepSize = 0.2
	cfg.Epochs = 8
	res, err := TrainSparse(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.9 {
		t.Error("racy sparse training did not converge")
	}
}

func TestConfigValidation(t *testing.T) {
	ds := denseData(t, 8, 10, kernels.I8, 12)
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.StepSize = 0
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Error("zero step size should fail")
	}
	cfg = baseCfg(kernels.I8, kernels.I8)
	cfg.StepDecay = 2
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Error("decay > 1 should fail")
	}
	cfg = baseCfg(kernels.I16, kernels.I8) // dataset stored at I8
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Error("precision mismatch should fail")
	}
	if _, err := TrainDense(baseCfg(kernels.I8, kernels.I8), nil); err == nil {
		t.Error("nil dataset should fail")
	}
	sp, _ := dataset.GenSparse(dataset.SparseConfig{N: 64, M: 10, Density: 0.1, P: kernels.I8, IdxBits: 16, Seed: 1})
	scfg := baseCfg(kernels.I8, kernels.I8)
	scfg.MiniBatch = 4
	if _, err := TrainSparse(scfg, sp); err == nil {
		t.Error("sparse mini-batch should be rejected")
	}
}

func TestStepDecayReducesStep(t *testing.T) {
	ds := denseData(t, 32, 500, kernels.F32, 13)
	cfg := baseCfg(kernels.F32, kernels.F32)
	cfg.StepDecay = 0.5
	cfg.Epochs = 6
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	// Later epochs should move the loss less than early ones.
	early := math.Abs(res.TrainLoss[1] - res.TrainLoss[0])
	late := math.Abs(res.TrainLoss[6] - res.TrainLoss[5])
	if late > early {
		t.Errorf("decayed steps should change loss less: early %v, late %v", early, late)
	}
}

func TestEnumStrings(t *testing.T) {
	if Logistic.String() != "logistic" || Linear.String() != "linear" || SVM.String() != "svm" {
		t.Error("Problem names")
	}
	if Racy.String() != "racy" || Locked.String() != "locked" || Sequential.String() != "sequential" {
		t.Error("Sharing names")
	}
}

func TestObstinateEmulationConverges(t *testing.T) {
	// Figure 6f: even very high obstinacy has no detectable effect on
	// statistical efficiency.
	ds := denseData(t, 64, 2000, kernels.I8, 20)
	run := func(q float64) float64 {
		cfg := baseCfg(kernels.I8, kernels.I8)
		cfg.Sharing = Racy
		cfg.Threads = 4
		cfg.ObstinateQ = q
		res, err := TrainDense(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainLoss[len(res.TrainLoss)-1]
	}
	coherent := run(0)
	obstinate := run(0.95)
	if obstinate > coherent*1.3+0.05 {
		t.Errorf("q=0.95 loss %v too far above coherent loss %v", obstinate, coherent)
	}
}

func TestObstinateQValidation(t *testing.T) {
	ds := denseData(t, 8, 10, kernels.I8, 21)
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.ObstinateQ = 1.5
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Error("q > 1 should fail")
	}
}

func TestGradientPrecision(t *testing.T) {
	// The DMGC G term: a 10-bit gradient grid (Courbariaux et al.)
	// should barely change convergence; a 6-bit grid visibly hurts.
	ds := denseData(t, 64, 2000, kernels.F32, 30)
	run := func(gradBits uint) float64 {
		cfg := baseCfg(kernels.F32, kernels.F32)
		cfg.GradBits = gradBits
		res, err := TrainDense(cfg, ds)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainLoss[len(res.TrainLoss)-1]
	}
	full := run(0)
	g10 := run(10)
	g6 := run(6)
	if g10 > full*1.2+0.02 {
		t.Errorf("G10 loss %v too far above full %v", g10, full)
	}
	if g6 < g10 {
		t.Errorf("G6 (%v) should not beat G10 (%v)", g6, g10)
	}
}

func TestGradientPrecisionValidation(t *testing.T) {
	ds := denseData(t, 8, 10, kernels.I8, 31)
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.GradBits = 3
	if _, err := TrainDense(cfg, ds); err == nil {
		t.Error("GradBits below 6 should fail")
	}
}

func TestGradientPrecisionSparse(t *testing.T) {
	ds, err := dataset.GenSparse(dataset.SparseConfig{
		N: 512, M: 1500, Density: 0.03, P: kernels.I8, IdxBits: 16, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseCfg(kernels.I8, kernels.I8)
	cfg.GradBits = 10
	cfg.StepSize = 0.2
	cfg.Epochs = 6
	res, err := TrainSparse(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0]*0.9 {
		t.Error("sparse G10 training did not converge")
	}
}
