package core

import (
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// (The TestHooks name prefix keeps these in CI's race-enabled core
// filter alongside the other observability tests.)

func telemetryDense(t *testing.T) *dataset.DenseSet {
	t.Helper()
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 32, M: 150, P: kernels.I8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestHooksTraceDeterminism runs the same seeded Sequential training
// twice with a tracer installed and asserts the traces agree span for
// span: same count, same (category, name, track) sequence. Durations
// differ — wall clock isn't deterministic — but what the engine did is.
func TestHooksTraceDeterminism(t *testing.T) {
	ds := telemetryDense(t)
	runOnce := func() (obs.TraceSnapshot, uint64) {
		tr := obs.NewTracer(256)
		cfg := denseObsConfig(1, Sequential, nil, 0)
		cfg.Observer = &obs.Observer{Tracer: tr}
		if _, err := TrainDense(cfg, ds); err != nil {
			t.Fatal(err)
		}
		return tr.Snapshot(), tr.SpanCount()
	}
	snapA, countA := runOnce()
	snapB, countB := runOnce()
	if countA != countB {
		t.Fatalf("span counts differ across identical runs: %d vs %d", countA, countB)
	}
	if countA == 0 {
		t.Fatal("no spans recorded")
	}
	if len(snapA.Spans) != len(snapB.Spans) {
		t.Fatalf("retained spans differ: %d vs %d", len(snapA.Spans), len(snapB.Spans))
	}
	for i := range snapA.Spans {
		a, b := snapA.Spans[i], snapB.Spans[i]
		if a.Cat != b.Cat || a.Name != b.Name || a.TID != b.TID {
			t.Fatalf("span %d differs: %s/%s@%d vs %s/%s@%d", i, a.Cat, a.Name, a.TID, b.Cat, b.Name, b.TID)
		}
	}
	// 2 epochs + the enclosing train span.
	if want := uint64(3); countA != want {
		t.Errorf("span count %d, want %d (2 epoch spans + train-dense)", countA, want)
	}
}

// TestHooksSeriesOnResult checks that installing a Series surfaces a
// snapshot on the result whose totals match the engine's own counters.
func TestHooksSeriesOnResult(t *testing.T) {
	ds := telemetryDense(t)
	se := obs.NewSeries(8)
	cfg := denseObsConfig(1, Sequential, nil, 1)
	cfg.Observer = &obs.Observer{Series: se, StepSample: 1}
	res, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("Result.Series is nil with a Series installed")
	}
	if got, want := len(res.Series.Windows), cfg.Epochs; got != want {
		t.Fatalf("%d windows, want %d (stride 1, one per epoch)", got, want)
	}
	var steps, samples uint64
	for _, w := range res.Series.Windows {
		steps += w.Steps
		samples += w.Staleness.Count
	}
	if want := uint64(cfg.Epochs * ds.Len()); steps != want {
		t.Errorf("series steps %d, want %d", steps, want)
	}
	if samples != steps {
		t.Errorf("series staleness samples %d, want %d (StepSample=1)", samples, steps)
	}
	if got, want := res.Series.Final().Loss, res.TrainLoss[len(res.TrainLoss)-1]; got != want {
		t.Errorf("final window loss %g, want %g", got, want)
	}
	// No observer: no series, the established nil fast path.
	cfg.Observer = nil
	res, err = TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series != nil {
		t.Error("Result.Series should be nil without an Observer")
	}
}
