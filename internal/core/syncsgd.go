package core

import (
	"context"
	"fmt"
	"math"

	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
	"buckwild/internal/metrics"
	"buckwild/internal/obs"
)

// This file implements the explicit-communication corner of the DMGC space
// (the C term): synchronous data-parallel SGD in which workers exchange
// quantized gradients instead of sharing a model through the cache
// hierarchy. With CommBits=1 and error feedback it reproduces the system of
// Seide et al. (Table 1, signature C1s): gradients are "quantized ... to
// but one bit per value" while a full-precision model and a full-precision
// carried-forward quantization error preserve convergence.

// SyncConfig configures a synchronous quantized-communication run.
type SyncConfig struct {
	Problem Problem
	// CommBits is the communication precision in bits (1..32; 32 means
	// full-precision communication).
	CommBits uint
	// Workers is the number of data-parallel workers; each contributes
	// one quantized gradient per round.
	Workers int
	// BatchPerWorker is the examples each worker accumulates per round.
	BatchPerWorker int
	// ErrorFeedback carries the quantization residual into the next
	// round (Seide et al.'s essential trick).
	ErrorFeedback bool
	StepSize      float32
	Epochs        int
	Seed          uint64
	// Ctx, when non-nil, bounds the run: it is checked before every
	// communication round, and cancellation returns context.Cause(Ctx).
	Ctx context.Context
	// CollectNumHealth enables numerical-health counting over the
	// communication quantizer: gradient coordinates quantized to zero
	// (underflows) and the signed grid rounding error in grid steps fill
	// Result.NumStats with mode "comm-grid".
	CollectNumHealth bool
}

func (c *SyncConfig) fill() error {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.BatchPerWorker < 1 {
		c.BatchPerWorker = 1
	}
	if c.Epochs < 1 {
		c.Epochs = 1
	}
	if c.CommBits < 1 || c.CommBits > 32 {
		return fmt.Errorf("core: CommBits must be in [1, 32]")
	}
	if c.StepSize <= 0 {
		return fmt.Errorf("core: StepSize must be positive")
	}
	return nil
}

// TrainSyncDense runs synchronous data-parallel SGD with quantized
// inter-worker communication on a dense dataset (stored at full precision:
// this engine exercises the C term in isolation, like the systems it
// models).
func TrainSyncDense(cfg SyncConfig, ds *dataset.DenseSet) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	n := ds.N
	w := make([]float32, n)
	// Per-worker gradient buffers and carried-forward residuals.
	grads := make([][]float32, cfg.Workers)
	residuals := make([][]float32, cfg.Workers)
	for k := range grads {
		grads[k] = make([]float32, n)
		residuals[k] = make([]float32, n)
	}
	agg := make([]float32, n)

	res := &Result{}
	loss, err := denseLoss(cfg.Problem, w, ds)
	if err != nil {
		return nil, err
	}
	res.TrainLoss = append(res.TrainLoss, loss)

	var nc *fixed.NumCounts
	if cfg.CollectNumHealth {
		nc = &fixed.NumCounts{}
	}
	perRound := cfg.Workers * cfg.BatchPerWorker
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for start := 0; start+perRound <= ds.Len(); start += perRound {
			if err := ctxErr(cfg.Ctx); err != nil {
				return nil, err
			}
			// Local gradient accumulation.
			for k := 0; k < cfg.Workers; k++ {
				g := grads[k]
				for j := range g {
					g[j] = 0
				}
				for b := 0; b < cfg.BatchPerWorker; b++ {
					i := start + k*cfg.BatchPerWorker + b
					var dot float32
					for j := 0; j < n; j++ {
						dot += ds.Raw[i][j] * w[j]
					}
					a := GradScale(cfg.Problem, dot, ds.Y[i], 1) / float32(cfg.BatchPerWorker)
					if a == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						g[j] += a * ds.Raw[i][j]
					}
				}
			}
			// Quantized all-reduce: each worker communicates its
			// (residual-corrected) gradient at CommBits; the
			// aggregate is averaged and applied everywhere.
			for j := range agg {
				agg[j] = 0
			}
			for k := 0; k < cfg.Workers; k++ {
				q := quantizeComm(grads[k], residuals[k], cfg.CommBits, cfg.ErrorFeedback, nc)
				for j := range agg {
					agg[j] += q[j]
				}
			}
			inv := cfg.StepSize / float32(cfg.Workers)
			for j := range w {
				w[j] += inv * agg[j]
			}
			res.Steps++
		}
		loss, err := denseLoss(cfg.Problem, w, ds)
		if err != nil {
			return nil, err
		}
		res.TrainLoss = append(res.TrainLoss, loss)
	}
	res.W = w
	if nc != nil {
		res.NumStats = &obs.NumStats{
			Underflows: nc.Underflows,
			Bias: obs.RoundingBias{
				Mode:      "comm-grid",
				Samples:   nc.BiasN,
				SumQuanta: nc.BiasSumQ,
			},
		}
	}
	return res, nil
}

// quantizeComm quantizes a worker's gradient to bits, optionally carrying
// the residual to the next round. The returned slice aliases the worker's
// gradient buffer (overwritten with the quantized values).
//
// For 1 bit this is Seide et al.'s scheme: each coordinate sends only a
// sign, scaled by the mean magnitude; the full-precision difference stays
// in the residual. For 1 < bits < 32 a symmetric uniform grid over the
// max magnitude is used.
//
// A non-nil nc collects numerical health for the grid path (bits > 1):
// nonzero coordinates quantized to zero count as underflows, and the
// signed rounding error accumulates in grid steps (scale/levels quanta).
// The 1-bit scheme never produces a zero and has no grid to measure.
func quantizeComm(g, residual []float32, bits uint, errorFeedback bool, nc *fixed.NumCounts) []float32 {
	if bits >= 32 {
		return g
	}
	// Residual correction.
	if errorFeedback {
		for j := range g {
			g[j] += residual[j]
		}
	}
	var scale float32
	if bits == 1 {
		var sum float64
		for _, v := range g {
			sum += math.Abs(float64(v))
		}
		scale = float32(sum / float64(len(g)))
	} else {
		for _, v := range g {
			if a := float32(math.Abs(float64(v))); a > scale {
				scale = a
			}
		}
	}
	if scale == 0 {
		return g
	}
	if bits == 1 {
		for j, v := range g {
			q := scale
			if v < 0 {
				q = -scale
			}
			if errorFeedback {
				residual[j] = v - q
			}
			g[j] = q
		}
		return g
	}
	levels := float32(int32(1)<<(bits-1)) - 1 // e.g. 127 for 8 bits
	// Grid rounding proceeds one cache line of gradient at a time —
	// 16 float32 values — mirroring the kernels' word-blocked layout: the
	// loop-invariant scale/levels work is hoisted out of the element loop
	// and each block is rounded, residual-corrected and health-counted as
	// a unit. The per-element arithmetic is unchanged, so quantized values
	// are bit-identical to the former elementwise loop.
	const lineFloats = 16
	for base := 0; base < len(g); base += lineFloats {
		end := base + lineFloats
		if end > len(g) {
			end = len(g)
		}
		blk := g[base:end]
		for o, v := range blk {
			r := v / scale * levels
			q := float32(math.Round(float64(r))) / levels * scale
			if nc != nil {
				if v != 0 && q == 0 {
					nc.Underflows++
				}
				// Signed rounding error in grid steps: one quantum is
				// scale/levels.
				nc.BiasN++
				nc.BiasSumQ += float64(q-v) * float64(levels) / float64(scale)
			}
			if errorFeedback {
				residual[base+o] = v - q
			}
			blk[o] = q
		}
	}
	return g
}

// SyncLoss evaluates the configured problem's loss for external callers.
func SyncLoss(p Problem, w []float32, ds *dataset.DenseSet) (float64, error) {
	switch p {
	case Logistic:
		return metrics.LogisticLoss(w, ds.Raw, ds.Y)
	case Linear:
		return metrics.SquaredLoss(w, ds.Raw, ds.Y)
	default:
		return metrics.HingeLoss(w, ds.Raw, ds.Y)
	}
}
