package core

import (
	"fmt"
	"sync"
	"time"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/metrics"
)

// TrainSparse runs Buckwild! SGD on a sparse (coordinate-form) dataset.
// Sparse Hogwild! is the setting the algorithm was originally designed
// for: updates touch few coordinates, so collisions between workers are
// rare and the races are especially benign.
func TrainSparse(cfg Config, ds *dataset.SparseSet) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if ds.Val[0].P != cfg.D {
		return nil, fmt.Errorf("core: dataset stored at %v but config says %v", ds.Val[0].P, cfg.D)
	}
	if cfg.MiniBatch != 1 {
		return nil, fmt.Errorf("core: sparse training supports MiniBatch=1 (got %d); the paper's mini-batch study is dense", cfg.MiniBatch)
	}
	w, err := initModel(&cfg, ds.N)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	loss, err := sparseLoss(cfg.Problem, w.Floats(), ds)
	if err != nil {
		return nil, err
	}
	res.TrainLoss = append(res.TrainLoss, loss)

	eta := resumeEta(&cfg)
	ro := newRunObs(&cfg)
	trainSpan := ro.span("train-sparse")
	start := time.Now()
	var numbers float64
	epochsRun := 0
	for epoch := cfg.StartEpoch; epoch < cfg.Epochs; epoch++ {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		epochSpan := ro.span("epoch")
		if err := runSparseEpoch(cfg, ds, w, eta, epoch, ro); err != nil {
			return nil, err
		}
		epochsRun++
		numbers += float64(ds.NNZ())
		eta *= cfg.StepDecay
		loss, err := sparseLoss(cfg.Problem, w.Floats(), ds)
		if err != nil {
			return nil, err
		}
		res.TrainLoss = append(res.TrainLoss, loss)
		ro.observeWeights(epoch+1, w)
		ro.epochDone(epoch+1, loss)
		epochSpan.EndArgs(map[string]string{"epoch": fmt.Sprint(epoch + 1), "loss": fmt.Sprintf("%.6g", loss)})
		if cfg.EpochEnd != nil {
			if err := cfg.EpochEnd(EpochState{Epoch: epoch + 1, Loss: loss, W: w, TrainLoss: res.TrainLoss}); err != nil {
				return nil, err
			}
		}
	}
	res.Elapsed = time.Since(start)
	res.W = w.Floats()
	res.Steps = epochsRun * ds.Len()
	if res.Elapsed > 0 {
		res.NumbersPerSec = numbers / res.Elapsed.Seconds()
	}
	trainSpan.EndArgs(map[string]string{"epochs": fmt.Sprint(epochsRun)})
	res.Stats = ro.snapshot()
	if res.Stats != nil {
		res.NumStats = res.Stats.NumHealth
	}
	if ro != nil {
		res.Series = ro.series.Snapshot()
	}
	return res, nil
}

func runSparseEpoch(cfg Config, ds *dataset.SparseSet, w kernels.Vec, eta float32, epoch int, ro *runObs) error {
	threads := cfg.Threads
	if cfg.Sharing == Sequential {
		threads = 1
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, threads)
	for t := 0; t < threads; t++ {
		var q *kernels.Quantizer
		var err error
		if cfg.M != kernels.F32 {
			q, err = kernels.NewQuantizer(cfg.M, cfg.Quant, cfg.QuantPeriod,
				cfg.Seed^uint64(t)*0x9E3779B9+uint64(epoch)|1)
			if err != nil {
				return err
			}
		}
		k, err := kernels.NewSparse(cfg.D, cfg.M, cfg.Variant, q, ds.IdxBits)
		if err != nil {
			return err
		}
		nc := ro.numCounts(t)
		if nc != nil {
			k.Num = nc
			if q != nil {
				q.Num = nc
			}
		}
		lo := t * ds.Len() / threads
		hi := (t + 1) * ds.Len() / threads
		gf := cfg.gradFormat()
		quant := func(v float32) float32 {
			if gf == nil {
				return v
			}
			g := gf.QuantizeBiased(v)
			if nc != nil && g == 0 && v != 0 {
				nc.Underflows++
			}
			return gf.Dequantize(g)
		}
		run := func(t, lo, hi int, k *kernels.Sparse) {
			defer wg.Done()
			var stepsBefore uint64
			if ro != nil {
				stepsBefore = ro.shards[t].steps
			}
			for i := lo; i < hi; i++ {
				if cfg.Ctx != nil && uint64(i-lo)&ctxCheckMask == 0 {
					if err := ctxErr(cfg.Ctx); err != nil {
						errs[t] = err
						return
					}
				}
				if cfg.Sharing == Locked {
					if ro != nil {
						ro.lock(t, &mu)
					} else {
						mu.Lock()
					}
				}
				var readClock uint64
				var sampled bool
				if ro != nil {
					readClock, sampled = ro.stepBegin(t)
				}
				d := quant(k.Dot(ds.Idx[i], ds.Val[i], w))
				a := quant(GradScale(cfg.Problem, d, ds.Y[i], eta))
				wrote := a != 0
				if wrote {
					k.Axpy(a, ds.Idx[i], ds.Val[i], w)
				}
				if ro != nil {
					ro.stepEnd(t, epoch, readClock, sampled, wrote, a)
				}
				if cfg.Sharing == Locked {
					mu.Unlock()
				}
			}
			if ro != nil {
				ro.workerDone(t, epoch, stepsBefore)
			}
			errs[t] = nil
		}
		wg.Add(1)
		if cfg.Sharing == Sequential {
			run(t, lo, hi, k)
		} else {
			go run(t, lo, hi, k)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func sparseLoss(p Problem, w []float32, ds *dataset.SparseSet) (float64, error) {
	switch p {
	case Logistic:
		return metrics.SparseLogisticLoss(w, ds.Idx, ds.RawVal, ds.Y)
	default:
		return 0, fmt.Errorf("core: sparse training currently evaluates logistic loss only, got %v", p)
	}
}
