package simd

import (
	"strings"
	"testing"
)

func TestLanes(t *testing.T) {
	if Lanes(8) != 32 || Lanes(16) != 16 || Lanes(32) != 8 || Lanes(4) != 64 {
		t.Error("lane counts wrong")
	}
	if VectorBytes != 32 {
		t.Error("vector bytes wrong")
	}
}

func TestOpcodeNamesComplete(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "Opcode(") {
			t.Errorf("opcode %d has no mnemonic", int(op))
		}
	}
	if Opcode(-1).String() != "Opcode(-1)" {
		t.Error("invalid opcode should format numerically")
	}
}

func TestHaswellCostsComplete(t *testing.T) {
	m := Haswell()
	if m.Name == "" {
		t.Error("model needs a name")
	}
	for op := Opcode(0); op < numOpcodes; op++ {
		c := m.Costs[op]
		if c.RecipThroughput <= 0 || c.Latency <= 0 {
			t.Errorf("%v has no cost", op)
		}
		if c.Latency < c.RecipThroughput {
			t.Errorf("%v: latency %v below reciprocal throughput %v", op, c.Latency, c.RecipThroughput)
		}
	}
}

func TestPortClassification(t *testing.T) {
	cases := map[Opcode]Port{
		Load256:   PortLoad,
		GATHERD:   PortLoad,
		Store256:  PortStore,
		PMADDUBSW: PortMul,
		FMADDPS:   PortMul,
		ScalarMul: PortMul,
		PADDD:     PortVec,
		CVTDQ2PS:  PortVec,
		ScalarALU: PortScalar,
		ScalarDiv: PortDiv,
		QDOT8:     PortMul,
	}
	for op, want := range cases {
		if got := PortOf(op); got != want {
			t.Errorf("%v on port %d, want %d", op, got, want)
		}
	}
}

func TestCyclesIsMaxOfPorts(t *testing.T) {
	m := Haswell()
	var s Stream
	s.Emit(Load256, 8)   // load port: 8 * 0.5 = 4
	s.Emit(FMADDPS, 4)   // mul port: 4 * 0.5 = 2
	s.Emit(ScalarALU, 4) // scalar port: 1
	if got := s.Cycles(m); got != 4 {
		t.Errorf("Cycles = %v, want max port load 4", got)
	}
	per := s.PortCycles(m)
	if per[PortLoad] != 4 || per[PortMul] != 2 || per[PortScalar] != 1 {
		t.Errorf("port cycles wrong: %v", per)
	}
	// Adding work on a non-binding port does not change the cost.
	s.Emit(PADDD, 4) // vec port: 2
	if got := s.Cycles(m); got != 4 {
		t.Errorf("non-binding port changed Cycles to %v", got)
	}
	// Overloading a port does.
	s.Emit(FMADDPS, 8)
	if got := s.Cycles(m); got != 6 {
		t.Errorf("Cycles = %v, want 6 after mul port overload", got)
	}
}

func TestSerialCyclesUsesLatency(t *testing.T) {
	m := Haswell()
	var s Stream
	s.Emit(FMADDPS, 2)
	if got := s.SerialCycles(m); got != 10 {
		t.Errorf("SerialCycles = %v, want 2*5", got)
	}
}

func TestStreamAccounting(t *testing.T) {
	var s Stream
	s.Emit(Load256, 3)
	s.Emit(Store256, 2)
	if s.LoadBytes() != 96 || s.StoreBytes() != 64 {
		t.Errorf("bytes: %d/%d", s.LoadBytes(), s.StoreBytes())
	}
	if s.Instructions() != 5 {
		t.Errorf("instructions = %d", s.Instructions())
	}
	if s.Count(Load256) != 3 {
		t.Error("Count wrong")
	}
	str := s.String()
	if !strings.Contains(str, "load256:3") || !strings.Contains(str, "store256:2") {
		t.Errorf("String = %q", str)
	}
	var empty Stream
	if empty.String() != "(empty)" {
		t.Errorf("empty String = %q", empty.String())
	}
}

func TestEmitPanicsOnInvalidOpcode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Emit of invalid opcode should panic")
		}
	}()
	var s Stream
	s.Emit(numOpcodes, 1)
}

func TestProposedInstructionProxyCosts(t *testing.T) {
	// Section 6.1 methodology: proposed instructions inherit their
	// proxy's cost.
	m := Haswell()
	if m.Costs[QDOT8] != m.Costs[PMADDWD] {
		t.Error("QDOT8 must cost like its proxy vpmaddwd")
	}
	if m.Costs[QAXPY8].RecipThroughput != m.Costs[PMULLW].RecipThroughput {
		t.Error("QAXPY8 must cost like its proxy vpmullw")
	}
}
