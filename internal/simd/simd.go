// Package simd models the vector instruction set that Buckwild! kernels are
// written against. Go exposes no SIMD intrinsics, so the reproduction splits
// each kernel into two independent artifacts:
//
//   - a bit-accurate computation (package kernels) that produces the same
//     numerical results the vectorized code would, and
//   - an instruction stream (this package) that captures exactly which
//     vector instructions the kernel would execute per loop iteration.
//
// The instruction stream is costed with a throughput model derived from the
// AVX2 unit of the Haswell-EX Xeon E7-8890 v3 used in the paper: inner loops
// of dot and AXPY are long, independent, and fully pipelined, so the cost of
// a stream is the sum of reciprocal throughputs, not latencies. This is the
// same reasoning the paper uses in Section 5.1 to explain the ~10x gap
// between GCC's widen-to-float code (a dozen instructions per vector) and
// the hand-optimized vpmaddubsw code (one instruction per vector).
//
// The ISA includes the paper's Section 6.1 proposals as first-class opcodes
// (QDOT8, QAXPY8 and the 4-bit family), costed by the proxy-latency
// methodology the paper itself uses: each proposed instruction inherits the
// cost of the existing instruction the paper proxies it with.
package simd

import "fmt"

// VectorBits is the simulated vector register width (AVX2 ymm registers).
const VectorBits = 256

// VectorBytes is the vector width in bytes.
const VectorBytes = VectorBits / 8

// Lanes returns the number of elements of the given bit width that fit in
// one vector register.
func Lanes(elemBits uint) int {
	return VectorBits / int(elemBits)
}

// Opcode identifies a simulated vector (or scalar support) instruction.
type Opcode int

// The simulated instruction set. Names follow the AVX2 mnemonics where a
// direct counterpart exists.
const (
	// Memory.
	Load256  Opcode = iota // vmovdqu/vmovups load, 32 bytes
	Store256               // vmovdqu/vmovups store, 32 bytes

	// Integer ALU.
	PMADDUBSW // fused 8-bit pair multiply-add -> 16-bit (the key dot instruction)
	PMADDWD   // fused 16-bit pair multiply-add -> 32-bit
	PMULLW    // 16-bit multiply, low half
	PMULHRSW  // 16-bit fixed-point multiply with rounding (quantizing AXPY)
	PMULLD    // 32-bit multiply
	PADDSB    // 8-bit saturating add
	PADDSW    // 16-bit saturating add
	PADDD     // 32-bit add
	PSUBD     // 32-bit subtract
	PACKSSWB  // narrow 16 -> 8 with saturation
	PACKSSDW  // narrow 32 -> 16 with saturation
	PMOVSXBW  // sign-extend 8 -> 16
	PMOVSXBD  // sign-extend 8 -> 32
	PMOVSXWD  // sign-extend 16 -> 32
	PBROADCAST
	PBLEND
	PAND
	PXOR
	PSLLD   // shift left 32-bit lanes
	PSRLD   // shift right logical
	GATHERD // vpgatherdd: 8 indexed 32-bit loads (slow on Haswell)

	// Float ALU.
	CVTDQ2PS // int32 -> float32
	CVTPS2DQ // float32 -> int32
	MULPS
	ADDPS
	FMADDPS // vfmadd231ps
	HADDPS  // horizontal add step

	// Scalar support (loop control, address generation, scalar math).
	ScalarALU
	ScalarMul
	ScalarDiv // also covers exp approximations etc.

	// Section 6.1 proposed instructions.
	QDOT8  // 8-bit vertical multiply + horizontal add groups of 4 -> f32 (proxy: PMADDWD)
	QAXPY8 // 8-bit vector x scalar + hardware stochastic round -> 8-bit (proxy: PMULLW)
	PMUL4  // hypothetical 4-bit multiply (proxy cost: PMULLW-class)
	PADD4  // hypothetical 4-bit add (proxy cost: PADDSB-class)
	PMADD4 // hypothetical 4-bit fused multiply-add (proxy cost: PMADDUBSW-class)

	numOpcodes
)

var opNames = [numOpcodes]string{
	Load256:    "load256",
	Store256:   "store256",
	PMADDUBSW:  "pmaddubsw",
	PMADDWD:    "pmaddwd",
	PMULLW:     "pmullw",
	PMULHRSW:   "pmulhrsw",
	PMULLD:     "pmulld",
	PADDSB:     "paddsb",
	PADDSW:     "paddsw",
	PADDD:      "paddd",
	PSUBD:      "psubd",
	PACKSSWB:   "packsswb",
	PACKSSDW:   "packssdw",
	PMOVSXBW:   "pmovsxbw",
	PMOVSXBD:   "pmovsxbd",
	PMOVSXWD:   "pmovsxwd",
	PBROADCAST: "pbroadcast",
	PBLEND:     "pblend",
	PAND:       "pand",
	PXOR:       "pxor",
	PSLLD:      "pslld",
	PSRLD:      "psrld",
	GATHERD:    "vpgatherdd",
	CVTDQ2PS:   "cvtdq2ps",
	CVTPS2DQ:   "cvtps2dq",
	MULPS:      "mulps",
	ADDPS:      "addps",
	FMADDPS:    "fmaddps",
	HADDPS:     "haddps",
	ScalarALU:  "scalar.alu",
	ScalarMul:  "scalar.mul",
	ScalarDiv:  "scalar.div",
	QDOT8:      "qdot8",
	QAXPY8:     "qaxpy8",
	PMUL4:      "pmul4",
	PADD4:      "padd4",
	PMADD4:     "pmadd4",
}

// String returns the mnemonic for the opcode.
func (o Opcode) String() string {
	if o < 0 || o >= numOpcodes {
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
	return opNames[o]
}

// Cost describes the execution cost of one instruction.
type Cost struct {
	// RecipThroughput is the sustained cost in cycles per instruction
	// when the instruction is issued back-to-back in a pipelined loop.
	RecipThroughput float64
	// Latency is the dependent-chain latency in cycles. The throughput
	// model uses RecipThroughput; Latency is kept for serial sections
	// (e.g. the horizontal reduction tail of a dot product).
	Latency float64
}

// CostModel maps opcodes to costs. The default model is Haswell-derived;
// alternative models can express the Section 6.1 what-if architectures.
type CostModel struct {
	Name  string
	Costs [numOpcodes]Cost
}

// haswellCosts approximates Haswell-EX AVX2 port throughput (values from
// the Intel optimization manual / Agner Fog instruction tables, rounded).
func haswellCosts() [numOpcodes]Cost {
	var c [numOpcodes]Cost
	set := func(op Opcode, rtp, lat float64) { c[op] = Cost{rtp, lat} }
	set(Load256, 0.5, 5)
	set(Store256, 1, 4)
	set(PMADDUBSW, 1, 5)
	set(PMADDWD, 1, 5)
	set(PMULLW, 1, 5)
	set(PMULHRSW, 1, 5)
	set(PMULLD, 2, 10)
	set(PADDSB, 0.5, 1)
	set(PADDSW, 0.5, 1)
	set(PADDD, 0.5, 1)
	set(PSUBD, 0.5, 1)
	set(PACKSSWB, 1, 1)
	set(PACKSSDW, 1, 1)
	set(PMOVSXBW, 1, 3)
	set(PMOVSXBD, 1, 3)
	set(PMOVSXWD, 1, 3)
	set(PBROADCAST, 1, 3)
	set(PBLEND, 0.33, 1)
	set(PAND, 0.33, 1)
	set(PXOR, 0.33, 1)
	set(PSLLD, 1, 1)
	set(PSRLD, 1, 1)
	set(GATHERD, 14, 24) // Haswell gathers are microcoded and slow
	set(CVTDQ2PS, 1, 3)
	set(CVTPS2DQ, 1, 3)
	set(MULPS, 0.5, 5)
	set(ADDPS, 1, 3)
	set(FMADDPS, 0.5, 5)
	set(HADDPS, 2, 5)
	set(ScalarALU, 0.25, 1)
	set(ScalarMul, 1, 3)
	set(ScalarDiv, 8, 20)
	// Proposed instructions, costed by the paper's proxy methodology.
	set(QDOT8, 1, 5)  // proxy: vpmaddwd
	set(QAXPY8, 1, 5) // proxy: vpmullw
	set(PMUL4, 1, 5)  // same class as the 8-bit multiplies
	set(PADD4, 0.5, 1)
	set(PMADD4, 1, 5)
	return c
}

// Haswell returns the default cost model for the simulated Xeon.
func Haswell() *CostModel {
	return &CostModel{Name: "haswell-avx2", Costs: haswellCosts()}
}

// Port classifies which execution resource an instruction occupies. The
// throughput model is port-aware: a superscalar core issues instructions on
// different ports in parallel, so the cost of a pipelined loop is the load
// on its busiest port, not the instruction count. This is what makes the
// fused low-precision instructions fast: a vpmaddubsw loop does 32
// multiply-accumulates per multiplier-port cycle while the float loop is
// bound by its loads and stores.
type Port int

// The modelled port classes (Haswell: loads on ports 2/3, stores on 4,
// vector multiplies on 0 (+1 for FMA), other vector ALU on 1/5, scalar on
// the remaining integer ports, divides on the unpipelined divider).
const (
	PortLoad Port = iota
	PortStore
	PortMul
	PortVec
	PortScalar
	PortDiv
	numPorts
)

var opPorts = [numOpcodes]Port{
	Load256:    PortLoad,
	Store256:   PortStore,
	PMADDUBSW:  PortMul,
	PMADDWD:    PortMul,
	PMULLW:     PortMul,
	PMULHRSW:   PortMul,
	PMULLD:     PortMul,
	PADDSB:     PortVec,
	PADDSW:     PortVec,
	PADDD:      PortVec,
	PSUBD:      PortVec,
	PACKSSWB:   PortVec,
	PACKSSDW:   PortVec,
	PMOVSXBW:   PortVec,
	PMOVSXBD:   PortVec,
	PMOVSXWD:   PortVec,
	PBROADCAST: PortVec,
	PBLEND:     PortVec,
	PAND:       PortVec,
	PXOR:       PortVec,
	PSLLD:      PortVec,
	PSRLD:      PortVec,
	GATHERD:    PortLoad,
	CVTDQ2PS:   PortVec,
	CVTPS2DQ:   PortVec,
	MULPS:      PortMul,
	ADDPS:      PortVec,
	FMADDPS:    PortMul,
	HADDPS:     PortVec,
	ScalarALU:  PortScalar,
	ScalarMul:  PortMul, // scalar multiplies share the vector multiplier port
	ScalarDiv:  PortDiv,
	QDOT8:      PortMul,
	QAXPY8:     PortMul,
	PMUL4:      PortMul,
	PADD4:      PortVec,
	PMADD4:     PortMul,
}

// PortOf returns the port class of an opcode.
func PortOf(op Opcode) Port {
	return opPorts[op]
}

// Stream is a multiset of instructions: how many times each opcode executes
// for some unit of work (typically: one full kernel invocation over n
// elements). Streams are value types; the zero value is an empty stream.
type Stream struct {
	counts [numOpcodes]int64
}

// Emit records n executions of op.
func (s *Stream) Emit(op Opcode, n int64) {
	if op < 0 || op >= numOpcodes {
		panic(fmt.Sprintf("simd: emit of invalid opcode %d", int(op)))
	}
	s.counts[op] += n
}

// Add accumulates another stream into s.
func (s *Stream) Add(t Stream) {
	for i := range s.counts {
		s.counts[i] += t.counts[i]
	}
}

// Scale multiplies every count by k (used to extend a per-iteration stream
// to a full pass).
func (s *Stream) Scale(k int64) {
	for i := range s.counts {
		s.counts[i] *= k
	}
}

// Count returns the recorded executions of op.
func (s Stream) Count(op Opcode) int64 {
	return s.counts[op]
}

// Instructions returns the total number of instructions in the stream.
func (s Stream) Instructions() int64 {
	var t int64
	for _, c := range s.counts {
		t += c
	}
	return t
}

// LoadBytes returns the number of bytes loaded by the stream's vector loads.
func (s Stream) LoadBytes() int64 {
	return s.counts[Load256] * VectorBytes
}

// StoreBytes returns the number of bytes stored by the stream's vector stores.
func (s Stream) StoreBytes() int64 {
	return s.counts[Store256] * VectorBytes
}

// Cycles returns the throughput-model cost of the stream under m: per
// execution port, the sum of count x reciprocal throughput; the stream
// costs as much as its busiest port. This models a fully pipelined,
// superscalar inner loop, which is accurate for the long dot/AXPY loops
// that dominate SGD.
func (s Stream) Cycles(m *CostModel) float64 {
	var per [numPorts]float64
	for op, n := range s.counts {
		if n != 0 {
			per[opPorts[op]] += float64(n) * m.Costs[op].RecipThroughput
		}
	}
	maxC := per[0]
	for _, c := range per[1:] {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}

// PortCycles returns the per-port load of the stream, for diagnostics and
// tests.
func (s Stream) PortCycles(m *CostModel) [int(numPorts)]float64 {
	var per [int(numPorts)]float64
	for op, n := range s.counts {
		if n != 0 {
			per[opPorts[op]] += float64(n) * m.Costs[op].RecipThroughput
		}
	}
	return per
}

// SerialCycles returns the latency-model cost of the stream, used for short
// dependent sections such as reduction tails and scalar glue between the
// dot and the AXPY.
func (s Stream) SerialCycles(m *CostModel) float64 {
	var c float64
	for op, n := range s.counts {
		if n != 0 {
			c += float64(n) * m.Costs[op].Latency
		}
	}
	return c
}

// String summarizes the stream's non-zero opcode counts.
func (s Stream) String() string {
	out := ""
	for op, n := range s.counts {
		if n != 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s:%d", Opcode(op), n)
		}
	}
	if out == "" {
		return "(empty)"
	}
	return out
}
