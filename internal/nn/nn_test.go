package nn

import (
	"math"
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/prng"
	"buckwild/internal/simd"
)

func digits(t *testing.T, n int, seed uint64) (*dataset.Digits, *dataset.Digits) {
	t.Helper()
	d, err := dataset.GenDigits(dataset.DigitsConfig{W: 12, H: 12, Classes: 4, Train: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d.Split(0.8)
}

func TestQuantSpec(t *testing.T) {
	if _, err := NewQuantSpec(1, 8, fixed.Biased, 1); err == nil {
		t.Error("1-bit should fail")
	}
	if _, err := NewQuantSpec(8, 40, fixed.Biased, 1); err == nil {
		t.Error("40-bit should fail")
	}
	q, err := NewQuantSpec(8, 8, fixed.Biased, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := []float32{0.5, 0.123456, -1.7}
	q.QuantWeights(w)
	if w[0] != 0.5 {
		t.Error("representable value changed")
	}
	// All values on the Q8.6 grid.
	for _, v := range w {
		scaled := v * 64
		if scaled != float32(int32(scaled)) {
			t.Errorf("value %v not on the 8-bit grid", v)
		}
	}
	full := FullPrecision()
	x := []float32{0.123456}
	full.QuantActs(x)
	if x[0] != 0.123456 {
		t.Error("full precision must be identity")
	}
}

func TestQuantUnbiasedMean(t *testing.T) {
	q, err := NewQuantSpec(6, 32, fixed.Unbiased, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Mean of many quantizations of an off-grid value equals the value.
	const x = 0.11
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		w := []float32{x}
		q.QuantWeights(w)
		sum += float64(w[0])
	}
	if mean := sum / n; math.Abs(mean-x) > 0.003 {
		t.Errorf("unbiased weight rounding mean = %v, want ~%v", mean, x)
	}
}

func TestLeNetShapes(t *testing.T) {
	net, err := NewLeNet(LeNetConfig{W: 12, H: 12, Classes: 4, Quant: FullPrecision(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	img := make([]float32, 12*12)
	out := net.forward(img)
	if len(out) != 4 {
		t.Fatalf("output size %d, want 4", len(out))
	}
	if p := net.Predict(img); p < 0 || p >= 4 {
		t.Fatalf("Predict = %d", p)
	}
}

func TestLeNetConfigErrors(t *testing.T) {
	if _, err := NewLeNet(LeNetConfig{W: 4, H: 4, Classes: 4}); err == nil {
		t.Error("tiny input should fail")
	}
	if _, err := NewLeNet(LeNetConfig{W: 12, H: 12, Classes: 1}); err == nil {
		t.Error("single class should fail")
	}
}

func TestLeNetLearnsFullPrecision(t *testing.T) {
	train, test := digits(t, 600, 5)
	net, err := NewLeNet(LeNetConfig{W: 12, H: 12, Classes: 4, Quant: FullPrecision(), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Train(train, test, 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if res.EpochLoss[len(res.EpochLoss)-1] >= res.EpochLoss[0]*0.8 {
		t.Errorf("loss did not fall: %v", res.EpochLoss)
	}
	if res.TestError > 0.4 { // chance is 0.75
		t.Errorf("test error %v too high", res.TestError)
	}
}

func TestLeNetLearnsAt8BitUnbiased(t *testing.T) {
	// Figure 7b: training remains accurate at 8 bits with unbiased
	// rounding.
	train, test := digits(t, 600, 6)
	q, err := NewQuantSpec(8, 8, fixed.Unbiased, 3)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewLeNet(LeNetConfig{W: 12, H: 12, Classes: 4, Quant: q, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Train(train, test, 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if res.TestError > 0.45 {
		t.Errorf("8-bit test error %v too high", res.TestError)
	}
}

func TestVeryLowPrecisionBiasedFails(t *testing.T) {
	// At very low precision, biased rounding should be clearly worse
	// than unbiased (the motivation for stochastic rounding).
	train, test := digits(t, 400, 7)
	run := func(r fixed.Rounding) float64 {
		q, err := NewQuantSpec(4, 8, r, 4)
		if err != nil {
			t.Fatal(err)
		}
		net, err := NewLeNet(LeNetConfig{W: 12, H: 12, Classes: 4, Quant: q, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Train(train, test, 3, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		return res.TestError
	}
	biased := run(fixed.Biased)
	unbiased := run(fixed.Unbiased)
	if unbiased > biased+0.05 {
		t.Errorf("unbiased (%v) should not trail biased (%v) at 4 bits", unbiased, biased)
	}
}

func TestTrainErrors(t *testing.T) {
	train, test := digits(t, 100, 8)
	net, _ := NewLeNet(LeNetConfig{W: 12, H: 12, Classes: 4, Quant: FullPrecision(), Seed: 1})
	if _, err := net.Train(train, test, 0, 0.1); err == nil {
		t.Error("zero epochs should fail")
	}
	empty := &dataset.Digits{}
	if _, err := net.Train(empty, test, 1, 0.1); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestSoftmaxLoss(t *testing.T) {
	probs, loss := softmaxLoss([]float32{1, 1, 1}, 0)
	for _, p := range probs {
		if math.Abs(float64(p)-1.0/3) > 1e-6 {
			t.Errorf("uniform softmax wrong: %v", probs)
		}
	}
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Errorf("loss = %v, want log 3", loss)
	}
	// Huge logits must not overflow.
	_, loss = softmaxLoss([]float32{1000, -1000}, 0)
	if math.IsNaN(loss) || loss > 1e-6 {
		t.Errorf("confident loss = %v", loss)
	}
}

func TestConvLayerGradientCheck(t *testing.T) {
	// Finite-difference check of the conv layer's weight gradient.
	g := prng.NewXorshift128(3)
	c, err := newConv(6, 6, 1, 2, 3, g)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float32, 36)
	for i := range in {
		in[i] = prng.Float32(g) - 0.5
	}
	// Loss = sum of outputs; gradient of loss w.r.t. out = ones.
	ones := make([]float32, c.outSize())
	for i := range ones {
		ones[i] = 1
	}
	c.forward(in)
	c.backward(ones)
	analytic := append([]float32(nil), c.dw...)
	const eps = 1e-3
	for _, wi := range []int{0, 3, 7, 11} {
		orig := c.w[wi]
		c.w[wi] = orig + eps
		up := sum(c.forward(in))
		c.w[wi] = orig - eps
		down := sum(c.forward(in))
		c.w[wi] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(float64(analytic[wi])-numeric) > 0.05*math.Abs(numeric)+1e-2 {
			t.Errorf("dw[%d]: analytic %v vs numeric %v", wi, analytic[wi], numeric)
		}
	}
}

func sum(xs []float32) float64 {
	var s float64
	for _, x := range xs {
		s += float64(x)
	}
	return s
}

func TestPoolLayer(t *testing.T) {
	p := newPool(4, 4, 1)
	in := make([]float32, 16)
	in[5] = 3 // (1,1) in the top-left 2x2 block? index 5 = y1,x1
	in[2] = 7 // top-right block
	out := p.forward(in)
	if len(out) != 4 {
		t.Fatalf("pool out size %d", len(out))
	}
	if out[0] != 3 || out[1] != 7 {
		t.Errorf("pool values wrong: %v", out)
	}
	grad := []float32{1, 2, 0, 0}
	dx := p.backward(grad)
	if dx[5] != 1 || dx[2] != 2 {
		t.Errorf("pool backward routed wrong: %v", dx)
	}
}

func TestConvThroughputLinearSpeedup(t *testing.T) {
	// Figure 7a: low precision yields roughly linear conv throughput
	// gains.
	cost := simd.Haswell()
	dims := AlexNetConv1()
	s16, err := ConvSpeedup(cost, dims, kernels.I16, kernels.I16)
	if err != nil {
		t.Fatal(err)
	}
	s8, err := ConvSpeedup(cost, dims, kernels.I8, kernels.I8)
	if err != nil {
		t.Fatal(err)
	}
	if s16 < 1.4 || s16 > 2.6 {
		t.Errorf("16-bit conv speedup = %v, want ~2", s16)
	}
	if s8 < 2.2 || s8 > 4.5 {
		t.Errorf("8-bit conv speedup = %v, want ~3-4", s8)
	}
	if s8 <= s16 {
		t.Error("8-bit must beat 16-bit")
	}
}

func TestConvDims(t *testing.T) {
	d := AlexNetConv1()
	if d.OutW() != 55 || d.OutH() != 55 {
		t.Errorf("AlexNet conv1 output %dx%d, want 55x55", d.OutW(), d.OutH())
	}
	if d.InputNumbers() != 227*227*3 {
		t.Error("input numbers wrong")
	}
	if d.MACs() != int64(55*55*96)*int64(3*11*11) {
		t.Error("MACs wrong")
	}
	if _, err := ConvCycles(simd.Haswell(), ConvDims{}, kernels.I8, kernels.I8, kernels.HandOpt); err == nil {
		t.Error("bad dims should fail")
	}
}
