package nn

import (
	"fmt"
	"math"

	"buckwild/internal/dataset"
	"buckwild/internal/prng"
)

// Network is a small feed-forward CNN with a softmax cross-entropy head.
type Network struct {
	layers  []layer
	classes int
	quant   QuantSpec
}

// LeNetConfig configures the LeNet-style network used for the Figure 7b
// reproduction: conv-pool-conv-pool-FC, sized for the synthetic digit
// task.
type LeNetConfig struct {
	W, H    int
	Classes int
	// C1 and C2 are the two convolution widths (defaults 6 and 12).
	C1, C2 int
	Quant  QuantSpec
	Seed   uint64
}

// NewLeNet builds the network.
func NewLeNet(cfg LeNetConfig) (*Network, error) {
	if cfg.W < 8 || cfg.H < 8 {
		return nil, fmt.Errorf("nn: input %dx%d too small for LeNet", cfg.W, cfg.H)
	}
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("nn: need at least 2 classes")
	}
	if cfg.C1 == 0 {
		cfg.C1 = 6
	}
	if cfg.C2 == 0 {
		cfg.C2 = 12
	}
	g := prng.NewXorshift128(cfg.Seed ^ 0x1E7E7)
	c1, err := newConv(cfg.W, cfg.H, 1, cfg.C1, 3, g)
	if err != nil {
		return nil, err
	}
	p1 := newPool(c1.outW(), c1.outH(), cfg.C1)
	c2, err := newConv(p1.outW(), p1.outH(), cfg.C1, cfg.C2, 3, g)
	if err != nil {
		return nil, err
	}
	p2 := newPool(c2.outW(), c2.outH(), cfg.C2)
	fc := newFC(p2.outSize(), cfg.Classes, g)
	net := &Network{
		layers:  []layer{c1, p1, c2, p2, fc},
		classes: cfg.Classes,
		quant:   cfg.Quant,
	}
	// Weights start on the quantized grid.
	for _, l := range net.layers {
		l.update(0, &net.quant)
	}
	return net, nil
}

// forward runs the network on one image, applying activation quantization
// between layers (the dataset precision of the DMGC model).
func (n *Network) forward(img []float32) []float32 {
	x := append([]float32(nil), img...)
	n.quant.QuantActs(x)
	for _, l := range n.layers {
		x = l.forward(x)
		n.quant.QuantActs(x)
	}
	return x
}

// Predict returns the most likely class for an image.
func (n *Network) Predict(img []float32) int {
	logits := n.forward(img)
	best := 0
	for c := 1; c < len(logits); c++ {
		if logits[c] > logits[best] {
			best = c
		}
	}
	return best
}

// trainOne runs one SGD step on (img, label) and returns the sample's
// cross-entropy loss.
func (n *Network) trainOne(img []float32, label int, lr float32) float64 {
	logits := n.forward(img)
	probs, loss := softmaxLoss(logits, label)
	grad := probs
	grad[label] -= 1
	for i := len(n.layers) - 1; i >= 0; i-- {
		grad = n.layers[i].backward(grad)
	}
	for _, l := range n.layers {
		l.update(lr, &n.quant)
	}
	return loss
}

// TrainResult summarizes a training run.
type TrainResult struct {
	// EpochLoss is the mean training loss of each epoch.
	EpochLoss []float64
	// TestError is the classification error on the held-out set after
	// the final epoch.
	TestError float64
}

// Train runs epochs of single-example SGD on train and evaluates on test.
func (n *Network) Train(train, test *dataset.Digits, epochs int, lr float32) (*TrainResult, error) {
	if epochs < 1 {
		return nil, fmt.Errorf("nn: epochs must be >= 1")
	}
	if len(train.Images) == 0 || len(test.Images) == 0 {
		return nil, fmt.Errorf("nn: empty dataset")
	}
	res := &TrainResult{}
	for e := 0; e < epochs; e++ {
		var total float64
		for i, img := range train.Images {
			total += n.trainOne(img, train.Labels[i], lr)
		}
		res.EpochLoss = append(res.EpochLoss, total/float64(len(train.Images)))
	}
	res.TestError = n.TestError(test)
	return res, nil
}

// TestError returns the classification error on a dataset.
func (n *Network) TestError(d *dataset.Digits) float64 {
	wrong := 0
	for i, img := range d.Images {
		if n.Predict(img) != d.Labels[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(d.Images))
}

// softmaxLoss returns the softmax probabilities and cross-entropy loss.
func softmaxLoss(logits []float32, label int) ([]float32, float64) {
	maxL := logits[0]
	for _, v := range logits[1:] {
		if v > maxL {
			maxL = v
		}
	}
	probs := make([]float32, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxL))
		probs[i] = float32(e)
		sum += e
	}
	for i := range probs {
		probs[i] = float32(float64(probs[i]) / sum)
	}
	p := float64(probs[label])
	if p < 1e-12 {
		p = 1e-12
	}
	return probs, -math.Log(p)
}
