package nn

import (
	"fmt"

	"buckwild/internal/kernels"
	"buckwild/internal/simd"
)

// ConvDims describes a convolution layer for the Figure 7a throughput
// proxy. The paper measures the first convolution layer of Caffe's AlexNet
// example on 227x227x3 ImageNet-sized images, since convolution dominates
// CNN training time.
type ConvDims struct {
	InW, InH, InC int
	OutC, K       int
	Stride        int
}

// AlexNetConv1 returns the layer the paper profiles.
func AlexNetConv1() ConvDims {
	return ConvDims{InW: 227, InH: 227, InC: 3, OutC: 96, K: 11, Stride: 4}
}

// OutW returns the output width.
func (d ConvDims) OutW() int { return (d.InW-d.K)/d.Stride + 1 }

// OutH returns the output height.
func (d ConvDims) OutH() int { return (d.InH-d.K)/d.Stride + 1 }

// InputNumbers returns the dataset numbers consumed per image.
func (d ConvDims) InputNumbers() int { return d.InW * d.InH * d.InC }

// MACs returns the multiply-accumulates per image.
func (d ConvDims) MACs() int64 {
	return int64(d.OutW()) * int64(d.OutH()) * int64(d.OutC) * int64(d.InC*d.K*d.K)
}

// ConvCycles estimates the compute cycles of one forward pass of the layer
// at the given dataset/weight precisions, by costing the im2col matmul as
// a sequence of dot products through the kernel instruction streams. The
// weights here are "model numbers" in DMGC terms.
func ConvCycles(cost *simd.CostModel, dims ConvDims, dPrec, mPrec kernels.Prec, v kernels.Variant) (float64, error) {
	if dims.Stride < 1 || dims.K < 1 {
		return 0, fmt.Errorf("nn: bad conv dims %+v", dims)
	}
	var q *kernels.Quantizer
	if mPrec != kernels.F32 {
		var err error
		q, err = kernels.NewQuantizer(mPrec, kernels.QShared, 8, 1)
		if err != nil {
			return 0, err
		}
	}
	k, err := kernels.NewDense(dPrec, mPrec, v, q)
	if err != nil {
		return 0, err
	}
	dotLen := dims.InC * dims.K * dims.K
	s := k.DotStream(dotLen)
	positions := int64(dims.OutW()) * int64(dims.OutH()) * int64(dims.OutC)
	s.Scale(positions)
	// im2col gather overhead: one scalar move per patch element.
	var gather simd.Stream
	gather.Emit(simd.ScalarALU, int64(dims.OutW())*int64(dims.OutH())*int64(dotLen))
	s.Add(gather)
	return s.Cycles(cost), nil
}

// ConvSpeedup returns the layer's throughput speedup at (d, m) relative to
// the full-precision float layer, both hand-optimized (the paper's Figure
// 7a expectation is a linear speedup in precision).
func ConvSpeedup(cost *simd.CostModel, dims ConvDims, dPrec, mPrec kernels.Prec) (float64, error) {
	base, err := ConvCycles(cost, dims, kernels.F32, kernels.F32, kernels.HandOpt)
	if err != nil {
		return 0, err
	}
	c, err := ConvCycles(cost, dims, dPrec, mPrec, kernels.HandOpt)
	if err != nil {
		return 0, err
	}
	return base / c, nil
}
