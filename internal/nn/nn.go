// Package nn is the deep-learning substrate for the Section 7 experiments.
// It plays the role the authors' modified Mocha plays in the paper: a
// framework that simulates low-precision arithmetic of arbitrary bit widths
// so that the statistical efficiency of low-precision training can be
// measured (Figure 7b), plus an instruction-stream model of a convolution
// layer for the hardware-efficiency proxy (Figure 7a).
//
// Quantization simulation follows the DMGC model the same way the paper's
// does: the dataset (input activations) is quantized at the dataset
// precision, the weights (model numbers) are requantized after every
// update at the model precision with biased or unbiased rounding, and
// intermediate gradients stay in full precision (no G term).
package nn

import (
	"fmt"
	"math"

	"buckwild/internal/fixed"
	"buckwild/internal/prng"
)

// QuantSpec describes how a network simulates low precision.
type QuantSpec struct {
	// WeightBits and ActBits are the model and dataset/activation
	// precisions; 32 means full-precision float.
	WeightBits, ActBits uint
	// Rounding selects biased or unbiased weight rounding.
	Rounding fixed.Rounding
	// rs supplies randomness for unbiased rounding.
	rs prng.Source
}

// FullPrecision returns the float baseline spec.
func FullPrecision() QuantSpec {
	return QuantSpec{WeightBits: 32, ActBits: 32}
}

// NewQuantSpec builds a quantization spec; bit widths of 32 disable
// quantization for that class of numbers.
func NewQuantSpec(weightBits, actBits uint, rounding fixed.Rounding, seed uint64) (QuantSpec, error) {
	for _, b := range []uint{weightBits, actBits} {
		if b < 2 || b > 32 {
			return QuantSpec{}, fmt.Errorf("nn: bit width %d out of [2, 32]", b)
		}
	}
	return QuantSpec{
		WeightBits: weightBits,
		ActBits:    actBits,
		Rounding:   rounding,
		rs:         prng.NewXorshift32(uint32(seed) | 1),
	}, nil
}

// quantValue rounds x to a fixed-point grid with the given total bits,
// placing the binary point to keep [-2, 2) representable (matching the
// fixed package's standard formats).
func (q *QuantSpec) quantValue(x float32, bits uint) float32 {
	if bits >= 32 {
		return x
	}
	f := fixed.Format{Bits: bits, Frac: bits - 2}
	var raw int32
	if q.Rounding == fixed.Unbiased && q.rs != nil {
		raw = f.QuantizeUnbiased(x, q.rs)
	} else {
		raw = f.QuantizeBiased(x)
	}
	return f.Dequantize(raw)
}

// QuantWeights requantizes a weight slice in place at the weight
// precision. It is called after every SGD update, which is exactly where
// the paper's low-precision model loses information.
func (q *QuantSpec) QuantWeights(w []float32) {
	if q.WeightBits >= 32 {
		return
	}
	for i, x := range w {
		w[i] = q.quantValue(x, q.WeightBits)
	}
}

// QuantActs quantizes an activation slice in place at the activation
// (dataset) precision, using per-tensor dynamic range scaling: values are
// quantized relative to the tensor's absolute maximum, the standard way
// fixed-point NN simulators (including the paper's modified Mocha) keep
// every layer's dynamic range representable. Without it, deep-layer
// activations saturate the fixed grid and training collapses regardless of
// bit width.
func (q *QuantSpec) QuantActs(a []float32) {
	if q.ActBits >= 32 {
		return
	}
	var absMax float32
	for _, x := range a {
		if x > absMax {
			absMax = x
		} else if -x > absMax {
			absMax = -x
		}
	}
	if absMax == 0 {
		return
	}
	f := fixed.Format{Bits: q.ActBits, Frac: q.ActBits - 1} // grid over [-1, 1)
	inv := 1 / absMax
	for i, x := range a {
		var raw int32
		if q.Rounding == fixed.Unbiased && q.rs != nil {
			raw = f.QuantizeUnbiased(x*inv, q.rs)
		} else {
			raw = f.QuantizeBiased(x * inv)
		}
		a[i] = f.Dequantize(raw) * absMax
	}
}

// xavierInit fills w with scaled uniform noise.
func xavierInit(w []float32, fanIn int, g prng.Source) {
	scale := float32(math.Sqrt(3.0 / float64(fanIn)))
	for i := range w {
		w[i] = (prng.Float32(g)*2 - 1) * scale
	}
}
