package nn

import (
	"fmt"
	"math"

	"buckwild/internal/prng"
)

// layer is one differentiable stage of a network. Layers cache what they
// need for the backward pass; networks are therefore not safe for
// concurrent training (the paper's NN experiments measure statistical, not
// parallel, behaviour).
type layer interface {
	forward(x []float32) []float32
	backward(grad []float32) []float32
	update(lr float32, q *QuantSpec)
	outSize() int
}

// convLayer is a valid 2-D convolution with stride 1 followed by ReLU.
type convLayer struct {
	inW, inH, inC int
	outC, k       int
	w             []float32 // [outC][inC*k*k]
	b             []float32
	in            []float32
	out           []float32
	dw            []float32
	db            []float32
}

func newConv(inW, inH, inC, outC, k int, g prng.Source) (*convLayer, error) {
	if k > inW || k > inH {
		return nil, fmt.Errorf("nn: kernel %d larger than input %dx%d", k, inW, inH)
	}
	c := &convLayer{
		inW: inW, inH: inH, inC: inC, outC: outC, k: k,
		w:  make([]float32, outC*inC*k*k),
		b:  make([]float32, outC),
		dw: make([]float32, outC*inC*k*k),
		db: make([]float32, outC),
	}
	xavierInit(c.w, inC*k*k, g)
	return c, nil
}

func (c *convLayer) outW() int { return c.inW - c.k + 1 }
func (c *convLayer) outH() int { return c.inH - c.k + 1 }
func (c *convLayer) outSize() int {
	return c.outW() * c.outH() * c.outC
}

// idx3 addresses a HWC-planar tensor stored as [c][y][x].
func idx3(x, y, ch, w, h int) int { return ch*w*h + y*w + x }

func (c *convLayer) forward(in []float32) []float32 {
	ow, oh := c.outW(), c.outH()
	if c.out == nil {
		c.out = make([]float32, c.outSize())
	}
	c.in = in
	ksz := c.k * c.k
	for oc := 0; oc < c.outC; oc++ {
		wBase := oc * c.inC * ksz
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				sum := c.b[oc]
				for ic := 0; ic < c.inC; ic++ {
					wOff := wBase + ic*ksz
					for ky := 0; ky < c.k; ky++ {
						inRow := idx3(x, y+ky, ic, c.inW, c.inH)
						wRow := wOff + ky*c.k
						for kx := 0; kx < c.k; kx++ {
							sum += c.w[wRow+kx] * in[inRow+kx]
						}
					}
				}
				if sum < 0 { // ReLU
					sum = 0
				}
				c.out[idx3(x, y, oc, ow, oh)] = sum
			}
		}
	}
	return c.out
}

func (c *convLayer) backward(grad []float32) []float32 {
	ow, oh := c.outW(), c.outH()
	dx := make([]float32, len(c.in))
	ksz := c.k * c.k
	for oc := 0; oc < c.outC; oc++ {
		wBase := oc * c.inC * ksz
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				o := idx3(x, y, oc, ow, oh)
				if c.out[o] <= 0 { // ReLU gate
					continue
				}
				g := grad[o]
				c.db[oc] += g
				for ic := 0; ic < c.inC; ic++ {
					wOff := wBase + ic*ksz
					for ky := 0; ky < c.k; ky++ {
						inRow := idx3(x, y+ky, ic, c.inW, c.inH)
						wRow := wOff + ky*c.k
						for kx := 0; kx < c.k; kx++ {
							c.dw[wRow+kx] += g * c.in[inRow+kx]
							dx[inRow+kx] += g * c.w[wRow+kx]
						}
					}
				}
			}
		}
	}
	return dx
}

func (c *convLayer) update(lr float32, q *QuantSpec) {
	for i := range c.w {
		c.w[i] -= lr * c.dw[i]
		c.dw[i] = 0
	}
	for i := range c.b {
		c.b[i] -= lr * c.db[i]
		c.db[i] = 0
	}
	q.QuantWeights(c.w)
	q.QuantWeights(c.b)
}

// poolLayer is a 2x2 max pool with stride 2.
type poolLayer struct {
	inW, inH, c int
	argmax      []int
	out         []float32
}

func newPool(inW, inH, c int) *poolLayer {
	return &poolLayer{inW: inW, inH: inH, c: c}
}

func (p *poolLayer) outW() int    { return p.inW / 2 }
func (p *poolLayer) outH() int    { return p.inH / 2 }
func (p *poolLayer) outSize() int { return p.outW() * p.outH() * p.c }

func (p *poolLayer) forward(in []float32) []float32 {
	ow, oh := p.outW(), p.outH()
	if p.out == nil {
		p.out = make([]float32, p.outSize())
		p.argmax = make([]int, p.outSize())
	}
	for ch := 0; ch < p.c; ch++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				best := float32(math.Inf(-1))
				bi := -1
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						i := idx3(2*x+dx, 2*y+dy, ch, p.inW, p.inH)
						if in[i] > best {
							best, bi = in[i], i
						}
					}
				}
				o := idx3(x, y, ch, ow, oh)
				p.out[o] = best
				p.argmax[o] = bi
			}
		}
	}
	return p.out
}

func (p *poolLayer) backward(grad []float32) []float32 {
	dx := make([]float32, p.inW*p.inH*p.c)
	for o, g := range grad {
		dx[p.argmax[o]] += g
	}
	return dx
}

func (p *poolLayer) update(float32, *QuantSpec) {}

// fcLayer is a fully connected layer (no activation; the network applies
// softmax at the top).
type fcLayer struct {
	in, out int
	w       []float32 // [out][in]
	b       []float32
	x       []float32
	y       []float32
	dw      []float32
	db      []float32
}

func newFC(in, out int, g prng.Source) *fcLayer {
	f := &fcLayer{
		in: in, out: out,
		w:  make([]float32, in*out),
		b:  make([]float32, out),
		dw: make([]float32, in*out),
		db: make([]float32, out),
	}
	xavierInit(f.w, in, g)
	return f
}

func (f *fcLayer) outSize() int { return f.out }

func (f *fcLayer) forward(x []float32) []float32 {
	if f.y == nil {
		f.y = make([]float32, f.out)
	}
	f.x = x
	for o := 0; o < f.out; o++ {
		sum := f.b[o]
		row := o * f.in
		for i := 0; i < f.in; i++ {
			sum += f.w[row+i] * x[i]
		}
		f.y[o] = sum
	}
	return f.y
}

func (f *fcLayer) backward(grad []float32) []float32 {
	dx := make([]float32, f.in)
	for o := 0; o < f.out; o++ {
		g := grad[o]
		f.db[o] += g
		row := o * f.in
		for i := 0; i < f.in; i++ {
			f.dw[row+i] += g * f.x[i]
			dx[i] += g * f.w[row+i]
		}
	}
	return dx
}

func (f *fcLayer) update(lr float32, q *QuantSpec) {
	for i := range f.w {
		f.w[i] -= lr * f.dw[i]
		f.dw[i] = 0
	}
	for i := range f.b {
		f.b[i] -= lr * f.db[i]
		f.db[i] = 0
	}
	q.QuantWeights(f.w)
	q.QuantWeights(f.b)
}
