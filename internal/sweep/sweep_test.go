package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"buckwild/internal/kernels"
	"buckwild/internal/machine"
)

func TestMapOrderAndValues(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, 33, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 33 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty sweep: got %v, %v", got, err)
	}
}

func TestMapLowestIndexedErrorWins(t *testing.T) {
	errA := errors.New("a")
	for _, workers := range []int{1, 3, 16} {
		_, err := Map(workers, 40, func(i int) (int, error) {
			switch i {
			case 5:
				return 0, errA
			case 17, 31:
				return 0, fmt.Errorf("later failure %d", i)
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Errorf("workers=%d: err = %v, want lowest-indexed %v", workers, err, errA)
		}
	}
}

func TestMapErrorCancelsRemaining(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(1, 1000, func(i int) (int, error) {
		calls.Add(1)
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n > 4 {
		t.Errorf("serial path ran %d calls after failure at index 3", n)
	}
}

// TestSimulateDeterministic is the sweep-determinism contract: the same
// grid of points run with 1 worker and with many workers must produce
// identical Result slices, ordering and values. Run with -race this also
// exercises the pool for data races through the full simulator (shared
// stream memoization cache included).
func TestSimulateDeterministic(t *testing.T) {
	mc := machine.Xeon()
	var points []machine.Workload
	for _, threads := range []int{1, 4, 9} {
		for _, p := range []kernels.Prec{kernels.F32, kernels.I8} {
			points = append(points, machine.Workload{
				D: p, M: p,
				Variant:     kernels.HandOpt,
				Quant:       kernels.QShared,
				QuantPeriod: 8,
				ModelSize:   1 << 12,
				Threads:     threads,
				Prefetch:    true,
				Seed:        1,
			})
		}
	}
	serial, err := Simulate(mc, points, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Simulate(mc, points, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Errorf("point %d differs:\n  serial:   %+v\n  parallel: %+v", i, *serial[i], *parallel[i])
		}
	}
}

func TestSimulateEachOrdered(t *testing.T) {
	mc := machine.Xeon()
	var points []machine.Workload
	for _, threads := range []int{1, 2, 4} {
		points = append(points, machine.Workload{
			D: kernels.I8, M: kernels.I8,
			Variant:     kernels.HandOpt,
			Quant:       kernels.QShared,
			QuantPeriod: 8,
			ModelSize:   1 << 12,
			Threads:     threads,
			Prefetch:    true,
			Seed:        1,
		})
	}
	var order []int
	var coh uint64
	res, err := SimulateEach(mc, points, 4, func(i int, r *machine.Result) {
		order = append(order, i)
		coh += r.CoherenceEvents
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(points) {
		t.Fatalf("got %d results", len(res))
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Errorf("callback order = %v", order)
	}
	// The 4-thread point shares a small model, so the sweep total must be
	// nonzero — proof the per-point stats reached the observer.
	if coh == 0 {
		t.Error("no coherence events aggregated across the sweep")
	}
	// A nil callback is allowed.
	if _, err := SimulateEach(mc, points[:1], 1, nil); err != nil {
		t.Fatal(err)
	}
}
