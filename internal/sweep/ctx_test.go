package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, workers := range []int{1, 4} {
		_, err := MapCtx(ctx, workers, 100, func(i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: %v, want context.Canceled", workers, err)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("%d points dispatched after cancellation", calls.Load())
	}
}

func TestMapCtxCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	_, err := MapCtx(ctx, 2, 10_000, func(i int) (int, error) {
		if calls.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop dispatch (%d calls)", n)
	}
}

func TestMapCtxDispatchedFailureBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := fmt.Errorf("point failed")
	_, err := MapCtx(ctx, 2, 100, func(i int) (int, error) {
		if i == 3 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the dispatched failure", err)
	}
}

func TestMapCtxNilAndBackground(t *testing.T) {
	got, err := MapCtx(context.Background(), 3, 5, func(i int) (int, error) { return i + 1, nil })
	if err != nil || len(got) != 5 || got[4] != 5 {
		t.Fatalf("background ctx sweep: %v, %v", got, err)
	}
}
