// Package sweep fans independent simulation points out over a worker
// pool. The paper's evaluation is a grid of embarrassingly-parallel
// machine.Simulate points (each owns its own cache.Hierarchy and PRNG
// seed), yet the experiments driver used to walk them strictly
// sequentially; this package gives every sweep the machine's cores while
// keeping results in deterministic input order.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"buckwild/internal/machine"
	"buckwild/internal/obs"
)

// Map runs fn(i) for every i in [0, n) on a pool of workers goroutines
// and returns the results in input order. workers <= 0 selects
// runtime.GOMAXPROCS(0); the pool never exceeds n. If any calls fail, Map
// returns the error of the lowest-indexed failure — the same error a
// sequential loop would surface first — regardless of worker count or
// scheduling, so parallel and serial runs are interchangeable.
func Map[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map bounded by a context: once ctx is cancelled no new
// indices are dispatched, in-flight calls are awaited, and MapCtx returns
// context.Cause(ctx). A failure of a dispatched call still wins over the
// cancellation (lowest-index-failure semantics are unchanged); callers
// whose fn is itself context-aware get mid-point cancellation on top of
// the between-point cut-off implemented here.
func MapCtx[R any](ctx context.Context, workers, n int, fn func(i int) (R, error)) ([]R, error) {
	return mapWorkerCtx(ctx, workers, n, func(_ context.Context, i int) (R, error) {
		return fn(i)
	})
}

// mapWorkerCtx is the pool behind MapCtx; fn additionally receives the
// worker's context. When the bounding context carries an obs.Tracer,
// each pool worker gets its own trace track (so context-aware fns — the
// machine simulations — render their sub-spans on their worker's track,
// nested under the per-task span recorded here) and every dispatched
// task is recorded as one "sweep/task" span.
func mapWorkerCtx[R any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	tracer := obs.TracerFrom(ctx)
	results := make([]R, n)
	if workers == 1 {
		// A single worker inherits the caller's track.
		tid := obs.TraceTID(ctx)
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, context.Cause(ctx)
			}
			span := tracer.Begin("sweep", "task", tid)
			r, err := fn(ctx, i)
			span.EndArgs(map[string]string{"index": fmt.Sprint(i)})
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	var (
		mu     sync.Mutex
		next   int
		errIdx = n
		first  error
		wg     sync.WaitGroup
	)
	claim := func() (int, bool) {
		if ctx.Err() != nil {
			return 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		// Indexes past the lowest failure cannot change the outcome;
		// skip them so errors cancel the remaining work.
		if next >= n || next >= errIdx {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if i < errIdx {
			errIdx, first = i, err
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			wctx := ctx
			tid := obs.TraceTID(ctx)
			if tracer != nil {
				// Track ids are 1-based so the coordinator keeps track 0.
				tid = w + 1
				wctx = obs.ContextWithTraceTID(ctx, tid)
				tracer.NameTrack(tid, fmt.Sprintf("sweep-worker-%d", tid))
			}
			for {
				i, ok := claim()
				if !ok {
					return
				}
				span := tracer.Begin("sweep", "task", tid)
				r, err := fn(wctx, i)
				span.EndArgs(map[string]string{"index": fmt.Sprint(i)})
				if err != nil {
					fail(i, err)
					continue
				}
				results[i] = r
			}
		}(w)
	}
	wg.Wait()
	if first != nil {
		return nil, first
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	return results, nil
}

// Simulate runs every workload point on the machine configuration through
// the worker pool and returns the results in input order.
func Simulate(mc machine.Config, points []machine.Workload, workers int) ([]*machine.Result, error) {
	return SimulateCtx(context.Background(), mc, points, workers)
}

// SimulateCtx is Simulate bounded by a context: cancellation stops
// dispatching new points and interrupts the running simulations at their
// next measurement round.
func SimulateCtx(ctx context.Context, mc machine.Config, points []machine.Workload, workers int) ([]*machine.Result, error) {
	return mapWorkerCtx(ctx, workers, len(points), func(wctx context.Context, i int) (*machine.Result, error) {
		return machine.SimulateCtx(wctx, mc, points[i])
	})
}

// SimulateEach is Simulate plus a per-point observer: after all points
// complete, each is invoked in strict input order on the calling
// goroutine, so observers may aggregate without synchronization (the
// experiments driver folds per-point cache and access statistics into
// its run report this way). each may be nil.
func SimulateEach(mc machine.Config, points []machine.Workload, workers int, each func(i int, r *machine.Result)) ([]*machine.Result, error) {
	return SimulateEachCtx(context.Background(), mc, points, workers, each)
}

// SimulateEachCtx is SimulateEach bounded by a context.
func SimulateEachCtx(ctx context.Context, mc machine.Config, points []machine.Workload, workers int, each func(i int, r *machine.Result)) ([]*machine.Result, error) {
	res, err := SimulateCtx(ctx, mc, points, workers)
	if err != nil {
		return nil, err
	}
	if each != nil {
		for i, r := range res {
			each(i, r)
		}
	}
	return res, nil
}
