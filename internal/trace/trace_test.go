package trace

import (
	"testing"

	"buckwild/internal/cache"
	"buckwild/internal/prng"
)

// recorder collects every recorded access for inspection.
type recorder struct {
	kinds   []Kind
	writes  []bool
	lats    []int
	cohs    []bool
	byCore  map[int]int
	byWrite int
}

func newRecorder() *recorder { return &recorder{byCore: map[int]int{}} }

func (r *recorder) Record(core int, kind Kind, write bool, latency int, coherent bool) {
	r.kinds = append(r.kinds, kind)
	r.writes = append(r.writes, write)
	r.lats = append(r.lats, latency)
	r.cohs = append(r.cohs, coherent)
	r.byCore[core]++
	if write {
		r.byWrite++
	}
}

func testHierarchy(t *testing.T, cores int) *cache.Hierarchy {
	t.Helper()
	cfg := cache.Config{
		Cores:    cores,
		LineSize: 64,
		L1Size:   1 << 10, L1Assoc: 2, L1Lat: 4,
		L2Size: 8 << 10, L2Assoc: 4, L2Lat: 12,
		L3Size: 256 << 10, L3Assoc: 8, L3Lat: 36,
		DRAMLat: 200,
	}
	h, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDenseAccessCounts(t *testing.T) {
	h := testHierarchy(t, 1)
	r := newRecorder()
	cfg := DenseConfig{
		ModelElems:          1024, // 1 KB dataset, 1 KB model at 1 B/elem
		DatasetBytesPerElem: 1,
		ModelBytesPerElem:   1,
		MiniBatch:           1,
		Regions:             DefaultRegions(),
	}
	if err := Dense(h, r, 0, cfg, 0); err != nil {
		t.Fatal(err)
	}
	// 16 lines per KB: dataset read twice (dot + axpy passes), model
	// read in the dot, then read+write in the AXPY.
	wantReads := 16*2 + 16 + 16
	wantWrites := 16
	if r.byWrite != wantWrites {
		t.Errorf("writes = %d, want %d", r.byWrite, wantWrites)
	}
	if len(r.lats)-r.byWrite != wantReads {
		t.Errorf("reads = %d, want %d", len(r.lats)-r.byWrite, wantReads)
	}
	// Kinds partition correctly.
	ds, ms := 0, 0
	for _, k := range r.kinds {
		switch k {
		case DatasetStream:
			ds++
		case ModelSeq:
			ms++
		}
	}
	if ds != 32 || ms != 48 {
		t.Errorf("kind split %d/%d, want 32/48", ds, ms)
	}
}

func TestDenseMiniBatch(t *testing.T) {
	h := testHierarchy(t, 1)
	r := newRecorder()
	cfg := DenseConfig{
		ModelElems:          1024,
		DatasetBytesPerElem: 1,
		ModelBytesPerElem:   1,
		MiniBatch:           4,
		Regions:             DefaultRegions(),
	}
	if err := Dense(h, r, 0, cfg, 0); err != nil {
		t.Fatal(err)
	}
	// Model is written once per batch regardless of B.
	if r.byWrite != 16 {
		t.Errorf("writes = %d, want 16", r.byWrite)
	}
	// Dataset streamed 2x per example, model read once per example + once for AXPY.
	ds, ms := 0, 0
	for _, k := range r.kinds {
		if k == DatasetStream {
			ds++
		} else {
			ms++
		}
	}
	if ds != 16*4*2 {
		t.Errorf("dataset accesses = %d, want 128", ds)
	}
	if ms != 16*4+32 {
		t.Errorf("model accesses = %d, want 96", ms)
	}
}

func TestDenseErrors(t *testing.T) {
	h := testHierarchy(t, 1)
	r := newRecorder()
	if err := Dense(h, r, 0, DenseConfig{ModelElems: 0, MiniBatch: 1}, 0); err == nil {
		t.Error("zero elems should fail")
	}
	if err := Dense(h, r, 0, DenseConfig{ModelElems: 10, MiniBatch: 0}, 0); err == nil {
		t.Error("zero batch should fail")
	}
}

func TestSparseAccesses(t *testing.T) {
	h := testHierarchy(t, 1)
	r := newRecorder()
	cfg := SparseConfig{
		ModelElems:        4096,
		NNZ:               30,
		ValueBytesPerElem: 1,
		IndexBytesPerElem: 2,
		ModelBytesPerElem: 1,
		MiniBatch:         1,
		Regions:           DefaultRegions(),
	}
	rng := prng.NewXorshift64(7)
	if err := Sparse(h, r, 0, cfg, 0, rng); err != nil {
		t.Fatal(err)
	}
	// Stream: ceil(30*3/64) = 2 lines; gathers: 30 dot reads + 30
	// axpy reads + 30 writes.
	var stream, random int
	for _, k := range r.kinds {
		if k == DatasetStream {
			stream++
		} else if k == ModelRandom {
			random++
		}
	}
	if stream != 2 {
		t.Errorf("stream accesses = %d, want 2", stream)
	}
	if random != 90 {
		t.Errorf("random accesses = %d, want 90", random)
	}
	if r.byWrite != 30 {
		t.Errorf("writes = %d, want 30", r.byWrite)
	}
}

func TestSparseErrors(t *testing.T) {
	h := testHierarchy(t, 1)
	r := newRecorder()
	rng := prng.NewXorshift64(1)
	if err := Sparse(h, r, 0, SparseConfig{ModelElems: 0, NNZ: 1, MiniBatch: 1}, 0, rng); err == nil {
		t.Error("zero elems should fail")
	}
	if err := Sparse(h, r, 0, SparseConfig{ModelElems: 10, NNZ: 0, MiniBatch: 1}, 0, rng); err == nil {
		t.Error("zero nnz should fail")
	}
	if err := Sparse(h, r, 0, SparseConfig{ModelElems: 10, NNZ: 2, MiniBatch: 0}, 0, rng); err == nil {
		t.Error("zero batch should fail")
	}
}

func TestCoresSeparateDatasets(t *testing.T) {
	h := testHierarchy(t, 2)
	r := newRecorder()
	cfg := DenseConfig{
		ModelElems:          256,
		DatasetBytesPerElem: 4,
		ModelBytesPerElem:   4,
		MiniBatch:           1,
		Regions:             DefaultRegions(),
	}
	if err := Dense(h, r, 0, cfg, 0); err != nil {
		t.Fatal(err)
	}
	if err := Dense(h, r, 1, cfg, 0); err != nil {
		t.Fatal(err)
	}
	// Core 1's dataset reads must be cold (separate region), so some
	// of its accesses hit DRAM even after core 0 warmed its own.
	if r.byCore[0] == 0 || r.byCore[1] == 0 {
		t.Fatal("both cores should access memory")
	}
	sawCold := false
	for i, lat := range r.lats {
		if i >= r.byCore[0] && lat >= 200 && r.kinds[i] == DatasetStream {
			sawCold = true
		}
	}
	if !sawCold {
		t.Error("core 1's dataset stream should be cold")
	}
}

func TestOffsetAdvancesStream(t *testing.T) {
	h := testHierarchy(t, 1)
	cfg := DenseConfig{
		ModelElems:          1024,
		DatasetBytesPerElem: 1,
		ModelBytesPerElem:   1,
		MiniBatch:           1,
		Regions:             DefaultRegions(),
	}
	r1 := newRecorder()
	if err := Dense(h, r1, 0, cfg, 0); err != nil {
		t.Fatal(err)
	}
	r2 := newRecorder()
	if err := Dense(h, r2, 0, cfg, 4096); err != nil {
		t.Fatal(err)
	}
	// The offset run touches fresh dataset lines: cold misses again.
	cold := 0
	for i, lat := range r2.lats {
		if r2.kinds[i] == DatasetStream && lat >= 200 {
			cold++
		}
	}
	if cold == 0 {
		t.Error("offset stream should be cold")
	}
}
