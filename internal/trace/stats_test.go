package trace

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		DatasetStream: "dataset-stream",
		ModelSeq:      "model-seq",
		ModelRandom:   "model-random",
		Kind(99):      "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestAccessStatsRecord(t *testing.T) {
	var a AccessStats
	a.Record(DatasetStream, false, 4, false)
	a.Record(ModelSeq, false, 40, true)
	a.Record(ModelSeq, true, 1, false)
	a.Record(ModelRandom, false, 200, false)
	if a.DatasetStream.Accesses != 1 || a.DatasetStream.LatencyCycles != 4 {
		t.Errorf("dataset = %+v", a.DatasetStream)
	}
	if a.ModelSeq.Accesses != 2 || a.ModelSeq.Writes != 1 || a.ModelSeq.Coherent != 1 {
		t.Errorf("model-seq = %+v", a.ModelSeq)
	}
	tot := a.Total()
	if tot.Accesses != 4 || tot.LatencyCycles != 245 || tot.Coherent != 1 {
		t.Errorf("total = %+v", tot)
	}
	if got := a.ModelSeq.MeanLatency(); got != 20.5 {
		t.Errorf("mean latency = %v", got)
	}
	var b AccessStats
	b.Record(ModelRandom, true, 10, true)
	a.Merge(b)
	if a.ModelRandom.Accesses != 2 || a.ModelRandom.Writes != 1 {
		t.Errorf("merged model-random = %+v", a.ModelRandom)
	}
	a.Reset()
	if a.Total().Accesses != 0 {
		t.Errorf("reset left %+v", a)
	}
}

type recordCount struct{ n int }

func (r *recordCount) Record(int, Kind, bool, int, bool) { r.n++ }

func TestCollectorForwards(t *testing.T) {
	next := &recordCount{}
	c := &Collector{Next: next}
	c.Record(0, DatasetStream, false, 4, false)
	c.Record(1, ModelRandom, true, 30, true)
	if c.Stats.Total().Accesses != 2 {
		t.Errorf("collector stats = %+v", c.Stats)
	}
	if next.n != 2 {
		t.Errorf("forwarded %d of 2 accesses", next.n)
	}
	// A nil Next is collect-only.
	(&Collector{}).Record(0, ModelSeq, false, 1, false)
}
