// Package trace drives the memory-access patterns of SGD steps through the
// cache simulator. A dense step streams the example vector from the core's
// private dataset region, reads the shared model for the dot product, and
// reads+writes the shared model for the AXPY. A sparse step streams the
// nonzero values and indices and gathers/scatters random model words.
//
// The trace works at cache-line granularity: SGD's element loops touch
// every byte of the regions involved, so one access per line per pass is
// the correct line-level behaviour.
package trace

import (
	"fmt"

	"buckwild/internal/cache"
	"buckwild/internal/prng"
)

// Kind classifies an access for the timing model.
type Kind int

const (
	// DatasetStream is a sequential read of the (private) dataset
	// region: independent loads with high memory-level parallelism.
	DatasetStream Kind = iota
	// ModelSeq is a sequential read or write of the shared model
	// region (dense dot/AXPY passes).
	ModelSeq
	// ModelRandom is a gather/scatter access to random model words
	// (sparse kernels): no spatial locality, little overlap.
	ModelRandom
)

// Sink receives each access's outcome. latency is the raw hierarchy
// latency in cycles; coherent marks coherence events (dirty-remote
// transfers and invalidation broadcasts), which sit on the critical path.
type Sink interface {
	Record(core int, kind Kind, write bool, latency int, coherent bool)
}

// Regions fixes the address layout: a shared model region and per-core
// dataset regions far away from it.
type Regions struct {
	// ModelBase is the byte address of the model.
	ModelBase uint64
	// DatasetBase returns the byte address of core c's dataset region.
	DatasetStride uint64
}

// DefaultRegions places the model at 0 and gives each core a 1 GiB
// dataset window starting at 1 TiB.
func DefaultRegions() Regions {
	return Regions{ModelBase: 0, DatasetStride: 1 << 30}
}

func (r Regions) datasetBase(core int) uint64 {
	return (1 << 40) + uint64(core)*r.DatasetStride
}

// DenseConfig describes the dense per-step trace.
type DenseConfig struct {
	// ModelElems is the model size n in elements.
	ModelElems int
	// DatasetBytesPerElem and ModelBytesPerElem are the storage widths
	// (fractional for packed 4-bit).
	DatasetBytesPerElem float64
	ModelBytesPerElem   float64
	// MiniBatch is the number of examples per model update (B >= 1).
	MiniBatch int
	Regions   Regions
}

// Dense generates the accesses of one dense mini-batch step for core on h,
// reporting each to sink. exampleOffset positions the batch within the
// core's dataset region so successive steps stream fresh data.
func Dense(h *cache.Hierarchy, sink Sink, core int, cfg DenseConfig, exampleOffset uint64) error {
	if cfg.ModelElems <= 0 {
		return fmt.Errorf("trace: ModelElems must be positive")
	}
	if cfg.MiniBatch < 1 {
		return fmt.Errorf("trace: MiniBatch must be >= 1")
	}
	ls := uint64(h.Config().LineSize)
	exBytes := ceilU(float64(cfg.ModelElems) * cfg.DatasetBytesPerElem)
	modelBytes := ceilU(float64(cfg.ModelElems) * cfg.ModelBytesPerElem)
	dsBase := cfg.Regions.datasetBase(core) + exampleOffset
	// Dot phase: for each example in the batch, stream the example and
	// read the model. The hierarchy and sink are called directly — this
	// loop is the simulator's innermost hot path.
	for b := 0; b < cfg.MiniBatch; b++ {
		base := dsBase + uint64(b)*roundUp(exBytes, ls)
		for a := uint64(0); a < exBytes; a += ls {
			lat, coh := h.AccessInfo(core, base+a, false, false)
			sink.Record(core, DatasetStream, false, lat, coh)
		}
		for a := uint64(0); a < modelBytes; a += ls {
			lat, coh := h.AccessInfo(core, cfg.Regions.ModelBase+a, false, true)
			sink.Record(core, ModelSeq, false, lat, coh)
		}
	}
	// AXPY phase: one pass re-reading the batch examples (still hot in
	// cache), then read-modify-write of the model.
	for b := 0; b < cfg.MiniBatch; b++ {
		base := dsBase + uint64(b)*roundUp(exBytes, ls)
		for a := uint64(0); a < exBytes; a += ls {
			lat, coh := h.AccessInfo(core, base+a, false, false)
			sink.Record(core, DatasetStream, false, lat, coh)
		}
	}
	for a := uint64(0); a < modelBytes; a += ls {
		lat, coh := h.AccessInfo(core, cfg.Regions.ModelBase+a, false, true)
		sink.Record(core, ModelSeq, false, lat, coh)
		lat, coh = h.AccessInfo(core, cfg.Regions.ModelBase+a, true, true)
		sink.Record(core, ModelSeq, true, lat, coh)
	}
	return nil
}

// SparseConfig describes the sparse per-step trace.
type SparseConfig struct {
	ModelElems int
	// NNZ is the number of nonzeros per example.
	NNZ int
	// ValueBytesPerElem and IndexBytesPerElem describe the streamed
	// dataset storage; ModelBytesPerElem the model storage.
	ValueBytesPerElem float64
	IndexBytesPerElem float64
	ModelBytesPerElem float64
	MiniBatch         int
	Regions           Regions
}

// Sparse generates one sparse mini-batch step: values and indices stream
// sequentially; the touched model words are random. rng supplies the
// coordinate choices (one generator per simulation keeps runs
// reproducible).
func Sparse(h *cache.Hierarchy, sink Sink, core int, cfg SparseConfig, exampleOffset uint64, rng *prng.Xorshift64) error {
	if cfg.ModelElems <= 0 || cfg.NNZ <= 0 {
		return fmt.Errorf("trace: ModelElems and NNZ must be positive")
	}
	if cfg.MiniBatch < 1 {
		return fmt.Errorf("trace: MiniBatch must be >= 1")
	}
	ls := uint64(h.Config().LineSize)
	streamBytes := ceilU(float64(cfg.NNZ) * (cfg.ValueBytesPerElem + cfg.IndexBytesPerElem))
	dsBase := cfg.Regions.datasetBase(core) + exampleOffset
	idx := make([]uint64, cfg.NNZ)
	for b := 0; b < cfg.MiniBatch; b++ {
		base := dsBase + uint64(b)*roundUp(streamBytes, ls)
		for a := uint64(0); a < streamBytes; a += ls {
			lat, coh := h.AccessInfo(core, base+a, false, false)
			sink.Record(core, DatasetStream, false, lat, coh)
		}
		for j := range idx {
			e := rng.Uint64() % uint64(cfg.ModelElems)
			idx[j] = cfg.Regions.ModelBase + ceilU(float64(e)*cfg.ModelBytesPerElem)
			// Dot gather.
			lat, coh := h.AccessInfo(core, idx[j], false, true)
			sink.Record(core, ModelRandom, false, lat, coh)
		}
		// AXPY scatter over the same coordinates (B=1 semantics; for
		// mini-batches the update coordinates are the union, which we
		// approximate by updating per example -- the gather cost
		// dominates either way).
		for _, a := range idx {
			lat, coh := h.AccessInfo(core, a, false, true)
			sink.Record(core, ModelRandom, false, lat, coh)
			lat, coh = h.AccessInfo(core, a, true, true)
			sink.Record(core, ModelRandom, true, lat, coh)
		}
	}
	return nil
}

func ceilU(x float64) uint64 {
	u := uint64(x)
	if float64(u) < x {
		u++
	}
	return u
}

func roundUp(v, m uint64) uint64 {
	return (v + m - 1) / m * m
}
