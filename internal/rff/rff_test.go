package rff

import (
	"math"
	"testing"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
)

func TestNewTransformErrors(t *testing.T) {
	if _, err := NewTransform(0, 10, 1, 1); err == nil {
		t.Error("zero input dim should fail")
	}
	if _, err := NewTransform(10, 0, 1, 1); err == nil {
		t.Error("zero features should fail")
	}
	if _, err := NewTransform(10, 10, 0, 1); err == nil {
		t.Error("zero sigma should fail")
	}
}

func TestTransformProperties(t *testing.T) {
	tr, err := NewTransform(16, 64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 16)
	for i := range x {
		x[i] = float32(i) / 16
	}
	f, err := tr.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 64 {
		t.Fatalf("feature dim %d", len(f))
	}
	bound := float32(math.Sqrt(2.0 / 64))
	for _, v := range f {
		if v > bound+1e-6 || v < -bound-1e-6 {
			t.Fatalf("feature %v outside [-%v, %v]", v, bound, bound)
		}
	}
	if _, err := tr.Apply(x[:5]); err == nil {
		t.Error("dim mismatch should fail")
	}
}

func TestTransformApproximatesGaussianKernel(t *testing.T) {
	// z(x).z(y) should approximate exp(-|x-y|^2 / (2 sigma^2)).
	const dim, feats = 8, 4096
	sigma := 2.0
	tr, err := NewTransform(dim, feats, sigma, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := []float32{0.5, -0.2, 0.1, 0.7, -0.5, 0.3, 0, 0.2}
	y := []float32{0.1, 0.2, -0.3, 0.5, -0.1, 0.4, 0.2, -0.2}
	fx, _ := tr.Apply(x)
	fy, _ := tr.Apply(y)
	var dot, d2 float64
	for i := range fx {
		dot += float64(fx[i]) * float64(fy[i])
	}
	for i := range x {
		d := float64(x[i] - y[i])
		d2 += d * d
	}
	want := math.Exp(-d2 / (2 * sigma * sigma))
	if math.Abs(dot-want) > 0.08 {
		t.Errorf("kernel estimate %v, want %v", dot, want)
	}
}

func svmCfg(d, m kernels.Prec) core.Config {
	return core.Config{
		Problem:     core.SVM,
		D:           d,
		M:           m,
		Variant:     kernels.HandOpt,
		Quant:       kernels.QShared,
		QuantPeriod: 8,
		Threads:     2,
		StepSize:    0.05,
		Epochs:      4,
		Sharing:     core.Racy,
		Seed:        5,
	}
}

func TestTrainOVAFullPrecision(t *testing.T) {
	d, err := dataset.GenDigits(dataset.DigitsConfig{W: 10, H: 10, Classes: 4, Train: 500, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	train, test := d.Split(0.8)
	_, res, err := Train(Config{Features: 256, Train: svmCfg(kernels.F32, kernels.F32), Seed: 2}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrainLoss[len(res.TrainLoss)-1] >= res.TrainLoss[0] {
		t.Errorf("hinge loss did not fall: %v", res.TrainLoss)
	}
	if res.TestError > 0.4 { // chance is 0.75
		t.Errorf("test error %v too high", res.TestError)
	}
}

func TestTrainOVALowPrecisionCloseToFull(t *testing.T) {
	// Figures 7d/7e: D16M16 matches full precision; D8M8 is within a
	// percent or two.
	d, err := dataset.GenDigits(dataset.DigitsConfig{W: 10, H: 10, Classes: 4, Train: 500, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	train, test := d.Split(0.8)
	_, full, err := Train(Config{Features: 256, Train: svmCfg(kernels.F32, kernels.F32), Seed: 3}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	_, low, err := Train(Config{Features: 256, Train: svmCfg(kernels.I16, kernels.I16), Seed: 3}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if low.TestError > full.TestError+0.1 {
		t.Errorf("16-bit error %v too far above full-precision %v", low.TestError, full.TestError)
	}
}

func TestTrainErrors(t *testing.T) {
	d, _ := dataset.GenDigits(dataset.DigitsConfig{W: 8, H: 8, Classes: 2, Train: 50, Seed: 1})
	train, test := d.Split(0.8)
	if _, _, err := Train(Config{Features: 0, Train: svmCfg(kernels.F32, kernels.F32)}, train, test); err == nil {
		t.Error("zero features should fail")
	}
	if _, _, err := Train(Config{Features: 16, Train: svmCfg(kernels.F32, kernels.F32)}, nil, test); err == nil {
		t.Error("nil training set should fail")
	}
}

func TestPredictIsDeterministic(t *testing.T) {
	d, _ := dataset.GenDigits(dataset.DigitsConfig{W: 8, H: 8, Classes: 3, Train: 200, Seed: 4})
	train, test := d.Split(0.8)
	m, _, err := Train(Config{Features: 128, Train: svmCfg(kernels.F32, kernels.F32), Seed: 9}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Predict(test.Images[0])
	if err != nil {
		t.Fatal(err)
	}
	b, _ := m.Predict(test.Images[0])
	if a != b {
		t.Error("prediction not deterministic")
	}
}
