// Package rff implements kernel support vector machines via random Fourier
// features (Rahimi and Recht 2007), "a standard proxy for Gaussian
// kernels", as used in the paper's Section 7 evaluation: ten one-versus-all
// SVM classifiers trained with Buckwild! SGD on the transformed features
// (Figures 7d and 7e).
package rff

import (
	"fmt"
	"math"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/prng"
)

// Transform is a random Fourier feature map approximating a Gaussian
// kernel of bandwidth Sigma: z(x) = sqrt(2/D) cos(Wx + b).
type Transform struct {
	InDim, D int
	Sigma    float64
	w        [][]float32
	b        []float32
}

// NewTransform samples a feature map with D features over inDim inputs.
func NewTransform(inDim, d int, sigma float64, seed uint64) (*Transform, error) {
	if inDim < 1 || d < 1 {
		return nil, fmt.Errorf("rff: dimensions must be positive")
	}
	if sigma <= 0 {
		return nil, fmt.Errorf("rff: sigma must be positive")
	}
	g := prng.NewXorshift128(seed ^ 0x4FF)
	t := &Transform{InDim: inDim, D: d, Sigma: sigma,
		w: make([][]float32, d), b: make([]float32, d)}
	for j := 0; j < d; j++ {
		row := make([]float32, inDim)
		for i := range row {
			row[i] = float32(gaussian(g) / sigma)
		}
		t.w[j] = row
		t.b[j] = prng.Float32(g) * 2 * math.Pi
	}
	return t, nil
}

// gaussian returns a standard normal sample (Box-Muller).
func gaussian(g prng.Source) float64 {
	u1 := float64(prng.Float32(g))
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := float64(prng.Float32(g))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Apply maps one input to its feature vector.
func (t *Transform) Apply(x []float32) ([]float32, error) {
	if len(x) != t.InDim {
		return nil, fmt.Errorf("rff: input dim %d, transform expects %d", len(x), t.InDim)
	}
	out := make([]float32, t.D)
	scale := float32(math.Sqrt(2 / float64(t.D)))
	for j := 0; j < t.D; j++ {
		var dot float64
		for i, xi := range x {
			dot += float64(t.w[j][i]) * float64(xi)
		}
		out[j] = scale * float32(math.Cos(dot+float64(t.b[j])))
	}
	return out, nil
}

// Config configures a one-versus-all kernel SVM run.
type Config struct {
	// Features is D, the number of random Fourier features.
	Features int
	// Sigma is the Gaussian kernel bandwidth.
	Sigma float64
	// Train configures the underlying Buckwild! engine; Problem is
	// forced to SVM and D/M select the feature and model precisions.
	Train core.Config
	Seed  uint64
}

// Model is a trained one-versus-all classifier.
type Model struct {
	T *Transform
	// W holds one weight vector per class over the feature space.
	W [][]float32
}

// Result reports training statistics.
type Result struct {
	// TrainLoss is the mean (across classes) hinge loss per epoch.
	TrainLoss []float64
	// TrainError and TestError are classification errors.
	TrainError, TestError float64
}

// Train fits one binary Buckwild! SVM per class on the transformed
// features and evaluates on test.
func Train(cfg Config, train, test *dataset.Digits) (*Model, *Result, error) {
	if cfg.Features < 1 {
		return nil, nil, fmt.Errorf("rff: Features must be positive")
	}
	if train == nil || len(train.Images) == 0 {
		return nil, nil, fmt.Errorf("rff: empty training set")
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = math.Sqrt(float64(train.W * train.H))
	}
	t, err := NewTransform(train.W*train.H, cfg.Features, cfg.Sigma, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	feats := make([][]float32, len(train.Images))
	for i, img := range train.Images {
		if feats[i], err = t.Apply(img); err != nil {
			return nil, nil, err
		}
	}

	// Fixed-point training wants features that fill the representable
	// range: raw RFF features have amplitude sqrt(2/D), which would
	// waste most of an 8-bit grid. Scaling all features by a common
	// gain changes every class score by the same factor, so predictions
	// are unaffected.
	gain := float32(0.5 * math.Sqrt(float64(cfg.Features)/2))
	scaled := make([][]float32, len(feats))
	for i, f := range feats {
		row := make([]float32, len(f))
		for j, v := range f {
			row[j] = v * gain
		}
		scaled[i] = row
	}

	ccfg := cfg.Train
	ccfg.Problem = core.SVM
	model := &Model{T: t, W: make([][]float32, train.C)}
	var lossSums []float64
	for c := 0; c < train.C; c++ {
		ds, err := binarySet(scaled, train.Labels, c, ccfg.D, cfg.Seed+uint64(c))
		if err != nil {
			return nil, nil, err
		}
		res, err := core.TrainDense(ccfg, ds)
		if err != nil {
			return nil, nil, err
		}
		model.W[c] = res.W
		if lossSums == nil {
			lossSums = make([]float64, len(res.TrainLoss))
		}
		for e, l := range res.TrainLoss {
			lossSums[e] += l
		}
	}
	for e := range lossSums {
		lossSums[e] /= float64(train.C)
	}
	r := &Result{TrainLoss: lossSums}
	if r.TrainError, err = errorOn(model, train); err != nil {
		return nil, nil, err
	}
	if test != nil && len(test.Images) > 0 {
		if r.TestError, err = errorOn(model, test); err != nil {
			return nil, nil, err
		}
	}
	return model, r, nil
}

// binarySet builds the one-vs-all dense dataset for class c: features
// quantized at precision p with labels +1 for class c, -1 otherwise.
func binarySet(feats [][]float32, labels []int, c int, p kernels.Prec, seed uint64) (*dataset.DenseSet, error) {
	n := len(feats[0])
	ds := &dataset.DenseSet{
		N:   n,
		X:   make([]kernels.Vec, len(feats)),
		Raw: feats,
		Y:   make([]float32, len(feats)),
	}
	var q *kernels.Quantizer
	if p != kernels.F32 {
		var err error
		q, err = kernels.NewQuantizer(p, kernels.QXorshift, 0, seed|1)
		if err != nil {
			return nil, err
		}
	}
	for i, f := range feats {
		v := kernels.NewVec(p, n)
		v.Fill(f, q)
		ds.X[i] = v
		if labels[i] == c {
			ds.Y[i] = 1
		} else {
			ds.Y[i] = -1
		}
	}
	return ds, nil
}

// Predict classifies one raw image.
func (m *Model) Predict(img []float32) (int, error) {
	f, err := m.T.Apply(img)
	if err != nil {
		return 0, err
	}
	best, bestScore := 0, math.Inf(-1)
	for c, w := range m.W {
		var s float64
		for j := range w {
			s += float64(w[j]) * float64(f[j])
		}
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best, nil
}

// errorOn returns the classification error of the model on d.
func errorOn(m *Model, d *dataset.Digits) (float64, error) {
	wrong := 0
	for i, img := range d.Images {
		p, err := m.Predict(img)
		if err != nil {
			return 0, err
		}
		if p != d.Labels[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(d.Images)), nil
}
