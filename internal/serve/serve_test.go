package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// linModel is a test Predictor: a linear model whose every weight is the
// same constant, so the margin of the all-ones example of dimension d is
// exactly const*d. The torn-model race test exploits this: a model
// promoted at epoch e carries weight float32(e) everywhere, so any
// response whose margin disagrees with float32(model_epoch)*d proves a
// reader observed a mixture of two models.
type linModel struct {
	w     []float32
	delay time.Duration // per predict call, to hold requests in flight
}

func newLin(dim int, val float32) *linModel {
	w := make([]float32, dim)
	for i := range w {
		w[i] = val
	}
	return &linModel{w: w}
}

func (m *linModel) Dim() int { return len(m.w) }

func (m *linModel) PredictDense(x []float32) (float32, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if len(x) != len(m.w) {
		return 0, fmt.Errorf("dim %d vs %d", len(x), len(m.w))
	}
	var s float32
	for i, v := range x {
		s += m.w[i] * v
	}
	return s, nil
}

func (m *linModel) PredictSparse(idx []int32, vals []float32) (float32, error) {
	if m.delay > 0 {
		time.Sleep(m.delay)
	}
	if len(idx) != len(vals) {
		return 0, fmt.Errorf("%d indices, %d values", len(idx), len(vals))
	}
	var s float32
	for k, j := range idx {
		if j < 0 || int(j) >= len(m.w) {
			return 0, fmt.Errorf("index %d out of range", j)
		}
		s += m.w[j] * vals[k]
	}
	return s, nil
}

func (m *linModel) PredictBatch(xs [][]float32, out []float32) ([]float32, error) {
	if out == nil {
		out = make([]float32, len(xs))
	}
	for i, x := range xs {
		v, err := m.PredictDense(x)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

type resp struct {
	Margin     *float32  `json:"margin"`
	Margins    []float32 `json:"margins"`
	ModelEpoch int       `json:"model_epoch"`
	Promotion  uint64    `json:"promotion"`
	Error      string    `json:"error"`
}

func post(t *testing.T, url, body string) (int, resp) {
	t.Helper()
	r, err := http.Post(url+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer r.Body.Close()
	var pr resp
	if err := json.NewDecoder(r.Body).Decode(&pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return r.StatusCode, pr
}

func TestPredictEndpoints(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	if _, err := s.Promote(newLin(4, 2), 3, 0.5); err != nil {
		t.Fatalf("Promote: %v", err)
	}

	// Single dense.
	code, pr := post(t, hs.URL, `{"x":[1,1,1,1]}`)
	if code != 200 || pr.Margin == nil || *pr.Margin != 8 {
		t.Fatalf("dense: code %d, resp %+v", code, pr)
	}
	if pr.ModelEpoch != 3 || pr.Promotion != 1 {
		t.Fatalf("provenance: %+v", pr)
	}

	// Single sparse.
	code, pr = post(t, hs.URL, `{"indices":[0,2],"values":[1,3]}`)
	if code != 200 || pr.Margin == nil || *pr.Margin != 8 {
		t.Fatalf("sparse: code %d, resp %+v", code, pr)
	}

	// Batch.
	code, pr = post(t, hs.URL, `{"batch":[[1,1,1,1],[0,0,0,1]]}`)
	if code != 200 || len(pr.Margins) != 2 || pr.Margins[0] != 8 || pr.Margins[1] != 2 {
		t.Fatalf("batch: code %d, resp %+v", code, pr)
	}

	// Malformed: no payload kind.
	if code, _ = post(t, hs.URL, `{}`); code != 400 {
		t.Fatalf("empty request: code %d", code)
	}
	// Malformed: dimension mismatch surfaces the predictor's error.
	if code, pr = post(t, hs.URL, `{"x":[1]}`); code != 400 || pr.Error == "" {
		t.Fatalf("bad dim: code %d, resp %+v", code, pr)
	}
	// GET is rejected.
	r, err := http.Get(hs.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: code %d", r.StatusCode)
	}
}

func TestNoModelYet(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	code, pr := post(t, hs.URL, `{"x":[1]}`)
	if code != http.StatusServiceUnavailable || pr.Error == "" {
		t.Fatalf("no model: code %d, resp %+v", code, pr)
	}
}

func TestPromotionGate(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if _, err := s.Promote(newLin(2, 1), 1, 0.9); err != nil {
		t.Fatalf("first promote: %v", err)
	}
	s.RefusePromotions("health watchdog: diverged at epoch 2")
	if _, err := s.Promote(newLin(2, 9), 2, 0.1); err == nil {
		t.Fatal("promotion through the refuse gate succeeded")
	} else if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("gate reason lost: %v", err)
	}
	// NaN/Inf losses are refused even with the gate open.
	s.AllowPromotions()
	if _, err := s.Promote(newLin(2, 9), 2, nanLoss()); err == nil {
		t.Fatal("NaN-loss promotion succeeded")
	}
	if _, err := s.Promote(nil, 2, 0.1); err == nil {
		t.Fatal("nil promotion succeeded")
	}
	if seq, err := s.Promote(newLin(2, 9), 3, 0.1); err != nil || seq != 2 {
		t.Fatalf("post-gate promote: seq %d, err %v", seq, err)
	}
	st := s.Metrics().Snapshot()
	if st.Promotions != 2 || st.PromotionsRefused != 2 {
		t.Fatalf("promotion counters: %+v", st)
	}
	if st.ModelEpoch != 3 {
		t.Fatalf("model epoch gauge: %d", st.ModelEpoch)
	}
}

func nanLoss() float64 {
	var z float64
	return z / z
}

// TestPredictDuringPromotionRace hammers /predict from many clients
// while another goroutine promotes new models as fast as it can. Every
// response must be internally consistent: the margin must equal
// float32(model_epoch) * dim, which only holds if the reader saw exactly
// one model (the promoted pointer swap is atomic and each batch
// snapshots it once). Run under -race this also proves the swap itself
// is clean.
func TestPredictDuringPromotionRace(t *testing.T) {
	const dim = 8
	s, hs := newTestServer(t, Config{QueueDepth: 4096, MaxBatch: 16})
	if _, err := s.Promote(newLin(dim, 1), 1, 1); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var promoteDone sync.WaitGroup
	promoteDone.Add(1)
	go func() {
		defer promoteDone.Done()
		// Weight values track the epoch modulo a small prime so the
		// float32 margin stays exact no matter how many promotions the
		// tight loop manages.
		for e := 2; ; e++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Promote(newLin(dim, float32(e%997)), e, 1); err != nil {
				t.Errorf("promote %d: %v", e, err)
				return
			}
		}
	}()

	body := `{"x":[1,1,1,1,1,1,1,1]}`
	var torn atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				code, pr := post(t, hs.URL, body)
				if code == http.StatusTooManyRequests {
					continue // admission control under load is fine
				}
				if code != 200 || pr.Margin == nil {
					t.Errorf("code %d, resp %+v", code, pr)
					return
				}
				if *pr.Margin != float32(pr.ModelEpoch%997)*dim {
					torn.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	promoteDone.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d responses observed a torn model", n)
	}
}

// TestDrainCompletesInFlight is the SIGTERM-drain contract (the
// buckwild-serve command calls Drain on SIGTERM): requests admitted
// before the drain all complete with 200, requests after it get 503,
// and zero admitted requests are dropped.
func TestDrainCompletesInFlight(t *testing.T) {
	const inFlight = 24
	slow := newLin(2, 3)
	slow.delay = 5 * time.Millisecond
	s, hs := newTestServer(t, Config{QueueDepth: inFlight * 2, MaxBatch: 1})
	if _, err := s.Promote(slow, 1, 1); err != nil {
		t.Fatal(err)
	}

	var ok200 atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, pr := post(t, hs.URL, `{"x":[1,1]}`)
			if code == 200 && pr.Margin != nil && *pr.Margin == 6 {
				ok200.Add(1)
			} else {
				t.Errorf("in-flight request: code %d, resp %+v", code, pr)
			}
		}()
	}
	// Wait until every request is actually admitted (in flight); the
	// slow predictor (5ms/example, MaxBatch 1) keeps them there far
	// longer than the poll takes, so the drain genuinely overlaps them.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if s.Metrics().Snapshot().InFlight == inFlight {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("requests never all admitted: in flight %d", s.Metrics().Snapshot().InFlight)
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if got := ok200.Load(); got != inFlight {
		t.Fatalf("dropped in-flight requests: %d of %d completed", got, inFlight)
	}
	// Post-drain requests are refused, not queued.
	code, _ := post(t, hs.URL, `{"x":[1,1]}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: code %d", code)
	}
	st := s.Metrics().Snapshot()
	if st.Requests != inFlight {
		t.Fatalf("request counter: %d", st.Requests)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestAdmissionControl(t *testing.T) {
	slow := newLin(2, 1)
	slow.delay = 20 * time.Millisecond
	s, hs := newTestServer(t, Config{QueueDepth: 1, MaxBatch: 1})
	if _, err := s.Promote(slow, 1, 1); err != nil {
		t.Fatal(err)
	}
	const n = 16
	var rejected, served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _ := post(t, hs.URL, `{"x":[1,1]}`)
			switch code {
			case http.StatusTooManyRequests:
				rejected.Add(1)
			case 200:
				served.Add(1)
			default:
				t.Errorf("unexpected code %d", code)
			}
		}()
	}
	wg.Wait()
	if rejected.Load() == 0 {
		t.Fatal("queue depth 1 with a slow model rejected nothing")
	}
	if served.Load() == 0 {
		t.Fatal("every request was rejected")
	}
	st := s.Metrics().Snapshot()
	if st.Rejected != uint64(rejected.Load()) {
		t.Fatalf("rejected counter %d, observed %d", st.Rejected, rejected.Load())
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	if _, err := s.Promote(newLin(2, 1), 5, 0.25); err != nil {
		t.Fatal(err)
	}
	post(t, hs.URL, `{"x":[1,1]}`)
	r, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	r.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"buckwild_serve_requests_total 1",
		"buckwild_serve_promotions_total 1",
		"buckwild_serve_model_epoch 5",
		"buckwild_serve_latency_us_count 1",
		"buckwild_serve_batch_size_count 1",
		"buckwild_serve_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}
}

func TestHealthz(t *testing.T) {
	s, hs := newTestServer(t, Config{})
	r, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h map[string]any
	json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if h["status"] != "no-model" || r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz before promote: %d %v", r.StatusCode, h)
	}
	s.Promote(newLin(2, 1), 7, 0.5)
	r, err = http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h = nil
	json.NewDecoder(r.Body).Decode(&h)
	r.Body.Close()
	if h["status"] != "ok" || h["model_epoch"] != float64(7) || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz after promote: %d %v", r.StatusCode, h)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, tc := range []Config{
		{MaxBatch: -1},
		{QueueDepth: -2},
		{BatchWait: -time.Second},
		{DrainTimeout: -time.Second},
	} {
		if _, err := New(tc); err == nil {
			t.Errorf("New(%+v) accepted", tc)
		} else if !strings.HasPrefix(err.Error(), "serve: ") {
			t.Errorf("New(%+v) error %q lacks serve: prefix", tc, err)
		}
	}
	var c Config
	if err := c.Fill(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if c.Addr == "" || c.MaxBatch == 0 || c.QueueDepth == 0 || c.DrainTimeout == 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
}

func TestStartAddrAndDrain(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote(newLin(2, 2), 1, 0.5); err != nil {
		t.Fatal(err)
	}
	code, pr := post(t, "http://"+s.Addr(), `{"x":[1,1]}`)
	if code != 200 || pr.Margin == nil || *pr.Margin != 4 {
		t.Fatalf("over real listener: code %d, resp %+v", code, pr)
	}
	if err := s.Drain(nil); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}
