// Package serve is the production serving tier: an HTTP daemon that
// answers /predict requests off an atomically-swapped immutable model
// while training continues in the background. The design splits into
// three small pieces wired by channels and one atomic pointer:
//
//   - Admission: each request is turned into a job and offered to a
//     bounded queue with a non-blocking send — a full queue answers 429
//     immediately (load-shedding beats queueing collapse), a draining
//     server answers 503, a server with no promoted model answers 503.
//   - Batching: one batcher goroutine drains the queue, groups up to
//     MaxBatch examples across jobs, snapshots the current model once
//     per batch, and predicts — so a hot promotion lands between
//     batches, never inside one, and no reader can observe a torn
//     model.
//   - Promotion: Promote swaps the model pointer after the caller has
//     validated the candidate (the facade routes snapshots through the
//     framed model format, CRC and all); RefusePromotions installs a
//     gate the health watchdog uses so a diverged model is never
//     promoted.
//
// Graceful drain (SIGTERM) follows the same order: stop admitting, wait
// for every accepted request to be answered, then stop the batcher and
// shut the listener down — in-flight requests always complete.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"buckwild/internal/obs"
)

// Predictor is the immutable model handle the serving tier swaps: the
// facade's Model satisfies it. Implementations must be safe for
// concurrent use and must never mutate after Promote — atomicity of a
// promotion is exactly the atomicity of one pointer swap.
type Predictor interface {
	Dim() int
	PredictDense(x []float32) (float32, error)
	PredictSparse(idx []int32, vals []float32) (float32, error)
	PredictBatch(xs [][]float32, out []float32) ([]float32, error)
}

// PromWriter is anything that can render itself in the Prometheus text
// format; the daemon's /metrics endpoint appends Extra writers (the
// training side's LiveMetrics) after its own serving counters.
type PromWriter interface {
	WriteProm(w io.Writer) error
}

// Config configures a Server. The zero value is usable: Fill supplies
// localhost defaults sized for a single-machine daemon.
type Config struct {
	// Addr is the listen address ("127.0.0.1:8372" by default; use
	// ":0" to let the kernel pick a port and read it back from Addr()).
	Addr string
	// MaxBatch caps the examples grouped into one predict call (64).
	MaxBatch int
	// QueueDepth bounds the admission queue in jobs; a full queue
	// answers 429 (256).
	QueueDepth int
	// BatchWait is how long the batcher holds a non-full batch open
	// waiting for more work. Zero means opportunistic: serve whatever
	// is queued right now — lowest latency, smaller batches.
	BatchWait time.Duration
	// DrainTimeout bounds the graceful drain on SIGTERM (10s).
	DrainTimeout time.Duration
	// Metrics receives the serving counters (allocated if nil).
	Metrics *obs.ServeMetrics
	// Extra prom writers are appended to /metrics after the serving
	// counters (the training side's LiveMetrics goes here).
	Extra []PromWriter
	// Tracer, when non-nil, records request -> batch -> predict spans,
	// per-job queue-wait spans, and batch-assembly spans, all tagged with
	// the serving model's epoch and promotion sequence.
	Tracer *obs.Tracer
	// Logger, when non-nil, receives structured operational logs
	// (promotions, drain progress, slow requests). Nil is silent, the
	// repo's nil-means-off logging convention.
	Logger *slog.Logger
	// Flight, when non-nil, records promotions, refusals, slow requests
	// and drain transitions into the post-mortem ring, served at
	// GET /debug/flight.
	Flight *obs.FlightRecorder
	// SlowRequest, when positive, is the latency threshold above which a
	// completed request is logged (and flight-recorded) as an offender.
	SlowRequest time.Duration
	// Bundle, when non-nil, gets a debug bundle triggered on each slow
	// request (debounced by the bundler's cooldown) and is served on
	// demand at GET /debug/bundle.
	Bundle *obs.Bundler
	// Dash, when non-nil, is the live dashboard, served at
	// GET /debug/dash with its SSE feed at GET /debug/dash/events.
	Dash *obs.Dash
}

// Fill applies defaults to unset fields and validates the rest.
func (c *Config) Fill() error {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8372"
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 64
	}
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: MaxBatch %d is negative", c.MaxBatch)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: QueueDepth %d is negative", c.QueueDepth)
	}
	if c.BatchWait < 0 {
		return fmt.Errorf("serve: BatchWait %v is negative", c.BatchWait)
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("serve: DrainTimeout %v is negative", c.DrainTimeout)
	}
	if c.SlowRequest < 0 {
		return fmt.Errorf("serve: SlowRequest %v is negative", c.SlowRequest)
	}
	if c.Metrics == nil {
		c.Metrics = &obs.ServeMetrics{}
	}
	return nil
}

// Trace track ids for the serving tier (the training engine uses small
// worker-indexed tids; these stay clear of them).
const (
	traceTIDRequest = 900
	traceTIDBatch   = 901
)

// promoted is what one successful Promote installs: the model handle
// plus its provenance. Immutable once stored.
type promoted struct {
	p     Predictor
	epoch int
	loss  float64
	seq   uint64
}

// job is one admitted request waiting for the batcher: either a set of
// dense examples or one sparse example. The batcher fills out/err and
// closes done.
type job struct {
	dense [][]float32
	idx   []int32
	vals  []float32

	// enq is the tracer-clock time the handler enqueued the job (0
	// without a tracer); the batcher turns it into a queue-wait span.
	enq time.Duration

	out   []float32
	epoch int
	seq   uint64
	err   error
	done  chan struct{}
}

func (j *job) examples() int {
	if j.dense != nil {
		return len(j.dense)
	}
	return 1
}

// Server is the serving daemon. Create one with New, expose it with
// Start (or mount Handler on a listener of your own), feed it models
// with Promote, and stop it with Drain.
type Server struct {
	cfg Config

	cur      atomic.Pointer[promoted]
	promoSeq atomic.Uint64
	refuse   atomic.Pointer[string]

	queue chan *job

	// mu orders admission against drain: handlers take the read side to
	// (check draining, join the in-flight group) atomically; Drain takes
	// the write side to flip draining, so no handler can slip past a
	// drain and Add on a WaitGroup being waited on.
	mu       sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	stopBatch chan struct{}
	stopOnce  sync.Once
	batchDone chan struct{}

	httpSrv  *http.Server
	listener net.Listener
	serveErr chan error
}

// New validates cfg, starts the batcher, and returns a Server that is
// ready for Handler/Promote but not yet listening (call Start for
// that).
func New(cfg Config) (*Server, error) {
	if err := cfg.Fill(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		queue:     make(chan *job, cfg.QueueDepth),
		stopBatch: make(chan struct{}),
		batchDone: make(chan struct{}),
		serveErr:  make(chan error, 1),
	}
	if t := cfg.Tracer; t != nil {
		t.NameTrack(traceTIDRequest, "serve/requests")
		t.NameTrack(traceTIDBatch, "serve/batcher")
	}
	go s.batcher()
	return s, nil
}

// Metrics returns the serving counter set.
func (s *Server) Metrics() *obs.ServeMetrics { return s.cfg.Metrics }

// logInfo and logWarn nil-check the configured logger: nil means silent.
func (s *Server) logInfo(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Info(msg, args...)
	}
}

func (s *Server) logWarn(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn(msg, args...)
	}
}

// Promote installs p as the serving model, identified by its cumulative
// training epoch and loss, and returns the promotion sequence number.
// The swap is one atomic pointer store: requests batched before the
// swap finish on the old model, requests batched after run on the new
// one, and no request ever sees a mixture. Promotion is refused while a
// RefusePromotions gate is installed (the health watchdog's divergence
// path) or when p carries a non-finite loss.
func (s *Server) Promote(p Predictor, epoch int, loss float64) (uint64, error) {
	if p == nil || p.Dim() == 0 {
		return 0, fmt.Errorf("serve: refusing to promote an empty model")
	}
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		s.cfg.Metrics.PromotionRefused()
		s.cfg.Flight.Record("serve", "promotion-refused",
			fmt.Sprintf("non-finite loss %v at epoch %d", loss, epoch), nil)
		return 0, fmt.Errorf("serve: refusing to promote a model with loss %v", loss)
	}
	if r := s.refuse.Load(); r != nil {
		s.cfg.Metrics.PromotionRefused()
		s.cfg.Flight.Record("serve", "promotion-refused", *r,
			map[string]string{"epoch": fmt.Sprint(epoch)})
		return 0, fmt.Errorf("serve: promotion refused: %s", *r)
	}
	seq := s.promoSeq.Add(1)
	s.cur.Store(&promoted{p: p, epoch: epoch, loss: loss, seq: seq})
	s.cfg.Metrics.Promoted(epoch, math.Float64bits(loss))
	if t := s.cfg.Tracer; t != nil {
		t.Instant("serve", "promote", traceTIDBatch, map[string]string{
			"epoch": fmt.Sprint(epoch), "seq": fmt.Sprint(seq),
		})
	}
	s.cfg.Flight.Record("serve", "promotion",
		fmt.Sprintf("promoted model at epoch %d", epoch), map[string]string{
			"epoch": fmt.Sprint(epoch), "loss": fmt.Sprintf("%.6g", loss),
			"promotion": fmt.Sprint(seq),
		})
	s.logInfo("promoted model",
		slog.Int("epoch", epoch), slog.Float64("loss", loss), slog.Uint64("promotion", seq))
	return seq, nil
}

// RefusePromotions installs a promotion gate: every Promote until
// AllowPromotions fails with the given reason. The health watchdog's
// divergence path calls this so a diverged model is never promoted —
// the previously promoted (healthy) model keeps serving.
func (s *Server) RefusePromotions(reason string) {
	if reason == "" {
		reason = "promotions disabled"
	}
	s.refuse.Store(&reason)
	s.cfg.Flight.Record("serve", "promotion-gate", reason, nil)
	s.logWarn("refusing promotions", slog.String("reason", reason))
}

// AllowPromotions removes the promotion gate.
func (s *Server) AllowPromotions() { s.refuse.Store(nil) }

// Promotions returns the number of successful promotions so far.
func (s *Server) Promotions() uint64 { return s.promoSeq.Load() }

// Current returns the live model with its provenance (training epoch
// and promotion sequence number); a nil Predictor means nothing has
// been promoted yet.
func (s *Server) Current() (Predictor, int, uint64) {
	p := s.cur.Load()
	if p == nil {
		return nil, 0, 0
	}
	return p.p, p.epoch, p.seq
}

// batcher is the single consumer of the admission queue: it groups jobs
// up to MaxBatch examples (waiting at most BatchWait for stragglers),
// snapshots the model once per batch, and completes each job.
func (s *Server) batcher() {
	defer close(s.batchDone)
	for {
		var first *job
		select {
		case first = <-s.queue:
		case <-s.stopBatch:
			// Drain leftovers (jobs whose handlers already gave up on
			// a cancelled request context) so nothing dangles.
			for {
				select {
				case j := <-s.queue:
					s.serveBatch([]*job{j})
				default:
					return
				}
			}
		}
		asm := s.cfg.Tracer.Begin("serve", "batch-assembly", traceTIDBatch)
		batch := []*job{first}
		n := first.examples()
		var deadline <-chan time.Time
		var timer *time.Timer
		if s.cfg.BatchWait > 0 {
			timer = time.NewTimer(s.cfg.BatchWait)
			deadline = timer.C
		}
	fill:
		for n < s.cfg.MaxBatch {
			if deadline == nil {
				select {
				case j := <-s.queue:
					batch = append(batch, j)
					n += j.examples()
				default:
					break fill
				}
			} else {
				select {
				case j := <-s.queue:
					batch = append(batch, j)
					n += j.examples()
				case <-deadline:
					break fill
				case <-s.stopBatch:
					break fill
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}
		asm.EndArgs(map[string]string{"jobs": fmt.Sprint(len(batch)), "examples": fmt.Sprint(n)})
		s.serveBatch(batch)
	}
}

// serveBatch predicts every job in the batch against one model
// snapshot.
func (s *Server) serveBatch(batch []*job) {
	tr := s.cfg.Tracer
	span := tr.Begin("serve", "batch", traceTIDBatch)
	pm := s.cur.Load()
	var modelArgs map[string]string
	if tr != nil && pm != nil {
		modelArgs = map[string]string{
			"model_epoch": fmt.Sprint(pm.epoch), "promotion": fmt.Sprint(pm.seq),
		}
	}
	total := 0
	for _, j := range batch {
		total += j.examples()
		if tr != nil {
			// The job's time in the admission queue, on the request track.
			tr.RecordSpan(obs.Span{
				Name: "queue-wait", Cat: "serve", TID: traceTIDRequest,
				Start: j.enq, Dur: tr.Now() - j.enq, Args: modelArgs,
			})
		}
		if pm == nil {
			j.err = fmt.Errorf("serve: no model promoted yet")
			close(j.done)
			continue
		}
		j.epoch, j.seq = pm.epoch, pm.seq
		pspan := tr.Begin("serve", "predict", traceTIDBatch)
		if j.dense != nil {
			j.out = make([]float32, len(j.dense))
			_, j.err = pm.p.PredictBatch(j.dense, j.out)
		} else {
			j.out = make([]float32, 1)
			j.out[0], j.err = pm.p.PredictSparse(j.idx, j.vals)
		}
		if tr != nil {
			pspan.EndArgs(map[string]string{
				"examples":    fmt.Sprint(j.examples()),
				"model_epoch": fmt.Sprint(j.epoch), "promotion": fmt.Sprint(j.seq),
			})
		}
		close(j.done)
	}
	s.cfg.Metrics.Batch(total)
	if tr != nil {
		args := map[string]string{"jobs": fmt.Sprint(len(batch)), "examples": fmt.Sprint(total)}
		for k, v := range modelArgs {
			args[k] = v
		}
		span.EndArgs(args)
	}
}

// predictRequest is the /predict JSON body: exactly one of x (single
// dense), indices+values (single sparse), or batch (dense batch).
type predictRequest struct {
	X       []float32   `json:"x,omitempty"`
	Indices []int32     `json:"indices,omitempty"`
	Values  []float32   `json:"values,omitempty"`
	Batch   [][]float32 `json:"batch,omitempty"`
}

// predictResponse is the /predict JSON reply. Margin is set for single
// requests, Margins for batches; ModelEpoch and Promotion identify the
// model snapshot that answered.
type predictResponse struct {
	Margin     *float32  `json:"margin,omitempty"`
	Margins    []float32 `json:"margins,omitempty"`
	ModelEpoch int       `json:"model_epoch"`
	Promotion  uint64    `json:"promotion"`
	Error      string    `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Handler returns the daemon's HTTP mux: POST /predict, GET /healthz,
// GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	if s.cfg.Bundle != nil {
		mux.Handle("/debug/bundle", s.cfg.Bundle)
	}
	s.cfg.Dash.Register(mux, "/debug/dash")
	return mux
}

// handleFlight serves the flight recorder's JSON dump: the post-mortem
// ring, readable from a live daemon. 404 when no recorder is installed.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Flight == nil {
		http.NotFound(w, r)
		return
	}
	s.cfg.Flight.ServeHTTP(w, r)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, predictResponse{Error: "serve: POST only"})
		return
	}
	start := time.Now()
	span := s.cfg.Tracer.Begin("serve", "request", traceTIDRequest)

	// Admission, part 1: drain gate. The read lock makes (check, join
	// in-flight group) atomic against Drain's write-side flip.
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		s.cfg.Metrics.Unavailable()
		writeJSON(w, http.StatusServiceUnavailable, predictResponse{Error: "serve: draining"})
		span.EndArgs(map[string]string{"status": "503"})
		return
	}
	s.inflight.Add(1)
	s.mu.RUnlock()
	defer s.inflight.Done()
	s.cfg.Metrics.InFlight(1)
	defer s.cfg.Metrics.InFlight(-1)

	if s.cur.Load() == nil {
		s.cfg.Metrics.Unavailable()
		writeJSON(w, http.StatusServiceUnavailable, predictResponse{Error: "serve: no model promoted yet"})
		span.EndArgs(map[string]string{"status": "503"})
		return
	}

	var req predictRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(&req); err != nil {
		s.cfg.Metrics.BadRequest()
		writeJSON(w, http.StatusBadRequest, predictResponse{Error: fmt.Sprintf("serve: bad request body: %v", err)})
		span.EndArgs(map[string]string{"status": "400"})
		return
	}
	j := &job{done: make(chan struct{})}
	switch {
	case req.Batch != nil:
		j.dense = req.Batch
	case req.X != nil:
		j.dense = [][]float32{req.X}
	case req.Indices != nil || req.Values != nil:
		j.idx, j.vals = req.Indices, req.Values
	default:
		s.cfg.Metrics.BadRequest()
		writeJSON(w, http.StatusBadRequest, predictResponse{Error: "serve: request needs x, indices+values, or batch"})
		span.EndArgs(map[string]string{"status": "400"})
		return
	}

	// Admission, part 2: bounded queue. A full queue sheds load now
	// rather than letting latency collapse later.
	j.enq = s.cfg.Tracer.Now()
	select {
	case s.queue <- j:
	default:
		s.cfg.Metrics.Rejected()
		writeJSON(w, http.StatusTooManyRequests, predictResponse{Error: "serve: queue full"})
		span.EndArgs(map[string]string{"status": "429"})
		return
	}

	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; the batcher will still complete the job (nobody
		// reads the result) so the queue never wedges.
		span.EndArgs(map[string]string{"status": "cancelled"})
		return
	}
	if j.err != nil {
		s.cfg.Metrics.BadRequest()
		writeJSON(w, http.StatusBadRequest, predictResponse{Error: j.err.Error(), ModelEpoch: j.epoch, Promotion: j.seq})
		span.EndArgs(map[string]string{"status": "400"})
		s.noteSlow(time.Since(start), "400", j)
		return
	}
	resp := predictResponse{ModelEpoch: j.epoch, Promotion: j.seq}
	if req.Batch != nil {
		resp.Margins = j.out
	} else {
		resp.Margin = &j.out[0]
	}
	writeJSON(w, http.StatusOK, resp)
	elapsed := time.Since(start)
	s.cfg.Metrics.Request(j.examples(), uint64(elapsed.Microseconds()))
	span.EndArgs(map[string]string{
		"status": "200", "examples": fmt.Sprint(j.examples()),
		"model_epoch": fmt.Sprint(j.epoch), "promotion": fmt.Sprint(j.seq),
	})
	s.noteSlow(elapsed, "200", j)
}

// noteSlow logs (and flight-records) a completed request whose latency
// crossed the SlowRequest threshold, tagged with the model snapshot that
// answered it so tail latency can be correlated with hot promotions.
func (s *Server) noteSlow(elapsed time.Duration, status string, j *job) {
	if s.cfg.SlowRequest <= 0 || elapsed < s.cfg.SlowRequest {
		return
	}
	s.logWarn("slow request",
		slog.Duration("elapsed", elapsed), slog.String("status", status),
		slog.Int("examples", j.examples()),
		slog.Int("model_epoch", j.epoch), slog.Uint64("promotion", j.seq))
	s.cfg.Flight.Record("serve", "slow-request",
		fmt.Sprintf("request took %v (threshold %v)", elapsed, s.cfg.SlowRequest),
		map[string]string{
			"elapsed": elapsed.String(), "status": status,
			"model_epoch": fmt.Sprint(j.epoch), "promotion": fmt.Sprint(j.seq),
		})
	s.cfg.Bundle.Trigger("slow-request",
		fmt.Sprintf("request took %v (threshold %v, model epoch %d)",
			elapsed, s.cfg.SlowRequest, j.epoch))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	pm := s.cur.Load()
	h := map[string]any{"status": "ok", "draining": draining, "promotions": s.promoSeq.Load()}
	code := http.StatusOK
	if pm != nil {
		h["model_epoch"] = pm.epoch
		h["model_loss"] = pm.loss
	} else {
		// Readiness semantics: a daemon with nothing promoted cannot
		// answer /predict, so a load balancer must not route to it yet.
		h["status"] = "no-model"
		code = http.StatusServiceUnavailable
	}
	if r := s.refuse.Load(); r != nil {
		h["promotions_refused"] = *r
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.cfg.Metrics.WriteProm(w); err != nil {
		return
	}
	for _, e := range s.cfg.Extra {
		if e == nil {
			continue
		}
		if err := e.WriteProm(w); err != nil {
			return
		}
	}
}

// Start binds the configured address and serves in the background; read
// the bound address back with Addr (useful with ":0").
func (s *Server) Start() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.listener = l
	s.httpSrv = &http.Server{Handler: s.Handler()}
	go func() {
		err := s.httpSrv.Serve(l)
		if err != nil && err != http.ErrServerClosed {
			s.serveErr <- err
		}
		close(s.serveErr)
	}()
	s.logInfo("listening", slog.String("addr", l.Addr().String()))
	return nil
}

// Addr returns the bound listen address after Start ("" before).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Drain performs the graceful SIGTERM shutdown: stop admitting (new
// requests get 503), wait for every accepted request to be answered,
// stop the batcher, and close the listener. ctx bounds the wait; a nil
// ctx uses DrainTimeout. In-flight requests are never dropped: Drain
// returns only after each admitted request has its response written (or
// ctx expires).
func (s *Server) Drain(ctx context.Context) error {
	if ctx == nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
	}
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		s.cfg.Metrics.SetDraining(true)
		s.cfg.Flight.Record("serve", "drain", "drain started", nil)
		s.logInfo("draining", slog.String("note", "in-flight requests will complete"))
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with requests in flight: %w", ctx.Err())
	}
	// All admitted requests are answered, so the queue is quiet: the
	// batcher can stop.
	s.stopOnce.Do(func() { close(s.stopBatch) })
	select {
	case <-s.batchDone:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted waiting for batcher: %w", ctx.Err())
	}
	if s.httpSrv != nil {
		if err := s.httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("serve: shutdown: %w", err)
		}
	}
	s.cfg.Flight.Record("serve", "drain", "drain complete", nil)
	s.logInfo("drained")
	return nil
}

// Close releases the server immediately (tests and error paths; prefer
// Drain). Safe after Drain.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stopBatch) })
	<-s.batchDone
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}
