package serve

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"buckwild/internal/obs"
)

// syncBuffer lets the slog handler write from server goroutines while
// the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestDebugFlightEndpoint(t *testing.T) {
	rec := obs.NewFlightRecorder(32)
	s, hs := newTestServer(t, Config{Flight: rec})
	if _, err := s.Promote(newLin(2, 1), 5, 0.25); err != nil {
		t.Fatal(err)
	}

	r, err := http.Get(hs.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flight = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type %q", ct)
	}
	var snap obs.FlightSnapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	promotions := 0
	for _, ev := range snap.Events {
		if ev.Component == "serve" && ev.Kind == "promotion" {
			promotions++
			if ev.Fields["epoch"] != "5" {
				t.Errorf("promotion event fields = %v", ev.Fields)
			}
		}
	}
	if promotions == 0 {
		t.Errorf("no promotion event in flight dump: %+v", snap.Events)
	}
}

func TestDebugFlightWithoutRecorder(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	r, err := http.Get(hs.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /debug/flight without recorder = %d, want 404", r.StatusCode)
	}
}

func TestSlowRequestLogging(t *testing.T) {
	var logs syncBuffer
	rec := obs.NewFlightRecorder(32)
	s, hs := newTestServer(t, Config{
		Logger:      slog.New(slog.NewTextHandler(&logs, nil)),
		Flight:      rec,
		SlowRequest: time.Nanosecond, // every completed request is an offender
	})
	if _, err := s.Promote(newLin(2, 1), 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if code, pr := post(t, hs.URL, `{"x":[1,1]}`); code != http.StatusOK {
		t.Fatalf("predict = %d (%+v)", code, pr)
	}

	if out := logs.String(); !strings.Contains(out, "slow request") {
		t.Errorf("no slow-request log line:\n%s", out)
	}
	slow := 0
	for _, ev := range rec.Snapshot().Events {
		if ev.Kind == "slow-request" {
			slow++
			if ev.Fields["status"] != "200" {
				t.Errorf("slow-request fields = %v", ev.Fields)
			}
		}
	}
	if slow != 1 {
		t.Errorf("flight ring holds %d slow-request events, want 1", slow)
	}
}

func TestRequestSpansTagged(t *testing.T) {
	tr := obs.NewTracer(0)
	s, hs := newTestServer(t, Config{Tracer: tr})
	if _, err := s.Promote(newLin(2, 2), 3, 0.1); err != nil {
		t.Fatal(err)
	}
	if code, _ := post(t, hs.URL, `{"x":[1,1]}`); code != http.StatusOK {
		t.Fatalf("predict = %d", code)
	}

	snap := tr.Snapshot()
	want := map[string]bool{"queue-wait": false, "predict": false, "request": false}
	for _, sp := range snap.Spans {
		if _, ok := want[sp.Name]; !ok || sp.FlowID != 0 {
			continue
		}
		if sp.Args["model_epoch"] != "3" || sp.Args["promotion"] != "1" {
			t.Errorf("%s span args = %v, want model_epoch=3 promotion=1", sp.Name, sp.Args)
			continue
		}
		want[sp.Name] = true
	}
	for name, ok := range want {
		if !ok {
			t.Errorf("no tagged %q span recorded", name)
		}
	}
	if snap.Tracks[900] == "" || snap.Tracks[901] == "" {
		t.Errorf("serve tracks unnamed: %v", snap.Tracks)
	}
}
