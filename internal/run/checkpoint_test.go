package run

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"buckwild/internal/kernels"
)

func mkCkpt(epoch int) *Checkpoint {
	return &Checkpoint{
		Epoch:     epoch,
		Seed:      42,
		Threads:   3,
		Prec:      "32f",
		WF:        []float32{0.5, -0.25, 1.5},
		TrainLoss: []float64{0.7, 0.6, 0.5},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := mkCkpt(4)
	path, n, err := WriteCheckpoint(dir, want)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("reported size %d", n)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("stat %s: %v, size %v want %d", path, err, fi.Size(), n)
	}
	got, err := ReadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointLowPrecisionRoundTrip(t *testing.T) {
	// An I8 model checkpoints at one byte per weight, and the
	// dequantize/requantize cycle through core.Config.InitWeights must be
	// bit-exact.
	dir := t.TempDir()
	w := kernels.NewVec(kernels.I8, 5)
	f := kernels.I8.Fixed()
	vals := []float32{0.5, -0.25, 0, 1.25, -1}
	for i, x := range vals {
		w.SetRaw(i, f.QuantizeBiased(x))
	}
	ck := newCheckpoint(2, 7, 1, w, []float64{1, 0.9, 0.8})
	if ck.Prec != "8" || ck.W8 == nil || ck.WF != nil {
		t.Fatalf("I8 checkpoint stored as %q WF=%v W8=%v", ck.Prec, ck.WF, ck.W8)
	}
	if _, _, err := WriteCheckpoint(dir, ck); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := LoadLatest(dir)
	if err != nil || got == nil {
		t.Fatalf("LoadLatest: %v, %v", got, err)
	}
	deq, err := got.Weights()
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range deq {
		if f.QuantizeBiased(x) != w.Raw(i) {
			t.Fatalf("weight %d: dequantized %v requantizes to %d, stored raw %d", i, x, f.QuantizeBiased(x), w.Raw(i))
		}
	}
}

func TestCheckpointCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	path, _, err := writeCheckpoint(dir, mkCkpt(1), true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Fatalf("corrupt checkpoint read: %v, want CRC mismatch", err)
	}
}

func TestReadCheckpointRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "not-a-checkpoint")
	if err := os.WriteFile(bad, []byte("plain text, definitely not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(bad); err == nil || !strings.Contains(err.Error(), "not a checkpoint") {
		t.Fatalf("garbage read: %v", err)
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, ckptMagic[:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(short); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated read: %v", err)
	}
}

func TestLoadLatestFallsBackPastCorrupt(t *testing.T) {
	dir := t.TempDir()
	for epoch := 1; epoch <= 2; epoch++ {
		if _, _, err := WriteCheckpoint(dir, mkCkpt(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := writeCheckpoint(dir, mkCkpt(3), true); err != nil {
		t.Fatal(err)
	}
	ck, path, skipped, err := LoadLatest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.Epoch != 2 || skipped != 1 {
		t.Fatalf("got epoch %v (skipped %d, path %s), want epoch 2 skipping 1", ck, skipped, path)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	ck, path, skipped, err := LoadLatest(t.TempDir())
	if ck != nil || path != "" || skipped != 0 || err != nil {
		t.Fatalf("empty dir: %v %q %d %v", ck, path, skipped, err)
	}
}

func TestPruneCheckpoints(t *testing.T) {
	dir := t.TempDir()
	for epoch := 1; epoch <= 5; epoch++ {
		if _, _, err := WriteCheckpoint(dir, mkCkpt(epoch)); err != nil {
			t.Fatal(err)
		}
	}
	pruneCheckpoints(dir, 2)
	names, err := listCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{ckptPath(dir, 4), ckptPath(dir, 5)}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("after prune: %v, want %v", names, want)
	}
}
