package run

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync/atomic"
	"time"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/obs"
)

// Config configures the supervisor around one training job. Zero values
// select conservative defaults; only Dir is required.
type Config struct {
	// Dir is the checkpoint directory; it is created if missing. A run
	// started over a directory holding checkpoints from an earlier
	// process resumes from the newest valid one, which is what makes a
	// killed process recoverable.
	Dir string
	// Every is the checkpoint period in epochs (default 1). The final
	// epoch is always checkpointed.
	Every int
	// Keep is how many checkpoint files to retain (default 2, so a
	// corrupted newest checkpoint still leaves a fallback).
	Keep int
	// MaxRetries bounds how many times a failed attempt is retried
	// (default 3). Only crashes and detected stalls are retried;
	// configuration and I/O errors fail immediately.
	MaxRetries int
	// Backoff is the delay before the first retry (default 50ms); it
	// doubles per consecutive failure, capped at BackoffCap (default 5s).
	Backoff    time.Duration
	BackoffCap time.Duration
	// StallTimeout arms the watchdog: if no run progress (steps, epochs,
	// checkpoints) is observed for this long, the attempt is cancelled
	// with ErrStallDetected and retried. Zero disables the watchdog
	// unless the fault plan injects stalls, in which case it defaults to
	// 500ms. Choose a value comfortably above one epoch's duration.
	StallTimeout time.Duration
	// DegradeAfter is how many consecutive stall failures trigger
	// graceful degradation — restarting with one worker fewer (default
	// 2). MinThreads floors the degradation (default 1).
	DegradeAfter int
	MinThreads   int
	// Faults is the deterministic fault-injection schedule; nil injects
	// nothing.
	Faults *Plan
	// Hooks receives the training callbacks of every attempt; if it also
	// implements obs.LifecycleHooks it receives checkpoint and retry
	// events. CollectStats requests engine counters without hooks, and
	// StepSample is forwarded to the engine's Observer (forced to 1 while
	// step faults are armed).
	Hooks        obs.Hooks
	CollectStats bool
	StepSample   int
	// NumHealth is forwarded to the engine Observer: collect
	// numerical-health counters (saturation, rounding bias, underflow,
	// weight distribution) for every attempt. If Hooks implements
	// obs.HealthHooks it receives the per-epoch health snapshots.
	NumHealth bool
	// Tracer, when non-nil, records the supervisor's lifecycle as trace
	// spans — attempts, checkpoint saves, resume decisions, backoff
	// waits — and is forwarded to the engine so epochs appear nested
	// inside their attempt. Nil traces nothing at no cost.
	Tracer *obs.Tracer
	// Series, when non-nil, is forwarded to the engine's Observer so the
	// windowed time-series spans the whole supervised run (the recorder
	// detects each attempt's counter restart and keeps accumulating).
	Series *obs.Series
	// Logger, when non-nil, receives the supervisor's structured
	// operational log: resumes, checkpoints, retries, stall degradations
	// and retry exhaustion. Nil is silent at no cost.
	Logger *slog.Logger
	// Flight, when non-nil, records the same lifecycle events into the
	// post-mortem ring so a crashed or exhausted run can be diagnosed
	// from its dump. Nil records nothing at no cost.
	Flight *obs.FlightRecorder
	// Bundle, when non-nil, gets a debug bundle triggered when the stall
	// watchdog fires and when the supervisor exhausts its retries — the
	// full evidentiary record lands on disk before the error propagates.
	Bundle *obs.Bundler
	// Snapshot, when non-nil, receives a promotable copy of the model at
	// every checkpoint boundary, after the checkpoint file is durably on
	// disk — the serving tier's hot-promotion feed. The weights slice is
	// a fresh dequantized copy the receiver owns. Called on the training
	// run's coordinating goroutine, so a slow receiver delays training.
	Snapshot func(epoch int, loss float64, weights []float32)
	// Sleep replaces time.Sleep for the backoff waits (tests inject a
	// no-op); nil uses time.Sleep.
	Sleep func(time.Duration)
}

func (c *Config) fill() error {
	if c.Dir == "" {
		return fmt.Errorf("run: checkpoint directory required")
	}
	if c.Every < 1 {
		c.Every = 1
	}
	if c.Keep < 1 {
		c.Keep = 2
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 5 * time.Second
	}
	if c.StallTimeout <= 0 && c.Faults.hasStalls() {
		c.StallTimeout = 500 * time.Millisecond
	}
	if c.DegradeAfter < 1 {
		c.DegradeAfter = 2
	}
	if c.MinThreads < 1 {
		c.MinThreads = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return nil
}

// Report is the outcome of a supervised run.
type Report struct {
	// Result is the final training result. Its TrainLoss covers the
	// whole job from epoch 0, stitched across restarts.
	Result *core.Result
	// Stats counts what the supervisor did around the attempts.
	Stats obs.SupervisorStats
	// Checkpoint is the newest checkpoint file on disk ("" if the run
	// never reached one).
	Checkpoint string
}

// TrainDense supervises core.TrainDense: checkpoints every cfg.Every
// epochs, resumes from the newest valid checkpoint after a crash or
// stall, retries with exponential backoff up to cfg.MaxRetries times,
// and degrades the worker count after repeated stalls. Cancelling ctx
// stops the run (mid-epoch) and is never retried; the latest checkpoint
// stays on disk for a later resume.
func TrainDense(ctx context.Context, cfg Config, tc core.Config, ds *dataset.DenseSet) (*Report, error) {
	return supervise(ctx, cfg, tc, func(c core.Config) (*core.Result, error) {
		return core.TrainDense(c, ds)
	})
}

// TrainSparse supervises core.TrainSparse; see TrainDense.
func TrainSparse(ctx context.Context, cfg Config, tc core.Config, ds *dataset.SparseSet) (*Report, error) {
	return supervise(ctx, cfg, tc, func(c core.Config) (*core.Result, error) {
		return core.TrainSparse(c, ds)
	})
}

// supervise is the engine-agnostic attempt loop.
func supervise(ctx context.Context, cfg Config, tc core.Config, train func(core.Config) (*core.Result, error)) (*Report, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	epochs := tc.Epochs
	if epochs < 1 {
		epochs = 1
	}
	threads := tc.Threads
	if threads < 1 {
		threads = 1
	}
	if cfg.MinThreads > threads {
		cfg.MinThreads = threads
	}

	inj := newInjector(cfg.Faults)
	lifecycle, _ := cfg.Hooks.(obs.LifecycleHooks)
	var stats obs.SupervisorStats

	// Resume state: a previous process may have left checkpoints behind.
	var (
		startEpoch int
		initW      []float32
		history    []float64 // losses [0..startEpoch], from the checkpoint
		lastPath   string
	)
	loadResume := func() error {
		span := cfg.Tracer.Begin("run", "resume", 0)
		ck, path, skipped, err := LoadLatest(cfg.Dir)
		stats.CheckpointFallbacks += skipped
		if err != nil {
			span.EndArgs(map[string]string{"error": err.Error()})
			return err
		}
		if ck == nil {
			startEpoch, initW, history = 0, nil, nil
			span.EndArgs(map[string]string{"found": "false"})
			return nil
		}
		span.EndArgs(map[string]string{"found": "true", "epoch": fmt.Sprint(ck.Epoch)})
		if ck.Epoch > epochs {
			return fmt.Errorf("run: checkpoint %s is at epoch %d, beyond the configured %d", path, ck.Epoch, epochs)
		}
		w, err := ck.Weights()
		if err != nil {
			return fmt.Errorf("%w (in %s)", err, path)
		}
		startEpoch, initW, history, lastPath = ck.Epoch, w, ck.TrainLoss, path
		stats.Resumes++
		stats.ResumedEpoch = ck.Epoch
		if cfg.Logger != nil {
			cfg.Logger.Info("resumed from checkpoint",
				slog.String("path", path), slog.Int("epoch", ck.Epoch))
		}
		cfg.Flight.Record("run", "resume", "resumed from checkpoint", map[string]string{
			"path": path, "epoch": fmt.Sprint(ck.Epoch),
		})
		return nil
	}
	if err := loadResume(); err != nil {
		return nil, err
	}

	backoff := cfg.Backoff
	stalls := 0
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		stats.Attempts++
		stats.FinalThreads = threads

		actx, cancel := context.WithCancelCause(ctx)
		var progress atomic.Uint64
		hooks := &attemptHooks{inner: cfg.Hooks, inj: inj, cancel: cancel, done: actx.Done(), progress: &progress, tracer: cfg.Tracer}
		attemptSpan := cfg.Tracer.Begin("run", "attempt", 0)

		run := tc
		run.Ctx = actx
		run.Threads = threads
		run.StartEpoch = startEpoch
		run.InitWeights = initW
		run.Observer = attemptObserver(&cfg, inj, hooks)
		resumeHist := history
		run.EpochEnd = func(st core.EpochState) error {
			progress.Add(1)
			if st.Epoch%cfg.Every != 0 && st.Epoch != epochs {
				return nil
			}
			ckSpan := cfg.Tracer.Begin("run", "checkpoint-save", 0)
			ck := newCheckpoint(st.Epoch, tc.Seed, threads, st.W, stitchLoss(resumeHist, st.TrainLoss))
			path, n, err := writeCheckpoint(cfg.Dir, ck, inj.corruptNextWrite())
			if err != nil {
				ckSpan.EndArgs(map[string]string{"error": err.Error()})
				return err
			}
			ckSpan.EndArgs(map[string]string{"epoch": fmt.Sprint(st.Epoch), "bytes": fmt.Sprint(n)})
			stats.Checkpoints++
			stats.CheckpointBytes += n
			lastPath = path
			if cfg.Logger != nil {
				cfg.Logger.Info("checkpoint saved",
					slog.Int("epoch", st.Epoch), slog.Int64("bytes", n),
					slog.Float64("loss", st.Loss))
			}
			cfg.Flight.Record("run", "checkpoint", "checkpoint saved", map[string]string{
				"epoch": fmt.Sprint(st.Epoch), "bytes": fmt.Sprint(n), "path": path,
			})
			pruneCheckpoints(cfg.Dir, cfg.Keep)
			if lifecycle != nil {
				lifecycle.OnCheckpoint(obs.CheckpointInfo{Epoch: st.Epoch, Path: path, Bytes: n})
			}
			if cfg.Snapshot != nil {
				cfg.Snapshot(st.Epoch, st.Loss, st.W.Floats())
			}
			return nil
		}

		var dog *watchdog
		if cfg.StallTimeout > 0 {
			dog = startWatchdog(cancel, &progress, cfg.StallTimeout)
		}
		res, err := train(run)
		if dog != nil {
			dog.stop()
		}
		cancel(nil)
		attemptArgs := map[string]string{
			"attempt": fmt.Sprint(attempt), "threads": fmt.Sprint(threads),
			"start_epoch": fmt.Sprint(startEpoch),
		}
		if err != nil {
			attemptArgs["error"] = err.Error()
		}
		attemptSpan.EndArgs(attemptArgs)

		stats.InjectedCrashes = inj.firedCount(FaultCrash)
		stats.InjectedStalls = inj.firedCount(FaultStall)
		stats.CorruptedCheckpoints = inj.firedCount(FaultCorrupt)

		if err == nil {
			res.TrainLoss = stitchLoss(resumeHist, res.TrainLoss)
			return &Report{Result: res, Stats: stats, Checkpoint: lastPath}, nil
		}
		if ctx.Err() != nil {
			// The caller cancelled: propagate rather than retry. The
			// newest checkpoint stays on disk for a later resume.
			return nil, context.Cause(ctx)
		}

		switch {
		case errors.Is(err, ErrInjectedCrash):
			stalls = 0
		case errors.Is(err, ErrStallDetected):
			stats.StallsDetected++
			stalls++
			cfg.Bundle.Trigger("stall", fmt.Sprintf("attempt %d: %v", attempt, err))
			if stalls >= cfg.DegradeAfter && threads > cfg.MinThreads {
				threads--
				stalls = 0
				stats.Degradations++
				if cfg.Logger != nil {
					cfg.Logger.Warn("degrading after repeated stalls",
						slog.Int("threads", threads), slog.Int("attempt", attempt))
				}
				cfg.Flight.Record("run", "degrade", "degrading after repeated stalls", map[string]string{
					"threads": fmt.Sprint(threads), "attempt": fmt.Sprint(attempt),
				})
			}
		default:
			// Configuration, dataset and I/O errors recur identically on
			// retry; fail fast.
			return nil, err
		}
		if attempt > cfg.MaxRetries {
			if cfg.Logger != nil {
				cfg.Logger.Error("retries exhausted",
					slog.Int("attempts", attempt), slog.String("error", err.Error()))
			}
			cfg.Flight.Record("run", "retries-exhausted", "giving up", map[string]string{
				"attempts": fmt.Sprint(attempt), "error": err.Error(),
			})
			cfg.Bundle.Trigger("retries-exhausted",
				fmt.Sprintf("giving up after %d attempts: %v", attempt, err))
			return nil, fmt.Errorf("run: giving up after %d attempts: %w", attempt, err)
		}
		stats.Retries++
		if err := loadResume(); err != nil {
			return nil, err
		}
		if cfg.Logger != nil {
			cfg.Logger.Warn("retrying after failed attempt",
				slog.Int("attempt", attempt), slog.String("error", err.Error()),
				slog.Duration("backoff", backoff), slog.Int("resume_epoch", startEpoch))
		}
		cfg.Flight.Record("run", "retry", "retrying after failed attempt", map[string]string{
			"attempt": fmt.Sprint(attempt), "error": err.Error(),
			"backoff": backoff.String(), "resume_epoch": fmt.Sprint(startEpoch),
		})
		if lifecycle != nil {
			lifecycle.OnRetry(obs.RetryInfo{
				Attempt: attempt, Err: err, Backoff: backoff,
				ResumeEpoch: startEpoch, Threads: threads,
			})
		}
		cfg.Tracer.Instant("run", "retry", 0, map[string]string{
			"attempt": fmt.Sprint(attempt), "error": err.Error(),
			"resume_epoch": fmt.Sprint(startEpoch),
		})
		backoffSpan := cfg.Tracer.Begin("run", "backoff", 0)
		cfg.Sleep(backoff)
		backoffSpan.EndArgs(map[string]string{"backoff": backoff.String()})
		if backoff *= 2; backoff > cfg.BackoffCap {
			backoff = cfg.BackoffCap
		}
	}
}

// attemptObserver builds the engine Observer for one attempt, or nil
// when neither the user nor the supervisor needs callbacks — the
// zero-cost path.
func attemptObserver(cfg *Config, inj *injector, hooks *attemptHooks) *obs.Observer {
	needHooks := cfg.Hooks != nil || cfg.Faults.hasStepFaults() || cfg.StallTimeout > 0
	if !needHooks {
		if cfg.CollectStats || cfg.Tracer != nil || cfg.Series != nil || cfg.NumHealth {
			return &obs.Observer{StepSample: cfg.StepSample, Tracer: cfg.Tracer, Series: cfg.Series, NumHealth: cfg.NumHealth}
		}
		return nil
	}
	sample := cfg.StepSample
	if cfg.Faults.hasStepFaults() {
		// Step faults address individual model updates; sampling would
		// skip the scheduled one.
		sample = 1
	}
	return &obs.Observer{Hooks: hooks, StepSample: sample, Tracer: cfg.Tracer, Series: cfg.Series, NumHealth: cfg.NumHealth}
}

// stitchLoss joins a checkpoint's loss history [0..resume] with an
// attempt's trajectory [resume..now] (whose first element repeats the
// resume-point loss).
func stitchLoss(history, attempt []float64) []float64 {
	if len(history) == 0 {
		return append([]float64(nil), attempt...)
	}
	out := append([]float64(nil), history...)
	if len(attempt) > 1 {
		out = append(out, attempt[1:]...)
	}
	return out
}

// attemptHooks wraps the user's hooks with the supervisor's machinery:
// the progress counter the watchdog monitors and the fault-injection
// sites. OnStep is called from worker goroutines; everything here is
// safe for concurrent use.
type attemptHooks struct {
	inner    obs.Hooks
	inj      *injector
	cancel   context.CancelCauseFunc
	done     <-chan struct{}
	progress *atomic.Uint64
	tracer   *obs.Tracer
	steps    atomic.Uint64
}

func (h *attemptHooks) OnStep(si obs.StepInfo) {
	h.progress.Add(1)
	n := h.steps.Add(1)
	if f, ok := h.inj.fireAt(n); ok {
		h.tracer.Instant("run", "fault-"+f.Kind.String(), 0, map[string]string{"step": fmt.Sprint(n)})
		switch f.Kind {
		case FaultCrash:
			h.cancel(ErrInjectedCrash)
		case FaultStall:
			// Hang this worker until the attempt is torn down — the
			// watchdog must notice the missing progress.
			<-h.done
		}
	}
	if h.inner != nil {
		h.inner.OnStep(si)
	}
}

func (h *attemptHooks) OnEpoch(ei obs.EpochInfo) {
	h.progress.Add(1)
	if h.inner != nil {
		h.inner.OnEpoch(ei)
	}
}

func (h *attemptHooks) OnWorker(wi obs.WorkerInfo) {
	h.progress.Add(1)
	if h.inner != nil {
		h.inner.OnWorker(wi)
	}
}

// OnHealth forwards the engine's per-epoch numerical-health snapshot to
// the user's hooks when they care (e.g. an obs.HealthWatchdog chained in
// front of live metrics).
func (h *attemptHooks) OnHealth(hi obs.HealthInfo) {
	h.progress.Add(1)
	if hh, ok := h.inner.(obs.HealthHooks); ok {
		hh.OnHealth(hi)
	}
}

// watchdog cancels an attempt when its progress counter stops moving for
// the configured timeout. Progress is anything the hooks or the
// checkpoint writer observe; once a worker hangs, the remaining workers
// drain their epoch ranges, the epoch join blocks, the counter freezes,
// and the watchdog fires.
type watchdog struct {
	quit chan struct{}
	done chan struct{}
}

func startWatchdog(cancel context.CancelCauseFunc, progress *atomic.Uint64, timeout time.Duration) *watchdog {
	w := &watchdog{quit: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := timeout / 8
		if tick < time.Millisecond {
			tick = time.Millisecond
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		last := progress.Load()
		lastChange := time.Now()
		for {
			select {
			case <-w.quit:
				return
			case <-t.C:
				if cur := progress.Load(); cur != last {
					last, lastChange = cur, time.Now()
					continue
				}
				if time.Since(lastChange) >= timeout {
					cancel(ErrStallDetected)
					return
				}
			}
		}
	}()
	return w
}

func (w *watchdog) stop() {
	close(w.quit)
	<-w.done
}
