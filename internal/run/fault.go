package run

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"buckwild/internal/prng"
)

// Fault-injection errors. They surface as the cause of the attempt's
// context cancellation, so the supervisor (and tests) can tell an
// injected fault from a user cancellation with errors.Is.
var (
	// ErrInjectedCrash is the cause an injected worker crash cancels the
	// attempt with.
	ErrInjectedCrash = errors.New("run: injected worker crash")
	// ErrStallDetected is the cause the stall watchdog cancels the
	// attempt with when run progress stops (injected or real).
	ErrStallDetected = errors.New("run: worker stall detected")
)

// FaultKind enumerates the injectable faults.
type FaultKind int

const (
	// FaultCrash aborts the attempt at a global model-update count, as a
	// crashed worker process would: in-flight epoch work is lost and the
	// supervisor must resume from the latest checkpoint.
	FaultCrash FaultKind = iota
	// FaultStall blocks the worker that reaches a global model-update
	// count until the attempt is cancelled, modelling a hung worker; the
	// supervisor's watchdog must detect the lost progress.
	FaultStall
	// FaultCorrupt flips a byte in the payload of the Nth checkpoint
	// write (1-based), after its CRC is computed — a torn or corrupted
	// write the loader must detect and fall back from.
	FaultCorrupt
)

// String names the fault kind as it appears in fault specs.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	case FaultCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one scheduled fault.
type Fault struct {
	Kind FaultKind
	// Step is the 1-based global model-update count (across all workers
	// of the current attempt, in observation order) at which a crash or
	// stall fires. Under Sequential sharing the count — and therefore
	// the fault point — is fully deterministic.
	Step uint64
	// Checkpoint is the 1-based index of the checkpoint write to
	// corrupt (FaultCorrupt only), counted across the whole supervised
	// run.
	Checkpoint int
}

// String renders the fault in the spec syntax ParsePlan accepts.
func (f Fault) String() string {
	if f.Kind == FaultCorrupt {
		return fmt.Sprintf("corrupt@ckpt=%d", f.Checkpoint)
	}
	return fmt.Sprintf("%s@step=%d", f.Kind, f.Step)
}

// Plan is a deterministic fault schedule. Each fault fires at most once
// per supervised run, so a crash consumed by one attempt does not
// re-fire after the resume that recovers from it.
type Plan struct {
	Faults []Fault
}

// String renders the plan as a comma-separated spec.
func (p *Plan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return ""
	}
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// hasStepFaults reports whether any fault needs per-step observation
// (forcing the supervisor to sample every step).
func (p *Plan) hasStepFaults() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind == FaultCrash || f.Kind == FaultStall {
			return true
		}
	}
	return false
}

// hasStalls reports whether the plan injects stalls (so the supervisor
// can default the watchdog on).
func (p *Plan) hasStalls() bool {
	if p == nil {
		return false
	}
	for _, f := range p.Faults {
		if f.Kind == FaultStall {
			return true
		}
	}
	return false
}

// ParsePlan parses a comma-separated fault spec:
//
//	crash@step=N    crash the attempt at its Nth model update
//	stall@step=N    hang a worker at its Nth model update
//	corrupt@ckpt=N  corrupt the Nth checkpoint write
//
// e.g. "corrupt@ckpt=1,crash@step=1500". An empty spec is a nil plan.
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var p Plan
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		kind, arg, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("run: fault %q: want kind@key=value", part)
		}
		key, val, ok := strings.Cut(arg, "=")
		if !ok {
			return nil, fmt.Errorf("run: fault %q: want kind@key=value", part)
		}
		n, err := strconv.ParseUint(val, 10, 63)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("run: fault %q: %q is not a positive count", part, val)
		}
		switch {
		case (kind == "crash" || kind == "stall") && key == "step":
			k := FaultCrash
			if kind == "stall" {
				k = FaultStall
			}
			p.Faults = append(p.Faults, Fault{Kind: k, Step: n})
		case kind == "corrupt" && key == "ckpt":
			p.Faults = append(p.Faults, Fault{Kind: FaultCorrupt, Checkpoint: int(n)})
		default:
			return nil, fmt.Errorf("run: unknown fault %q (want crash@step=, stall@step= or corrupt@ckpt=)", part)
		}
	}
	return &p, nil
}

// GeneratePlan derives a pseudo-random schedule of n faults from a seed:
// crash and corrupt faults spread over maxStep model updates and the
// first few checkpoint writes. The same seed always produces the same
// schedule — "chaos testing" whose chaos is replayable in CI. Stalls are
// excluded because their detection is a wall-clock mechanism; inject
// them explicitly when the watchdog is configured.
func GeneratePlan(seed uint64, n int, maxStep uint64) *Plan {
	if n <= 0 || maxStep == 0 {
		return nil
	}
	rng := prng.NewXorshift64(seed | 1)
	var p Plan
	for i := 0; i < n; i++ {
		if rng.Uint64()%4 == 0 {
			p.Faults = append(p.Faults, Fault{Kind: FaultCorrupt, Checkpoint: int(rng.Uint64()%4) + 1})
		} else {
			p.Faults = append(p.Faults, Fault{Kind: FaultCrash, Step: rng.Uint64()%maxStep + 1})
		}
	}
	sort.Slice(p.Faults, func(i, j int) bool { return p.Faults[i].Step < p.Faults[j].Step })
	return &p
}

// injector arms a plan for one supervised run: it tracks which faults
// have fired (each fires at most once) and hands out the per-attempt
// decisions the hooks and the checkpoint writer consult.
type injector struct {
	mu     sync.Mutex
	faults []Fault
	fired  []bool
	// ckptWrites counts checkpoint writes across the run for
	// FaultCorrupt matching.
	ckptWrites int
	counts     map[FaultKind]int
}

func newInjector(p *Plan) *injector {
	inj := &injector{counts: make(map[FaultKind]int)}
	if p != nil {
		inj.faults = p.Faults
		inj.fired = make([]bool, len(p.Faults))
	}
	return inj
}

// fireAt returns the unfired crash or stall fault scheduled for global
// step n of the current attempt, marking it fired.
func (inj *injector) fireAt(n uint64) (Fault, bool) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i, f := range inj.faults {
		if !inj.fired[i] && f.Kind != FaultCorrupt && f.Step == n {
			inj.fired[i] = true
			inj.counts[f.Kind]++
			return f, true
		}
	}
	return Fault{}, false
}

// corruptNextWrite counts one checkpoint write and reports whether the
// schedule corrupts it.
func (inj *injector) corruptNextWrite() bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	inj.ckptWrites++
	for i, f := range inj.faults {
		if !inj.fired[i] && f.Kind == FaultCorrupt && f.Checkpoint == inj.ckptWrites {
			inj.fired[i] = true
			inj.counts[FaultCorrupt]++
			return true
		}
	}
	return false
}

// firedCount returns how many faults of a kind have fired so far.
func (inj *injector) firedCount(k FaultKind) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.counts[k]
}
