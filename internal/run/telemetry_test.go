package run

import (
	"context"
	"errors"
	"sync"
	"testing"

	"buckwild/internal/obs"
)

// orderedRecorder timestamps every lifecycle callback with one shared
// sequence counter, so ordering across the epoch/checkpoint/retry
// streams can be asserted. OnEpoch fires on the coordinating goroutine
// and the lifecycle callbacks on the supervisor goroutine, but never
// concurrently; the mutex keeps the recorder race-clean anyway, since
// this test runs under -race in CI.
type orderedRecorder struct {
	mu     sync.Mutex
	events []lifeEvent
}

type lifeEvent struct {
	kind  string // "epoch", "checkpoint", "retry"
	epoch int    // completed epochs (checkpoint/epoch) or resume epoch (retry)
}

func (r *orderedRecorder) add(kind string, epoch int) {
	r.mu.Lock()
	r.events = append(r.events, lifeEvent{kind, epoch})
	r.mu.Unlock()
}

func (r *orderedRecorder) OnStep(obs.StepInfo)     {}
func (r *orderedRecorder) OnWorker(obs.WorkerInfo) {}
func (r *orderedRecorder) OnEpoch(ei obs.EpochInfo) {
	r.add("epoch", ei.Epoch)
}
func (r *orderedRecorder) OnCheckpoint(ci obs.CheckpointInfo) {
	r.add("checkpoint", ci.Epoch)
}
func (r *orderedRecorder) OnRetry(ri obs.RetryInfo) {
	r.add("retry", ri.ResumeEpoch)
}

// TestLifecycleHooksOrderingUnderRetries drives a run through two
// injected crashes and asserts the callback interleaving the docs
// promise: every checkpoint callback follows the epoch it captures,
// every retry follows the checkpoint it will resume from, and the epoch
// stream restarts exactly at the resume point after each retry.
func TestLifecycleHooksOrderingUnderRetries(t *testing.T) {
	ds := testDense(t)
	// testDense has 120 examples, so one epoch is 120 steps. Crashes at
	// steps 250 (epoch 2 of attempt 1) and 150 (epoch 1 of attempt 2,
	// whose counter restarts at the resume) force two retries.
	plan, err := ParsePlan("crash@step=250,crash@step=150")
	if err != nil {
		t.Fatal(err)
	}
	rec := &orderedRecorder{}
	rep, err := TrainDense(context.Background(), Config{
		Dir:    t.TempDir(),
		Faults: plan,
		Hooks:  rec,
		Sleep:  noSleep,
	}, testTrainConfig(6), ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Attempts != 3 || rep.Stats.Retries != 2 {
		t.Fatalf("stats %+v, want 3 attempts / 2 retries", rep.Stats)
	}

	lastEpoch, lastCheckpoint := 0, -1
	resumed := -1 // resume point of the most recent retry, -1 outside one
	var retries, checkpoints int
	for i, ev := range rec.events {
		switch ev.kind {
		case "epoch":
			if resumed >= 0 {
				if ev.epoch != resumed+1 {
					t.Fatalf("event %d: first epoch after retry is %d, want resume %d + 1", i, ev.epoch, resumed)
				}
				resumed = -1
			} else if ev.epoch != lastEpoch+1 {
				t.Fatalf("event %d: epoch %d follows epoch %d", i, ev.epoch, lastEpoch)
			}
			lastEpoch = ev.epoch
		case "checkpoint":
			checkpoints++
			// A checkpoint callback always trails the OnEpoch of the epoch
			// it captured.
			if ev.epoch != lastEpoch {
				t.Fatalf("event %d: checkpoint of epoch %d arrived while the epoch stream is at %d", i, ev.epoch, lastEpoch)
			}
			lastCheckpoint = ev.epoch
		case "retry":
			retries++
			// The resume epoch must be a checkpoint the run actually wrote —
			// the newest one.
			if ev.epoch != lastCheckpoint {
				t.Fatalf("event %d: retry resumes from %d but newest checkpoint is %d", i, ev.epoch, lastCheckpoint)
			}
			resumed = ev.epoch
		}
	}
	if retries != 2 {
		t.Fatalf("saw %d retry events, want 2", retries)
	}
	if checkpoints != rep.Stats.Checkpoints {
		t.Fatalf("saw %d checkpoint events, stats say %d", checkpoints, rep.Stats.Checkpoints)
	}
	if last := rec.events[len(rec.events)-1]; last.kind != "checkpoint" || last.epoch != 6 {
		t.Fatalf("run should end with the final epoch's checkpoint, got %+v", last)
	}
}

// TestSupervisedRunTraceSpans pins the trace a fault-injected supervised
// run must produce: spans for every attempt, every checkpoint save, a
// resume that found a checkpoint, the backoff wait, and instants for the
// injected fault and the retry decision.
func TestSupervisedRunTraceSpans(t *testing.T) {
	ds := testDense(t)
	plan, err := ParsePlan("crash@step=250")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(256)
	rep, err := TrainDense(context.Background(), Config{
		Dir:    t.TempDir(),
		Faults: plan,
		Tracer: tr,
		Sleep:  noSleep,
	}, testTrainConfig(4), ds)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	foundResume := false
	for _, s := range tr.Snapshot().Spans {
		counts[s.Cat+"/"+s.Name]++
		if s.Cat == "run" && s.Name == "resume" && s.Args["found"] == "true" {
			foundResume = true
		}
	}
	if got := counts["run/attempt"]; got != rep.Stats.Attempts {
		t.Errorf("%d attempt spans, stats say %d attempts", got, rep.Stats.Attempts)
	}
	if got := counts["run/checkpoint-save"]; got != rep.Stats.Checkpoints {
		t.Errorf("%d checkpoint-save spans, stats say %d checkpoints", got, rep.Stats.Checkpoints)
	}
	if !foundResume {
		t.Error("no resume span with found=true; the retry should have resumed from a checkpoint")
	}
	for _, want := range []string{"run/fault-crash", "run/retry", "run/backoff"} {
		if counts[want] == 0 {
			t.Errorf("no %s span recorded; trace: %v", want, counts)
		}
	}
	// The engine's epoch spans ride the same tracer via the attempt
	// observer: 2 epochs before the crash aborts the third, 3 after the
	// resume... at minimum the job's 4 epochs complete.
	if counts["core/epoch"] < 4 {
		t.Errorf("%d epoch spans, want >= 4; trace: %v", counts["core/epoch"], counts)
	}
	if errors.Is(err, ErrInjectedCrash) {
		t.Error("run should have recovered from the injected crash")
	}
}
