package run

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// testDense generates the shared low-precision logistic problem the
// supervisor tests train on: small enough that a full run takes
// milliseconds, I8 end to end so checkpoints exercise the quantized
// round-trip.
func testDense(t *testing.T) *dataset.DenseSet {
	t.Helper()
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 16, M: 120, P: kernels.I8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testTrainConfig(epochs int) core.Config {
	return core.Config{
		Problem:   core.Logistic,
		D:         kernels.I8,
		M:         kernels.I8,
		MiniBatch: 1,
		StepSize:  0.2,
		StepDecay: 0.9,
		Epochs:    epochs,
		Sharing:   core.Sequential,
		Seed:      99,
	}
}

func noSleep(time.Duration) {}

// TestCrashResumeDeterminism is the headline acceptance check: a run
// with an injected worker crash must resume from the latest checkpoint
// and land on the same final loss as an uninterrupted run, and do so
// identically across invocations.
func TestCrashResumeDeterminism(t *testing.T) {
	ds := testDense(t)
	const epochs = 6

	base, err := core.TrainDense(testTrainConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := ParsePlan("crash@step=380")
	if err != nil {
		t.Fatal(err)
	}
	supervised := func() *Report {
		t.Helper()
		rep, err := TrainDense(context.Background(), Config{
			Dir:    t.TempDir(),
			Faults: plan,
			Sleep:  noSleep,
		}, testTrainConfig(epochs), ds)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep1 := supervised()
	rep2 := supervised()

	// Step 380 lands mid-epoch 4; epochs 1-3 were checkpointed.
	st := rep1.Stats
	if st.Attempts != 2 || st.Retries != 1 || st.InjectedCrashes != 1 || st.Resumes != 1 || st.ResumedEpoch != 3 {
		t.Fatalf("stats: %+v, want 2 attempts, 1 retry, 1 crash, resume from epoch 3", st)
	}
	if rep1.Checkpoint == "" {
		t.Fatalf("no checkpoint path reported")
	}
	if got := len(rep1.Result.TrainLoss); got != epochs+1 {
		t.Fatalf("stitched trajectory has %d entries, want %d", got, epochs+1)
	}

	final := rep1.Result.TrainLoss[epochs]
	if diff := math.Abs(final - base.TrainLoss[epochs]); diff > 1e-3 {
		t.Fatalf("resumed final loss %v vs uninterrupted %v (|diff| %v > 1e-3)", final, base.TrainLoss[epochs], diff)
	}
	// Sequential sharing plus epoch-derived PRNG streams make recovery
	// bit-exact, not merely close — across repeated invocations too.
	for i := range rep1.Result.TrainLoss {
		if rep1.Result.TrainLoss[i] != rep2.Result.TrainLoss[i] {
			t.Fatalf("two supervised runs diverge at epoch %d: %v vs %v", i, rep1.Result.TrainLoss[i], rep2.Result.TrainLoss[i])
		}
	}
	for i := range rep1.Result.W {
		if rep1.Result.W[i] != rep2.Result.W[i] {
			t.Fatalf("two supervised runs diverge at weight %d", i)
		}
	}
	for i := range rep1.Result.W {
		if rep1.Result.W[i] != base.W[i] {
			t.Fatalf("resumed weights diverge from uninterrupted run at %d: %v vs %v", i, rep1.Result.W[i], base.W[i])
		}
	}
}

// TestCorruptCheckpointFallback corrupts the newest checkpoint before
// the crash, forcing the resume to fall back one checkpoint further and
// still recover exactly.
func TestCorruptCheckpointFallback(t *testing.T) {
	ds := testDense(t)
	const epochs = 6

	base, err := core.TrainDense(testTrainConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParsePlan("corrupt@ckpt=3,crash@step=380")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainDense(context.Background(), Config{
		Dir:    t.TempDir(),
		Faults: plan,
		Sleep:  noSleep,
	}, testTrainConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.CorruptedCheckpoints != 1 || st.CheckpointFallbacks != 1 || st.ResumedEpoch != 2 {
		t.Fatalf("stats: %+v, want 1 corrupted write, 1 load fallback, resume from epoch 2", st)
	}
	if got, want := rep.Result.TrainLoss[epochs], base.TrainLoss[epochs]; got != want {
		t.Fatalf("final loss after fallback %v, uninterrupted %v", got, want)
	}
}

// TestStallDegrade hangs a worker, expects the watchdog to cancel the
// attempt, and the supervisor to degrade to fewer workers and finish.
func TestStallDegrade(t *testing.T) {
	ds := testDense(t)
	tc := testTrainConfig(3)
	tc.Sharing = core.Locked
	tc.Threads = 2

	plan, err := ParsePlan("stall@step=60")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainDense(context.Background(), Config{
		Dir:          t.TempDir(),
		Faults:       plan,
		StallTimeout: 200 * time.Millisecond,
		DegradeAfter: 1,
		Sleep:        noSleep,
	}, tc, ds)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.InjectedStalls != 1 || st.StallsDetected != 1 {
		t.Fatalf("stats: %+v, want 1 injected and 1 detected stall", st)
	}
	if st.Degradations != 1 || st.FinalThreads != 1 {
		t.Fatalf("stats: %+v, want degradation to 1 worker", st)
	}
	if rep.Result == nil || len(rep.Result.TrainLoss) != 4 {
		t.Fatalf("degraded run did not finish: %+v", rep.Result)
	}
}

// cancelAt is a user Hooks implementation that cancels the parent
// context at its nth observed model update.
type cancelAt struct {
	n      uint64
	steps  atomic.Uint64
	cancel context.CancelFunc
}

func (c *cancelAt) OnStep(obs.StepInfo) {
	if c.steps.Add(1) == c.n {
		c.cancel()
	}
}
func (c *cancelAt) OnEpoch(obs.EpochInfo)   {}
func (c *cancelAt) OnWorker(obs.WorkerInfo) {}

// TestContextCancelLeavesResumableCheckpoint cancels mid-run and then
// restarts the supervisor over the same directory — the killed-process
// recovery path.
func TestContextCancelLeavesResumableCheckpoint(t *testing.T) {
	ds := testDense(t)
	const epochs = 6
	dir := t.TempDir()

	base, err := core.TrainDense(testTrainConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// 120 updates per epoch: step 250 is mid-epoch 3, after the epoch-2
	// checkpoint.
	_, err = TrainDense(ctx, Config{
		Dir:        dir,
		Hooks:      &cancelAt{n: 250, cancel: cancel},
		StepSample: 1,
		Sleep:      noSleep,
	}, testTrainConfig(epochs), ds)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}

	ck, _, _, err := LoadLatest(dir)
	if err != nil || ck == nil {
		t.Fatalf("no valid checkpoint after cancel: %v, %v", ck, err)
	}
	if ck.Epoch != 2 {
		t.Fatalf("checkpoint at epoch %d, want 2", ck.Epoch)
	}

	// A fresh supervisor over the same directory picks the run back up.
	rep, err := TrainDense(context.Background(), Config{Dir: dir, Sleep: noSleep}, testTrainConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Resumes != 1 || rep.Stats.ResumedEpoch != 2 {
		t.Fatalf("restart stats: %+v, want resume from epoch 2", rep.Stats)
	}
	if got, want := rep.Result.TrainLoss[epochs], base.TrainLoss[epochs]; got != want {
		t.Fatalf("resumed-after-cancel final loss %v, uninterrupted %v", got, want)
	}
	if got := len(rep.Result.TrainLoss); got != epochs+1 {
		t.Fatalf("stitched trajectory has %d entries, want %d", got, epochs+1)
	}
}

// TestGiveUpAfterRetries exhausts the retry budget with repeated
// crashes.
func TestGiveUpAfterRetries(t *testing.T) {
	ds := testDense(t)
	plan, err := ParsePlan("crash@step=5,crash@step=5")
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainDense(context.Background(), Config{
		Dir:        t.TempDir(),
		MaxRetries: 1,
		Faults:     plan,
		Sleep:      noSleep,
	}, testTrainConfig(3), ds)
	if err == nil || !errors.Is(err, ErrInjectedCrash) || !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("exhausted retries returned %v", err)
	}
}

// TestSupervisedMatchesBare checks the no-fault path: one attempt, a
// checkpoint per epoch, results identical to an unsupervised run.
func TestSupervisedMatchesBare(t *testing.T) {
	ds := testDense(t)
	const epochs = 4
	base, err := core.TrainDense(testTrainConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainDense(context.Background(), Config{Dir: t.TempDir(), Keep: 8, Sleep: noSleep}, testTrainConfig(epochs), ds)
	if err != nil {
		t.Fatal(err)
	}
	st := rep.Stats
	if st.Attempts != 1 || st.Retries != 0 || st.Checkpoints != epochs || st.Resumes != 0 {
		t.Fatalf("stats: %+v, want 1 clean attempt with %d checkpoints", st, epochs)
	}
	for i := range base.TrainLoss {
		if base.TrainLoss[i] != rep.Result.TrainLoss[i] {
			t.Fatalf("supervision changed the trajectory at epoch %d", i)
		}
	}
}

// TestSparseCrashResume exercises the sparse engine through the same
// crash/resume cycle.
func TestSparseCrashResume(t *testing.T) {
	ds, err := dataset.GenSparse(dataset.SparseConfig{N: 64, M: 100, Density: 0.1, P: kernels.I8, IdxBits: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 5
	tc := testTrainConfig(epochs)
	base, err := core.TrainSparse(tc, ds)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParsePlan("crash@step=250")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := TrainSparse(context.Background(), Config{Dir: t.TempDir(), Faults: plan, Sleep: noSleep}, tc, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.InjectedCrashes != 1 || rep.Stats.Resumes != 1 {
		t.Fatalf("stats: %+v, want 1 crash and 1 resume", rep.Stats)
	}
	if got, want := rep.Result.TrainLoss[epochs], base.TrainLoss[epochs]; got != want {
		t.Fatalf("sparse resumed final loss %v, uninterrupted %v", got, want)
	}
}

// lifecycleRecorder records supervisor lifecycle callbacks.
type lifecycleRecorder struct {
	checkpoints []obs.CheckpointInfo
	retries     []obs.RetryInfo
}

func (l *lifecycleRecorder) OnStep(obs.StepInfo)     {}
func (l *lifecycleRecorder) OnEpoch(obs.EpochInfo)   {}
func (l *lifecycleRecorder) OnWorker(obs.WorkerInfo) {}
func (l *lifecycleRecorder) OnCheckpoint(ci obs.CheckpointInfo) {
	l.checkpoints = append(l.checkpoints, ci)
}
func (l *lifecycleRecorder) OnRetry(ri obs.RetryInfo) { l.retries = append(l.retries, ri) }

func TestLifecycleHooks(t *testing.T) {
	ds := testDense(t)
	plan, err := ParsePlan("crash@step=380")
	if err != nil {
		t.Fatal(err)
	}
	rec := &lifecycleRecorder{}
	rep, err := TrainDense(context.Background(), Config{
		Dir:    t.TempDir(),
		Faults: plan,
		Hooks:  rec,
		Sleep:  noSleep,
	}, testTrainConfig(6), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.checkpoints) != rep.Stats.Checkpoints {
		t.Fatalf("OnCheckpoint fired %d times, stats say %d", len(rec.checkpoints), rep.Stats.Checkpoints)
	}
	if len(rec.retries) != 1 {
		t.Fatalf("OnRetry fired %d times, want 1", len(rec.retries))
	}
	ri := rec.retries[0]
	if !errors.Is(ri.Err, ErrInjectedCrash) || ri.ResumeEpoch != 3 || ri.Attempt != 1 {
		t.Fatalf("retry info %+v", ri)
	}
}

// TestRetriesExhaustedTriggersBundle checks the supervisor's anomaly
// hookup: giving up after the retry budget writes exactly one debug
// bundle naming the failure.
func TestRetriesExhaustedTriggersBundle(t *testing.T) {
	ds := testDense(t)
	bundleDir := t.TempDir()
	bundler, err := obs.NewBundler(obs.BundleConfig{Dir: bundleDir, Flight: obs.NewFlightRecorder(0)})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParsePlan("crash@step=5,crash@step=5")
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainDense(context.Background(), Config{
		Dir:        t.TempDir(),
		MaxRetries: 1,
		Faults:     plan,
		Bundle:     bundler,
		Sleep:      noSleep,
	}, testTrainConfig(3), ds)
	if err == nil || !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("exhausted retries returned %v", err)
	}
	files, err := filepath.Glob(filepath.Join(bundleDir, "*"+obs.DebugBundleSuffix))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("exhausted retries produced %d bundles, want 1: %v", len(files), files)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	info, err := obs.ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}
	if info.Manifest.Reason != "retries-exhausted" {
		t.Errorf("bundle reason = %q, want retries-exhausted", info.Manifest.Reason)
	}
	if !strings.Contains(info.Manifest.Detail, "giving up after 2 attempts") {
		t.Errorf("bundle detail = %q", info.Manifest.Detail)
	}
}
