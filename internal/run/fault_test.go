package run

import (
	"strings"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "corrupt@ckpt=1,crash@step=1500,stall@step=42"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != spec {
		t.Fatalf("round trip %q -> %q", spec, got)
	}
	if !p.hasStepFaults() || !p.hasStalls() {
		t.Fatalf("plan %v: hasStepFaults=%v hasStalls=%v", p, p.hasStepFaults(), p.hasStalls())
	}
}

func TestParsePlanEmpty(t *testing.T) {
	p, err := ParsePlan("  ")
	if p != nil || err != nil {
		t.Fatalf("empty spec: %v, %v", p, err)
	}
	if p.hasStepFaults() || p.hasStalls() {
		t.Fatal("nil plan reports faults")
	}
	if p.String() != "" {
		t.Fatalf("nil plan renders %q", p.String())
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, spec := range []string{
		"crash",
		"crash@step",
		"crash@step=0",
		"crash@step=-3",
		"crash@ckpt=2",
		"corrupt@step=2",
		"explode@step=2",
		"crash@step=two",
	} {
		if p, err := ParsePlan(spec); err == nil {
			t.Errorf("ParsePlan(%q) = %v, want error", spec, p)
		}
	}
}

func TestGeneratePlanDeterministic(t *testing.T) {
	a := GeneratePlan(123, 4, 1000)
	b := GeneratePlan(123, 4, 1000)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans: %q vs %q", a, b)
	}
	if len(a.Faults) != 4 {
		t.Fatalf("want 4 faults, got %v", a)
	}
	if c := GeneratePlan(124, 4, 1000); c.String() == a.String() {
		t.Fatalf("different seeds produced identical plan %q", c)
	}
	if GeneratePlan(1, 0, 1000) != nil || GeneratePlan(1, 3, 0) != nil {
		t.Fatal("degenerate GeneratePlan arguments should yield nil")
	}
}

func TestInjectorFiresOnce(t *testing.T) {
	p, err := ParsePlan("crash@step=3,corrupt@ckpt=2")
	if err != nil {
		t.Fatal(err)
	}
	inj := newInjector(p)
	if _, ok := inj.fireAt(2); ok {
		t.Fatal("fired at wrong step")
	}
	f, ok := inj.fireAt(3)
	if !ok || f.Kind != FaultCrash {
		t.Fatalf("fireAt(3) = %v, %v", f, ok)
	}
	if _, ok := inj.fireAt(3); ok {
		t.Fatal("crash fired twice")
	}
	if inj.corruptNextWrite() {
		t.Fatal("write 1 corrupted, schedule says write 2")
	}
	if !inj.corruptNextWrite() {
		t.Fatal("write 2 not corrupted")
	}
	if inj.corruptNextWrite() {
		t.Fatal("corrupt fired twice")
	}
	if inj.firedCount(FaultCrash) != 1 || inj.firedCount(FaultCorrupt) != 1 || inj.firedCount(FaultStall) != 0 {
		t.Fatalf("fired counts: crash=%d corrupt=%d stall=%d", inj.firedCount(FaultCrash), inj.firedCount(FaultCorrupt), inj.firedCount(FaultStall))
	}
}

func TestFaultStrings(t *testing.T) {
	if s := (Fault{Kind: FaultStall, Step: 9}).String(); s != "stall@step=9" {
		t.Fatalf("stall fault renders %q", s)
	}
	if s := FaultCorrupt.String(); s != "corrupt" {
		t.Fatalf("FaultCorrupt renders %q", s)
	}
	if !strings.HasPrefix(FaultKind(99).String(), "FaultKind(") {
		t.Fatalf("unknown kind renders %q", FaultKind(99).String())
	}
}
