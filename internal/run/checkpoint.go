// Package run is the robustness layer between "one Train call" and "a
// job that survives the hardware": a training-run supervisor that wraps
// the internal/core engine with periodic checkpointing, automatic
// resume-from-latest-checkpoint with bounded retries and exponential
// backoff, graceful degradation after repeated worker stalls, and a
// deterministic fault-injection schedule so every recovery path is
// testable in CI.
//
// The paper's thesis is that asynchronous low-precision SGD keeps
// converging under adversity — stale reads, racy writes, an obstinate
// cache. This package extends that adversity model up one level: a
// worker crash or a corrupted checkpoint write must cost at most the
// epochs since the last checkpoint, never the run. Because every worker
// PRNG stream is derived from (seed, worker, epoch), a run resumed at an
// epoch boundary replays exactly the updates an uninterrupted run would
// have performed, so recovery is not just safe but deterministic.
package run

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"buckwild/internal/kernels"
)

// Checkpoint is the durable state of a training run at an epoch
// boundary: enough to restart the run as if it had never stopped.
//
// The model is checkpointed at its own storage precision — an I8 model
// costs one byte per weight on disk, the low-precision counterpart of
// the engine's low-precision memory traffic. Dequantizing on load and
// re-quantizing with nearest rounding round-trips bit-exactly, because
// dequantized fixed-point values are exactly representable in float32.
type Checkpoint struct {
	// Epoch is the cumulative number of completed epochs.
	Epoch int
	// Seed is the run's base PRNG seed. Together with Epoch it pins
	// every per-(worker, epoch) PRNG stream the engine derives, so this
	// pair is the complete PRNG state at an epoch boundary.
	Seed uint64
	// Threads is the worker count in effect when the checkpoint was
	// written (lower than configured after graceful degradation).
	Threads int
	// Prec names the model storage precision in DMGC notation ("32f",
	// "16", "8", "4"); exactly one of WF/W16/W8 is non-nil accordingly
	// (I4 nibbles live in W8, like kernels.Vec).
	Prec string
	WF   []float32
	W16  []int16
	W8   []int8
	// TrainLoss is the complete loss trajectory from epoch 0 through
	// Epoch, stitched across restarts.
	TrainLoss []float64
}

// newCheckpoint snapshots a live model vector (copying its storage) into
// a checkpoint.
func newCheckpoint(epoch int, seed uint64, threads int, w kernels.Vec, loss []float64) *Checkpoint {
	ck := &Checkpoint{Epoch: epoch, Seed: seed, Threads: threads, Prec: w.P.String(), TrainLoss: loss}
	switch w.P {
	case kernels.F32:
		ck.WF = append([]float32(nil), w.F32...)
	case kernels.I16:
		ck.W16 = append([]int16(nil), w.I16...)
	default:
		ck.W8 = append([]int8(nil), w.I8...)
	}
	return ck
}

// Weights dequantizes the checkpointed model into the float32 form the
// engine's resume path (core.Config.InitWeights) takes.
func (ck *Checkpoint) Weights() ([]float32, error) {
	p, err := kernels.ParsePrec(ck.Prec)
	if err != nil {
		return nil, fmt.Errorf("run: checkpoint precision: %w", err)
	}
	switch p {
	case kernels.F32:
		if ck.WF == nil {
			return nil, fmt.Errorf("run: checkpoint claims %s but has no float payload", ck.Prec)
		}
		return append([]float32(nil), ck.WF...), nil
	case kernels.I16:
		if ck.W16 == nil {
			return nil, fmt.Errorf("run: checkpoint claims %s but has no int16 payload", ck.Prec)
		}
		f := p.Fixed()
		out := make([]float32, len(ck.W16))
		for i, v := range ck.W16 {
			out[i] = f.Dequantize(int32(v))
		}
		return out, nil
	default: // I8, I4
		if ck.W8 == nil {
			return nil, fmt.Errorf("run: checkpoint claims %s but has no int8 payload", ck.Prec)
		}
		f := p.Fixed()
		out := make([]float32, len(ck.W8))
		for i, v := range ck.W8 {
			out[i] = f.Dequantize(int32(v))
		}
		return out, nil
	}
}

// Checkpoint files are framed as
//
//	magic[4] | version[1] | crc32[4] | payloadLen[8] | payload
//
// with the CRC (IEEE, big-endian) covering the gob-encoded payload. The
// first magic byte 0xBF can never begin a gob stream, so the frame is
// unambiguous. The CRC is what makes the corrupt-write fault injectable
// and torn writes detectable: LoadLatest verifies it and falls back to
// the previous checkpoint on mismatch.
var ckptMagic = [4]byte{0xBF, 'B', 'K', 'P'}

const (
	ckptVersion = 1
	ckptPrefix  = "ckpt-"
	ckptSuffix  = ".bkcp"
)

// ckptPath names the checkpoint file for an epoch; zero-padding keeps
// lexicographic and numeric order identical.
func ckptPath(dir string, epoch int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", ckptPrefix, epoch, ckptSuffix))
}

// WriteCheckpoint atomically writes ck into dir: the frame goes to a
// temporary file in the same directory, is synced, and is renamed to its
// final name, so readers never observe a partial checkpoint. It returns
// the final path and the file size.
func WriteCheckpoint(dir string, ck *Checkpoint) (string, int64, error) {
	return writeCheckpoint(dir, ck, false)
}

// writeCheckpoint is WriteCheckpoint plus the corrupt-write fault: when
// corrupt is set, one payload byte is flipped after the CRC is computed,
// producing exactly the torn-write artifact the loader must survive.
func writeCheckpoint(dir string, ck *Checkpoint, corrupt bool) (string, int64, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return "", 0, fmt.Errorf("run: encoding checkpoint: %w", err)
	}
	p := payload.Bytes()
	sum := crc32.ChecksumIEEE(p)
	if corrupt && len(p) > 0 {
		p[len(p)/2] ^= 0xFF
	}

	var frame bytes.Buffer
	frame.Write(ckptMagic[:])
	frame.WriteByte(ckptVersion)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], sum)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(len(p)))
	frame.Write(hdr[:])
	frame.Write(p)

	tmp, err := os.CreateTemp(dir, ".tmp-"+ckptPrefix+"*")
	if err != nil {
		return "", 0, fmt.Errorf("run: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(frame.Bytes()); err != nil {
		tmp.Close()
		return "", 0, fmt.Errorf("run: writing checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", 0, fmt.Errorf("run: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", 0, fmt.Errorf("run: closing checkpoint: %w", err)
	}
	path := ckptPath(dir, ck.Epoch)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", 0, fmt.Errorf("run: publishing checkpoint: %w", err)
	}
	return path, int64(frame.Len()), nil
}

// ReadCheckpoint reads and validates one checkpoint file.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	defer f.Close()
	var head [17]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, fmt.Errorf("run: %s: truncated checkpoint header", path)
	}
	if !bytes.Equal(head[:4], ckptMagic[:]) {
		return nil, fmt.Errorf("run: %s: not a checkpoint file", path)
	}
	if head[4] != ckptVersion {
		return nil, fmt.Errorf("run: %s: unsupported checkpoint version %d", path, head[4])
	}
	sum := binary.BigEndian.Uint32(head[5:9])
	n := binary.BigEndian.Uint64(head[9:17])
	const maxPayload = 1 << 32
	if n > maxPayload {
		return nil, fmt.Errorf("run: %s: implausible checkpoint payload size %d", path, n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(f, p); err != nil {
		return nil, fmt.Errorf("run: %s: truncated checkpoint payload", path)
	}
	if got := crc32.ChecksumIEEE(p); got != sum {
		return nil, fmt.Errorf("run: %s: checkpoint CRC mismatch (stored %08x, computed %08x)", path, sum, got)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&ck); err != nil {
		return nil, fmt.Errorf("run: %s: decoding checkpoint: %w", path, err)
	}
	return &ck, nil
}

// listCheckpoints returns the checkpoint files in dir, oldest first.
func listCheckpoints(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("run: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ckptSuffix) {
			names = append(names, filepath.Join(dir, name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// LoadLatest loads the newest valid checkpoint in dir, skipping (and
// counting) corrupt or unreadable ones — the fallback that makes a
// corrupted write cost one checkpoint interval instead of the run. It
// returns (nil, "", skipped, nil) when no valid checkpoint exists; the
// error is reserved for the directory itself being unreadable.
func LoadLatest(dir string) (ck *Checkpoint, path string, skipped int, err error) {
	names, err := listCheckpoints(dir)
	if err != nil {
		return nil, "", 0, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		ck, err := ReadCheckpoint(names[i])
		if err != nil {
			skipped++
			continue
		}
		return ck, names[i], skipped, nil
	}
	return nil, "", skipped, nil
}

// pruneCheckpoints removes all but the newest keep checkpoint files. The
// supervisor always keeps at least two, so a checkpoint corrupted on
// disk still leaves a fallback.
func pruneCheckpoints(dir string, keep int) {
	if keep < 1 {
		keep = 1
	}
	names, err := listCheckpoints(dir)
	if err != nil || len(names) <= keep {
		return
	}
	for _, name := range names[:len(names)-keep] {
		os.Remove(name)
	}
}
