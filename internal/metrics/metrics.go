// Package metrics evaluates trained models and summarizes experiment
// series. Losses are always computed in full precision on the raw
// (unquantized) data, so that statistical-efficiency comparisons between
// precisions measure the quality of the learned model, not the quality of
// the evaluation.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// LogisticLoss returns the average logistic loss (log(1+exp(-y w.x)))
// over the dataset.
func LogisticLoss(w []float32, xs [][]float32, ys []float32) (float64, error) {
	if err := checkShapes(w, xs, ys); err != nil {
		return 0, err
	}
	var total float64
	for i, x := range xs {
		m := float64(ys[i]) * dot(w, x)
		total += logistic(m)
	}
	return total / float64(len(xs)), nil
}

// SparseLogisticLoss is LogisticLoss for coordinate-form examples.
func SparseLogisticLoss(w []float32, idx [][]int32, vals [][]float32, ys []float32) (float64, error) {
	if len(idx) != len(vals) || len(idx) != len(ys) || len(idx) == 0 {
		return 0, fmt.Errorf("metrics: mismatched sparse dataset shapes")
	}
	var total float64
	for i := range idx {
		var d float64
		for k, j := range idx[i] {
			d += float64(w[j]) * float64(vals[i][k])
		}
		total += logistic(float64(ys[i]) * d)
	}
	return total / float64(len(idx)), nil
}

// HingeLoss returns the average hinge loss max(0, 1 - y w.x).
func HingeLoss(w []float32, xs [][]float32, ys []float32) (float64, error) {
	if err := checkShapes(w, xs, ys); err != nil {
		return 0, err
	}
	var total float64
	for i, x := range xs {
		m := 1 - float64(ys[i])*dot(w, x)
		if m > 0 {
			total += m
		}
	}
	return total / float64(len(xs)), nil
}

// SquaredLoss returns the average squared error (w.x - y)^2 / 2.
func SquaredLoss(w []float32, xs [][]float32, ys []float32) (float64, error) {
	if err := checkShapes(w, xs, ys); err != nil {
		return 0, err
	}
	var total float64
	for i, x := range xs {
		d := dot(w, x) - float64(ys[i])
		total += d * d / 2
	}
	return total / float64(len(xs)), nil
}

// BinaryError returns the fraction of examples misclassified by
// sign(w.x).
func BinaryError(w []float32, xs [][]float32, ys []float32) (float64, error) {
	if err := checkShapes(w, xs, ys); err != nil {
		return 0, err
	}
	wrong := 0
	for i, x := range xs {
		if (dot(w, x) >= 0) != (ys[i] > 0) {
			wrong++
		}
	}
	return float64(wrong) / float64(len(xs)), nil
}

func checkShapes(w []float32, xs [][]float32, ys []float32) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("metrics: dataset has %d examples, %d labels", len(xs), len(ys))
	}
	if len(w) != len(xs[0]) {
		return fmt.Errorf("metrics: model dim %d, example dim %d", len(w), len(xs[0]))
	}
	return nil
}

func dot(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// logistic returns log(1 + exp(-m)) computed stably.
func logistic(m float64) float64 {
	if m > 35 {
		return math.Exp(-m)
	}
	if m < -35 {
		return -m
	}
	return math.Log1p(math.Exp(-m))
}

// Summary holds basic statistics of a sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P10, P90       float64
	First, Last    float64
	MinIdx, MaxIdx int
}

// Summarize computes statistics over xs; it returns an error for an empty
// sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, fmt.Errorf("metrics: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0], First: xs[0], Last: xs[len(xs)-1]}
	var sum float64
	for i, x := range xs {
		sum += x
		if x < s.Min {
			s.Min, s.MinIdx = x, i
		}
		if x > s.Max {
			s.Max, s.MaxIdx = x, i
		}
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P10 = quantile(sorted, 0.1)
	s.P90 = quantile(sorted, 0.9)
	return s, nil
}

// quantile interpolates the q-quantile of a sorted sample.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("metrics: empty sample")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("metrics: GeoMean needs positive values, got %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}
