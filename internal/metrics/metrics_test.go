package metrics

import (
	"math"
	"testing"
)

var (
	w2  = []float32{1, -1}
	xs2 = [][]float32{{1, 0}, {0, 1}, {1, 1}}
	ys2 = []float32{1, -1, 1}
)

func TestLogisticLoss(t *testing.T) {
	got, err := LogisticLoss(w2, xs2, ys2)
	if err != nil {
		t.Fatal(err)
	}
	// Margins: 1, 1, 0 -> losses log(1+e^-1), log(1+e^-1), log 2.
	want := (2*math.Log1p(math.Exp(-1)) + math.Log(2)) / 3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LogisticLoss = %v, want %v", got, want)
	}
}

func TestLogisticLossStability(t *testing.T) {
	// Extreme margins must not overflow.
	big := []float32{1000}
	l1, err := LogisticLoss(big, [][]float32{{1}}, []float32{1})
	if err != nil || math.IsNaN(l1) || math.IsInf(l1, 0) || l1 < 0 {
		t.Errorf("huge positive margin: %v, %v", l1, err)
	}
	l2, err := LogisticLoss(big, [][]float32{{1}}, []float32{-1})
	if err != nil || math.Abs(l2-1000) > 1 {
		t.Errorf("huge negative margin loss = %v, want ~1000", l2)
	}
}

func TestSparseLogisticLossMatchesDense(t *testing.T) {
	w := []float32{0.5, -0.25, 0.75, 0}
	xs := [][]float32{{1, 0, 2, 0}, {0, 3, 0, 0}}
	ys := []float32{1, -1}
	dense, err := LogisticLoss(w, xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	idx := [][]int32{{0, 2}, {1}}
	vals := [][]float32{{1, 2}, {3}}
	sparse, err := SparseLogisticLoss(w, idx, vals, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dense-sparse) > 1e-12 {
		t.Errorf("dense %v vs sparse %v", dense, sparse)
	}
}

func TestHingeLoss(t *testing.T) {
	got, err := HingeLoss(w2, xs2, ys2)
	if err != nil {
		t.Fatal(err)
	}
	// Margins 1, 1, 0 -> hinge 0, 0, 1.
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("HingeLoss = %v, want 1/3", got)
	}
}

func TestSquaredLoss(t *testing.T) {
	w := []float32{2}
	got, err := SquaredLoss(w, [][]float32{{1}, {2}}, []float32{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Residuals 0 and 2 -> (0 + 4/2)/2 = 1.
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("SquaredLoss = %v, want 1", got)
	}
}

func TestBinaryError(t *testing.T) {
	got, err := BinaryError(w2, xs2, ys2)
	if err != nil {
		t.Fatal(err)
	}
	// Predictions: +, -, 0(>=0 -> +): all correct.
	if got != 0 {
		t.Errorf("BinaryError = %v, want 0", got)
	}
	// Flipped model misclassifies the first two examples; the third has
	// margin 0, predicts positive, and stays correct.
	got, _ = BinaryError([]float32{-1, 1}, xs2, ys2)
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("flipped model error = %v, want 2/3", got)
	}
}

func TestShapeErrors(t *testing.T) {
	if _, err := LogisticLoss(w2, nil, nil); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := LogisticLoss([]float32{1}, xs2, ys2); err == nil {
		t.Error("dim mismatch should fail")
	}
	if _, err := LogisticLoss(w2, xs2, ys2[:2]); err == nil {
		t.Error("label count mismatch should fail")
	}
	if _, err := SparseLogisticLoss(w2, [][]int32{{0}}, nil, nil); err == nil {
		t.Error("sparse mismatch should fail")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{3, 1, 4, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary wrong: %+v", s)
	}
	if math.Abs(s.Mean-2.8) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.First != 3 || s.Last != 5 {
		t.Errorf("first/last wrong: %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("empty summarize should fail")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 7 || s.P10 != 7 || s.P90 != 7 || s.Std != 0 {
		t.Errorf("single-sample summary wrong: %+v", s)
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{2, 8})
	if err != nil || math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean = %v, %v", g, err)
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative values should fail")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty should fail")
	}
}
