package cache

import "testing"

// BenchmarkHierarchyAccess exercises the per-access hot path with the mix
// the dense SGD trace produces: every core streams its private dataset
// region, reads the shared model sequentially, then read-modify-writes the
// model. This is the loop the experiments driver spends nearly all of its
// time in, so the per-access cost here bounds every sweep.
func BenchmarkHierarchyAccess(b *testing.B) {
	cfg := XeonConfig()
	cfg.Cores = 4
	h, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const (
		modelBytes = 1 << 16 // 64 KiB shared model
		dataBytes  = 1 << 16 // 64 KiB dataset slice per core per pass
		dataBase   = 1 << 40
	)
	ls := uint64(cfg.LineSize)
	var offset uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < cfg.Cores; c++ {
			base := dataBase + uint64(c)<<30 + offset
			for a := uint64(0); a < dataBytes; a += ls {
				h.Access(c, base+a, false, false)
			}
			for a := uint64(0); a < modelBytes; a += ls {
				h.Access(c, a, false, true)
			}
			for a := uint64(0); a < modelBytes; a += ls {
				h.Access(c, a, false, true)
				h.Access(c, a, true, true)
			}
		}
		offset += dataBytes
	}
}

// BenchmarkHierarchyAccessSparse exercises the random-gather pattern of the
// sparse kernels: streamed index/value loads plus scattered model updates.
func BenchmarkHierarchyAccessSparse(b *testing.B) {
	cfg := XeonConfig()
	cfg.Cores = 4
	h, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const (
		modelLines = 1 << 12
		dataBytes  = 1 << 12
		dataBase   = 1 << 40
	)
	ls := uint64(cfg.LineSize)
	rng := uint64(0x9E3779B97F4A7C15)
	var offset uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for c := 0; c < cfg.Cores; c++ {
			base := dataBase + uint64(c)<<30 + offset
			for a := uint64(0); a < dataBytes; a += ls {
				h.Access(c, base+a, false, false)
			}
			for j := 0; j < 64; j++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				la := (rng % modelLines) * ls
				h.Access(c, la, false, true)
				h.Access(c, la, true, true)
			}
		}
		offset += dataBytes
	}
}
