package cache

import (
	"testing"
)

func smallConfig() Config {
	return Config{
		Cores:    4,
		LineSize: 64,
		L1Size:   1 << 10, L1Assoc: 2, L1Lat: 4,
		L2Size: 8 << 10, L2Assoc: 4, L2Lat: 12,
		L3Size: 256 << 10, L3Assoc: 8, L3Lat: 36,
		DRAMLat: 200,
	}
}

func TestStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" || Exclusive.String() != "E" || Modified.String() != "M" {
		t.Error("state names wrong")
	}
}

func TestNewErrors(t *testing.T) {
	c := smallConfig()
	c.Cores = 0
	if _, err := New(c); err == nil {
		t.Error("zero cores should fail")
	}
	c = smallConfig()
	c.Obstinacy = 1.5
	if _, err := New(c); err == nil {
		t.Error("obstinacy > 1 should fail")
	}
	c = smallConfig()
	c.L1Size = 0
	if _, err := New(c); err == nil {
		t.Error("zero L1 should fail")
	}
}

func TestMissThenHit(t *testing.T) {
	h, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	lat := h.Access(0, 0x1000, false, false)
	if lat != 200 {
		t.Errorf("cold miss latency = %d, want DRAM 200", lat)
	}
	lat = h.Access(0, 0x1000, false, false)
	if lat != 4 {
		t.Errorf("re-access latency = %d, want L1 4", lat)
	}
	lat = h.Access(0, 0x1020, false, false) // same 64B line
	if lat != 4 {
		t.Errorf("same-line access latency = %d, want L1 4", lat)
	}
	s := h.Stats()
	if s.L1Hits != 2 || s.DRAMFills != 1 {
		t.Errorf("stats: %+v", s)
	}
}

func TestCapacitySpill(t *testing.T) {
	h, _ := New(smallConfig())
	// Touch 4 KB (> 1 KB L1, < 8 KB L2); second pass should mostly hit
	// in L2.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			h.ResetStats()
		}
		for a := uint64(0); a < 4<<10; a += 64 {
			h.Access(0, a, false, false)
		}
	}
	s := h.Stats()
	if s.L2Hits < 32 {
		t.Errorf("second pass should hit L2: %+v", s)
	}
	if s.DRAMFills > 4 {
		t.Errorf("second pass should not re-fetch from DRAM: %+v", s)
	}
}

func TestL3Spill(t *testing.T) {
	h, _ := New(smallConfig())
	// 64 KB working set: fits L3, exceeds L2.
	for pass := 0; pass < 2; pass++ {
		if pass == 1 {
			h.ResetStats()
		}
		for a := uint64(0); a < 64<<10; a += 64 {
			h.Access(0, a, false, false)
		}
	}
	s := h.Stats()
	if s.L3Hits < 500 {
		t.Errorf("second pass should hit L3: %+v", s)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h, _ := New(smallConfig())
	addr := uint64(0x4000)
	h.Access(0, addr, false, true) // core 0 reads
	h.Access(1, addr, false, true) // core 1 reads: shared
	if lat := h.Access(1, addr, false, true); lat != 4 {
		t.Fatalf("core 1 should have an L1 copy, lat=%d", lat)
	}
	h.Access(0, addr, true, true) // core 0 writes: invalidates core 1
	if got := h.Stats().Invalidates; got != 1 {
		t.Errorf("Invalidates = %d, want 1", got)
	}
	if lat := h.Access(1, addr, false, true); lat <= 12 {
		t.Errorf("core 1 read after invalidate should miss privately, lat=%d", lat)
	}
}

func TestWriteUpgradeLatency(t *testing.T) {
	h, _ := New(smallConfig())
	addr := uint64(0x8000)
	h.Access(0, addr, false, true)
	h.Access(1, addr, false, true) // now shared by 0 and 1
	// Upgrading while a real remote copy exists is a coherence event at
	// the cross-core latency.
	lat, coh := h.AccessInfo(0, addr, true, true)
	if lat != h.Config().CoherenceLat || !coh {
		t.Errorf("upgrade with sharers: lat=%d coh=%v, want CoherenceLat %d", lat, coh, h.Config().CoherenceLat)
	}
	// Subsequent writes by the same core hit in M state.
	if lat := h.Access(0, addr, true, true); lat != 4 {
		t.Errorf("owned write latency = %d, want 4", lat)
	}
}

func TestObstinateCacheRetainsLines(t *testing.T) {
	c := smallConfig()
	c.Obstinacy = 1 // always ignore invalidates for model lines
	h, _ := New(c)
	addr := uint64(0x4000)
	h.Access(0, addr, false, true)
	h.Access(1, addr, false, true)
	h.Access(0, addr, true, true) // invalidate ignored by core 1
	s := h.Stats()
	if s.InvalidatesIgnored != 1 || s.Invalidates != 0 {
		t.Fatalf("expected ignored invalidate: %+v", s)
	}
	if lat := h.Access(1, addr, false, true); lat != 4 {
		t.Errorf("obstinate read latency = %d, want stale L1 hit 4", lat)
	}
	if h.Stats().StaleReads != 1 {
		t.Errorf("StaleReads = %d, want 1", h.Stats().StaleReads)
	}
}

func TestObstinacyOnlyAppliesToModelLines(t *testing.T) {
	c := smallConfig()
	c.Obstinacy = 1
	h, _ := New(c)
	addr := uint64(0x9000)
	h.Access(0, addr, false, false) // non-model
	h.Access(1, addr, false, false)
	h.Access(0, addr, true, false)
	s := h.Stats()
	if s.InvalidatesIgnored != 0 || s.Invalidates != 1 {
		t.Errorf("non-model lines must follow MESI: %+v", s)
	}
}

func TestObstinateWriteRegainsCoherence(t *testing.T) {
	c := smallConfig()
	c.Obstinacy = 1
	h, _ := New(c)
	addr := uint64(0x4000)
	h.Access(0, addr, false, true)
	h.Access(1, addr, false, true)
	h.Access(0, addr, true, true) // core 1 keeps a stale copy
	h.Access(1, addr, true, true) // core 1 writes: upgrade through L3
	// Core 1's line must no longer be stale.
	if lat := h.Access(1, addr, false, true); lat != 4 {
		t.Errorf("post-write read latency = %d", lat)
	}
	before := h.Stats().StaleReads
	h.Access(1, addr, false, true)
	if h.Stats().StaleReads != before {
		t.Error("write should clear staleness")
	}
}

func TestPrefetcherHelpsSequentialReads(t *testing.T) {
	base := smallConfig()
	run := func(pf bool) Stats {
		c := base
		c.Prefetch = pf
		c.PrefetchDegree = 2
		h, _ := New(c)
		for a := uint64(0); a < 32<<10; a += 64 {
			h.Access(0, a, false, false)
		}
		return h.Stats()
	}
	off := run(false)
	on := run(true)
	if on.PrefetchIssued == 0 || on.PrefetchUseful == 0 {
		t.Fatalf("prefetcher idle: %+v", on)
	}
	// With prefetching, sequential reads should be served faster on
	// average (demand misses become L2 hits).
	if on.Cycles >= off.Cycles {
		t.Errorf("prefetching should cut sequential read cycles: on=%d off=%d", on.Cycles, off.Cycles)
	}
}

func TestPrefetchedModelLinesGetInvalidated(t *testing.T) {
	// The Section 5.3 pathology: prefetched (model) lines are often
	// invalidated before use when another core writes the model.
	c := smallConfig()
	c.Prefetch = true
	c.PrefetchDegree = 4
	h, _ := New(c)
	// Core 1 streams through the model region, prefetching ahead.
	for a := uint64(0); a < 4<<10; a += 64 {
		h.Access(1, a, false, true)
		// Core 0 writes a line just ahead of core 1's stream.
		h.Access(0, a+128, true, true)
	}
	if h.Stats().PrefetchInvalidated == 0 {
		t.Errorf("expected invalidated prefetches: %+v", h.Stats())
	}
}

func TestDRAMTrafficAccounting(t *testing.T) {
	h, _ := New(smallConfig())
	for a := uint64(0); a < 8<<10; a += 64 {
		h.Access(0, a, false, false)
	}
	s := h.Stats()
	want := uint64(8 << 10)
	if s.DRAMBytes != want {
		t.Errorf("DRAMBytes = %d, want %d", s.DRAMBytes, want)
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	h, _ := New(smallConfig())
	h.Access(0, 0x100, false, false)
	h.ResetStats()
	if h.Stats().Accesses != 0 {
		t.Error("stats not reset")
	}
	if lat := h.Access(0, 0x100, false, false); lat != 4 {
		t.Errorf("contents should survive reset, lat=%d", lat)
	}
}

func TestXeonConfig(t *testing.T) {
	c := XeonConfig()
	if c.Cores != 18 || c.L3Size != 45<<20 || c.L1Lat != 4 || c.L2Lat != 12 || c.L3Lat != 36 {
		t.Errorf("Xeon config drifted from the paper: %+v", c)
	}
	if _, err := New(c); err != nil {
		t.Fatalf("Xeon config must be constructible: %v", err)
	}
}

func TestPingPongIsExpensive(t *testing.T) {
	// Two cores alternately writing one line: every write is a remote
	// upgrade, the communication-bound pathology.
	h, _ := New(smallConfig())
	addr := uint64(0x2000)
	h.Access(0, addr, true, true)
	var total int
	const iters = 100
	for i := 0; i < iters; i++ {
		total += h.Access(i%2, addr, true, true)
	}
	if avg := float64(total) / iters; avg < 30 {
		t.Errorf("ping-pong average latency = %v, should pay shared-level trips", avg)
	}
}

func TestNUMACoherenceLatencies(t *testing.T) {
	c := smallConfig()
	c.CoresPerSocket = 2 // cores {0,1} and {2,3}
	h, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	local := h.Config().CoherenceLat
	remote := h.Config().RemoteCoherenceLat
	if remote <= local {
		t.Fatalf("remote latency %d should exceed local %d", remote, local)
	}
	// Core 0 writes; a same-socket reader pays the local transfer.
	h.Access(0, 0x4000, true, true)
	if lat, coh := h.AccessInfo(1, 0x4000, false, true); lat != local || !coh {
		t.Errorf("same-socket transfer lat=%d coh=%v, want %d", lat, coh, local)
	}
	// Core 0 writes again; a cross-socket reader pays the QPI trip.
	h.Access(0, 0x8000, true, true)
	if lat, coh := h.AccessInfo(2, 0x8000, false, true); lat != remote || !coh {
		t.Errorf("cross-socket transfer lat=%d coh=%v, want %d", lat, coh, remote)
	}
	// A cross-socket invalidating write pays the remote trip too.
	if lat, coh := h.AccessInfo(3, 0x8000, true, true); lat != remote || !coh {
		t.Errorf("cross-socket invalidation lat=%d coh=%v, want %d", lat, coh, remote)
	}
}

func TestNUMAConfigValidation(t *testing.T) {
	c := smallConfig()
	c.CoresPerSocket = -1
	if _, err := New(c); err == nil {
		t.Error("negative CoresPerSocket should fail")
	}
}
