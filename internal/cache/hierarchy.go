package cache

import (
	"fmt"

	"buckwild/internal/prng"
)

// Hierarchy is the full simulated memory system: per-core L1 and L2, a
// shared L3 with a sharer directory, the sequential prefetcher, and the
// obstinate-cache behaviour.
//
// Coherence events — dirty-remote transfers and invalidation broadcasts —
// are what make small shared models slow (the communication-bound regime of
// Section 4), so the hierarchy distinguishes them from plain capacity
// misses: AccessInfo reports whether an access was a coherence event, and
// such events are charged the cross-core CoherenceLat.
type Hierarchy struct {
	cfg Config
	l1  []*level
	l2  []*level
	l3  *level
	// table holds the per-line coherence record (sharer directory, dirty
	// owner, contention window) in a paged store; see lineState.
	table lineTable
	// epoch tags the current measurement window: contention fields
	// stamped with an older epoch are logically zero (lazy ResetStats).
	epoch uint32
	// maxContention is the running maximum of any line's accumulated
	// coherence latency in the current window; see MaxLineContention.
	maxContention uint32
	// lineShift converts byte addresses to line addresses when LineSize
	// is a power of two (the common case); negative selects division.
	lineShift int
	rng       *prng.Xorshift64
	stats     Stats
}

// New builds a hierarchy from the configuration.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.Cores < 1 || cfg.Cores > 32 {
		return nil, fmt.Errorf("cache: cores must be in [1, 32], got %d", cfg.Cores)
	}
	if cfg.Obstinacy < 0 || cfg.Obstinacy > 1 {
		return nil, fmt.Errorf("cache: obstinacy %v out of [0, 1]", cfg.Obstinacy)
	}
	if cfg.CoherenceLat == 0 {
		cfg.CoherenceLat = 90
	}
	if cfg.CoresPerSocket < 0 {
		return nil, fmt.Errorf("cache: negative CoresPerSocket")
	}
	if cfg.RemoteCoherenceLat == 0 {
		cfg.RemoteCoherenceLat = cfg.CoherenceLat * 5 / 2
	}
	h := &Hierarchy{
		cfg:       cfg,
		l1:        make([]*level, cfg.Cores),
		l2:        make([]*level, cfg.Cores),
		lineShift: -1,
		rng:       prng.NewXorshift64(cfg.Seed ^ 0x0B57A1),
	}
	if ls := cfg.LineSize; ls > 0 && ls&(ls-1) == 0 {
		for s := 0; ; s++ {
			if 1<<s == ls {
				h.lineShift = s
				break
			}
		}
	}
	var err error
	for c := 0; c < cfg.Cores; c++ {
		if h.l1[c], err = newLevel(cfg.L1Size, cfg.L1Assoc, cfg.LineSize, cfg.L1Lat); err != nil {
			return nil, err
		}
		if h.l2[c], err = newLevel(cfg.L2Size, cfg.L2Assoc, cfg.LineSize, cfg.L2Lat); err != nil {
			return nil, err
		}
	}
	if h.l3, err = newLevel(cfg.L3Size, cfg.L3Assoc, cfg.LineSize, cfg.L3Lat); err != nil {
		return nil, err
	}
	return h, nil
}

// Config returns the hierarchy's configuration (with defaults applied).
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters and the per-line contention window
// without disturbing cache contents, allowing measurement after warmup.
func (h *Hierarchy) ResetStats() {
	h.stats = Stats{}
	h.epoch++
	h.maxContention = 0
}

// MaxLineContention returns the largest accumulated coherence-transaction
// latency (cycles) any single model line received since the last
// ResetStats. Same-line transactions serialize in hardware, so this bounds
// the window's wall time from below; cross-socket transactions weigh more.
func (h *Hierarchy) MaxLineContention() uint32 {
	return h.maxContention
}

// contend records one coherence transaction of the given latency on a
// model line.
func (h *Hierarchy) contend(ls *lineState, lat int) {
	if ls.epoch != h.epoch {
		ls.epoch = h.epoch
		ls.contention = 0
	}
	ls.contention += uint32(lat)
	if ls.contention > h.maxContention {
		h.maxContention = ls.contention
	}
}

// lineOf converts a byte address to a line address.
func (h *Hierarchy) lineOf(addr uint64) uint64 {
	if h.lineShift >= 0 {
		return addr >> uint(h.lineShift)
	}
	return addr / uint64(h.cfg.LineSize)
}

// socketOf returns the NUMA socket of a core.
func (h *Hierarchy) socketOf(core int) int {
	if h.cfg.CoresPerSocket <= 0 {
		return 0
	}
	return core / h.cfg.CoresPerSocket
}

// cohLat returns the coherence round-trip latency between two cores.
func (h *Hierarchy) cohLat(a, b int) int {
	if h.socketOf(a) != h.socketOf(b) {
		return h.cfg.RemoteCoherenceLat
	}
	return h.cfg.CoherenceLat
}

// Access performs one memory access and returns its latency in cycles.
func (h *Hierarchy) Access(core int, addr uint64, write, model bool) int {
	lat, _ := h.AccessInfo(core, addr, write, model)
	return lat
}

// AccessInfo performs one memory access by core to byte address addr and
// returns its latency in cycles plus whether it was a coherence event (a
// dirty-remote transfer or an invalidation of real remote copies). model
// marks accesses to the model region, the only region the obstinate cache
// applies to (the paper proposes enabling it per-page).
func (h *Hierarchy) AccessInfo(core int, addr uint64, write, model bool) (lat int, coherent bool) {
	la := h.lineOf(addr)
	h.stats.Accesses++
	if write {
		lat, coherent = h.write(core, la, model)
	} else {
		lat, coherent = h.read(core, la, model)
	}
	h.stats.Cycles += uint64(lat)
	return lat, coherent
}

func (h *Hierarchy) read(core int, la uint64, model bool) (int, bool) {
	l1, l2 := h.l1[core], h.l2[core]
	if ln := l1.lookup(la); ln != nil {
		l1.touch(ln)
		if ln.stale {
			h.stats.StaleReads++
		}
		h.stats.L1Hits++
		return h.cfg.L1Lat, false
	}
	if ln := l2.lookup(la); ln != nil {
		l2.touch(ln)
		if ln.prefetched {
			ln.prefetched = false
			h.stats.PrefetchUseful++
		}
		st, stale := ln.state, ln.stale
		h.fillL1(core, la, st, model, stale)
		h.stats.L2Hits++
		return h.cfg.L2Lat, false
	}
	// Private miss: consult the shared level.
	lat, coh := h.fetchShared(core, la, h.table.get(la), model, false)
	h.maybePrefetch(core, la, model)
	return lat, coh
}

func (h *Hierarchy) write(core int, la uint64, model bool) (int, bool) {
	l1 := h.l1[core]
	ls := h.table.get(la)
	if ln := l1.lookup(la); ln != nil && (ln.state == Modified || ln.state == Exclusive) {
		l1.touch(ln)
		ln.state = Modified
		ln.stale = false
		h.stats.L1Hits++
		ls.owner = uint8(core + 1)
		return h.cfg.L1Lat, false
	}
	// Shared or absent: an upgrade or fetch-for-ownership must go
	// through the shared level and invalidate remote copies.
	dropped, invLat := h.invalidateOthers(core, la, ls, model)
	lat, coh := 0, dropped > 0
	if ln := l1.lookup(la); ln != nil { // held in S: upgrade
		ln.state = Modified
		ln.stale = false
		l1.touch(ln)
		h.stats.Upgrades++
		lat = h.cfg.L3Lat
	} else if ln := h.l2[core].lookup(la); ln != nil {
		ln.state = Modified
		ln.stale = false
		if ln.prefetched {
			ln.prefetched = false
			h.stats.PrefetchUseful++
		}
		h.l2[core].touch(ln)
		h.fillL1(core, la, Modified, model, false)
		h.stats.Upgrades++
		lat = h.cfg.L3Lat
	} else {
		var fcoh bool
		lat, fcoh = h.fetchShared(core, la, ls, model, true)
		coh = coh || fcoh
	}
	if coh {
		if invLat > lat {
			lat = invLat
		}
		if model {
			h.contend(ls, lat)
		}
	}
	ls.sharers = 1 << uint(core)
	ls.owner = uint8(core + 1)
	return lat, coh
}

// fetchShared services a private-cache miss from L3 or memory and fills
// the private levels. forOwnership fills in Modified state. A dirty-remote
// line triggers a cross-core transfer at CoherenceLat.
func (h *Hierarchy) fetchShared(core int, la uint64, ls *lineState, model, forOwnership bool) (int, bool) {
	lat := h.cfg.L3Lat
	coh := false
	if o := int(ls.owner) - 1; o >= 0 && o != core && h.holdsModified(o, la) {
		// Dirty-remote transfer: the owner's copy is downgraded (or
		// invalidated below, for ownership) and forwarded. Crossing a
		// socket boundary pays the QPI round trip.
		lat = h.cohLat(core, o)
		coh = true
		h.downgradeCore(o, la)
		ls.owner = 0
		h.stats.DirtyTransfers++
		h.stats.L3Hits++
		if model {
			h.contend(ls, lat)
		}
	} else if ln := h.l3.lookup(la); ln == nil {
		lat = h.cfg.DRAMLat
		h.stats.DRAMFills++
		h.stats.DRAMBytes += uint64(h.cfg.LineSize)
		h.insertL3(la, model)
	} else {
		h.l3.touch(ln)
		h.stats.L3Hits++
	}
	st := Shared
	if forOwnership {
		st = Modified
	} else if h.othersHolding(core, la, ls) == 0 {
		st = Exclusive
	} else {
		// MESI: a read while another core holds the line in E or M
		// downgrades the remote copies to S.
		h.downgradeOthers(core, la, ls)
	}
	h.fillL2(core, la, st, model)
	h.fillL1(core, la, st, model, false)
	ls.sharers |= 1 << uint(core)
	return lat, coh
}

// holdsModified reports whether core c holds la in Modified state.
func (h *Hierarchy) holdsModified(c int, la uint64) bool {
	if ln := h.l1[c].lookup(la); ln != nil && ln.state == Modified {
		return true
	}
	if ln := h.l2[c].lookup(la); ln != nil && ln.state == Modified {
		return true
	}
	return false
}

// othersHolding returns a mask of other cores that actually hold la,
// scrubbing stale directory bits as a side effect.
func (h *Hierarchy) othersHolding(core int, la uint64, ls *lineState) uint32 {
	sharers := ls.sharers
	var actual uint32
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core || sharers&(1<<uint(c)) == 0 {
			continue
		}
		if h.l1[c].lookup(la) != nil || h.l2[c].lookup(la) != nil {
			actual |= 1 << uint(c)
		}
	}
	ls.sharers = actual | (sharers & (1 << uint(core)))
	return actual
}

// invalidateOthers delivers invalidates to every other core actually
// holding la, returning how many copies were dropped and the worst-case
// round-trip latency among them (cross-socket invalidations are slower).
// With probability q an invalidate for a model line is ignored and the
// remote copy retained (stale) in Shared state — the obstinate cache.
func (h *Hierarchy) invalidateOthers(writer int, la uint64, ls *lineState, model bool) (dropped, lat int) {
	actual := h.othersHolding(writer, la, ls)
	if actual == 0 {
		return 0, 0
	}
	for c := 0; c < h.cfg.Cores; c++ {
		if c == writer || actual&(1<<uint(c)) == 0 {
			continue
		}
		if model && h.cfg.Obstinacy > 0 && h.randFloat() < h.cfg.Obstinacy {
			h.stats.InvalidatesIgnored++
			// The remote copy survives in S, now stale. The
			// directory forgets it, exactly like a cache that
			// acked the invalidate without acting on it.
			h.markStale(c, la)
			continue
		}
		h.stats.Invalidates++
		h.dropLine(c, la)
		dropped++
		if l := h.cohLat(writer, c); l > lat {
			lat = l
		}
	}
	ls.sharers &= 1 << uint(writer)
	if o := int(ls.owner) - 1; o >= 0 && o != writer {
		ls.owner = 0
	}
	return dropped, lat
}

// downgradeOthers moves every other core's E/M copy of la to S (dirty data
// is considered written back to the shared level).
func (h *Hierarchy) downgradeOthers(reader int, la uint64, ls *lineState) {
	sharers := ls.sharers
	for c := 0; c < h.cfg.Cores; c++ {
		if c == reader || sharers&(1<<uint(c)) == 0 {
			continue
		}
		h.downgradeCore(c, la)
	}
	if o := int(ls.owner) - 1; o >= 0 && o != reader {
		ls.owner = 0
	}
}

// downgradeCore moves core c's copy of la to S.
func (h *Hierarchy) downgradeCore(c int, la uint64) {
	if ln := h.l1[c].lookup(la); ln != nil && ln.state != Shared {
		ln.state = Shared
	}
	if ln := h.l2[c].lookup(la); ln != nil && ln.state != Shared {
		ln.state = Shared
	}
}

// markStale downgrades core c's copy of la to a stale Shared line.
func (h *Hierarchy) markStale(c int, la uint64) {
	if ln := h.l1[c].lookup(la); ln != nil {
		ln.state = Shared
		ln.stale = true
	}
	if ln := h.l2[c].lookup(la); ln != nil {
		ln.state = Shared
		ln.stale = true
	}
}

// dropLine removes la from core c's private caches.
func (h *Hierarchy) dropLine(c int, la uint64) {
	if ln := h.l2[c].lookup(la); ln != nil && ln.prefetched {
		h.stats.PrefetchInvalidated++
	}
	h.l1[c].invalidate(la)
	h.l2[c].invalidate(la)
}

// maybePrefetch issues sequential prefetches after a demand miss.
func (h *Hierarchy) maybePrefetch(core int, la uint64, model bool) {
	if !h.cfg.Prefetch || h.cfg.PrefetchDegree <= 0 {
		return
	}
	l2 := h.l2[core]
	for k := 1; k <= h.cfg.PrefetchDegree; k++ {
		pa := la + uint64(k)
		if l2.lookup(pa) != nil || h.l1[core].lookup(pa) != nil {
			continue
		}
		h.stats.PrefetchIssued++
		if model {
			h.stats.PrefetchIssuedModel++
		}
		ps := h.table.get(pa)
		if o := int(ps.owner) - 1; o >= 0 && o != core && h.holdsModified(o, pa) {
			// The line is being actively written by another core:
			// any prefetched copy is invalidated before use, so
			// the prefetch achieves nothing but snoop traffic on
			// an already-contended line.
			h.stats.PrefetchFutile++
			h.stats.PrefetchInvalidated++
			if model {
				h.contend(ps, h.cfg.CoherenceLat)
			}
			continue
		}
		if h.l3.lookup(pa) == nil {
			h.stats.DRAMBytes += uint64(h.cfg.LineSize)
			h.insertL3(pa, model)
		}
		ln, ev, had := l2.insert(pa, Shared, model)
		if had {
			h.handleL2Eviction(core, ev)
		}
		ln.prefetched = true
		ps.sharers |= 1 << uint(core)
	}
}

// fillL1 inserts la into core's L1, handling the eviction.
func (h *Hierarchy) fillL1(core int, la uint64, st State, model, stale bool) {
	ln, ev, had := h.l1[core].insert(la, st, model)
	ln.stale = stale
	if had && ev.state == Modified {
		// Dirty L1 victim falls back to L2.
		if ln := h.l2[core].lookup(ev.tag); ln != nil {
			ln.state = Modified
		} else {
			_, ev2, had2 := h.l2[core].insert(ev.tag, Modified, ev.model)
			if had2 {
				h.handleL2Eviction(core, ev2)
			}
		}
	}
}

// fillL2 inserts la into core's L2, handling the eviction.
func (h *Hierarchy) fillL2(core int, la uint64, st State, model bool) {
	_, ev, had := h.l2[core].insert(la, st, model)
	if had {
		h.handleL2Eviction(core, ev)
	}
}

// handleL2Eviction writes back dirty L2 victims into L3.
func (h *Hierarchy) handleL2Eviction(core int, ev line) {
	if ev.state == Modified {
		if h.l3.lookup(ev.tag) == nil {
			h.insertL3(ev.tag, ev.model)
		}
	}
}

// insertL3 fills la into the shared level, writing back dirty victims to
// memory.
func (h *Hierarchy) insertL3(la uint64, model bool) {
	_, ev, had := h.l3.insert(la, Shared, model)
	if had {
		if ev.state == Modified {
			h.stats.Writebacks++
			h.stats.DRAMBytes += uint64(h.cfg.LineSize)
		}
		// The line left the shared level: forget its directory and
		// dirty-owner state (contention history survives the window).
		es := h.table.get(ev.tag)
		es.sharers = 0
		es.owner = 0
	}
}

// randFloat returns a uniform sample in [0, 1).
func (h *Hierarchy) randFloat() float64 {
	return float64(h.rng.Uint32()>>8) * (1.0 / (1 << 24))
}
