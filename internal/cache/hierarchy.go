package cache

import (
	"fmt"
	"math/bits"

	"buckwild/internal/prng"
)

// Hierarchy is the full simulated memory system: per-core L1 and L2, a
// shared L3 with a sharer directory, the sequential prefetcher, and the
// obstinate-cache behaviour.
//
// Coherence events — dirty-remote transfers and invalidation broadcasts —
// are what make small shared models slow (the communication-bound regime of
// Section 4), so the hierarchy distinguishes them from plain capacity
// misses: AccessInfo reports whether an access was a coherence event, and
// such events are charged the cross-core CoherenceLat.
type Hierarchy struct {
	cfg Config
	l1  []*level
	l2  []*level
	l3  *level
	// table holds the per-line coherence record (sharer directory, dirty
	// owner, contention window) in a paged store; see lineState.
	table lineTable
	// epoch tags the current measurement window: contention fields
	// stamped with an older epoch are logically zero (lazy ResetStats).
	epoch uint32
	// maxContention is the running maximum of any line's accumulated
	// coherence latency in the current window; see MaxLineContention.
	maxContention uint32
	// lineShift converts byte addresses to line addresses when LineSize
	// is a power of two (the common case); negative selects division.
	lineShift int
	rng       *prng.Xorshift64
	stats     Stats
}

// New builds a hierarchy from the configuration.
func New(cfg Config) (*Hierarchy, error) {
	if cfg.Cores < 1 || cfg.Cores > 32 {
		return nil, fmt.Errorf("cache: cores must be in [1, 32], got %d", cfg.Cores)
	}
	if cfg.Obstinacy < 0 || cfg.Obstinacy > 1 {
		return nil, fmt.Errorf("cache: obstinacy %v out of [0, 1]", cfg.Obstinacy)
	}
	if cfg.CoherenceLat == 0 {
		cfg.CoherenceLat = 90
	}
	if cfg.CoresPerSocket < 0 {
		return nil, fmt.Errorf("cache: negative CoresPerSocket")
	}
	if cfg.RemoteCoherenceLat == 0 {
		cfg.RemoteCoherenceLat = cfg.CoherenceLat * 5 / 2
	}
	h := &Hierarchy{
		cfg:       cfg,
		l1:        make([]*level, cfg.Cores),
		l2:        make([]*level, cfg.Cores),
		lineShift: -1,
		rng:       prng.NewXorshift64(cfg.Seed ^ 0x0B57A1),
	}
	if ls := cfg.LineSize; ls > 0 && ls&(ls-1) == 0 {
		for s := 0; ; s++ {
			if 1<<s == ls {
				h.lineShift = s
				break
			}
		}
	}
	var err error
	for c := 0; c < cfg.Cores; c++ {
		if h.l1[c], err = newLevel(cfg.L1Size, cfg.L1Assoc, cfg.LineSize, cfg.L1Lat); err != nil {
			return nil, err
		}
		if h.l2[c], err = newLevel(cfg.L2Size, cfg.L2Assoc, cfg.LineSize, cfg.L2Lat); err != nil {
			return nil, err
		}
	}
	if h.l3, err = newLevel(cfg.L3Size, cfg.L3Assoc, cfg.LineSize, cfg.L3Lat); err != nil {
		return nil, err
	}
	return h, nil
}

// Config returns the hierarchy's configuration (with defaults applied).
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns a copy of the counters.
func (h *Hierarchy) Stats() Stats { return h.stats }

// ResetStats zeroes the counters and the per-line contention window
// without disturbing cache contents, allowing measurement after warmup.
func (h *Hierarchy) ResetStats() {
	h.stats = Stats{}
	h.epoch++
	h.maxContention = 0
}

// MaxLineContention returns the largest accumulated coherence-transaction
// latency (cycles) any single model line received since the last
// ResetStats. Same-line transactions serialize in hardware, so this bounds
// the window's wall time from below; cross-socket transactions weigh more.
func (h *Hierarchy) MaxLineContention() uint32 {
	return h.maxContention
}

// contend records one coherence transaction of the given latency on a
// model line.
func (h *Hierarchy) contend(ls *lineState, lat int) {
	if ls.epoch != h.epoch {
		ls.epoch = h.epoch
		ls.contention = 0
	}
	ls.contention += uint32(lat)
	if ls.contention > h.maxContention {
		h.maxContention = ls.contention
	}
}

// lineOf converts a byte address to a line address.
func (h *Hierarchy) lineOf(addr uint64) uint64 {
	if h.lineShift >= 0 {
		return addr >> uint(h.lineShift)
	}
	return addr / uint64(h.cfg.LineSize)
}

// socketOf returns the NUMA socket of a core.
func (h *Hierarchy) socketOf(core int) int {
	if h.cfg.CoresPerSocket <= 0 {
		return 0
	}
	return core / h.cfg.CoresPerSocket
}

// cohLat returns the coherence round-trip latency between two cores.
func (h *Hierarchy) cohLat(a, b int) int {
	if h.socketOf(a) != h.socketOf(b) {
		return h.cfg.RemoteCoherenceLat
	}
	return h.cfg.CoherenceLat
}

// Access performs one memory access and returns its latency in cycles.
func (h *Hierarchy) Access(core int, addr uint64, write, model bool) int {
	lat, _ := h.AccessInfo(core, addr, write, model)
	return lat
}

// AccessInfo performs one memory access by core to byte address addr and
// returns its latency in cycles plus whether it was a coherence event (a
// dirty-remote transfer or an invalidation of real remote copies). model
// marks accesses to the model region, the only region the obstinate cache
// applies to (the paper proposes enabling it per-page).
func (h *Hierarchy) AccessInfo(core int, addr uint64, write, model bool) (lat int, coherent bool) {
	la := h.lineOf(addr)
	h.stats.Accesses++
	if write {
		lat, coherent = h.write(core, la, model)
	} else {
		lat, coherent = h.read(core, la, model)
	}
	h.stats.Cycles += uint64(lat)
	return lat, coherent
}

func (h *Hierarchy) read(core int, la uint64, model bool) (int, bool) {
	ls := h.table.get(la)
	bit := uint32(1) << uint(core)
	if ls.l1p&bit != 0 {
		l1 := h.l1[core]
		ln := l1.lookup(la)
		l1.touch(ln)
		if ln.stale {
			h.stats.StaleReads++
		}
		h.stats.L1Hits++
		return h.cfg.L1Lat, false
	}
	if ls.l2p&bit != 0 {
		l2 := h.l2[core]
		ln := l2.lookup(la)
		l2.touch(ln)
		if ln.prefetched {
			ln.prefetched = false
			h.stats.PrefetchUseful++
		}
		st, stale := ln.state, ln.stale
		h.fillL1(core, la, st, model, stale, ls)
		h.stats.L2Hits++
		return h.cfg.L2Lat, false
	}
	// Private miss: consult the shared level.
	lat, coh := h.fetchShared(core, la, ls, model, false)
	h.maybePrefetch(core, la, model)
	return lat, coh
}

func (h *Hierarchy) write(core int, la uint64, model bool) (int, bool) {
	ls := h.table.get(la)
	bit := uint32(1) << uint(core)
	var ln *line
	if ls.l1p&bit != 0 {
		l1 := h.l1[core]
		ln = l1.lookup(la)
		if ln.state == Modified || ln.state == Exclusive {
			l1.touch(ln)
			ln.state = Modified
			ln.stale = false
			h.stats.L1Hits++
			ls.owner = uint8(core + 1)
			return h.cfg.L1Lat, false
		}
	}
	// Shared or absent: an upgrade or fetch-for-ownership must go
	// through the shared level and invalidate remote copies.
	dropped, invLat := h.invalidateOthers(core, la, ls, model)
	lat, coh := 0, dropped > 0
	if ln != nil {
		// Held in S: upgrade. The pointer from the first probe is still
		// valid because invalidateOthers never touches the writer's own
		// caches.
		ln.state = Modified
		ln.stale = false
		h.l1[core].touch(ln)
		h.stats.Upgrades++
		lat = h.cfg.L3Lat
	} else if ls.l2p&bit != 0 {
		l2 := h.l2[core]
		ln2 := l2.lookup(la)
		ln2.state = Modified
		ln2.stale = false
		if ln2.prefetched {
			ln2.prefetched = false
			h.stats.PrefetchUseful++
		}
		l2.touch(ln2)
		h.fillL1(core, la, Modified, model, false, ls)
		h.stats.Upgrades++
		lat = h.cfg.L3Lat
	} else {
		var fcoh bool
		lat, fcoh = h.fetchShared(core, la, ls, model, true)
		coh = coh || fcoh
	}
	if coh {
		if invLat > lat {
			lat = invLat
		}
		if model {
			h.contend(ls, lat)
		}
	}
	ls.sharers = 1 << uint(core)
	ls.owner = uint8(core + 1)
	return lat, coh
}

// fetchShared services a private-cache miss from L3 or memory and fills
// the private levels. forOwnership fills in Modified state. A dirty-remote
// line triggers a cross-core transfer at CoherenceLat.
func (h *Hierarchy) fetchShared(core int, la uint64, ls *lineState, model, forOwnership bool) (int, bool) {
	lat := h.cfg.L3Lat
	coh := false
	if o := int(ls.owner) - 1; o >= 0 && o != core && ls.present(o) && h.holdsModified(o, la) {
		// Dirty-remote transfer: the owner's copy is downgraded (or
		// invalidated below, for ownership) and forwarded. Crossing a
		// socket boundary pays the QPI round trip.
		lat = h.cohLat(core, o)
		coh = true
		h.downgradeCore(o, la, ls)
		ls.owner = 0
		h.stats.DirtyTransfers++
		h.stats.L3Hits++
		if model {
			h.contend(ls, lat)
		}
	} else if ls.l3way1 == 0 {
		lat = h.cfg.DRAMLat
		h.stats.DRAMFills++
		h.stats.DRAMBytes += uint64(h.cfg.LineSize)
		h.insertL3(la, model, ls)
	} else {
		h.l3.touch(&h.l3.lines[ls.l3way1-1])
		h.stats.L3Hits++
	}
	st := Shared
	if forOwnership {
		st = Modified
	} else if h.othersHolding(core, ls) == 0 {
		st = Exclusive
	} else {
		// MESI: a read while another core holds the line in E or M
		// downgrades the remote copies to S.
		h.downgradeOthers(core, la, ls)
	}
	h.fillL2(core, la, st, model, ls)
	h.fillL1(core, la, st, model, false, ls)
	ls.sharers |= 1 << uint(core)
	return lat, coh
}

// holdsModified reports whether core c holds la in Modified state. Callers
// gate it on ls.present(c), so the set scans nearly always hit.
func (h *Hierarchy) holdsModified(c int, la uint64) bool {
	if ln := h.l1[c].lookup(la); ln != nil && ln.state == Modified {
		return true
	}
	if ln := h.l2[c].lookup(la); ln != nil && ln.state == Modified {
		return true
	}
	return false
}

// othersHolding returns a mask of other cores that actually hold the line,
// scrubbing stale directory bits as a side effect. The exact presence masks
// make this one intersection; it is equivalent to probing every sharer's
// L1 and L2 as the pre-presence code did.
func (h *Hierarchy) othersHolding(core int, ls *lineState) uint32 {
	bit := uint32(1) << uint(core)
	actual := ls.sharers & (ls.l1p | ls.l2p) &^ bit
	ls.sharers = actual | (ls.sharers & bit)
	return actual
}

// invalidateOthers delivers invalidates to every other core actually
// holding la, returning how many copies were dropped and the worst-case
// round-trip latency among them (cross-socket invalidations are slower).
// With probability q an invalidate for a model line is ignored and the
// remote copy retained (stale) in Shared state — the obstinate cache.
func (h *Hierarchy) invalidateOthers(writer int, la uint64, ls *lineState, model bool) (dropped, lat int) {
	actual := h.othersHolding(writer, ls)
	if actual == 0 {
		return 0, 0
	}
	// Iterate cores in ascending order (TrailingZeros walks the mask
	// lowest bit first) so the obstinacy random draws happen in the same
	// order as the pre-presence per-core loop.
	for m := actual; m != 0; m &= m - 1 {
		c := bits.TrailingZeros32(m)
		if model && h.cfg.Obstinacy > 0 && h.randFloat() < h.cfg.Obstinacy {
			h.stats.InvalidatesIgnored++
			// The remote copy survives in S, now stale. The
			// directory forgets it, exactly like a cache that
			// acked the invalidate without acting on it.
			h.markStale(c, la, ls)
			continue
		}
		h.stats.Invalidates++
		h.dropLine(c, la, ls)
		dropped++
		if l := h.cohLat(writer, c); l > lat {
			lat = l
		}
	}
	ls.sharers &= 1 << uint(writer)
	if o := int(ls.owner) - 1; o >= 0 && o != writer {
		ls.owner = 0
	}
	return dropped, lat
}

// downgradeOthers moves every other core's E/M copy of la to S (dirty data
// is considered written back to the shared level).
func (h *Hierarchy) downgradeOthers(reader int, la uint64, ls *lineState) {
	m := ls.sharers & (ls.l1p | ls.l2p) &^ (1 << uint(reader))
	for ; m != 0; m &= m - 1 {
		h.downgradeCore(bits.TrailingZeros32(m), la, ls)
	}
	if o := int(ls.owner) - 1; o >= 0 && o != reader {
		ls.owner = 0
	}
}

// downgradeCore moves core c's copy of la to S.
func (h *Hierarchy) downgradeCore(c int, la uint64, ls *lineState) {
	bit := uint32(1) << uint(c)
	if ls.l1p&bit != 0 {
		if ln := h.l1[c].lookup(la); ln.state != Shared {
			ln.state = Shared
		}
	}
	if ls.l2p&bit != 0 {
		if ln := h.l2[c].lookup(la); ln.state != Shared {
			ln.state = Shared
		}
	}
}

// markStale downgrades core c's copy of la to a stale Shared line.
func (h *Hierarchy) markStale(c int, la uint64, ls *lineState) {
	bit := uint32(1) << uint(c)
	if ls.l1p&bit != 0 {
		ln := h.l1[c].lookup(la)
		ln.state = Shared
		ln.stale = true
	}
	if ls.l2p&bit != 0 {
		ln := h.l2[c].lookup(la)
		ln.state = Shared
		ln.stale = true
	}
}

// dropLine removes la from core c's private caches, clearing its presence
// bits.
func (h *Hierarchy) dropLine(c int, la uint64, ls *lineState) {
	bit := uint32(1) << uint(c)
	if ls.l2p&bit != 0 {
		ln := h.l2[c].lookup(la)
		if ln.prefetched {
			h.stats.PrefetchInvalidated++
		}
		ln.state = Invalid
		ln.tag1 = 0
		ln.lru = 0
		ls.l2p &^= bit
	}
	if ls.l1p&bit != 0 {
		ln := h.l1[c].lookup(la)
		ln.state = Invalid
		ln.tag1 = 0
		ln.lru = 0
		ls.l1p &^= bit
	}
}

// maybePrefetch issues sequential prefetches after a demand miss.
func (h *Hierarchy) maybePrefetch(core int, la uint64, model bool) {
	if !h.cfg.Prefetch || h.cfg.PrefetchDegree <= 0 {
		return
	}
	bit := uint32(1) << uint(core)
	l2 := h.l2[core]
	for k := 1; k <= h.cfg.PrefetchDegree; k++ {
		pa := la + uint64(k)
		ps := h.table.get(pa)
		if (ps.l1p|ps.l2p)&bit != 0 {
			continue
		}
		h.stats.PrefetchIssued++
		if model {
			h.stats.PrefetchIssuedModel++
		}
		if o := int(ps.owner) - 1; o >= 0 && o != core && ps.present(o) && h.holdsModified(o, pa) {
			// The line is being actively written by another core:
			// any prefetched copy is invalidated before use, so
			// the prefetch achieves nothing but snoop traffic on
			// an already-contended line.
			h.stats.PrefetchFutile++
			h.stats.PrefetchInvalidated++
			if model {
				h.contend(ps, h.cfg.CoherenceLat)
			}
			continue
		}
		if ps.l3way1 == 0 {
			h.stats.DRAMBytes += uint64(h.cfg.LineSize)
			h.insertL3(pa, model, ps)
		}
		ln, _, ev, had := l2.insert(pa, Shared, model)
		if had {
			h.evictedL2(core, ev)
		}
		ln.prefetched = true
		ps.l2p |= bit
		ps.sharers |= bit
	}
}

// fillL1 inserts la into core's L1, handling the eviction. ls is la's
// coherence record (presence bookkeeping).
func (h *Hierarchy) fillL1(core int, la uint64, st State, model, stale bool, ls *lineState) {
	bit := uint32(1) << uint(core)
	ln, _, ev, had := h.l1[core].insert(la, st, model)
	ln.stale = stale
	ls.l1p |= bit
	if had {
		evAddr := ev.addr()
		es := h.table.get(evAddr)
		es.l1p &^= bit
		if ev.state == Modified {
			// Dirty L1 victim falls back to L2.
			if es.l2p&bit != 0 {
				h.l2[core].lookup(evAddr).state = Modified
			} else {
				_, _, ev2, had2 := h.l2[core].insert(evAddr, Modified, ev.model)
				es.l2p |= bit
				if had2 {
					h.evictedL2(core, ev2)
				}
			}
		}
	}
}

// fillL2 inserts la into core's L2, handling the eviction.
func (h *Hierarchy) fillL2(core int, la uint64, st State, model bool, ls *lineState) {
	_, _, ev, had := h.l2[core].insert(la, st, model)
	ls.l2p |= 1 << uint(core)
	if had {
		h.evictedL2(core, ev)
	}
}

// evictedL2 clears presence for an L2 victim and writes dirty victims back
// into the shared level.
func (h *Hierarchy) evictedL2(core int, ev line) {
	evAddr := ev.addr()
	es := h.table.get(evAddr)
	es.l2p &^= 1 << uint(core)
	if ev.state == Modified && es.l3way1 == 0 {
		h.insertL3(evAddr, ev.model, es)
	}
}

// insertL3 fills la into the shared level, writing back dirty victims to
// memory. ls is la's coherence record; its l3way1 handle is set here.
func (h *Hierarchy) insertL3(la uint64, model bool, ls *lineState) {
	_, way, ev, had := h.l3.insert(la, Shared, model)
	ls.l3way1 = way + 1
	if had {
		if ev.state == Modified {
			h.stats.Writebacks++
			h.stats.DRAMBytes += uint64(h.cfg.LineSize)
		}
		// The line left the shared level: forget its directory,
		// dirty-owner and L3-position state (contention history
		// survives the window). Presence in private caches is real and
		// stays: this hierarchy is non-inclusive.
		es := h.table.get(ev.addr())
		es.sharers = 0
		es.owner = 0
		es.l3way1 = 0
	}
}

// randFloat returns a uniform sample in [0, 1).
func (h *Hierarchy) randFloat() float64 {
	return float64(h.rng.Uint32()>>8) * (1.0 / (1 << 24))
}
