package cache

// lineState folds the per-line coherence metadata that used to live in
// three separate map[uint64] tables (sharer directory, dirty owner and the
// contention window) into one 16-byte record, so the per-access hot path
// touches a single memory location instead of paying three hash lookups.
type lineState struct {
	// sharers is the directory: a bit per core that may hold the line.
	// Bits can be stale after silent evictions; writers verify actual
	// presence before paying for invalidations.
	sharers uint32
	// contention accumulates coherence-transaction latency on a model
	// line within the current measurement window. epoch implements the
	// ResetStats window reset lazily: a record whose epoch differs from
	// the hierarchy's has logically-zero contention.
	contention uint32
	epoch      uint32
	// owner is 1+core of the core holding the line in Modified state, or
	// 0 when none, so the zero value is an empty record.
	owner uint8
}

const (
	// pageBits sizes a page at 4096 line records (64 KiB).
	pageBits  = 12
	pageLines = 1 << pageBits
	pageMask  = pageLines - 1
	// lowLines covers line addresses below 2^22 (the model region, which
	// trace places at address 0) with a flat page-pointer array; higher
	// addresses (the per-core dataset windows at 1 TiB) fall back to a
	// paged map behind a last-page cache, which the sequential dataset
	// streams hit almost always.
	lowLines = 1 << 22
)

type linePage [pageLines]lineState

// lineTable is a paged line-state store. Page pointers are stable once
// allocated, so *lineState references stay valid across later inserts. A
// small direct-mapped cache in front of the high map absorbs the streaming
// dataset accesses and the L3-eviction scrubs of recently-dead pages.
type lineTable struct {
	low   [lowLines >> pageBits]*linePage
	high  map[uint64]*linePage
	cache [16]struct {
		key  uint64
		page *linePage
	}
}

// get returns the record for line address la, allocating its page on first
// touch.
func (t *lineTable) get(la uint64) *lineState {
	if la < lowLines {
		p := t.low[la>>pageBits]
		if p == nil {
			p = new(linePage)
			t.low[la>>pageBits] = p
		}
		return &p[la&pageMask]
	}
	k := la >> pageBits
	c := &t.cache[k&uint64(len(t.cache)-1)]
	if c.page != nil && c.key == k {
		return &c.page[la&pageMask]
	}
	if t.high == nil {
		t.high = make(map[uint64]*linePage)
	}
	p := t.high[k]
	if p == nil {
		p = new(linePage)
		t.high[k] = p
	}
	c.key, c.page = k, p
	return &p[la&pageMask]
}
