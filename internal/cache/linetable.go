package cache

// lineState folds the per-line coherence metadata that used to live in
// three separate map[uint64] tables (sharer directory, dirty owner and the
// contention window) into one record, so the per-access hot path touches a
// single memory location instead of paying three hash lookups.
//
// Besides the directory, the record carries *exact* presence information —
// which private caches hold the line right now, and where it sits in the
// shared level — maintained at every fill, eviction and invalidation. The
// hierarchy uses it to skip set scans that are guaranteed to miss (the
// dominant cost of the simulator before this existed) and to answer
// othersHolding with one mask intersection instead of 2×Cores probes.
// Presence is distinct from the sharers directory on purpose: the directory
// is allowed to be forgetful (an obstinate cache that ignored an invalidate
// is deliberately dropped from it while still holding the line), so the two
// cannot be merged without changing coherence behaviour.
type lineState struct {
	// sharers is the directory: a bit per core that may hold the line.
	// Bits can be stale after silent evictions; writers verify actual
	// presence before paying for invalidations.
	sharers uint32
	// contention accumulates coherence-transaction latency on a model
	// line within the current measurement window. epoch implements the
	// ResetStats window reset lazily: a record whose epoch differs from
	// the hierarchy's has logically-zero contention.
	contention uint32
	epoch      uint32
	// l1p and l2p are exact presence masks: bit c is set iff core c's
	// L1 (resp. L2) holds the line in a non-Invalid state right now.
	l1p uint32
	l2p uint32
	// l3way1 is 1 + the line's way index in the shared level's line
	// array when the line is present there, else 0. It turns L3 hits
	// into a direct array access instead of a 20-way set scan.
	l3way1 uint32
	// owner is 1+core of the core holding the line in Modified state, or
	// 0 when none, so the zero value is an empty record.
	owner uint8
}

// present reports whether core c's private caches hold the line.
func (ls *lineState) present(c int) bool {
	return (ls.l1p|ls.l2p)&(1<<uint(c)) != 0
}

const (
	// pageBits sizes a page at 4096 line records (64 KiB).
	pageBits  = 12
	pageLines = 1 << pageBits
	pageMask  = pageLines - 1
	// lowLines covers line addresses below 2^22 (the model region, which
	// trace places at address 0) with a flat page-pointer array; higher
	// addresses (the per-core dataset windows at 1 TiB) fall back to a
	// paged map behind a last-page cache, which the sequential dataset
	// streams hit almost always.
	lowLines = 1 << 22
)

type linePage [pageLines]lineState

// lineTable is a paged line-state store. Page pointers are stable once
// allocated, so *lineState references stay valid across later inserts. A
// small direct-mapped cache in front of the high map absorbs the streaming
// dataset accesses and the L3-eviction scrubs of recently-dead pages.
type lineTable struct {
	low   [lowLines >> pageBits]*linePage
	high  map[uint64]*linePage
	cache [16]struct {
		key  uint64
		page *linePage
	}
}

// get returns the record for line address la, allocating its page on first
// touch.
func (t *lineTable) get(la uint64) *lineState {
	if la < lowLines {
		p := t.low[la>>pageBits]
		if p == nil {
			p = new(linePage)
			t.low[la>>pageBits] = p
		}
		return &p[la&pageMask]
	}
	k := la >> pageBits
	c := &t.cache[k&uint64(len(t.cache)-1)]
	if c.page != nil && c.key == k {
		return &c.page[la&pageMask]
	}
	if t.high == nil {
		t.high = make(map[uint64]*linePage)
	}
	p := t.high[k]
	if p == nil {
		p = new(linePage)
		t.high[k] = p
	}
	c.key, c.page = k, p
	return &p[la&pageMask]
}
