// Package cache implements an event-driven multicore cache-hierarchy
// simulator in the role ZSim plays in the paper (Section 6.2): a MESI
// coherence protocol over per-core L1 and L2 caches and a shared L3, with
// the same geometry and latencies as the simulated Xeon E7-8890 v3
// (32 KB / 4-cycle L1, 256 KB / 12-cycle L2, 45 MB / 36-cycle shared L3).
//
// Two of the paper's mechanisms live here:
//
//   - a sequential hardware prefetcher that can be disabled (Section 5.3:
//     turning it off helps when the model is small, because prefetched
//     lines consume bandwidth and are often invalidated before use), and
//   - the obstinate cache (Section 6.2): when a private cache receives an
//     invalidate for a model line, with probability q (the obstinacy) it
//     retains the line in the shared state instead of invalidating it,
//     trading coherence (stale reads) for fewer stalls.
//
// Like ZSim, the simulator does not model bus congestion; invalidation
// stalls appear as extra shared-level round trips, which is sufficient to
// reproduce the small-model slowdown of Figure 6c.
package cache

import (
	"fmt"
	"sort"
)

// State is a MESI coherence state.
type State uint8

const (
	// Invalid: the line is not present/usable.
	Invalid State = iota
	// Shared: present, read-only, possibly in other caches.
	Shared
	// Exclusive: present, clean, in no other cache.
	Exclusive
	// Modified: present, dirty, in no other cache.
	Modified
)

// String names the state.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Config describes the hierarchy geometry and behaviour.
type Config struct {
	Cores    int
	LineSize int

	L1Size, L1Assoc, L1Lat int
	L2Size, L2Assoc, L2Lat int
	L3Size, L3Assoc, L3Lat int
	// DRAMLat is the miss-to-memory latency in cycles.
	DRAMLat int
	// CoherenceLat is the cross-core round-trip paid by coherence
	// events: dirty-remote transfers and invalidation broadcasts
	// (Haswell-EX snoop latency is ~90 cycles). Zero selects the
	// default of 90.
	CoherenceLat int
	// CoresPerSocket partitions the cores into NUMA sockets: coherence
	// events between cores in different sockets pay RemoteCoherenceLat
	// instead of CoherenceLat. Zero means a single socket.
	CoresPerSocket int
	// RemoteCoherenceLat is the cross-socket snoop round trip (QPI);
	// zero selects 2.5x CoherenceLat.
	RemoteCoherenceLat int

	// Obstinacy is the probability q of ignoring an invalidate for a
	// model line (Section 6.2). Zero gives standard MESI.
	Obstinacy float64
	// Prefetch enables the sequential L2 prefetcher.
	Prefetch bool
	// PrefetchDegree is how many subsequent lines each miss prefetches.
	PrefetchDegree int

	Seed uint64
}

// XeonConfig returns the paper's simulated machine: an 18-core processor
// with the cache characteristics of the Xeon E7-8890 v3.
func XeonConfig() Config {
	return Config{
		Cores:    18,
		LineSize: 64,
		L1Size:   32 << 10, L1Assoc: 4, L1Lat: 4,
		L2Size: 256 << 10, L2Assoc: 8, L2Lat: 12,
		L3Size: 45 << 20, L3Assoc: 20, L3Lat: 36,
		DRAMLat:        200,
		CoherenceLat:   90,
		Prefetch:       true,
		PrefetchDegree: 2,
	}
}

// Stats aggregates simulator counters.
type Stats struct {
	Accesses  uint64
	L1Hits    uint64
	L2Hits    uint64
	L3Hits    uint64
	DRAMFills uint64
	// Upgrades counts writes that had to invalidate remote copies.
	Upgrades uint64
	// DirtyTransfers counts reads served by forwarding another core's
	// Modified line (the expensive cross-core path).
	DirtyTransfers uint64
	// Invalidates counts invalidate messages delivered to private
	// caches; InvalidatesIgnored counts those the obstinate cache
	// dropped (retaining the line in S).
	Invalidates        uint64
	InvalidatesIgnored uint64
	// StaleReads counts reads served from a line an obstinate cache
	// kept after ignoring an invalidate.
	StaleReads uint64
	// Writebacks counts dirty evictions to memory.
	Writebacks uint64
	// PrefetchIssued / PrefetchUseful / PrefetchInvalidated track the
	// sequential prefetcher; PrefetchIssuedModel counts the subset
	// aimed at the shared model region, which contend at the coherence
	// directory.
	PrefetchIssued      uint64
	PrefetchIssuedModel uint64
	PrefetchUseful      uint64
	PrefetchInvalidated uint64
	// PrefetchFutile counts prefetches aimed at a line another core is
	// actively writing: the fetched copy is invalidated before use, so
	// the request only generates snoop traffic (the Section 5.3
	// pathology).
	PrefetchFutile uint64
	// DRAMBytes is total traffic to memory (fills + writebacks + prefetches).
	DRAMBytes uint64
	// Cycles is the sum of access latencies charged.
	Cycles uint64
}

// line is one cache way, packed into 16 bytes so a 4-way L1 set is exactly
// one host cache line and the 45 MB simulated L3 array stays half the size
// it would be with naturally-padded fields.
type line struct {
	// tag1 is 1 + the line address, so the zero value marks an empty way
	// and a freshly made([]line) level is valid without an init pass over
	// the 737280-line L3 array (hierarchies are built per simulation
	// point, so that pass used to be hot). Lookup still needs only one
	// compare per way: no reachable line address collides with tag1 == 0.
	tag1 uint64
	// lru is a per-level use counter (see level.renormalize for wrap).
	lru   uint32
	state State
	// model marks lines belonging to the model region (obstinacy
	// applies only to these); stale marks a line retained by an ignored
	// invalidate; prefetched marks lines brought in by the prefetcher
	// and not yet demanded.
	model, stale, prefetched bool
}

// addr recovers the line address of a valid (tag1 != 0) way.
func (ln *line) addr() uint64 { return ln.tag1 - 1 }

// level is one set-associative cache array.
type level struct {
	setMask int
	assoc   int
	lines   []line
	clock   uint32
	lat     int
}

func newLevel(size, assoc, lineSize, lat int) (*level, error) {
	if size <= 0 || assoc <= 0 || lineSize <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry")
	}
	nLines := size / lineSize
	if nLines < assoc {
		return nil, fmt.Errorf("cache: size %d too small for assoc %d", size, assoc)
	}
	sets := nLines / assoc
	// Round down to a power of two for cheap indexing.
	for sets&(sets-1) != 0 {
		sets--
	}
	return &level{
		setMask: sets - 1,
		assoc:   assoc,
		lines:   make([]line, sets*assoc),
		lat:     lat,
	}, nil
}

// setOf returns the slice of ways for the address's set.
func (l *level) setOf(lineAddr uint64) []line {
	s := int(lineAddr) & l.setMask
	return l.lines[s*l.assoc : (s+1)*l.assoc]
}

// lookup returns the way holding lineAddr, or nil.
func (l *level) lookup(lineAddr uint64) *line {
	set := l.setOf(lineAddr)
	t := lineAddr + 1
	for i := range set {
		if set[i].tag1 == t {
			return &set[i]
		}
	}
	return nil
}

// insert fills lineAddr, evicting the LRU way. It returns a pointer to the
// filled way, the way's index in the level's line array (the handle stored
// in lineState.l3way1 for O(1) shared-level hits), the evicted line (by
// value) and whether an eviction of a valid line occurred.
func (l *level) insert(lineAddr uint64, st State, model bool) (filled *line, way uint32, evicted line, hadVictim bool) {
	s := int(lineAddr) & l.setMask
	set := l.lines[s*l.assoc : (s+1)*l.assoc]
	// Empty ways always carry lru == 0 (tick counts from 1 and invalidate
	// resets the field), so a plain min-LRU scan selects the first empty
	// way when one exists — the same victim the explicit Invalid check
	// used to pick — with one branch per way instead of two.
	victim := 0
	min := set[0].lru
	for i := 1; i < len(set); i++ {
		if set[i].lru < min {
			min, victim = set[i].lru, i
		}
	}
	evicted = set[victim]
	hadVictim = evicted.state != Invalid
	set[victim] = line{tag1: lineAddr + 1, state: st, lru: l.tick(), model: model}
	return &set[victim], uint32(s*l.assoc + victim), evicted, hadVictim
}

// touch refreshes LRU for a hit way.
func (l *level) touch(ln *line) {
	ln.lru = l.tick()
}

// tick advances the LRU clock, renormalizing before the uint32 wraps.
func (l *level) tick() uint32 {
	l.clock++
	if l.clock == ^uint32(0) {
		l.renormalize()
	}
	return l.clock
}

// renormalize compresses the LRU counters while preserving their exact
// relative order (every live value came from a unique clock tick, so the
// rank mapping is a bijection and no victim choice ever changes). It runs
// once per ~4 billion touches of a level, which no single simulation
// approaches; the guard exists so the packed uint32 counter is safe even
// for pathological workloads.
func (l *level) renormalize() {
	ranks := make([]uint32, 0, len(l.lines))
	for i := range l.lines {
		ranks = append(ranks, l.lines[i].lru)
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	for i := range l.lines {
		lo, hi := 0, len(ranks)
		for lo < hi {
			mid := (lo + hi) / 2
			if ranks[mid] < l.lines[i].lru {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		l.lines[i].lru = uint32(lo) + 1
	}
	l.clock = uint32(len(ranks)) + 1
}

// invalidate removes lineAddr if present, returning the prior state.
func (l *level) invalidate(lineAddr uint64) State {
	if ln := l.lookup(lineAddr); ln != nil {
		st := ln.state
		ln.state = Invalid
		ln.tag1 = 0
		ln.lru = 0 // keep the empty-way ⇒ lru == 0 invariant for insert
		return st
	}
	return Invalid
}
