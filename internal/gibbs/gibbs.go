// Package gibbs implements asynchronous ("Hogwild") Gibbs sampling on an
// Ising model — the other member of the paper's family of lock-free
// asynchronous algorithms (De Sa, Ré, Olukotun, "Ensuring Rapid Mixing and
// Low Bias for Asynchronous Gibbs Sampling", cited in Section 2). Worker
// goroutines resample spins against possibly stale neighbour values without
// any locking; on fast-mixing (sub-critical) models the stationary
// distribution is provably close to the sequential sampler's, the same
// races-are-benign phenomenon Buckwild! relies on.
package gibbs

import (
	"fmt"
	"math"
	"sync"

	"buckwild/internal/prng"
)

// Ising is an L x L periodic-lattice Ising model at inverse temperature
// Beta with spins in {-1, +1}.
type Ising struct {
	L     int
	Beta  float64
	spins []int8
}

// NewIsing creates a model with spins initialized uniformly at random.
func NewIsing(l int, beta float64, seed uint64) (*Ising, error) {
	if l < 2 {
		return nil, fmt.Errorf("gibbs: lattice side must be >= 2")
	}
	if beta < 0 {
		return nil, fmt.Errorf("gibbs: negative beta")
	}
	m := &Ising{L: l, Beta: beta, spins: make([]int8, l*l)}
	g := prng.NewXorshift64(seed ^ 0x151196)
	for i := range m.spins {
		if g.Uint32()&1 == 0 {
			m.spins[i] = 1
		} else {
			m.spins[i] = -1
		}
	}
	return m, nil
}

// neighborSum returns the sum of the four neighbour spins of site (x, y).
func (m *Ising) neighborSum(x, y int) int {
	l := m.L
	up := m.spins[((y+l-1)%l)*l+x]
	down := m.spins[((y+1)%l)*l+x]
	left := m.spins[y*l+(x+l-1)%l]
	right := m.spins[y*l+(x+1)%l]
	return int(up) + int(down) + int(left) + int(right)
}

// resample draws site (x, y) from its conditional distribution using g.
func (m *Ising) resample(x, y int, g *prng.Xorshift64) {
	s := float64(m.neighborSum(x, y))
	pUp := 1 / (1 + math.Exp(-2*m.Beta*s))
	v := int8(-1)
	if float64(prng.Float32(g)) < pUp {
		v = 1
	}
	m.spins[y*m.L+x] = v
}

// Sweep performs one sequential systematic-scan Gibbs sweep.
func (m *Ising) Sweep(g *prng.Xorshift64) {
	for y := 0; y < m.L; y++ {
		for x := 0; x < m.L; x++ {
			m.resample(x, y, g)
		}
	}
}

// HogwildSweep performs one lattice's worth of updates split across
// workers, each resampling a random-site stream without synchronization.
// Neighbour reads may observe concurrent writes — the asynchronous Gibbs
// races under study.
func (m *Ising) HogwildSweep(workers int, seed uint64) error {
	if workers < 1 {
		return fmt.Errorf("gibbs: workers must be >= 1")
	}
	n := m.L * m.L
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := prng.NewXorshift64(seed ^ uint64(w+1)*0x9E3779B97F4A7C15)
			for k := 0; k < n/workers; k++ {
				site := int(g.Uint64() % uint64(n))
				m.resample(site%m.L, site/m.L, g)
			}
		}(w)
	}
	wg.Wait()
	return nil
}

// Magnetization returns the mean spin.
func (m *Ising) Magnetization() float64 {
	var s int
	for _, v := range m.spins {
		s += int(v)
	}
	return float64(s) / float64(len(m.spins))
}

// EnergyPerSite returns -sum_<ij> s_i s_j / N (each bond counted once).
func (m *Ising) EnergyPerSite() float64 {
	l := m.L
	var e int
	for y := 0; y < l; y++ {
		for x := 0; x < l; x++ {
			s := int(m.spins[y*l+x])
			right := int(m.spins[y*l+(x+1)%l])
			down := int(m.spins[((y+1)%l)*l+x])
			e -= s * (right + down)
		}
	}
	return float64(e) / float64(l*l)
}

// Estimate runs burn-in plus measurement sweeps and returns the mean
// energy per site and mean absolute magnetization, using the sequential
// sampler when workers == 1 and Hogwild otherwise.
func Estimate(l int, beta float64, workers, burn, measure int, seed uint64) (energy, absMag float64, err error) {
	if burn < 0 || measure < 1 {
		return 0, 0, fmt.Errorf("gibbs: need non-negative burn-in and positive measurement sweeps")
	}
	m, err := NewIsing(l, beta, seed)
	if err != nil {
		return 0, 0, err
	}
	g := prng.NewXorshift64(seed ^ 0xE57)
	step := func(i int) error {
		if workers == 1 {
			m.Sweep(g)
			return nil
		}
		return m.HogwildSweep(workers, seed+uint64(i)*0x61C88647)
	}
	for i := 0; i < burn; i++ {
		if err := step(i); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < measure; i++ {
		if err := step(burn + i); err != nil {
			return 0, 0, err
		}
		energy += m.EnergyPerSite()
		absMag += math.Abs(m.Magnetization())
	}
	return energy / float64(measure), absMag / float64(measure), nil
}
