package gibbs

import (
	"math"
	"testing"

	"buckwild/internal/prng"
)

func TestNewIsing(t *testing.T) {
	m, err := NewIsing(8, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	ups := 0
	for _, s := range m.spins {
		if s != 1 && s != -1 {
			t.Fatalf("spin %d not in {-1,+1}", s)
		}
		if s == 1 {
			ups++
		}
	}
	if ups == 0 || ups == 64 {
		t.Error("initial spins should be mixed")
	}
	if _, err := NewIsing(1, 0.3, 1); err == nil {
		t.Error("tiny lattice should fail")
	}
	if _, err := NewIsing(8, -1, 1); err == nil {
		t.Error("negative beta should fail")
	}
}

func TestObservablesRanges(t *testing.T) {
	m, _ := NewIsing(16, 0.3, 2)
	g := prng.NewXorshift64(3)
	for i := 0; i < 10; i++ {
		m.Sweep(g)
	}
	if mag := m.Magnetization(); mag < -1 || mag > 1 {
		t.Errorf("magnetization %v out of range", mag)
	}
	if e := m.EnergyPerSite(); e < -2 || e > 2 {
		t.Errorf("energy per site %v out of range", e)
	}
}

func TestInfiniteTemperatureIsUniform(t *testing.T) {
	// beta = 0: spins are independent fair coins; energy per site ~ 0.
	e, mag, err := Estimate(24, 0, 1, 20, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e) > 0.08 {
		t.Errorf("beta=0 energy per site = %v, want ~0", e)
	}
	if mag > 0.1 {
		t.Errorf("beta=0 |m| = %v, want small", mag)
	}
}

func TestLowTemperatureOrders(t *testing.T) {
	// Well above critical coupling (beta ~ 0.44 on the square lattice),
	// the model magnetizes and the energy approaches -2.
	_, mag, err := Estimate(16, 1.0, 1, 200, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if mag < 0.9 {
		t.Errorf("beta=1 |m| = %v, should be strongly ordered", mag)
	}
}

func TestHogwildMatchesSequentialSubcritical(t *testing.T) {
	// The De Sa et al. result: on fast-mixing (sub-critical) models,
	// asynchronous Gibbs has low bias — its observables match the
	// sequential sampler's.
	const l, beta = 24, 0.3
	eSeq, mSeq, err := Estimate(l, beta, 1, 100, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	eHog, mHog, err := Estimate(l, beta, 4, 100, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eSeq-eHog) > 0.1 {
		t.Errorf("energy bias too large: seq %v vs hogwild %v", eSeq, eHog)
	}
	if math.Abs(mSeq-mHog) > 0.1 {
		t.Errorf("|m| bias too large: seq %v vs hogwild %v", mSeq, mHog)
	}
}

func TestEstimateValidation(t *testing.T) {
	if _, _, err := Estimate(8, 0.3, 1, -1, 10, 1); err == nil {
		t.Error("negative burn-in should fail")
	}
	if _, _, err := Estimate(8, 0.3, 1, 1, 0, 1); err == nil {
		t.Error("zero measurement should fail")
	}
	if _, _, err := Estimate(1, 0.3, 1, 1, 1, 1); err == nil {
		t.Error("bad lattice should fail")
	}
	m, _ := NewIsing(8, 0.3, 1)
	if err := m.HogwildSweep(0, 1); err == nil {
		t.Error("zero workers should fail")
	}
}
