package cluster

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

func clusterData(t *testing.T) *dataset.DenseSet {
	t.Helper()
	ds, err := dataset.GenDense(dataset.DenseConfig{N: 64, M: 1024, P: kernels.F32, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func clusterRun(t *testing.T, ds *dataset.DenseSet, cfg Config) *core.Result {
	t.Helper()
	if cfg.Problem == 0 {
		cfg.Problem = core.Logistic
	}
	if cfg.StepSize == 0 {
		cfg.StepSize = 0.1
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	res, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func lastLoss(r *core.Result) float64 { return r.TrainLoss[len(r.TrainLoss)-1] }

func TestBothProtocolsConverge(t *testing.T) {
	ds := clusterData(t)
	for _, proto := range []Protocol{ParamServer, AllReduce} {
		res := clusterRun(t, ds, Config{Nodes: 4, Protocol: proto, WireBits: 32})
		if lastLoss(res) >= res.TrainLoss[0]*0.8 {
			t.Errorf("%v did not converge: %v", proto, res.TrainLoss)
		}
		if res.Steps == 0 || res.Cluster == nil {
			t.Fatalf("%v: missing steps or cluster stats", proto)
		}
	}
}

func TestQuantizedWireTracksFullPrecision(t *testing.T) {
	// The cluster restatement of the paper's C-term result: 8-bit
	// gradients on the wire with error feedback converge close to the
	// full-precision wire.
	ds := clusterData(t)
	for _, proto := range []Protocol{ParamServer, AllReduce} {
		full := clusterRun(t, ds, Config{Nodes: 4, Protocol: proto, WireBits: 32})
		q8 := clusterRun(t, ds, Config{
			Nodes: 4, Protocol: proto, WireBits: 8,
			Quant: kernels.QShared, ErrorFeedback: true,
		})
		if l8, lf := lastLoss(q8), lastLoss(full); l8 > lf*1.2+0.02 {
			t.Errorf("%v: 8-bit wire loss %v too far above full-precision %v", proto, l8, lf)
		}
	}
}

// TestDeterministicUnderSeed pins the discrete-event design promise:
// identical configs reproduce the run bit for bit — model, losses, and
// every wire counter.
func TestDeterministicUnderSeed(t *testing.T) {
	ds := clusterData(t)
	for _, proto := range []Protocol{ParamServer, AllReduce} {
		cfg := Config{
			Nodes: 4, Protocol: proto, WireBits: 8, Quant: kernels.QXorshift,
			ErrorFeedback: true, StalenessAlpha: 0.3,
		}
		a := clusterRun(t, ds, cfg)
		b := clusterRun(t, ds, cfg)
		for j := range a.W {
			if a.W[j] != b.W[j] {
				t.Fatalf("%v: W[%d] differs: %v vs %v", proto, j, a.W[j], b.W[j])
			}
		}
		for i := range a.TrainLoss {
			if a.TrainLoss[i] != b.TrainLoss[i] {
				t.Fatalf("%v: loss[%d] differs: %v vs %v", proto, i, a.TrainLoss[i], b.TrainLoss[i])
			}
		}
		if !reflect.DeepEqual(a.Cluster, b.Cluster) {
			t.Fatalf("%v: cluster stats differ:\n%+v\n%+v", proto, a.Cluster, b.Cluster)
		}
	}
}

func TestSeedChangesQuantizedRun(t *testing.T) {
	ds := clusterData(t)
	a := clusterRun(t, ds, Config{Nodes: 2, WireBits: 4, Quant: kernels.QXorshift, Seed: 1})
	b := clusterRun(t, ds, Config{Nodes: 2, WireBits: 4, Quant: kernels.QXorshift, Seed: 2})
	same := true
	for j := range a.W {
		if a.W[j] != b.W[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical unbiased-rounded models")
	}
}

// TestExactByteAccounting checks the wire-byte counters against the
// closed-form message census of each protocol, plus the ClusterStats
// framing invariant.
func TestExactByteAccounting(t *testing.T) {
	ds := clusterData(t)
	const nodes, batch, epochs = 4, 8, 3
	n := ds.N
	// Every shard is 1024/4 = 256 examples = 32 batches per epoch.
	pushes := uint64(nodes * 32 * epochs)
	gradPayload := uint64(4 + n) // 4-byte scale + 8-bit coordinates
	modelPayload := uint64(4 * n)

	t.Run("param-server", func(t *testing.T) {
		res := clusterRun(t, ds, Config{
			Nodes: nodes, Protocol: ParamServer, WireBits: 8,
			BatchPerNode: batch, Epochs: epochs,
		})
		c := res.Cluster
		// One bootstrap pull request per node, one model reply per pull
		// request and per non-final push, one gradient per batch.
		if c.GradPushes != pushes || c.ModelPulls != pushes || c.Messages != uint64(nodes)+2*pushes {
			t.Fatalf("message census: %+v", c)
		}
		if c.GradBytes != pushes*gradPayload {
			t.Errorf("GradBytes = %d, want %d", c.GradBytes, pushes*gradPayload)
		}
		if c.ModelBytes != pushes*modelPayload {
			t.Errorf("ModelBytes = %d, want %d", c.ModelBytes, pushes*modelPayload)
		}
		if c.HeaderBytes != c.Messages*DefaultHeaderBytes {
			t.Errorf("HeaderBytes = %d, want %d", c.HeaderBytes, c.Messages*DefaultHeaderBytes)
		}
		if c.WireBytes != c.HeaderBytes+c.GradBytes+c.ModelBytes {
			t.Errorf("framing invariant broken: %+v", c)
		}
		if uint64(res.Steps) != pushes || c.Staleness.Count != pushes {
			t.Errorf("steps %d, staleness count %d, want %d", res.Steps, c.Staleness.Count, pushes)
		}
	})

	t.Run("all-reduce", func(t *testing.T) {
		res := clusterRun(t, ds, Config{
			Nodes: nodes, Protocol: AllReduce, WireBits: 8,
			BatchPerNode: batch, Epochs: epochs,
		})
		c := res.Cluster
		rounds := uint64(32 * epochs)
		msgs := rounds * nodes * (nodes - 1)
		if c.Messages != msgs || c.GradPushes != msgs || c.ModelPulls != 0 {
			t.Fatalf("message census: %+v", c)
		}
		if c.GradBytes != msgs*gradPayload || c.ModelBytes != 0 {
			t.Errorf("payload bytes: %+v", c)
		}
		if c.WireBytes != c.HeaderBytes+c.GradBytes {
			t.Errorf("framing invariant broken: %+v", c)
		}
		if uint64(res.Steps) != rounds {
			t.Errorf("steps %d, want %d rounds", res.Steps, rounds)
		}
		if c.OverlapSavedSeconds <= 0 {
			t.Error("pipelined all-reduce hid no communication")
		}
	})
}

// TestWireLockstepWithKernelsQuantizer pins that the wire codec is the
// kernels quantizer — an identically seeded Quantizer driven directly
// reproduces every wire decode bit for bit, so there is no second
// rounding implementation to drift.
func TestWireLockstepWithKernelsQuantizer(t *testing.T) {
	const bits = 8
	node, seed := 3, uint64(77)
	c, err := newWireCodec(bits, kernels.QXorshift, seed, node)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := kernels.NewQuantizer(kernels.I8, kernels.QXorshift, 8, seed^(uint64(node)+1)*0xA24BAED4963EE407|1)
	if err != nil {
		t.Fatal(err)
	}
	fmt8 := kernels.I8.Fixed()

	g := make([]float32, 37)
	want := make([]float32, len(g))
	for i := range g {
		g[i] = float32(math.Sin(float64(i)*1.7)) * 0.03
	}
	var maxAbs float32
	for _, v := range g {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / fmt8.MaxReal()
	for i, v := range g {
		want[i] = fmt8.Dequantize(ref.Quantize(v/scale)) * scale
	}

	res := make([]float32, len(g))
	if got := c.transfer(g, res, false, nil); got != c.payloadBytes(len(g)) {
		t.Fatalf("payload bytes %d", got)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("decode[%d] = %v, reference quantizer says %v", i, g[i], want[i])
		}
	}
}

func TestStalenessCompensation(t *testing.T) {
	ds := clusterData(t)
	base := Config{Nodes: 8, Protocol: ParamServer, WireBits: 32, Epochs: 3}
	plain := clusterRun(t, ds, base)
	comp := base
	comp.StalenessAlpha = 0.5
	scaled := clusterRun(t, ds, comp)

	if plain.Cluster.Staleness.Mean() <= 0 {
		t.Fatal("8-node parameter server observed no staleness")
	}
	if plain.Cluster.CompensatedUpdates != 0 {
		t.Error("compensation counted with alpha = 0")
	}
	if scaled.Cluster.CompensatedUpdates == 0 {
		t.Error("no updates compensated with alpha > 0")
	}
	same := true
	for j := range plain.W {
		if plain.W[j] != scaled.W[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("staleness compensation changed nothing")
	}
}

func TestObserverThreading(t *testing.T) {
	ds := clusterData(t)
	hooks := &countingHooks{}
	o := &obs.Observer{
		Hooks:     hooks,
		Tracer:    obs.NewTracer(64),
		Series:    obs.NewSeries(32),
		NumHealth: true,
	}
	const epochs = 3
	res := clusterRun(t, ds, Config{
		Nodes: 4, Protocol: AllReduce, WireBits: 8, ErrorFeedback: true,
		Epochs: epochs, Observer: o,
	})
	if hooks.epochs != epochs {
		t.Errorf("OnEpoch fired %d times, want %d", hooks.epochs, epochs)
	}
	if res.Stats == nil || res.Stats.Steps != uint64(res.Steps) {
		t.Fatalf("RunStats missing or inconsistent: %+v", res.Stats)
	}
	if res.NumStats == nil || res.NumStats.Bias.Samples == 0 {
		t.Errorf("wire numerical health not collected: %+v", res.NumStats)
	}
	if res.NumStats.Bias.Mode != "wire-"+kernels.QuantKind(0).String() {
		t.Errorf("bias mode = %q", res.NumStats.Bias.Mode)
	}
	if res.Series == nil || len(res.Series.Windows) == 0 {
		t.Error("time-series not recorded")
	}
	if o.Tracer.SpanCount() == 0 {
		t.Error("no trace spans recorded")
	}
}

type countingHooks struct {
	obs.NopHooks
	epochs int
}

func (h *countingHooks) OnEpoch(obs.EpochInfo) { h.epochs++ }

func TestContextCancellation(t *testing.T) {
	ds := clusterData(t)
	ctx, cancel := context.WithCancelCause(context.Background())
	want := errors.New("deadline budget spent")
	cancel(want)
	for _, proto := range []Protocol{ParamServer, AllReduce} {
		_, err := Train(Config{
			Problem: core.Logistic, Nodes: 2, Protocol: proto, WireBits: 32,
			StepSize: 0.1, Ctx: ctx,
		}, ds)
		if !errors.Is(err, want) {
			t.Errorf("%v: err = %v, want cancellation cause", proto, err)
		}
	}
}

func TestValidation(t *testing.T) {
	ds := clusterData(t)
	bad := []Config{
		{Nodes: 0, WireBits: 32, StepSize: 0.1},
		{Nodes: 2, WireBits: 7, StepSize: 0.1},
		{Nodes: 2, WireBits: 32},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, Protocol: Protocol(9)},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, StalenessAlpha: -1},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, BatchPerNode: -1},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, StepDecay: 2},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, ComputeGNPS: -1},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, Net: NetConfig{LatencySec: -1}},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, Net: NetConfig{Bandwidth: -1}},
		{Nodes: 2, WireBits: 32, StepSize: 0.1, Net: NetConfig{HeaderBytes: -1}},
	}
	for i, cfg := range bad {
		cfg.Problem = core.Logistic
		if _, err := Train(cfg, ds); err == nil {
			t.Errorf("config %d should have failed validation: %+v", i, cfg)
		}
	}
	if _, err := Train(Config{Problem: core.Logistic, Nodes: 2, WireBits: 32, StepSize: 0.1}, nil); err == nil {
		t.Error("nil dataset should fail")
	}
	tiny, err := dataset.GenDense(dataset.DenseConfig{N: 4, M: 3, P: kernels.F32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(Config{Problem: core.Logistic, Nodes: 8, WireBits: 32, StepSize: 0.1}, tiny); err == nil {
		t.Error("more nodes than examples should fail")
	}
}

func TestSingleNodeDegenerates(t *testing.T) {
	// One node is the degenerate cluster: no staleness, and for the
	// parameter server every pull round-trips but nothing is ever stale.
	ds := clusterData(t)
	res := clusterRun(t, ds, Config{Nodes: 1, Protocol: ParamServer, WireBits: 32})
	if res.Cluster.Staleness.Sum != 0 {
		t.Errorf("single node observed staleness: %+v", res.Cluster.Staleness)
	}
	if lastLoss(res) >= res.TrainLoss[0]*0.8 {
		t.Errorf("single-node run did not converge: %v", res.TrainLoss)
	}
}
