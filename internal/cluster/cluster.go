// Package cluster is the simulated multi-node tier of the reproduction:
// N machines composed over a latency/bandwidth-modeled interconnect with
// exact per-message byte accounting. It extends the DMGC communication
// term beyond the cache-coherence fabric — the same low-precision
// communication trade the paper studies between cores (Section 6), with
// network bytes standing in for cache lines.
//
// Two interchangeable protocols run behind one entry point:
//
//   - ParamServer: an asynchronous parameter server. Each node pulls the
//     model, computes a mini-batch gradient, and pushes it quantized to
//     the wire precision; the server applies pushes as they arrive, with
//     an optional staleness-compensated learning rate (the per-update
//     step is scaled down by the observed update staleness, per "Faster
//     Asynchronous SGD"). The protocol is simulated as a discrete-event
//     system, so runs are deterministic under a fixed seed even though
//     the modeled execution is asynchronous.
//
//   - AllReduce: a double-buffered, pipelined all-reduce. Round k trains
//     while round k-1's reduction is still in flight, so communication
//     hides behind compute (the overlap trick of asynchronous
//     data-parallel optimizers); the model update always trails the
//     gradient that produced it by exactly one round.
//
// Both protocols quantize gradients on the wire through the
// kernels.Quantizer paths — the same rounding machinery the training
// kernels use — with per-node error feedback as in the synchronous
// engine, and both count every wire byte exactly (header, gradient
// payload, model payload) into obs.ClusterStats.
package cluster

import (
	"context"
	"fmt"

	"buckwild/internal/core"
	"buckwild/internal/dataset"
	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/obs"
)

// Protocol selects the communication protocol.
type Protocol int

const (
	// ParamServer is the asynchronous push/pull parameter server.
	ParamServer Protocol = iota
	// AllReduce is the double-buffered pipelined all-reduce.
	AllReduce
)

// String names the protocol as it appears in stats and reports.
func (p Protocol) String() string {
	switch p {
	case ParamServer:
		return "param-server"
	case AllReduce:
		return "all-reduce"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// DefaultComputeGNPS is the modeled per-node compute throughput (dataset
// numbers per second) when Config.ComputeGNPS is zero — a 1 GNPS node,
// the order of the paper's single-thread full-precision baseline.
const DefaultComputeGNPS = 1e9

// Config configures a simulated cluster training run.
type Config struct {
	Problem core.Problem
	// Nodes is the simulated machine count (>= 1).
	Nodes int
	// Protocol selects ParamServer or AllReduce.
	Protocol Protocol
	// WireBits is the gradient wire precision: 4, 8 or 16 reuse the
	// corresponding kernels quantizer; 32 communicates full-precision
	// gradients.
	WireBits uint
	// Quant picks the wire rounding strategy (ignored at 32 bits).
	Quant kernels.QuantKind
	// ErrorFeedback carries each node's quantization residual into its
	// next transfer (the synchronous engine's essential trick).
	ErrorFeedback bool
	// BatchPerNode is the examples a node processes per gradient message
	// (default 8).
	BatchPerNode int
	// StepSize is the initial eta; StepDecay multiplies it per epoch
	// (default 1: constant step).
	StepSize  float32
	StepDecay float32
	Epochs    int
	Seed      uint64
	// StalenessAlpha enables staleness-compensated updates: an update
	// observed s model updates stale is applied with eta/(1+alpha*s).
	// Zero disables compensation.
	StalenessAlpha float64
	// ComputeGNPS is the modeled per-node compute throughput in dataset
	// numbers per second (zero selects DefaultComputeGNPS).
	ComputeGNPS float64
	// Net models the interconnect.
	Net NetConfig
	// Ctx, when non-nil, bounds the run: it is checked between simulated
	// events/rounds, and cancellation returns context.Cause(Ctx).
	Ctx context.Context
	// TraceTIDBase is the first trace track id the run's per-node tracks
	// claim when a Tracer is installed (zero selects
	// DefaultTraceTIDBase). Sweeps tracing several runs into one tracer
	// give each run a distinct base so their tracks do not collide.
	TraceTIDBase int
	// Observer installs the run-level observability layer: the staleness
	// histogram and epoch hooks, trace spans, the windowed time-series,
	// and wire numerical health. Nil skips all of it; the exact wire-byte
	// accounting on Result.Cluster is always produced.
	Observer *obs.Observer
}

func (c *Config) fill() error {
	if c.Nodes < 1 {
		return fmt.Errorf("cluster: need at least 1 node, got %d", c.Nodes)
	}
	switch c.Protocol {
	case ParamServer, AllReduce:
	default:
		return fmt.Errorf("cluster: unknown protocol %d", int(c.Protocol))
	}
	switch c.WireBits {
	case 4, 8, 16, 32:
	default:
		return fmt.Errorf("cluster: unsupported wire precision %d (use 4, 8, 16 or 32)", c.WireBits)
	}
	if c.BatchPerNode < 0 {
		return fmt.Errorf("cluster: negative batch per node %d", c.BatchPerNode)
	}
	if c.BatchPerNode == 0 {
		c.BatchPerNode = 8
	}
	if c.StepSize <= 0 {
		return fmt.Errorf("cluster: StepSize must be positive")
	}
	if c.StepDecay == 0 {
		c.StepDecay = 1
	}
	if c.StepDecay < 0 || c.StepDecay > 1 {
		return fmt.Errorf("cluster: StepDecay must be in (0, 1]")
	}
	if c.Epochs < 1 {
		c.Epochs = 1
	}
	if c.StalenessAlpha < 0 {
		return fmt.Errorf("cluster: negative staleness compensation %v", c.StalenessAlpha)
	}
	if c.ComputeGNPS < 0 {
		return fmt.Errorf("cluster: negative compute throughput %v", c.ComputeGNPS)
	}
	if c.ComputeGNPS == 0 {
		c.ComputeGNPS = DefaultComputeGNPS
	}
	return c.Net.fill()
}

// computeSeconds models a node processing examples of dimension dim.
func (c *Config) computeSeconds(examples, dim int) float64 {
	return float64(examples) * float64(dim) / c.ComputeGNPS
}

// etaAt replays the per-epoch decay schedule.
func (c *Config) etaAt(epoch int) float32 {
	eta := c.StepSize
	for i := 0; i < epoch; i++ {
		eta *= c.StepDecay
	}
	return eta
}

// compensate scales eta by the staleness-compensation rule and reports
// whether it changed anything.
func (c *Config) compensate(eta float32, staleness uint64) (float32, bool) {
	if c.StalenessAlpha == 0 || staleness == 0 {
		return eta, false
	}
	return float32(float64(eta) / (1 + c.StalenessAlpha*float64(staleness))), true
}

// ctxErr returns the context's cause if ctx is cancelled, nil otherwise.
func ctxErr(ctx context.Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	return context.Cause(ctx)
}

// Train runs the configured protocol over a dense dataset. Like the
// synchronous C-term engine, the cluster tier isolates communication
// precision: nodes compute full-precision local gradients (over ds.Raw)
// and only the wire carries low-precision values. The returned Result
// carries the final model, the per-epoch loss trajectory, and the exact
// wire accounting on Result.Cluster.
func Train(cfg Config, ds *dataset.DenseSet) (*core.Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty dataset")
	}
	if ds.Len() < cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d examples cannot shard over %d nodes", ds.Len(), cfg.Nodes)
	}
	e, err := newEngine(&cfg, ds)
	if err != nil {
		return nil, err
	}
	span := e.span()
	var res *core.Result
	switch cfg.Protocol {
	case ParamServer:
		res, err = e.runParamServer()
	default:
		res, err = e.runAllReduce()
	}
	if err != nil {
		return nil, err
	}
	span.EndArgs(map[string]string{
		"nodes": fmt.Sprint(cfg.Nodes), "wire_bits": fmt.Sprint(cfg.WireBits),
		"sim_seconds": fmt.Sprintf("%.6g", res.Cluster.SimSeconds),
	})
	return res, nil
}

// engine holds the state shared by both protocols.
type engine struct {
	cfg   *Config
	ds    *dataset.DenseSet
	meter wireMeter
	// stats is the run's cluster snapshot, filled as the protocols go;
	// stale is its staleness histogram (single-goroutine, so the
	// snapshot form is observed into directly).
	stats obs.ClusterStats
	// nc counts wire numerical health when the Observer asks for it
	// (single-goroutine: one block serves every node's codec).
	nc *fixed.NumCounts
	// losses is the trajectory; losses[0] is the pre-training loss.
	losses []float64
	// updates counts applied model updates (pushes or reduced rounds).
	updates uint64
	// perNode attributes updates, bytes, time and staleness to each node
	// (always collected; N is small and the sim is far from any hot path).
	perNode []obs.NodeStats
	// live mirrors per-node counters into the Prometheus collector when
	// the Observer installs one (nil-safe methods, so no guard needed).
	live *obs.ClusterMetrics
	// st lays the run out on per-node trace tracks; nil when untraced.
	st *simTrace
}

func newEngine(cfg *Config, ds *dataset.DenseSet) (*engine, error) {
	e := &engine{cfg: cfg, ds: ds}
	e.meter.net = &cfg.Net
	e.stats.Nodes = cfg.Nodes
	e.stats.Protocol = cfg.Protocol.String()
	e.stats.WireBits = cfg.WireBits
	if cfg.Observer != nil && cfg.Observer.NumHealth {
		e.nc = &fixed.NumCounts{}
	}
	e.perNode = make([]obs.NodeStats, cfg.Nodes)
	for k := range e.perNode {
		e.perNode[k].Node = k
	}
	if cfg.Observer != nil {
		e.live = cfg.Observer.ClusterLive
	}
	e.live.Reset(cfg.Nodes)
	e.st = newSimTrace(cfg.Observer, cfg.TraceTIDBase, cfg.Nodes, cfg.Protocol)
	loss, err := core.SyncLoss(cfg.Problem, make([]float32, ds.N), ds)
	if err != nil {
		return nil, err
	}
	e.losses = append(e.losses, loss)
	return e, nil
}

// codec builds node's wire codec, attaching the shared health counter.
func (e *engine) codec(node int) (*wireCodec, error) {
	c, err := newWireCodec(e.cfg.WireBits, e.cfg.Quant, e.cfg.Seed, node)
	if err != nil {
		return nil, err
	}
	c.counts(e.nc)
	return c, nil
}

// accumGrad computes the mean full-precision gradient of examples
// [lo, hi) at model w into g (overwritten).
func (e *engine) accumGrad(w, g []float32, lo, hi int) {
	for j := range g {
		g[j] = 0
	}
	if hi <= lo {
		return
	}
	inv := 1 / float32(hi-lo)
	for i := lo; i < hi; i++ {
		row := e.ds.Raw[i]
		var dot float32
		for j := range w {
			dot += row[j] * w[j]
		}
		a := core.GradScale(e.cfg.Problem, dot, e.ds.Y[i], 1) * inv
		if a == 0 {
			continue
		}
		for j := range g {
			g[j] += a * row[j]
		}
	}
}

// nodeSent attributes one sent message (header + payload bytes, dt
// simulated transfer seconds) to node k, in the per-node snapshot and
// the live Prometheus collector.
func (e *engine) nodeSent(k, payload int, dt float64) {
	bytes := uint64(e.cfg.Net.HeaderBytes + payload)
	e.perNode[k].WireBytes += bytes
	e.perNode[k].CommSeconds += dt
	e.live.AddWireBytes(k, bytes)
}

// nodeUpdate attributes one landed model update to node k.
func (e *engine) nodeUpdate(k int, staleness uint64) {
	e.perNode[k].Updates++
	e.perNode[k].Staleness.Observe(staleness)
	e.live.ObserveUpdate(k, staleness)
}

// observeUpdate records one applied model update: its staleness (into the
// cluster histogram and, when sampled, the time-series) and whether the
// compensation rule scaled it.
func (e *engine) observeUpdate(staleness uint64, g []float32, compensated bool) {
	e.updates++
	e.stats.Staleness.Observe(staleness)
	if compensated {
		e.stats.CompensatedUpdates++
	}
	if o := e.cfg.Observer; o != nil && o.Series != nil {
		var sum float64
		for _, v := range g {
			if v < 0 {
				sum -= float64(v)
			} else {
				sum += float64(v)
			}
		}
		o.Series.ObserveSample(staleness, sum/float64(len(g)))
	}
}

// epochDone records an epoch boundary: the loss is appended, hooks fire,
// the time-series ticks, and a trace instant marks the simulated time.
func (e *engine) epochDone(epoch int, loss, simT float64) {
	e.losses = append(e.losses, loss)
	o := e.cfg.Observer
	if o == nil {
		return
	}
	if o.Hooks != nil {
		o.Hooks.OnEpoch(obs.EpochInfo{Epoch: epoch, Loss: loss, Steps: e.updates})
	}
	if o.Series != nil {
		o.Series.EpochTick(epoch, loss, e.updates, 0)
	}
	if o.Tracer != nil {
		o.Tracer.Instant("cluster", "epoch", 0, map[string]string{
			"epoch": fmt.Sprint(epoch), "loss": fmt.Sprintf("%.6g", loss),
			"sim_seconds": fmt.Sprintf("%.6g", simT),
		})
	}
	if o.Flight != nil {
		o.Flight.Record("cluster", "epoch",
			fmt.Sprintf("epoch %d done, loss %.6g", epoch, loss),
			map[string]string{
				"epoch": fmt.Sprint(epoch), "loss": fmt.Sprintf("%.6g", loss),
				"updates": fmt.Sprint(e.updates), "sim_seconds": fmt.Sprintf("%.6g", simT),
			})
	}
}

// span opens the run-level trace span (a no-op handle without a tracer).
func (e *engine) span() obs.SpanHandle {
	var tr *obs.Tracer
	if e.cfg.Observer != nil {
		tr = e.cfg.Observer.Tracer
	}
	return tr.Begin("cluster", "train-"+e.cfg.Protocol.String(), 0)
}

// result assembles the final Result from the engine's state.
func (e *engine) result(w []float32, simT, computeSec, commSec float64) *core.Result {
	e.meter.fillStats(&e.stats)
	e.stats.SimSeconds = simT
	e.stats.ComputeSeconds = computeSec
	e.stats.CommSeconds = commSec
	e.stats.PerNode = e.perNode
	e.stats.FinishPerNode()
	if simT > 0 {
		e.stats.ExamplesPerSimSec = float64(e.ds.Len()*e.cfg.Epochs) / simT
	}
	res := &core.Result{
		W:         w,
		TrainLoss: e.losses,
		Steps:     int(e.updates),
		Cluster:   &e.stats,
	}
	if o := e.cfg.Observer; o != nil {
		s := &obs.RunStats{
			Steps:        e.updates,
			SampledSteps: e.stats.Staleness.Count,
			Staleness:    e.stats.Staleness,
		}
		if e.nc != nil {
			ns := &obs.NumStats{
				Saturations: e.nc.SatTotal(),
				Underflows:  e.nc.Underflows,
				Bias: obs.RoundingBias{
					Mode:      "wire-" + e.cfg.Quant.String(),
					Samples:   e.nc.BiasN,
					SumQuanta: e.nc.BiasSumQ,
				},
			}
			for site := fixed.Site(0); site < fixed.NumSites; site++ {
				if n := e.nc.Sat[site]; n > 0 {
					if ns.SatBySite == nil {
						ns.SatBySite = make(map[string]uint64)
					}
					ns.SatBySite[site.String()] = n
				}
			}
			s.NumHealth = ns
			res.NumStats = ns
		}
		res.Stats = s
		if o.Series != nil {
			res.Series = o.Series.Snapshot()
		}
	}
	return res
}
