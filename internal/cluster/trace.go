package cluster

import (
	"fmt"
	"time"

	"buckwild/internal/obs"
)

// This file maps the discrete-event simulation onto Chrome trace tracks:
// one track per simulated node pair (compute and comm) plus one for the
// parameter server (or the all-reduce barrier), with each wire message
// drawn as a flow arrow from its sender's track to its receiver's. The
// simulation runs in simulated seconds, not wall time, so spans are laid
// out with Tracer.RecordSpan on the simulation's own timeline: one
// simulated second renders as one trace second. Loading the file in
// Perfetto shows the pipelined all-reduce's reduce-flight spans overlap
// the next round's compute spans — OverlapSavedSeconds, visually.

// DefaultTraceTIDBase is the first track id the cluster tier claims when
// Config.TraceTIDBase is zero. It leaves the low track ids to the engine
// and sweep pool and the 900s to the serving tier.
const DefaultTraceTIDBase = 1000

// simTrace emits the per-node tracks of one simulated run. A nil
// *simTrace (no tracer installed) is fully inert; the engine holds nil
// so untraced runs pay one pointer check per emission site.
type simTrace struct {
	tr   *obs.Tracer
	base int
	flow uint64 // flow arrow id allocator (single-goroutine, like the sim)
}

// newSimTrace names the run's tracks and returns the emitter, or nil
// when no tracer is installed.
func newSimTrace(o *obs.Observer, base, nodes int, proto Protocol) *simTrace {
	if o == nil || o.Tracer == nil {
		return nil
	}
	if base <= 0 {
		base = DefaultTraceTIDBase
	}
	st := &simTrace{tr: o.Tracer, base: base}
	server := "cluster/reducer"
	if proto == ParamServer {
		server = "cluster/server"
	}
	st.tr.NameTrack(base, server)
	for k := 0; k < nodes; k++ {
		st.tr.NameTrack(st.computeTID(k), fmt.Sprintf("cluster/node-%d compute", k))
		st.tr.NameTrack(st.commTID(k), fmt.Sprintf("cluster/node-%d comm", k))
	}
	return st
}

// serverTID is the parameter server's (or the all-reduce barrier's)
// track; computeTID and commTID are node k's two tracks, adjacent so a
// node's compute and its in-flight messages render together.
func (st *simTrace) serverTID() int       { return st.base }
func (st *simTrace) computeTID(k int) int { return st.base + 1 + 2*k }
func (st *simTrace) commTID(k int) int    { return st.base + 2 + 2*k }

// simDur converts simulated seconds to the trace timeline.
func simDur(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// span lays a complete span on tid covering simulated seconds
// [start, end).
func (st *simTrace) span(name string, tid int, start, end float64, args map[string]string) {
	if st == nil {
		return
	}
	st.tr.RecordSpan(obs.Span{
		Name: name, Cat: "cluster", TID: tid,
		Start: simDur(start), Dur: simDur(end - start), Args: args,
	})
}

// instant marks a point event on tid at simulated second t.
func (st *simTrace) instant(name string, tid int, t float64, args map[string]string) {
	if st == nil {
		return
	}
	st.tr.RecordSpan(obs.Span{
		Name: name, Cat: "cluster", TID: tid,
		Start: simDur(t), Instant: true, Args: args,
	})
}

// flowPair draws one wire message as an arrow: sent from fromTID at
// simulated second sendAt, received on toTID at arriveAt. Both points
// should fall inside spans on their tracks so viewers can bind the arrow.
func (st *simTrace) flowPair(name string, fromTID int, sendAt float64, toTID int, arriveAt float64) {
	if st == nil {
		return
	}
	st.flow++
	st.tr.Flow("cluster", name, st.flow, true, fromTID, simDur(sendAt))
	st.tr.Flow("cluster", name, st.flow, false, toTID, simDur(arriveAt))
}
