package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"buckwild/internal/obs"
)

// traceDoc is the slice of the trace_event document these tests inspect.
type traceDoc struct {
	TraceEvents []struct {
		Name string            `json:"name"`
		Cat  string            `json:"cat"`
		Ph   string            `json:"ph"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func traceCluster(t *testing.T, proto Protocol) []byte {
	t.Helper()
	ds := clusterData(t)
	tr := obs.NewTracer(0)
	clusterRun(t, ds, Config{
		Nodes: 3, Protocol: proto, WireBits: 8, ErrorFeedback: true,
		Epochs: 2, Observer: &obs.Observer{Tracer: tr},
	})
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestClusterTracePerNodeTracks(t *testing.T) {
	for _, proto := range []Protocol{ParamServer, AllReduce} {
		raw := traceCluster(t, proto)
		var doc traceDoc
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		tracks := map[int]string{}
		spans := map[string]int{}   // span name -> count
		flowTID := map[string]int{} // flow name+phase -> distinct endpoint count
		for _, ev := range doc.TraceEvents {
			switch ev.Ph {
			case "M":
				if ev.Name == "thread_name" {
					tracks[ev.Tid] = ev.Args["name"]
				}
			case "X", "i":
				spans[ev.Name]++
			case "s", "f":
				flowTID[ev.Name+"/"+ev.Ph]++
			}
		}
		// One compute and one comm track per node, plus the server track.
		for k := 0; k < 3; k++ {
			for _, kind := range []string{"compute", "comm"} {
				want := fmt.Sprintf("cluster/node-%d %s", k, kind)
				found := false
				for _, name := range tracks {
					if name == want {
						found = true
					}
				}
				if !found {
					t.Errorf("%v: missing track %q (have %v)", proto, want, tracks)
				}
			}
		}
		if spans["compute"] == 0 || spans["quantize"] == 0 {
			t.Errorf("%v: missing compute/quantize spans: %v", proto, spans)
		}
		// Wire messages must appear as matched flow pairs.
		switch proto {
		case ParamServer:
			for _, name := range []string{"pull", "grad", "model"} {
				if flowTID[name+"/s"] == 0 || flowTID[name+"/s"] != flowTID[name+"/f"] {
					t.Errorf("param-server: unmatched %q flows: %v", name, flowTID)
				}
			}
		case AllReduce:
			if flowTID["reduce/s"] == 0 || flowTID["reduce/s"] != flowTID["reduce/f"] {
				t.Errorf("all-reduce: unmatched reduce flows: %v", flowTID)
			}
		}
	}
}

func TestClusterTraceTrackSummary(t *testing.T) {
	raw := traceCluster(t, ParamServer)
	tracks, err := obs.SummarizeTracks(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.TrackSummary{}
	for _, tr := range tracks {
		byName[tr.Name] = tr
	}
	server, ok := byName["cluster/server"]
	if !ok {
		t.Fatalf("no server track in summary: %+v", tracks)
	}
	if server.Spans == 0 || server.Flows == 0 || server.Total <= 0 {
		t.Errorf("server track summary = %+v", server)
	}
	for k := 0; k < 3; k++ {
		comm, ok := byName[fmt.Sprintf("cluster/node-%d comm", k)]
		if !ok || comm.Spans == 0 || comm.Flows == 0 {
			t.Errorf("node %d comm track summary missing or empty: %+v (ok=%v)", k, comm, ok)
		}
		compute, ok := byName[fmt.Sprintf("cluster/node-%d compute", k)]
		if !ok || compute.Spans == 0 {
			t.Errorf("node %d compute track summary missing or empty: %+v (ok=%v)", k, compute, ok)
		}
	}
	// The phase summary over the same bytes still works (the CLI prints
	// both from one read).
	phases, err := obs.SummarizeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, p := range phases {
		names = append(names, p.Name)
	}
	if joined := strings.Join(names, ","); !strings.Contains(joined, "compute") {
		t.Errorf("phase summary lost cluster spans: %v", joined)
	}
}

func TestClusterPerNodeStatsAndLiveMetrics(t *testing.T) {
	ds := clusterData(t)
	live := &obs.ClusterMetrics{}
	rec := obs.NewFlightRecorder(16)
	res := clusterRun(t, ds, Config{
		Nodes: 3, Protocol: ParamServer, WireBits: 8, ErrorFeedback: true,
		Epochs: 2, Observer: &obs.Observer{ClusterLive: live, Flight: rec},
	})
	c := res.Cluster
	if len(c.PerNode) != 3 {
		t.Fatalf("per-node stats = %d entries, want 3", len(c.PerNode))
	}
	var updates, wire uint64
	for i, nd := range c.PerNode {
		if nd.Node != i {
			t.Errorf("per-node[%d].Node = %d", i, nd.Node)
		}
		if nd.Updates == 0 || nd.WireBytes == 0 || nd.ComputeSeconds <= 0 {
			t.Errorf("per-node[%d] = %+v", i, nd)
		}
		if nd.StalenessP99 < nd.StalenessP50 {
			t.Errorf("per-node[%d] staleness p99 %v < p50 %v", i, nd.StalenessP99, nd.StalenessP50)
		}
		updates += nd.Updates
		wire += nd.WireBytes
	}
	if updates != uint64(res.Steps) {
		t.Errorf("per-node updates sum %d != total steps %d", updates, res.Steps)
	}
	if wire != c.WireBytes {
		t.Errorf("per-node wire bytes sum %d != total %d", wire, c.WireBytes)
	}

	// The live counters saw the same totals, and scrape as labeled
	// Prometheus series.
	var buf bytes.Buffer
	if err := live.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`buckwild_cluster_node_updates_total{node="0"}`,
		`buckwild_cluster_node_wire_bytes_total{node="2"}`,
		`buckwild_cluster_node_staleness_p99{node="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live exposition missing %q:\n%s", want, out)
		}
	}

	// Epoch completions landed in the flight ring.
	snap := rec.Snapshot()
	epochs := 0
	for _, ev := range snap.Events {
		if ev.Component == "cluster" && ev.Kind == "epoch" {
			epochs++
		}
	}
	if epochs != 2 {
		t.Errorf("flight ring holds %d cluster epoch events, want 2", epochs)
	}
}
