package cluster

import (
	"fmt"

	"buckwild/internal/core"
)

// The all-reduce protocol runs the nodes in lockstep rounds and pipelines
// communication behind compute with double buffering: the reduction of
// round r's gradients is in flight while round r+1 computes, and its
// update lands on the model exactly one round late (staleness 1). Each
// round a node quantizes its mean batch gradient once and broadcasts it
// to the N-1 peers (a direct exchange), so the counted wire bytes
// correspond exactly to the numerics: every node sums the same N decoded
// gradients in full precision, the synchronous engine's quantize-once
// discipline on a network wire.
func (e *engine) runAllReduce() (*core.Result, error) {
	cfg, ds := e.cfg, e.ds
	n := ds.N
	w := make([]float32, n)

	type arNode struct {
		g, residual []float32
		codec       *wireCodec
		lo, hi      int
	}
	nodes := make([]*arNode, cfg.Nodes)
	total := ds.Len()
	// Shards differ by at most one example, so nodes can disagree by one
	// on their batch count; a node past its shard contributes a zero
	// gradient (plus any error-feedback residual) and still broadcasts.
	rounds := 0
	for k := range nodes {
		lo, hi := k*total/cfg.Nodes, (k+1)*total/cfg.Nodes
		codec, err := e.codec(k)
		if err != nil {
			return nil, err
		}
		nodes[k] = &arNode{
			g: make([]float32, n), residual: make([]float32, n),
			codec: codec, lo: lo, hi: hi,
		}
		if b := (hi - lo + cfg.BatchPerNode - 1) / cfg.BatchPerNode; b > rounds {
			rounds = b
		}
	}

	// pending is the reduced update still in flight (double buffer).
	pending := make([]float32, n)
	havePending := false
	var pendEpoch int    // epoch the pending update belongs to
	var pendLast bool    // pending closes its epoch (loss point)
	var pendStale uint64 // model updates applied between its read and its landing
	var pendComm float64 // simulated seconds its reduction needs
	var simT, computeSec, commSec float64

	apply := func(t float64) error {
		eta, comp := cfg.compensate(cfg.etaAt(pendEpoch), pendStale)
		for j, uv := range pending {
			w[j] += eta * uv
		}
		e.observeUpdate(pendStale, pending, comp)
		// Every node contributed one gradient to the reduced update.
		for k := range nodes {
			e.nodeUpdate(k, pendStale)
		}
		if !pendLast {
			return nil
		}
		loss, err := core.SyncLoss(cfg.Problem, w, ds)
		if err != nil {
			return err
		}
		e.epochDone(pendEpoch+1, loss, t)
		return nil
	}

	// curCompute/curComm hold this round's per-node times; pendNodeComm is
	// the per-node communication of the reduction still in flight, kept so
	// its tracks can be drawn overlapping the next round's compute.
	curCompute := make([]float64, cfg.Nodes)
	curComm := make([]float64, cfg.Nodes)
	pendNodeComm := make([]float64, cfg.Nodes)

	globalRound := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for r := 0; r < rounds; r++ {
			if err := ctxErr(cfg.Ctx); err != nil {
				return nil, err
			}
			roundStart := simT
			// Compute: every node's mean gradient at the current model,
			// which is still missing the in-flight update.
			var computeRound float64
			for ki, nd := range nodes {
				lo := nd.lo + r*cfg.BatchPerNode
				end := lo + cfg.BatchPerNode
				if lo > nd.hi {
					lo = nd.hi
				}
				if end > nd.hi {
					end = nd.hi
				}
				e.accumGrad(w, nd.g, lo, end)
				dt := cfg.computeSeconds(end-lo, n)
				computeSec += dt
				e.perNode[ki].ComputeSeconds += dt
				curCompute[ki] = dt
				if dt > computeRound {
					computeRound = dt
				}
				if st := e.st; st != nil && dt > 0 {
					st.span("compute", st.computeTID(ki), roundStart, roundStart+dt, map[string]string{
						"epoch": fmt.Sprint(epoch), "round": fmt.Sprint(globalRound),
						"batch": fmt.Sprint(end - lo),
					})
				}
			}
			// Exchange: quantize once, broadcast to the peers. A node's
			// sends are serial through its NIC; distinct nodes overlap.
			var commRound float64
			for ki, nd := range nodes {
				payload := nd.codec.transfer(nd.g, nd.residual, cfg.ErrorFeedback, e.nc)
				var nodeComm float64
				for p := 1; p < cfg.Nodes; p++ {
					ct := e.meter.countGrad(payload)
					nodeComm += ct
					e.nodeSent(ki, payload, ct)
				}
				curComm[ki] = nodeComm
				commSec += nodeComm
				if nodeComm > commRound {
					commRound = nodeComm
				}
				if st := e.st; st != nil {
					st.instant("quantize", st.commTID(ki), roundStart+curCompute[ki], map[string]string{
						"wire_bits": fmt.Sprint(cfg.WireBits), "payload_bytes": fmt.Sprint(payload),
					})
				}
			}
			// Round barrier: wait for this round's compute and the
			// previous round's reduction, whichever finishes later.
			wait := computeRound
			if havePending {
				if pendComm > wait {
					wait = pendComm
				}
				if computeRound < pendComm {
					e.stats.OverlapSavedSeconds += computeRound
				} else {
					e.stats.OverlapSavedSeconds += pendComm
				}
			}
			if st := e.st; st != nil {
				// The in-flight reduction's wire time renders on each comm
				// track, overlapping this round's compute spans — the
				// pipelining overlap, visible. Arrows join each broadcast
				// to the barrier where its reduced update lands.
				if havePending {
					for k := range nodes {
						if pendNodeComm[k] <= 0 {
							continue
						}
						st.span("reduce-flight", st.commTID(k), roundStart, roundStart+pendNodeComm[k],
							map[string]string{"round": fmt.Sprint(globalRound - 1)})
						st.flowPair("reduce", st.commTID(k), roundStart+pendNodeComm[k],
							st.serverTID(), roundStart+wait)
					}
				}
				st.span("round", st.serverTID(), roundStart, roundStart+wait, map[string]string{
					"epoch": fmt.Sprint(epoch), "round": fmt.Sprint(globalRound),
					"staleness": fmt.Sprint(pendStale),
				})
			}
			simT += wait
			if havePending {
				if err := apply(simT); err != nil {
					return nil, err
				}
			}
			// Stage this round's reduction: the full-precision mean of
			// the N decoded gradients.
			inv := 1 / float32(cfg.Nodes)
			for j := range pending {
				var sum float32
				for _, nd := range nodes {
					sum += nd.g[j]
				}
				pending[j] = sum * inv
			}
			havePending = true
			pendEpoch = epoch
			pendLast = r == rounds-1
			pendComm = commRound
			pendNodeComm, curComm = curComm, pendNodeComm
			if globalRound == 0 {
				pendStale = 0
			} else {
				pendStale = 1
			}
			globalRound++
		}
	}
	// Flush: the last reduction has nothing to hide behind.
	if havePending {
		flushStart := simT
		simT += pendComm
		if st := e.st; st != nil {
			for k := range nodes {
				if pendNodeComm[k] <= 0 {
					continue
				}
				st.span("reduce-flight", st.commTID(k), flushStart, flushStart+pendNodeComm[k],
					map[string]string{"round": fmt.Sprint(globalRound - 1)})
				st.flowPair("reduce", st.commTID(k), flushStart+pendNodeComm[k],
					st.serverTID(), simT)
			}
			st.span("round", st.serverTID(), flushStart, simT,
				map[string]string{"round": "flush", "staleness": fmt.Sprint(pendStale)})
		}
		if err := apply(simT); err != nil {
			return nil, err
		}
	}
	return e.result(w, simT, computeSec, commSec), nil
}
