package cluster

import (
	"fmt"
	"math"

	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
)

// wireCodec quantizes gradients onto the wire at the cluster's C
// precision. It is a thin framing layer over kernels.Quantizer — the
// same rounding machinery the training kernels use for model writes —
// so the cluster tier introduces no second rounding implementation (the
// lockstep test in wire_test.go pins this).
//
// Wire format per gradient payload (DESIGN.md §11): one float32 scale
// factor (4 bytes) followed by ceil(n*bits/8) bytes of raw fixed-point
// values. The scale maps the message's max-magnitude coordinate onto the
// format's representable range, so the grid adapts per message like the
// synchronous engine's comm grid. At 32 bits the payload is the raw
// float32 values (4n bytes) and nothing is rounded.
type wireCodec struct {
	bits uint
	fmt  fixed.Format
	q    *kernels.Quantizer // nil at 32 bits
}

// wirePrec maps a wire precision to the kernels storage precision whose
// quantizer it reuses.
func wirePrec(bits uint) (kernels.Prec, error) {
	switch bits {
	case 4:
		return kernels.I4, nil
	case 8:
		return kernels.I8, nil
	case 16:
		return kernels.I16, nil
	}
	return 0, fmt.Errorf("cluster: unsupported wire precision %d (use 4, 8, 16 or 32)", bits)
}

// newWireCodec builds one node's codec. Each node owns its codec (and so
// its rounding randomness stream), keyed on (seed, node), which keeps the
// event-driven protocols deterministic regardless of message ordering.
func newWireCodec(bits uint, kind kernels.QuantKind, seed uint64, node int) (*wireCodec, error) {
	if bits == 32 {
		return &wireCodec{bits: 32}, nil
	}
	p, err := wirePrec(bits)
	if err != nil {
		return nil, err
	}
	q, err := kernels.NewQuantizer(p, kind, 8, seed^(uint64(node)+1)*0xA24BAED4963EE407|1)
	if err != nil {
		return nil, err
	}
	return &wireCodec{bits: bits, fmt: p.Fixed(), q: q}, nil
}

// counts attaches a numerical-health counter block to the codec's
// quantizer (saturations and rounding bias at the quantize site); wire
// underflows are counted by transfer itself.
func (c *wireCodec) counts(nc *fixed.NumCounts) {
	if c.q != nil {
		c.q.Num = nc
	}
}

// payloadBytes is the exact gradient payload size for n coordinates.
func (c *wireCodec) payloadBytes(n int) int {
	if c.bits == 32 {
		return 4 * n
	}
	return 4 + (n*int(c.bits)+7)/8
}

// transfer simulates putting gradient g on the wire: g is replaced by
// what the receiver decodes (quantize, then dequantize through the
// per-message scale), and with error feedback the quantization residual
// is carried into the next call via residual. It returns the exact
// payload byte count. A non-nil nc counts wire underflows (a nonzero
// coordinate decoded as zero); the quantizer's own counter (see counts)
// covers saturation and rounding bias.
func (c *wireCodec) transfer(g, residual []float32, errorFeedback bool, nc *fixed.NumCounts) int {
	if c.q == nil {
		return c.payloadBytes(len(g))
	}
	if errorFeedback {
		for j := range g {
			g[j] += residual[j]
		}
	}
	var maxAbs float32
	for _, v := range g {
		if a := float32(math.Abs(float64(v))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return c.payloadBytes(len(g))
	}
	scale := maxAbs / c.fmt.MaxReal()
	for j, v := range g {
		dec := c.fmt.Dequantize(c.q.Quantize(v/scale)) * scale
		if nc != nil && v != 0 && dec == 0 {
			nc.Underflows++
		}
		if errorFeedback {
			residual[j] = v - dec
		}
		g[j] = dec
	}
	return c.payloadBytes(len(g))
}
