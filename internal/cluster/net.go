package cluster

import (
	"fmt"

	"buckwild/internal/obs"
)

// Interconnect defaults: a 10 GbE-class fabric (50 µs one-way latency,
// 1.25 GB/s per-NIC bandwidth) and a 16-byte message header carrying
// source node, message kind, round number and payload length — the wire
// format contract documented in DESIGN.md §11.
const (
	DefaultLatencySec  = 50e-6
	DefaultBandwidth   = 1.25e9 // bytes per second per NIC
	DefaultHeaderBytes = 16
)

// NetConfig models the cluster interconnect. Every message costs
// Latency + bytes/Bandwidth simulated seconds, where bytes is the exact
// framed size (header + payload); nodes send serially through one NIC
// but distinct nodes transfer in parallel. Zero values select the
// defaults above.
type NetConfig struct {
	// LatencySec is the one-way per-message latency in seconds.
	LatencySec float64
	// Bandwidth is the per-NIC bandwidth in bytes per second.
	Bandwidth float64
	// HeaderBytes is the fixed framing overhead per message.
	HeaderBytes int
}

func (n *NetConfig) fill() error {
	if n.LatencySec == 0 {
		n.LatencySec = DefaultLatencySec
	}
	if n.Bandwidth == 0 {
		n.Bandwidth = DefaultBandwidth
	}
	if n.HeaderBytes == 0 {
		n.HeaderBytes = DefaultHeaderBytes
	}
	if n.LatencySec < 0 {
		return fmt.Errorf("cluster: negative network latency %v", n.LatencySec)
	}
	if n.Bandwidth < 0 {
		return fmt.Errorf("cluster: negative network bandwidth %v", n.Bandwidth)
	}
	if n.HeaderBytes < 0 {
		return fmt.Errorf("cluster: negative header size %d", n.HeaderBytes)
	}
	return nil
}

// sendSeconds is the simulated transfer time of one framed message of
// payload bytes.
func (n *NetConfig) sendSeconds(payload int) float64 {
	return n.LatencySec + float64(n.HeaderBytes+payload)/n.Bandwidth
}

// wireMeter accumulates the exact byte accounting of a run. Every
// simulated message goes through exactly one of the count methods, so the
// ClusterStats invariant WireBytes == HeaderBytes + GradBytes + ModelBytes
// holds by construction.
type wireMeter struct {
	net        *NetConfig
	messages   uint64
	headerB    uint64
	gradB      uint64
	modelB     uint64
	gradPushes uint64
	modelPulls uint64
}

// countControl records a payload-free message (e.g. the bootstrap pull
// request) and returns its transfer time.
func (m *wireMeter) countControl() float64 {
	m.messages++
	m.headerB += uint64(m.net.HeaderBytes)
	return m.net.sendSeconds(0)
}

// countGrad records a gradient-carrying message of payload bytes.
func (m *wireMeter) countGrad(payload int) float64 {
	m.messages++
	m.gradPushes++
	m.headerB += uint64(m.net.HeaderBytes)
	m.gradB += uint64(payload)
	return m.net.sendSeconds(payload)
}

// countModel records a model-carrying message of payload bytes.
func (m *wireMeter) countModel(payload int) float64 {
	m.messages++
	m.modelPulls++
	m.headerB += uint64(m.net.HeaderBytes)
	m.modelB += uint64(payload)
	return m.net.sendSeconds(payload)
}

// fillStats writes the meter's totals into a ClusterStats snapshot.
func (m *wireMeter) fillStats(s *obs.ClusterStats) {
	s.Messages = m.messages
	s.GradPushes = m.gradPushes
	s.ModelPulls = m.modelPulls
	s.HeaderBytes = m.headerB
	s.GradBytes = m.gradB
	s.ModelBytes = m.modelB
	s.WireBytes = m.headerB + m.gradB + m.modelB
}
