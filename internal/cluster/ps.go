package cluster

import (
	"container/heap"
	"fmt"

	"buckwild/internal/core"
)

// The parameter server is simulated as a discrete-event system on a
// single goroutine: every message arrival is an event on a time-ordered
// heap, ties broken by a monotonic sequence number. The modeled
// execution is fully asynchronous — nodes race, pushes land stale — but
// the simulation itself is sequential, so a fixed seed reproduces the
// run bit for bit (the determinism tests pin this).
//
// Message flow per node: one bootstrap pull request (header-only), then
// a combined push/pull loop — the server applies each arriving gradient
// and replies with a fresh model snapshot, which triggers the node's
// next batch. The reply to a node's final push is skipped, so every
// counted message does protocol work.

type psEventKind int

const (
	evPull  psEventKind = iota // pull request arrives at the server
	evModel                    // model snapshot arrives at a node
	evPush                     // gradient push arrives at the server
)

type psEvent struct {
	t    float64
	seq  uint64
	kind psEventKind
	node int
}

// psQueue is the event heap, ordered by (time, sequence).
type psQueue []psEvent

func (q psQueue) Len() int { return len(q) }
func (q psQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q psQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *psQueue) Push(x interface{}) { *q = append(*q, x.(psEvent)) }
func (q *psQueue) Pop() interface{} {
	old := *q
	n := len(old) - 1
	ev := old[n]
	*q = old[:n]
	return ev
}

// psNode is one simulated worker machine. Between a snapshot reply being
// scheduled and its arrival the node is idle, so the server writes the
// snapshot straight into the node's buffers — no event payload copies.
type psNode struct {
	w, g, residual []float32
	codec          *wireCodec
	lo, hi, next   int // shard bounds and batch cursor
	epoch          int
	pulled         uint64 // server version the current gradient was computed against
	pushEpoch      int    // epoch the in-flight push belongs to
	pushFinal      bool   // the in-flight push is this node's last
}

func (e *engine) runParamServer() (*core.Result, error) {
	cfg, ds := e.cfg, e.ds
	n := ds.N
	model := make([]float32, n)
	var version uint64

	nodes := make([]*psNode, cfg.Nodes)
	// remaining[epoch] counts pushes still outstanding for that epoch;
	// per-node pushes arrive in epoch order, so epochs complete in order
	// and the loss trajectory appends sequentially.
	remaining := make([]int, cfg.Epochs)
	total := ds.Len()
	for k := range nodes {
		lo, hi := k*total/cfg.Nodes, (k+1)*total/cfg.Nodes
		codec, err := e.codec(k)
		if err != nil {
			return nil, err
		}
		nodes[k] = &psNode{
			w: make([]float32, n), g: make([]float32, n), residual: make([]float32, n),
			codec: codec, lo: lo, hi: hi, next: lo,
		}
		batches := (hi - lo + cfg.BatchPerNode - 1) / cfg.BatchPerNode
		for ep := range remaining {
			remaining[ep] += batches
		}
	}

	q := &psQueue{}
	var seq uint64
	schedule := func(t float64, kind psEventKind, node int) {
		heap.Push(q, psEvent{t: t, seq: seq, kind: kind, node: node})
		seq++
	}
	var simT, computeSec, commSec float64
	for k := range nodes {
		dt := e.meter.countControl()
		commSec += dt
		e.nodeSent(k, 0, dt)
		if st := e.st; st != nil {
			st.span("pull-request", st.commTID(k), 0, dt, nil)
			st.flowPair("pull", st.commTID(k), 0, st.serverTID(), dt)
		}
		schedule(dt, evPull, k)
	}

	modelPayload := 4 * n
	for q.Len() > 0 {
		if err := ctxErr(cfg.Ctx); err != nil {
			return nil, err
		}
		ev := heap.Pop(q).(psEvent)
		if ev.t > simT {
			simT = ev.t
		}
		nd := nodes[ev.node]
		switch ev.kind {
		case evPull:
			copy(nd.w, model)
			nd.pulled = version
			dt := e.meter.countModel(modelPayload)
			commSec += dt
			e.nodeSent(ev.node, modelPayload, dt)
			if st := e.st; st != nil {
				st.span("serve-pull", st.serverTID(), ev.t, ev.t+dt,
					map[string]string{"node": fmt.Sprint(ev.node)})
				st.span("model-xfer", st.commTID(ev.node), ev.t, ev.t+dt,
					map[string]string{"bytes": fmt.Sprint(cfg.Net.HeaderBytes + modelPayload)})
				st.flowPair("model", st.serverTID(), ev.t, st.commTID(ev.node), ev.t+dt)
			}
			schedule(ev.t+dt, evModel, ev.node)

		case evModel:
			end := nd.next + cfg.BatchPerNode
			if end > nd.hi {
				end = nd.hi
			}
			e.accumGrad(nd.w, nd.g, nd.next, end)
			dt := cfg.computeSeconds(end-nd.next, n)
			computeSec += dt
			e.perNode[ev.node].ComputeSeconds += dt
			batch := end - nd.next
			nd.pushEpoch = nd.epoch
			nd.next = end
			if nd.next >= nd.hi {
				nd.next = nd.lo
				nd.epoch++
			}
			nd.pushFinal = nd.epoch >= cfg.Epochs
			payload := nd.codec.transfer(nd.g, nd.residual, cfg.ErrorFeedback, e.nc)
			ct := e.meter.countGrad(payload)
			commSec += ct
			e.nodeSent(ev.node, payload, ct)
			if st := e.st; st != nil {
				st.span("compute", st.computeTID(ev.node), ev.t, ev.t+dt, map[string]string{
					"epoch": fmt.Sprint(nd.pushEpoch), "batch": fmt.Sprint(batch),
				})
				st.instant("quantize", st.commTID(ev.node), ev.t+dt, map[string]string{
					"wire_bits": fmt.Sprint(cfg.WireBits), "payload_bytes": fmt.Sprint(payload),
				})
				st.span("push", st.commTID(ev.node), ev.t+dt, ev.t+dt+ct,
					map[string]string{"bytes": fmt.Sprint(cfg.Net.HeaderBytes + payload)})
				st.flowPair("grad", st.commTID(ev.node), ev.t+dt, st.serverTID(), ev.t+dt+ct)
			}
			schedule(ev.t+dt+ct, evPush, ev.node)

		case evPush:
			staleness := version - nd.pulled
			eta, comp := cfg.compensate(cfg.etaAt(nd.pushEpoch), staleness)
			for j, gv := range nd.g {
				model[j] += eta * gv
			}
			version++
			e.observeUpdate(staleness, nd.g, comp)
			e.nodeUpdate(ev.node, staleness)
			remaining[nd.pushEpoch]--
			if remaining[nd.pushEpoch] == 0 {
				loss, err := core.SyncLoss(cfg.Problem, model, ds)
				if err != nil {
					return nil, err
				}
				e.epochDone(nd.pushEpoch+1, loss, ev.t)
			}
			replyEnd := ev.t
			if !nd.pushFinal {
				copy(nd.w, model)
				nd.pulled = version
				dt := e.meter.countModel(modelPayload)
				commSec += dt
				e.nodeSent(ev.node, modelPayload, dt)
				replyEnd = ev.t + dt
				if st := e.st; st != nil {
					st.span("model-xfer", st.commTID(ev.node), ev.t, replyEnd,
						map[string]string{"bytes": fmt.Sprint(cfg.Net.HeaderBytes + modelPayload)})
					st.flowPair("model", st.serverTID(), ev.t, st.commTID(ev.node), replyEnd)
				}
				schedule(replyEnd, evModel, ev.node)
			}
			if st := e.st; st != nil {
				// The apply span covers the reply transfer too, so the
				// push's flow arrow and the reply's flow origin both land
				// inside a server slice.
				st.span("apply", st.serverTID(), ev.t, replyEnd, map[string]string{
					"node": fmt.Sprint(ev.node), "staleness": fmt.Sprint(staleness),
					"eta": fmt.Sprintf("%.6g", eta),
				})
			}
		}
	}
	return e.result(model, simT, computeSec, commSec), nil
}
