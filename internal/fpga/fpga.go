// Package fpga models the Section 8 FPGA implementation of Buckwild! SGD:
// a parameterized linear-regression SGD datapath compiled (in the paper,
// through DHDL) onto an Altera Stratix V, with a heuristic design-space
// search over SIMD lane count, pipeline organization (the two-stage and
// three-stage designs of Figure 7c), and precision.
//
// On the FPGA the DMGC precisions translate directly into hardware: lower
// precision shrinks the multipliers (reclaiming logic for more lanes),
// narrows the BRAM model storage, and reduces the DRAM bytes per element,
// so throughput and area both improve as precision drops (Figure 7f).
package fpga

import (
	"fmt"
	"math"
)

// Device describes an FPGA part.
type Device struct {
	Name string
	// ALMs is the adaptive logic module budget, DSPs the hard
	// multiplier budget, BRAMKb the block RAM budget in kilobits.
	ALMs, DSPs int
	BRAMKb     float64
	// ClockMHz is the achievable datapath clock; DRAMGBs the board
	// memory bandwidth; Watts the typical board power.
	ClockMHz float64
	DRAMGBs  float64
	Watts    float64
	// BurstBytes is the DRAM burst size (used by the SGD-vs-mini-batch
	// organization rule).
	BurstBytes int
}

// StratixVGSD8 returns the paper's device, an Altera Stratix V GS 5SGSD8.
func StratixVGSD8() Device {
	return Device{
		Name:       "Stratix V GS 5SGSD8",
		ALMs:       262400,
		DSPs:       1963,
		BRAMKb:     50 << 10,
		ClockMHz:   200,
		DRAMGBs:    12.8,
		Watts:      25,
		BurstBytes: 64,
	}
}

// Pipeline selects the design organization of Figure 7c.
type Pipeline int

const (
	// TwoStage splits the design into data-load and data-process; the
	// process stage must consume data twice as fast as the off-chip
	// load (each element is read twice per update), so its logic runs
	// at effective double rate. No redundant data copy is needed, so
	// it is the better candidate when BRAM is scarce.
	TwoStage Pipeline = iota
	// ThreeStage splits into off-chip-load, error-compute and
	// update-compute, all consuming at the same rate; the middle stage
	// copies data into a second buffer for the third stage, costing
	// BRAM but simplifying each stage — better when logic is scarce
	// and BRAM abundant.
	ThreeStage
)

// String names the pipeline.
func (p Pipeline) String() string {
	if p == TwoStage {
		return "two-stage"
	}
	return "three-stage"
}

// Params describes one candidate design point.
type Params struct {
	// DataBits and ModelBits are the DMGC dataset and model precisions.
	DataBits, ModelBits uint
	// Lanes is the SIMD width in elements per cycle per compute stage.
	Lanes int
	// Pipeline is the stage organization.
	Pipeline Pipeline
	// MiniBatch is B; the organization rule of Section 8 prefers
	// mini-batch unless one data vector spans >= 100 DRAM bursts.
	MiniBatch int
	// ModelSize is n, which must fit in BRAM.
	ModelSize int
	// Unbiased adds per-lane XORSHIFT rounding modules.
	Unbiased bool
}

// Report is the outcome of evaluating a design point.
type Report struct {
	Params   Params
	Feasible bool
	// Reason explains infeasibility.
	Reason string
	// ALMs, DSPs and BRAMKb are the resources consumed.
	ALMs, DSPs int
	BRAMKb     float64
	// GNPS is dataset throughput; GNPSPerWatt normalizes by board
	// power.
	GNPS        float64
	GNPSPerWatt float64
	// ComputeGNPS and MemoryGNPS are the two ceilings.
	ComputeGNPS, MemoryGNPS float64
}

// multALMs estimates the soft-logic cost of a dataBits x modelBits
// multiplier when built in ALMs (roughly an array multiplier: one ALM per
// partial-product bit pair, halved by carry-save packing).
func multALMs(db, mb uint) int {
	return int(db*mb) / 2
}

// Evaluate sizes one design point on a device.
func Evaluate(dev Device, p Params) (Report, error) {
	r := Report{Params: p}
	if err := validate(p); err != nil {
		return r, err
	}

	// Compute logic: each update needs a dot lane and an update lane
	// per SIMD lane. The two-stage design runs its single compute stage
	// at double rate (extra muxing/control ~25%); the three-stage
	// design instantiates two single-rate stages.
	dotALMs := multALMs(p.DataBits, p.ModelBits) + int(p.DataBits+p.ModelBits) // multiplier + adder-tree share
	updALMs := multALMs(p.DataBits, 16) + int(p.ModelBits)*2                   // scalar multiply + rounding add
	perLane := dotALMs + updALMs
	logic := perLane * p.Lanes
	if p.Pipeline == TwoStage {
		logic = int(float64(logic) * 1.25)
	}
	// Control, AXI/DRAM interface, and scalar section.
	logic += 8000
	if p.Unbiased {
		// One 128-bit XORSHIFT module per 8 lanes.
		logic += 120 * ((p.Lanes + 7) / 8)
	}

	// DSP blocks: wide multiplies prefer hard DSPs (one 27x27 or two
	// 18x18 per block); 8-bit and narrower multiplies stay in logic.
	dsps := 0
	if p.DataBits > 8 || p.ModelBits > 8 {
		dsps = p.Lanes
		logic -= multALMs(p.DataBits, p.ModelBits) * p.Lanes / 2
		if logic < 8000 {
			logic = 8000
		}
	}

	// BRAM: the model, the streaming input buffers, and (three-stage
	// only) the redundant data copy between stages.
	modelKb := float64(p.ModelSize) * float64(p.ModelBits) / 1024
	bufKb := 2 * float64(dev.BurstBytes) * 8 * float64(p.Lanes) / 1024
	bram := modelKb + bufKb
	if p.Pipeline == ThreeStage {
		bram += modelKb + bufKb // stage-2 to stage-3 copy
	}

	r.ALMs, r.DSPs, r.BRAMKb = logic, dsps, bram
	switch {
	case logic > dev.ALMs:
		r.Reason = fmt.Sprintf("needs %d ALMs, device has %d", logic, dev.ALMs)
	case dsps > dev.DSPs:
		r.Reason = fmt.Sprintf("needs %d DSPs, device has %d", dsps, dev.DSPs)
	case bram > dev.BRAMKb:
		r.Reason = fmt.Sprintf("needs %.0f Kb BRAM, device has %.0f", bram, dev.BRAMKb)
	}
	if r.Reason != "" {
		return r, nil
	}
	r.Feasible = true

	// Throughput ceilings. The compute ceiling is lanes x clock
	// (halved for the double-rate two-stage consume); the memory
	// ceiling is DRAM bandwidth over the per-element footprint.
	clockHz := dev.ClockMHz * 1e6
	compute := float64(p.Lanes) * clockHz
	if p.Pipeline == TwoStage {
		compute /= 2
	}
	// Mini-batch amortizes the per-update DRAM command overhead; plain
	// SGD pays it once per model-sized vector (Section 8: plain SGD is
	// acceptable only when a data vector spans >= ~100 bursts).
	bytesPerElem := float64(p.DataBits) / 8
	vecBursts := float64(p.ModelSize) * bytesPerElem / float64(dev.BurstBytes)
	cmdOverhead := 1.0
	if p.MiniBatch <= 1 && vecBursts < 100 {
		cmdOverhead = 1 + 20/vecBursts // fixed ~20-burst command setup cost
	}
	memory := dev.DRAMGBs * 1e9 / (bytesPerElem * cmdOverhead)
	r.ComputeGNPS = compute / 1e9
	r.MemoryGNPS = memory / 1e9
	r.GNPS = math.Min(r.ComputeGNPS, r.MemoryGNPS)
	r.GNPSPerWatt = r.GNPS / dev.Watts
	return r, nil
}

func validate(p Params) error {
	for _, b := range []uint{p.DataBits, p.ModelBits} {
		switch b {
		case 4, 8, 16, 32:
		default:
			return fmt.Errorf("fpga: precision %d not in {4, 8, 16, 32}", b)
		}
	}
	if p.Lanes < 1 {
		return fmt.Errorf("fpga: lanes must be positive")
	}
	if p.ModelSize < 1 {
		return fmt.Errorf("fpga: model size must be positive")
	}
	if p.MiniBatch < 0 {
		return fmt.Errorf("fpga: negative mini-batch")
	}
	return nil
}

// Search performs the DHDL-style heuristic design-space search: it sweeps
// lane counts (powers of two) and both pipeline organizations and returns
// the feasible design with the highest throughput, preferring lower
// resource use on ties.
func Search(dev Device, dataBits, modelBits uint, modelSize int, unbiased bool) (Report, error) {
	var best Report
	found := false
	for _, pipe := range []Pipeline{TwoStage, ThreeStage} {
		for lanes := 1; lanes <= 1024; lanes *= 2 {
			for _, b := range []int{1, 16} {
				r, err := Evaluate(dev, Params{
					DataBits:  dataBits,
					ModelBits: modelBits,
					Lanes:     lanes,
					Pipeline:  pipe,
					MiniBatch: b,
					ModelSize: modelSize,
					Unbiased:  unbiased,
				})
				if err != nil {
					return Report{}, err
				}
				if !r.Feasible {
					continue
				}
				if !found || r.GNPS > best.GNPS ||
					(r.GNPS == best.GNPS && r.ALMs < best.ALMs) {
					best = r
					found = true
				}
			}
		}
	}
	if !found {
		return Report{}, fmt.Errorf("fpga: no feasible design for D%dM%d n=%d on %s",
			dataBits, modelBits, modelSize, dev.Name)
	}
	return best, nil
}
