package fpga

import (
	"testing"
)

func TestDeviceAndValidation(t *testing.T) {
	dev := StratixVGSD8()
	if dev.ALMs <= 0 || dev.DSPs <= 0 || dev.BRAMKb <= 0 || dev.Watts <= 0 {
		t.Fatalf("bad device: %+v", dev)
	}
	bad := []Params{
		{DataBits: 7, ModelBits: 8, Lanes: 8, ModelSize: 100},
		{DataBits: 8, ModelBits: 8, Lanes: 0, ModelSize: 100},
		{DataBits: 8, ModelBits: 8, Lanes: 8, ModelSize: 0},
		{DataBits: 8, ModelBits: 8, Lanes: 8, ModelSize: 10, MiniBatch: -1},
	}
	for i, p := range bad {
		if _, err := Evaluate(dev, p); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestEvaluateFeasibleDesign(t *testing.T) {
	r, err := Evaluate(StratixVGSD8(), Params{
		DataBits: 8, ModelBits: 8, Lanes: 32, Pipeline: TwoStage,
		MiniBatch: 16, ModelSize: 4096, Unbiased: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatalf("modest design should fit: %s", r.Reason)
	}
	if r.GNPS <= 0 || r.GNPSPerWatt <= 0 {
		t.Errorf("throughput not computed: %+v", r)
	}
	if r.GNPS > r.ComputeGNPS || r.GNPS > r.MemoryGNPS {
		t.Error("GNPS must be the min of its ceilings")
	}
}

func TestInfeasibleDesigns(t *testing.T) {
	dev := StratixVGSD8()
	// Model too large for BRAM.
	r, err := Evaluate(dev, Params{DataBits: 32, ModelBits: 32, Lanes: 4,
		MiniBatch: 16, ModelSize: 1 << 24})
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Error("16M-element 32-bit model cannot fit 50Mb of BRAM")
	}
	// Absurd lane count blows the logic budget.
	r, _ = Evaluate(dev, Params{DataBits: 8, ModelBits: 8, Lanes: 1 << 16,
		MiniBatch: 16, ModelSize: 128})
	if r.Feasible {
		t.Error("65536 lanes cannot fit the ALM budget")
	}
}

func TestLowerPrecisionMoreThroughputLessArea(t *testing.T) {
	// Figure 7f: as precision decreases, throughput rises (up to
	// ~2.5x) and resources fall.
	dev := StratixVGSD8()
	const n = 8192
	r32, err := Search(dev, 32, 32, n, false)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Search(dev, 16, 16, n, true)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Search(dev, 8, 8, n, true)
	if err != nil {
		t.Fatal(err)
	}
	if !(r8.GNPS > r16.GNPS && r16.GNPS > r32.GNPS) {
		t.Errorf("throughput not monotone: 8=%v 16=%v 32=%v", r8.GNPS, r16.GNPS, r32.GNPS)
	}
	if ratio := r8.GNPS / r32.GNPS; ratio < 1.8 || ratio > 5 {
		t.Errorf("8-bit/32-bit throughput = %.2f, paper shows up to ~2.5x", ratio)
	}
	if r8.BRAMKb >= r32.BRAMKb {
		t.Error("lower precision must use less BRAM")
	}
}

func TestHalvingDatasetPrecisionHelps(t *testing.T) {
	// Section 8: "when keeping the model precision fixed, halving the
	// dataset precision improves both throughput and area".
	dev := StratixVGSD8()
	r16, err := Search(dev, 16, 16, 8192, true)
	if err != nil {
		t.Fatal(err)
	}
	r8d, err := Search(dev, 8, 16, 8192, true)
	if err != nil {
		t.Fatal(err)
	}
	if r8d.GNPS < r16.GNPS {
		t.Errorf("halving dataset precision should not lose throughput: %v vs %v", r8d.GNPS, r16.GNPS)
	}
}

func TestGNPSPerWattBeatsXeon(t *testing.T) {
	// Section 8: 0.339 GNPS/W on the FPGA vs 0.143 on the Xeon.
	r, err := Search(StratixVGSD8(), 8, 8, 8192, true)
	if err != nil {
		t.Fatal(err)
	}
	const xeonGNPSPerWatt = 0.143
	if r.GNPSPerWatt < 1.5*xeonGNPSPerWatt {
		t.Errorf("FPGA GNPS/W = %v, should clearly beat the Xeon's %v", r.GNPSPerWatt, xeonGNPSPerWatt)
	}
	if r.GNPSPerWatt > 10*xeonGNPSPerWatt {
		t.Errorf("FPGA GNPS/W = %v suspiciously high", r.GNPSPerWatt)
	}
}

func TestPipelineTradeoff(t *testing.T) {
	// Figure 7c: three-stage spends BRAM to simplify logic; two-stage
	// the reverse.
	dev := StratixVGSD8()
	p := Params{DataBits: 8, ModelBits: 8, Lanes: 64, MiniBatch: 16, ModelSize: 65536}
	p.Pipeline = TwoStage
	two, err := Evaluate(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Pipeline = ThreeStage
	three, err := Evaluate(dev, p)
	if err != nil {
		t.Fatal(err)
	}
	if three.BRAMKb <= two.BRAMKb {
		t.Error("three-stage must use more BRAM (redundant copy)")
	}
	if three.ALMs >= two.ALMs {
		t.Error("two-stage must use more logic (double-rate stage)")
	}
	if TwoStage.String() != "two-stage" || ThreeStage.String() != "three-stage" {
		t.Error("pipeline names")
	}
}

func TestMiniBatchRuleOfSection8(t *testing.T) {
	// Mini-batch wins unless a data vector spans >= ~100 DRAM bursts.
	dev := StratixVGSD8()
	smallVec := Params{DataBits: 8, ModelBits: 8, Lanes: 64, Pipeline: ThreeStage, ModelSize: 1024}
	b1 := smallVec
	b1.MiniBatch = 1
	b16 := smallVec
	b16.MiniBatch = 16
	r1, err := Evaluate(dev, b1)
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Evaluate(dev, b16)
	if err != nil {
		t.Fatal(err)
	}
	if r16.GNPS <= r1.GNPS {
		t.Errorf("mini-batch should win for short vectors: B1=%v B16=%v", r1.GNPS, r16.GNPS)
	}
	// A vector spanning >100 bursts amortizes commands by itself.
	bigVec := smallVec
	bigVec.ModelSize = 100 * dev.BurstBytes * 2 // ~200 bursts at 1 B/elem
	bigVec.MiniBatch = 1
	rBig, err := Evaluate(dev, bigVec)
	if err != nil {
		t.Fatal(err)
	}
	bigVec.MiniBatch = 16
	rBigB, err := Evaluate(dev, bigVec)
	if err != nil {
		t.Fatal(err)
	}
	if rBig.GNPS < 0.95*rBigB.GNPS {
		t.Errorf("long vectors should not need mini-batching: %v vs %v", rBig.GNPS, rBigB.GNPS)
	}
}

func TestSearchReturnsBest(t *testing.T) {
	dev := StratixVGSD8()
	best, err := Search(dev, 8, 8, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("search returned infeasible design")
	}
	// No single evaluated candidate should beat the search result.
	for lanes := 1; lanes <= 1024; lanes *= 2 {
		for _, pipe := range []Pipeline{TwoStage, ThreeStage} {
			r, err := Evaluate(dev, Params{DataBits: 8, ModelBits: 8, Lanes: lanes,
				Pipeline: pipe, MiniBatch: 16, ModelSize: 4096, Unbiased: true})
			if err != nil {
				t.Fatal(err)
			}
			if r.Feasible && r.GNPS > best.GNPS {
				t.Errorf("search missed a better design: %+v", r.Params)
			}
		}
	}
	if _, err := Search(dev, 32, 32, 1<<26, false); err == nil {
		t.Error("impossible model size should fail the search")
	}
}
