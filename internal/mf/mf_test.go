package mf

import (
	"testing"

	"buckwild/internal/kernels"
)

func ratings(t *testing.T, levels int) *Ratings {
	t.Helper()
	r, err := Generate(GenConfig{
		Users: 80, Items: 60, Rank: 4, Observed: 6000, Levels: levels, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGenerate(t *testing.T) {
	r := ratings(t, 5)
	if r.Len() != 6000 {
		t.Fatalf("Len = %d", r.Len())
	}
	seenLevels := map[float32]bool{}
	for k := 0; k < r.Len(); k++ {
		if r.U[k] < 0 || int(r.U[k]) >= r.Users || r.I[k] < 0 || int(r.I[k]) >= r.Items {
			t.Fatal("coordinate out of range")
		}
		seenLevels[r.R[k]] = true
	}
	if len(seenLevels) > 5 {
		t.Errorf("%d distinct levels, want <= 5 (naturally quantized)", len(seenLevels))
	}
	if len(seenLevels) < 2 {
		t.Error("degenerate ratings")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GenConfig{Users: 0, Items: 1, Rank: 1, Observed: 1}); err == nil {
		t.Error("zero users should fail")
	}
	if _, err := Generate(GenConfig{Users: 1, Items: 1, Rank: 0, Observed: 1}); err == nil {
		t.Error("zero rank should fail")
	}
}

func trainCfg(m kernels.Prec, threads int) Config {
	return Config{
		Rank:        8,
		M:           m,
		Quant:       kernels.QShared,
		QuantPeriod: 8,
		Threads:     threads,
		StepSize:    0.05,
		Lambda:      0.01,
		Epochs:      10,
		Seed:        7,
	}
}

func TestTrainFullPrecision(t *testing.T) {
	data := ratings(t, 5)
	_, res, err := Train(trainCfg(kernels.F32, 1), data)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.RMSE[0], res.RMSE[len(res.RMSE)-1]
	if last >= first*0.7 {
		t.Errorf("RMSE did not fall: %v -> %v", first, last)
	}
	if last > 0.12 {
		t.Errorf("final RMSE %v too high for a rank-8 fit of rank-4 data", last)
	}
}

func TestTrainLowPrecisionCloseToFull(t *testing.T) {
	data := ratings(t, 5)
	_, full, err := Train(trainCfg(kernels.F32, 1), data)
	if err != nil {
		t.Fatal(err)
	}
	_, low, err := Train(trainCfg(kernels.I16, 1), data)
	if err != nil {
		t.Fatal(err)
	}
	lf := full.RMSE[len(full.RMSE)-1]
	ll := low.RMSE[len(low.RMSE)-1]
	if ll > lf*1.5+0.02 {
		t.Errorf("16-bit RMSE %v too far above full-precision %v", ll, lf)
	}
}

func TestTrainEightBit(t *testing.T) {
	data := ratings(t, 5)
	_, res, err := Train(trainCfg(kernels.I8, 1), data)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.RMSE[0], res.RMSE[len(res.RMSE)-1]
	if last >= first*0.8 {
		t.Errorf("8-bit training did not improve RMSE: %v -> %v", first, last)
	}
}

func TestTrainHogwildThreads(t *testing.T) {
	data := ratings(t, 5)
	_, res, err := Train(trainCfg(kernels.I8, 4), data)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE[len(res.RMSE)-1] >= res.RMSE[0]*0.8 {
		t.Error("racy multi-worker factorization did not converge")
	}
}

func TestTrainErrors(t *testing.T) {
	data := ratings(t, 5)
	cfg := trainCfg(kernels.F32, 1)
	cfg.Rank = 0
	if _, _, err := Train(cfg, data); err == nil {
		t.Error("zero rank should fail")
	}
	cfg = trainCfg(kernels.F32, 1)
	cfg.StepSize = 0
	if _, _, err := Train(cfg, data); err == nil {
		t.Error("zero step should fail")
	}
	if _, _, err := Train(trainCfg(kernels.F32, 1), &Ratings{}); err == nil {
		t.Error("empty ratings should fail")
	}
}

func TestPredictBounds(t *testing.T) {
	data := ratings(t, 5)
	m, _, err := Train(trainCfg(kernels.F32, 1), data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(-1, 0); err == nil {
		t.Error("negative user should fail")
	}
	if _, err := m.Predict(0, 10000); err == nil {
		t.Error("out-of-range item should fail")
	}
	if _, err := m.Predict(0, 0); err != nil {
		t.Errorf("valid prediction failed: %v", err)
	}
	if got := m.RMSE(data); got <= 0 {
		t.Errorf("RMSE helper = %v", got)
	}
}
