// Package mf implements low-rank matrix factorization (collaborative
// filtering) trained with Buckwild! SGD. Recommender systems are one of the
// asynchronous-SGD domains the paper names explicitly, and one of the
// applications it calls out as having a naturally quantized input dataset
// (star ratings), so the dataset precision can be lowered with no loss of
// fidelity at all (Section 3, "Dataset numbers").
//
// The model is R ~ U V^T with U (users x rank) and V (items x rank); for an
// observed rating r_{ui}, SGD performs
//
//	e    = r_{ui} - <U_u, V_i>
//	U_u += eta (e V_i - lambda U_u)
//	V_i += eta (e U_u - lambda V_u)
//
// Both factor matrices are DMGC model numbers: they are stored at the model
// precision and every write is rounded by the configured quantizer. Updates
// touch only two rank-length rows, so collisions between asynchronous
// workers are rare — the Hogwild! sweet spot.
package mf

import (
	"fmt"
	"math"
	"sync"

	"buckwild/internal/kernels"
	"buckwild/internal/prng"
)

// Ratings is a sparse observed ratings set in coordinate form. Values are
// raw rating levels (e.g. 1..5), which are exactly representable at low
// precision — the "naturally quantized" case.
type Ratings struct {
	Users, Items int
	U, I         []int32
	R            []float32
}

// Len returns the number of observed ratings.
func (r *Ratings) Len() int { return len(r.R) }

// GenConfig configures synthetic ratings generation.
type GenConfig struct {
	Users, Items int
	// Rank is the generating latent dimension.
	Rank int
	// Observed is the number of sampled ratings.
	Observed int
	// Levels quantizes ratings to 1..Levels (0 keeps raw real values).
	Levels int
	Seed   uint64
}

// Generate samples a low-rank ratings matrix: latent factors are uniform,
// ratings are affine-mapped inner products plus noise, optionally snapped
// to discrete star levels.
func Generate(cfg GenConfig) (*Ratings, error) {
	if cfg.Users < 1 || cfg.Items < 1 || cfg.Rank < 1 || cfg.Observed < 1 {
		return nil, fmt.Errorf("mf: all generation sizes must be positive")
	}
	g := prng.NewXorshift128(cfg.Seed ^ 0x4A7E5)
	uf := randomFactors(cfg.Users, cfg.Rank, g)
	vf := randomFactors(cfg.Items, cfg.Rank, g)
	out := &Ratings{
		Users: cfg.Users, Items: cfg.Items,
		U: make([]int32, cfg.Observed),
		I: make([]int32, cfg.Observed),
		R: make([]float32, cfg.Observed),
	}
	scale := 1 / math.Sqrt(float64(cfg.Rank))
	for k := 0; k < cfg.Observed; k++ {
		u := int32(g.Uint32() % uint32(cfg.Users))
		i := int32(g.Uint32() % uint32(cfg.Items))
		var dot float64
		for d := 0; d < cfg.Rank; d++ {
			dot += float64(uf[u][d]) * float64(vf[i][d])
		}
		// Map to roughly [0.2, 0.8] plus noise.
		r := 0.5 + 0.3*dot*scale + 0.03*float64(prng.Float32(g)-0.5)
		if cfg.Levels > 0 {
			lv := math.Round(r * float64(cfg.Levels))
			if lv < 1 {
				lv = 1
			}
			if lv > float64(cfg.Levels) {
				lv = float64(cfg.Levels)
			}
			r = lv / float64(cfg.Levels)
		}
		out.U[k], out.I[k], out.R[k] = u, i, float32(r)
	}
	return out, nil
}

func randomFactors(n, rank int, g prng.Source) [][]float32 {
	out := make([][]float32, n)
	for i := range out {
		row := make([]float32, rank)
		for d := range row {
			row[d] = prng.Float32(g)*2 - 1
		}
		out[i] = row
	}
	return out
}

// Config configures factorization training.
type Config struct {
	Rank int
	// M is the factor (model) precision; Quant/QuantPeriod the rounding
	// strategy for factor writes.
	M           kernels.Prec
	Quant       kernels.QuantKind
	QuantPeriod int
	Threads     int
	StepSize    float32
	// Lambda is the L2 regularization weight.
	Lambda float32
	Epochs int
	Seed   uint64
}

// Model holds the learned factor matrices at the model precision.
type Model struct {
	Rank int
	U, V []kernels.Vec
}

// Result reports a training run.
type Result struct {
	// RMSE is the training root-mean-squared error after each epoch
	// (index 0 = before training), evaluated in full precision.
	RMSE []float64
}

// Train factorizes the observed ratings with asynchronous low-precision
// SGD.
func Train(cfg Config, data *Ratings) (*Model, *Result, error) {
	if data == nil || data.Len() == 0 {
		return nil, nil, fmt.Errorf("mf: empty ratings")
	}
	if cfg.Rank < 1 {
		return nil, nil, fmt.Errorf("mf: rank must be positive")
	}
	if cfg.StepSize <= 0 {
		return nil, nil, fmt.Errorf("mf: step size must be positive")
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Epochs < 1 {
		cfg.Epochs = 1
	}
	m := &Model{Rank: cfg.Rank}
	g := prng.NewXorshift128(cfg.Seed ^ 0x314C7)
	var err error
	if m.U, err = initFactors(data.Users, cfg, g); err != nil {
		return nil, nil, err
	}
	if m.V, err = initFactors(data.Items, cfg, g); err != nil {
		return nil, nil, err
	}

	res := &Result{RMSE: []float64{m.rmse(data)}}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := m.epoch(cfg, data, epoch); err != nil {
			return nil, nil, err
		}
		res.RMSE = append(res.RMSE, m.rmse(data))
	}
	return m, res, nil
}

// initFactors allocates quantized factor rows with small random entries.
func initFactors(n int, cfg Config, g prng.Source) ([]kernels.Vec, error) {
	var q *kernels.Quantizer
	var err error
	if cfg.M != kernels.F32 {
		q, err = kernels.NewQuantizer(cfg.M, cfg.Quant, cfg.QuantPeriod, uint64(g.Uint32())|1)
		if err != nil {
			return nil, err
		}
	}
	scale := float32(1 / math.Sqrt(float64(cfg.Rank)))
	out := make([]kernels.Vec, n)
	for i := range out {
		v := kernels.NewVec(cfg.M, cfg.Rank)
		for d := 0; d < cfg.Rank; d++ {
			v.Set(d, (prng.Float32(g))*scale, q)
		}
		out[i] = v
	}
	return out, nil
}

// epoch processes every observed rating once, spread over the workers
// (lock-free: factor rows are shared and updated racily, as in Hogwild!).
func (m *Model) epoch(cfg Config, data *Ratings, epoch int) error {
	var wg sync.WaitGroup
	errs := make([]error, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		var q *kernels.Quantizer
		var err error
		if cfg.M != kernels.F32 {
			q, err = kernels.NewQuantizer(cfg.M, cfg.Quant, cfg.QuantPeriod,
				cfg.Seed^uint64(t+1)*0x9E3779B9+uint64(epoch)|1)
			if err != nil {
				return err
			}
		}
		lo := t * data.Len() / cfg.Threads
		hi := (t + 1) * data.Len() / cfg.Threads
		wg.Add(1)
		go func(t, lo, hi int, q *kernels.Quantizer) {
			defer wg.Done()
			errs[t] = m.shard(cfg, data, q, lo, hi)
		}(t, lo, hi, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shard runs SGD over ratings [lo, hi).
func (m *Model) shard(cfg Config, data *Ratings, q *kernels.Quantizer, lo, hi int) error {
	rank := cfg.Rank
	for k := lo; k < hi; k++ {
		uu := m.U[data.U[k]]
		vv := m.V[data.I[k]]
		var dot float32
		for d := 0; d < rank; d++ {
			dot += uu.At(d) * vv.At(d)
		}
		e := data.R[k] - dot
		for d := 0; d < rank; d++ {
			ud, vd := uu.At(d), vv.At(d)
			uu.Set(d, ud+cfg.StepSize*(e*vd-cfg.Lambda*ud), q)
			vv.Set(d, vd+cfg.StepSize*(e*ud-cfg.Lambda*vd), q)
		}
	}
	return nil
}

// Predict returns the model's rating estimate for (user, item).
func (m *Model) Predict(user, item int) (float32, error) {
	if user < 0 || user >= len(m.U) || item < 0 || item >= len(m.V) {
		return 0, fmt.Errorf("mf: (%d, %d) out of range", user, item)
	}
	var dot float32
	for d := 0; d < m.Rank; d++ {
		dot += m.U[user].At(d) * m.V[item].At(d)
	}
	return dot, nil
}

// rmse evaluates the full-precision training RMSE.
func (m *Model) rmse(data *Ratings) float64 {
	var se float64
	for k := 0; k < data.Len(); k++ {
		p, _ := m.Predict(int(data.U[k]), int(data.I[k]))
		d := float64(data.R[k] - p)
		se += d * d
	}
	return math.Sqrt(se / float64(data.Len()))
}

// RMSE exposes the evaluation for external callers.
func (m *Model) RMSE(data *Ratings) float64 { return m.rmse(data) }
