package dataset

import (
	"bytes"
	"strings"
	"testing"

	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
)

const sampleLibSVM = `+1 1:0.5 3:-0.25 10:1 # a comment
-1 2:0.75

+1 1:-1 2:0.125
`

func TestReadLibSVM(t *testing.T) {
	d, err := ReadLibSVM(strings.NewReader(sampleLibSVM), LibSVMConfig{
		P: kernels.I8, IdxBits: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("examples = %d, want 3", d.Len())
	}
	if d.N != 10 {
		t.Errorf("inferred dimension = %d, want 10", d.N)
	}
	if d.Y[0] != 1 || d.Y[1] != -1 || d.Y[2] != 1 {
		t.Errorf("labels wrong: %v", d.Y)
	}
	// Indices are converted to 0-based.
	if d.Idx[0][0] != 0 || d.Idx[0][1] != 2 || d.Idx[0][2] != 9 {
		t.Errorf("indices wrong: %v", d.Idx[0])
	}
	// Values quantized at I8 but exactly representable here.
	if got := d.Val[0].At(1); got != -0.25 {
		t.Errorf("quantized value = %v, want -0.25", got)
	}
	if d.IdxBits != 16 {
		t.Error("IdxBits not preserved")
	}
}

func TestReadLibSVMNumFeatures(t *testing.T) {
	d, err := ReadLibSVM(strings.NewReader("+1 1:1\n"), LibSVMConfig{
		P: kernels.F32, NumFeatures: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 100 {
		t.Errorf("forced dimension = %d", d.N)
	}
	if _, err := ReadLibSVM(strings.NewReader("+1 50:1\n"), LibSVMConfig{
		P: kernels.F32, NumFeatures: 10,
	}); err == nil {
		t.Error("NumFeatures smaller than max index should fail")
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	bad := []string{
		"abc 1:1\n",        // bad label
		"+1 0:1\n",         // index < 1
		"+1 x:1\n",         // bad index
		"+1 1:z\n",         // bad value
		"+1 nocolon\n",     // missing colon
		"+1 3:1 2:1\n",     // decreasing indices
		"",                 // empty input
		"# only comment\n", // no examples
	}
	for _, in := range bad {
		if _, err := ReadLibSVM(strings.NewReader(in), LibSVMConfig{P: kernels.F32}); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
	if _, err := ReadLibSVM(strings.NewReader("+1 1:1\n"), LibSVMConfig{P: kernels.F32, IdxBits: 9}); err == nil {
		t.Error("bad index precision should fail")
	}
}

func TestReadLibSVMTrailingBlankLines(t *testing.T) {
	// Trailing blank lines, comment-only lines and a missing final
	// newline are all tolerated, and the line numbering in errors stays
	// anchored to the physical file.
	in := "+1 1:0.5\n-1 2:0.25\n\n\n# trailing comment\n\n"
	d, err := ReadLibSVM(strings.NewReader(in), LibSVMConfig{P: kernels.F32})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("examples = %d, want 2", d.Len())
	}
	d, err = ReadLibSVM(strings.NewReader("+1 1:0.5"), LibSVMConfig{P: kernels.F32})
	if err != nil || d.Len() != 1 {
		t.Fatalf("no final newline: %v, %v", d, err)
	}
}

func TestReadLibSVMOutOfOrderIndices(t *testing.T) {
	for _, in := range []string{
		"+1 3:1 2:1\n", // decreasing
		"+1 2:1 2:5\n", // duplicate
	} {
		_, err := ReadLibSVM(strings.NewReader(in), LibSVMConfig{P: kernels.F32})
		if err == nil || !strings.Contains(err.Error(), "strictly increasing") {
			t.Errorf("input %q: %v", in, err)
		}
	}
}

func TestReadLibSVMErrorsNamePath(t *testing.T) {
	cfg := LibSVMConfig{P: kernels.F32, Path: "data/a9a.svm"}
	_, err := ReadLibSVM(strings.NewReader("+1 1:1\nbogus 1:1\n"), cfg)
	if err == nil || !strings.Contains(err.Error(), "data/a9a.svm:2:") {
		t.Fatalf("error should carry path and line: %v", err)
	}
	_, err = ReadLibSVM(strings.NewReader(""), cfg)
	if err == nil || !strings.Contains(err.Error(), "data/a9a.svm") {
		t.Fatalf("empty-input error should name the file: %v", err)
	}
	// Without a path the historical "line N" form is kept.
	_, err = ReadLibSVM(strings.NewReader("bogus 1:1\n"), LibSVMConfig{P: kernels.F32})
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("pathless error: %v", err)
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	orig, err := GenSparse(SparseConfig{
		N: 200, M: 25, Density: 0.05, P: kernels.F32, IdxBits: 32,
		Rounding: fixed.Biased, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Writing requires sorted indices per line; sort a copy.
	for i := range orig.Idx {
		sortPair(orig.Idx[i], orig.RawVal[i])
		v := kernels.NewVec(kernels.F32, len(orig.RawVal[i]))
		copy(v.F32, orig.RawVal[i])
		orig.Val[i] = v
	}
	var buf bytes.Buffer
	if err := WriteLibSVM(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, LibSVMConfig{P: kernels.F32, NumFeatures: 200})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() || back.N != orig.N {
		t.Fatalf("shape changed: %dx%d -> %dx%d", orig.Len(), orig.N, back.Len(), back.N)
	}
	for i := 0; i < orig.Len(); i++ {
		if back.Y[i] != orig.Y[i] {
			t.Fatalf("label %d changed", i)
		}
		for k := range orig.Idx[i] {
			if back.Idx[i][k] != orig.Idx[i][k] {
				t.Fatalf("index (%d,%d) changed", i, k)
			}
			if back.RawVal[i][k] != orig.RawVal[i][k] {
				t.Fatalf("value (%d,%d) changed: %v -> %v", i, k, orig.RawVal[i][k], back.RawVal[i][k])
			}
		}
	}
	if err := WriteLibSVM(&buf, &SparseSet{}); err == nil {
		t.Error("empty write should fail")
	}
}

// sortPair sorts idx ascending, permuting vals identically.
func sortPair(idx []int32, vals []float32) {
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && idx[j] < idx[j-1]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
}
