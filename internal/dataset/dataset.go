// Package dataset generates the synthetic workloads used throughout the
// reproduction. The paper's hardware-efficiency experiments use
// "artificially-generated datasets ... sampled from the generative model for
// logistic regression, using a true model vector w* and example vectors xi
// all sampled uniformly from [-1,1]^n" (Section 4, footnote 9); this package
// implements that model for dense and sparse (3% density) data, plus a
// synthetic 10-class digit task standing in for MNIST in the CNN and kernel
// SVM experiments (the real datasets are not available offline; the
// statistical-efficiency trends under study depend on the optimization
// landscape, not the specific images — see DESIGN.md).
package dataset

import (
	"fmt"
	"math"

	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/prng"
)

// DenseConfig configures a dense logistic-regression dataset.
type DenseConfig struct {
	// N is the model dimension, M the number of examples.
	N, M int
	// P is the dataset precision the examples are quantized to.
	P kernels.Prec
	// Rounding selects how the dataset is quantized (Section 3: the
	// dataset is quantized once, up front).
	Rounding fixed.Rounding
	// Margin scales the true model so that |<x, w*>| has a useful
	// spread; labels are Bernoulli(sigmoid(margin-scaled dot)). Zero
	// selects a default of 8/sqrt(N).
	Margin float64
	// Regression switches label generation to y = <x, w*> + noise,
	// for linear-regression workloads.
	Regression bool
	Seed       uint64
}

// DenseSet is a dense dataset: M examples of dimension N with +-1 labels
// (or real-valued targets for regression).
type DenseSet struct {
	N int
	// X holds the quantized examples at the dataset precision.
	X []kernels.Vec
	// Raw holds the original full-precision examples, used by
	// evaluation code so that test metrics are not polluted by dataset
	// quantization.
	Raw [][]float32
	// Y holds labels (+1/-1) or regression targets.
	Y []float32
	// TrueW is the generating model vector.
	TrueW []float32
}

// Len returns the number of examples.
func (d *DenseSet) Len() int { return len(d.X) }

// Dim returns the model dimension.
func (d *DenseSet) Dim() int { return d.N }

// GenDense samples a dense dataset from the logistic generative model.
func GenDense(cfg DenseConfig) (*DenseSet, error) {
	if cfg.N <= 0 || cfg.M <= 0 {
		return nil, fmt.Errorf("dataset: need positive N and M, got %d, %d", cfg.N, cfg.M)
	}
	g := prng.NewXorshift128(cfg.Seed ^ 0xDA7A5E7)
	margin := cfg.Margin
	if margin == 0 {
		margin = 8 / math.Sqrt(float64(cfg.N))
	}
	d := &DenseSet{
		N:     cfg.N,
		X:     make([]kernels.Vec, cfg.M),
		Raw:   make([][]float32, cfg.M),
		Y:     make([]float32, cfg.M),
		TrueW: make([]float32, cfg.N),
	}
	for i := range d.TrueW {
		d.TrueW[i] = uniform(g)
	}
	var rs fixed.RandSource
	if cfg.Rounding == fixed.Unbiased {
		rs = prng.NewXorshift32(uint32(cfg.Seed) | 1)
	}
	for i := 0; i < cfg.M; i++ {
		row := make([]float32, cfg.N)
		var dot float64
		for j := range row {
			row[j] = uniform(g)
			dot += float64(row[j]) * float64(d.TrueW[j])
		}
		d.Raw[i] = row
		d.X[i] = quantizeRow(cfg.P, row, cfg.Rounding, rs)
		if cfg.Regression {
			d.Y[i] = float32(dot*margin) + 0.05*uniform(g)
		} else {
			p := 1 / (1 + math.Exp(-dot*margin))
			if float64(prng.Float32(g)) < p {
				d.Y[i] = 1
			} else {
				d.Y[i] = -1
			}
		}
	}
	return d, nil
}

// SparseConfig configures a sparse logistic-regression dataset.
type SparseConfig struct {
	N, M int
	// Density is the fraction of nonzero coordinates per example
	// (the paper uses 3%).
	Density float64
	P       kernels.Prec
	// IdxBits is the stored index precision (8, 16 or 32).
	IdxBits  uint
	Rounding fixed.Rounding
	Margin   float64
	Seed     uint64
}

// SparseSet is a sparse dataset in coordinate form: for example i, Idx[i]
// lists the nonzero positions and Val[i] their quantized values.
type SparseSet struct {
	N       int
	IdxBits uint
	Idx     [][]int32
	Val     []kernels.Vec
	// RawVal holds the unquantized nonzero values.
	RawVal [][]float32
	Y      []float32
	TrueW  []float32
}

// Len returns the number of examples.
func (d *SparseSet) Len() int { return len(d.Idx) }

// Dim returns the model dimension.
func (d *SparseSet) Dim() int { return d.N }

// NNZ returns the total number of nonzeros across all examples.
func (d *SparseSet) NNZ() int {
	t := 0
	for _, ix := range d.Idx {
		t += len(ix)
	}
	return t
}

// GenSparse samples a sparse dataset: each example draws round(density*N)
// distinct coordinates uniformly and gives them U[-1,1] values.
func GenSparse(cfg SparseConfig) (*SparseSet, error) {
	if cfg.N <= 0 || cfg.M <= 0 {
		return nil, fmt.Errorf("dataset: need positive N and M, got %d, %d", cfg.N, cfg.M)
	}
	if cfg.Density <= 0 || cfg.Density > 1 {
		return nil, fmt.Errorf("dataset: density %v out of (0, 1]", cfg.Density)
	}
	switch cfg.IdxBits {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("dataset: index precision must be 8, 16 or 32 bits")
	}
	nnz := int(cfg.Density * float64(cfg.N))
	if nnz < 1 {
		nnz = 1
	}
	g := prng.NewXorshift128(cfg.Seed ^ 0x5BA25E)
	margin := cfg.Margin
	if margin == 0 {
		margin = 8 / math.Sqrt(cfg.Density*float64(cfg.N))
	}
	d := &SparseSet{
		N:       cfg.N,
		IdxBits: cfg.IdxBits,
		Idx:     make([][]int32, cfg.M),
		Val:     make([]kernels.Vec, cfg.M),
		RawVal:  make([][]float32, cfg.M),
		Y:       make([]float32, cfg.M),
		TrueW:   make([]float32, cfg.N),
	}
	for i := range d.TrueW {
		d.TrueW[i] = uniform(g)
	}
	var rs fixed.RandSource
	if cfg.Rounding == fixed.Unbiased {
		rs = prng.NewXorshift32(uint32(cfg.Seed) | 1)
	}
	seen := make(map[int32]bool, nnz)
	for i := 0; i < cfg.M; i++ {
		idx := make([]int32, 0, nnz)
		clear(seen)
		for len(idx) < nnz {
			j := int32(g.Uint32() % uint32(cfg.N))
			if !seen[j] {
				seen[j] = true
				idx = append(idx, j)
			}
		}
		vals := make([]float32, nnz)
		var dot float64
		for k, j := range idx {
			vals[k] = uniform(g)
			dot += float64(vals[k]) * float64(d.TrueW[j])
		}
		d.Idx[i] = idx
		d.RawVal[i] = vals
		d.Val[i] = quantizeRow(cfg.P, vals, cfg.Rounding, rs)
		p := 1 / (1 + math.Exp(-dot*margin))
		if float64(prng.Float32(g)) < p {
			d.Y[i] = 1
		} else {
			d.Y[i] = -1
		}
	}
	return d, nil
}

// uniform returns a sample from U[-1, 1).
func uniform(g prng.Source) float32 {
	return prng.Float32(g)*2 - 1
}

// quantizeRow stores row at precision p (F32 passes through).
func quantizeRow(p kernels.Prec, row []float32, mode fixed.Rounding, rs fixed.RandSource) kernels.Vec {
	v := kernels.NewVec(p, len(row))
	if p == kernels.F32 {
		copy(v.F32, row)
		return v
	}
	f := p.Fixed()
	for i, x := range row {
		v.SetRaw(i, f.Quantize(x, mode, rs))
	}
	return v
}
