package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
	"buckwild/internal/prng"
)

// LIBSVM-format input, so real datasets (a9a, rcv1, news20, ...) can be fed
// to the engine in the format the sparse-learning community uses:
//
//	<label> <index>:<value> <index>:<value> ...
//
// with 1-based feature indices. Lines may carry a trailing '#' comment.

// LibSVMConfig controls how a parsed dataset is stored.
type LibSVMConfig struct {
	// P is the dataset precision the values are quantized to.
	P kernels.Prec
	// IdxBits is the stored index precision (8, 16 or 32).
	IdxBits uint
	// Rounding selects the one-time dataset quantization discipline.
	Rounding fixed.Rounding
	// NumFeatures forces the model dimension; zero infers it from the
	// largest index seen.
	NumFeatures int
	Seed        uint64
	// Path, when set, names the input in parse errors ("path:line: ...")
	// so a bad record in a multi-gigabyte file is locatable.
	Path string
}

// loc renders an error location, with the file name when known.
func (c *LibSVMConfig) loc(line int) string {
	if c.Path != "" {
		return fmt.Sprintf("%s:%d", c.Path, line)
	}
	return fmt.Sprintf("line %d", line)
}

// name identifies the whole input in stream-level errors.
func (c *LibSVMConfig) name() string {
	if c.Path != "" {
		return c.Path
	}
	return "input"
}

// ReadLibSVM parses a LIBSVM-format stream into a sparse dataset. Labels
// are mapped to +-1: values > 0 become +1 and everything else -1 (the
// binary convention; multiclass files should be pre-filtered).
func ReadLibSVM(r io.Reader, cfg LibSVMConfig) (*SparseSet, error) {
	switch cfg.IdxBits {
	case 0:
		cfg.IdxBits = 32
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("dataset: index precision must be 8, 16 or 32 bits")
	}
	var rs fixed.RandSource
	if cfg.Rounding == fixed.Unbiased {
		rs = prng.NewXorshift32(uint32(cfg.Seed) | 1)
	}

	d := &SparseSet{IdxBits: cfg.IdxBits}
	maxIdx := int32(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		label, err := strconv.ParseFloat(fields[0], 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: %s: bad label %q", cfg.loc(lineNo), fields[0])
		}
		y := float32(-1)
		if label > 0 {
			y = 1
		}
		idx := make([]int32, 0, len(fields)-1)
		vals := make([]float32, 0, len(fields)-1)
		prev := int32(-1)
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon <= 0 {
				return nil, fmt.Errorf("dataset: %s: bad feature %q", cfg.loc(lineNo), f)
			}
			j, err := strconv.ParseInt(f[:colon], 10, 32)
			if err != nil || j < 1 {
				return nil, fmt.Errorf("dataset: %s: bad index %q", cfg.loc(lineNo), f[:colon])
			}
			v, err := strconv.ParseFloat(f[colon+1:], 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s: bad value %q", cfg.loc(lineNo), f[colon+1:])
			}
			j0 := int32(j - 1) // to 0-based
			if j0 <= prev {
				return nil, fmt.Errorf("dataset: %s: indices must be strictly increasing", cfg.loc(lineNo))
			}
			prev = j0
			if j0 > maxIdx {
				maxIdx = j0
			}
			idx = append(idx, j0)
			vals = append(vals, float32(v))
		}
		if len(idx) == 0 {
			continue
		}
		d.Idx = append(d.Idx, idx)
		d.RawVal = append(d.RawVal, vals)
		d.Val = append(d.Val, quantizeRow(cfg.P, vals, cfg.Rounding, rs))
		d.Y = append(d.Y, y)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading %s: %w", cfg.name(), err)
	}
	if len(d.Idx) == 0 {
		return nil, fmt.Errorf("dataset: no examples in %s", cfg.name())
	}
	d.N = int(maxIdx) + 1
	if cfg.NumFeatures > 0 {
		if cfg.NumFeatures <= int(maxIdx) {
			return nil, fmt.Errorf("dataset: NumFeatures %d smaller than max index %d", cfg.NumFeatures, maxIdx+1)
		}
		d.N = cfg.NumFeatures
	}
	return d, nil
}

// WriteLibSVM writes a sparse dataset in LIBSVM format (1-based indices,
// raw full-precision values).
func WriteLibSVM(w io.Writer, d *SparseSet) error {
	if d == nil || d.Len() == 0 {
		return fmt.Errorf("dataset: nothing to write")
	}
	bw := bufio.NewWriter(w)
	for i := 0; i < d.Len(); i++ {
		if _, err := fmt.Fprintf(bw, "%+g", d.Y[i]); err != nil {
			return err
		}
		for k, j := range d.Idx[i] {
			if _, err := fmt.Fprintf(bw, " %d:%g", j+1, d.RawVal[i][k]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
