package dataset

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"buckwild/internal/fixed"
	"buckwild/internal/kernels"
)

func TestGenDenseBasics(t *testing.T) {
	d, err := GenDense(DenseConfig{N: 64, M: 100, P: kernels.I8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 100 || d.N != 64 {
		t.Fatalf("shape: %d x %d", d.Len(), d.N)
	}
	for i := 0; i < d.Len(); i++ {
		if d.X[i].Len() != 64 || len(d.Raw[i]) != 64 {
			t.Fatal("row length wrong")
		}
		if d.Y[i] != 1 && d.Y[i] != -1 {
			t.Fatalf("label %v not in {-1,+1}", d.Y[i])
		}
		for j := 0; j < 64; j++ {
			if r := d.Raw[i][j]; r < -1 || r >= 1 {
				t.Fatalf("raw value %v outside [-1,1)", r)
			}
			// Quantized value within a quantum of the raw value.
			if diff := math.Abs(float64(d.X[i].At(j) - d.Raw[i][j])); diff > float64(fixed.Q8.Quantum()) {
				t.Fatalf("quantized value drifted by %v", diff)
			}
		}
	}
}

func TestGenDenseLabelsCorrelateWithTrueModel(t *testing.T) {
	d, err := GenDense(DenseConfig{N: 128, M: 2000, P: kernels.F32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < d.Len(); i++ {
		var dot float64
		for j := 0; j < d.N; j++ {
			dot += float64(d.Raw[i][j]) * float64(d.TrueW[j])
		}
		if (dot >= 0) == (d.Y[i] > 0) {
			agree++
		}
	}
	frac := float64(agree) / float64(d.Len())
	if frac < 0.75 {
		t.Errorf("only %.0f%% of labels agree with the generating model", frac*100)
	}
	if frac == 1 {
		t.Error("labels are deterministic; the logistic noise is missing")
	}
}

func TestGenDenseRegression(t *testing.T) {
	d, err := GenDense(DenseConfig{N: 32, M: 200, P: kernels.F32, Regression: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	nonPM := false
	for _, y := range d.Y {
		if y != 1 && y != -1 {
			nonPM = true
		}
	}
	if !nonPM {
		t.Error("regression targets look like classification labels")
	}
}

func TestGenDenseErrors(t *testing.T) {
	if _, err := GenDense(DenseConfig{N: 0, M: 10}); err == nil {
		t.Error("zero N should fail")
	}
	if _, err := GenDense(DenseConfig{N: 10, M: 0}); err == nil {
		t.Error("zero M should fail")
	}
}

func TestGenDenseDeterministic(t *testing.T) {
	a, _ := GenDense(DenseConfig{N: 16, M: 10, P: kernels.I8, Seed: 42})
	b, _ := GenDense(DenseConfig{N: 16, M: 10, P: kernels.I8, Seed: 42})
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ for same seed")
		}
		for j := 0; j < 16; j++ {
			if a.X[i].Raw(j) != b.X[i].Raw(j) {
				t.Fatal("data differs for same seed")
			}
		}
	}
	c, _ := GenDense(DenseConfig{N: 16, M: 10, P: kernels.I8, Seed: 43})
	same := true
	for j := 0; j < 16; j++ {
		if a.X[0].Raw(j) != c.X[0].Raw(j) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical first row")
	}
}

func TestGenSparseBasics(t *testing.T) {
	d, err := GenSparse(SparseConfig{N: 1000, M: 50, Density: 0.03, P: kernels.I8, IdxBits: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 50 {
		t.Fatal("wrong M")
	}
	wantNNZ := 30
	for i := 0; i < d.Len(); i++ {
		if len(d.Idx[i]) != wantNNZ {
			t.Fatalf("example %d has %d nonzeros, want %d", i, len(d.Idx[i]), wantNNZ)
		}
		seen := map[int32]bool{}
		for _, j := range d.Idx[i] {
			if j < 0 || int(j) >= d.N {
				t.Fatalf("index %d out of range", j)
			}
			if seen[j] {
				t.Fatalf("duplicate index %d", j)
			}
			seen[j] = true
		}
	}
	if d.NNZ() != 50*wantNNZ {
		t.Errorf("NNZ = %d", d.NNZ())
	}
}

func TestGenSparseErrors(t *testing.T) {
	if _, err := GenSparse(SparseConfig{N: 10, M: 10, Density: 0, P: kernels.I8, IdxBits: 16}); err == nil {
		t.Error("zero density should fail")
	}
	if _, err := GenSparse(SparseConfig{N: 10, M: 10, Density: 2, P: kernels.I8, IdxBits: 16}); err == nil {
		t.Error("density > 1 should fail")
	}
	if _, err := GenSparse(SparseConfig{N: 10, M: 10, Density: 0.5, P: kernels.I8, IdxBits: 12}); err == nil {
		t.Error("bad index bits should fail")
	}
	if _, err := GenSparse(SparseConfig{N: 0, M: 10, Density: 0.5, P: kernels.I8, IdxBits: 16}); err == nil {
		t.Error("zero N should fail")
	}
}

func TestGenSparseMinimumOneNonzero(t *testing.T) {
	d, err := GenSparse(SparseConfig{N: 10, M: 5, Density: 0.01, P: kernels.I8, IdxBits: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Idx {
		if len(d.Idx[i]) < 1 {
			t.Fatal("example with zero nonzeros")
		}
	}
}

func TestGenDigits(t *testing.T) {
	d, err := GenDigits(DigitsConfig{W: 14, H: 14, Classes: 10, Train: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Images) != 200 || len(d.Labels) != 200 {
		t.Fatal("wrong count")
	}
	counts := make([]int, 10)
	for i, img := range d.Images {
		if len(img) != 14*14 {
			t.Fatal("wrong image size")
		}
		for _, p := range img {
			if p < 0 || p > 1 {
				t.Fatalf("pixel %v outside [0,1]", p)
			}
		}
		counts[d.Labels[i]]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Errorf("class %d has no samples", c)
		}
	}
}

func TestDigitsClassesDiffer(t *testing.T) {
	// Mean images of different classes must be distinguishable,
	// otherwise the task is unlearnable.
	d, err := GenDigits(DigitsConfig{W: 14, H: 14, Classes: 3, Train: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	means := make([][]float64, 3)
	counts := make([]int, 3)
	for c := range means {
		means[c] = make([]float64, 14*14)
	}
	for i, img := range d.Images {
		c := d.Labels[i]
		counts[c]++
		for j, p := range img {
			means[c][j] += float64(p)
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	var dist float64
	for j := range means[0] {
		diff := means[0][j] - means[1][j]
		dist += diff * diff
	}
	if math.Sqrt(dist) < 0.5 {
		t.Errorf("class mean separation %v too small", math.Sqrt(dist))
	}
}

func TestDigitsSplit(t *testing.T) {
	d, _ := GenDigits(DigitsConfig{W: 8, H: 8, Classes: 2, Train: 100, Seed: 3})
	tr, te := d.Split(0.8)
	if len(tr.Images) != 80 || len(te.Images) != 20 {
		t.Errorf("split sizes %d/%d", len(tr.Images), len(te.Images))
	}
	// Degenerate fractions stay in range.
	tr, te = d.Split(0)
	if len(tr.Images) < 1 || len(te.Images) < 1 {
		t.Error("split(0) degenerate")
	}
	tr, te = d.Split(1)
	if len(tr.Images) < 1 || len(te.Images) < 1 {
		t.Error("split(1) degenerate")
	}
}

func TestGenImages(t *testing.T) {
	imgs := GenImages(3, 8, 8, 3, 1)
	if len(imgs) != 3 {
		t.Fatal("count")
	}
	for _, img := range imgs {
		if len(img) != 8*8*3 {
			t.Fatal("size")
		}
		for _, p := range img {
			if p < -1 || p >= 1 {
				t.Fatalf("pixel %v outside [-1,1)", p)
			}
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	idx := []int32{3, 7, 300, 301, 70000}
	for _, bits := range []uint{8, 16, 32} {
		gaps, padding, err := DeltaEncode(idx, bits)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		got := DeltaDecode(gaps, padding)
		if len(got) != len(idx) {
			t.Fatalf("bits=%d: decoded %d indices, want %d", bits, len(got), len(idx))
		}
		for i := range idx {
			if got[i] != idx[i] {
				t.Fatalf("bits=%d: idx[%d] = %d, want %d", bits, i, got[i], idx[i])
			}
		}
		mg, _ := MaxGap(bits)
		for _, g := range gaps {
			if g > mg || g < 0 {
				t.Fatalf("bits=%d: gap %d out of range", bits, g)
			}
		}
	}
}

func TestDeltaPaddingOnlyWhenNeeded(t *testing.T) {
	idx := []int32{1, 2, 3}
	gaps, padding, err := DeltaEncode(idx, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(padding) != 0 || len(gaps) != 3 {
		t.Errorf("small gaps should need no padding: %v %v", gaps, padding)
	}
	// A 1000-gap at 8 bits needs ceil(1000/255)-1 = 3 padding entries.
	gaps, padding, err = DeltaEncode([]int32{1000}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(padding) != 3 {
		t.Errorf("padding entries = %d, want 3", len(padding))
	}
	n, err := EncodedLen([]int32{1000}, 8)
	if err != nil || n != 4 {
		t.Errorf("EncodedLen = %d, want 4", n)
	}
}

func TestDeltaErrors(t *testing.T) {
	if _, _, err := DeltaEncode([]int32{5, 3}, 8); err == nil {
		t.Error("unsorted should fail")
	}
	if _, _, err := DeltaEncode([]int32{3, 3}, 8); err == nil {
		t.Error("duplicates should fail")
	}
	if _, _, err := DeltaEncode([]int32{-1}, 8); err == nil {
		t.Error("negative should fail")
	}
	if _, _, err := DeltaEncode([]int32{1}, 12); err == nil {
		t.Error("bad precision should fail")
	}
	if _, err := MaxGap(9); err == nil {
		t.Error("MaxGap(9) should fail")
	}
}

func TestDeltaPropertyRoundTrip(t *testing.T) {
	check := func(raw []uint16, bits8 bool) bool {
		if len(raw) == 0 {
			return true
		}
		seen := map[int32]bool{}
		var idx []int32
		for _, r := range raw {
			v := int32(r)
			if !seen[v] {
				seen[v] = true
				idx = append(idx, v)
			}
		}
		sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
		bits := uint(16)
		if bits8 {
			bits = 8
		}
		gaps, padding, err := DeltaEncode(idx, bits)
		if err != nil {
			return false
		}
		got := DeltaDecode(gaps, padding)
		if len(got) != len(idx) {
			return false
		}
		for i := range idx {
			if got[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
