package dataset

import (
	"fmt"
	"sort"
)

// Delta encoding of sparse indices (paper footnote 6): when the model is
// too large to be indexed by the low-precision index type, the dataset
// stores the differences between successive nonzero coordinates instead of
// the coordinates themselves. Since indices are sorted and gaps are small
// at realistic densities, narrow gap values cover models far larger than
// the raw index precision could address. A gap wider than the type allows
// is split into chained maximal gaps against zero-valued padding entries
// (the classic escape mechanism); callers see only the absolute indices.

// MaxGap returns the largest representable gap for an index precision.
func MaxGap(idxBits uint) (int32, error) {
	switch idxBits {
	case 8:
		return 255, nil
	case 16:
		return 65535, nil
	case 32:
		return 1<<31 - 1, nil
	}
	return 0, fmt.Errorf("dataset: index precision must be 8, 16 or 32 bits")
}

// DeltaEncode converts sorted absolute indices into gaps representable at
// idxBits, returning the gap list and the positions (into the gap list) of
// padding entries inserted to escape oversized gaps. The first gap is the
// first index itself.
func DeltaEncode(idx []int32, idxBits uint) (gaps []int32, padding []int, err error) {
	maxGap, err := MaxGap(idxBits)
	if err != nil {
		return nil, nil, err
	}
	if !sort.SliceIsSorted(idx, func(i, j int) bool { return idx[i] < idx[j] }) {
		return nil, nil, fmt.Errorf("dataset: DeltaEncode requires sorted indices")
	}
	prev := int32(0)
	for k, v := range idx {
		if v < 0 {
			return nil, nil, fmt.Errorf("dataset: negative index %d", v)
		}
		if k > 0 && v == prev {
			return nil, nil, fmt.Errorf("dataset: duplicate index %d", v)
		}
		gap := v - prev
		for gap > maxGap {
			gaps = append(gaps, maxGap)
			padding = append(padding, len(gaps)-1)
			gap -= maxGap
		}
		gaps = append(gaps, gap)
		prev = v
	}
	return gaps, padding, nil
}

// DeltaDecode reconstructs absolute indices from a gap list, skipping the
// given padding positions.
func DeltaDecode(gaps []int32, padding []int) []int32 {
	pad := make(map[int]bool, len(padding))
	for _, p := range padding {
		pad[p] = true
	}
	out := make([]int32, 0, len(gaps)-len(padding))
	pos := int32(0)
	for k, g := range gaps {
		pos += g
		if !pad[k] {
			out = append(out, pos)
		}
	}
	return out
}

// EncodedLen returns how many stored entries (gaps, including padding) a
// sorted index list needs at the given precision — the quantity the memory
// traffic model should charge when indices are delta-encoded.
func EncodedLen(idx []int32, idxBits uint) (int, error) {
	gaps, _, err := DeltaEncode(idx, idxBits)
	if err != nil {
		return 0, err
	}
	return len(gaps), nil
}
