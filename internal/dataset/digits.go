package dataset

import (
	"fmt"
	"math"

	"buckwild/internal/prng"
)

// Digits is a synthetic 10-class image classification task standing in for
// MNIST in the CNN (Figure 7b) and kernel SVM (Figures 7d/7e) experiments.
// Each class has a smooth random prototype image; samples are the prototype
// plus pixel noise and a small random shift, which gives a task that is
// learnable but not trivial — like MNIST, classes are separable with a small
// network yet single pixels are uninformative.
type Digits struct {
	// W and H are the image dimensions; C the number of classes.
	W, H, C int
	// Images holds len(Labels) images, each W*H floats in [0, 1].
	Images [][]float32
	// Labels holds class ids in [0, C).
	Labels []int
}

// DigitsConfig configures synthetic digit generation.
type DigitsConfig struct {
	W, H    int
	Classes int
	Train   int // number of samples to generate
	// Noise is the pixel noise amplitude (default 0.25).
	Noise float64
	Seed  uint64
}

// GenDigits generates a synthetic digit dataset.
func GenDigits(cfg DigitsConfig) (*Digits, error) {
	if cfg.W <= 0 || cfg.H <= 0 || cfg.Classes <= 0 || cfg.Train <= 0 {
		return nil, fmt.Errorf("dataset: GenDigits: all dimensions must be positive")
	}
	noise := cfg.Noise
	if noise == 0 {
		noise = 0.25
	}
	g := prng.NewXorshift128(cfg.Seed ^ 0xD161757)
	protos := make([][]float32, cfg.Classes)
	for c := range protos {
		protos[c] = smoothProto(cfg.W, cfg.H, g)
	}
	d := &Digits{
		W: cfg.W, H: cfg.H, C: cfg.Classes,
		Images: make([][]float32, cfg.Train),
		Labels: make([]int, cfg.Train),
	}
	for i := 0; i < cfg.Train; i++ {
		c := int(g.Uint32() % uint32(cfg.Classes))
		dx := int(g.Uint32()%3) - 1
		dy := int(g.Uint32()%3) - 1
		img := make([]float32, cfg.W*cfg.H)
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				sx, sy := x+dx, y+dy
				var v float32
				if sx >= 0 && sx < cfg.W && sy >= 0 && sy < cfg.H {
					v = protos[c][sy*cfg.W+sx]
				}
				v += float32(noise) * (prng.Float32(g) - 0.5)
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				img[y*cfg.W+x] = v
			}
		}
		d.Images[i] = img
		d.Labels[i] = c
	}
	return d, nil
}

// smoothProto builds a smooth random prototype: a sum of a few random
// Gaussian bumps, normalized to [0, 1].
func smoothProto(w, h int, g prng.Source) []float32 {
	const bumps = 5
	type bump struct{ cx, cy, sigma, amp float64 }
	bs := make([]bump, bumps)
	for i := range bs {
		bs[i] = bump{
			cx:    float64(g.Uint32()%uint32(w)) + 0.5,
			cy:    float64(g.Uint32()%uint32(h)) + 0.5,
			sigma: 1.5 + 3*float64(prng.Float32(g)),
			amp:   0.5 + float64(prng.Float32(g)),
		}
	}
	img := make([]float32, w*h)
	maxV := float32(0)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var v float64
			for _, b := range bs {
				dx := float64(x) - b.cx
				dy := float64(y) - b.cy
				v += b.amp * math.Exp(-(dx*dx+dy*dy)/(2*b.sigma*b.sigma))
			}
			img[y*w+x] = float32(v)
			if img[y*w+x] > maxV {
				maxV = img[y*w+x]
			}
		}
	}
	if maxV > 0 {
		for i := range img {
			img[i] /= maxV
		}
	}
	return img
}

// Split partitions the dataset into train and test halves at the given
// train fraction (e.g. 0.8).
func (d *Digits) Split(frac float64) (train, test *Digits) {
	cut := int(frac * float64(len(d.Images)))
	if cut < 1 {
		cut = 1
	}
	if cut >= len(d.Images) {
		cut = len(d.Images) - 1
	}
	train = &Digits{W: d.W, H: d.H, C: d.C, Images: d.Images[:cut], Labels: d.Labels[:cut]}
	test = &Digits{W: d.W, H: d.H, C: d.C, Images: d.Images[cut:], Labels: d.Labels[cut:]}
	return train, test
}

// GenImages generates m random images of size h x w x c with entries in
// [-1, 1], used as convolution-layer throughput inputs (Figure 7a uses
// 227x227x3 ImageNet-sized images).
func GenImages(m, h, w, c int, seed uint64) [][]float32 {
	g := prng.NewXorshift128(seed ^ 0x1A6E5)
	out := make([][]float32, m)
	for i := range out {
		img := make([]float32, h*w*c)
		for j := range img {
			img[j] = prng.Float32(g)*2 - 1
		}
		out[i] = img
	}
	return out
}
