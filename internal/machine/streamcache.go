package machine

import (
	"sync"

	"buckwild/internal/kernels"
	"buckwild/internal/simd"
)

// streamKey identifies one kernel instruction-stream costing: every input
// computeCycles depends on. Sweep points that differ only in threads,
// prefetch, obstinacy or sockets map to the same key, so a sweep over
// those axes builds and costs each stream once.
type streamKey struct {
	// cost is the cost model by value (CostModel is a comparable struct),
	// so two machines with equal models share entries regardless of
	// pointer identity.
	cost        simd.CostModel
	sparse      bool
	d, m        kernels.Prec
	idxBits     uint
	variant     kernels.Variant
	quant       kernels.QuantKind
	quantPeriod int
	simN        int
	nnz         int
	miniBatch   int
	seed        uint64
}

type streamVal struct {
	elems  int
	cycles float64
}

// streamCache memoizes computeCycles across Simulate calls. A sync.Map
// fits the access pattern (each key written once, read many times) and
// keeps the cache safe under the sweep worker pool. Growth is bounded by
// the number of distinct kernel configurations a process sweeps, which is
// small compared to the sweep grid itself.
var streamCache sync.Map

// computeCycles returns the dataset elements processed per step and the
// compute cycles of one mini-batch step, memoizing the underlying stream
// construction.
func computeCycles(mc Config, w Workload, simN int) (elems int, cycles float64, err error) {
	key := streamKey{
		cost:        *mc.Cost,
		sparse:      w.Sparse,
		d:           w.D,
		m:           w.M,
		idxBits:     w.IdxBits,
		variant:     w.Variant,
		quant:       w.Quant,
		quantPeriod: w.QuantPeriod,
		simN:        simN,
		nnz:         workloadNNZ(w, simN),
		miniBatch:   w.MiniBatch,
		seed:        w.Seed,
	}
	if v, ok := streamCache.Load(key); ok {
		sv := v.(streamVal)
		return sv.elems, sv.cycles, nil
	}
	elems, cycles, err = buildStreamCost(mc, w, simN)
	if err != nil {
		return 0, 0, err
	}
	streamCache.Store(key, streamVal{elems: elems, cycles: cycles})
	return elems, cycles, nil
}

// workloadNNZ returns the per-example nonzero count of a sparse workload
// (0 for dense ones).
func workloadNNZ(w Workload, simN int) int {
	if !w.Sparse {
		return 0
	}
	nnz := int(w.Density * float64(simN))
	if nnz < 1 {
		nnz = 1
	}
	return nnz
}
