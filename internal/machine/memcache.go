package machine

import (
	"context"
	"fmt"
	"sync"

	"buckwild/internal/cache"
	"buckwild/internal/obs"
	"buckwild/internal/prng"
	"buckwild/internal/trace"
)

// memKey identifies one memory-trace simulation: every input the cache
// hierarchy's behaviour depends on. The kernel Variant and quantizer kind
// are deliberately absent — they change the instruction stream (costed by
// computeCycles) but not a single memory access, so sweep points that pair
// Generic with HandOpt, or compare rounding strategies at fixed layout,
// share one cache simulation. The reuse is bit-exact: the trace generators
// and the hierarchy are deterministic functions of exactly these fields.
type memKey struct {
	// cc is the fully resolved hierarchy configuration (geometry, thread
	// count, prefetch, obstinacy, NUMA split and seed), comparable by
	// value.
	cc       cache.Config
	sparse   bool
	dBytes   float64
	idxBytes float64
	mBytes   float64
	simN     int
	nnz      int
	mini     int
	seed     uint64
}

// memVal carries the measurement-window outputs of one memory simulation.
// The slices are shared across Simulate calls and must be treated as
// read-only by consumers.
type memVal struct {
	cycles        []float64
	coh           []float64
	access        trace.AccessStats
	stats         cache.Stats
	maxContention uint32
}

// memCache memoizes memSimulate across Simulate calls, mirroring
// streamCache: written once per key, read many times, safe under the sweep
// worker pool.
var memCache sync.Map

// memSimulate runs (or replays) the memory-trace phase of a workload:
// warmup rounds, stats reset, measurement rounds. Results are memoized per
// memKey; a hit skips hierarchy construction entirely.
func memSimulate(ctx context.Context, w Workload, cc cache.Config, mlp float64, simN int) (*memVal, error) {
	key := memKey{
		cc:       cc,
		sparse:   w.Sparse,
		dBytes:   w.D.Bytes(),
		idxBytes: float64(w.IdxBits) / 8,
		mBytes:   w.M.Bytes(),
		simN:     simN,
		nnz:      workloadNNZ(w, simN),
		mini:     w.MiniBatch,
		seed:     w.Seed,
	}
	if v, ok := memCache.Load(key); ok {
		return v.(*memVal), nil
	}
	h, err := cache.New(cc)
	if err != nil {
		return nil, err
	}
	snk := &sink{
		l1Lat:  cc.L1Lat,
		mlp:    mlp,
		cycles: make([]float64, w.Threads),
		coh:    make([]float64, w.Threads),
	}
	rng := prng.NewXorshift64(w.Seed ^ 0x5EED)

	var offset uint64
	runRound := func() error {
		if ctx != nil && ctx.Err() != nil {
			return context.Cause(ctx)
		}
		for c := 0; c < w.Threads; c++ {
			if err := runStep(h, snk, c, w, simN, offset, rng); err != nil {
				return err
			}
		}
		offset += stepStreamBytes(w, simN)
		return nil
	}
	// Phase spans land on the track the bounding context designates (the
	// sweep pool assigns one per worker); a context without a tracer
	// records nothing. Replayed (memoized) simulations emit no spans —
	// there is no work to time.
	tracer := obs.TracerFrom(ctx)
	tid := obs.TraceTID(ctx)
	warmSpan := tracer.Begin("machine", "sim-warmup", tid)
	for r := 0; r < warmRounds; r++ {
		if err := runRound(); err != nil {
			return nil, err
		}
	}
	warmSpan.End()
	h.ResetStats()
	snk.access.Reset()
	for i := range snk.cycles {
		snk.cycles[i] = 0
		snk.coh[i] = 0
	}
	measSpan := tracer.Begin("machine", "sim-measure", tid)
	for r := 0; r < measRounds; r++ {
		if err := runRound(); err != nil {
			return nil, err
		}
	}
	measSpan.EndArgs(map[string]string{"threads": fmt.Sprint(w.Threads)})

	mv := &memVal{
		cycles:        snk.cycles,
		coh:           snk.coh,
		access:        snk.access,
		stats:         h.Stats(),
		maxContention: h.MaxLineContention(),
	}
	memCache.Store(key, mv)
	return mv, nil
}
