// Package machine is the timing model of the simulated multicore: it
// combines the compute cost of a kernel's instruction stream (package
// simd), the memory behaviour of its access trace (packages trace and
// cache), and a shared-DRAM bandwidth roofline into a predicted dataset
// throughput in giga-numbers-per-second (GNPS) — the paper's
// hardware-efficiency metric.
//
// The model is deliberately simple and documented:
//
//   - Compute: the throughput-model cycles of the kernel's instruction
//     stream (fully pipelined inner loops).
//   - Memory stalls: per-access latencies from the cache simulator, minus
//     the L1 latency that pipelining hides. Streaming dataset loads enjoy
//     memory-level parallelism: a DRAM-latency stall is divided by MLP
//     (out-of-order cores sustain several outstanding line fills).
//     Model-region accesses pay full latency: in the communication-bound
//     regime these are coherence misses on the critical path.
//   - Bandwidth: all cores share DRAM; a round of one step per core can
//     never take less time than the round's DRAM traffic at the configured
//     bandwidth.
//
// Per-core compute and memory time overlap imperfectly on a real core; the
// model charges max(compute, memory) + 0.2*min(compute, memory), a standard
// roofline-with-overlap compromise.
package machine

import (
	"context"
	"fmt"

	"buckwild/internal/cache"
	"buckwild/internal/kernels"
	"buckwild/internal/prng"
	"buckwild/internal/simd"
	"buckwild/internal/trace"
)

// Config describes the simulated machine.
type Config struct {
	// ClockGHz is the core clock (the paper's Xeon runs at 2.5 GHz).
	ClockGHz float64
	// DRAMBandwidthGBs is the shared memory bandwidth in GB/s.
	DRAMBandwidthGBs float64
	// CoreBandwidthGBs caps one core's sustainable DRAM streaming rate
	// (a single core cannot saturate the socket's memory controllers;
	// this is what makes the paper's base throughputs flat across model
	// sizes and roughly inversely proportional to bytes per element).
	CoreBandwidthGBs float64
	// MLP is the number of overlapping outstanding DRAM fills for
	// streaming loads.
	MLP float64
	// Cache is the hierarchy geometry (cores are taken from the
	// workload's thread count).
	Cache cache.Config
	// Cost is the instruction cost model.
	Cost *simd.CostModel
	// MaxSimElements caps the model size simulated at line granularity;
	// larger models are simulated at the cap and scaled (the per-element
	// behaviour is homogeneous in the bandwidth-bound regime).
	MaxSimElements int
}

// Xeon returns the reproduction's standard machine: 2.5 GHz, Haswell-EX
// cache geometry, 60 GB/s of DRAM bandwidth.
func Xeon() Config {
	return Config{
		ClockGHz:         2.5,
		DRAMBandwidthGBs: 60,
		CoreBandwidthGBs: 3.5,
		MLP:              8,
		Cache:            cache.XeonConfig(),
		Cost:             simd.Haswell(),
		MaxSimElements:   1 << 21,
	}
}

// Workload describes the SGD configuration to simulate.
type Workload struct {
	Sparse bool
	// D and M are the dataset and model precisions; IdxBits the sparse
	// index width.
	D, M    kernels.Prec
	IdxBits uint
	Variant kernels.Variant
	Quant   kernels.QuantKind
	// QuantPeriod is the randomness reuse period for QShared.
	QuantPeriod int
	// ModelSize is n (elements); Density the sparse nonzero fraction.
	ModelSize int
	Density   float64
	Threads   int
	// MiniBatch is B (examples per model update); 0 means 1.
	MiniBatch int
	// Sockets spreads the threads across NUMA sockets (0 or 1 = one
	// socket). Cross-socket coherence pays the QPI round trip, but each
	// socket contributes its own DRAM bandwidth — the DimmWitted-style
	// trade-off the paper cites for NUMA machines.
	Sockets int
	// Prefetch enables the hardware prefetcher (Section 5.3).
	Prefetch bool
	// Obstinacy is the obstinate-cache q (Section 6.2).
	Obstinacy float64
	Seed      uint64
}

// Result is the outcome of a simulation.
type Result struct {
	// GNPS is dataset throughput in giga-numbers-per-second.
	GNPS float64
	// CyclesPerRound is the simulated time of one round (every core
	// performing one mini-batch step).
	CyclesPerRound float64
	// ComputeCyclesPerStep and MemCyclesPerStep decompose one core's
	// step.
	ComputeCyclesPerStep float64
	MemCyclesPerStep     float64
	// BandwidthCyclesPerRound is the DRAM-traffic lower bound;
	// CoherenceCyclesPerStep the coherence share of one core's stalls.
	BandwidthCyclesPerRound float64
	CoherenceCyclesPerStep  float64
	// Bound names the binding constraint: "compute", "memory",
	// "bandwidth" or "communication".
	Bound string
	// Stats carries the cache counters of the measurement window.
	Stats cache.Stats
	// Access breaks the measurement window's accesses down by trace kind
	// (dataset stream, sequential model, random model), with raw
	// latencies and coherence-event counts per kind.
	Access trace.AccessStats
	// CoherenceEvents totals the window's coherence traffic: dirty-remote
	// transfers plus invalidation messages delivered to private caches.
	CoherenceEvents uint64
	// ObstinateRejects counts invalidations the obstinate cache ignored
	// (zero unless Workload.Obstinacy > 0).
	ObstinateRejects uint64
	// MeasuredSteps is the total number of per-core steps in the
	// measurement window: one step per core per measured round.
	MeasuredSteps int
}

// warmRounds and measRounds are the cache-warmup and measurement windows
// of Simulate, in rounds (one step per core per round).
const warmRounds, measRounds = 2, 3

// sink accumulates adjusted memory stall cycles per core.
type sink struct {
	l1Lat  int
	mlp    float64
	cycles []float64
	// coh tracks the coherence share of each core's stalls, used to
	// label the communication-bound regime.
	coh []float64
	// access taps every access for the observability layer; the tap is
	// three array-indexed adds, cheap enough to leave unconditional.
	access trace.AccessStats
}

// Record implements trace.Sink. The stall policy:
//
//   - Coherence-event reads (dirty-remote transfers) sit on the critical
//     path and are charged in full: waiting for another core's freshly
//     written data is the stall that creates the communication-bound
//     regime (Section 5.3: "cores must wait for data from the shared L3").
//   - All writes, including upgrades that invalidate remote copies,
//     retire through the store buffer and are free on the issuing core;
//     their cost lands on the next reader as a dirty transfer, so charging
//     both sides would double count.
//   - Other reads are charged (latency - L1)/MLP: streaming and batched
//     loads are independent, so an out-of-order core overlaps them.
//     Random sparse gathers overlap poorly and pay half latency.
func (s *sink) Record(core int, kind trace.Kind, write bool, latency int, coherent bool) {
	s.access.Record(kind, write, latency, coherent)
	if write {
		return
	}
	if coherent {
		// Dirty-remote transfers on distinct lines overlap a little
		// (out-of-order cores keep ~2 in flight), unlike same-line
		// ping-pong, which the line-contention floor captures.
		s.cycles[core] += float64(latency) / 2
		s.coh[core] += float64(latency) / 2
		return
	}
	stall := float64(latency - s.l1Lat)
	if stall <= 0 {
		return
	}
	if kind == trace.ModelRandom {
		s.cycles[core] += stall / 2
		return
	}
	s.cycles[core] += stall / s.mlp
}

// Simulate runs the workload on the machine and returns its predicted
// throughput. It warms the caches with one round, then measures over
// several rounds.
func Simulate(mc Config, w Workload) (*Result, error) {
	return SimulateCtx(context.Background(), mc, w)
}

// SimulateCtx is Simulate bounded by a context: the context is checked
// between simulation rounds (one step per core), so cancellation or
// deadline expiry interrupts even a large point promptly. A cancelled
// simulation returns context.Cause(ctx).
func SimulateCtx(ctx context.Context, mc Config, w Workload) (*Result, error) {
	if err := validate(mc, w); err != nil {
		return nil, err
	}
	if w.MiniBatch < 1 {
		w.MiniBatch = 1
	}
	simN := w.ModelSize
	if simN > mc.MaxSimElements {
		simN = mc.MaxSimElements
	}

	cc := mc.Cache
	cc.Cores = w.Threads
	cc.Prefetch = w.Prefetch
	cc.Obstinacy = w.Obstinacy
	cc.Seed = w.Seed
	sockets := w.Sockets
	if sockets < 1 {
		sockets = 1
	}
	if sockets > 1 {
		cc.CoresPerSocket = (w.Threads + sockets - 1) / sockets
	}
	elemsPerStep, compute, err := computeCycles(mc, w, simN)
	if err != nil {
		return nil, err
	}

	// The memory phase is memoized across workloads that share a trace
	// (see memKey): the kernel variant and rounding strategy only affect
	// the compute side above, so e.g. a Generic/HandOpt pair replays one
	// cache simulation.
	mem, err := memSimulate(ctx, w, cc, mc.MLP, simN)
	if err != nil {
		return nil, err
	}

	st := mem.stats

	// A single core cannot stream its dataset faster than its private
	// bandwidth allows.
	coreBWFloor := freshBytesPerStep(w, simN) / (mc.CoreBandwidthGBs / mc.ClockGHz)

	// Per-core step time: compute and memory overlap imperfectly.
	var maxStep, memPerStep, cohPerStep float64
	for c, cyc := range mem.cycles {
		memc := cyc / measRounds
		memPerStep += memc / float64(w.Threads)
		cohPerStep += mem.coh[c] / measRounds / float64(w.Threads)
		stp := overlap(compute, memc)
		if stp < coreBWFloor {
			stp = coreBWFloor
		}
		if stp > maxStep {
			maxStep = stp
		}
	}

	// Shared-bandwidth bound for one round. Every populated socket
	// contributes its own memory controllers.
	bytesPerRound := float64(st.DRAMBytes) / measRounds
	bwBytesPerCycle := mc.DRAMBandwidthGBs / mc.ClockGHz * float64(sockets)
	bwCycles := bytesPerRound / bwBytesPerCycle

	// Line ping-pong bound: coherence transactions targeting the same
	// cache line serialize, so a round cannot beat the hottest line's
	// accumulated transaction latency. This is the floor that makes
	// small shared models slow (Section 4's communication-bound regime).
	pingPong := float64(mem.maxContention) / measRounds

	round := maxStep
	bound := "memory"
	if compute >= memPerStep {
		bound = "compute"
	}
	if bwCycles > round {
		round = bwCycles
		bound = "bandwidth"
	}
	if pingPong > round {
		round = pingPong
		bound = "communication"
	}

	// Scale back up if the model was capped: cycles per element are
	// stationary at the cap, so throughput is unchanged, but report
	// round time for the true size.
	scale := float64(w.ModelSize) / float64(simN)
	totalElems := float64(elemsPerStep) * float64(w.Threads) * scale
	gnps := totalElems / (round * scale) * mc.ClockGHz

	return &Result{
		GNPS:                    gnps,
		CyclesPerRound:          round * scale,
		ComputeCyclesPerStep:    compute * scale,
		MemCyclesPerStep:        memPerStep * scale,
		BandwidthCyclesPerRound: bwCycles * scale,
		CoherenceCyclesPerStep:  cohPerStep * scale,
		Bound:                   bound,
		Stats:                   st,
		Access:                  mem.access,
		CoherenceEvents:         st.DirtyTransfers + st.Invalidates,
		ObstinateRejects:        st.InvalidatesIgnored,
		MeasuredSteps:           measRounds * w.Threads,
	}, nil
}

// overlap combines compute and memory time on one core.
func overlap(compute, mem float64) float64 {
	hi, lo := compute, mem
	if mem > hi {
		hi, lo = mem, compute
	}
	return hi + 0.2*lo
}

// buildStreamCost constructs and costs the kernel instruction streams of
// one mini-batch step; computeCycles (streamcache.go) memoizes it.
func buildStreamCost(mc Config, w Workload, simN int) (elems int, cycles float64, err error) {
	var q *kernels.Quantizer
	if w.M != kernels.F32 {
		q, err = kernels.NewQuantizer(w.M, w.Quant, w.QuantPeriod, w.Seed|1)
		if err != nil {
			return 0, 0, err
		}
	}
	var s simd.Stream
	if w.Sparse {
		k, err := kernels.NewSparse(w.D, w.M, w.Variant, q, w.IdxBits)
		if err != nil {
			return 0, 0, err
		}
		nnz := workloadNNZ(w, simN)
		s = k.DotStream(nnz)
		s.Scale(int64(w.MiniBatch))
		ax := k.AxpyStream(nnz)
		ax.Scale(int64(w.MiniBatch))
		s.Add(ax)
		return nnz * w.MiniBatch, s.Cycles(mc.Cost), nil
	}
	k, err := kernels.NewDense(w.D, w.M, w.Variant, q)
	if err != nil {
		return 0, 0, err
	}
	s = k.DotStream(simN)
	s.Scale(int64(w.MiniBatch)) // one dot per batch example
	s.Add(k.AxpyStream(simN))   // one model update per batch
	return simN * w.MiniBatch, s.Cycles(mc.Cost), nil
}

// runStep drives one mini-batch step's memory trace for one core.
func runStep(h *cache.Hierarchy, snk *sink, core int, w Workload, simN int, offset uint64, rng *prng.Xorshift64) error {
	if w.Sparse {
		nnz := workloadNNZ(w, simN)
		return trace.Sparse(h, snk, core, trace.SparseConfig{
			ModelElems:        simN,
			NNZ:               nnz,
			ValueBytesPerElem: w.D.Bytes(),
			IndexBytesPerElem: float64(w.IdxBits) / 8,
			ModelBytesPerElem: w.M.Bytes(),
			MiniBatch:         w.MiniBatch,
			Regions:           trace.DefaultRegions(),
		}, offset, rng)
	}
	return trace.Dense(h, snk, core, trace.DenseConfig{
		ModelElems:          simN,
		DatasetBytesPerElem: w.D.Bytes(),
		ModelBytesPerElem:   w.M.Bytes(),
		MiniBatch:           w.MiniBatch,
		Regions:             trace.DefaultRegions(),
	}, offset)
}

// freshBytesPerStep returns the new dataset bytes one mini-batch step
// streams from DRAM.
func freshBytesPerStep(w Workload, simN int) float64 {
	if w.Sparse {
		nnz := workloadNNZ(w, simN)
		return float64(nnz) * (w.D.Bytes() + float64(w.IdxBits)/8) * float64(w.MiniBatch)
	}
	return float64(simN) * w.D.Bytes() * float64(w.MiniBatch)
}

// stepStreamBytes returns how far the dataset stream advances per round,
// so successive rounds touch fresh data. The per-example byte count is
// ceiled to whole bytes before rounding up to a full line, so fractional
// storage widths (packed 4-bit) never under-count the final line.
func stepStreamBytes(w Workload, simN int) uint64 {
	var per float64
	if w.Sparse {
		nnz := workloadNNZ(w, simN)
		per = float64(nnz) * (w.D.Bytes() + float64(w.IdxBits)/8)
	} else {
		per = float64(simN) * w.D.Bytes()
	}
	return (ceilBytes(per) + 63) / 64 * 64 * uint64(w.MiniBatch+1)
}

// ceilBytes rounds a fractional byte count up to whole bytes.
func ceilBytes(x float64) uint64 {
	u := uint64(x)
	if float64(u) < x {
		u++
	}
	return u
}

func validate(mc Config, w Workload) error {
	if mc.ClockGHz <= 0 || mc.DRAMBandwidthGBs <= 0 || mc.MLP < 1 {
		return fmt.Errorf("machine: bad machine config")
	}
	if mc.Cost == nil {
		return fmt.Errorf("machine: nil cost model")
	}
	if mc.MaxSimElements < 1 {
		return fmt.Errorf("machine: MaxSimElements must be positive")
	}
	if w.Threads < 1 || w.Threads > 32 {
		return fmt.Errorf("machine: threads %d out of [1, 32]", w.Threads)
	}
	if w.ModelSize < 1 {
		return fmt.Errorf("machine: model size must be positive")
	}
	if w.Sparse && (w.Density <= 0 || w.Density > 1) {
		return fmt.Errorf("machine: sparse density %v out of (0, 1]", w.Density)
	}
	return nil
}
