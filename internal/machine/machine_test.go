package machine

import (
	"testing"

	"buckwild/internal/kernels"
)

// denseW builds a standard dense workload.
func denseW(d, m kernels.Prec, n, threads int) Workload {
	return Workload{
		D: d, M: m,
		Variant:     kernels.HandOpt,
		Quant:       kernels.QShared,
		QuantPeriod: 8,
		ModelSize:   n,
		Threads:     threads,
		Prefetch:    true,
		Seed:        1,
	}
}

func sparseW(d, m kernels.Prec, idxBits uint, n, threads int) Workload {
	w := denseW(d, m, n, threads)
	w.Sparse = true
	w.IdxBits = idxBits
	w.Density = 0.03
	return w
}

func gnps(t *testing.T, w Workload) float64 {
	t.Helper()
	r, err := Simulate(Xeon(), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.GNPS <= 0 {
		t.Fatalf("non-positive GNPS: %+v", r)
	}
	return r.GNPS
}

func TestValidation(t *testing.T) {
	mc := Xeon()
	if _, err := Simulate(mc, Workload{Threads: 0, ModelSize: 10, D: kernels.F32, M: kernels.F32}); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := Simulate(mc, Workload{Threads: 1, ModelSize: 0, D: kernels.F32, M: kernels.F32}); err == nil {
		t.Error("zero model should fail")
	}
	w := sparseW(kernels.I8, kernels.I8, 8, 1024, 1)
	w.Density = 0
	if _, err := Simulate(mc, w); err == nil {
		t.Error("zero density should fail")
	}
	mc.Cost = nil
	if _, err := Simulate(mc, denseW(kernels.I8, kernels.I8, 1024, 1)); err == nil {
		t.Error("nil cost model should fail")
	}
}

func TestDenseLowPrecisionSpeedup(t *testing.T) {
	// Table 2 shape: dense throughput ordering D8M8 > D16M16 > D32fM32f,
	// with near-linear speedup for 8-bit (paper: 3.57x).
	const n = 1 << 18
	g32 := gnps(t, denseW(kernels.F32, kernels.F32, n, 1))
	g16 := gnps(t, denseW(kernels.I16, kernels.I16, n, 1))
	g8 := gnps(t, denseW(kernels.I8, kernels.I8, n, 1))
	if !(g8 > g16 && g16 > g32) {
		t.Errorf("ordering violated: 8=%v 16=%v 32=%v", g8, g16, g32)
	}
	if ratio := g8 / g32; ratio < 2 || ratio > 6 {
		t.Errorf("D8M8/D32f = %.2f, paper shows ~3.6", ratio)
	}
	if ratio := g16 / g32; ratio < 1.3 || ratio > 3.5 {
		t.Errorf("D16M16/D32f = %.2f, paper shows ~1.9", ratio)
	}
}

func TestSparseNearlyFlat(t *testing.T) {
	// Table 2: sparse throughput is nearly flat across precisions and
	// far below dense. Base throughputs are plateau values, so use a
	// model too large for the L2 at either precision.
	const n = 1 << 20
	s32 := gnps(t, sparseW(kernels.F32, kernels.F32, 32, n, 1))
	s8 := gnps(t, sparseW(kernels.I8, kernels.I8, 8, n, 1))
	if ratio := s8 / s32; ratio < 0.8 || ratio > 3 {
		t.Errorf("sparse D8/D32f = %.2f, paper shows ~1.6", ratio)
	}
	d8 := gnps(t, denseW(kernels.I8, kernels.I8, n, 1))
	if d8 < 3*s8 {
		t.Errorf("dense (%v) should be far faster than sparse (%v)", d8, s8)
	}
}

func TestThreadScalingRegimes(t *testing.T) {
	// Figure 2: threads help large models (bandwidth-bound) far more
	// than small ones (communication-bound).
	big1 := gnps(t, denseW(kernels.I8, kernels.I8, 1<<21, 1))
	big18 := gnps(t, denseW(kernels.I8, kernels.I8, 1<<21, 18))
	small18 := gnps(t, denseW(kernels.I8, kernels.I8, 1<<10, 18))
	if big18 < 2*big1 {
		t.Errorf("18 threads should speed up a large model: 1t=%v 18t=%v", big1, big18)
	}
	if big18 < 2*small18 {
		t.Errorf("communication-bound small model should be much slower: big=%v small=%v", big18, small18)
	}
	r, err := Simulate(Xeon(), denseW(kernels.I8, kernels.I8, 1<<10, 18))
	if err != nil {
		t.Fatal(err)
	}
	if r.Bound != "communication" {
		t.Errorf("small shared model at 18 threads should be communication-bound, got %q", r.Bound)
	}
}

func TestHandOptBeatsGenericEndToEnd(t *testing.T) {
	// Figure 4a at the machine level.
	const n = 1 << 18
	w := denseW(kernels.I8, kernels.I8, n, 1)
	w.Variant = kernels.Generic
	g := gnps(t, w)
	h := gnps(t, denseW(kernels.I8, kernels.I8, n, 1))
	if ratio := h / g; ratio < 1.5 {
		t.Errorf("handopt end-to-end gain = %.2f, want > 1.5", ratio)
	}
}

func TestNewInstructionsGainIsModest(t *testing.T) {
	// Section 6.1: the end-to-end gain is modest (the paper measures
	// 5-15%) because memory limits the kernel. Use a thread count where
	// the machine is memory- rather than compute-bound.
	const n, threads = 1 << 20, 4
	h := gnps(t, denseW(kernels.I8, kernels.I8, n, threads))
	w := denseW(kernels.I8, kernels.I8, n, threads)
	w.Variant = kernels.NewInsn
	w.Quant = kernels.QHardware
	p := gnps(t, w)
	gain := p/h - 1
	if gain < 0 || gain > 0.6 {
		t.Errorf("new-instruction end-to-end gain = %.1f%%, want modest (paper: 5-15%%)", gain*100)
	}
}

func TestPrefetchTradeoffByModelSize(t *testing.T) {
	// Figure 6a: disabling the prefetcher helps small (communication-
	// bound) models at high thread counts and does not help large ones.
	small := denseW(kernels.I8, kernels.I8, 1<<10, 18)
	smallOn := gnps(t, small)
	small.Prefetch = false
	smallOff := gnps(t, small)
	big := denseW(kernels.I8, kernels.I8, 1<<19, 18)
	bigOn := gnps(t, big)
	big.Prefetch = false
	bigOff := gnps(t, big)
	if smallOff <= smallOn*0.98 {
		t.Errorf("prefetch off should help small models: on=%v off=%v", smallOn, smallOff)
	}
	if bigOff > bigOn*1.1 {
		t.Errorf("prefetch off should not help large models much: on=%v off=%v", bigOn, bigOff)
	}
}

func TestObstinateCacheHelpsSmallModels(t *testing.T) {
	// Figure 6c: at q around 50%, the small-model slowdown largely
	// disappears.
	w := denseW(kernels.I8, kernels.I8, 1<<10, 18)
	q0 := gnps(t, w)
	w.Obstinacy = 0.5
	q50 := gnps(t, w)
	if q50 < q0*1.1 {
		t.Errorf("obstinate cache should help: q=0 %v, q=0.5 %v", q0, q50)
	}
	w.Obstinacy = 0.95
	q95 := gnps(t, w)
	if q95 < q50*0.9 {
		t.Errorf("higher obstinacy should not hurt: q50=%v q95=%v", q50, q95)
	}
}

func TestMiniBatchHelpsSmallModels(t *testing.T) {
	// Figure 6d: larger B amortizes invalidations for small models.
	w := denseW(kernels.I8, kernels.I8, 1<<10, 18)
	b1 := gnps(t, w)
	w.MiniBatch = 16
	b16 := gnps(t, w)
	if b16 < b1*1.2 {
		t.Errorf("mini-batching should help small models: B=1 %v, B=16 %v", b1, b16)
	}
}

func TestFourBitVsEightBit(t *testing.T) {
	// Figure 5c: D4M4 about 2x D8M8 (compute side; memory narrows it).
	const n = 1 << 18
	w := denseW(kernels.I4, kernels.I4, n, 1)
	w.Variant = kernels.NewInsn
	g4 := gnps(t, w)
	g8 := gnps(t, denseW(kernels.I8, kernels.I8, n, 1))
	if ratio := g4 / g8; ratio < 1.2 || ratio > 3 {
		t.Errorf("D4M4/D8M8 = %.2f, paper shows ~2", ratio)
	}
}

func TestLargeModelCapScalesConsistently(t *testing.T) {
	// Above MaxSimElements throughput must stay roughly flat (the
	// bandwidth-bound plateau), validating the scaling shortcut.
	mc := Xeon()
	mc.MaxSimElements = 1 << 16
	w := denseW(kernels.I8, kernels.I8, 1<<16, 1)
	r1, err := Simulate(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	w.ModelSize = 1 << 20
	r2, err := Simulate(mc, w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r2.GNPS / r1.GNPS
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("capped scaling changed throughput: %v vs %v", r1.GNPS, r2.GNPS)
	}
	if r2.CyclesPerRound < 15*r1.CyclesPerRound {
		t.Error("round time should scale with true model size")
	}
}

func TestResultFieldsPopulated(t *testing.T) {
	r, err := Simulate(Xeon(), denseW(kernels.I8, kernels.I8, 1<<14, 4))
	if err != nil {
		t.Fatal(err)
	}
	switch r.Bound {
	case "compute", "memory", "bandwidth", "communication":
	default:
		t.Errorf("Bound = %q", r.Bound)
	}
	if r.ComputeCyclesPerStep <= 0 || r.MemCyclesPerStep <= 0 || r.CyclesPerRound <= 0 {
		t.Errorf("cycles not populated: %+v", r)
	}
	if r.Stats.Accesses == 0 {
		t.Error("cache stats missing")
	}
}

func TestDeterministicGNPS(t *testing.T) {
	w := denseW(kernels.I8, kernels.I8, 1<<12, 4)
	a := gnps(t, w)
	b := gnps(t, w)
	if a != b {
		t.Errorf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestNUMATradeoff(t *testing.T) {
	// Two sockets double the DRAM bandwidth for large (bandwidth-bound)
	// models but make small-model coherence ping-pong cross the QPI,
	// which is slower. Use enough threads that socket bandwidth, not
	// the per-core streaming limit, is the binding resource.
	big := denseW(kernels.I8, kernels.I8, 1<<21, 24)
	big1 := gnps(t, big)
	big.Sockets = 2
	big2 := gnps(t, big)
	if big2 < big1*1.2 {
		t.Errorf("two sockets should lift the bandwidth plateau: 1s=%v 2s=%v", big1, big2)
	}
	small := denseW(kernels.I8, kernels.I8, 1<<9, 18)
	small1 := gnps(t, small)
	small.Sockets = 2
	small2 := gnps(t, small)
	if small2 > small1 {
		t.Errorf("cross-socket ping-pong should hurt small models: 1s=%v 2s=%v", small1, small2)
	}
}

func TestSparseMiniBatch(t *testing.T) {
	w := sparseW(kernels.I8, kernels.I8, 16, 1<<12, 4)
	w.MiniBatch = 8
	r, err := Simulate(Xeon(), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.GNPS <= 0 {
		t.Fatalf("sparse mini-batch simulation broken: %+v", r)
	}
}

func TestMeasuredStepsCountsAllCores(t *testing.T) {
	// MeasuredSteps is the total number of per-core steps in the window:
	// one step per core per measured round.
	const threads = 4
	r, err := Simulate(Xeon(), denseW(kernels.I8, kernels.I8, 1<<12, threads))
	if err != nil {
		t.Fatal(err)
	}
	if want := measRounds * threads; r.MeasuredSteps != want {
		t.Errorf("MeasuredSteps = %d, want %d (%d rounds x %d cores)", r.MeasuredSteps, want, measRounds, threads)
	}
}

func TestStepStreamBytesCeilsFractionalWidths(t *testing.T) {
	// Integral per-step byte counts round to lines exactly as before.
	d := Workload{D: kernels.I8, ModelSize: 1000, MiniBatch: 1}
	if got := stepStreamBytes(d, 1000); got != 2048 { // 1000 B -> 16 lines, x(B+1)
		t.Errorf("dense integral stream bytes = %d, want 2048", got)
	}
	// A packed 4-bit dense stream of 129 elements is 64.5 bytes: the
	// partial second line must still be streamed (two lines), where the
	// old truncate-then-round computed one.
	d4 := Workload{D: kernels.I4, ModelSize: 129, MiniBatch: 1}
	if got := stepStreamBytes(d4, 129); got != 256 {
		t.Errorf("dense fractional stream bytes = %d, want 256", got)
	}
	// Sparse path: 43 nonzeros at 1.5 bytes each (4-bit values, 8-bit
	// indexes) is 64.5 bytes -> two lines, same ceil rule.
	s := Workload{Sparse: true, D: kernels.I4, IdxBits: 8, Density: 0.043, ModelSize: 1000, MiniBatch: 1}
	if got := stepStreamBytes(s, 1000); got != 256 {
		t.Errorf("sparse fractional stream bytes = %d, want 256", got)
	}
}

func TestComputeCyclesMemoized(t *testing.T) {
	mc := Xeon()
	w := denseW(kernels.I8, kernels.I8, 1<<14, 1)
	elems, cycles, err := computeCycles(mc, w, w.ModelSize)
	if err != nil {
		t.Fatal(err)
	}
	be, bc, err := buildStreamCost(mc, w, w.ModelSize)
	if err != nil {
		t.Fatal(err)
	}
	if elems != be || cycles != bc {
		t.Errorf("memoized (%d, %v) != built (%d, %v)", elems, cycles, be, bc)
	}
	// A fresh but equal cost model must share the cache entry (keys are
	// by value), and repeated lookups must be stable.
	mc2 := Xeon()
	e2, c2, err := computeCycles(mc2, w, w.ModelSize)
	if err != nil {
		t.Fatal(err)
	}
	if e2 != elems || c2 != cycles {
		t.Errorf("cache lookup drifted: (%d, %v) vs (%d, %v)", e2, c2, elems, cycles)
	}
	// Points that differ in a stream-relevant axis must not collide.
	w16 := denseW(kernels.I16, kernels.I16, 1<<14, 1)
	_, c16, err := computeCycles(mc, w16, w16.ModelSize)
	if err != nil {
		t.Fatal(err)
	}
	if c16 == cycles {
		t.Error("distinct precisions should cost differently")
	}
}

func TestFreshBytesPerStep(t *testing.T) {
	d := Workload{D: kernels.I8, ModelSize: 1000, MiniBatch: 2}
	if got := freshBytesPerStep(d, 1000); got != 2000 {
		t.Errorf("dense fresh bytes = %v, want 2000", got)
	}
	s := Workload{Sparse: true, D: kernels.I8, IdxBits: 16, Density: 0.03, MiniBatch: 1}
	if got := freshBytesPerStep(s, 1000); got != 90 { // 30 nnz * 3 bytes
		t.Errorf("sparse fresh bytes = %v, want 90", got)
	}
}

func TestAccessStatsTapped(t *testing.T) {
	// Small shared model, several threads: the measurement window must see
	// model traffic of both phases and real coherence events.
	r, err := Simulate(Xeon(), denseW(kernels.I8, kernels.I8, 1<<10, 4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Access.DatasetStream.Accesses == 0 || r.Access.ModelSeq.Accesses == 0 {
		t.Errorf("access stats empty: %+v", r.Access)
	}
	if r.Access.ModelSeq.Writes == 0 {
		t.Error("AXPY writes not recorded")
	}
	if r.Access.ModelRandom.Accesses != 0 {
		t.Errorf("dense trace recorded random model accesses: %+v", r.Access.ModelRandom)
	}
	if r.Access.Total().LatencyCycles == 0 {
		t.Error("no latency accumulated")
	}
	if r.CoherenceEvents != r.Stats.DirtyTransfers+r.Stats.Invalidates {
		t.Errorf("CoherenceEvents = %d, stats say %d+%d",
			r.CoherenceEvents, r.Stats.DirtyTransfers, r.Stats.Invalidates)
	}
	if r.CoherenceEvents == 0 {
		t.Error("4 threads sharing a 1K model produced no coherence events")
	}
	if r.ObstinateRejects != 0 {
		t.Errorf("ObstinateRejects = %d without obstinacy", r.ObstinateRejects)
	}

	sp, err := Simulate(Xeon(), sparseW(kernels.I8, kernels.I8, 16, 1<<14, 2))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Access.ModelRandom.Accesses == 0 {
		t.Errorf("sparse trace recorded no random model accesses: %+v", sp.Access)
	}
}

func TestObstinateRejectsSurfaced(t *testing.T) {
	w := denseW(kernels.I8, kernels.I8, 1<<10, 4)
	w.Obstinacy = 0.9
	r, err := Simulate(Xeon(), w)
	if err != nil {
		t.Fatal(err)
	}
	if r.ObstinateRejects == 0 {
		t.Error("q=0.9 obstinate cache rejected no invalidations")
	}
	if r.ObstinateRejects != r.Stats.InvalidatesIgnored {
		t.Errorf("ObstinateRejects = %d, stats say %d", r.ObstinateRejects, r.Stats.InvalidatesIgnored)
	}
}
