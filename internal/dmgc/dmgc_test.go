package dmgc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSignatureStringRoundTrip(t *testing.T) {
	cases := []string{
		"D8M8", "D16M16", "D8M16", "D16M8", "D32fM32f",
		"D32fi32M32f", "D8i8M8", "D16i16M16",
		"G18", "G10", "D8M16G32C32", "C1s", "D4M4",
	}
	for _, s := range cases {
		sig, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		if got := sig.String(); got != s {
			t.Errorf("round-trip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{"D", "DxM8", "D8M", "M8M8", "i32M8", "D8Q8", "D0M8", "D999M8"}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestSignatureAccessors(t *testing.T) {
	s := MustParse("D8i16M16")
	if !s.Sparse() {
		t.Error("should be sparse")
	}
	if s.DatasetBits() != 8 || s.ModelBits() != 16 || s.IndexBits() != 16 {
		t.Error("bits wrong")
	}
	if s.BytesPerElement() != 3 { // 1 byte value + 2 bytes index
		t.Errorf("BytesPerElement = %v", s.BytesPerElement())
	}
	d := MustParse("D8M8")
	if d.Sparse() {
		t.Error("should be dense")
	}
	if d.BytesPerElement() != 1 {
		t.Errorf("dense BytesPerElement = %v", d.BytesPerElement())
	}
	full := MustParse("G10")
	if full.DatasetBits() != 32 || full.ModelBits() != 32 {
		t.Error("absent terms should default to 32")
	}
	if !MustParse("D8M8").Asynchronous() {
		t.Error("no C term means asynchronous")
	}
	if MustParse("C1s").Asynchronous() {
		t.Error("Cs means synchronous")
	}
}

func TestEmptySignatureString(t *testing.T) {
	var s Signature
	if s.String() != "(full precision)" {
		t.Errorf("empty signature renders %q", s.String())
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	want := map[string]string{
		"Savich and Moussa [45], 18-bit": "G18",
		"Seide et al. [46]":              "C1s",
		"Courbariaux et al. [9], 10-bit": "G10",
		"Gupta et al. [14]":              "D8M16",
		"De Sa et al. [11], 8-bit":       "D8M8",
	}
	for _, r := range rows {
		if got := r.Signature.String(); got != want[r.Paper] {
			t.Errorf("%s: signature %s, want %s", r.Paper, got, want[r.Paper])
		}
		if r.Note == "" {
			t.Errorf("%s: missing classification note", r.Paper)
		}
	}
}

func TestTable2Base(t *testing.T) {
	if v, err := Table2Base(MustParse("D8M8")); err != nil || v != 3.339 {
		t.Errorf("D8M8 dense T1 = %v, %v", v, err)
	}
	if v, err := Table2Base(MustParse("D8i8M8")); err != nil || v != 0.166 {
		t.Errorf("D8i8M8 sparse T1 = %v, %v", v, err)
	}
	if _, err := Table2Base(MustParse("D4M4")); err == nil {
		t.Error("D4M4 is not in Table 2")
	}
}

func TestTable2DenseOrdering(t *testing.T) {
	// The paper's headline: D8M8 is the fastest dense scheme and
	// achieves roughly linear speedup over D32fM32f.
	d8, _ := Table2Base(MustParse("D8M8"))
	d32, _ := Table2Base(MustParse("D32fM32f"))
	if ratio := d8 / d32; ratio < 3 || ratio > 4.5 {
		t.Errorf("dense D8M8/D32f speedup = %v, paper shows ~3.6 (near-linear 4x)", ratio)
	}
	// Sparse D8i8M8 is fastest sparse but with sub-linear speedup.
	s8, _ := Table2Base(MustParse("D8i8M8"))
	s32, _ := Table2Base(MustParse("D32fi32M32f"))
	if ratio := s8 / s32; ratio < 1.2 || ratio > 2.5 {
		t.Errorf("sparse speedup = %v, paper shows ~1.6 (sub-linear)", ratio)
	}
}

func TestTable2Signatures(t *testing.T) {
	dense := Table2Signatures(false)
	sparse := Table2Signatures(true)
	if len(dense) != 9 || len(sparse) != 9 {
		t.Fatal("Table 2 has 9 rows")
	}
	for i := range dense {
		if dense[i].Sparse() {
			t.Errorf("dense signature %v has index term", dense[i])
		}
		if !sparse[i].Sparse() {
			t.Errorf("sparse signature %v lacks index term", sparse[i])
		}
	}
}

func TestTable3(t *testing.T) {
	rows := Table3()
	if len(rows) != 6 {
		t.Fatalf("Table 3 has %d rows, want 6", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Beneficial == "" || r.StatLoss == "" {
			t.Errorf("%s: incomplete row", r.Name)
		}
	}
	for _, want := range []string{"Optimized SIMD", "Fast PRNG", "No prefetching", "Mini-batch", "New instructions", "Obstinate cache"} {
		if !names[want] {
			t.Errorf("missing optimization %q", want)
		}
	}
}

func TestPerfModelP(t *testing.T) {
	m := DefaultPerfModel()
	if p := m.P(0); p != 0 {
		t.Errorf("P(0) = %v", p)
	}
	// p increases with model size and approaches PBandwidth.
	prev := -1.0
	for _, n := range []int{256, 1024, 4096, 65536, 1 << 22} {
		p := m.P(n)
		if p <= prev {
			t.Errorf("P not increasing at n=%d", n)
		}
		if p >= m.PBandwidth {
			t.Errorf("P(%d) = %v exceeds asymptote %v", n, p, m.PBandwidth)
		}
		prev = p
	}
	if m.P(1<<26) < 0.9*m.PBandwidth {
		t.Error("P should approach PBandwidth for huge models")
	}
}

func TestPerfModelRegimes(t *testing.T) {
	m := DefaultPerfModel()
	if m.Regime(1<<8) != CommunicationBound {
		t.Error("small models are communication-bound")
	}
	if m.Regime(1<<22) != BandwidthBound {
		t.Error("large models are bandwidth-bound")
	}
	if BandwidthBound.String() != "bandwidth-bound" || CommunicationBound.String() != "communication-bound" {
		t.Error("Regime.String wrong")
	}
}

func TestPerfModelThroughput(t *testing.T) {
	m := DefaultPerfModel()
	sig := MustParse("D8M8")
	t1, _ := m.Throughput(sig, 1<<20, 1)
	if math.Abs(t1-3.339) > 1e-9 {
		t.Errorf("1-thread throughput = %v, want the base 3.339", t1)
	}
	t18, _ := m.Throughput(sig, 1<<20, 18)
	if t18 <= t1 {
		t.Error("threads must increase throughput")
	}
	if t18 > 18*t1 {
		t.Error("superlinear speedup impossible under Amdahl")
	}
	// Communication-bound small model: threads help much less.
	small18, _ := m.Throughput(sig, 256, 18)
	big18, _ := m.Throughput(sig, 1<<22, 18)
	if big18/small18 < 4 {
		t.Errorf("bandwidth-bound should be much faster at 18 threads: %v vs %v", big18, small18)
	}
	if _, err := m.Throughput(sig, 100, 0); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := m.Throughput(MustParse("D4M4"), 100, 1); err == nil {
		t.Error("unknown base throughput should fail")
	}
}

func TestSpeedupMatchesThroughputRatio(t *testing.T) {
	m := DefaultPerfModel()
	sig := MustParse("D16M16")
	for _, n := range []int{512, 1 << 16, 1 << 24} {
		one, _ := m.Throughput(sig, n, 1)
		many, _ := m.Throughput(sig, n, 8)
		if math.Abs(many/one-m.Speedup(n, 8)) > 1e-9 {
			t.Errorf("speedup mismatch at n=%d", n)
		}
	}
}

func TestFitPRecoversParameters(t *testing.T) {
	// Generate speedups from a known model; FitP must recover it.
	truth := &PerfModel{PBandwidth: 0.9, Kappa: 4096}
	sizes := []int{256, 1024, 4096, 16384, 65536, 262144, 1048576}
	speedups := make([]float64, len(sizes))
	for i, n := range sizes {
		speedups[i] = truth.Speedup(n, 18)
	}
	pb, k, err := FitP(sizes, speedups, 18)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pb-0.9) > 0.05 {
		t.Errorf("fitted PBandwidth = %v, want ~0.9", pb)
	}
	if k < 2048 || k > 8192 {
		t.Errorf("fitted Kappa = %v, want ~4096", k)
	}
}

func TestFitPErrors(t *testing.T) {
	if _, _, err := FitP(nil, nil, 18); err == nil {
		t.Error("empty fit should fail")
	}
	if _, _, err := FitP([]int{1}, []float64{1, 2}, 18); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, _, err := FitP([]int{1}, []float64{1}, 1); err == nil {
		t.Error("single thread should fail")
	}
}

func TestValidate(t *testing.T) {
	pred := []float64{1, 2, 3, 10}
	meas := []float64{1.2, 2.9, 3.1, 10}
	frac, err := Validate(pred, meas, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1 {
		t.Errorf("all within 50%%: got %v", frac)
	}
	frac, _ = Validate(pred, meas, 0.05)
	if frac != 0.5 { // only 3 and 10 within 5%
		t.Errorf("frac at 5%% = %v, want 0.5", frac)
	}
	if _, err := Validate([]float64{1}, []float64{}, 0.5); err == nil {
		t.Error("mismatched series should fail")
	}
}

func TestLinearSpeedupIdeal(t *testing.T) {
	if LinearSpeedupIdeal(8) != 4 || LinearSpeedupIdeal(16) != 2 || LinearSpeedupIdeal(32) != 1 {
		t.Error("linear speedup wrong")
	}
}

func TestSortSignatures(t *testing.T) {
	sigs := []Signature{MustParse("D8M8"), MustParse("D32fM32f"), MustParse("D16M8")}
	SortSignatures(sigs)
	if sigs[0].String() != "D32fM32f" || sigs[2].String() != "D8M8" {
		t.Errorf("sort order: %v %v %v", sigs[0], sigs[1], sigs[2])
	}
}

func TestParsePropertyRoundTrip(t *testing.T) {
	// Any signature built from valid terms round-trips through
	// String/Parse.
	check := func(dBits, mBits uint8, dFloat, mFloat, sparse bool) bool {
		db := uint(dBits%32) + 1
		mb := uint(mBits%32) + 1
		sig := Signature{
			D: Term{Present: true, Bits: db, Float: dFloat},
			M: Term{Present: true, Bits: mb, Float: mFloat},
		}
		if sparse {
			sig.Idx = FixedTerm(16)
		}
		parsed, err := Parse(sig.String())
		if err != nil {
			return false
		}
		return parsed == sig
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func statProblem() StatProblem {
	return StatProblem{N: 256, Mu: 0.1, L: 1, M2: 1}
}

func TestStatModelBasics(t *testing.T) {
	p := statProblem()
	pred, err := PredictStatistics(MustParse("D8M8"), p, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Rate <= 0 || pred.Rate >= 1 {
		t.Errorf("Rate = %v, want in (0, 1)", pred.Rate)
	}
	if pred.NoiseBall <= 0 {
		t.Errorf("NoiseBall = %v", pred.NoiseBall)
	}
	sum := pred.GradientTerm + pred.QuantizeTerm + pred.StalenessTerm
	if math.Abs(sum-pred.NoiseBall) > 1e-12*math.Max(1, sum) {
		t.Errorf("terms %v do not sum to ball %v", sum, pred.NoiseBall)
	}
	if steps := pred.StepsTo(100); steps <= 0 {
		t.Errorf("StepsTo(100) = %v", steps)
	}
	if steps := pred.StepsTo(pred.NoiseBall); steps != 0 {
		t.Errorf("already inside the ball: StepsTo = %v", steps)
	}
}

func TestStatModelPrecisionOrdering(t *testing.T) {
	// Lower model precision -> larger quantization term -> larger ball;
	// float model has no quantization term.
	p := statProblem()
	ball := func(sigText string) float64 {
		pred, err := PredictStatistics(MustParse(sigText), p, 0.01, 1)
		if err != nil {
			t.Fatal(err)
		}
		return pred.NoiseBall
	}
	f32 := ball("D32fM32f")
	m16 := ball("D16M16")
	m8 := ball("D8M8")
	m4 := ball("D4M4")
	if !(f32 < m16 && m16 < m8 && m8 < m4) {
		t.Errorf("noise balls not ordered by precision: %v %v %v %v", f32, m16, m8, m4)
	}
	pred, _ := PredictStatistics(MustParse("D32fM32f"), p, 0.01, 1)
	if pred.QuantizeTerm != 0 {
		t.Errorf("float model should have zero quantization term, got %v", pred.QuantizeTerm)
	}
}

func TestStatModelAsynchronyPenalty(t *testing.T) {
	// More threads -> more staleness -> slower certified rate and a
	// smaller maximum stable step.
	p := statProblem()
	one, err := PredictStatistics(MustParse("D8M8"), p, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	many, err := PredictStatistics(MustParse("D8M8"), p, 0.005, 16)
	if err != nil {
		t.Fatal(err)
	}
	if many.Rate <= one.Rate {
		t.Errorf("asynchrony should slow the certified rate: 1t=%v 16t=%v", one.Rate, many.Rate)
	}
	s1, _ := MaxStableStep(p, 1)
	s16, _ := MaxStableStep(p, 16)
	if s16 >= s1 {
		t.Errorf("max stable step should shrink with threads: %v vs %v", s1, s16)
	}
}

func TestStatModelErrors(t *testing.T) {
	p := statProblem()
	if _, err := PredictStatistics(MustParse("D8M8"), StatProblem{}, 0.01, 1); err == nil {
		t.Error("invalid problem should fail")
	}
	if _, err := PredictStatistics(MustParse("D8M8"), p, 0, 1); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := PredictStatistics(MustParse("D8M8"), p, 0.01, 0); err == nil {
		t.Error("zero threads should fail")
	}
	if _, err := PredictStatistics(MustParse("D8M8"), p, 10, 1); err == nil {
		t.Error("unstable step should fail")
	}
	if _, err := MaxStableStep(StatProblem{}, 1); err == nil {
		t.Error("invalid problem should fail")
	}
	if _, err := MaxStableStep(p, 0); err == nil {
		t.Error("zero threads should fail")
	}
}

func TestStatModelMatchesEngineQualitatively(t *testing.T) {
	// The model says the 8-bit ball exceeds the float ball; the engine
	// tests (core) verify the same empirically. Here: the predicted
	// quantize term dominates for tiny steps, mirroring the noise-floor
	// behaviour documented in the README caveats.
	p := statProblem()
	small, err := PredictStatistics(MustParse("D8M8"), p, 0.001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.QuantizeTerm <= small.GradientTerm {
		t.Errorf("at tiny steps quantization should dominate: quant=%v grad=%v",
			small.QuantizeTerm, small.GradientTerm)
	}
}
