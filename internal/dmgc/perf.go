package dmgc

import (
	"fmt"
	"math"
	"sort"
)

// Regime classifies which resource bounds throughput at a given model size
// (Section 4, Figure 2).
type Regime int

const (
	// BandwidthBound: per-core memory bandwidth limits throughput; the
	// model is large enough that coherence traffic is negligible.
	BandwidthBound Regime = iota
	// CommunicationBound: the model is small, writes invalidate other
	// cores' cached lines frequently, and inter-core communication
	// latency limits throughput.
	CommunicationBound
)

// String names the regime.
func (r Regime) String() string {
	if r == BandwidthBound {
		return "bandwidth-bound"
	}
	return "communication-bound"
}

// PerfModel is the Section 4 performance model. It has three ingredients:
//
//  1. Amdahl's-law thread scaling T(t) = T1 / ((1-p) + p/t)   (equation 2);
//  2. a base throughput T1 that depends only on the DMGC signature
//     (Table 2);
//  3. a parallelizable fraction p that depends only on the model size
//     (equation 3): large models are bandwidth-bound with a fixed p;
//     small models lose parallelizable fraction because model writes
//     communicate between cores more often.
//
// The paper fits its p(n) to a Xeon E7-8890 v3; the constants here are the
// reproduction's fit to the simulated machine, with the same functional
// role: PBandwidth is the fixed bandwidth-bound fraction and Kappa is the
// model size (in elements) at which communication halves the parallel
// fraction.
type PerfModel struct {
	PBandwidth float64
	Kappa      float64
	// RegimeKnee is the model size (elements) separating the two
	// regimes for classification purposes; the paper observes roughly
	// 256K elements on its Xeon.
	RegimeKnee int
	// T1 returns the base (single-thread) throughput in GNPS for a
	// signature. If nil, the Table 2 paper measurements are used.
	T1 func(sig Signature) (float64, error)
}

// DefaultPerfModel returns the model with the reproduction's standard
// constants and Table 2 base throughputs.
func DefaultPerfModel() *PerfModel {
	return &PerfModel{
		PBandwidth: 0.95,
		Kappa:      8192,
		RegimeKnee: 256 << 10,
	}
}

// P returns the parallelizable fraction for a model of n elements:
// p(n) = PBandwidth * n / (n + Kappa). The first factor is the fixed
// bandwidth bound; the size-dependent factor is the communication bound,
// which decays as models shrink and updates (hence coherence traffic)
// become more frequent.
func (m *PerfModel) P(n int) float64 {
	if n <= 0 {
		return 0
	}
	return m.PBandwidth * float64(n) / (float64(n) + m.Kappa)
}

// Regime classifies the model size.
func (m *PerfModel) Regime(n int) Regime {
	if n >= m.RegimeKnee {
		return BandwidthBound
	}
	return CommunicationBound
}

// Base returns the base throughput T1 for the signature in GNPS.
func (m *PerfModel) Base(sig Signature) (float64, error) {
	if m.T1 != nil {
		return m.T1(sig)
	}
	return Table2Base(sig)
}

// Throughput predicts dataset throughput in GNPS for the signature at the
// given model size and thread count (equation 2).
func (m *PerfModel) Throughput(sig Signature, modelSize, threads int) (float64, error) {
	if threads < 1 {
		return 0, fmt.Errorf("dmgc: thread count %d < 1", threads)
	}
	t1, err := m.Base(sig)
	if err != nil {
		return 0, err
	}
	p := m.P(modelSize)
	return t1 / ((1 - p) + p/float64(threads)), nil
}

// Speedup predicts the parallel speedup over one thread at the given model
// size (independent of signature, by model property 3).
func (m *PerfModel) Speedup(modelSize, threads int) float64 {
	p := m.P(modelSize)
	return 1 / ((1 - p) + p/float64(threads))
}

// FitP estimates PBandwidth and Kappa from measured (modelSize, speedup)
// pairs at a fixed thread count, by grid search over Kappa and closed-form
// PBandwidth per candidate. It is used to fit the model to the simulated
// machine the way the paper fit equation 3 to its Xeon.
func FitP(sizes []int, speedups []float64, threads int) (pBandwidth, kappa float64, err error) {
	if len(sizes) != len(speedups) || len(sizes) == 0 {
		return 0, 0, fmt.Errorf("dmgc: FitP needs matching non-empty samples")
	}
	if threads < 2 {
		return 0, 0, fmt.Errorf("dmgc: FitP needs threads >= 2")
	}
	// From T/T1 = 1/((1-p) + p/t):  p = (1 - T1/T) / (1 - 1/t).
	pOf := func(speedup float64) float64 {
		p := (1 - 1/speedup) / (1 - 1/float64(threads))
		if p < 0 {
			p = 0
		}
		if p > 1 {
			p = 1
		}
		return p
	}
	best := math.Inf(1)
	for _, k := range logspace(64, 1<<20, 81) {
		// For fixed kappa, p(n) = pb * n/(n+k) is linear in pb:
		// least squares gives pb = sum(p_i * f_i) / sum(f_i^2).
		var num, den float64
		for i, n := range sizes {
			f := float64(n) / (float64(n) + k)
			num += pOf(speedups[i]) * f
			den += f * f
		}
		if den == 0 {
			continue
		}
		pb := num / den
		if pb > 1 {
			pb = 1
		}
		var sse float64
		for i, n := range sizes {
			f := pb * float64(n) / (float64(n) + k)
			d := pOf(speedups[i]) - f
			sse += d * d
		}
		if sse < best {
			best, pBandwidth, kappa = sse, pb, k
		}
	}
	if math.IsInf(best, 1) {
		return 0, 0, fmt.Errorf("dmgc: FitP found no fit")
	}
	return pBandwidth, kappa, nil
}

// logspace returns k log-spaced values in [lo, hi].
func logspace(lo, hi float64, k int) []float64 {
	out := make([]float64, k)
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := range out {
		out[i] = math.Exp(llo + (lhi-llo)*float64(i)/float64(k-1))
	}
	return out
}

// Validate compares predictions against measurements and returns the
// fraction of points whose prediction is within tol (relative). The paper
// reports 90% of configurations within 50%.
func Validate(pred, meas []float64, tol float64) (fracWithin float64, err error) {
	if len(pred) != len(meas) || len(pred) == 0 {
		return 0, fmt.Errorf("dmgc: Validate needs matching non-empty series")
	}
	within := 0
	for i := range pred {
		if meas[i] == 0 {
			continue
		}
		rel := math.Abs(pred[i]-meas[i]) / meas[i]
		if rel <= tol {
			within++
		}
	}
	return float64(within) / float64(len(pred)), nil
}

// LinearSpeedupIdeal returns the best-case speedup of lowering precision:
// throughput inversely proportional to the number of bits (Section 4,
// "linear speedup"), relative to a 32-bit baseline.
func LinearSpeedupIdeal(bits uint) float64 {
	return 32 / float64(bits)
}

// SortSignatures orders signatures by (dataset bits, model bits) descending
// for stable table output.
func SortSignatures(sigs []Signature) {
	sort.Slice(sigs, func(i, j int) bool {
		if sigs[i].DatasetBits() != sigs[j].DatasetBits() {
			return sigs[i].DatasetBits() > sigs[j].DatasetBits()
		}
		if sigs[i].ModelBits() != sigs[j].ModelBits() {
			return sigs[i].ModelBits() > sigs[j].ModelBits()
		}
		return sigs[i].String() < sigs[j].String()
	})
}
