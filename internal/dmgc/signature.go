// Package dmgc implements the DMGC model of Section 3: a taxonomy of
// low-precision SGD implementations by the precision of their Dataset,
// Model, Gradient and Communication numbers, together with the Section 4
// performance model that predicts throughput from a signature, a model
// size, and a thread count.
package dmgc

import (
	"fmt"
	"strconv"
	"strings"
)

// Term is one precision component of a signature: a bit width plus whether
// the numbers are floating point. A Term may be absent, which per the
// paper's simplification rules means the component is (equivalent to) full
// precision and is omitted from the rendered signature.
type Term struct {
	Present bool
	Bits    uint
	Float   bool
}

// F32Term is the full-precision floating-point term.
func F32Term() Term { return Term{Present: true, Bits: 32, Float: true} }

// FixedTerm returns a fixed-point term of the given width.
func FixedTerm(bits uint) Term { return Term{Present: true, Bits: bits} }

// String renders the term's width suffix ("8", "32f", ...).
func (t Term) String() string {
	if !t.Present {
		return ""
	}
	s := strconv.FormatUint(uint64(t.Bits), 10)
	if t.Float {
		s += "f"
	}
	return s
}

// Signature is a full DMGC signature (Section 3, "DMGC signatures"),
// including the augmentation rules: float suffixes, the sparse index term,
// and the synchronous-communication subscript.
type Signature struct {
	// D is the dataset precision; absent means full-precision dataset.
	D Term
	// Idx is the sparse index precision; present iff the problem is
	// sparse.
	Idx Term
	// M is the model precision; absent means full-precision model.
	M Term
	// G is the gradient (intermediate) precision; absent means the
	// gradient computation is equivalent to full precision.
	G Term
	// C is the communication precision; absent means communication is
	// implicit through the cache hierarchy (Hogwild!-style).
	C Term
	// CSync marks explicit synchronous communication (the "s"
	// subscript); meaningful only when C is present.
	CSync bool
}

// Sparse reports whether the signature describes a sparse problem.
func (s Signature) Sparse() bool { return s.Idx.Present }

// Asynchronous reports whether workers run without explicit
// synchronization.
func (s Signature) Asynchronous() bool { return !s.CSync }

// String renders the signature in the paper's notation, e.g. "D8M8",
// "D32fi32M32f", "G10", "D8M16G32C32", "C1s".
func (s Signature) String() string {
	var b strings.Builder
	if s.D.Present {
		b.WriteString("D")
		b.WriteString(s.D.String())
	}
	if s.Idx.Present {
		b.WriteString("i")
		b.WriteString(s.Idx.String())
	}
	if s.M.Present {
		b.WriteString("M")
		b.WriteString(s.M.String())
	}
	if s.G.Present {
		b.WriteString("G")
		b.WriteString(s.G.String())
	}
	if s.C.Present {
		b.WriteString("C")
		b.WriteString(s.C.String())
		if s.CSync {
			b.WriteString("s")
		}
	}
	if b.Len() == 0 {
		return "(full precision)"
	}
	return b.String()
}

// Parse parses a signature in the paper's notation. Component letters are
// case-sensitive except that a lowercase "i" introduces the index term.
// Examples: "D8M8", "D32fi32M32f", "G18", "D8M16G32C32", "C1s".
func Parse(in string) (Signature, error) {
	var sig Signature
	s := in
	pos := 0
	readTerm := func() (Term, error) {
		start := pos
		for pos < len(s) && s[pos] >= '0' && s[pos] <= '9' {
			pos++
		}
		if pos == start {
			return Term{}, fmt.Errorf("dmgc: %q: expected bit width at offset %d", in, start)
		}
		bits, err := strconv.ParseUint(s[start:pos], 10, 8)
		if err != nil || bits == 0 || bits > 64 {
			return Term{}, fmt.Errorf("dmgc: %q: bad bit width %q", in, s[start:pos])
		}
		t := Term{Present: true, Bits: uint(bits)}
		if pos < len(s) && s[pos] == 'f' {
			t.Float = true
			pos++
		}
		return t, nil
	}
	seen := map[byte]bool{}
	for pos < len(s) {
		c := s[pos]
		pos++
		if seen[c] {
			return Signature{}, fmt.Errorf("dmgc: %q: duplicate component %q", in, string(c))
		}
		seen[c] = true
		t, err := readTerm()
		if err != nil {
			return Signature{}, err
		}
		switch c {
		case 'D':
			sig.D = t
		case 'i':
			sig.Idx = t
		case 'M':
			sig.M = t
		case 'G':
			sig.G = t
		case 'C':
			sig.C = t
			if pos < len(s) && s[pos] == 's' {
				sig.CSync = true
				pos++
			}
		default:
			return Signature{}, fmt.Errorf("dmgc: %q: unknown component %q", in, string(c))
		}
	}
	if sig.Idx.Present && !sig.D.Present {
		return Signature{}, fmt.Errorf("dmgc: %q: index precision requires a dataset term", in)
	}
	return sig, nil
}

// MustParse is Parse that panics on error, for registries and tests.
func MustParse(s string) Signature {
	sig, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return sig
}

// DatasetBits returns the effective dataset width in bits (32 if absent).
func (s Signature) DatasetBits() uint {
	if s.D.Present {
		return s.D.Bits
	}
	return 32
}

// ModelBits returns the effective model width in bits (32 if absent).
func (s Signature) ModelBits() uint {
	if s.M.Present {
		return s.M.Bits
	}
	return 32
}

// IndexBits returns the index width in bits (32 if absent or dense).
func (s Signature) IndexBits() uint {
	if s.Idx.Present {
		return s.Idx.Bits
	}
	return 32
}

// BytesPerElement returns the DRAM bytes consumed per processed dataset
// number: the dataset element itself plus, for sparse problems, its stored
// index. This is the quantity that determines the bandwidth bound.
func (s Signature) BytesPerElement() float64 {
	b := float64(s.DatasetBits()) / 8
	if s.Sparse() {
		b += float64(s.IndexBits()) / 8
	}
	return b
}
