package dmgc

import (
	"fmt"
	"math"
)

// The statistical-efficiency side of the DMGC model. Section 3 notes that
// "the information in a DMGC signature is enough to model the statistical
// efficiency of an algorithm from first principles by using techniques from
// previous work like De Sa et al. [11]" (Taming the Wild). This file
// implements that first-principles model for strongly convex problems:
// asynchronous low-precision SGD with unbiased rounding converges linearly
// to a noise ball whose radius combines the gradient-variance ball of plain
// SGD with a quantization term and an asynchrony (staleness) term.
//
// The bounds follow the structure of the Hogwild!/Buckwild! analyses:
// for step size eta on a mu-strongly-convex, L-smooth objective with
// gradient second moment M2,
//
//	rate per step     ~ 2 eta mu - O(eta^2 L^2 (1 + tau))
//	noise ball (x^2)  ~ eta M2 / (2 mu - ...) + delta^2 n / (4 ...) + ...
//
// where delta is the model quantum (2^-Frac) and tau the expected staleness
// (proportional to the thread count). The constants are the simple forms of
// those analyses; the model's purpose — like the paper's — is to expose how
// the ball scales with the signature's precisions, not to be sharp.

// StatProblem describes the optimization landscape for the statistical
// model.
type StatProblem struct {
	// N is the model dimension.
	N int
	// Mu and L are the strong-convexity and smoothness constants.
	Mu, L float64
	// M2 is the second moment of the gradient estimator's norm.
	M2 float64
}

// Validate checks the problem parameters.
func (p StatProblem) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("dmgc: StatProblem needs N >= 1")
	}
	if p.Mu <= 0 || p.L < p.Mu {
		return fmt.Errorf("dmgc: need 0 < Mu <= L")
	}
	if p.M2 <= 0 {
		return fmt.Errorf("dmgc: need M2 > 0")
	}
	return nil
}

// StatPrediction is the model's output for one configuration.
type StatPrediction struct {
	// Rate is the per-step contraction factor of the expected squared
	// distance to the optimum (smaller is faster); 1 - Rate is the
	// linear convergence speed.
	Rate float64
	// NoiseBall is the asymptotic expected squared distance to the
	// optimum, decomposed into its three sources.
	NoiseBall     float64
	GradientTerm  float64
	QuantizeTerm  float64
	StalenessTerm float64
	// StepsTo reaches within 2x of the noise ball from distance R0^2.
	StepsTo func(r0Sq float64) float64
}

// modelQuantum returns the model write quantum implied by a signature (the
// standard formats of package fixed: Frac = Bits - 2), or 0 for a float
// model.
func modelQuantum(sig Signature) float64 {
	if !sig.M.Present || sig.M.Float {
		return 0
	}
	frac := int(sig.ModelBits()) - 2
	return math.Pow(2, -float64(frac))
}

// PredictStatistics evaluates the first-principles statistical model for a
// signature at the given step size and thread count, assuming unbiased
// model-write rounding (the setting of the De Sa et al. analysis; biased
// rounding adds an O(delta) bias this model does not cover).
func PredictStatistics(sig Signature, p StatProblem, eta float64, threads int) (*StatPrediction, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if eta <= 0 {
		return nil, fmt.Errorf("dmgc: step size must be positive")
	}
	if threads < 1 {
		return nil, fmt.Errorf("dmgc: threads must be >= 1")
	}
	// Expected staleness grows with the worker count (tau ~ threads-1
	// for uniform interleaving).
	tau := float64(threads - 1)
	// Effective contraction: the asynchrony penalty shrinks the usable
	// part of the step (perturbed-iterate analysis).
	contract := 2*eta*p.Mu - eta*eta*p.L*p.L*(1+tau)
	if contract <= 0 {
		return nil, fmt.Errorf("dmgc: step size %v too large for stability at %d threads (contraction %v)", eta, threads, contract)
	}
	if contract > 1 {
		contract = 1
	}
	delta := modelQuantum(sig)
	// Per-step additive noise: gradient variance, quantization variance
	// (delta^2/4 per written coordinate, n coordinates per step), and
	// the staleness cross-term.
	grad := eta * eta * p.M2
	quant := eta * delta * math.Sqrt(p.M2) * math.Sqrt(float64(p.N)) / 2
	stale := eta * eta * p.L * math.Sqrt(p.M2) * tau * eta
	ball := (grad + quant + stale) / contract
	pred := &StatPrediction{
		Rate:          1 - contract,
		NoiseBall:     ball,
		GradientTerm:  grad / contract,
		QuantizeTerm:  quant / contract,
		StalenessTerm: stale / contract,
	}
	c := contract
	pred.StepsTo = func(r0Sq float64) float64 {
		if r0Sq <= 2*ball {
			return 0
		}
		// (1-c)^k r0^2 <= ball  =>  k >= log(r0^2/ball) / -log(1-c)
		return math.Log(r0Sq/ball) / -math.Log1p(-c)
	}
	return pred, nil
}

// MaxStableStep returns the largest step size the model certifies stable
// for the problem at the given thread count.
func MaxStableStep(p StatProblem, threads int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if threads < 1 {
		return 0, fmt.Errorf("dmgc: threads must be >= 1")
	}
	tau := float64(threads - 1)
	// 2 eta mu - eta^2 L^2 (1+tau) > 0  =>  eta < 2 mu / (L^2 (1+tau)).
	return 2 * p.Mu / (p.L * p.L * (1 + tau)), nil
}
