package dmgc

import "fmt"

// PriorWork is one row of Table 1: a previously published low-precision
// system classified under the DMGC model.
type PriorWork struct {
	Paper     string
	Signature Signature
	// Note explains how the classification follows from the system's
	// description (Section 3.1).
	Note string
}

// Table1 is the paper's Table 1: DMGC signatures of previous algorithms.
func Table1() []PriorWork {
	return []PriorWork{
		{
			Paper:     "Savich and Moussa [45], 18-bit",
			Signature: MustParse("G18"),
			Note:      "18-bit arithmetic for intermediate values on the FPGA; dataset and model effectively full fidelity",
		},
		{
			Paper:     "Seide et al. [46]",
			Signature: MustParse("C1s"),
			Note:      "gradients quantized to one bit per value and exchanged synchronously; the full-precision model and carried-forward error mean only communication is low-precision",
		},
		{
			Paper:     "Courbariaux et al. [9], 10-bit",
			Signature: MustParse("G10"),
			Note:      "10-bit multipliers with full-precision accumulators: only intermediates are low-precision",
		},
		{
			Paper:     "Gupta et al. [14]",
			Signature: MustParse("D8M16"),
			Note:      "8-bit inputs, 16-bit model with stochastic rounding",
		},
		{
			Paper:     "De Sa et al. [11], 8-bit",
			Signature: MustParse("D8M8"),
			Note:      "8-bit dataset and model, asynchronous updates",
		},
	}
}

// table2Row is one row of Table 2: base sequential throughput in GNPS for a
// signature, dense and sparse, as measured by the paper on its Xeon
// E7-8890 v3. These are the reference values the reproduction's simulated
// machine is compared against (the paper itself notes "throughputs vary by
// CPU").
type table2Row struct {
	dense, sparse string // signature spellings (sparse includes the index term)
	denseT1       float64
	sparseT1      float64
}

var table2 = []table2Row{
	{"D32fM8", "D32fi32M8", 0.203, 0.103},
	{"D32fM16", "D32fi32M16", 0.208, 0.080},
	{"D32fM32f", "D32fi32M32f", 0.936, 0.101},
	{"D8M32f", "D8i8M32f", 0.999, 0.089},
	{"D16M32f", "D16i16M32f", 1.183, 0.089},
	{"D16M16", "D16i16M16", 1.739, 0.106},
	{"D8M16", "D8i8M16", 2.238, 0.105},
	{"D16M8", "D16i16M8", 2.526, 0.172},
	{"D8M8", "D8i8M8", 3.339, 0.166},
}

// Table2Signatures returns the nine signature pairs of Table 2; sparse
// selects the sparse spellings (with index terms).
func Table2Signatures(sparse bool) []Signature {
	out := make([]Signature, len(table2))
	for i, r := range table2 {
		if sparse {
			out[i] = MustParse(r.sparse)
		} else {
			out[i] = MustParse(r.dense)
		}
	}
	return out
}

// Table2Base returns the paper-measured base sequential throughput (GNPS)
// for a signature, using the sparse column when the signature has an index
// term.
func Table2Base(sig Signature) (float64, error) {
	for _, r := range table2 {
		if sig.Sparse() {
			if sig.String() == r.sparse {
				return r.sparseT1, nil
			}
		} else if sig.String() == r.dense {
			return r.denseT1, nil
		}
	}
	return 0, fmt.Errorf("dmgc: signature %v is not in Table 2", sig)
}

// Optimization is one row of Table 3: an optimization, when it helps, and
// its statistical-efficiency cost.
type Optimization struct {
	Name       string
	Beneficial string
	StatLoss   string
}

// Table3 is the paper's Table 3: the summary of optimizations studied.
func Table3() []Optimization {
	return []Optimization{
		{"Optimized SIMD", "Always", "None"},
		{"Fast PRNG", "Using unbiased rounding", "Negligible"},
		{"No prefetching", "Communication-bound", "Negligible"},
		{"Mini-batch", "Communication-bound", "Possible"},
		{"New instructions", "Always", "None"},
		{"Obstinate cache", "Communication-bound", "Negligible"},
	}
}
