package scd

import (
	"testing"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
)

func regData(t *testing.T) *dataset.DenseSet {
	t.Helper()
	ds, err := dataset.GenDense(dataset.DenseConfig{
		N: 48, M: 400, P: kernels.F32, Regression: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func cdCfg(m kernels.Prec, threads int) Config {
	return Config{
		M:           m,
		Quant:       kernels.QShared,
		QuantPeriod: 8,
		Threads:     threads,
		Lambda:      0.01,
		Passes:      8,
		StepScale:   1,
		Seed:        3,
	}
}

func TestSequentialConverges(t *testing.T) {
	ds := regData(t)
	res, err := Train(cdCfg(kernels.F32, 1), ds)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Objective[0], res.Objective[len(res.Objective)-1]
	if last >= first*0.3 {
		t.Errorf("objective did not fall: %v -> %v", first, last)
	}
	// The result must actually minimize: check against the objective of
	// the returned weights.
	if got := Objective(0.01, res.W, ds); got != last {
		t.Errorf("Objective(W) = %v, reported %v", got, last)
	}
}

func TestAsyncRacyConverges(t *testing.T) {
	ds := regData(t)
	cfg := cdCfg(kernels.F32, 4)
	cfg.StepScale = 0.8 // damp for staleness
	res, err := Train(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective[len(res.Objective)-1] >= res.Objective[0]*0.5 {
		t.Errorf("async SCD did not converge: %v", res.Objective)
	}
}

func TestLowPrecisionModel(t *testing.T) {
	ds := regData(t)
	full, err := Train(cdCfg(kernels.F32, 1), ds)
	if err != nil {
		t.Fatal(err)
	}
	low, err := Train(cdCfg(kernels.I16, 1), ds)
	if err != nil {
		t.Fatal(err)
	}
	lf := full.Objective[len(full.Objective)-1]
	ll := low.Objective[len(low.Objective)-1]
	if ll > lf*2+0.01 {
		t.Errorf("16-bit objective %v too far above full-precision %v", ll, lf)
	}
}

func TestEightBitImproves(t *testing.T) {
	ds := regData(t)
	res, err := Train(cdCfg(kernels.I8, 2), ds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective[len(res.Objective)-1] >= res.Objective[0]*0.7 {
		t.Errorf("8-bit SCD did not improve: %v", res.Objective)
	}
}

func TestValidation(t *testing.T) {
	ds := regData(t)
	cfg := cdCfg(kernels.F32, 1)
	cfg.StepScale = 0
	if _, err := Train(cfg, ds); err == nil {
		t.Error("zero step scale should fail")
	}
	cfg = cdCfg(kernels.F32, 1)
	cfg.StepScale = 2
	if _, err := Train(cfg, ds); err == nil {
		t.Error("step scale > 1 should fail")
	}
	cfg = cdCfg(kernels.F32, 1)
	cfg.Lambda = -1
	if _, err := Train(cfg, ds); err == nil {
		t.Error("negative lambda should fail")
	}
	if _, err := Train(cdCfg(kernels.F32, 1), nil); err == nil {
		t.Error("nil dataset should fail")
	}
}
