// Package scd implements asynchronous stochastic coordinate descent, the
// closest sibling of Hogwild! SGD in the paper's related-work family (Liu
// and Wright's AsySCD): worker threads repeatedly pick random coordinates
// and update them against a shared, possibly stale model without locking.
// As with Buckwild!, the shared model can be stored at low precision with
// rounded writes, exercising the same DMGC machinery on a different
// optimization algorithm.
//
// The implementation solves ridge-regularized least squares
//
//	min_w (1/2m) |Xw - y|^2 + (lambda/2) |w|^2
//
// using the standard residual-maintenance scheme: workers share the model
// and a residual vector r = Xw - y, both updated racily.
package scd

import (
	"fmt"
	"sync"

	"buckwild/internal/dataset"
	"buckwild/internal/kernels"
	"buckwild/internal/prng"
)

// Config configures an asynchronous coordinate-descent run.
type Config struct {
	// M is the model precision; Quant/QuantPeriod the write rounding.
	M           kernels.Prec
	Quant       kernels.QuantKind
	QuantPeriod int
	Threads     int
	// Lambda is the ridge weight.
	Lambda float32
	// Passes is the number of epochs, each visiting n coordinates per
	// thread partition.
	Passes int
	// StepScale damps the exact coordinate step (1 = exact minimization
	// along the coordinate, safe for sequential; async runs often use
	// slightly less).
	StepScale float32
	Seed      uint64
}

// Result reports a run.
type Result struct {
	// Objective holds the full-precision objective after each pass
	// (index 0 = initial).
	Objective []float64
	// W is the final dequantized model.
	W []float32
}

// Train runs asynchronous coordinate descent on a dense regression
// dataset (ds.Y holds real targets; generate with Regression: true).
func Train(cfg Config, ds *dataset.DenseSet) (*Result, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("scd: empty dataset")
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	if cfg.Passes < 1 {
		cfg.Passes = 1
	}
	if cfg.StepScale <= 0 || cfg.StepScale > 1 {
		return nil, fmt.Errorf("scd: StepScale must be in (0, 1]")
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("scd: negative lambda")
	}
	n, m := ds.N, ds.Len()

	// Column squared norms (the coordinate-wise curvature).
	colNorm := make([]float32, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := ds.Raw[i][j]
			colNorm[j] += v * v
		}
	}
	for j := range colNorm {
		colNorm[j] = colNorm[j]/float32(m) + cfg.Lambda
		if colNorm[j] == 0 {
			colNorm[j] = 1 // dead column: any step is a no-op anyway
		}
	}

	w := kernels.NewVec(cfg.M, n)
	// Shared residual r = Xw - y (w starts at zero).
	r := make([]float32, m)
	for i := range r {
		r[i] = -ds.Y[i]
	}

	res := &Result{Objective: []float64{objective(cfg.Lambda, w.Floats(), ds)}}
	for pass := 0; pass < cfg.Passes; pass++ {
		if err := runPass(cfg, ds, w, r, colNorm, pass); err != nil {
			return nil, err
		}
		// The racy residual drifts; refresh it between passes, as
		// practical implementations periodically do.
		refreshResidual(r, w, ds)
		res.Objective = append(res.Objective, objective(cfg.Lambda, w.Floats(), ds))
	}
	res.W = w.Floats()
	return res, nil
}

// runPass has each worker visit a random permutation share of coordinates.
func runPass(cfg Config, ds *dataset.DenseSet, w kernels.Vec, r []float32, colNorm []float32, pass int) error {
	n, m := ds.N, ds.Len()
	var wg sync.WaitGroup
	errs := make([]error, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		var q *kernels.Quantizer
		var err error
		if cfg.M != kernels.F32 {
			q, err = kernels.NewQuantizer(cfg.M, cfg.Quant, cfg.QuantPeriod,
				cfg.Seed^uint64(t+1)*0xC0FFEE+uint64(pass)|1)
			if err != nil {
				return err
			}
		}
		wg.Add(1)
		go func(t int, q *kernels.Quantizer) {
			defer wg.Done()
			g := prng.NewXorshift64(cfg.Seed ^ uint64(t+1)*0x5CD ^ uint64(pass))
			steps := n / cfg.Threads
			if steps < 1 {
				steps = 1
			}
			for s := 0; s < steps; s++ {
				j := int(g.Uint64() % uint64(n))
				// Partial gradient against the (stale) residual.
				var grad float32
				for i := 0; i < m; i++ {
					grad += r[i] * ds.Raw[i][j]
				}
				grad = grad/float32(m) + cfg.Lambda*w.At(j)
				delta := -cfg.StepScale * grad / colNorm[j]
				if delta == 0 {
					continue
				}
				w.Set(j, w.At(j)+delta, q)
				for i := 0; i < m; i++ {
					r[i] += delta * ds.Raw[i][j]
				}
			}
			errs[t] = nil
		}(t, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// refreshResidual recomputes r = Xw - y exactly.
func refreshResidual(r []float32, w kernels.Vec, ds *dataset.DenseSet) {
	for i := 0; i < ds.Len(); i++ {
		var dot float32
		for j := 0; j < ds.N; j++ {
			dot += ds.Raw[i][j] * w.At(j)
		}
		r[i] = dot - ds.Y[i]
	}
}

// objective evaluates the ridge objective in full precision.
func objective(lambda float32, w []float32, ds *dataset.DenseSet) float64 {
	var loss float64
	for i := 0; i < ds.Len(); i++ {
		var dot float64
		for j, v := range ds.Raw[i] {
			dot += float64(v) * float64(w[j])
		}
		d := dot - float64(ds.Y[i])
		loss += d * d
	}
	loss /= 2 * float64(ds.Len())
	var reg float64
	for _, v := range w {
		reg += float64(v) * float64(v)
	}
	return loss + float64(lambda)/2*reg
}

// Objective exposes the evaluation for callers and tests.
func Objective(lambda float32, w []float32, ds *dataset.DenseSet) float64 {
	return objective(lambda, w, ds)
}
