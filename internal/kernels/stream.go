package kernels

import (
	"buckwild/internal/simd"
)

// This file builds the simd.Stream instruction streams that describe what
// each kernel variant executes per invocation. Streams are static functions
// of the kernel configuration and the element count, so they are computed by
// analysis rather than instrumented execution; the machine model converts
// them to cycles.

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// vecs returns the number of full vector registers needed to hold n
// elements of precision p.
func vecs(n int64, p Prec) int64 {
	return ceilDiv(n*int64(p.Bits()), simd.VectorBits)
}

// widenOp returns the sign-extension opcode that widens precision p to
// 32-bit lanes.
func widenOp(p Prec) simd.Opcode {
	if p == I16 {
		return simd.PMOVSXWD
	}
	return simd.PMOVSXBD
}

// emitWidenToF32 emits the load + sign-extend + convert sequence that
// expands n elements of precision p into float32 lanes (the pattern GCC
// emits for every low-precision operand).
func emitWidenToF32(s *simd.Stream, p Prec, n int64) {
	nv32 := vecs(n, F32)
	s.Emit(simd.Load256, vecs(n, p))
	if !p.IsFloat() {
		s.Emit(widenOp(p), nv32)
		s.Emit(simd.CVTDQ2PS, nv32)
	}
}

// emitPRNG charges the pseudorandom-bit generation cost of a quantizer kind
// for nRoundVecs vector-register-sized batches of roundings (Section 5.2).
// One XORSHIFT refill (3 xors + 3 shifts) yields 256 fresh bits, enough for
// one batch. vectorized selects the hand-written AVX2 XORSHIFT; compiler-
// generated code calls the generator once per rounded element on the scalar
// side — which is exactly why unbiased rounding is expensive without the
// Section 5.2 optimizations.
func emitPRNG(s *simd.Stream, kind QuantKind, period int, nRoundVecs, nElems int64, vectorized bool) {
	switch kind {
	case QBiased, QHardware:
		// No software randomness.
	case QMersenne:
		// One MT19937 draw per rounded number; the twist plus
		// tempering costs roughly a dozen scalar ops per word.
		s.Emit(simd.ScalarALU, 12*nElems)
		s.Emit(simd.ScalarMul, 2*nElems)
	case QXorshift:
		if !vectorized {
			s.Emit(simd.ScalarALU, 4*nElems)
			return
		}
		s.Emit(simd.PXOR, 3*nRoundVecs)
		s.Emit(simd.PSLLD, 3*nRoundVecs)
	case QShared:
		if period < 1 {
			period = 8
		}
		if !vectorized {
			// Reuse amortizes the generator but not the per-element
			// branch and extraction.
			s.Emit(simd.ScalarALU, 2*nElems)
			return
		}
		refills := ceilDiv(nRoundVecs, int64(period))
		s.Emit(simd.PXOR, 3*refills)
		s.Emit(simd.PSLLD, 3*refills)
	}
}

// DotStream returns the instruction stream of one dense dot over n elements.
func (k *Dense) DotStream(n int) simd.Stream {
	var s simd.Stream
	nn := int64(n)
	nv32 := vecs(nn, F32)
	switch {
	case k.V == Generic:
		// Widen both operands to float, multiply, accumulate.
		emitWidenToF32(&s, k.D, nn)
		emitWidenToF32(&s, k.M, nn)
		s.Emit(simd.MULPS, nv32)
		s.Emit(simd.ADDPS, nv32)
	case k.D.IsFloat() || k.M.IsFloat():
		// Hand-optimized mixed path: widen the integer side (if any),
		// then FMA.
		emitWidenToF32(&s, k.D, nn)
		emitWidenToF32(&s, k.M, nn)
		s.Emit(simd.FMADDPS, nv32)
	case k.D == I4 && k.M == I4:
		// 4-bit fused pipeline (proposed ISA; Figure 5c): the same
		// shape as the 8-bit loop at twice the lane count.
		nv := vecs(nn, I4)
		s.Emit(simd.Load256, 2*nv)
		s.Emit(simd.PMADD4, nv)
		s.Emit(simd.PADD4, nv)
		s.Emit(simd.PMADDWD, ceilDiv(nv, 4))
		s.Emit(simd.PADDD, ceilDiv(nv, 4))
	case k.D.Bits() <= 8 && k.M.Bits() <= 8:
		nv := vecs(nn, I8)
		s.Emit(simd.Load256, 2*nv)
		if k.V == NewInsn {
			// QDOT8 fuses the multiply and horizontal add.
			s.Emit(simd.QDOT8, nv)
			s.Emit(simd.PADDD, nv)
		} else {
			// vpmaddubsw with the standard igemm trick: pair sums
			// accumulate in 16-bit lanes for a few iterations, and
			// only every fourth vector widens to 32 bits.
			s.Emit(simd.PMADDUBSW, nv)
			s.Emit(simd.PADDSW, nv)
			s.Emit(simd.PMADDWD, ceilDiv(nv, 4))
			s.Emit(simd.PADDD, ceilDiv(nv, 4))
		}
	default:
		// 16-bit lanes (I16xI16 or mixed I8/I16): the narrower
		// operand widens to 16 bits, then vpmaddwd.
		nv16 := vecs(nn, I16)
		s.Emit(simd.Load256, vecs(nn, k.D)+vecs(nn, k.M))
		if k.D.Bits() < 16 || k.M.Bits() < 16 {
			s.Emit(simd.PMOVSXBW, nv16)
		}
		s.Emit(simd.PMADDWD, nv16)
		s.Emit(simd.PADDD, nv16)
	}
	// Horizontal reduction tail and conversion to a scalar float.
	s.Emit(simd.HADDPS, 3)
	s.Emit(simd.CVTDQ2PS, 1)
	s.Emit(simd.ScalarALU, 2)
	return s
}

// AxpyStream returns the instruction stream of one dense AXPY over n
// elements, including the quantizer's randomness cost.
func (k *Dense) AxpyStream(n int) simd.Stream {
	var s simd.Stream
	nn := int64(n)
	nv32 := vecs(nn, F32)
	kind, period := QBiased, 0
	if k.Q != nil {
		kind, period = k.Q.Kind, k.Q.Period
	}
	switch {
	case k.M.IsFloat():
		// Plain FMA into the float model; no rounding.
		emitWidenToF32(&s, k.D, nn)
		s.Emit(simd.Load256, nv32)
		s.Emit(simd.FMADDPS, nv32)
		s.Emit(simd.Store256, nv32)
	case k.V == Generic && kind.Unbiased():
		// Compiler-generated unbiased AXPY: the rand() call inside the
		// loop body defeats auto-vectorization entirely, so every
		// element pays a scalar load/fma/quantize/store sequence plus
		// the generator (Section 5.2's motivating pathology).
		s.Emit(simd.ScalarALU, 12*nn)
		s.Emit(simd.ScalarMul, 3*nn)
		emitPRNG(&s, kind, period, vecs(nn, k.M), nn, false)
	case k.V == Generic:
		// Biased rounding vectorizes: widen x and w to float, FMA via
		// mul+add, then the float quantization pipeline: scale, add
		// the 0.5 offset, convert, pack down to the model width,
		// store.
		emitWidenToF32(&s, k.D, nn)
		emitWidenToF32(&s, k.M, nn)
		s.Emit(simd.MULPS, nv32)
		s.Emit(simd.ADDPS, nv32)
		s.Emit(simd.MULPS, nv32) // scale to raw units
		s.Emit(simd.ADDPS, nv32) // rounding offset
		s.Emit(simd.CVTPS2DQ, nv32)
		s.Emit(simd.PACKSSDW, vecs(nn, I16))
		if k.M.Bits() <= 8 {
			s.Emit(simd.PACKSSWB, vecs(nn, I8))
		}
		s.Emit(simd.Store256, vecs(nn, k.M))
	case k.V == NewInsn && k.D == I4 && k.M == I4:
		// Proposed 4-bit pipeline: the paper assumes 4-bit multiply,
		// add and FMA with the latencies of their 8-bit equivalents,
		// so the loop has the same shape as the 8-bit integer AXPY at
		// half the vector count (exactly 2x throughput, Figure 5c).
		nv := vecs(nn, I4)
		s.Emit(simd.PBROADCAST, 1)
		s.Emit(simd.Load256, 2*nv)
		s.Emit(simd.PMUL4, 2*nv) // rounding multiply in 8-bit lanes
		s.Emit(simd.PADD4, 2*nv) // rounding vector add
		s.Emit(simd.PACKSSWB, nv)
		s.Emit(simd.PADD4, nv) // add into the model
		s.Emit(simd.Store256, nv)
		emitPRNG(&s, kind, period, nv, nn, true)
	case k.V == NewInsn && k.M.Bits() <= 8 && k.D.Bits() <= 8:
		// QAXPY8: multiply by scalar, hardware stochastic round,
		// truncate -- one instruction; then saturating add and store.
		nv := vecs(nn, I8)
		s.Emit(simd.Load256, 2*nv)
		s.Emit(simd.QAXPY8, nv)
		s.Emit(simd.PADDSB, nv)
		s.Emit(simd.Store256, nv)
	case !k.D.IsFloat():
		// Hand-optimized integer pipeline. Narrow operands use
		// sign-extending loads (vpmovsxbw ymm, m128) so no separate
		// widening instruction is needed; vpmulhrsw multiplies by the
		// broadcast scalar and performs the rounding shift in one
		// instruction; the rounding vector is added in 16-bit lanes;
		// results pack down to the model width and accumulate with a
		// saturating add.
		nv16 := vecs(nn, I16)
		s.Emit(simd.PBROADCAST, 1)
		s.Emit(simd.Load256, vecs(nn, k.D)+vecs(nn, k.M))
		s.Emit(simd.PMULHRSW, nv16)
		s.Emit(simd.PADDSW, nv16) // rounding vector add
		if k.M.Bits() <= 8 {
			s.Emit(simd.PACKSSWB, vecs(nn, I8))
			s.Emit(simd.PADDSB, vecs(nn, I8))
		} else {
			s.Emit(simd.PADDSW, vecs(nn, I16))
		}
		s.Emit(simd.Store256, vecs(nn, k.M))
		emitPRNG(&s, kind, period, vecs(nn, k.M), nn, true)
	default:
		// Float dataset, fixed-point model (D32fM8/M16). This
		// combination has no efficient AVX2 mapping: the product is
		// computed in float but every model write must be scaled,
		// randomized, converted and packed into narrow lanes with a
		// different width than the inputs, and the paper's Table 2
		// shows these signatures collapsing well below pure float
		// (0.203-0.208 vs 0.936 GNPS). We model the write pipeline as
		// per-element scalar quantization, which reproduces that
		// collapse.
		s.Emit(simd.Load256, nv32+vecs(nn, k.M))
		s.Emit(simd.MULPS, nv32)
		s.Emit(simd.ScalarMul, 5*nn)  // scale, convert and reinsert per element
		s.Emit(simd.ScalarALU, 24*nn) // extract, offset, clamp, pack, loop
		s.Emit(simd.Store256, vecs(nn, k.M))
		emitPRNG(&s, kind, period, vecs(nn, k.M), nn, false)
	}
	return s
}

// scalarGlue is the per-iteration scalar section of a logistic-regression
// SGD step: computing the label margin, the sigmoid-like scaling factor and
// the step size multiply (Section 2: "negligible scalar computations").
func scalarGlue(s *simd.Stream) {
	s.Emit(simd.ScalarALU, 6)
	s.Emit(simd.ScalarMul, 3)
	s.Emit(simd.ScalarDiv, 1) // exp/logistic approximation
}

// StepStream returns the instruction stream of one full dense SGD step
// (dot + scalar glue + AXPY) over a model of size n.
func (k *Dense) StepStream(n int) simd.Stream {
	s := k.DotStream(n)
	scalarGlue(&s)
	s.Add(k.AxpyStream(n))
	return s
}

// DotStream returns the instruction stream of one sparse dot over nnz
// nonzeros. Sparse kernels are gather-bound; the hand-optimized variant
// uses vpgatherdd (slow on Haswell), which is why its advantage over the
// scalar code is small (Table 2) and can invert for small models (Fig 4b).
func (k *Sparse) DotStream(nnz int) simd.Stream {
	var s simd.Stream
	n := int64(nnz)
	if k.V == Generic {
		// Scalar loop: load index, load value, gather model word,
		// multiply, accumulate, loop overhead.
		s.Emit(simd.ScalarALU, 5*n)
		s.Emit(simd.ScalarMul, n)
		return s
	}
	// Vectorized gather loop over batches of 8 nonzeros. Partial final
	// batches need mask construction, which is significant when each
	// example has only a handful of nonzeros (Figure 4b).
	nb := ceilDiv(n, 8)
	s.Emit(simd.Load256, ceilDiv(n*int64(k.IdxBits), simd.VectorBits)) // indices
	s.Emit(simd.Load256, vecs(n, k.D))                                 // values
	s.Emit(simd.GATHERD, nb)                                           // model gather
	s.Emit(simd.PBLEND, nb)                                            // tail masking
	s.Emit(simd.ScalarALU, 2*nb)                                       // mask setup
	if !k.D.IsFloat() {
		s.Emit(widenOp(k.D), nb)
	}
	if !k.M.IsFloat() {
		s.Emit(simd.CVTDQ2PS, nb)
	}
	s.Emit(simd.FMADDPS, nb)
	s.Emit(simd.HADDPS, 3)
	s.Emit(simd.ScalarALU, 2)
	return s
}

// AxpyStream returns the instruction stream of one sparse AXPY over nnz
// nonzeros. Scatter has no AVX2 instruction, so even the hand-optimized
// variant stores the updated model words one at a time.
func (k *Sparse) AxpyStream(nnz int) simd.Stream {
	var s simd.Stream
	n := int64(nnz)
	kind, period := QBiased, 0
	if k.Q != nil {
		kind, period = k.Q.Kind, k.Q.Period
	}
	if k.V == Generic {
		s.Emit(simd.ScalarALU, 6*n)
		s.Emit(simd.ScalarMul, 2*n)
		if k.M != F32 {
			emitPRNG(&s, kind, period, ceilDiv(n*int64(k.M.Bits()), simd.VectorBits), n, false)
		}
		return s
	}
	nb := ceilDiv(n, 8)
	s.Emit(simd.Load256, ceilDiv(n*int64(k.IdxBits), simd.VectorBits))
	s.Emit(simd.Load256, vecs(n, k.D))
	s.Emit(simd.GATHERD, nb)
	s.Emit(simd.MULPS, nb)
	if k.M != F32 {
		s.Emit(simd.ADDPS, nb) // rounding offset
		s.Emit(simd.CVTPS2DQ, nb)
		emitPRNG(&s, kind, period, nb, n, true)
	}
	s.Emit(simd.PADDD, nb)
	s.Emit(simd.ScalarALU, 8*nb) // scalar scatter of the updated words
	return s
}

// StepStream returns the instruction stream of one full sparse SGD step
// over nnz nonzeros.
func (k *Sparse) StepStream(nnz int) simd.Stream {
	s := k.DotStream(nnz)
	scalarGlue(&s)
	s.Add(k.AxpyStream(nnz))
	return s
}

// DenseStepBytes returns the DRAM traffic of one dense SGD step: the
// dataset vector is streamed from memory (read for the dot and still
// resident in L1 for the AXPY, so charged once); the model is assumed
// cache-resident (Section 3: "the model numbers are typically all stored in
// the last-level cache").
func DenseStepBytes(d Prec, n int) float64 {
	return d.Bytes() * float64(n)
}

// SparseStepBytes returns the DRAM traffic of one sparse SGD step: nonzero
// values plus their stored indices.
func SparseStepBytes(d Prec, idxBits uint, nnz int) float64 {
	return (d.Bytes() + float64(idxBits)/8) * float64(nnz)
}

// ModelBytes returns the in-cache footprint of the model.
func ModelBytes(m Prec, n int) float64 {
	return m.Bytes() * float64(n)
}
