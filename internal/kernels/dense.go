package kernels

import (
	"fmt"

	"buckwild/internal/fixed"
)

// Variant selects the implementation style of a kernel (Section 5.1/6.1).
type Variant int

const (
	// Generic mirrors compiler-generated code: widen everything to
	// float32, compute in float, quantize per element on write.
	Generic Variant = iota
	// HandOpt mirrors the hand-written AVX2 code: fused widening integer
	// multiply-adds for the dot, an integer rounding pipeline for AXPY.
	HandOpt
	// NewInsn is HandOpt executed with the Section 6.1 proposed
	// instructions (QDOT8/QAXPY8 and the 4-bit family). Numerically it
	// equals HandOpt; only the instruction stream differs.
	NewInsn
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Generic:
		return "generic"
	case HandOpt:
		return "handopt"
	case NewInsn:
		return "newinsn"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// aqFrac is the fixed-point fraction used for the broadcast scalar a in the
// integer AXPY pipeline (the scalar is held in a 16-bit lane with 14
// fractional bits, range [-2, 2)).
const aqFrac = 14

// Dense computes dot and AXPY over dense vectors at the configured dataset
// precision D and model precision M.
type Dense struct {
	D, M Prec
	V    Variant
	// Q quantizes model writes; required iff M != F32.
	Q *Quantizer
	// Num, when non-nil, receives the worker's numerical-health counts
	// (saturation per site, underflows). The uninstrumented loops are
	// kept verbatim behind one nil check per kernel call; set Q.Num to
	// the same block to also count quantization bias.
	Num *fixed.NumCounts
}

// NewDense validates and builds a dense kernel.
func NewDense(d, m Prec, v Variant, q *Quantizer) (*Dense, error) {
	if m != F32 && q == nil {
		return nil, fmt.Errorf("kernels: model precision %v requires a quantizer", m)
	}
	if m == F32 && q != nil {
		return nil, fmt.Errorf("kernels: float model takes no quantizer")
	}
	if v == NewInsn && !(d == I8 || d == I4) {
		return nil, fmt.Errorf("kernels: proposed instructions cover 8- and 4-bit datasets, not %v", d)
	}
	return &Dense{D: d, M: m, V: v, Q: q}, nil
}

// MustDense is NewDense that panics on error.
func MustDense(d, m Prec, v Variant, q *Quantizer) *Dense {
	k, err := NewDense(d, m, v, q)
	if err != nil {
		panic(err)
	}
	return k
}

// intPath reports whether the hand-optimized integer pipeline applies:
// both operands fixed point.
func (k *Dense) intPath() bool {
	return k.V != Generic && !k.D.IsFloat() && !k.M.IsFloat()
}

// Dot returns the inner product of the dataset vector x (precision D) and
// the model vector w (precision M) as a real number.
func (k *Dense) Dot(x, w Vec) float32 {
	n := x.Len()
	if w.Len() != n {
		panic(fmt.Sprintf("kernels: Dot length mismatch %d != %d", n, w.Len()))
	}
	if k.intPath() {
		return k.dotInt(x, w, n)
	}
	// Float path (generic, or hand-optimized FMA when either side is
	// float): widen to float32 and accumulate.
	var sum float32
	for i := 0; i < n; i++ {
		sum += x.At(i) * w.At(i)
	}
	return sum
}

// dotInt is the fused widening-multiply-add pipeline. For 8-bit (and 4-bit)
// inputs it reproduces vpmaddubsw semantics: adjacent pairs multiply exactly
// into 16 bits and their sum saturates at 16 bits; pair sums are then
// accumulated exactly. For 16-bit inputs (vpmaddwd) the pair products
// accumulate exactly into 32 bits. Mixed widths widen the narrower operand
// first (exact).
func (k *Dense) dotInt(x, w Vec, n int) float32 {
	if k.Num != nil {
		return k.dotIntC(x, w, n)
	}
	var acc int64
	if k.D.Bits() <= 8 && k.M.Bits() <= 8 {
		// vpmaddubsw: pairwise 8x8->16 with saturating pair add.
		i := 0
		for ; i+1 < n; i += 2 {
			p0 := int32(x.Raw(i)) * int32(w.Raw(i))
			p1 := int32(x.Raw(i+1)) * int32(w.Raw(i+1))
			s := p0 + p1
			if s > 32767 {
				s = 32767
			} else if s < -32768 {
				s = -32768
			}
			acc += int64(s)
		}
		if i < n {
			acc += int64(int32(x.Raw(i)) * int32(w.Raw(i)))
		}
	} else {
		// vpmaddwd path (covers I16xI16 and mixed I8/I16): products are
		// exact in 32 bits and pair sums are exact in 32 bits.
		for i := 0; i < n; i++ {
			acc += int64(x.Raw(i)) * int64(w.Raw(i))
		}
	}
	return float32(acc) * k.D.Fixed().Quantum() * k.M.Fixed().Quantum()
}

// dotIntC mirrors dotInt with saturation counting: the 8-bit pair add is
// the vpmaddubsw saturation site, counted under SiteMulAdd8to16. The
// 16-bit path accumulates exactly and has nothing to count.
func (k *Dense) dotIntC(x, w Vec, n int) float32 {
	var acc int64
	if k.D.Bits() <= 8 && k.M.Bits() <= 8 {
		i := 0
		for ; i+1 < n; i += 2 {
			p0 := int16(int32(x.Raw(i)) * int32(w.Raw(i)))
			acc += int64(fixed.MulAdd8to16C(int8(x.Raw(i+1)), int8(w.Raw(i+1)), p0, k.Num))
		}
		if i < n {
			acc += int64(int32(x.Raw(i)) * int32(w.Raw(i)))
		}
	} else {
		for i := 0; i < n; i++ {
			acc += int64(x.Raw(i)) * int64(w.Raw(i))
		}
	}
	return float32(acc) * k.D.Fixed().Quantum() * k.M.Fixed().Quantum()
}

// Axpy performs the model update w <- round(w + a*x) elementwise, where the
// rounding into the model format follows the kernel's quantizer. For float
// models this is a plain fused multiply-add with no rounding step.
func (k *Dense) Axpy(a float32, x, w Vec) {
	n := x.Len()
	if w.Len() != n {
		panic(fmt.Sprintf("kernels: Axpy length mismatch %d != %d", n, w.Len()))
	}
	switch {
	case k.M.IsFloat():
		for i := 0; i < n; i++ {
			w.F32[i] += a * x.At(i)
		}
	case k.V != Generic && !k.D.IsFloat():
		k.axpyInt(a, x, w, n)
	case k.V != Generic: // float dataset, fixed model
		// Hand-optimized float->fixed pipeline: the product is
		// stochastically rounded to a model-format delta, which is
		// added with saturation (this is the semantics of the
		// proposed QAXPY8 instruction as well).
		fm := k.M.Fixed()
		if c := k.Num; c != nil {
			for i := 0; i < n; i++ {
				p := a * x.At(i)
				delta := k.Q.Quantize(p)
				if delta == 0 && p != 0 {
					c.Underflows++
				}
				w.SetRaw(i, fm.SaturateC(int64(w.Raw(i))+int64(delta), c))
			}
			return
		}
		for i := 0; i < n; i++ {
			delta := k.Q.Quantize(a * x.At(i))
			w.SetRaw(i, fm.Saturate(int64(w.Raw(i))+int64(delta)))
		}
	default:
		// Generic: recompute w + a*x in float and round the sum.
		for i := 0; i < n; i++ {
			w.Set(i, w.At(i)+a*x.At(i), k.Q)
		}
	}
}

// axpyInt is the all-integer AXPY pipeline: the scalar a is quantized once
// into a 16-bit lane with aqFrac fractional bits; each product
// x_raw * a_raw is a wide integer whose model-format value is recovered by
// a rounding right-shift (stochastic or nearest per the quantizer); the
// delta is added to the model with saturation. This mirrors the
// vpmullw / add-random-vector / truncate sequence of Section 6.1.
func (k *Dense) axpyInt(a float32, x, w Vec, n int) {
	if k.Num != nil {
		k.axpyIntC(a, x, w, n)
		return
	}
	aq := quantizeScalarA(a)
	if aq == 0 {
		// The scalar underflowed the a-lane format; the hand-optimized
		// kernel genuinely performs no update in this case.
		return
	}
	fx := k.D.Fixed()
	fm := k.M.Fixed()
	shift := fx.Frac + aqFrac - fm.Frac
	for i := 0; i < n; i++ {
		wide := int64(x.Raw(i)) * int64(aq)
		delta := k.Q.RoundRaw(wide, shift)
		w.SetRaw(i, fm.Saturate(int64(w.Raw(i))+int64(delta)))
	}
}

// axpyIntC mirrors axpyInt with health counting: a dropped whole update
// (the scalar underflowing its 16-bit lane) and per-element deltas that
// round to zero count as underflows, the model write clamp counts under
// SiteSaturate, and RoundRaw feeds the bias accumulator through Q.Num.
func (k *Dense) axpyIntC(a float32, x, w Vec, n int) {
	c := k.Num
	aq := quantizeScalarA(a)
	if aq == 0 {
		if a != 0 {
			c.Underflows++
		}
		return
	}
	fx := k.D.Fixed()
	fm := k.M.Fixed()
	shift := fx.Frac + aqFrac - fm.Frac
	for i := 0; i < n; i++ {
		wide := int64(x.Raw(i)) * int64(aq)
		delta := k.Q.RoundRaw(wide, shift)
		if delta == 0 && wide != 0 {
			c.Underflows++
		}
		w.SetRaw(i, fm.SaturateC(int64(w.Raw(i))+int64(delta), c))
	}
}

// quantizeScalarA rounds the AXPY scalar into its 16-bit broadcast lane
// (frac aqFrac), saturating at the lane bounds.
func quantizeScalarA(a float32) int32 {
	scaled := float64(a) * float64(int64(1)<<aqFrac)
	if scaled >= 0 {
		scaled += 0.5
	} else {
		scaled -= 0.5
	}
	v := int64(scaled)
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int32(v)
}
