package kernels

import (
	"fmt"

	"buckwild/internal/fixed"
)

// Variant selects the implementation style of a kernel (Section 5.1/6.1).
type Variant int

const (
	// Generic mirrors compiler-generated code: widen everything to
	// float32, compute in float, quantize per element on write.
	Generic Variant = iota
	// HandOpt mirrors the hand-written AVX2 code: fused widening integer
	// multiply-adds for the dot, an integer rounding pipeline for AXPY.
	HandOpt
	// NewInsn is HandOpt executed with the Section 6.1 proposed
	// instructions (QDOT8/QAXPY8 and the 4-bit family). Numerically it
	// equals HandOpt; only the instruction stream differs.
	NewInsn
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Generic:
		return "generic"
	case HandOpt:
		return "handopt"
	case NewInsn:
		return "newinsn"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// aqFrac is the fixed-point fraction used for the broadcast scalar a in the
// integer AXPY pipeline (the scalar is held in a 16-bit lane with 14
// fractional bits, range [-2, 2)).
const aqFrac = 14

// Dense computes dot and AXPY over dense vectors at the configured dataset
// precision D and model precision M.
type Dense struct {
	D, M Prec
	V    Variant
	// Q quantizes model writes; required iff M != F32.
	Q *Quantizer
	// Num, when non-nil, receives the worker's numerical-health counts
	// (saturation per site, underflows). The uninstrumented loops are
	// kept verbatim behind one nil check per kernel call; set Q.Num to
	// the same block to also count quantization bias.
	Num *fixed.NumCounts
}

// NewDense validates and builds a dense kernel.
func NewDense(d, m Prec, v Variant, q *Quantizer) (*Dense, error) {
	if m != F32 && q == nil {
		return nil, fmt.Errorf("kernels: model precision %v requires a quantizer", m)
	}
	if m == F32 && q != nil {
		return nil, fmt.Errorf("kernels: float model takes no quantizer")
	}
	if v == NewInsn && !(d == I8 || d == I4) {
		return nil, fmt.Errorf("kernels: proposed instructions cover 8- and 4-bit datasets, not %v", d)
	}
	return &Dense{D: d, M: m, V: v, Q: q}, nil
}

// MustDense is NewDense that panics on error.
func MustDense(d, m Prec, v Variant, q *Quantizer) *Dense {
	k, err := NewDense(d, m, v, q)
	if err != nil {
		panic(err)
	}
	return k
}

// intPath reports whether the hand-optimized integer pipeline applies:
// both operands fixed point.
func (k *Dense) intPath() bool {
	return k.V != Generic && !k.D.IsFloat() && !k.M.IsFloat()
}

// Dot returns the inner product of the dataset vector x (precision D) and
// the model vector w (precision M) as a real number.
func (k *Dense) Dot(x, w Vec) float32 {
	n := x.Len()
	if w.Len() != n {
		panic(fmt.Sprintf("kernels: Dot length mismatch %d != %d", n, w.Len()))
	}
	if k.intPath() {
		return k.dotInt(x, w, n)
	}
	// Float path (generic, or hand-optimized FMA when either side is
	// float): widen to float32 and accumulate.
	var sum float32
	for i := 0; i < n; i++ {
		sum += x.At(i) * w.At(i)
	}
	return sum
}

// dotInt is the fused widening-multiply-add pipeline. For 8-bit (and 4-bit)
// inputs it reproduces vpmaddubsw semantics: adjacent pairs multiply exactly
// into 16 bits and their sum saturates at 16 bits; pair sums are then
// accumulated exactly. For 16-bit inputs (vpmaddwd) the pair products
// accumulate exactly into 32 bits. Mixed widths widen the narrower operand
// first (exact).
func (k *Dense) dotInt(x, w Vec, n int) float32 {
	if k.Num != nil {
		return k.dotIntC(x, w, n)
	}
	var acc int64
	if k.D.Bits() <= 8 && k.M.Bits() <= 8 {
		// vpmaddubsw: pairwise 8x8->16 with saturating pair add. Whole
		// words go through the SWAR body (four pairs per uint64 load);
		// word boundaries fall on pair boundaries, so the ragged tail
		// continues the identical pairing.
		i := 0
		if swarOn && k.D == I8 && k.M == I8 && x.w64 != nil && w.w64 != nil {
			nw := n >> 3
			acc = dotSwar8(x.w64[:nw], w.w64[:nw])
			i = nw << 3
		}
		for ; i+1 < n; i += 2 {
			p0 := int32(x.Raw(i)) * int32(w.Raw(i))
			p1 := int32(x.Raw(i+1)) * int32(w.Raw(i+1))
			s := p0 + p1
			if s > 32767 {
				s = 32767
			} else if s < -32768 {
				s = -32768
			}
			acc += int64(s)
		}
		if i < n {
			acc += int64(int32(x.Raw(i)) * int32(w.Raw(i)))
		}
	} else if swarOn && k.D == I16 && k.M == I16 && x.w64 != nil && w.w64 != nil {
		// vpmaddwd over words: four exact 16x16->32 products per load,
		// accumulated exactly (order-independent, so bit-identity with
		// the scalar loop is structural).
		nw := n >> 2
		acc = dotSwar16(x.w64[:nw], w.w64[:nw])
		for i := nw << 2; i < n; i++ {
			acc += int64(x.Raw(i)) * int64(w.Raw(i))
		}
	} else {
		// vpmaddwd path (covers I16xI16 and mixed I8/I16): products are
		// exact in 32 bits and pair sums are exact in 32 bits.
		for i := 0; i < n; i++ {
			acc += int64(x.Raw(i)) * int64(w.Raw(i))
		}
	}
	return float32(acc) * k.D.Fixed().Quantum() * k.M.Fixed().Quantum()
}

// dotSwar8 is the word-parallel body of the 8-bit dot pipeline: each
// uint64 holds eight int8 lanes, i.e. four vpmaddubsw pairs. Lanes are
// extracted by shifts, pair products widen exactly into 32 bits, and the
// pair sum saturates at int16 exactly as the scalar reference does.
func dotSwar8(xw, ww []uint64) int64 {
	var acc int64
	for i, a := range xw {
		b := ww[i]
		s0 := clampPair(int32(int8(a))*int32(int8(b)) + int32(int8(a>>8))*int32(int8(b>>8)))
		s1 := clampPair(int32(int8(a>>16))*int32(int8(b>>16)) + int32(int8(a>>24))*int32(int8(b>>24)))
		s2 := clampPair(int32(int8(a>>32))*int32(int8(b>>32)) + int32(int8(a>>40))*int32(int8(b>>40)))
		s3 := clampPair(int32(int8(a>>48))*int32(int8(b>>48)) + int32(int8(a>>56))*int32(int8(b>>56)))
		acc += int64(s0) + int64(s1) + int64(s2) + int64(s3)
	}
	return acc
}

// clampPair saturates a vpmaddubsw pair sum at the int16 bounds.
func clampPair(s int32) int32 {
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return s
}

// dotSwar16 is the word-parallel body of the 16-bit dot pipeline: four
// int16 lanes per uint64, exact products, exact accumulation.
func dotSwar16(xw, ww []uint64) int64 {
	var acc int64
	for i, a := range xw {
		b := ww[i]
		acc += int64(int16(a))*int64(int16(b)) +
			int64(int16(a>>16))*int64(int16(b>>16)) +
			int64(int16(a>>32))*int64(int16(b>>32)) +
			int64(int16(a>>48))*int64(int16(b>>48))
	}
	return acc
}

// dotIntC mirrors dotInt with saturation counting: the 8-bit pair add is
// the vpmaddubsw saturation site, counted under SiteMulAdd8to16. The
// 16-bit path accumulates exactly and has nothing to count.
func (k *Dense) dotIntC(x, w Vec, n int) float32 {
	var acc int64
	if k.D.Bits() <= 8 && k.M.Bits() <= 8 {
		i := 0
		for ; i+1 < n; i += 2 {
			p0 := int16(int32(x.Raw(i)) * int32(w.Raw(i)))
			acc += int64(fixed.MulAdd8to16C(int8(x.Raw(i+1)), int8(w.Raw(i+1)), p0, k.Num))
		}
		if i < n {
			acc += int64(int32(x.Raw(i)) * int32(w.Raw(i)))
		}
	} else {
		for i := 0; i < n; i++ {
			acc += int64(x.Raw(i)) * int64(w.Raw(i))
		}
	}
	return float32(acc) * k.D.Fixed().Quantum() * k.M.Fixed().Quantum()
}

// Axpy performs the model update w <- round(w + a*x) elementwise, where the
// rounding into the model format follows the kernel's quantizer. For float
// models this is a plain fused multiply-add with no rounding step.
func (k *Dense) Axpy(a float32, x, w Vec) {
	n := x.Len()
	if w.Len() != n {
		panic(fmt.Sprintf("kernels: Axpy length mismatch %d != %d", n, w.Len()))
	}
	switch {
	case k.M.IsFloat():
		for i := 0; i < n; i++ {
			w.F32[i] += a * x.At(i)
		}
	case k.V != Generic && !k.D.IsFloat():
		k.axpyInt(a, x, w, n)
	case k.V != Generic: // float dataset, fixed model
		// Hand-optimized float->fixed pipeline: the product is
		// stochastically rounded to a model-format delta, which is
		// added with saturation (this is the semantics of the
		// proposed QAXPY8 instruction as well).
		fm := k.M.Fixed()
		if c := k.Num; c != nil {
			for i := 0; i < n; i++ {
				p := a * x.At(i)
				delta := k.Q.Quantize(p)
				if delta == 0 && p != 0 {
					c.Underflows++
				}
				w.SetRaw(i, fm.SaturateC(int64(w.Raw(i))+int64(delta), c))
			}
			return
		}
		for i := 0; i < n; i++ {
			delta := k.Q.Quantize(a * x.At(i))
			w.SetRaw(i, fm.Saturate(int64(w.Raw(i))+int64(delta)))
		}
	default:
		// Generic: recompute w + a*x in float and round the sum.
		for i := 0; i < n; i++ {
			w.Set(i, w.At(i)+a*x.At(i), k.Q)
		}
	}
}

// axpyInt is the all-integer AXPY pipeline: the scalar a is quantized once
// into a 16-bit lane with aqFrac fractional bits; each product
// x_raw * a_raw is a wide integer whose model-format value is recovered by
// a rounding right-shift (stochastic or nearest per the quantizer); the
// delta is added to the model with saturation. This mirrors the
// vpmullw / add-random-vector / truncate sequence of Section 6.1.
func (k *Dense) axpyInt(a float32, x, w Vec, n int) {
	if k.Num != nil {
		k.axpyIntC(a, x, w, n)
		return
	}
	aq := quantizeScalarA(a)
	if aq == 0 {
		// The scalar underflowed the a-lane format; the hand-optimized
		// kernel genuinely performs no update in this case.
		return
	}
	fx := k.D.Fixed()
	fm := k.M.Fixed()
	shift := fx.Frac + aqFrac - fm.Frac
	i := 0
	if swarOn && x.w64 != nil && w.w64 != nil &&
		(k.D == I8 || k.D == I16) && (k.M == I8 || k.M == I16) {
		i = k.axpySwar(int64(aq), shift, x, w, n)
	}
	// Scalar reference loop; also finishes the ragged tail (n mod 8) of
	// the word path, popping the same rounding-lane stream the vector
	// entry point would.
	for ; i < n; i++ {
		wide := int64(x.Raw(i)) * int64(aq)
		delta := k.Q.RoundRaw(wide, shift)
		w.SetRaw(i, fm.Saturate(int64(w.Raw(i))+int64(delta)))
	}
}

// axpySwar is the word-parallel body of the integer AXPY pipeline: eight
// elements per iteration are loaded with word accesses, multiplied wide by
// the broadcast scalar, rounded through the quantizer's vector entry point
// (which consumes rounding randomness in scalar lane order), packed back
// into lane words and added to the model with the word-parallel saturating
// adds. RoundRaw8 already saturates every delta into the model format, so
// the packed lanes are exact and the final add is the only clamp — the
// same two-stage structure as the scalar loop, hence bit-identical. It
// returns how many elements it processed (a multiple of 8).
func (k *Dense) axpySwar(a64 int64, shift uint, x, w Vec, n int) int {
	n8 := n &^ 7
	var xv [8]int32
	var wide [8]int64
	var delta [8]int32
	for i := 0; i < n8; i += 8 {
		x.lanes8(i>>3, &xv)
		for l := range wide {
			wide[l] = int64(xv[l]) * a64
		}
		k.Q.RoundRaw8(&wide, shift, &delta)
		if k.M == I8 {
			dw := uint64(uint8(delta[0])) |
				uint64(uint8(delta[1]))<<8 |
				uint64(uint8(delta[2]))<<16 |
				uint64(uint8(delta[3]))<<24 |
				uint64(uint8(delta[4]))<<32 |
				uint64(uint8(delta[5]))<<40 |
				uint64(uint8(delta[6]))<<48 |
				uint64(uint8(delta[7]))<<56
			w.w64[i>>3] = fixed.AddSat8x8(w.w64[i>>3], dw)
		} else {
			d0 := uint64(uint16(delta[0])) |
				uint64(uint16(delta[1]))<<16 |
				uint64(uint16(delta[2]))<<32 |
				uint64(uint16(delta[3]))<<48
			d1 := uint64(uint16(delta[4])) |
				uint64(uint16(delta[5]))<<16 |
				uint64(uint16(delta[6]))<<32 |
				uint64(uint16(delta[7]))<<48
			w.w64[i>>2] = fixed.AddSat16x4(w.w64[i>>2], d0)
			w.w64[i>>2+1] = fixed.AddSat16x4(w.w64[i>>2+1], d1)
		}
	}
	return n8
}

// axpyIntC mirrors axpyInt with health counting: a dropped whole update
// (the scalar underflowing its 16-bit lane) and per-element deltas that
// round to zero count as underflows, the model write clamp counts under
// SiteSaturate, and RoundRaw feeds the bias accumulator through Q.Num.
func (k *Dense) axpyIntC(a float32, x, w Vec, n int) {
	c := k.Num
	aq := quantizeScalarA(a)
	if aq == 0 {
		if a != 0 {
			c.Underflows++
		}
		return
	}
	fx := k.D.Fixed()
	fm := k.M.Fixed()
	shift := fx.Frac + aqFrac - fm.Frac
	for i := 0; i < n; i++ {
		wide := int64(x.Raw(i)) * int64(aq)
		delta := k.Q.RoundRaw(wide, shift)
		if delta == 0 && wide != 0 {
			c.Underflows++
		}
		w.SetRaw(i, fm.SaturateC(int64(w.Raw(i))+int64(delta), c))
	}
}

// quantizeScalarA rounds the AXPY scalar into its 16-bit broadcast lane
// (frac aqFrac), saturating at the lane bounds. Ties round half away from
// zero: the scale by 2^aqFrac is exact in float64 for every float32 input,
// so a value landing exactly on k+0.5 lane quanta becomes k+1 (positive)
// or -(k+1) (negative) with no double-rounding — the same conversion the
// hand-optimized AVX2 kernel performs on the host when it prepares the
// broadcast lane, which is why this helper is shared by every integer
// AXPY variant. TestQuantizeScalarABoundaries pins the boundary cases.
func quantizeScalarA(a float32) int32 {
	scaled := float64(a) * float64(int64(1)<<aqFrac)
	if scaled >= 0 {
		scaled += 0.5
	} else {
		scaled -= 0.5
	}
	v := int64(scaled)
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int32(v)
}
