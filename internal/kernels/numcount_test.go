package kernels

import (
	"testing"

	"buckwild/internal/fixed"
)

// buildPair constructs two identical kernels over identical data, one
// uninstrumented and one with a live NumCounts, so the counting paths can
// be checked for bit-identical results.
func buildPair(t *testing.T, d, m Prec, v Variant, kind QuantKind) (plain, counted *Dense, c *fixed.NumCounts) {
	t.Helper()
	var qp, qc *Quantizer
	if m != F32 {
		qp = MustQuantizer(m, kind, 8, 42)
		qc = MustQuantizer(m, kind, 8, 42)
	}
	kp, err := NewDense(d, m, v, qp)
	if err != nil {
		t.Fatal(err)
	}
	kc, err := NewDense(d, m, v, qc)
	if err != nil {
		t.Fatal(err)
	}
	c = &fixed.NumCounts{}
	kc.Num = c
	if qc != nil {
		qc.Num = c
	}
	return kp, kc, c
}

// fillVecs builds matching dataset/model vector pairs at the two kernels'
// precisions from the same real values.
func fillVecs(d, m Prec, n int, seed uint32) (x, w1, w2 Vec) {
	xs := randFloats(n, seed, 1.5)
	ws := randFloats(n, seed+1, 1.5)
	x = NewVec(d, n)
	w1 = NewVec(m, n)
	w2 = NewVec(m, n)
	var qx, qw *Quantizer
	if d != F32 {
		qx = MustQuantizer(d, QBiased, 0, 1)
	}
	if m != F32 {
		qw = MustQuantizer(m, QBiased, 0, 1)
	}
	for i := 0; i < n; i++ {
		x.Set(i, xs[i], qx)
		w1.Set(i, ws[i], qw)
		w2.Set(i, ws[i], qw)
	}
	return x, w1, w2
}

func vecsEqual(m Prec, a, b Vec) bool {
	for i := 0; i < a.Len(); i++ {
		if m == F32 {
			if a.F32[i] != b.F32[i] {
				return false
			}
		} else if a.Raw(i) != b.Raw(i) {
			return false
		}
	}
	return true
}

// TestDenseCountingBitIdentical drives Dot and Axpy through the counting
// and uninstrumented paths with lockstep random state across precisions,
// variants and rounding kinds: the models must stay bit-identical (the
// zero-cost-when-off contract extends to exactness-when-on).
func TestDenseCountingBitIdentical(t *testing.T) {
	combos := []struct {
		d, m Prec
		v    Variant
		kind QuantKind
	}{
		{I8, I8, HandOpt, QShared},
		{I8, I8, HandOpt, QBiased},
		{I8, I8, Generic, QShared},
		{I16, I16, HandOpt, QShared},
		{I8, I16, HandOpt, QXorshift},
		{I4, I4, HandOpt, QShared},
		{F32, I8, HandOpt, QShared},
		{F32, I8, Generic, QBiased},
		{I8, F32, HandOpt, 0},
	}
	const n = 65 // odd, to cover the pair-loop tail
	for _, tc := range combos {
		kp, kc, c := buildPair(t, tc.d, tc.m, tc.v, tc.kind)
		x, wp, wc := fillVecs(tc.d, tc.m, n, 7)
		for step := 0; step < 50; step++ {
			dp := kp.Dot(x, wp)
			dc := kc.Dot(x, wc)
			if dp != dc {
				t.Fatalf("%v/%v %v %v: Dot diverged at step %d: %g != %g", tc.d, tc.m, tc.v, tc.kind, step, dp, dc)
			}
			a := float32(0.02) * float32(step%5-2)
			kp.Axpy(a, x, wp)
			kc.Axpy(a, x, wc)
			if !vecsEqual(tc.m, wp, wc) {
				t.Fatalf("%v/%v %v %v: model diverged after step %d", tc.d, tc.m, tc.v, tc.kind, step)
			}
		}
		_ = c
	}
}

// TestDenseCountingObservesSaturation drives an 8-bit model into its
// format bound and checks the expected sites light up.
func TestDenseCountingObservesSaturation(t *testing.T) {
	_, kc, c := buildPair(t, I8, I8, HandOpt, QBiased)
	const n = 32
	x, _, w := fillVecs(I8, I8, n, 9)
	for i := 0; i < n; i++ {
		x.Set(i, 1, MustQuantizer(I8, QBiased, 0, 1))
	}
	// Large negative updates must pin every weight at the bottom bound
	// and count SiteSaturate clamps.
	for step := 0; step < 40; step++ {
		kc.Axpy(-1.5, x, w)
	}
	if c.Sat[fixed.SiteSaturate] == 0 {
		t.Fatalf("no model-write saturations counted: %+v", c)
	}
	fm := I8.Fixed()
	for i := 0; i < n; i++ {
		if w.Raw(i) != fm.MinInt() {
			t.Fatalf("weight %d = %d, want pinned at %d", i, w.Raw(i), fm.MinInt())
		}
	}
	// A dot over pinned-low vectors must count the vpmaddubsw pair-add
	// site: (−128)·(−128)·2 = 32768 exceeds the int16 bound (the largest
	// positive pair, 127·127·2 = 32258, does not — the asymmetry of
	// two's complement is exactly what this site observes).
	kc.Dot(w, w)
	if c.Sat[fixed.SiteMulAdd8to16] == 0 {
		t.Fatalf("no pair-add saturations counted: %+v", c)
	}
}

// TestDenseCountingObservesUnderflow checks that updates too small for the
// model grid are counted as underflows by the integer pipeline.
func TestDenseCountingObservesUnderflow(t *testing.T) {
	_, kc, c := buildPair(t, I8, I8, HandOpt, QBiased)
	const n = 16
	x, _, w := fillVecs(I8, I8, n, 13)
	// A scalar below the a-lane quantum underflows the whole update.
	kc.Axpy(1e-6, x, w)
	if c.Underflows == 0 {
		t.Fatalf("scalar underflow not counted: %+v", c)
	}
	// A representable scalar whose per-element products still round to
	// zero counts per-element underflows.
	before := c.Underflows
	kc.Axpy(0.002, x, w)
	if c.Underflows <= before {
		t.Fatalf("per-element underflow not counted: %+v", c)
	}
}

// TestSparseCountingBitIdentical mirrors the dense lockstep check for the
// sparse kernel.
func TestSparseCountingBitIdentical(t *testing.T) {
	const n, nnz = 64, 9
	for _, kind := range []QuantKind{QBiased, QShared} {
		qp := MustQuantizer(I8, kind, 8, 5)
		qc := MustQuantizer(I8, kind, 8, 5)
		kp, err := NewSparse(I8, I8, HandOpt, qp, 16)
		if err != nil {
			t.Fatal(err)
		}
		kc, err := NewSparse(I8, I8, HandOpt, qc, 16)
		if err != nil {
			t.Fatal(err)
		}
		c := &fixed.NumCounts{}
		kc.Num = c
		qc.Num = c
		x, wp, wc := fillVecs(I8, I8, nnz, 21)
		idx := make([]int32, nnz)
		for i := range idx {
			idx[i] = int32(i * 7 % n)
		}
		wpFull, wcFull := NewVec(I8, n), NewVec(I8, n)
		for i := 0; i < nnz; i++ {
			wpFull.SetRaw(int(idx[i]), wp.Raw(i))
			wcFull.SetRaw(int(idx[i]), wc.Raw(i))
		}
		for step := 0; step < 50; step++ {
			dp := kp.Dot(idx, x, wpFull)
			dc := kc.Dot(idx, x, wcFull)
			if dp != dc {
				t.Fatalf("%v: sparse Dot diverged at step %d: %g != %g", kind, step, dp, dc)
			}
			a := float32(0.03) * float32(step%7-3)
			kp.Axpy(a, idx, x, wpFull)
			kc.Axpy(a, idx, x, wcFull)
			if !vecsEqual(I8, wpFull, wcFull) {
				t.Fatalf("%v: sparse model diverged after step %d", kind, step)
			}
		}
	}
}

// BenchmarkDenseAxpyNilCounts measures the uninstrumented AXPY hot path —
// the one nil check added by health counting must not move this number.
func BenchmarkDenseAxpyNilCounts(b *testing.B) {
	k := MustDense(I8, I8, HandOpt, MustQuantizer(I8, QShared, 8, 1))
	x, _, w := benchVecs(1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Axpy(0.01, x, w)
	}
}

// BenchmarkDenseAxpyWithCounts is the same AXPY with counting on, for
// eyeballing the instrumented path's cost (it is allowed to be slower).
func BenchmarkDenseAxpyWithCounts(b *testing.B) {
	q := MustQuantizer(I8, QShared, 8, 1)
	k := MustDense(I8, I8, HandOpt, q)
	c := &fixed.NumCounts{}
	k.Num = c
	q.Num = c
	x, _, w := benchVecs(1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Axpy(0.01, x, w)
	}
}

func benchVecs(n int) (x, w1, w2 Vec) {
	q := MustQuantizer(I8, QBiased, 0, 1)
	xs := randFloats(n, 3, 1)
	ws := randFloats(n, 4, 1)
	x, w1, w2 = NewVec(I8, n), NewVec(I8, n), NewVec(I8, n)
	for i := 0; i < n; i++ {
		x.Set(i, xs[i], q)
		w1.Set(i, ws[i], q)
		w2.Set(i, ws[i], q)
	}
	return
}
