package kernels

import (
	"fmt"
	"math"
	"testing"

	"buckwild/internal/fixed"
	"buckwild/internal/prng"
)

// setScalar forces (or restores) the scalar reference path and returns a
// restore function, so differential tests can run the same inputs down
// both pipelines.
func setScalar(t *testing.T, scalar bool) {
	t.Helper()
	old := swarOn
	swarOn = !scalar
	t.Cleanup(func() { swarOn = old })
}

// fillRawVec fills v with pseudorandom raw values spanning the full format
// range (including the extremes, which exercise every saturation path).
func fillRawVec(v Vec, seed uint64) {
	f := v.P.Fixed()
	g := prng.NewXorshift64(seed)
	span := uint64(int64(f.MaxInt()) - int64(f.MinInt()) + 1)
	for i := 0; i < v.Len(); i++ {
		v.SetRaw(i, int32(int64(f.MinInt())+int64(g.Uint64()%span)))
	}
}

var swarKinds = []QuantKind{QBiased, QMersenne, QXorshift, QShared, QHardware}

// swarLens includes ragged tails (n mod 8 != 0), sub-word lengths and
// word-aligned lengths.
var swarLens = []int{1, 3, 7, 8, 9, 13, 16, 31, 64, 100}

// TestDenseSwarMatchesScalar is the differential gate for the tentpole:
// over every D x M x Variant x rounding-kind combination and a spread of
// lengths, the SWAR word path must produce bit-identical dots and model
// words to the retained scalar reference, and a counted (NumCounts) run —
// which takes the scalar counting path — must match both bit-for-bit
// (PRNG lockstep parity).
func TestDenseSwarMatchesScalar(t *testing.T) {
	precs := []Prec{I8, I16, I4}
	seed := uint64(0xD1FF)
	for _, d := range precs {
		for _, m := range precs {
			for _, v := range []Variant{Generic, HandOpt, NewInsn} {
				if v == NewInsn && !(d == I8 || d == I4) {
					continue
				}
				for _, kind := range swarKinds {
					for _, n := range swarLens {
						seed++
						name := fmt.Sprintf("D%v/M%v/%v/%v/n%d", d, m, v, kind, n)
						runDensePair(t, name, d, m, v, kind, n, seed)
					}
				}
			}
		}
	}
}

// runDensePair runs dot+axpy+dot three ways (SWAR, scalar, counted) on
// identical inputs and fresh same-seeded quantizers, then compares bits.
func runDensePair(t *testing.T, name string, d, m Prec, v Variant, kind QuantKind, n int, seed uint64) {
	t.Helper()
	x := NewVec(d, n)
	w0 := NewVec(m, n)
	fillRawVec(x, seed*3+1)
	fillRawVec(w0, seed*5+2)
	const a1, a2 = 0.371, -1.044

	run := func(scalar, counted bool) (uint64, Vec) {
		setScalar(t, scalar)
		q := MustQuantizer(m, kind, 0, seed)
		k := MustDense(d, m, v, q)
		if counted {
			nc := &fixed.NumCounts{}
			q.Num = nc
			k.Num = nc
		}
		w := w0.Clone()
		d1 := k.Dot(x, w)
		k.Axpy(a1, x, w)
		k.Axpy(a2, x, w) // second call stresses lane-buffer carry-over
		d2 := k.Dot(x, w)
		return uint64(math.Float32bits(d1))<<32 | uint64(math.Float32bits(d2)), w
	}

	dotSwar, wSwar := run(false, false)
	dotRef, wRef := run(true, false)
	dotCnt, wCnt := run(false, true)

	if dotSwar != dotRef {
		t.Errorf("%s: dot bits differ: swar %#x scalar %#x", name, dotSwar, dotRef)
	}
	if dotCnt != dotRef {
		t.Errorf("%s: counted dot bits differ: counted %#x scalar %#x", name, dotCnt, dotRef)
	}
	for i := 0; i < n; i++ {
		if wSwar.Raw(i) != wRef.Raw(i) {
			t.Fatalf("%s: w[%d]: swar %d scalar %d", name, i, wSwar.Raw(i), wRef.Raw(i))
		}
		if wCnt.Raw(i) != wRef.Raw(i) {
			t.Fatalf("%s: w[%d]: counted %d scalar %d", name, i, wCnt.Raw(i), wRef.Raw(i))
		}
	}
}

// TestSparseSwarMatchesScalar is the sparse analogue, with duplicate
// indices in the block so the scatter ordering contract is exercised.
func TestSparseSwarMatchesScalar(t *testing.T) {
	precs := []Prec{I8, I16}
	seed := uint64(0x5EED5)
	const wlen = 37
	for _, d := range precs {
		for _, m := range precs {
			for _, kind := range swarKinds {
				for _, nnz := range swarLens {
					seed++
					name := fmt.Sprintf("D%v/M%v/%v/nnz%d", d, m, kind, nnz)

					idx := make([]int32, nnz)
					g := prng.NewXorshift64(seed)
					for j := range idx {
						idx[j] = int32(g.Uint64() % wlen)
					}
					if nnz >= 2 {
						idx[1] = idx[0] // force a duplicate inside a block
					}
					x := NewVec(d, nnz)
					w0 := NewVec(m, wlen)
					fillRawVec(x, seed*7+3)
					fillRawVec(w0, seed*11+4)

					run := func(scalar, counted bool) (uint64, Vec) {
						setScalar(t, scalar)
						q := MustQuantizer(m, kind, 0, seed)
						k := MustSparse(d, m, HandOpt, q, 16)
						if counted {
							nc := &fixed.NumCounts{}
							q.Num = nc
							k.Num = nc
						}
						w := w0.Clone()
						d1 := k.Dot(idx, x, w)
						k.Axpy(0.371, idx, x, w)
						k.Axpy(-0.58, idx, x, w)
						d2 := k.Dot(idx, x, w)
						return uint64(math.Float32bits(d1))<<32 | uint64(math.Float32bits(d2)), w
					}

					dotSwar, wSwar := run(false, false)
					dotRef, wRef := run(true, false)
					dotCnt, wCnt := run(false, true)
					if dotSwar != dotRef || dotCnt != dotRef {
						t.Errorf("%s: dot bits differ: swar %#x counted %#x scalar %#x", name, dotSwar, dotCnt, dotRef)
					}
					for i := 0; i < wlen; i++ {
						if wSwar.Raw(i) != wRef.Raw(i) || wCnt.Raw(i) != wRef.Raw(i) {
							t.Fatalf("%s: w[%d]: swar %d counted %d scalar %d", name, i, wSwar.Raw(i), wCnt.Raw(i), wRef.Raw(i))
						}
					}
				}
			}
		}
	}
}

// TestVecWordView pins the Vec backing-store contract: on little-endian
// hosts fixed-point vectors expose a uint64 word view aliasing the element
// slice, zero-padded past n, with lane i of word w holding element
// 8*w+i (int8) or 4*w+i (int16).
func TestVecWordView(t *testing.T) {
	if !swarLE {
		t.Skip("big-endian host: no word view")
	}
	v := NewVec(I8, 11)
	if len(v.w64) != 2 {
		t.Fatalf("w64 words = %d, want 2", len(v.w64))
	}
	v.SetRaw(0, -2)
	v.SetRaw(9, 3)
	if byte(v.w64[0]) != 0xFE {
		t.Errorf("lane 0 = %#x, want 0xfe", byte(v.w64[0]))
	}
	if byte(v.w64[1]>>8) != 3 {
		t.Errorf("word 1 lane 1 = %#x, want 3", byte(v.w64[1]>>8))
	}
	if v.w64[1]>>24 != 0 {
		t.Errorf("padding lanes not zero: %#x", v.w64[1])
	}

	h := NewVec(I16, 5)
	h.SetRaw(4, -1)
	if uint16(h.w64[1]) != 0xFFFF || h.w64[1]>>16 != 0 {
		t.Errorf("I16 word 1 = %#x, want 0xffff in lane 0 only", h.w64[1])
	}

	c := v.Clone()
	if c.w64 == nil {
		t.Error("Clone dropped the word view")
	}
	c.SetRaw(0, 7)
	if v.Raw(0) != -2 {
		t.Error("Clone aliases the original")
	}

	var lanes [8]int32
	v.SetRaw(8, -128)
	v.lanes8(1, &lanes)
	if lanes[0] != -128 || lanes[1] != 3 || lanes[2] != 0 {
		t.Errorf("lanes8 = %v", lanes[:3])
	}
}

// TestRoundRaw8Lockstep verifies the vector rounding entry point consumes
// the rounding-word stream exactly as scalar calls do, for any grouping —
// including misaligned interleavings of scalar and vector calls.
func TestRoundRaw8Lockstep(t *testing.T) {
	vals := make([]int64, 24)
	g := prng.NewXorshift64(99)
	for i := range vals {
		vals[i] = int64(int32(g.Uint64())) // wide, signed
	}
	const shift = 14
	for _, kind := range []QuantKind{QMersenne, QXorshift, QShared, QHardware} {
		ref := MustQuantizer(I8, kind, 0, 42)
		want := make([]int32, len(vals))
		for i, v := range vals {
			want[i] = ref.RoundRaw(v, shift)
		}

		vec := MustQuantizer(I8, kind, 0, 42)
		got := make([]int32, len(vals))
		// 3 scalar, one vector block (misaligned), 8-aligned block, tail.
		for i := 0; i < 3; i++ {
			got[i] = vec.RoundRaw(vals[i], shift)
		}
		var in [8]int64
		var out [8]int32
		copy(in[:], vals[3:11])
		vec.RoundRaw8(&in, shift, &out)
		copy(got[3:11], out[:])
		copy(in[:], vals[11:19])
		vec.RoundRaw8(&in, shift, &out)
		copy(got[11:19], out[:])
		for i := 19; i < len(vals); i++ {
			got[i] = vec.RoundRaw(vals[i], shift)
		}

		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: value %d: scalar %d, grouped %d", kind, i, want[i], got[i])
			}
		}
	}
}

// TestQuantizeBlockLockstep verifies blocked and elementwise quantization
// are interchangeable bit-for-bit.
func TestQuantizeBlockLockstep(t *testing.T) {
	xs := randFloats(37, 7, 1.5)
	for _, kind := range swarKinds {
		qa := MustQuantizer(I8, kind, 0, 9)
		qb := MustQuantizer(I8, kind, 0, 9)
		want := make([]int32, len(xs))
		for i, x := range xs {
			want[i] = qa.Quantize(x)
		}
		got := make([]int32, len(xs))
		qb.QuantizeBlock(xs[:16], got[:16])
		qb.QuantizeBlock(xs[16:], got[16:])
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: value %d: elementwise %d, blocked %d", kind, i, want[i], got[i])
			}
		}
	}
}

// TestQuantizeScalarABoundaries pins the tie rule of the broadcast-scalar
// conversion: round half away from zero, exactly, at every boundary the
// 16-bit a-lane can express (the conversion scales by 2^14 in float64,
// which is exact for every float32, so ties are decided with no double
// rounding — matching the hand-optimized AVX2 kernel's host-side lane
// preparation).
func TestQuantizeScalarABoundaries(t *testing.T) {
	const quantum = 1.0 / (1 << aqFrac)
	cases := []struct {
		a    float32
		want int32
	}{
		{0, 0},
		{quantum, 1},
		{-quantum, -1},
		{0.5 * quantum, 1},           // exact tie: away from zero
		{-0.5 * quantum, -1},         // exact negative tie: away from zero
		{1.5 * quantum, 2},           // tie above one quantum
		{-1.5 * quantum, -2},         //
		{0.25 * quantum, 0},          // below the tie: truncates to zero
		{-0.25 * quantum, 0},         //
		{1.25 * quantum, 1},          // above a boundary but below the next tie
		{32766.5 * quantum, 32767},   // last in-range tie rounds up to MaxInt
		{32767.5 * quantum, 32767},   // tie at 32768 saturates
		{2.0, 32767},                 // +2.0 overflows the lane and clamps
		{-2.0, -32768},               // -2.0 is exactly MinInt
		{-32768.5 * quantum, -32768}, // tie below MinInt saturates
		{3e5, 32767},
		{-3e5, -32768},
		{5e-8, 0}, // far below half a quantum
	}
	for _, c := range cases {
		if got := quantizeScalarA(c.a); got != c.want {
			t.Errorf("quantizeScalarA(%g) = %d, want %d", c.a, got, c.want)
		}
	}
}
