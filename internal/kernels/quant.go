package kernels

import (
	"fmt"

	"buckwild/internal/fixed"
	"buckwild/internal/prng"
)

// QuantKind identifies the randomness strategy behind a quantizer, which
// determines its hardware cost (Section 5.2, Figure 5b). The numerical
// behaviour of the three unbiased kinds differs only in which generator
// supplies the random bits and how often fresh bits are drawn.
type QuantKind int

const (
	// QBiased is nearest-neighbor rounding: no randomness, cheapest.
	QBiased QuantKind = iota
	// QMersenne is unbiased rounding with one MT19937 draw per rounded
	// number — the Boost-based baseline, dominated by PRNG cost.
	QMersenne
	// QXorshift is unbiased rounding with one (vectorized) XORSHIFT draw
	// per rounded number.
	QXorshift
	// QShared is unbiased rounding that reuses one vector of XORSHIFT
	// randomness across Period consecutive roundings — the strategy used
	// for the paper's headline throughput numbers.
	QShared
	// QHardware is unbiased rounding performed by the proposed QAXPY8
	// instruction's hardware PRNG (Section 6.1): zero software cost.
	QHardware
)

// String names the quantizer kind.
func (k QuantKind) String() string {
	switch k {
	case QBiased:
		return "biased"
	case QMersenne:
		return "unbiased-mt19937"
	case QXorshift:
		return "unbiased-xorshift"
	case QShared:
		return "unbiased-shared"
	case QHardware:
		return "unbiased-hardware"
	}
	return fmt.Sprintf("QuantKind(%d)", int(k))
}

// Unbiased reports whether the kind performs stochastic rounding.
func (k QuantKind) Unbiased() bool { return k != QBiased }

// Quantizer rounds real values into a fixed-point model format. It bundles
// the format, the rounding discipline, and the randomness source so kernels
// can stay agnostic of the strategy.
type Quantizer struct {
	Fmt  fixed.Format
	Kind QuantKind
	// Period is the randomness reuse period for QShared (ignored
	// otherwise). The paper refreshes once per AXPY vector: period 8.
	Period int
	// Num, when non-nil, receives numerical-health counts (quantization
	// clamps and the signed rounding-bias accumulator) for every value
	// this quantizer rounds. One nil check per call is the entire cost
	// when unset; see fixed.NumCounts for the ownership contract.
	Num *fixed.NumCounts
	src prng.Source
}

// NewQuantizer builds a quantizer for model precision m with the given
// strategy. seed seeds the internal generator for the unbiased kinds.
func NewQuantizer(m Prec, kind QuantKind, period int, seed uint64) (*Quantizer, error) {
	if m == F32 {
		return nil, fmt.Errorf("kernels: float model needs no quantizer")
	}
	q := &Quantizer{Fmt: m.Fixed(), Kind: kind, Period: period}
	switch kind {
	case QBiased:
	case QMersenne:
		q.src = prng.NewMT19937(uint32(seed) | 1)
	case QXorshift, QHardware:
		q.src = prng.NewBatch(seed)
	case QShared:
		if period < 1 {
			period = prng.BatchLanes
		}
		q.Period = period
		s, err := prng.NewShared(prng.NewBatch(seed), period)
		if err != nil {
			return nil, err
		}
		q.src = s
	default:
		return nil, fmt.Errorf("kernels: unknown quantizer kind %d", int(kind))
	}
	return q, nil
}

// MustQuantizer is NewQuantizer that panics on error, for tests and examples.
func MustQuantizer(m Prec, kind QuantKind, period int, seed uint64) *Quantizer {
	q, err := NewQuantizer(m, kind, period, seed)
	if err != nil {
		panic(err)
	}
	return q
}

// Mode returns the fixed-point rounding mode implied by the kind.
func (q *Quantizer) Mode() fixed.Rounding {
	if q.Kind.Unbiased() {
		return fixed.Unbiased
	}
	return fixed.Biased
}

// Quantize rounds a real value into the model format.
func (q *Quantizer) Quantize(x float32) int32 {
	if q.Num != nil {
		return q.Fmt.QuantizeC(x, q.Mode(), q.src, q.Num)
	}
	if q.Kind.Unbiased() {
		return q.Fmt.QuantizeUnbiased(x, q.src)
	}
	return q.Fmt.QuantizeBiased(x)
}

// RoundRaw requantizes a wide raw value down by shift bits (integer AXPY
// pipeline; see fixed.Format.RoundRaw).
func (q *Quantizer) RoundRaw(v int64, shift uint) int32 {
	if q.Num != nil {
		return q.Fmt.RoundRawC(v, shift, q.Mode(), q.src, q.Num)
	}
	return q.Fmt.RoundRaw(v, shift, q.Mode(), q.src)
}
