package kernels

import (
	"fmt"

	"buckwild/internal/fixed"
	"buckwild/internal/prng"
)

// QuantKind identifies the randomness strategy behind a quantizer, which
// determines its hardware cost (Section 5.2, Figure 5b). The numerical
// behaviour of the three unbiased kinds differs only in which generator
// supplies the random bits and how often fresh bits are drawn.
type QuantKind int

const (
	// QBiased is nearest-neighbor rounding: no randomness, cheapest.
	QBiased QuantKind = iota
	// QMersenne is unbiased rounding with one MT19937 draw per rounded
	// number — the Boost-based baseline, dominated by PRNG cost.
	QMersenne
	// QXorshift is unbiased rounding with one (vectorized) XORSHIFT draw
	// per rounded number.
	QXorshift
	// QShared is unbiased rounding that reuses one vector of XORSHIFT
	// randomness across Period consecutive roundings — the strategy used
	// for the paper's headline throughput numbers.
	QShared
	// QHardware is unbiased rounding performed by the proposed QAXPY8
	// instruction's hardware PRNG (Section 6.1): zero software cost.
	QHardware
)

// String names the quantizer kind.
func (k QuantKind) String() string {
	switch k {
	case QBiased:
		return "biased"
	case QMersenne:
		return "unbiased-mt19937"
	case QXorshift:
		return "unbiased-xorshift"
	case QShared:
		return "unbiased-shared"
	case QHardware:
		return "unbiased-hardware"
	}
	return fmt.Sprintf("QuantKind(%d)", int(k))
}

// Unbiased reports whether the kind performs stochastic rounding.
func (k QuantKind) Unbiased() bool { return k != QBiased }

// Quantizer rounds real values into a fixed-point model format. It bundles
// the format, the rounding discipline, and the randomness source so kernels
// can stay agnostic of the strategy.
type Quantizer struct {
	Fmt  fixed.Format
	Kind QuantKind
	// Period is the randomness reuse period for QShared (ignored
	// otherwise). The paper refreshes once per AXPY vector: period 8.
	Period int
	// Num, when non-nil, receives numerical-health counts (quantization
	// clamps and the signed rounding-bias accumulator) for every value
	// this quantizer rounds. One nil check per call is the entire cost
	// when unset; see fixed.NumCounts for the ownership contract.
	Num *fixed.NumCounts
	src prng.Source
	// src64 is non-nil for the batched kinds (QXorshift, QHardware),
	// whose rounding words come from the lane buffer below: one 64-bit
	// draw refills all eight lanes (the paper's §4 trick of stretching
	// few fresh random bits across a vector of roundings). QMersenne and
	// QShared keep one source draw per value — their defining cost/reuse
	// behaviour — merely staged through the same buffer-free path.
	src64 prng.Source64
	// rbuf holds buffered rounding words; rpos is the next unconsumed
	// lane. Scalar and vector rounding entry points pop lanes strictly in
	// order, so the stream a value sees never depends on how values were
	// grouped into calls — the lockstep invariant the SWAR kernels rely
	// on for bit-identity with the scalar reference.
	rbuf [prng.BatchLanes]uint32
	rpos int
}

// NewQuantizer builds a quantizer for model precision m with the given
// strategy. seed seeds the internal generator for the unbiased kinds.
func NewQuantizer(m Prec, kind QuantKind, period int, seed uint64) (*Quantizer, error) {
	if m == F32 {
		return nil, fmt.Errorf("kernels: float model needs no quantizer")
	}
	q := &Quantizer{Fmt: m.Fixed(), Kind: kind, Period: period, rpos: prng.BatchLanes}
	switch kind {
	case QBiased:
	case QMersenne:
		q.src = prng.NewMT19937(uint32(seed) | 1)
	case QXorshift, QHardware:
		b := prng.NewBatch(seed)
		q.src = b
		q.src64 = b
	case QShared:
		if period < 1 {
			period = prng.BatchLanes
		}
		q.Period = period
		s, err := prng.NewShared(prng.NewBatch(seed), period)
		if err != nil {
			return nil, err
		}
		q.src = s
	default:
		return nil, fmt.Errorf("kernels: unknown quantizer kind %d", int(kind))
	}
	return q, nil
}

// MustQuantizer is NewQuantizer that panics on error, for tests and examples.
func MustQuantizer(m Prec, kind QuantKind, period int, seed uint64) *Quantizer {
	q, err := NewQuantizer(m, kind, period, seed)
	if err != nil {
		panic(err)
	}
	return q
}

// Mode returns the fixed-point rounding mode implied by the kind.
func (q *Quantizer) Mode() fixed.Rounding {
	if q.Kind.Unbiased() {
		return fixed.Unbiased
	}
	return fixed.Biased
}

// refill reloads the rounding-lane buffer from one 64-bit generator draw:
// byte i of the draw is replicated across all four bytes of lane i, so any
// low-bit mask a rounding shift applies (6, 14 or 22 bits in the AXPY
// pipeline) still sees a uniform 256-level dither. Spending 8 fresh bits
// per rounding instead of 32 is the §4 hardware-efficiency trade; each
// individual rounding remains unbiased to within the dither granularity.
func (q *Quantizer) refill() {
	w := q.src64.Uint64()
	for i := range q.rbuf {
		q.rbuf[i] = uint32(byte(w>>(8*uint(i)))) * 0x01010101
	}
	q.rpos = 0
}

// rand returns the next rounding word: through the lane buffer for batched
// kinds, straight from the source otherwise.
func (q *Quantizer) rand() uint32 {
	if q.src64 == nil {
		return q.src.Uint32()
	}
	if q.rpos >= prng.BatchLanes {
		q.refill()
	}
	u := q.rbuf[q.rpos]
	q.rpos++
	return u
}

// Uint32 makes the quantizer its own fixed.RandSource, drawing through the
// rounding-lane buffer so every path — scalar or vector, counted or not —
// consumes the identical lane stream.
func (q *Quantizer) Uint32() uint32 { return q.rand() }

// Rand8 fills dst with the next eight rounding words — exactly the words
// eight successive scalar roundings would consume.
func (q *Quantizer) Rand8(dst *[prng.BatchLanes]uint32) {
	if q.src64 != nil {
		if q.rpos >= prng.BatchLanes {
			q.refill()
		}
		if q.rpos == 0 {
			*dst = q.rbuf
			q.rpos = prng.BatchLanes
			return
		}
	}
	for i := range dst {
		dst[i] = q.rand()
	}
}

// Quantize rounds a real value into the model format.
func (q *Quantizer) Quantize(x float32) int32 {
	if q.Num != nil {
		return q.Fmt.QuantizeC(x, q.Mode(), q, q.Num)
	}
	if q.Kind.Unbiased() {
		return q.Fmt.QuantizeUnbiased(x, q)
	}
	return q.Fmt.QuantizeBiased(x)
}

// QuantizeBlock quantizes a block of reals into raw model values,
// consuming rounding randomness in the same lane order as per-value
// Quantize calls (so blocked and elementwise quantization are
// interchangeable bit-for-bit). Sized calls of 16 values — one 64-byte
// cache line of float32 gradient — cost two 64-bit draws on the batched
// kinds instead of sixteen generator calls.
func (q *Quantizer) QuantizeBlock(xs []float32, out []int32) {
	if len(out) != len(xs) {
		panic(fmt.Sprintf("kernels: QuantizeBlock length mismatch %d != %d", len(out), len(xs)))
	}
	for i, x := range xs {
		out[i] = q.Quantize(x)
	}
}

// RoundRaw requantizes a wide raw value down by shift bits (integer AXPY
// pipeline; see fixed.Format.RoundRaw).
func (q *Quantizer) RoundRaw(v int64, shift uint) int32 {
	var u uint32
	if q.Kind.Unbiased() && shift != 0 {
		u = q.rand()
	}
	if q.Num != nil {
		return q.Fmt.RoundRawUC(v, shift, q.Mode(), u, q.Num)
	}
	return q.Fmt.RoundRawU(v, shift, q.Mode(), u)
}

// RoundRaw8 rounds eight wide raw values by shift in one call — the vector
// half of the integer AXPY pipeline. It consumes exactly the rounding
// words eight scalar RoundRaw calls would, in lane order, so the SWAR and
// scalar kernels stay bit-identical for any grouping of elements.
func (q *Quantizer) RoundRaw8(v *[8]int64, shift uint, out *[8]int32) {
	mode := q.Mode()
	if mode == fixed.Unbiased && shift != 0 {
		var u [prng.BatchLanes]uint32
		q.Rand8(&u)
		if q.Num != nil {
			for i := range v {
				out[i] = q.Fmt.RoundRawUC(v[i], shift, mode, u[i], q.Num)
			}
			return
		}
		for i := range v {
			out[i] = q.Fmt.RoundRawU(v[i], shift, mode, u[i])
		}
		return
	}
	if q.Num != nil {
		for i := range v {
			out[i] = q.Fmt.RoundRawUC(v[i], shift, mode, 0, q.Num)
		}
		return
	}
	for i := range v {
		out[i] = q.Fmt.RoundRawU(v[i], shift, mode, 0)
	}
}
