// Package kernels implements the dot-product and AXPY kernels that dominate
// the cost of an SGD step (Section 2 of the paper), for every combination of
// dataset and model precision in the DMGC space.
//
// Each kernel exists in two variants mirroring Section 5.1:
//
//   - Generic: the computation a compiler produces from straightforward
//     C++ — every low-precision input is widened to 32-bit float, the
//     arithmetic happens in float, and results are quantized elementwise.
//   - HandOpt: the computation the hand-written AVX2 code performs — 8- and
//     16-bit values are multiplied with fused widening multiply-adds
//     (vpmaddubsw / vpmaddwd semantics) and model writes go through an
//     integer rounding pipeline.
//
// The numerical semantics of both variants are implemented bit-accurately in
// portable Go. Their hardware cost is captured separately as simd.Stream
// instruction streams (see stream.go), which the machine model converts to
// cycles; this is how the reproduction recovers the paper's throughput
// results without real SIMD intrinsics.
package kernels

import (
	"fmt"
	"unsafe"

	"buckwild/internal/fixed"
)

// swarLE reports whether the host stores uint64 words little-endian, so
// that lane i of a packed word is element 8*w+i (int8) or 4*w+i (int16) of
// the element view — the layout the SWAR kernels assume. On big-endian
// hosts vectors simply carry no word view and every kernel takes the
// scalar reference path.
var swarLE = func() bool {
	x := uint64(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// swarOn is the kill switch for the SWAR fast paths, true in production.
// The differential tests flip it to force the scalar reference loops over
// identical inputs and compare bit-for-bit.
var swarOn = true

// Prec is a storage precision for dataset or model numbers.
type Prec int

const (
	// F32 is IEEE 32-bit floating point (the full-precision baseline).
	F32 Prec = iota
	// I16 is 16-bit fixed point (fixed.Q16).
	I16
	// I8 is 8-bit fixed point (fixed.Q8).
	I8
	// I4 is 4-bit fixed point (fixed.Q4), stored one value per int8.
	// Current CPUs have no 4-bit arithmetic; this precision exists for
	// the Section 6.1 what-if ISA study.
	I4
)

// Bits returns the storage width of the precision in bits.
func (p Prec) Bits() uint {
	switch p {
	case F32:
		return 32
	case I16:
		return 16
	case I8:
		return 8
	case I4:
		return 4
	}
	panic(fmt.Sprintf("kernels: invalid Prec(%d)", int(p)))
}

// Bytes returns the in-memory storage size of one element in bytes. Note
// that I4 is modelled as packed (half a byte) for memory-traffic purposes
// even though the Go representation stores one nibble per int8.
func (p Prec) Bytes() float64 {
	return float64(p.Bits()) / 8
}

// Fixed returns the fixed-point format backing an integer precision.
// It panics for F32, which has no fixed-point format.
func (p Prec) Fixed() fixed.Format {
	switch p {
	case I16:
		return fixed.Q16
	case I8:
		return fixed.Q8
	case I4:
		return fixed.Q4
	}
	panic(fmt.Sprintf("kernels: Prec %v has no fixed-point format", p))
}

// IsFloat reports whether the precision is floating point.
func (p Prec) IsFloat() bool { return p == F32 }

// String names the precision as it appears in DMGC signatures.
func (p Prec) String() string {
	switch p {
	case F32:
		return "32f"
	case I16:
		return "16"
	case I8:
		return "8"
	case I4:
		return "4"
	}
	return fmt.Sprintf("Prec(%d)", int(p))
}

// ParsePrec parses a DMGC-style precision token ("32f", "16", "8", "4").
func ParsePrec(s string) (Prec, error) {
	switch s {
	case "32f", "32":
		return F32, nil
	case "16":
		return I16, nil
	case "8":
		return I8, nil
	case "4":
		return I4, nil
	}
	return 0, fmt.Errorf("kernels: unknown precision %q", s)
}

// Vec is a vector stored at one of the supported precisions. Exactly one of
// the backing slices is non-nil, selected by P. I4 values live in I8 with
// each element restricted to [-8, 7].
//
// For the fixed-point precisions NewVec allocates the storage as a
// []uint64 word array and exposes the element slice as an unsafe view into
// it, so the SWAR kernels can load and store eight int8 (or four int16)
// lanes with one word access. w64 is that word array — ceil(n*size/8)
// words, zero-padded past n — or nil when the vector was built from a bare
// element slice or the host is big-endian; kernels treat nil as "scalar
// path only". The element slices and w64 alias the same memory, so scalar
// tail code and word code interleave safely.
type Vec struct {
	P   Prec
	F32 []float32
	I16 []int16
	I8  []int8
	w64 []uint64
}

// NewVec allocates a zero vector of length n at precision p.
func NewVec(p Prec, n int) Vec {
	v := Vec{P: p}
	switch p {
	case F32:
		v.F32 = make([]float32, n)
	case I16:
		if swarLE && n > 0 {
			words := (n + 3) / 4
			v.w64 = make([]uint64, words)
			v.I16 = unsafe.Slice((*int16)(unsafe.Pointer(&v.w64[0])), words*4)[:n]
		} else {
			v.I16 = make([]int16, n)
		}
	case I8, I4:
		if swarLE && n > 0 {
			words := (n + 7) / 8
			v.w64 = make([]uint64, words)
			v.I8 = unsafe.Slice((*int8)(unsafe.Pointer(&v.w64[0])), words*8)[:n]
		} else {
			v.I8 = make([]int8, n)
		}
	default:
		panic(fmt.Sprintf("kernels: NewVec: invalid Prec(%d)", int(p)))
	}
	return v
}

// lanes8 loads the raw values of elements 8*blk .. 8*blk+7 into dst with
// word accesses (one uint64 load for I8/I4, two for I16). The caller
// guarantees the vector has a word view and the block is fully in range.
func (v Vec) lanes8(blk int, dst *[8]int32) {
	if v.P == I16 {
		w0 := v.w64[2*blk]
		w1 := v.w64[2*blk+1]
		dst[0] = int32(int16(w0))
		dst[1] = int32(int16(w0 >> 16))
		dst[2] = int32(int16(w0 >> 32))
		dst[3] = int32(int16(w0 >> 48))
		dst[4] = int32(int16(w1))
		dst[5] = int32(int16(w1 >> 16))
		dst[6] = int32(int16(w1 >> 32))
		dst[7] = int32(int16(w1 >> 48))
		return
	}
	w := v.w64[blk]
	dst[0] = int32(int8(w))
	dst[1] = int32(int8(w >> 8))
	dst[2] = int32(int8(w >> 16))
	dst[3] = int32(int8(w >> 24))
	dst[4] = int32(int8(w >> 32))
	dst[5] = int32(int8(w >> 40))
	dst[6] = int32(int8(w >> 48))
	dst[7] = int32(int8(w >> 56))
}

// Len returns the vector length.
func (v Vec) Len() int {
	switch v.P {
	case F32:
		return len(v.F32)
	case I16:
		return len(v.I16)
	default:
		return len(v.I8)
	}
}

// At returns the real (dequantized) value at index i.
func (v Vec) At(i int) float32 {
	switch v.P {
	case F32:
		return v.F32[i]
	case I16:
		return fixed.Q16.Dequantize(int32(v.I16[i]))
	case I8:
		return fixed.Q8.Dequantize(int32(v.I8[i]))
	default: // I4
		return fixed.Q4.Dequantize(int32(v.I8[i]))
	}
}

// SetRaw stores a raw fixed-point value (or bit-cast float via SetFloat for
// F32 vectors). It panics if called on a float vector.
func (v Vec) SetRaw(i int, raw int32) {
	switch v.P {
	case I16:
		v.I16[i] = int16(raw)
	case I8, I4:
		v.I8[i] = int8(raw)
	default:
		panic("kernels: SetRaw on float vector")
	}
}

// Raw returns the raw fixed-point value at index i. It panics for F32.
func (v Vec) Raw(i int) int32 {
	switch v.P {
	case I16:
		return int32(v.I16[i])
	case I8, I4:
		return int32(v.I8[i])
	default:
		panic("kernels: Raw on float vector")
	}
}

// Set quantizes and stores the real value x at index i using q. For F32
// vectors the value is stored directly and q may be nil.
func (v Vec) Set(i int, x float32, q *Quantizer) {
	if v.P == F32 {
		v.F32[i] = x
		return
	}
	v.SetRaw(i, q.Quantize(x))
}

// Fill quantizes the real values xs into v using q (nil allowed for F32).
func (v Vec) Fill(xs []float32, q *Quantizer) {
	if len(xs) != v.Len() {
		panic(fmt.Sprintf("kernels: Fill length mismatch: %d != %d", len(xs), v.Len()))
	}
	for i, x := range xs {
		v.Set(i, x, q)
	}
}

// Floats dequantizes the whole vector into a fresh []float32.
func (v Vec) Floats() []float32 {
	out := make([]float32, v.Len())
	for i := range out {
		out[i] = v.At(i)
	}
	return out
}

// Clone returns a deep copy of the vector.
func (v Vec) Clone() Vec {
	c := NewVec(v.P, v.Len())
	switch v.P {
	case F32:
		copy(c.F32, v.F32)
	case I16:
		copy(c.I16, v.I16)
	default:
		copy(c.I8, v.I8)
	}
	return c
}

// Zero resets all elements to zero.
func (v Vec) Zero() {
	switch v.P {
	case F32:
		for i := range v.F32 {
			v.F32[i] = 0
		}
	case I16:
		for i := range v.I16 {
			v.I16[i] = 0
		}
	default:
		for i := range v.I8 {
			v.I8[i] = 0
		}
	}
}
