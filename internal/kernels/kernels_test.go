package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"buckwild/internal/prng"
	"buckwild/internal/simd"
)

func randFloats(n int, seed uint32, scale float32) []float32 {
	g := prng.NewXorshift32(seed)
	out := make([]float32, n)
	for i := range out {
		out[i] = (prng.Float32(g)*2 - 1) * scale
	}
	return out
}

func refDot(x, w []float32) float64 {
	var s float64
	for i := range x {
		s += float64(x[i]) * float64(w[i])
	}
	return s
}

func TestPrecBasics(t *testing.T) {
	if F32.Bits() != 32 || I16.Bits() != 16 || I8.Bits() != 8 || I4.Bits() != 4 {
		t.Error("Bits wrong")
	}
	if I4.Bytes() != 0.5 {
		t.Errorf("I4.Bytes = %v, want 0.5", I4.Bytes())
	}
	if !F32.IsFloat() || I8.IsFloat() {
		t.Error("IsFloat wrong")
	}
	for _, s := range []string{"32f", "16", "8", "4"} {
		p, err := ParsePrec(s)
		if err != nil {
			t.Fatalf("ParsePrec(%q): %v", s, err)
		}
		if p.String() != s {
			t.Errorf("round-trip %q -> %v", s, p)
		}
	}
	if _, err := ParsePrec("12"); err == nil {
		t.Error("ParsePrec(12) should fail")
	}
}

func TestVecBasics(t *testing.T) {
	for _, p := range []Prec{F32, I16, I8, I4} {
		v := NewVec(p, 10)
		if v.Len() != 10 {
			t.Errorf("%v: Len = %d", p, v.Len())
		}
		var q *Quantizer
		if p != F32 {
			q = MustQuantizer(p, QBiased, 0, 1)
		}
		v.Set(3, 0.5, q)
		if got := v.At(3); math.Abs(float64(got-0.5)) > 0.26 { // I4 quantum is 0.25
			t.Errorf("%v: At(3) = %v, want ~0.5", p, got)
		}
		c := v.Clone()
		c.Zero()
		if c.At(3) != 0 {
			t.Errorf("%v: Zero failed", p)
		}
		if v.At(3) == 0 {
			t.Errorf("%v: Clone aliases original", p)
		}
	}
}

func TestVecFillFloats(t *testing.T) {
	xs := []float32{0.25, -0.5, 1}
	v := NewVec(I8, 3)
	q := MustQuantizer(I8, QBiased, 0, 1)
	v.Fill(xs, q)
	got := v.Floats()
	for i := range xs {
		if got[i] != xs[i] { // all exactly representable in Q8.6
			t.Errorf("Floats[%d] = %v, want %v", i, got[i], xs[i])
		}
	}
}

// quantizeVec builds a Vec of precision p holding the quantized xs.
func quantizeVec(p Prec, xs []float32, seed uint64) Vec {
	v := NewVec(p, len(xs))
	var q *Quantizer
	if p != F32 {
		q = MustQuantizer(p, QBiased, 0, seed)
	}
	v.Fill(xs, q)
	return v
}

func dotTolerance(d, m Prec, n int) float64 {
	// Quantizing each operand perturbs each product by at most
	// ~(qx*|w| + qw*|x|); with |x|,|w| <= 1 a conservative elementwise
	// bound is qx + qw + qx*qw, summed over n elements, plus slack for
	// the float accumulation.
	tol := 0.0
	if !d.IsFloat() {
		tol += float64(d.Fixed().Quantum())
	}
	if !m.IsFloat() {
		tol += float64(m.Fixed().Quantum())
	}
	return tol*float64(n)*0.6 + 1e-3*float64(n)/1000 + 1e-6
}

func TestDenseDotAllCombos(t *testing.T) {
	const n = 513 // odd length exercises the pair tail
	xs := randFloats(n, 1, 1)
	ws := randFloats(n, 2, 1)
	ref := refDot(xs, ws)
	combos := []struct{ d, m Prec }{
		{F32, F32}, {I8, F32}, {I16, F32}, {F32, I8}, {F32, I16},
		{I16, I16}, {I8, I16}, {I16, I8}, {I8, I8}, {I4, I4},
	}
	for _, c := range combos {
		x := quantizeVec(c.d, xs, 3)
		w := quantizeVec(c.m, ws, 4)
		for _, v := range []Variant{Generic, HandOpt} {
			var q *Quantizer
			if c.m != F32 {
				q = MustQuantizer(c.m, QBiased, 0, 5)
			}
			k := MustDense(c.d, c.m, v, q)
			got := float64(k.Dot(x, w))
			tol := dotTolerance(c.d, c.m, n)
			if c.d == I4 { // 4-bit quantization error is large
				tol *= 1.5
			}
			if math.Abs(got-ref) > tol {
				t.Errorf("D%vM%v %v: dot = %v, ref = %v (tol %v)", c.d, c.m, v, got, ref, tol)
			}
		}
	}
}

func TestHandOptVsGenericDotAgree(t *testing.T) {
	// On identical quantized inputs the two variants differ only by
	// accumulation order/width; results must be very close.
	const n = 1000
	xs := randFloats(n, 7, 1)
	ws := randFloats(n, 8, 1)
	for _, c := range []struct{ d, m Prec }{{I8, I8}, {I16, I16}, {I8, I16}} {
		x := quantizeVec(c.d, xs, 1)
		w := quantizeVec(c.m, ws, 2)
		q := MustQuantizer(c.m, QBiased, 0, 3)
		g := MustDense(c.d, c.m, Generic, q).Dot(x, w)
		h := MustDense(c.d, c.m, HandOpt, q).Dot(x, w)
		if math.Abs(float64(g-h)) > 0.05 {
			t.Errorf("D%vM%v: generic %v vs handopt %v", c.d, c.m, g, h)
		}
	}
}

func TestDotSaturationPairPath(t *testing.T) {
	// All-minimum 8-bit inputs saturate the pair accumulator, exactly
	// as vpmaddubsw would: each pair contributes sat16((-128)^2 * 2) =
	// 32767 instead of 32768.
	n := 4
	x := NewVec(I8, n)
	w := NewVec(I8, n)
	for i := 0; i < n; i++ {
		x.SetRaw(i, -128)
		w.SetRaw(i, -128)
	}
	q := MustQuantizer(I8, QBiased, 0, 1)
	k := MustDense(I8, I8, HandOpt, q)
	got := k.Dot(x, w)
	want := float32(2*32767) / (64 * 64)
	if math.Abs(float64(got-want)) > 1e-4 {
		t.Errorf("saturating dot = %v, want %v", got, want)
	}
	// Sanity: 127*127 pairs do NOT saturate (2*16129 = 32258 < 32767).
	for i := 0; i < n; i++ {
		x.SetRaw(i, 127)
		w.SetRaw(i, 127)
	}
	got = k.Dot(x, w)
	want = float32(4*127*127) / (64 * 64)
	if math.Abs(float64(got-want)) > 1e-4 {
		t.Errorf("non-saturating dot = %v, want %v", got, want)
	}
}

func TestDenseAxpyFloatModel(t *testing.T) {
	n := 64
	xs := randFloats(n, 11, 1)
	ws := randFloats(n, 12, 1)
	for _, v := range []Variant{Generic, HandOpt} {
		x := quantizeVec(F32, xs, 0)
		w := quantizeVec(F32, ws, 0)
		k := MustDense(F32, F32, v, nil)
		k.Axpy(0.5, x, w)
		for i := 0; i < n; i++ {
			want := ws[i] + 0.5*xs[i]
			if math.Abs(float64(w.F32[i]-want)) > 1e-6 {
				t.Fatalf("%v: axpy[%d] = %v, want %v", v, i, w.F32[i], want)
			}
		}
	}
}

func TestDenseAxpyIntModelGeneric(t *testing.T) {
	// With exactly representable values and biased rounding, the generic
	// AXPY result is the quantized sum.
	x := quantizeVec(I8, []float32{0.5, -0.25, 1}, 0)
	w := quantizeVec(I8, []float32{0.25, 0.25, -1}, 0)
	q := MustQuantizer(I8, QBiased, 0, 1)
	k := MustDense(I8, I8, Generic, q)
	k.Axpy(0.5, x, w) // w + 0.5x = {0.5, 0.125, -0.5}
	want := []float32{0.5, 0.125, -0.5}
	for i := range want {
		if got := w.At(i); got != want[i] {
			t.Errorf("axpy[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestDenseAxpyIntPipelineUnbiasedMean(t *testing.T) {
	// The integer AXPY pipeline must be unbiased: across many trials of
	// updating a zero model with a tiny step, the mean update equals
	// a*x even though each individual update is a whole quantum.
	const trials = 40000
	a := float32(0.001)
	xval := float32(0.75)
	q := MustQuantizer(I8, QXorshift, 0, 99)
	k := MustDense(I8, I8, HandOpt, q)
	x := quantizeVec(I8, []float32{xval}, 0)
	var sum float64
	for i := 0; i < trials; i++ {
		w := NewVec(I8, 1)
		k.Axpy(a, x, w)
		sum += float64(w.At(0))
	}
	mean := sum / trials
	want := float64(a * xval)
	if math.Abs(mean-want) > float64(a*xval)*0.1+1e-5 {
		t.Errorf("mean update = %v, want ~%v", mean, want)
	}
}

func TestDenseAxpyBiasedKillsSmallUpdates(t *testing.T) {
	// Biased rounding drops sub-quantum updates entirely -- the
	// statistical-efficiency failure mode of Figure 5a.
	a := float32(0.001)
	q := MustQuantizer(I8, QBiased, 0, 1)
	k := MustDense(I8, I8, HandOpt, q)
	x := quantizeVec(I8, []float32{0.75}, 0)
	w := NewVec(I8, 1)
	for i := 0; i < 1000; i++ {
		k.Axpy(a, x, w)
	}
	if w.At(0) != 0 {
		t.Errorf("biased sub-quantum updates moved the model to %v", w.At(0))
	}
}

func TestAxpyScalarSaturation(t *testing.T) {
	// A huge step scalar saturates the broadcast lane instead of
	// overflowing.
	if quantizeScalarA(10) != 32767 {
		t.Error("positive scalar should saturate")
	}
	if quantizeScalarA(-10) != -32768 {
		t.Error("negative scalar should saturate")
	}
	if quantizeScalarA(0) != 0 {
		t.Error("zero scalar")
	}
}

func TestModelSaturationOnRepeatedUpdates(t *testing.T) {
	// Repeated large updates pin the model at the format bound.
	q := MustQuantizer(I8, QBiased, 0, 1)
	k := MustDense(I8, I8, HandOpt, q)
	x := quantizeVec(I8, []float32{1}, 0)
	w := NewVec(I8, 1)
	for i := 0; i < 100; i++ {
		k.Axpy(1, x, w)
	}
	if w.Raw(0) != 127 {
		t.Errorf("model raw = %d, want saturation at 127", w.Raw(0))
	}
}

func TestNewDenseErrors(t *testing.T) {
	if _, err := NewDense(I8, I8, Generic, nil); err == nil {
		t.Error("int model without quantizer should fail")
	}
	q := MustQuantizer(I8, QBiased, 0, 1)
	if _, err := NewDense(I8, F32, Generic, q); err == nil {
		t.Error("float model with quantizer should fail")
	}
	if _, err := NewDense(I16, I16, NewInsn, MustQuantizer(I16, QBiased, 0, 1)); err == nil {
		t.Error("NewInsn with 16-bit dataset should fail")
	}
}

func TestSparseMatchesDense(t *testing.T) {
	// A sparse vector with all positions present must match the dense
	// kernel exactly (same pipelines).
	const n = 256
	xs := randFloats(n, 21, 1)
	ws := randFloats(n, 22, 1)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	for _, c := range []struct{ d, m Prec }{{I8, I8}, {I16, I16}, {F32, F32}} {
		var qd, qs *Quantizer
		if c.m != F32 {
			qd = MustQuantizer(c.m, QBiased, 0, 5)
			qs = MustQuantizer(c.m, QBiased, 0, 5)
		}
		x := quantizeVec(c.d, xs, 1)
		wDense := quantizeVec(c.m, ws, 2)
		wSparse := wDense.Clone()
		dk := MustDense(c.d, c.m, HandOpt, qd)
		sk := MustSparse(c.d, c.m, HandOpt, qs, 32)
		dDot := dk.Dot(x, wDense)
		sDot := sk.Dot(idx, x, wSparse)
		// Pipelines differ (paired vs individual accumulation), so
		// allow tiny slack for the 8-bit saturating pair path.
		if math.Abs(float64(dDot-sDot)) > 0.01 {
			t.Errorf("D%vM%v: dense dot %v vs sparse dot %v", c.d, c.m, dDot, sDot)
		}
		dk.Axpy(0.125, x, wDense)
		sk.Axpy(0.125, idx, x, wSparse)
		for i := 0; i < n; i++ {
			if dv, sv := wDense.At(i), wSparse.At(i); dv != sv {
				t.Fatalf("D%vM%v: axpy diverges at %d: %v vs %v", c.d, c.m, i, dv, sv)
			}
		}
	}
}

func TestSparseSubsetOnlyTouchesIndexed(t *testing.T) {
	xs := []float32{0.5, -0.5}
	idx := []int32{3, 7}
	x := quantizeVec(I8, xs, 1)
	w := NewVec(I8, 10)
	q := MustQuantizer(I8, QBiased, 0, 1)
	k := MustSparse(I8, I8, Generic, q, 16)
	k.Axpy(1, idx, x, w)
	for i := 0; i < 10; i++ {
		want := float32(0)
		switch i {
		case 3:
			want = 0.5
		case 7:
			want = -0.5
		}
		if got := w.At(i); got != want {
			t.Errorf("w[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestNewSparseErrors(t *testing.T) {
	if _, err := NewSparse(I8, I8, Generic, nil, 32); err == nil {
		t.Error("int model without quantizer should fail")
	}
	q := MustQuantizer(I8, QBiased, 0, 1)
	if _, err := NewSparse(I8, I8, Generic, q, 12); err == nil {
		t.Error("bad index precision should fail")
	}
}

func TestQuantizerKinds(t *testing.T) {
	for _, kind := range []QuantKind{QBiased, QMersenne, QXorshift, QShared, QHardware} {
		q, err := NewQuantizer(I8, kind, 8, 42)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		// Exactly representable values survive all kinds.
		if got := q.Quantize(0.5); got != 32 {
			t.Errorf("%v: Quantize(0.5) = %d, want 32", kind, got)
		}
		if kind.Unbiased() == (kind == QBiased) {
			t.Errorf("%v: Unbiased() inconsistent", kind)
		}
	}
	if _, err := NewQuantizer(F32, QBiased, 0, 1); err == nil {
		t.Error("quantizer for float model should fail")
	}
}

func TestQuantizerSharedIsUnbiased(t *testing.T) {
	q := MustQuantizer(I8, QShared, 8, 7)
	const n = 100000
	var sum int64
	for i := 0; i < n; i++ {
		sum += int64(q.Quantize(2.5 / 64))
	}
	mean := float64(sum) / n
	if math.Abs(mean-2.5) > 0.05 {
		t.Errorf("shared-randomness mean = %v, want ~2.5", mean)
	}
}

func TestPropertyAxpyNeverEscapesFormat(t *testing.T) {
	q := MustQuantizer(I8, QXorshift, 0, 3)
	k := MustDense(I8, I8, HandOpt, q)
	check := func(a float32, raws []int8) bool {
		if len(raws) == 0 || a != a || math.Abs(float64(a)) > 100 {
			return true
		}
		x := NewVec(I8, len(raws))
		w := NewVec(I8, len(raws))
		for i, r := range raws {
			x.SetRaw(i, int32(r))
			w.SetRaw(i, int32(-r))
		}
		k.Axpy(a, x, w)
		for i := range raws {
			r := w.Raw(i)
			if r > 127 || r < -128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVariantString(t *testing.T) {
	if Generic.String() != "generic" || HandOpt.String() != "handopt" || NewInsn.String() != "newinsn" {
		t.Error("Variant.String wrong")
	}
	if QShared.String() != "unbiased-shared" {
		t.Error("QuantKind.String wrong")
	}
}

func TestPropertyDotBilinear(t *testing.T) {
	// Property: for float kernels the dot is bilinear; for quantized
	// kernels it is within quantization error of the float dot (already
	// covered above). Here: scaling w by -1 negates the dot exactly for
	// the integer pipeline (symmetric grid apart from the -128 edge).
	q := MustQuantizer(I8, QBiased, 0, 3)
	k := MustDense(I8, I8, HandOpt, q)
	check := func(raws []int8) bool {
		if len(raws) == 0 {
			return true
		}
		n := len(raws)
		x := NewVec(I8, n)
		w := NewVec(I8, n)
		wn := NewVec(I8, n)
		for i, r := range raws {
			if r == -128 {
				r = -127 // keep the grid symmetric
			}
			x.SetRaw(i, int32(r))
			w.SetRaw(i, int32(r/2+3))
			wn.SetRaw(i, -int32(r/2+3))
		}
		d := k.Dot(x, w)
		dn := k.Dot(x, wn)
		return math.Abs(float64(d+dn)) < 1e-4
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyStreamsNonNegativeAndMonotone(t *testing.T) {
	// Property: instruction streams grow monotonically with n for every
	// variant/precision combo.
	hwm := simd.Haswell()
	combos := []struct {
		d, m Prec
		v    Variant
	}{
		{I8, I8, Generic}, {I8, I8, HandOpt}, {I16, I16, HandOpt},
		{F32, F32, Generic}, {I8, I16, HandOpt}, {F32, I8, HandOpt},
	}
	for _, c := range combos {
		var q *Quantizer
		if c.m != F32 {
			q = MustQuantizer(c.m, QShared, 8, 1)
		}
		k := MustDense(c.d, c.m, c.v, q)
		prev := 0.0
		for _, n := range []int{32, 256, 1024, 8192} {
			cy := k.StepStream(n).Cycles(hwm)
			if cy <= prev {
				t.Errorf("D%vM%v %v: cycles not monotone at n=%d", c.d, c.m, c.v, n)
			}
			prev = cy
		}
	}
}

func TestI4StorageRange(t *testing.T) {
	// I4 vectors must never hold raw values outside [-8, 7] when set
	// through a quantizer.
	q := MustQuantizer(I4, QXorshift, 0, 5)
	v := NewVec(I4, 64)
	g := prng.NewXorshift32(9)
	for i := 0; i < 64; i++ {
		v.Set(i, prng.Float32(g)*8-4, q)
	}
	for i := 0; i < 64; i++ {
		if r := v.Raw(i); r < -8 || r > 7 {
			t.Fatalf("I4 raw value %d out of range", r)
		}
	}
}
