package kernels

import (
	"fmt"

	"buckwild/internal/fixed"
)

// Sparse computes dot and AXPY between a sparse dataset vector, given as
// parallel index/value arrays, and a dense model vector. Sparse kernels are
// gather/scatter bound: their memory accesses into the model are random, so
// SIMD helps far less than in the dense case (the paper's Table 2 shows
// sparse throughput nearly flat across precisions, and Figure 4b shows
// hand-optimization can even hurt for small sparse models).
//
// The index precision (Section 3, "index precision") affects only memory
// traffic: indices are always materialized as int32 in Go, and IdxBits
// records the storage width the instruction streams should charge for.
type Sparse struct {
	D, M Prec
	V    Variant
	Q    *Quantizer
	// IdxBits is the stored index width in bits (8, 16 or 32). Widths
	// below 32 use delta encoding for models too large to index directly
	// (paper footnote 6); the traffic model charges IdxBits per nonzero.
	IdxBits uint
	// Num, when non-nil, receives the worker's numerical-health counts;
	// see Dense.Num.
	Num *fixed.NumCounts
}

// NewSparse validates and builds a sparse kernel.
func NewSparse(d, m Prec, v Variant, q *Quantizer, idxBits uint) (*Sparse, error) {
	if m != F32 && q == nil {
		return nil, fmt.Errorf("kernels: model precision %v requires a quantizer", m)
	}
	if m == F32 && q != nil {
		return nil, fmt.Errorf("kernels: float model takes no quantizer")
	}
	switch idxBits {
	case 8, 16, 32:
	default:
		return nil, fmt.Errorf("kernels: index precision must be 8, 16 or 32 bits, got %d", idxBits)
	}
	return &Sparse{D: d, M: m, V: v, Q: q, IdxBits: idxBits}, nil
}

// MustSparse is NewSparse that panics on error.
func MustSparse(d, m Prec, v Variant, q *Quantizer, idxBits uint) *Sparse {
	k, err := NewSparse(d, m, v, q, idxBits)
	if err != nil {
		panic(err)
	}
	return k
}

// Dot returns the inner product of the sparse vector (idx, x) with the
// dense model w. x holds the nonzero values at dataset precision; idx holds
// their positions in w.
func (k *Sparse) Dot(idx []int32, x, w Vec) float32 {
	if len(idx) != x.Len() {
		panic(fmt.Sprintf("kernels: sparse Dot: %d indices, %d values", len(idx), x.Len()))
	}
	if k.V != Generic && !k.D.IsFloat() && !k.M.IsFloat() {
		// Integer gather pipeline: exact widening multiplies, wide
		// accumulation (the gathered model values cannot use the
		// paired vpmadd instructions, so products accumulate
		// individually). The nonzero values are stored densely, so the
		// word path loads them eight lanes at a time and gathers the
		// model through the typed slice, skipping the per-element
		// precision dispatch; accumulation order is unchanged, so the
		// sum is bit-identical to the scalar reference.
		var acc int64
		j := 0
		if swarOn && x.w64 != nil && (k.D == I8 || k.D == I16) && (k.M == I8 || k.M == I16) {
			n8 := len(idx) &^ 7
			var xv [8]int32
			if k.M == I8 {
				wr := w.I8
				for ; j < n8; j += 8 {
					x.lanes8(j>>3, &xv)
					acc += int64(xv[0])*int64(wr[idx[j]]) +
						int64(xv[1])*int64(wr[idx[j+1]]) +
						int64(xv[2])*int64(wr[idx[j+2]]) +
						int64(xv[3])*int64(wr[idx[j+3]]) +
						int64(xv[4])*int64(wr[idx[j+4]]) +
						int64(xv[5])*int64(wr[idx[j+5]]) +
						int64(xv[6])*int64(wr[idx[j+6]]) +
						int64(xv[7])*int64(wr[idx[j+7]])
				}
			} else {
				wr := w.I16
				for ; j < n8; j += 8 {
					x.lanes8(j>>3, &xv)
					acc += int64(xv[0])*int64(wr[idx[j]]) +
						int64(xv[1])*int64(wr[idx[j+1]]) +
						int64(xv[2])*int64(wr[idx[j+2]]) +
						int64(xv[3])*int64(wr[idx[j+3]]) +
						int64(xv[4])*int64(wr[idx[j+4]]) +
						int64(xv[5])*int64(wr[idx[j+5]]) +
						int64(xv[6])*int64(wr[idx[j+6]]) +
						int64(xv[7])*int64(wr[idx[j+7]])
				}
			}
		}
		for ; j < len(idx); j++ {
			acc += int64(x.Raw(j)) * int64(w.Raw(int(idx[j])))
		}
		return float32(acc) * k.D.Fixed().Quantum() * k.M.Fixed().Quantum()
	}
	var sum float32
	for j, i := range idx {
		sum += x.At(j) * w.At(int(i))
	}
	return sum
}

// Axpy performs the sparse model update w[idx[j]] <- round(w[idx[j]] +
// a*x[j]) for every nonzero j.
func (k *Sparse) Axpy(a float32, idx []int32, x, w Vec) {
	if len(idx) != x.Len() {
		panic(fmt.Sprintf("kernels: sparse Axpy: %d indices, %d values", len(idx), x.Len()))
	}
	switch {
	case k.M.IsFloat():
		for j, i := range idx {
			w.F32[i] += a * x.At(j)
		}
	case k.V != Generic && !k.D.IsFloat():
		aq := quantizeScalarA(a)
		if aq == 0 {
			if c := k.Num; c != nil && a != 0 {
				c.Underflows++
			}
			return
		}
		fx := k.D.Fixed()
		fm := k.M.Fixed()
		shift := fx.Frac + aqFrac - fm.Frac
		if c := k.Num; c != nil {
			for j, i := range idx {
				wide := int64(x.Raw(j)) * int64(aq)
				delta := k.Q.RoundRaw(wide, shift)
				if delta == 0 && wide != 0 {
					c.Underflows++
				}
				w.SetRaw(int(i), fm.SaturateC(int64(w.Raw(int(i)))+int64(delta), c))
			}
			return
		}
		j := 0
		if swarOn && x.w64 != nil && (k.D == I8 || k.D == I16) && (k.M == I8 || k.M == I16) {
			j = k.axpySwar(int64(aq), shift, idx, x, w)
		}
		// Scalar reference loop; also the ragged tail of the word path.
		for ; j < len(idx); j++ {
			i := idx[j]
			wide := int64(x.Raw(j)) * int64(aq)
			delta := k.Q.RoundRaw(wide, shift)
			w.SetRaw(int(i), fm.Saturate(int64(w.Raw(int(i)))+int64(delta)))
		}
	case k.V != Generic: // float dataset, fixed model
		fm := k.M.Fixed()
		if c := k.Num; c != nil {
			for j, i := range idx {
				p := a * x.At(j)
				delta := k.Q.Quantize(p)
				if delta == 0 && p != 0 {
					c.Underflows++
				}
				w.SetRaw(int(i), fm.SaturateC(int64(w.Raw(int(i)))+int64(delta), c))
			}
			return
		}
		for j, i := range idx {
			delta := k.Q.Quantize(a * x.At(j))
			w.SetRaw(int(i), fm.Saturate(int64(w.Raw(int(i)))+int64(delta)))
		}
	default:
		for j, i := range idx {
			w.Set(int(i), w.At(int(i))+a*x.At(j), k.Q)
		}
	}
}

// axpySwar is the word-parallel body of the sparse integer AXPY: the dense
// nonzero values are loaded eight lanes per word access and rounded
// through the quantizer's vector entry point (same rounding-lane order as
// the scalar loop), while the scattered model updates stay elementwise —
// duplicate indices inside a block must read each other's writes, exactly
// as the scalar reference does. Returns the nonzero count processed.
func (k *Sparse) axpySwar(a64 int64, shift uint, idx []int32, x, w Vec) int {
	fm := k.M.Fixed()
	n8 := len(idx) &^ 7
	var xv [8]int32
	var wide [8]int64
	var delta [8]int32
	for j := 0; j < n8; j += 8 {
		x.lanes8(j>>3, &xv)
		for l := range wide {
			wide[l] = int64(xv[l]) * a64
		}
		k.Q.RoundRaw8(&wide, shift, &delta)
		if k.M == I8 {
			wr := w.I8
			for l := 0; l < 8; l++ {
				t := idx[j+l]
				wr[t] = int8(fm.Saturate(int64(wr[t]) + int64(delta[l])))
			}
		} else {
			wr := w.I16
			for l := 0; l < 8; l++ {
				t := idx[j+l]
				wr[t] = int16(fm.Saturate(int64(wr[t]) + int64(delta[l])))
			}
		}
	}
	return n8
}
