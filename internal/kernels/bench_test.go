package kernels

import (
	"fmt"
	"testing"
)

// Microbenchmarks for the host-path kernels across precision, variant and
// rounding kind. CI uploads the output as an informational artifact; they
// gate nothing. The vector length matches fig2's simulated model size
// order of magnitude while staying L1-resident, so the numbers measure
// arithmetic, not memory.
const benchN = 4096

func benchKernel(b *testing.B, d, m Prec, v Variant, kind QuantKind) (*Dense, Vec, Vec) {
	b.Helper()
	var q *Quantizer
	if m != F32 {
		q = MustQuantizer(m, kind, 0, 42)
	}
	k := MustDense(d, m, v, q)
	x := NewVec(d, benchN)
	w := NewVec(m, benchN)
	fillRawVec(x, 7)
	fillRawVec(w, 11)
	return k, x, w
}

func benchGrid(b *testing.B, f func(b *testing.B, d, m Prec, v Variant, kind QuantKind)) {
	b.Helper()
	for _, d := range []Prec{I8, I16} {
		for _, v := range []Variant{Generic, HandOpt} {
			for _, kind := range []QuantKind{QBiased, QXorshift, QShared} {
				d, v, kind := d, v, kind
				b.Run(fmt.Sprintf("D%v/M%v/%v/%v", d, d, v, kind), func(b *testing.B) {
					f(b, d, d, v, kind)
				})
			}
		}
	}
}

func BenchmarkDot(b *testing.B) {
	benchGrid(b, func(b *testing.B, d, m Prec, v Variant, kind QuantKind) {
		k, x, w := benchKernel(b, d, m, v, kind)
		b.SetBytes(int64(float64(benchN) * (d.Bytes() + m.Bytes())))
		var sink float32
		for i := 0; i < b.N; i++ {
			sink += k.Dot(x, w)
		}
		_ = sink
	})
}

func BenchmarkAxpy(b *testing.B) {
	benchGrid(b, func(b *testing.B, d, m Prec, v Variant, kind QuantKind) {
		k, x, w := benchKernel(b, d, m, v, kind)
		b.SetBytes(int64(float64(benchN) * (d.Bytes() + 2*m.Bytes())))
		for i := 0; i < b.N; i++ {
			k.Axpy(0.0371, x, w)
		}
	})
}

func BenchmarkQuantize(b *testing.B) {
	xs := randFloats(benchN, 3, 1.8)
	out := make([]int32, benchN)
	for _, m := range []Prec{I8, I16} {
		for _, kind := range []QuantKind{QBiased, QMersenne, QXorshift, QShared} {
			m, kind := m, kind
			b.Run(fmt.Sprintf("M%v/%v", m, kind), func(b *testing.B) {
				q := MustQuantizer(m, kind, 0, 42)
				b.SetBytes(int64(benchN) * 4)
				for i := 0; i < b.N; i++ {
					q.QuantizeBlock(xs, out)
				}
			})
		}
	}
}

func BenchmarkRoundRaw(b *testing.B) {
	var vals [8]int64
	for i := range vals {
		vals[i] = int64(i*7919-31000) << 10
	}
	for _, m := range []Prec{I8, I16} {
		for _, kind := range []QuantKind{QBiased, QMersenne, QXorshift, QShared} {
			m, kind := m, kind
			b.Run(fmt.Sprintf("M%v/%v/scalar", m, kind), func(b *testing.B) {
				q := MustQuantizer(m, kind, 0, 42)
				var sink int32
				for i := 0; i < b.N; i++ {
					sink += q.RoundRaw(vals[i&7], 14)
				}
				_ = sink
			})
			b.Run(fmt.Sprintf("M%v/%v/vec8", m, kind), func(b *testing.B) {
				q := MustQuantizer(m, kind, 0, 42)
				var out [8]int32
				for i := 0; i < b.N; i++ {
					q.RoundRaw8(&vals, 14, &out)
				}
			})
		}
	}
}
