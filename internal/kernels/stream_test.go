package kernels

import (
	"testing"

	"buckwild/internal/simd"
)

var hw = simd.Haswell()

func denseK(d, m Prec, v Variant, kind QuantKind) *Dense {
	var q *Quantizer
	if m != F32 {
		q = MustQuantizer(m, kind, 8, 1)
	}
	return MustDense(d, m, v, q)
}

func stepCycles(d, m Prec, v Variant, kind QuantKind, n int) float64 {
	s := denseK(d, m, v, kind).StepStream(n)
	return s.Cycles(hw)
}

func TestHandOptBeatsGenericD8M8(t *testing.T) {
	// Section 5.1: the hand-optimized 8-bit kernels are many times
	// cheaper than the compiler code (whose unbiased AXPY is a scalar
	// loop). The paper's "up to 11x" is end-to-end throughput, where
	// memory dampens the gap; the compute-only ratio is larger.
	const n = 1 << 16
	g := stepCycles(I8, I8, Generic, QShared, n)
	h := stepCycles(I8, I8, HandOpt, QShared, n)
	ratio := g / h
	if ratio < 4 || ratio > 40 {
		t.Errorf("generic/handopt cycle ratio = %.2f, want within [4, 40]", ratio)
	}
}

func TestHandOptGainShrinksAtFullPrecision(t *testing.T) {
	// At 32-bit float there is little for hand-optimization to win.
	const n = 1 << 16
	g := stepCycles(F32, F32, Generic, QBiased, n)
	h := stepCycles(F32, F32, HandOpt, QBiased, n)
	if ratio := g / h; ratio > 2 {
		t.Errorf("float generic/handopt ratio = %.2f, should be small", ratio)
	}
	g8 := stepCycles(I8, I8, Generic, QShared, n)
	h8 := stepCycles(I8, I8, HandOpt, QShared, n)
	if g/h > g8/h8 {
		t.Error("hand-optimization should help low precision more than float")
	}
}

func TestLowerPrecisionIsCheaper(t *testing.T) {
	// Compute cycles per step must decrease monotonically with
	// precision for the hand-optimized dense kernels.
	const n = 1 << 16
	c32 := stepCycles(F32, F32, HandOpt, QBiased, n)
	c16 := stepCycles(I16, I16, HandOpt, QShared, n)
	c8 := stepCycles(I8, I8, HandOpt, QShared, n)
	if !(c8 < c16 && c16 < c32) {
		t.Errorf("cycles not monotone: c8=%v c16=%v c32=%v", c8, c16, c32)
	}
}

func TestFourBitRoughlyTwiceEightBit(t *testing.T) {
	// Figure 5c: D4M4 with the proposed ISA is about 2x faster than
	// D8M8 across most settings.
	const n = 1 << 16
	c8 := stepCycles(I8, I8, HandOpt, QShared, n)
	q4 := MustQuantizer(I4, QShared, 8, 1)
	k4 := MustDense(I4, I4, NewInsn, q4)
	c4 := k4.StepStream(n).Cycles(hw)
	ratio := c8 / c4
	if ratio < 1.5 || ratio > 3 {
		t.Errorf("D8M8/D4M4 cycle ratio = %.2f, want ~2", ratio)
	}
}

func TestNewInstructionsHelpModestly(t *testing.T) {
	// Section 6.1: the proposed QDOT8/QAXPY8 reduce the inner loops to
	// one and two compute instructions. The compute-cycle gain is
	// large; the end-to-end throughput gain is only 5-15% because the
	// kernel is memory-bound -- that property is asserted at the
	// machine-model level (package machine). Here we check the compute
	// streams are strictly cheaper and that the loop bodies really
	// shrink to the advertised instruction counts.
	const n = 1 << 16
	h := stepCycles(I8, I8, HandOpt, QHardware, n)
	p := stepCycles(I8, I8, NewInsn, QHardware, n)
	if p >= h {
		t.Errorf("new instructions must cut compute cycles: handopt=%v newinsn=%v", h, p)
	}
	k := denseK(I8, I8, NewInsn, QHardware)
	dot := k.DotStream(n)
	if dot.Count(simd.QDOT8) != int64(n/32) {
		t.Errorf("QDOT8 count = %d, want one per vector", dot.Count(simd.QDOT8))
	}
	axpy := k.AxpyStream(n)
	if axpy.Count(simd.QAXPY8) != int64(n/32) || axpy.Count(simd.PADDSB) != int64(n/32) {
		t.Error("AXPY loop body should be exactly QAXPY8 + PADDSB per vector")
	}
}

func TestPRNGStreamOrdering(t *testing.T) {
	// Figure 5b: biased <= shared <= xorshift << mersenne in cost.
	const n = 1 << 14
	b := denseK(I8, I8, HandOpt, QBiased).AxpyStream(n).Cycles(hw)
	s := denseK(I8, I8, HandOpt, QShared).AxpyStream(n).Cycles(hw)
	x := denseK(I8, I8, HandOpt, QXorshift).AxpyStream(n).Cycles(hw)
	m := denseK(I8, I8, HandOpt, QMersenne).AxpyStream(n).Cycles(hw)
	if !(b <= s && s <= x && x < m) {
		t.Errorf("PRNG cost ordering violated: biased=%v shared=%v xorshift=%v mt=%v", b, s, x, m)
	}
	if m < 5*x {
		t.Errorf("per-write Mersenne (%v) should dwarf vectorized xorshift (%v)", m, x)
	}
	// Sharing brings unbiased rounding close to biased (Section 5.2).
	if s > b*1.25 {
		t.Errorf("shared randomness cost %v should be within 25%% of biased %v", s, b)
	}
}

func TestSparseStreamsNearlyPrecisionFlat(t *testing.T) {
	// Table 2: sparse throughput varies little with precision, because
	// the gather-bound loop dominates.
	const nnz = 1 << 12
	mk := func(d, m Prec) float64 {
		var q *Quantizer
		if m != F32 {
			q = MustQuantizer(m, QShared, 8, 1)
		}
		return MustSparse(d, m, Generic, q, 32).StepStream(nnz).Cycles(hw)
	}
	c32 := mk(F32, F32)
	c8 := mk(I8, I8)
	if ratio := c32 / c8; ratio > 2 {
		t.Errorf("sparse 32f/8 cycle ratio = %.2f, should be close to flat", ratio)
	}
}

func TestSparseHandOptNotMuchBetter(t *testing.T) {
	// Figure 4b/4c: gathers make vectorized sparse code no big win.
	const nnz = 1 << 12
	q1 := MustQuantizer(I8, QShared, 8, 1)
	q2 := MustQuantizer(I8, QShared, 8, 1)
	g := MustSparse(I8, I8, Generic, q1, 32).StepStream(nnz).Cycles(hw)
	h := MustSparse(I8, I8, HandOpt, q2, 32).StepStream(nnz).Cycles(hw)
	if ratio := g / h; ratio > 3 {
		t.Errorf("sparse generic/handopt = %.2f, gather should cap the win", ratio)
	}
}

func TestIndexPrecisionReducesLoads(t *testing.T) {
	const nnz = 1 << 12
	mk := func(bits uint) int64 {
		q := MustQuantizer(I8, QBiased, 0, 1)
		s := MustSparse(I8, I8, HandOpt, q, bits).DotStream(nnz)
		return s.LoadBytes()
	}
	if !(mk(8) < mk(16) && mk(16) < mk(32)) {
		t.Error("narrower indices must load fewer bytes")
	}
}

func TestStreamBytesAccounting(t *testing.T) {
	const n = 1 << 12
	k := denseK(I8, I8, HandOpt, QBiased)
	dot := k.DotStream(n)
	// The dot loads both the dataset vector and the model vector:
	// 2 * n bytes at 8 bits each.
	if got, want := dot.LoadBytes(), int64(2*n); got != want {
		t.Errorf("dot LoadBytes = %d, want %d", got, want)
	}
	axpy := k.AxpyStream(n)
	if got, want := axpy.StoreBytes(), int64(n); got != want {
		t.Errorf("axpy StoreBytes = %d, want %d", got, want)
	}
}

func TestDenseStepBytes(t *testing.T) {
	if DenseStepBytes(I8, 1000) != 1000 {
		t.Error("I8 step bytes")
	}
	if DenseStepBytes(F32, 1000) != 4000 {
		t.Error("F32 step bytes")
	}
	if DenseStepBytes(I4, 1000) != 500 {
		t.Error("I4 step bytes (packed)")
	}
	if SparseStepBytes(I8, 16, 100) != 300 {
		t.Error("sparse step bytes: 1B value + 2B index per nnz")
	}
	if ModelBytes(I16, 10) != 20 {
		t.Error("model bytes")
	}
}

func TestStreamScaleAdd(t *testing.T) {
	var s simd.Stream
	s.Emit(simd.PADDD, 3)
	s.Scale(4)
	if s.Count(simd.PADDD) != 12 {
		t.Error("Scale failed")
	}
	var u simd.Stream
	u.Emit(simd.PADDD, 1)
	u.Add(s)
	if u.Count(simd.PADDD) != 13 {
		t.Error("Add failed")
	}
	if u.Instructions() != 13 {
		t.Error("Instructions failed")
	}
}
