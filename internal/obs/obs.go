// Package obs is the run-level observability layer of the reproduction.
// The paper's claims are all measured quantities — steps per second,
// coherence traffic, quantization cost, convergence per epoch — so the
// training engine and the simulated machine both need a way to expose
// what happens between "start" and "done" without slowing down the
// uninstrumented hot paths.
//
// The package provides three pieces:
//
//   - Hooks, the callback surface a run reports through (per epoch,
//     sampled per step, per worker), plus Observer, the configuration
//     that installs it into an engine run;
//   - Histogram and RunStats, the lock-free aggregation types the engine
//     fills (the engine's sharded counters themselves live next to the
//     workers in internal/core; this package owns their snapshot form);
//   - exporters: a JSON report writer, an expvar-style Vars registry,
//     and an optional HTTP endpoint serving the registry and pprof.
//
// Instrumentation is strictly opt-in: an engine run with a nil Observer
// executes exactly the pre-observability code path (a single nil check
// per step), so benchmarks without hooks measure the bare algorithm.
package obs

// EpochInfo describes one finished training epoch.
type EpochInfo struct {
	// Epoch is the number of completed epochs (1-based).
	Epoch int
	// Loss is the full-precision training loss after the epoch.
	Loss float64
	// Steps is the cumulative number of model updates so far.
	Steps uint64
}

// StepInfo describes one sampled model update.
type StepInfo struct {
	// Worker identifies the worker that performed the step.
	Worker int
	// Epoch is the epoch the step belongs to (0-based).
	Epoch int
	// Step is the worker's cumulative step count at the sample.
	Step uint64
	// Staleness counts model writes by other workers that landed
	// between this step's model read and its model write — the
	// write–read staleness that "Taming the Wild" reasons about.
	Staleness uint64
}

// WorkerInfo describes one worker finishing its share of an epoch.
type WorkerInfo struct {
	Worker int
	// Epoch is the finished epoch (0-based).
	Epoch int
	// Steps is the number of model updates the worker performed during
	// this epoch.
	Steps uint64
}

// Hooks receives run-level callbacks from a training run. OnStep and
// OnWorker are called from worker goroutines, concurrently under Racy and
// Locked sharing, so implementations must be safe for concurrent use.
// Embed NopHooks to implement only a subset.
type Hooks interface {
	// OnEpoch fires on the coordinating goroutine after each epoch's
	// loss evaluation.
	OnEpoch(EpochInfo)
	// OnStep fires for one in every Observer.StepSample model updates
	// per worker.
	OnStep(StepInfo)
	// OnWorker fires when a worker finishes its range of an epoch.
	OnWorker(WorkerInfo)
}

// NopHooks implements Hooks with no-ops, for embedding.
type NopHooks struct{}

// OnEpoch implements Hooks.
func (NopHooks) OnEpoch(EpochInfo) {}

// OnStep implements Hooks.
func (NopHooks) OnStep(StepInfo) {}

// OnWorker implements Hooks.
func (NopHooks) OnWorker(WorkerInfo) {}

// DefaultStepSample is the per-worker step sampling period used when
// Observer.StepSample is zero.
const DefaultStepSample = 64

// Observer installs observability into a training run. The zero value
// collects counters and the staleness histogram with default sampling and
// no hooks.
type Observer struct {
	// Hooks receives callbacks; nil collects counters only.
	Hooks Hooks
	// StepSample is the per-worker sampling period for OnStep and the
	// staleness histogram: every StepSample-th step is sampled. Zero
	// selects DefaultStepSample.
	StepSample int
	// Tracer, when non-nil, records trace spans for the run's coarse
	// phases (the whole run, each epoch). Nil is free: no span is opened.
	Tracer *Tracer
	// Series, when non-nil, records the windowed training time-series
	// (loss, throughput, staleness and gradient-magnitude sub-aggregates
	// per window). Nil is free: the sampled path skips it with one check.
	Series *Series
	// NumHealth, when true, collects numerical-health telemetry:
	// saturation events per clamp site, the signed rounding-bias
	// accumulator, underflow counts, and a per-epoch weight-distribution
	// pass (see NumStats). Off is free on the hot paths: the kernels pay
	// one nil check per call.
	NumHealth bool
	// Flight, when non-nil, receives coarse structured events (epoch and
	// round completions, faults, promotions) into the always-on flight
	// recorder for post-mortem dumps. Nil is free.
	Flight *FlightRecorder
	// ClusterLive, when non-nil, receives live per-node counters from a
	// cluster simulation for Prometheus exposition. Nil is free.
	ClusterLive *ClusterMetrics
}

// SamplePeriod returns the effective step sampling period.
func (o *Observer) SamplePeriod() uint64 {
	if o == nil || o.StepSample <= 0 {
		return DefaultStepSample
	}
	return uint64(o.StepSample)
}

// RunStats is the counter snapshot of one finished training run. Its
// fields aggregate the engine's per-worker sharded counters; Merge folds
// several runs together (exporters use this to report a whole sweep).
type RunStats struct {
	// Steps counts model updates (one per mini-batch per worker).
	Steps uint64 `json:"steps"`
	// ModelWrites counts model write operations by rounding kind (the
	// kernels' QuantKind name, or "full-precision" for F32 models). A
	// step that produces a zero gradient scale writes nothing, so this
	// can run below Steps.
	ModelWrites map[string]uint64 `json:"model_writes_by_rounding,omitempty"`
	// MutexWaits counts Locked-sharing lock acquisitions that found the
	// mutex already held (contended steps).
	MutexWaits uint64 `json:"mutex_waits"`
	// BatchFlushes counts mini-batch gradient flushes into the model
	// (only mini-batched dense runs produce these).
	BatchFlushes uint64 `json:"batch_flushes"`
	// SampledSteps is how many steps contributed to Staleness and
	// OnStep.
	SampledSteps uint64 `json:"sampled_steps"`
	// Staleness is the sampled write–read staleness histogram: for each
	// sampled step, the number of model writes by other workers between
	// the step's model read and its own write.
	Staleness HistSnapshot `json:"staleness"`
	// NumHealth is the run's numerical-health snapshot; nil unless the
	// Observer enabled NumHealth collection.
	NumHealth *NumStats `json:"num_health,omitempty"`
}

// Merge folds other into s.
func (s *RunStats) Merge(other *RunStats) {
	if other == nil {
		return
	}
	s.Steps += other.Steps
	s.MutexWaits += other.MutexWaits
	s.BatchFlushes += other.BatchFlushes
	s.SampledSteps += other.SampledSteps
	if len(other.ModelWrites) > 0 && s.ModelWrites == nil {
		s.ModelWrites = make(map[string]uint64, len(other.ModelWrites))
	}
	for k, v := range other.ModelWrites {
		s.ModelWrites[k] += v
	}
	s.Staleness.Merge(other.Staleness)
	if other.NumHealth != nil {
		if s.NumHealth == nil {
			s.NumHealth = &NumStats{}
		}
		s.NumHealth.Merge(other.NumHealth)
	}
}
