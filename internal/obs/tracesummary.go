package obs

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// PhaseSummary aggregates the complete spans of one (category, name)
// phase from a trace file: how often it ran and how much wall clock it
// accumulated.
type PhaseSummary struct {
	Cat   string
	Name  string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (p PhaseSummary) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// decodeTrace parses a trace_event document, distinguishing the common
// file-level failure modes so the CLI can report them plainly instead of
// a zero-filled summary: a raw EOF is an empty file, an unexpected EOF a
// truncated one (a run killed mid-write), and a syntax error names the
// corrupt byte. Gzipped input (debug bundles store traces as
// trace.json.gz) is detected by magic bytes and decompressed
// transparently.
func decodeTrace(r io.Reader) (*chromeTrace, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("obs: gzipped trace: %w", err)
		}
		defer gz.Close()
		return decodeTraceJSON(gz)
	}
	return decodeTraceJSON(br)
}

func decodeTraceJSON(r io.Reader) (*chromeTrace, error) {
	var doc chromeTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		switch {
		case errors.Is(err, io.EOF):
			return nil, errors.New("obs: trace file is empty")
		case errors.Is(err, io.ErrUnexpectedEOF):
			return nil, fmt.Errorf("obs: trace file is truncated: %w", err)
		}
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return nil, fmt.Errorf("obs: trace file is corrupt at byte %d: %w", syn.Offset, err)
		}
		return nil, fmt.Errorf("obs: parsing trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, errors.New("obs: trace file contains no events (empty or truncated trace?)")
	}
	return &doc, nil
}

// SummarizeTrace reads Chrome trace_event JSON (as written by
// Tracer.WriteTrace, but any trace_event document with "X" complete
// events works) and returns per-phase wall-clock breakdowns, sorted by
// total time descending. Instant and metadata events are ignored.
func SummarizeTrace(r io.Reader) ([]PhaseSummary, error) {
	doc, err := decodeTrace(r)
	if err != nil {
		return nil, err
	}
	byPhase := make(map[string]*PhaseSummary)
	var order []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		key := ev.Cat + "\x00" + ev.Name
		p := byPhase[key]
		if p == nil {
			p = &PhaseSummary{Cat: ev.Cat, Name: ev.Name}
			byPhase[key] = p
			order = append(order, key)
		}
		d := time.Duration(ev.Dur * float64(time.Microsecond))
		p.Count++
		p.Total += d
		if p.Count == 1 || d < p.Min {
			p.Min = d
		}
		if d > p.Max {
			p.Max = d
		}
	}
	out := make([]PhaseSummary, 0, len(order))
	for _, key := range order {
		out = append(out, *byPhase[key])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out, nil
}

// TrackSummary aggregates the events of one trace track (tid): the
// per-node cluster timelines and the serve request/batch tracks. Spans
// counts complete events, Flows the flow endpoints bound to the track
// (wire messages in cluster traces), Total the accumulated span time.
type TrackSummary struct {
	TID   int
	Name  string // thread_name metadata; "" when the track is unnamed
	Spans int
	Flows int
	Total time.Duration
}

// SummarizeTracks reads Chrome trace_event JSON and returns one summary
// per track, in tid order — the per-node view of a cluster trace (one
// compute and one comm track per node) or the per-request view of a
// serve trace. Traces whose events all land on the default track
// summarize to a single entry.
func SummarizeTracks(r io.Reader) ([]TrackSummary, error) {
	doc, err := decodeTrace(r)
	if err != nil {
		return nil, err
	}
	byTID := make(map[int]*TrackSummary)
	track := func(tid int) *TrackSummary {
		t := byTID[tid]
		if t == nil {
			t = &TrackSummary{TID: tid}
			byTID[tid] = t
		}
		return t
	}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				track(ev.Tid).Name = ev.Args["name"]
			}
		case "X":
			t := track(ev.Tid)
			t.Spans++
			t.Total += time.Duration(ev.Dur * float64(time.Microsecond))
		case "s", "f":
			track(ev.Tid).Flows++
		}
	}
	out := make([]TrackSummary, 0, len(byTID))
	for _, t := range byTID {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID < out[j].TID })
	return out, nil
}
