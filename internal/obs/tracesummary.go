package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"
)

// PhaseSummary aggregates the complete spans of one (category, name)
// phase from a trace file: how often it ran and how much wall clock it
// accumulated.
type PhaseSummary struct {
	Cat   string
	Name  string
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Mean returns the average span duration.
func (p PhaseSummary) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// SummarizeTrace reads Chrome trace_event JSON (as written by
// Tracer.WriteTrace, but any trace_event document with "X" complete
// events works) and returns per-phase wall-clock breakdowns, sorted by
// total time descending. Instant and metadata events are ignored.
func SummarizeTrace(r io.Reader) ([]PhaseSummary, error) {
	var doc chromeTrace
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		// Distinguish the common file-level failure modes so the CLI can
		// report them plainly instead of a zero-filled summary: a raw EOF
		// is an empty file, an unexpected EOF a truncated one (a run
		// killed mid-write), and a syntax error names the corrupt byte.
		switch {
		case errors.Is(err, io.EOF):
			return nil, errors.New("obs: trace file is empty")
		case errors.Is(err, io.ErrUnexpectedEOF):
			return nil, fmt.Errorf("obs: trace file is truncated: %w", err)
		}
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			return nil, fmt.Errorf("obs: trace file is corrupt at byte %d: %w", syn.Offset, err)
		}
		return nil, fmt.Errorf("obs: parsing trace: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return nil, errors.New("obs: trace file contains no events (empty or truncated trace?)")
	}
	byPhase := make(map[string]*PhaseSummary)
	var order []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		key := ev.Cat + "\x00" + ev.Name
		p := byPhase[key]
		if p == nil {
			p = &PhaseSummary{Cat: ev.Cat, Name: ev.Name}
			byPhase[key] = p
			order = append(order, key)
		}
		d := time.Duration(ev.Dur * float64(time.Microsecond))
		p.Count++
		p.Total += d
		if p.Count == 1 || d < p.Min {
			p.Min = d
		}
		if d > p.Max {
			p.Max = d
		}
	}
	out := make([]PhaseSummary, 0, len(order))
	for _, key := range order {
		out = append(out, *byPhase[key])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out, nil
}
