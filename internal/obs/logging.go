package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging conventions for the repo (DESIGN §14): every
// subsystem logs through a *slog.Logger scoped with Component, and a nil
// *slog.Logger means "no logging" — call sites nil-check before logging,
// the same zero-cost discipline as nil Hooks and nil Tracer. Loggers are
// built once at the command layer (from -log-format and -log-level) and
// threaded down through configs; library code never writes to a global.

// NewLogger builds a logger writing to w. format selects the handler:
// "text" (human-oriented key=value) or "json" (one object per line).
// level is one of "debug", "info", "warn", "error". Both are
// case-insensitive; empty strings default to "text" and "info".
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lv, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// ParseLogLevel maps a -log-level flag value to a slog.Level. Empty
// defaults to info.
func ParseLogLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", level)
}

// Component scopes l to one subsystem ("run", "cluster", "serve") by
// attaching a component attribute. A nil logger stays nil, so the
// nil-means-silent convention propagates through the scoping call.
func Component(l *slog.Logger, name string) *slog.Logger {
	if l == nil {
		return nil
	}
	return l.With(slog.String("component", name))
}
