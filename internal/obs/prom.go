package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync/atomic"
)

// This file renders the observability layer's counters in the Prometheus
// text exposition format (text/plain; version=0.0.4), so a live training
// run can be scraped at /metrics. LiveMetrics is the Hooks-based
// collector behind the endpoint: it maintains lock-free gauges from the
// run's callbacks and renders them with a staleness histogram, optionally
// alongside the newest time-series window and the final run/supervisor
// snapshots.

// promWriter accumulates metric lines, remembering which metric names
// have had their TYPE header emitted.
type promWriter struct {
	w     io.Writer
	err   error
	typed map[string]bool
}

func newPromWriter(w io.Writer) *promWriter {
	return &promWriter{w: w, typed: make(map[string]bool)}
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// metric emits one sample, preceded by HELP/TYPE headers on first use.
func (p *promWriter) metric(name, typ, help string, v float64) {
	p.header(name, typ, help)
	p.printf("%s %s\n", name, promFloat(v))
}

func (p *promWriter) header(name, typ, help string) {
	if p.typed[name] {
		return
	}
	p.typed[name] = true
	if help != "" {
		p.printf("# HELP %s %s\n", name, help)
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// promFloat renders a value the way Prometheus expects (no exponent for
// integral values that fit, +Inf/-Inf/NaN spelled out).
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// histogram emits a HistSnapshot as a Prometheus histogram: cumulative
// bucket counts with inclusive le upper bounds (the power-of-two bucket
// [lo, 2lo) becomes le="2lo-1"; the zero bucket le="0").
func (p *promWriter) histogram(name, help string, s HistSnapshot) {
	p.header(name, "histogram", help)
	var cum uint64
	for _, b := range s.Buckets {
		if b.N == 0 {
			continue
		}
		cum += b.N
		le := "0"
		if b.Lo > 0 {
			le = fmt.Sprint(2*b.Lo - 1)
		}
		p.printf("%s_bucket{le=%q} %d\n", name, le, cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	p.printf("%s_sum %d\n", name, s.Sum)
	p.printf("%s_count %d\n", name, s.Count)
}

// WriteRunStatsProm renders a RunStats snapshot (and optionally a
// SupervisorStats) in the Prometheus text format. The commands use it to
// expose finished-run counters; LiveMetrics uses it for the final
// snapshot behind /metrics.
func WriteRunStatsProm(w io.Writer, rs *RunStats, ss *SupervisorStats) error {
	p := newPromWriter(w)
	if rs != nil {
		p.metric("buckwild_steps_total", "counter", "Model updates performed.", float64(rs.Steps))
		p.metric("buckwild_mutex_waits_total", "counter", "Contended lock acquisitions (Locked sharing).", float64(rs.MutexWaits))
		p.metric("buckwild_batch_flushes_total", "counter", "Mini-batch gradient flushes.", float64(rs.BatchFlushes))
		p.metric("buckwild_sampled_steps_total", "counter", "Steps sampled for staleness and hooks.", float64(rs.SampledSteps))
		if len(rs.ModelWrites) > 0 {
			p.header("buckwild_model_writes_total", "counter", "Model writes by rounding kind.")
			kinds := make([]string, 0, len(rs.ModelWrites))
			for k := range rs.ModelWrites {
				kinds = append(kinds, k)
			}
			sort.Strings(kinds)
			for _, k := range kinds {
				p.printf("buckwild_model_writes_total{rounding=%q} %d\n", k, rs.ModelWrites[k])
			}
		}
		p.histogram("buckwild_staleness", "Sampled write-read staleness (model writes by other workers).", rs.Staleness)
		if ns := rs.NumHealth; ns != nil {
			p.metric("buckwild_num_saturations_total", "counter", "Saturation (clamp) events across all sites.", float64(ns.Saturations))
			if len(ns.SatBySite) > 0 {
				p.header("buckwild_num_site_saturations_total", "counter", "Saturation events by arithmetic site.")
				sites := make([]string, 0, len(ns.SatBySite))
				for s := range ns.SatBySite {
					sites = append(sites, s)
				}
				sort.Strings(sites)
				for _, s := range sites {
					p.printf("buckwild_num_site_saturations_total{site=%q} %d\n", s, ns.SatBySite[s])
				}
			}
			p.metric("buckwild_num_underflows_total", "counter", "Nonzero gradient contributions quantized to zero.", float64(ns.Underflows))
			p.metric("buckwild_rounding_bias_samples_total", "counter", "Quantized writes measured for rounding bias.", float64(ns.Bias.Samples))
			p.metric("buckwild_rounding_bias_mean_quanta", "gauge", "Mean signed rounding error of quantized writes, in quanta.", ns.Bias.MeanQuanta())
			if ws := ns.Weights; ws != nil {
				p.metric("buckwild_weights_at_bounds", "gauge", "Model weights pinned at the format bounds at the last epoch.", float64(ws.AtBounds))
				p.metric("buckwild_weight_min", "gauge", "Smallest model weight at the last epoch.", ws.Min)
				p.metric("buckwild_weight_max", "gauge", "Largest model weight at the last epoch.", ws.Max)
				p.metric("buckwild_weight_mean", "gauge", "Mean model weight at the last epoch.", ws.Mean)
				p.histogram("buckwild_weight_magnitude", "Model weight magnitudes in quanta at the last epoch.", ws.Magnitude)
			}
		}
	}
	if ss != nil {
		p.metric("buckwild_supervisor_attempts_total", "counter", "Training attempts, including the successful one.", float64(ss.Attempts))
		p.metric("buckwild_supervisor_retries_total", "counter", "Attempts retried after recoverable failures.", float64(ss.Retries))
		p.metric("buckwild_supervisor_checkpoints_total", "counter", "Checkpoint files written.", float64(ss.Checkpoints))
		p.metric("buckwild_supervisor_checkpoint_bytes_total", "counter", "Cumulative checkpoint bytes written.", float64(ss.CheckpointBytes))
		p.metric("buckwild_supervisor_resumes_total", "counter", "Attempts resumed from a checkpoint.", float64(ss.Resumes))
		p.metric("buckwild_supervisor_stalls_detected_total", "counter", "Watchdog firings.", float64(ss.StallsDetected))
		p.metric("buckwild_supervisor_final_threads", "gauge", "Worker count of the last attempt.", float64(ss.FinalThreads))
	}
	return p.err
}

// LiveMetrics is a Hooks (and LifecycleHooks) implementation that keeps
// live, scrape-ready gauges of a running training job. Install it as the
// run's hooks and serve it at /metrics (it is an http.Handler); every
// callback is lock-free, so it adds no contention to the sampled path.
type LiveMetrics struct {
	// Series, when non-nil, contributes the newest time-series window's
	// gauges to the scrape.
	Series *Series
	// Cluster, when non-nil, contributes the live per-node counters of a
	// running cluster simulation to the scrape.
	Cluster *ClusterMetrics

	epochs       atomic.Int64
	steps        atomic.Uint64
	lossBits     atomic.Uint64
	sampledSteps atomic.Uint64
	workersDone  atomic.Uint64
	stale        Histogram

	checkpoints     atomic.Int64
	checkpointBytes atomic.Int64
	retries         atomic.Int64
	resumeEpoch     atomic.Int64

	// Numerical-health gauges, fed by OnHealth/OnDivergence; emitted
	// only once a health callback arrived (healthSeen).
	healthSeen     atomic.Bool
	healthSat      atomic.Uint64
	healthUnder    atomic.Uint64
	healthBiasN    atomic.Uint64
	healthBiasBits atomic.Uint64
	healthAtBounds atomic.Uint64
	diverged       atomic.Bool
	divergedEpoch  atomic.Int64

	// final, when set via SetFinal, adds the finished run's full counter
	// snapshot to subsequent scrapes.
	final atomic.Pointer[finalStats]
}

type finalStats struct {
	run *RunStats
	sup *SupervisorStats
}

// OnEpoch implements Hooks.
func (m *LiveMetrics) OnEpoch(ei EpochInfo) {
	m.epochs.Store(int64(ei.Epoch))
	m.steps.Store(ei.Steps)
	m.lossBits.Store(math.Float64bits(ei.Loss))
}

// OnStep implements Hooks.
func (m *LiveMetrics) OnStep(si StepInfo) {
	m.sampledSteps.Add(1)
	m.stale.Observe(si.Staleness)
}

// OnWorker implements Hooks.
func (m *LiveMetrics) OnWorker(WorkerInfo) { m.workersDone.Add(1) }

// OnCheckpoint implements LifecycleHooks.
func (m *LiveMetrics) OnCheckpoint(ci CheckpointInfo) {
	m.checkpoints.Add(1)
	m.checkpointBytes.Add(ci.Bytes)
}

// OnRetry implements LifecycleHooks.
func (m *LiveMetrics) OnRetry(ri RetryInfo) {
	m.retries.Add(1)
	m.resumeEpoch.Store(int64(ri.ResumeEpoch))
}

// OnHealth implements HealthHooks: the cumulative numerical-health
// counters become live gauges.
func (m *LiveMetrics) OnHealth(hi HealthInfo) {
	m.healthSat.Store(hi.Saturations)
	m.healthUnder.Store(hi.Underflows)
	m.healthBiasN.Store(hi.BiasSamples)
	m.healthBiasBits.Store(math.Float64bits(hi.BiasSumQuanta))
	m.healthAtBounds.Store(hi.WeightsAtBounds)
	m.healthSeen.Store(true)
}

// OnDivergence implements DivergenceHooks.
func (m *LiveMetrics) OnDivergence(di DivergenceInfo) {
	m.diverged.Store(true)
	m.divergedEpoch.Store(int64(di.Epoch))
}

// SetFinal attaches the finished run's counter snapshots, so scrapes
// after completion also serve the authoritative totals.
func (m *LiveMetrics) SetFinal(run *RunStats, sup *SupervisorStats) {
	m.final.Store(&finalStats{run: run, sup: sup})
}

// WriteProm renders the current gauges in the Prometheus text format.
func (m *LiveMetrics) WriteProm(w io.Writer) error {
	p := newPromWriter(w)
	p.metric("buckwild_epochs_completed", "gauge", "Completed training epochs.", float64(m.epochs.Load()))
	p.metric("buckwild_live_steps", "gauge", "Model updates at the last epoch boundary.", float64(m.steps.Load()))
	p.metric("buckwild_train_loss", "gauge", "Training loss after the last epoch.", math.Float64frombits(m.lossBits.Load()))
	p.metric("buckwild_live_sampled_steps_total", "counter", "Sampled steps observed so far.", float64(m.sampledSteps.Load()))
	p.metric("buckwild_workers_finished_total", "counter", "Worker epoch-ranges completed.", float64(m.workersDone.Load()))
	p.metric("buckwild_checkpoints_total", "counter", "Checkpoints written so far.", float64(m.checkpoints.Load()))
	p.metric("buckwild_checkpoint_bytes_total", "counter", "Checkpoint bytes written so far.", float64(m.checkpointBytes.Load()))
	p.metric("buckwild_retries_total", "counter", "Supervisor retries so far.", float64(m.retries.Load()))
	p.metric("buckwild_resume_epoch", "gauge", "Epoch the latest retry resumed from.", float64(m.resumeEpoch.Load()))
	p.histogram("buckwild_live_staleness", "Sampled write-read staleness, live.", m.stale.Snapshot())
	if m.healthSeen.Load() {
		p.metric("buckwild_live_saturations_total", "counter", "Saturation events so far.", float64(m.healthSat.Load()))
		p.metric("buckwild_live_underflows_total", "counter", "Gradient underflows so far.", float64(m.healthUnder.Load()))
		biasMean := 0.0
		if n := m.healthBiasN.Load(); n > 0 {
			biasMean = math.Float64frombits(m.healthBiasBits.Load()) / float64(n)
		}
		p.metric("buckwild_live_rounding_bias_mean_quanta", "gauge", "Mean signed rounding error so far, in quanta.", biasMean)
		p.metric("buckwild_live_weights_at_bounds", "gauge", "Weights pinned at the format bounds at the last epoch.", float64(m.healthAtBounds.Load()))
	}
	divergedVal := 0.0
	if m.diverged.Load() {
		divergedVal = 1
		p.metric("buckwild_diverged_epoch", "gauge", "Epoch at which the health watchdog fired.", float64(m.divergedEpoch.Load()))
	}
	p.metric("buckwild_diverged", "gauge", "1 if the health watchdog detected numerical divergence.", divergedVal)
	if win := m.Series.Snapshot().Final(); win != nil {
		p.metric("buckwild_window_steps_per_sec", "gauge", "Throughput of the newest time-series window.", win.StepsPerSec)
		p.metric("buckwild_window_loss", "gauge", "Loss of the newest time-series window.", win.Loss)
		p.metric("buckwild_window_grad_abs_mean", "gauge", "Mean sampled gradient magnitude of the newest window.", win.GradAbsMean())
		p.metric("buckwild_window_mutex_waits", "gauge", "Contended lock acquisitions in the newest window.", float64(win.MutexWaits))
		p.histogram("buckwild_window_staleness", "Staleness sub-histogram of the newest window.", win.Staleness)
	}
	if p.err != nil {
		return p.err
	}
	if err := m.Cluster.WriteProm(w); err != nil {
		return err
	}
	if f := m.final.Load(); f != nil {
		return WriteRunStatsProm(w, f.run, f.sup)
	}
	return nil
}

// ServeHTTP implements http.Handler, serving the Prometheus text format.
func (m *LiveMetrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WriteProm(w)
}
