package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// This file holds the trace-span half of the time-resolved telemetry
// layer: a bounded in-memory recorder of begin/end phase events (run
// attempts, training epochs, checkpoint saves, sweep tasks, simulated-
// machine phases) exportable as Chrome trace_event JSON, loadable in
// chrome://tracing and Perfetto.
//
// Spans are coarse-grained by design — epochs, attempts, sweep points,
// never individual model updates — so a single mutex around the ring is
// cheap relative to the work each span brackets. A nil *Tracer is fully
// inert: every method nil-checks first, so uninstrumented runs pay
// nothing (the established zero-cost convention of this package).

// Span is one recorded trace event. Start is measured from the tracer's
// creation; Dur is zero for instant events.
type Span struct {
	// Name and Cat label the span ("epoch", "core"); viewers group and
	// color by category.
	Name string
	Cat  string
	// TID is the track the span renders on. Concurrent phases should use
	// distinct tracks (the sweep pool assigns one per worker); nested
	// phases on one track are nested by time containment.
	TID int
	// Start is the offset from the tracer's epoch; Dur the span length.
	Start time.Duration
	Dur   time.Duration
	// Instant marks a point event (Dur is ignored).
	Instant bool
	// FlowID, when nonzero, makes this a flow event instead of a span:
	// the sending half (FlowOut true, Chrome ph "s") and the receiving
	// half (FlowOut false, ph "f") carrying the same FlowID are joined by
	// an arrow in the viewer. The cluster tier uses flow pairs to draw
	// each wire message from the sender's track to the receiver's.
	FlowID  uint64
	FlowOut bool
	// Args carries small key/value annotations shown in the viewer.
	Args map[string]string
}

// DefaultTraceCapacity is the ring size NewTracer uses for capacity <= 0.
const DefaultTraceCapacity = 8192

// Tracer records spans into a bounded ring: once capacity is reached the
// oldest spans are overwritten and counted as dropped, so memory is fixed
// regardless of run length. All methods are safe for concurrent use and
// safe on a nil receiver (no-ops).
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	ring   []Span
	next   uint64 // total spans recorded, including dropped
	tracks map[int]string
}

// NewTracer returns a tracer with the given ring capacity (spans kept);
// capacity <= 0 selects DefaultTraceCapacity.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{epoch: time.Now(), ring: make([]Span, 0, capacity)}
}

// clock returns the current offset from the tracer's epoch.
func (t *Tracer) clock() time.Duration { return time.Since(t.epoch) }

// Now returns the current offset from the tracer's epoch (0 on a nil
// tracer). Callers that stamp a moment early and record a span later
// (e.g. the serve queue measuring per-job queue-wait) use Now at the
// stamp and RecordSpan at the end.
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock()
}

// RecordSpan records a fully-specified span. Unlike Begin/End, the
// caller supplies Start and Dur, which lets producers whose clock is not
// wall time — the cluster tier's discrete-event simulation runs in
// simulated seconds — lay out spans on their own timeline. A nil tracer
// records nothing.
func (t *Tracer) RecordSpan(s Span) {
	if t == nil {
		return
	}
	t.record(s)
}

// Flow records one half of a flow arrow at a point in time on track tid:
// out true is the sending half, out false the receiving half. Both
// halves must share a nonzero id unique to the message. Place each half
// inside (or at the edge of) a span on its track so viewers can bind the
// arrow to the enclosing slice.
func (t *Tracer) Flow(cat, name string, id uint64, out bool, tid int, at time.Duration) {
	if t == nil || id == 0 {
		return
	}
	t.record(Span{Name: name, Cat: cat, TID: tid, Start: at, FlowID: id, FlowOut: out})
}

// record appends one span to the ring, overwriting the oldest when full.
func (t *Tracer) record(s Span) {
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next%uint64(cap(t.ring))] = s
	}
	t.next++
	t.mu.Unlock()
}

// SpanHandle is an open span returned by Begin; End (or EndArgs) records
// it. The zero value (from a nil tracer) is inert.
type SpanHandle struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Duration
}

// Begin opens a span on track tid. Nothing is recorded until End.
func (t *Tracer) Begin(cat, name string, tid int) SpanHandle {
	if t == nil {
		return SpanHandle{}
	}
	return SpanHandle{t: t, name: name, cat: cat, tid: tid, start: t.clock()}
}

// End records the span with no annotations.
func (h SpanHandle) End() { h.EndArgs(nil) }

// EndArgs records the span with key/value annotations.
func (h SpanHandle) EndArgs(args map[string]string) {
	if h.t == nil {
		return
	}
	h.t.record(Span{
		Name: h.name, Cat: h.cat, TID: h.tid,
		Start: h.start, Dur: h.t.clock() - h.start, Args: args,
	})
}

// Instant records a point event.
func (t *Tracer) Instant(cat, name string, tid int, args map[string]string) {
	if t == nil {
		return
	}
	t.record(Span{Name: name, Cat: cat, TID: tid, Start: t.clock(), Instant: true, Args: args})
}

// NameTrack labels a track for the viewer (rendered as a thread name).
func (t *Tracer) NameTrack(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.tracks == nil {
		t.tracks = make(map[int]string)
	}
	t.tracks[tid] = name
	t.mu.Unlock()
}

// TraceSnapshot is the exportable content of a Tracer.
type TraceSnapshot struct {
	// Spans are the retained spans, oldest first.
	Spans []Span
	// Dropped counts spans overwritten after the ring filled.
	Dropped uint64
	// Tracks maps track ids to their NameTrack labels.
	Tracks map[int]string
}

// Snapshot copies the tracer's current contents. It may be taken while
// spans are still being recorded.
func (t *Tracer) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TraceSnapshot{Spans: make([]Span, 0, len(t.ring))}
	if n := uint64(len(t.ring)); t.next > n {
		snap.Dropped = t.next - n
		// The ring wrapped: oldest retained span is at next % cap.
		at := t.next % uint64(cap(t.ring))
		snap.Spans = append(snap.Spans, t.ring[at:]...)
		snap.Spans = append(snap.Spans, t.ring[:at]...)
	} else {
		snap.Spans = append(snap.Spans, t.ring...)
	}
	if len(t.tracks) > 0 {
		snap.Tracks = make(map[int]string, len(t.tracks))
		for k, v := range t.tracks {
			snap.Tracks[k] = v
		}
	}
	return snap
}

// SpanCount returns the total number of spans recorded so far, including
// any the ring dropped. Two identical seeded runs record identical
// counts, which the determinism tests assert.
func (t *Tracer) SpanCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// chromeEvent is one trace_event entry of the Chrome/Perfetto JSON
// format: ph "X" is a complete span (ts+dur), "i" an instant, "M"
// metadata, "s"/"f" the two halves of a flow arrow (joined by ID).
// Timestamps are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	ID   string            `json:"id,omitempty"`
	BP   string            `json:"bp,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event document (object form, so
// viewers accept metadata alongside the event array).
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// WriteTrace writes the tracer's contents as Chrome trace_event JSON,
// loadable in chrome://tracing and https://ui.perfetto.dev.
func (t *Tracer) WriteTrace(w io.Writer) error {
	snap := t.Snapshot()
	doc := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(snap.Spans)+len(snap.Tracks)+1)}
	// Track-name metadata first, in stable order.
	tids := make([]int, 0, len(snap.Tracks))
	for tid := range snap.Tracks {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": snap.Tracks[tid]},
		})
	}
	for _, s := range snap.Spans {
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", Pid: 1, Tid: s.TID,
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Args: s.Args,
		}
		if s.Instant {
			ev.Ph, ev.Dur, ev.S = "i", 0, "t"
		}
		if s.FlowID != 0 {
			ev.Dur = 0
			ev.ID = fmt.Sprint(s.FlowID)
			if s.FlowOut {
				ev.Ph = "s"
			} else {
				// bp "e" binds the arrow head to the slice enclosing the
				// receive timestamp rather than the next slice to start.
				ev.Ph, ev.BP = "f", "e"
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	if snap.Dropped > 0 {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "spans_dropped", Ph: "i", Pid: 1, S: "g",
			Args: map[string]string{"dropped": fmt.Sprint(snap.Dropped)},
		})
	}
	buf, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// WriteTraceFile writes the trace to path, creating or truncating it.
func (t *Tracer) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Context plumbing: deep callees (the sweep pool, the simulated machine)
// receive the tracer and their display track through the context that
// already bounds them, so no simulation signature changes when tracing
// is off — and a context without a tracer costs one failed type
// assertion per phase, not per step.

type tracerCtxKey struct{}
type traceTIDCtxKey struct{}

// ContextWithTracer returns a context carrying t (nil ctx starts from
// context.Background; a nil t returns ctx unchanged).
func ContextWithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, tracerCtxKey{}, t)
}

// TracerFrom extracts the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerCtxKey{}).(*Tracer)
	return t
}

// ContextWithTraceTID returns a context whose trace spans render on
// track tid (the sweep pool gives each worker its own track).
func ContextWithTraceTID(ctx context.Context, tid int) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, traceTIDCtxKey{}, tid)
}

// TraceTID extracts the context's trace track, defaulting to 0.
func TraceTID(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	tid, _ := ctx.Value(traceTIDCtxKey{}).(int)
	return tid
}
