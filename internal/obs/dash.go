package obs

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// This file holds the live HTML dashboard: a dependency-free page at
// /debug/dash that renders the training loss and throughput series, the
// staleness histogram, per-node cluster stats and serve latency
// quantiles from a Server-Sent-Events feed at /debug/dash/events. The
// page is one self-contained HTML string — no build step, no external
// assets — so it works from a laptop pointed at a daemon in a netns
// with no egress. A nil *Dash is fully inert (its handlers 404).

// DefaultDashInterval is the SSE push cadence.
const DefaultDashInterval = time.Second

// DashConfig wires the dashboard's data sources. Every source is
// optional; sections with no source stay hidden on the page.
type DashConfig struct {
	// Series feeds the loss/throughput charts and staleness histogram.
	Series *Series
	// Cluster and Serve are snapshot callbacks (may be nil, may return
	// nil) feeding the per-node table and latency quantiles.
	Cluster func() *ClusterStats
	Serve   func() *ServeStats
	// Interval is the SSE push cadence (default 1s).
	Interval time.Duration
	// Logger, when non-nil, gets a Debug line per SSE client connect and
	// disconnect.
	Logger *slog.Logger
}

// Dash serves the live dashboard page and its SSE event feed.
type Dash struct {
	cfg DashConfig
}

// NewDash returns a dashboard over the given sources.
func NewDash(cfg DashConfig) *Dash {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultDashInterval
	}
	return &Dash{cfg: cfg}
}

// dashSnapshot is one SSE event payload.
type dashSnapshot struct {
	Time    time.Time       `json:"time"`
	Series  *SeriesSnapshot `json:"series,omitempty"`
	Cluster *ClusterStats   `json:"cluster,omitempty"`
	Serve   *ServeStats     `json:"serve,omitempty"`
}

func (d *Dash) snapshot() dashSnapshot {
	s := dashSnapshot{Time: time.Now()}
	if d.cfg.Series != nil {
		s.Series = d.cfg.Series.Snapshot()
	}
	if d.cfg.Cluster != nil {
		s.Cluster = d.cfg.Cluster()
	}
	if d.cfg.Serve != nil {
		s.Serve = d.cfg.Serve()
	}
	return s
}

// Register mounts the page at prefix and the feed at prefix+"/events".
// Nil-safe: a nil Dash mounts nothing.
func (d *Dash) Register(mux *http.ServeMux, prefix string) {
	if d == nil || mux == nil {
		return
	}
	prefix = strings.TrimSuffix(prefix, "/")
	mux.Handle(prefix, d)
	mux.HandleFunc(prefix+"/events", d.Events)
}

// ServeHTTP serves the dashboard page. A nil Dash responds 404.
func (d *Dash) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	if d == nil {
		http.Error(w, "dashboard not enabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, dashHTML)
}

// Events is the SSE feed: one "snapshot" event immediately on connect,
// then one per Interval until the client goes away. Payloads are
// compact JSON (single line, as SSE data framing requires).
func (d *Dash) Events(w http.ResponseWriter, r *http.Request) {
	if d == nil {
		http.Error(w, "dashboard not enabled", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	if d.cfg.Logger != nil {
		d.cfg.Logger.Debug("dash client connected", slog.String("remote", r.RemoteAddr))
	}
	send := func() bool {
		data, err := json.Marshal(d.snapshot())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", data); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if !send() {
		return
	}
	tick := time.NewTicker(d.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			if d.cfg.Logger != nil {
				d.cfg.Logger.Debug("dash client gone", slog.String("remote", r.RemoteAddr))
			}
			return
		case <-tick.C:
			if !send() {
				return
			}
		}
	}
}

// dashHTML is the whole dashboard. Colors are the validated dark-mode
// palette (surface #1a1a19; ink #ffffff/#c3c2b7/#898781; grid #2c2c2a;
// baseline #383835; series blue #3987e5 and orange #d95926; status good
// #0ca30c / warning #fab219). One measure per chart — loss and
// steps/sec never share an axis.
const dashHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>buckwild · live</title>
<style>
  :root {
    --surface: #1a1a19; --panel: #222221;
    --ink: #ffffff; --ink2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --blue: #3987e5; --orange: #d95926;
    --good: #0ca30c; --warn: #fab219;
  }
  * { box-sizing: border-box; }
  body { margin: 0; padding: 16px 20px; background: var(--surface); color: var(--ink2);
         font: 13px/1.45 ui-sans-serif, system-ui, sans-serif; }
  h1 { font-size: 15px; color: var(--ink); margin: 0; font-weight: 600; }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 14px; }
  #status { color: var(--muted); font-size: 12px; }
  #status::before { content: "●"; margin-right: 5px; color: var(--warn); }
  #status.ok::before { color: var(--good); }
  .grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); gap: 14px; }
  .card { background: var(--panel); border: 1px solid var(--grid); border-radius: 6px;
          padding: 12px 14px; }
  .card h2 { font-size: 12px; font-weight: 600; color: var(--ink2); margin: 0 0 8px;
             text-transform: uppercase; letter-spacing: .04em; }
  .card.hidden { display: none; }
  svg text { font: 11px ui-sans-serif, system-ui, sans-serif; fill: var(--muted); }
  svg .val { fill: var(--ink2); }
  table { border-collapse: collapse; width: 100%; font-size: 12px; }
  th { text-align: right; color: var(--muted); font-weight: 500; padding: 3px 8px;
       border-bottom: 1px solid var(--baseline); }
  th:first-child, td:first-child { text-align: left; }
  td { text-align: right; padding: 3px 8px; border-bottom: 1px solid var(--grid);
       font-variant-numeric: tabular-nums; }
  .tiles { display: flex; gap: 18px; flex-wrap: wrap; }
  .tile .v { font-size: 22px; color: var(--ink); font-variant-numeric: tabular-nums; }
  .tile .k { font-size: 11px; color: var(--muted); }
</style>
</head>
<body>
<header><h1>buckwild live dashboard</h1><span id="status">connecting</span></header>
<div class="grid">
  <div class="card hidden" id="card-loss"><h2>Loss per window</h2><svg id="loss" width="100%" height="150" viewBox="0 0 360 150" preserveAspectRatio="none"></svg></div>
  <div class="card hidden" id="card-sps"><h2>Steps per second</h2><svg id="sps" width="100%" height="150" viewBox="0 0 360 150" preserveAspectRatio="none"></svg></div>
  <div class="card hidden" id="card-stale"><h2>Staleness (updates between read and write)</h2><svg id="stale" width="100%" height="150" viewBox="0 0 360 150" preserveAspectRatio="none"></svg></div>
  <div class="card hidden" id="card-serve"><h2>Serve latency</h2><div class="tiles" id="serve"></div></div>
  <div class="card hidden" id="card-nodes"><h2>Cluster nodes</h2><div id="nodes"></div></div>
</div>
<script>
"use strict";
const $ = id => document.getElementById(id);
const show = (id, on) => $("card-" + id).classList.toggle("hidden", !on);
const fmt = v => {
  if (!isFinite(v)) return "—";
  const a = Math.abs(v);
  if (a >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (a >= 1e4) return (v / 1e3).toFixed(1) + "k";
  if (a >= 100 || v === Math.round(v)) return v.toFixed(0);
  return v.toPrecision(3);
};

// quantile walks a {buckets:[{lo,n}],count} histogram to the bucket
// containing the p-th sample (same approximation the Go side uses).
function quantile(h, p) {
  if (!h || !h.count) return NaN;
  const target = p * h.count;
  let cum = 0;
  for (const b of h.buckets || []) {
    cum += b.n;
    if (cum >= target) return b.lo;
  }
  return h.max;
}

// line draws a single-series line chart: recessive gridlines, a 2px
// series stroke, and a direct label on the latest value. One measure,
// one axis — never a second scale.
function line(svg, pts, color) {
  const W = 360, H = 150, L = 44, R = 12, T = 10, B = 18;
  let lo = Math.min(...pts.map(p => p.y)), hi = Math.max(...pts.map(p => p.y));
  if (!isFinite(lo)) { svg.innerHTML = ""; return; }
  if (hi === lo) { hi += 1; lo -= 1; }
  const pad = (hi - lo) * 0.08; lo -= pad; hi += pad;
  const xlo = pts[0].x, xhi = pts[pts.length - 1].x || 1;
  const X = x => L + (W - L - R) * (xhi === xlo ? 0.5 : (x - xlo) / (xhi - xlo));
  const Y = y => T + (H - T - B) * (1 - (y - lo) / (hi - lo));
  let s = "";
  for (let i = 0; i <= 3; i++) {
    const v = lo + (hi - lo) * i / 3, y = Y(v).toFixed(1);
    s += '<line x1="' + L + '" y1="' + y + '" x2="' + (W - R) + '" y2="' + y +
         '" stroke="' + (i ? "#2c2c2a" : "#383835") + '"/>' +
         '<text x="' + (L - 5) + '" y="' + (+y + 3.5) + '" text-anchor="end">' + fmt(v) + "</text>";
  }
  s += '<text x="' + L + '" y="' + (H - 4) + '">' + fmt(xlo) + "</text>" +
       '<text x="' + (W - R) + '" y="' + (H - 4) + '" text-anchor="end">epoch ' + fmt(xhi) + "</text>";
  const d = pts.map((p, i) => (i ? "L" : "M") + X(p.x).toFixed(1) + " " + Y(p.y).toFixed(1)).join(" ");
  s += '<path d="' + d + '" fill="none" stroke="' + color + '" stroke-width="2"/>';
  const last = pts[pts.length - 1];
  s += '<circle cx="' + X(last.x).toFixed(1) + '" cy="' + Y(last.y).toFixed(1) +
       '" r="3.5" fill="' + color + '" stroke="#1a1a19" stroke-width="2">' +
       "<title>epoch " + last.x + ": " + last.y + "</title></circle>" +
       '<text class="val" x="' + (X(last.x) - 6).toFixed(1) + '" y="' + (Y(last.y) - 7).toFixed(1) +
       '" text-anchor="end">' + fmt(last.y) + "</text>";
  svg.innerHTML = s;
}

// bars draws the staleness histogram: one hue (the chart has one
// series), 2px surface gaps between bars, direct counts on the tallest.
function bars(svg, hist) {
  const bs = (hist.buckets || []).filter(b => b.n > 0);
  if (!bs.length) { svg.innerHTML = ""; return; }
  const W = 360, H = 150, T = 10, B = 20, L = 8, R = 8;
  const max = Math.max(...bs.map(b => b.n));
  const bw = (W - L - R) / bs.length;
  let s = "";
  bs.forEach((b, i) => {
    const h = Math.max(2, (H - T - B) * b.n / max);
    const x = L + i * bw + 1, y = H - B - h;
    s += '<rect x="' + x.toFixed(1) + '" y="' + y.toFixed(1) + '" width="' + (bw - 2).toFixed(1) +
         '" height="' + h.toFixed(1) + '" rx="2" fill="#3987e5"><title>staleness ≥ ' + b.lo +
         ": " + b.n + "</title></rect>" +
         '<text x="' + (x + (bw - 2) / 2).toFixed(1) + '" y="' + (H - 6) +
         '" text-anchor="middle">' + fmt(b.lo) + "</text>";
    if (b.n === max) s += '<text class="val" x="' + (x + (bw - 2) / 2).toFixed(1) + '" y="' +
         (y - 4).toFixed(1) + '" text-anchor="middle">' + fmt(b.n) + "</text>";
  });
  s += '<line x1="' + L + '" y1="' + (H - B) + '" x2="' + (W - R) + '" y2="' + (H - B) +
       '" stroke="#383835"/>';
  svg.innerHTML = s;
}

function tile(k, v) {
  return '<div class="tile"><div class="v">' + v + '</div><div class="k">' + k + "</div></div>";
}

function render(s) {
  const win = s.series && s.series.windows && s.series.windows.length ? s.series.windows : null;
  show("loss", !!win); show("sps", !!win);
  if (win) {
    line($("loss"), win.map(w => ({x: w.end_epoch, y: w.loss})), "#3987e5");
    line($("sps"), win.map(w => ({x: w.end_epoch, y: w.steps_per_sec})), "#d95926");
  }
  let stale = null;
  if (win) {
    const last = win[win.length - 1];
    if (last.staleness && last.staleness.count) stale = last.staleness;
  }
  if (!stale && s.cluster && s.cluster.staleness && s.cluster.staleness.count) stale = s.cluster.staleness;
  show("stale", !!stale);
  if (stale) bars($("stale"), stale);
  show("serve", !!(s.serve && s.serve.requests));
  if (s.serve && s.serve.requests) {
    const h = s.serve.latency_us;
    $("serve").innerHTML =
      tile("p50 µs", fmt(quantile(h, 0.5))) + tile("p90 µs", fmt(quantile(h, 0.9))) +
      tile("p99 µs", fmt(quantile(h, 0.99))) + tile("requests", fmt(s.serve.requests)) +
      tile("in flight", fmt(s.serve.in_flight || 0)) + tile("model epoch", fmt(s.serve.model_epoch));
  }
  const nodes = s.cluster && s.cluster.per_node && s.cluster.per_node.length ? s.cluster.per_node : null;
  show("nodes", !!nodes);
  if (nodes) {
    let t = "<table><tr><th>node</th><th>updates</th><th>wire KiB</th><th>compute s</th>" +
            "<th>comm s</th><th>stale p50</th><th>stale p99</th></tr>";
    for (const n of nodes)
      t += "<tr><td>" + n.node + "</td><td>" + fmt(n.updates) + "</td><td>" +
           fmt(n.wire_bytes / 1024) + "</td><td>" + fmt(n.compute_seconds) + "</td><td>" +
           fmt(n.comm_seconds) + "</td><td>" + fmt(n.staleness_p50) + "</td><td>" +
           fmt(n.staleness_p99) + "</td></tr>";
    $("nodes").innerHTML = t + "</table>";
  }
  const st = $("status");
  st.classList.add("ok");
  st.textContent = "live · " + new Date(s.time).toLocaleTimeString();
}

const es = new EventSource(location.pathname.replace(/\/$/, "") + "/events");
es.addEventListener("snapshot", e => render(JSON.parse(e.data)));
es.onerror = () => { const st = $("status"); st.classList.remove("ok"); st.textContent = "reconnecting"; };
</script>
</body>
</html>
`
