package obs

import (
	"io"
	"net/http"
	"sync/atomic"
)

// ClusterMetrics keeps live, scrape-ready per-node counters of a running
// cluster simulation: updates landed, wire bytes sent and the staleness
// histogram of each simulated node. The simulation records from its
// single event-loop goroutine; scrapes read every counter atomically, so
// a /metrics request never blocks (or skews) the simulation. A nil
// *ClusterMetrics is fully inert, the package's zero-cost convention.
type ClusterMetrics struct {
	nodes atomic.Pointer[[]clusterNodeLive]
}

type clusterNodeLive struct {
	updates   atomic.Uint64
	wireBytes atomic.Uint64
	staleness Histogram
}

// Reset sizes the collector for a run of n nodes, discarding any
// previous run's counters.
func (m *ClusterMetrics) Reset(n int) {
	if m == nil || n <= 0 {
		return
	}
	nodes := make([]clusterNodeLive, n)
	m.nodes.Store(&nodes)
}

// Nodes returns the node count of the current run (0 before Reset).
func (m *ClusterMetrics) Nodes() int {
	if m == nil {
		return 0
	}
	if p := m.nodes.Load(); p != nil {
		return len(*p)
	}
	return 0
}

func (m *ClusterMetrics) node(i int) *clusterNodeLive {
	if m == nil {
		return nil
	}
	p := m.nodes.Load()
	if p == nil || i < 0 || i >= len(*p) {
		return nil
	}
	return &(*p)[i]
}

// ObserveUpdate records one model update landed by node i with the given
// staleness.
func (m *ClusterMetrics) ObserveUpdate(i int, staleness uint64) {
	if n := m.node(i); n != nil {
		n.updates.Add(1)
		n.staleness.Observe(staleness)
	}
}

// AddWireBytes attributes bytes put on the interconnect to node i.
func (m *ClusterMetrics) AddWireBytes(i int, bytes uint64) {
	if n := m.node(i); n != nil {
		n.wireBytes.Add(bytes)
	}
}

// WriteProm renders the per-node counters in the Prometheus text format
// with a node label per sample. Staleness is exported as per-node p50/p99
// gauges (labelled histograms would need a label-aware writer; the
// quantiles are what the staleness-compensation knob is tuned against).
func (m *ClusterMetrics) WriteProm(w io.Writer) error {
	if m == nil {
		return nil
	}
	p := m.nodes.Load()
	if p == nil || len(*p) == 0 {
		return nil
	}
	pw := newPromWriter(w)
	pw.header("buckwild_cluster_node_updates_total", "counter", "Model updates landed per simulated node.")
	for i := range *p {
		pw.printf("buckwild_cluster_node_updates_total{node=\"%d\"} %d\n", i, (*p)[i].updates.Load())
	}
	pw.header("buckwild_cluster_node_wire_bytes_total", "counter", "Interconnect bytes sent per simulated node.")
	for i := range *p {
		pw.printf("buckwild_cluster_node_wire_bytes_total{node=\"%d\"} %d\n", i, (*p)[i].wireBytes.Load())
	}
	pw.header("buckwild_cluster_node_staleness_p50", "gauge", "Median update staleness per simulated node.")
	for i := range *p {
		pw.printf("buckwild_cluster_node_staleness_p50{node=\"%d\"} %s\n", i, promFloat((*p)[i].staleness.Snapshot().Quantile(0.5)))
	}
	pw.header("buckwild_cluster_node_staleness_p99", "gauge", "p99 update staleness per simulated node.")
	for i := range *p {
		pw.printf("buckwild_cluster_node_staleness_p99{node=\"%d\"} %s\n", i, promFloat((*p)[i].staleness.Snapshot().Quantile(0.99)))
	}
	return pw.err
}

// Snapshot assembles a live ClusterStats view of the current run — the
// per-node counters plus a merged staleness histogram — for consumers
// that want the struct form mid-run (the /debug/dash feed). Totals the
// wire meter only knows at the end (sim seconds, byte breakdown) stay
// zero. Nil and pre-Reset receivers return nil.
func (m *ClusterMetrics) Snapshot() *ClusterStats {
	if m == nil {
		return nil
	}
	p := m.nodes.Load()
	if p == nil || len(*p) == 0 {
		return nil
	}
	stats := &ClusterStats{Nodes: len(*p)}
	for i := range *p {
		n := &(*p)[i]
		hist := n.staleness.Snapshot()
		ns := NodeStats{
			Node:         i,
			Updates:      n.updates.Load(),
			WireBytes:    n.wireBytes.Load(),
			Staleness:    hist,
			StalenessP50: hist.Quantile(0.5),
			StalenessP99: hist.Quantile(0.99),
		}
		stats.PerNode = append(stats.PerNode, ns)
		stats.WireBytes += ns.WireBytes
		stats.Staleness.Merge(hist)
	}
	return stats
}

// ServeHTTP implements http.Handler, serving the Prometheus text format.
func (m *ClusterMetrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WriteProm(w)
}
