package obs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// This file holds the numerical-health half of the run statistics: the
// snapshot types the engine fills from its per-worker counting shards
// (saturation per clamp site, signed rounding bias, underflows, the
// per-epoch weight-distribution pass), the per-epoch HealthHooks
// callback, and the HealthWatchdog divergence detector. The paper's §3
// argument — that saturation and rounding bias, not raw bit width, drive
// low-precision accuracy gaps — becomes a set of live metrics here.

// NumStats is the numerical-health snapshot of one training run. The
// engine aggregates it from per-worker counting shards after the workers
// join; Merge folds several runs together for sweep-level reports.
type NumStats struct {
	// SatBySite counts saturation (clamp) events by arithmetic site
	// (fixed.Site names: "saturate" for raw model-write clamps,
	// "muladd8to16" for the vpmaddubsw pair saturation, "quantize" for
	// float-to-fixed conversions hitting the format bounds, ...).
	SatBySite map[string]uint64 `json:"saturations_by_site,omitempty"`
	// Saturations is the total across all sites.
	Saturations uint64 `json:"saturations"`
	// Underflows counts nonzero gradient contributions quantized to zero
	// (dropped whole updates and per-element deltas that rounded away).
	Underflows uint64 `json:"underflows"`
	// Bias is the measured signed rounding error of quantized writes.
	Bias RoundingBias `json:"rounding_bias"`
	// Weights is the model-weight distribution at the last observed
	// epoch boundary (nil when the run collected no weight pass).
	Weights *WeightStats `json:"weights,omitempty"`
}

// RoundingBias accumulates the signed quantization error (rounded −
// exact, in quanta of the destination format) over the writes that fed
// it. Unbiased (stochastic) rounding keeps the mean near zero; biased
// (nearest) rounding lets it drift — the paper's §3 distinction as a
// measurement.
type RoundingBias struct {
	// Mode names the rounding discipline the run used (a kernels
	// QuantKind name, or "comm-grid" for synchronous communication
	// quantization).
	Mode string `json:"mode,omitempty"`
	// Samples counts the writes measured; SumQuanta is their summed
	// signed error in quanta.
	Samples   uint64  `json:"samples"`
	SumQuanta float64 `json:"sum_quanta"`
}

// MeanQuanta returns the mean signed rounding error in quanta (0 when
// nothing was measured).
func (b RoundingBias) MeanQuanta() float64 {
	if b.Samples == 0 {
		return 0
	}
	return b.SumQuanta / float64(b.Samples)
}

// merge folds other into b, keeping the first non-empty mode name (a
// sweep mixing modes reports the first and keeps exact totals).
func (b *RoundingBias) merge(other RoundingBias) {
	if b.Mode == "" {
		b.Mode = other.Mode
	}
	b.Samples += other.Samples
	b.SumQuanta += other.SumQuanta
}

// WeightStats describes the model-weight distribution at one epoch
// boundary: extrema and mean in real units, the count of weights pinned
// at the format bounds, and a log2-bucketed magnitude histogram in
// quanta (float models use quanta of 2^-24).
type WeightStats struct {
	// Epoch is the (1-based) epoch the pass observed.
	Epoch int `json:"epoch"`
	// Count is the number of weights observed.
	Count int `json:"count"`
	// Min, Max and Mean are over the dequantized (real) weight values,
	// skipping non-finite floats.
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// AtBounds counts weights sitting exactly at the format's
	// representable extremes — saturated weights the next clamp cannot
	// move further.
	AtBounds uint64 `json:"at_bounds"`
	// NonFinite counts NaN/Inf weights (float models only).
	NonFinite uint64 `json:"non_finite,omitempty"`
	// Magnitude is the |weight| histogram in quanta (log2 buckets).
	Magnitude HistSnapshot `json:"magnitude"`
}

// merge folds other into w (weighted mean, component-wise extrema; Epoch
// keeps the latest).
func (w *WeightStats) merge(other *WeightStats) {
	if other == nil {
		return
	}
	if other.Epoch > w.Epoch {
		w.Epoch = other.Epoch
	}
	if w.Count == 0 {
		w.Min, w.Max = other.Min, other.Max
	} else if other.Count > 0 {
		w.Min = math.Min(w.Min, other.Min)
		w.Max = math.Max(w.Max, other.Max)
	}
	if t := w.Count + other.Count; t > 0 {
		w.Mean = (w.Mean*float64(w.Count) + other.Mean*float64(other.Count)) / float64(t)
	}
	w.Count += other.Count
	w.AtBounds += other.AtBounds
	w.NonFinite += other.NonFinite
	w.Magnitude.Merge(other.Magnitude)
}

// Merge folds other into s.
func (s *NumStats) Merge(other *NumStats) {
	if other == nil {
		return
	}
	if len(other.SatBySite) > 0 && s.SatBySite == nil {
		s.SatBySite = make(map[string]uint64, len(other.SatBySite))
	}
	for k, v := range other.SatBySite {
		s.SatBySite[k] += v
	}
	s.Saturations += other.Saturations
	s.Underflows += other.Underflows
	s.Bias.merge(other.Bias)
	if other.Weights != nil {
		if s.Weights == nil {
			s.Weights = &WeightStats{}
		}
		s.Weights.merge(other.Weights)
	}
}

// HealthInfo is the per-epoch numerical-health callback payload. All
// counters are cumulative over the run (attempt), so rates computed from
// one HealthInfo describe the run so far, not just the last epoch.
type HealthInfo struct {
	// Epoch is the number of completed epochs (1-based); Loss the
	// full-precision training loss after it.
	Epoch int
	Loss  float64
	// Steps and ModelWrites are the engine's cumulative counters.
	Steps       uint64
	ModelWrites uint64
	// Saturations, Underflows and the bias accumulator mirror NumStats.
	Saturations   uint64
	Underflows    uint64
	BiasSamples   uint64
	BiasSumQuanta float64
	// WeightsAtBounds and WeightCount come from the epoch's weight pass.
	WeightsAtBounds uint64
	WeightCount     int
}

// SatRate returns cumulative saturation events per model write. A dense
// write clamps per element, so values can exceed 1; sustained rates near
// or above one mean most writes are hitting a format bound.
func (h HealthInfo) SatRate() float64 {
	if h.ModelWrites == 0 {
		return 0
	}
	return float64(h.Saturations) / float64(h.ModelWrites)
}

// BiasMeanQuanta returns the cumulative mean signed rounding error.
func (h HealthInfo) BiasMeanQuanta() float64 {
	if h.BiasSamples == 0 {
		return 0
	}
	return h.BiasSumQuanta / float64(h.BiasSamples)
}

// HealthHooks is the optional numerical-health extension of Hooks: a
// Hooks implementation that also implements HealthHooks receives
// OnHealth after each epoch of a run collecting numerical health.
// Extending via a separate optional interface keeps existing Hooks
// implementations compiling unchanged (the LifecycleHooks pattern).
type HealthHooks interface {
	// OnHealth fires on the coordinating goroutine after OnEpoch.
	OnHealth(HealthInfo)
}

// DivergenceInfo describes a detected numerical divergence.
type DivergenceInfo struct {
	// Epoch is the epoch boundary at which the detector fired.
	Epoch int `json:"epoch"`
	// Reason says which threshold tripped, in words.
	Reason string `json:"reason"`
	// Loss, SatRate and BiasMeanQuanta are the values at detection.
	Loss           float64 `json:"loss"`
	SatRate        float64 `json:"sat_rate"`
	BiasMeanQuanta float64 `json:"bias_mean_quanta"`
}

// DivergenceHooks is the optional divergence extension of Hooks, fired
// by the HealthWatchdog (same optional-interface pattern as
// LifecycleHooks and HealthHooks).
type DivergenceHooks interface {
	// OnDivergence fires once, on the goroutine that detected the
	// divergence, before the run's context is cancelled.
	OnDivergence(DivergenceInfo)
}

// ErrDivergence is the sentinel every watchdog cancellation matches:
// errors.Is(err, ErrDivergence) holds for the run error of a cancelled
// run (the concrete cause is a *DivergenceError carrying the details).
var ErrDivergence = errors.New("obs: numerical divergence detected")

// DivergenceError is the context cancellation cause the HealthWatchdog
// installs; it carries the detection details and matches ErrDivergence.
type DivergenceError struct {
	Info DivergenceInfo
}

// Error implements error.
func (e *DivergenceError) Error() string {
	return fmt.Sprintf("obs: numerical divergence at epoch %d: %s", e.Info.Epoch, e.Info.Reason)
}

// Is matches the ErrDivergence sentinel.
func (e *DivergenceError) Is(target error) bool { return target == ErrDivergence }

// Default HealthWatchdog thresholds.
const (
	// DefaultMaxSatRate is the cumulative saturations-per-model-write
	// threshold: half of all writes clamping is far beyond the benign
	// occasional clamp low-precision training tolerates.
	DefaultMaxSatRate = 0.5
	// DefaultMaxBiasMean is the |mean signed rounding error| threshold
	// in quanta. Unbiased rounding concentrates near 0; a sustained mean
	// near the worst case (0.5 quanta) means systematic drift.
	DefaultMaxBiasMean = 0.25
)

// HealthWatchdog is a Hooks middleware that detects numerical divergence
// — NaN/Inf loss at any epoch, or saturation-rate / rounding-bias drift
// beyond thresholds once the grace period has passed — and stops the run:
// it fires OnDivergence on the wrapped hooks (if implemented) and cancels
// the run's context with a *DivergenceError cause, so the training call
// returns an error matching ErrDivergence. It fires at most once.
//
// The watchdog needs the run to collect numerical health (the rate
// thresholds see only OnHealth); NaN/Inf detection works regardless.
type HealthWatchdog struct {
	// MaxSatRate and MaxBiasMean override the default thresholds when
	// positive.
	MaxSatRate  float64
	MaxBiasMean float64
	// MinEpochs is the grace period: rate thresholds are not checked
	// before this many epochs completed (default 1; NaN/Inf loss always
	// trips immediately).
	MinEpochs int
	// Cancel is the cancel-cause function of the run's context; required
	// for the watchdog to actually stop the run.
	Cancel context.CancelCauseFunc
	// Bundle, when non-nil, gets a debug bundle triggered at trip time,
	// before the run's context is cancelled — so the bundle's flight and
	// series sections still show the diverging run live.
	Bundle *Bundler
	// Next receives every callback unchanged (nil: none). If it also
	// implements HealthHooks, LifecycleHooks or DivergenceHooks those
	// are forwarded/fired too, so the watchdog can wrap e.g. a
	// LiveMetrics without hiding its other capabilities.
	Next Hooks

	fired atomic.Bool
}

// OnEpoch checks the loss for NaN/Inf and forwards.
func (wd *HealthWatchdog) OnEpoch(ei EpochInfo) {
	if math.IsNaN(ei.Loss) || math.IsInf(ei.Loss, 0) {
		wd.trip(DivergenceInfo{
			Epoch:  ei.Epoch,
			Reason: fmt.Sprintf("non-finite training loss %v", ei.Loss),
			Loss:   ei.Loss,
		})
	}
	if wd.Next != nil {
		wd.Next.OnEpoch(ei)
	}
}

// OnStep forwards.
func (wd *HealthWatchdog) OnStep(si StepInfo) {
	if wd.Next != nil {
		wd.Next.OnStep(si)
	}
}

// OnWorker forwards.
func (wd *HealthWatchdog) OnWorker(wi WorkerInfo) {
	if wd.Next != nil {
		wd.Next.OnWorker(wi)
	}
}

// OnHealth checks the rate thresholds and forwards.
func (wd *HealthWatchdog) OnHealth(hi HealthInfo) {
	minEpochs := wd.MinEpochs
	if minEpochs <= 0 {
		minEpochs = 1
	}
	if hi.Epoch >= minEpochs {
		maxSat := wd.MaxSatRate
		if maxSat <= 0 {
			maxSat = DefaultMaxSatRate
		}
		maxBias := wd.MaxBiasMean
		if maxBias <= 0 {
			maxBias = DefaultMaxBiasMean
		}
		switch {
		case hi.SatRate() > maxSat:
			wd.trip(DivergenceInfo{
				Epoch:          hi.Epoch,
				Reason:         fmt.Sprintf("saturation rate %.3g per model write exceeds %.3g", hi.SatRate(), maxSat),
				Loss:           hi.Loss,
				SatRate:        hi.SatRate(),
				BiasMeanQuanta: hi.BiasMeanQuanta(),
			})
		case math.Abs(hi.BiasMeanQuanta()) > maxBias:
			wd.trip(DivergenceInfo{
				Epoch:          hi.Epoch,
				Reason:         fmt.Sprintf("mean rounding bias %.3g quanta exceeds %.3g", hi.BiasMeanQuanta(), maxBias),
				Loss:           hi.Loss,
				SatRate:        hi.SatRate(),
				BiasMeanQuanta: hi.BiasMeanQuanta(),
			})
		}
	}
	if hh, ok := wd.Next.(HealthHooks); ok {
		hh.OnHealth(hi)
	}
}

// OnCheckpoint forwards the lifecycle event to the wrapped hooks.
func (wd *HealthWatchdog) OnCheckpoint(ci CheckpointInfo) {
	if lh, ok := wd.Next.(LifecycleHooks); ok {
		lh.OnCheckpoint(ci)
	}
}

// OnRetry forwards the lifecycle event to the wrapped hooks.
func (wd *HealthWatchdog) OnRetry(ri RetryInfo) {
	if lh, ok := wd.Next.(LifecycleHooks); ok {
		lh.OnRetry(ri)
	}
}

// Fired reports whether the watchdog has detected a divergence.
func (wd *HealthWatchdog) Fired() bool { return wd.fired.Load() }

// trip fires the divergence exactly once: OnDivergence on the wrapped
// hooks, then the context cancellation with the diagnostic cause.
func (wd *HealthWatchdog) trip(di DivergenceInfo) {
	if !wd.fired.CompareAndSwap(false, true) {
		return
	}
	if dh, ok := wd.Next.(DivergenceHooks); ok {
		dh.OnDivergence(di)
	}
	wd.Bundle.Trigger("divergence", fmt.Sprintf("epoch %d: %s", di.Epoch, di.Reason))
	if wd.Cancel != nil {
		wd.Cancel(&DivergenceError{Info: di})
	}
}
