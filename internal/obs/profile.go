package obs

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file holds the continuous profiler: a background loop that
// captures CPU, heap, mutex and goroutine pprof profiles on a fixed
// cadence into a bounded on-disk ring, so the profile covering the
// minutes before an anomaly already exists when the anomaly fires —
// no "re-run with -cpuprofile" round trip. The ring is budgeted in
// bytes: after every capture the oldest files are evicted until the
// directory fits the budget again, so a long-lived daemon profiles
// forever in constant disk.
//
// CaptureNow takes one capture round on demand (the debug-bundle writer
// uses it so a bundle always embeds fresh profiles), sharing a mutex
// with the background loop so captures never overlap — in particular,
// two CPU profiles can never be started at once, which the runtime
// forbids process-wide.
//
// A nil *Profiler is fully inert, the package's zero-cost convention.

// Default ProfileConfig values.
const (
	// DefaultProfileInterval is the background capture cadence.
	DefaultProfileInterval = 30 * time.Second
	// DefaultProfileCPUDuration is how long each CPU profile samples.
	DefaultProfileCPUDuration = 2 * time.Second
	// DefaultProfileMaxBytes is the on-disk ring budget.
	DefaultProfileMaxBytes = 64 << 20
	// DefaultMutexFraction is the runtime mutex-profile sampling rate the
	// profiler installs while running (1/16 of contention events).
	DefaultMutexFraction = 16
)

// ProfileConfig configures a Profiler. Only Dir is required.
type ProfileConfig struct {
	// Dir is the profile ring directory; created if missing.
	Dir string
	// Interval is the background capture cadence (default 30s). The
	// loop sleeps Interval between capture rounds, so the effective
	// period is Interval + CPUDuration.
	Interval time.Duration
	// CPUDuration is how long each round's CPU profile samples (default
	// 2s, clamped to Interval). Zero disables CPU capture entirely —
	// useful when the process already runs its own CPU profile, which
	// the runtime only allows one of.
	CPUDuration time.Duration
	// MaxBytes bounds the ring's total on-disk size (default 64 MiB).
	// Files from the newest capture round are never evicted, so a
	// budget smaller than one round degrades to keeping exactly the
	// newest round.
	MaxBytes int64
	// MutexFraction is installed via runtime.SetMutexProfileFraction for
	// the profiler's lifetime and restored on Stop (default 16; negative
	// leaves the runtime setting untouched).
	MutexFraction int
	// Logger, when non-nil, receives capture failures (Warn) and
	// eviction decisions (Debug). Nil is silent.
	Logger *slog.Logger
}

func (c *ProfileConfig) fill() error {
	if c.Dir == "" {
		return fmt.Errorf("obs: profiler needs a directory")
	}
	if c.Interval <= 0 {
		c.Interval = DefaultProfileInterval
	}
	if c.CPUDuration < 0 {
		return fmt.Errorf("obs: profiler CPUDuration %v is negative", c.CPUDuration)
	}
	if c.CPUDuration > c.Interval {
		c.CPUDuration = c.Interval
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = DefaultProfileMaxBytes
	}
	if c.MutexFraction == 0 {
		c.MutexFraction = DefaultMutexFraction
	}
	return nil
}

// ProfileFile describes one on-disk profile in the ring.
type ProfileFile struct {
	// Kind is the profile kind ("cpu", "heap", "goroutine", "mutex").
	Kind string `json:"kind"`
	// Path is the file's location; Bytes its size; Time its capture time
	// (from the file name, so it survives copies).
	Path  string    `json:"path"`
	Bytes int64     `json:"bytes"`
	Time  time.Time `json:"time"`
}

// Profiler captures pprof profiles on a cadence into a bounded on-disk
// ring. All methods are safe for concurrent use and safe on a nil
// receiver (no-ops).
type Profiler struct {
	cfg ProfileConfig

	// mu serializes capture rounds (background loop vs CaptureNow) and
	// the eviction scan.
	mu sync.Mutex

	startOnce sync.Once
	stopOnce  sync.Once
	quit      chan struct{}
	done      chan struct{}

	prevMutexFrac int
	rounds        uint64
}

// NewProfiler validates cfg and creates the ring directory. The
// background loop does not run until Start; CaptureNow works
// immediately.
func NewProfiler(cfg ProfileConfig) (*Profiler, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profiler: %w", err)
	}
	return &Profiler{cfg: cfg, quit: make(chan struct{}), done: make(chan struct{})}, nil
}

// Start launches the background capture loop. Idempotent; a nil
// receiver no-ops.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.startOnce.Do(func() {
		if p.cfg.MutexFraction >= 0 {
			p.prevMutexFrac = runtime.SetMutexProfileFraction(p.cfg.MutexFraction)
		}
		go p.loop()
	})
}

// Stop ends the background loop and waits for an in-progress capture
// round to finish. Safe to call more than once and on a nil receiver.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.quit)
		// If Start never ran, consume the once so a later Start can't
		// launch the loop, and close done ourselves so the wait below
		// returns immediately.
		p.startOnce.Do(func() { close(p.done) })
		<-p.done
	})
}

func (p *Profiler) loop() {
	defer close(p.done)
	defer func() {
		if p.cfg.MutexFraction >= 0 {
			runtime.SetMutexProfileFraction(p.prevMutexFrac)
		}
	}()
	for {
		if _, err := p.CaptureNow(); err != nil && p.cfg.Logger != nil {
			p.cfg.Logger.Warn("profile capture failed", slog.String("error", err.Error()))
		}
		select {
		case <-p.quit:
			return
		case <-time.After(p.cfg.Interval):
		}
	}
}

// CaptureNow takes one capture round immediately — CPU (for
// CPUDuration), heap, goroutine and mutex — writes the files into the
// ring, evicts past the byte budget, and returns the round's files. It
// serializes against the background loop; a nil receiver returns nil.
// A partially failing round (e.g. the CPU profile is already taken by
// someone else) still writes the kinds that succeeded and reports the
// first failure.
func (p *Profiler) CaptureNow() ([]ProfileFile, error) {
	if p == nil {
		return nil, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	p.rounds++
	var files []ProfileFile
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	write := func(kind string, fill func(f *os.File) error) {
		path := filepath.Join(p.cfg.Dir, profileName(kind, now))
		f, err := os.Create(path)
		if err != nil {
			fail(err)
			return
		}
		if err := fill(f); err != nil {
			f.Close()
			os.Remove(path)
			fail(fmt.Errorf("obs: %s profile: %w", kind, err))
			return
		}
		if err := f.Close(); err != nil {
			fail(err)
			return
		}
		st, err := os.Stat(path)
		if err != nil {
			fail(err)
			return
		}
		files = append(files, ProfileFile{Kind: kind, Path: path, Bytes: st.Size(), Time: now})
	}
	if p.cfg.CPUDuration > 0 {
		write("cpu", func(f *os.File) error {
			if err := pprof.StartCPUProfile(f); err != nil {
				return err
			}
			select {
			case <-p.quit:
			case <-time.After(p.cfg.CPUDuration):
			}
			pprof.StopCPUProfile()
			return nil
		})
	}
	for _, kind := range []string{"heap", "goroutine", "mutex"} {
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		write(kind, func(f *os.File) error { return prof.WriteTo(f, 0) })
	}
	p.evictLocked(files)
	return files, firstErr
}

// Rounds returns the number of capture rounds taken so far.
func (p *Profiler) Rounds() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rounds
}

// Inventory lists the ring's on-disk profiles, oldest first. A nil
// receiver returns nil.
func (p *Profiler) Inventory() []ProfileFile {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.scanLocked()
}

// Newest returns the most recent on-disk profile of the given kind, or
// a zero ProfileFile when none exists.
func (p *Profiler) Newest(kind string) ProfileFile {
	var out ProfileFile
	for _, f := range p.Inventory() {
		if f.Kind == kind {
			out = f // inventory is oldest-first; keep overwriting
		}
	}
	return out
}

// profileName encodes kind and capture time so the inventory sorts
// chronologically by name and survives copies: kind-<unixnano>.pprof.
func profileName(kind string, t time.Time) string {
	return fmt.Sprintf("%s-%020d.pprof", kind, t.UnixNano())
}

// parseProfileName inverts profileName; ok is false for foreign files.
func parseProfileName(name string) (kind string, t time.Time, ok bool) {
	base, found := strings.CutSuffix(name, ".pprof")
	if !found {
		return "", time.Time{}, false
	}
	i := strings.LastIndexByte(base, '-')
	if i <= 0 {
		return "", time.Time{}, false
	}
	var ns int64
	if _, err := fmt.Sscanf(base[i+1:], "%d", &ns); err != nil {
		return "", time.Time{}, false
	}
	return base[:i], time.Unix(0, ns), true
}

// scanLocked lists the ring's files oldest-first. Callers hold mu.
func (p *Profiler) scanLocked() []ProfileFile {
	entries, err := os.ReadDir(p.cfg.Dir)
	if err != nil {
		return nil
	}
	var files []ProfileFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		kind, t, ok := parseProfileName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, ProfileFile{
			Kind: kind, Path: filepath.Join(p.cfg.Dir, e.Name()),
			Bytes: info.Size(), Time: t,
		})
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].Time.Equal(files[j].Time) {
			return files[i].Time.Before(files[j].Time)
		}
		return files[i].Path < files[j].Path
	})
	return files
}

// evictLocked removes the oldest ring files until the directory fits
// MaxBytes again. The files of the round just captured (keep) are never
// evicted, so the ring always holds at least one complete round even
// under a budget smaller than a round. Callers hold mu.
func (p *Profiler) evictLocked(keep []ProfileFile) {
	keepSet := make(map[string]bool, len(keep))
	for _, f := range keep {
		keepSet[f.Path] = true
	}
	files := p.scanLocked()
	var total int64
	for _, f := range files {
		total += f.Bytes
	}
	for _, f := range files {
		if total <= p.cfg.MaxBytes {
			return
		}
		if keepSet[f.Path] {
			continue
		}
		if err := os.Remove(f.Path); err != nil {
			continue
		}
		total -= f.Bytes
		if p.cfg.Logger != nil {
			p.cfg.Logger.Debug("evicted profile past disk budget",
				slog.String("path", f.Path), slog.Int64("bytes", f.Bytes))
		}
	}
}
