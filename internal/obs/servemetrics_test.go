package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

func TestServeMetricsProm(t *testing.T) {
	m := &ServeMetrics{}
	m.Request(3, 120)
	m.Request(1, 480)
	m.Rejected()
	m.Unavailable()
	m.Unavailable()
	m.BadRequest()
	m.Batch(4)
	m.InFlight(1)
	m.Promoted(7, 0x3f800000)
	m.PromotionRefused()
	m.SetDraining(true)

	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE buckwild_serve_requests_total counter",
		"buckwild_serve_requests_total 2",
		"buckwild_serve_examples_total 4",
		"buckwild_serve_rejected_total 1",
		"buckwild_serve_unavailable_total 2",
		"buckwild_serve_bad_requests_total 1",
		"# TYPE buckwild_serve_in_flight gauge",
		"buckwild_serve_in_flight 1",
		"buckwild_serve_latency_us_count 2",
		"buckwild_serve_latency_us_sum 600",
		"buckwild_serve_batch_size_count 1",
		"buckwild_serve_promotions_total 1",
		"buckwild_serve_promotions_refused_total 1",
		"buckwild_serve_model_epoch 7",
		"buckwild_serve_draining 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition is missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if parts := strings.Fields(line); len(parts) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}

	sn := m.Snapshot()
	if sn.Requests != 2 || sn.Examples != 4 || sn.ModelEpoch != 7 || sn.InFlight != 1 {
		t.Errorf("snapshot = %+v", sn)
	}
}

func TestServeMetricsInFlightClamp(t *testing.T) {
	m := &ServeMetrics{}
	// A stray decrement on an empty gauge must clamp at zero, not go
	// negative and poison dashboards.
	m.InFlight(-1)
	if got := m.Snapshot().InFlight; got != 0 {
		t.Fatalf("in-flight after stray decrement = %d, want 0", got)
	}
	m.InFlight(1)
	m.InFlight(1)
	m.InFlight(-1)
	m.InFlight(-1)
	m.InFlight(-1) // double-counted response
	if got := m.Snapshot().InFlight; got != 0 {
		t.Fatalf("in-flight after over-decrement = %d, want 0", got)
	}
	m.InFlight(1)
	if got := m.Snapshot().InFlight; got != 1 {
		t.Fatalf("in-flight after recovery = %d, want 1", got)
	}
}

// TestServeMetricsConcurrent hammers every mutator while snapshots and
// expositions run; the race detector is the assertion.
func TestServeMetricsConcurrent(t *testing.T) {
	m := &ServeMetrics{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.InFlight(1)
				m.Request(2, uint64(i))
				m.Batch(2)
				m.InFlight(-1)
				switch i % 4 {
				case 0:
					m.Rejected()
				case 1:
					m.Promoted(g*1000+i, uint64(i))
				case 2:
					m.PromotionRefused()
				case 3:
					m.BadRequest()
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = m.Snapshot()
			_ = m.WriteProm(io.Discard)
		}
	}()
	wg.Wait()

	sn := m.Snapshot()
	if sn.Requests != 8*500 {
		t.Errorf("requests = %d, want %d", sn.Requests, 8*500)
	}
	if sn.Examples != 8*500*2 {
		t.Errorf("examples = %d, want %d", sn.Examples, 8*500*2)
	}
	if sn.InFlight != 0 {
		t.Errorf("in-flight = %d, want 0", sn.InFlight)
	}
}
