package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDashServesPage(t *testing.T) {
	se := NewSeries(0)
	se.EpochTick(0, 0.5, 100, 0)
	d := NewDash(DashConfig{Series: se})

	mux := http.NewServeMux()
	d.Register(mux, "/debug/dash/")

	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/dash", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /debug/dash = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("page content-type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{"<html", "EventSource", "/events"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard page lacks %q", want)
		}
	}
}

func TestDashEventsFraming(t *testing.T) {
	se := NewSeries(0)
	se.EpochTick(0, 0.5, 100, 0)
	se.EpochTick(1, 0.25, 200, 0)
	d := NewDash(DashConfig{
		Series:   se,
		Cluster:  func() *ClusterStats { return &ClusterStats{Nodes: 2} },
		Interval: time.Hour, // only the on-connect event fires in-test
	})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/debug/dash/events", nil).WithContext(ctx)
	rr := &syncRecorder{rr: httptest.NewRecorder()}

	done := make(chan struct{})
	go func() { d.Events(rr, req); close(done) }()

	// An event is pushed immediately on connect; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if strings.Contains(rr.body(), "\n\n") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no SSE event arrived")
		}
		time.Sleep(time.Millisecond)
	}
	cancel() // client goes away; handler must return
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Events did not return after client context cancel")
	}

	if ct := rr.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content-type = %q", ct)
	}
	if cc := rr.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("SSE cache-control = %q", cc)
	}
	body := rr.body()
	if !strings.HasPrefix(body, "event: snapshot\ndata: ") {
		t.Fatalf("SSE framing wrong: %q", body[:min(len(body), 60)])
	}
	payload := strings.TrimPrefix(strings.SplitN(body, "\n\n", 2)[0], "event: snapshot\ndata: ")
	var snap struct {
		Series  *SeriesSnapshot `json:"series"`
		Cluster *ClusterStats   `json:"cluster"`
	}
	if err := json.Unmarshal([]byte(payload), &snap); err != nil {
		t.Fatalf("SSE payload is not JSON: %v\n%s", err, payload)
	}
	if snap.Series == nil || len(snap.Series.Windows) == 0 {
		t.Error("SSE payload lacks series windows")
	}
	if snap.Cluster == nil || snap.Cluster.Nodes != 2 {
		t.Errorf("SSE payload cluster = %+v", snap.Cluster)
	}
}

// syncRecorder makes a ResponseRecorder safe to poll from the test
// goroutine while the handler goroutine writes to it.
type syncRecorder struct {
	mu sync.Mutex
	rr *httptest.ResponseRecorder
}

func (s *syncRecorder) Header() http.Header { return s.rr.Header() }
func (s *syncRecorder) WriteHeader(c int)   { s.rr.WriteHeader(c) }
func (s *syncRecorder) Flush()              {}
func (s *syncRecorder) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rr.Write(b)
}
func (s *syncRecorder) body() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rr.Body.String()
}

// flushlessWriter hides ResponseRecorder's Flush (no embedding, so no
// method promotion) so the handler sees a non-streaming connection.
type flushlessWriter struct{ rr *httptest.ResponseRecorder }

func (f flushlessWriter) Header() http.Header         { return f.rr.Header() }
func (f flushlessWriter) Write(b []byte) (int, error) { return f.rr.Write(b) }
func (f flushlessWriter) WriteHeader(c int)           { f.rr.WriteHeader(c) }

func TestDashEventsRequiresFlusher(t *testing.T) {
	d := NewDash(DashConfig{})
	rr := httptest.NewRecorder()
	d.Events(flushlessWriter{rr}, httptest.NewRequest("GET", "/debug/dash/events", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("flushless SSE request = %d, want 500", rr.Code)
	}
}

func TestNilDashHandlers(t *testing.T) {
	var d *Dash
	d.Register(http.NewServeMux(), "/debug/dash") // must not panic

	rr := httptest.NewRecorder()
	d.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/dash", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("nil dash page = %d, want 404", rr.Code)
	}
	rr = httptest.NewRecorder()
	d.Events(rr, httptest.NewRequest("GET", "/debug/dash/events", nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("nil dash events = %d, want 404", rr.Code)
	}
}
