package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file holds the time-series half of the telemetry layer: a
// fixed-budget windowed recorder of training dynamics. The paper's story
// is about quantities that drift as workers contend — staleness,
// throughput, loss — which a single end-of-run aggregate hides.
//
// Memory bound: the recorder keeps at most Budget windows. Windows
// advance at epoch boundaries; when a new window would exceed the
// budget, adjacent windows are merged pairwise and the per-window epoch
// stride doubles, so a run of any length occupies O(Budget) memory and
// every recorded step remains represented (totals are preserved exactly;
// only time resolution halves). A run of E epochs ends with between
// Budget/2 and Budget windows of stride 2^ceil(log2(E/Budget)).

// DefaultSeriesBudget is the window budget NewSeries uses for budget <= 0.
const DefaultSeriesBudget = 64

// SeriesWindow is one closed (or still-open) window of a Series.
type SeriesWindow struct {
	// StartEpoch and EndEpoch bound the window: epochs (StartEpoch,
	// EndEpoch], counting cumulative completed epochs.
	StartEpoch int `json:"start_epoch"`
	EndEpoch   int `json:"end_epoch"`
	// StartSeconds and EndSeconds are wall-clock offsets from the first
	// observation.
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
	// Steps counts model updates performed during the window;
	// StepsPerSec is the window's throughput (filled by Snapshot).
	Steps       uint64  `json:"steps"`
	StepsPerSec float64 `json:"steps_per_sec"`
	// Loss is the training loss at the window's last epoch boundary.
	Loss float64 `json:"loss"`
	// GradAbsSum and GradSamples accumulate the sampled gradient-norm
	// proxy (the |AXPY scale| of sampled steps); mean = Sum/Samples.
	GradAbsSum  float64 `json:"grad_abs_sum"`
	GradSamples uint64  `json:"grad_samples"`
	// MutexWaits counts contended lock acquisitions during the window
	// (Locked sharing only).
	MutexWaits uint64 `json:"mutex_waits"`
	// Staleness is the window's sampled write–read staleness
	// sub-histogram.
	Staleness HistSnapshot `json:"staleness"`
	// SatEvents, Underflows and the bias accumulator are the window's
	// share of the run's numerical-health counters (present only when
	// the run collects numerical health).
	SatEvents     uint64  `json:"sat_events,omitempty"`
	Underflows    uint64  `json:"underflows,omitempty"`
	BiasSamples   uint64  `json:"bias_samples,omitempty"`
	BiasSumQuanta float64 `json:"bias_sum_quanta,omitempty"`
}

// GradAbsMean returns the window's mean sampled gradient magnitude.
func (w *SeriesWindow) GradAbsMean() float64 {
	if w.GradSamples == 0 {
		return 0
	}
	return w.GradAbsSum / float64(w.GradSamples)
}

// BiasMeanQuanta returns the window's mean signed rounding error.
func (w *SeriesWindow) BiasMeanQuanta() float64 {
	if w.BiasSamples == 0 {
		return 0
	}
	return w.BiasSumQuanta / float64(w.BiasSamples)
}

// merge folds other (the later window) into w.
func (w *SeriesWindow) merge(other *SeriesWindow) {
	w.EndEpoch = other.EndEpoch
	w.EndSeconds = other.EndSeconds
	w.Steps += other.Steps
	w.Loss = other.Loss
	w.GradAbsSum += other.GradAbsSum
	w.GradSamples += other.GradSamples
	w.MutexWaits += other.MutexWaits
	w.Staleness.Merge(other.Staleness)
	w.SatEvents += other.SatEvents
	w.Underflows += other.Underflows
	w.BiasSamples += other.BiasSamples
	w.BiasSumQuanta += other.BiasSumQuanta
}

// Series records windowed training time-series under a fixed memory
// budget. ObserveSample is safe to call from concurrent worker
// goroutines (it fires at the observer's sampling rate, so a mutex is
// cheap); EpochTick fires on the coordinating goroutine. A nil *Series
// is inert: every method nil-checks first.
type Series struct {
	mu     sync.Mutex
	budget int
	// stride is the number of epoch ticks a window spans; it doubles on
	// every downsampling merge.
	stride int
	// openTicks counts epoch ticks in the newest (open) window.
	openTicks int
	windows   []SeriesWindow
	started   bool
	start     time.Time
	// lastSteps and lastWaits are the cumulative counters at the previous
	// epoch tick, for per-window deltas. A counter going backwards means
	// a new attempt (the engine's counters restart per attempt); the
	// baseline resets.
	lastSteps uint64
	lastWaits uint64
	// Numerical-health baselines for HealthTick, same delta discipline.
	lastSat     uint64
	lastUnder   uint64
	lastBiasN   uint64
	lastBiasSum float64
}

// NewSeries returns a recorder keeping at most budget windows; budget <=
// 0 selects DefaultSeriesBudget, and odd budgets round up to even (the
// downsampling merge pairs windows).
func NewSeries(budget int) *Series {
	if budget <= 0 {
		budget = DefaultSeriesBudget
	}
	if budget < 2 {
		budget = 2
	}
	if budget%2 == 1 {
		budget++
	}
	return &Series{budget: budget, stride: 1}
}

// Budget returns the recorder's window budget.
func (s *Series) Budget() int {
	if s == nil {
		return 0
	}
	return s.budget
}

// open returns the open window, creating it (and downsampling if needed)
// when the previous one is full. Callers hold s.mu.
func (s *Series) open() *SeriesWindow {
	now := s.sinceStart()
	if len(s.windows) == 0 || s.openTicks >= s.stride {
		if len(s.windows) == s.budget {
			// Downsample: merge adjacent pairs, halving the window count
			// and doubling the stride. Totals are preserved exactly.
			for i := 0; i < s.budget/2; i++ {
				w := s.windows[2*i]
				w.merge(&s.windows[2*i+1])
				s.windows[i] = w
			}
			s.windows = s.windows[:s.budget/2]
			s.stride *= 2
			// The two merged halves of the last pair were full, so the
			// merged window is full too; a fresh window still opens below.
		}
		startEpoch := 0
		if n := len(s.windows); n > 0 {
			startEpoch = s.windows[n-1].EndEpoch
		}
		s.windows = append(s.windows, SeriesWindow{
			StartEpoch: startEpoch, EndEpoch: startEpoch,
			StartSeconds: now, EndSeconds: now,
		})
		s.openTicks = 0
	}
	return &s.windows[len(s.windows)-1]
}

// sinceStart returns seconds since the first observation, starting the
// clock on first use. Callers hold s.mu.
func (s *Series) sinceStart() float64 {
	if !s.started {
		s.started = true
		s.start = time.Now()
		return 0
	}
	return time.Since(s.start).Seconds()
}

// ObserveSample records one sampled step: its write–read staleness and
// gradient-magnitude proxy feed the open window.
func (s *Series) ObserveSample(staleness uint64, gradAbs float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	w := s.open()
	w.Staleness.Observe(staleness)
	w.GradAbsSum += gradAbs
	w.GradSamples++
	s.mu.Unlock()
}

// EpochTick records an epoch boundary: the cumulative completed-epoch
// count, the epoch's training loss, and the engine's cumulative step and
// mutex-wait counters (deltas are attributed to the open window; a
// counter moving backwards resets the baseline, which happens when a
// supervised run restarts an attempt).
func (s *Series) EpochTick(epoch int, loss float64, steps, mutexWaits uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	w := s.open()
	if steps < s.lastSteps || mutexWaits < s.lastWaits {
		s.lastSteps, s.lastWaits = 0, 0
	}
	w.Steps += steps - s.lastSteps
	w.MutexWaits += mutexWaits - s.lastWaits
	s.lastSteps, s.lastWaits = steps, mutexWaits
	w.EndEpoch = epoch
	w.EndSeconds = s.sinceStart()
	w.Loss = loss
	s.openTicks++
	s.mu.Unlock()
}

// HealthTick attributes the numerical-health counter deltas since the
// previous tick to the open window. The arguments are the run's
// cumulative counters, like EpochTick's; call it just before the epoch's
// EpochTick so both land in the same window. A counter moving backwards
// (attempt restart) resets the baselines.
func (s *Series) HealthTick(saturations, underflows, biasSamples uint64, biasSumQuanta float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	w := s.open()
	if saturations < s.lastSat || underflows < s.lastUnder || biasSamples < s.lastBiasN {
		s.lastSat, s.lastUnder, s.lastBiasN, s.lastBiasSum = 0, 0, 0, 0
	}
	w.SatEvents += saturations - s.lastSat
	w.Underflows += underflows - s.lastUnder
	w.BiasSamples += biasSamples - s.lastBiasN
	w.BiasSumQuanta += biasSumQuanta - s.lastBiasSum
	s.lastSat, s.lastUnder, s.lastBiasN, s.lastBiasSum = saturations, underflows, biasSamples, biasSumQuanta
	s.mu.Unlock()
}

// SeriesSnapshot is the exportable form of a Series.
type SeriesSnapshot struct {
	// Budget is the window budget; EpochsPerWindow the stride the run
	// ended with (1 unless downsampling merged windows).
	Budget          int `json:"budget"`
	EpochsPerWindow int `json:"epochs_per_window"`
	// Windows are the recorded windows, oldest first; the last one may
	// be partially filled.
	Windows []SeriesWindow `json:"windows"`
}

// Snapshot copies the recorder's windows, filling each window's
// StepsPerSec from its wall-clock bounds.
func (s *Series) Snapshot() *SeriesSnapshot {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &SeriesSnapshot{Budget: s.budget, EpochsPerWindow: s.stride,
		Windows: append([]SeriesWindow(nil), s.windows...)}
	for i := range snap.Windows {
		w := &snap.Windows[i]
		if dt := w.EndSeconds - w.StartSeconds; dt > 0 {
			w.StepsPerSec = float64(w.Steps) / dt
		}
	}
	return snap
}

// Final returns the last (newest) window of the snapshot, or nil.
func (sn *SeriesSnapshot) Final() *SeriesWindow {
	if sn == nil || len(sn.Windows) == 0 {
		return nil
	}
	return &sn.Windows[len(sn.Windows)-1]
}

// WriteCSV writes the snapshot as one CSV row per window.
func (sn *SeriesSnapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"start_epoch", "end_epoch", "start_seconds", "end_seconds",
		"steps", "steps_per_sec", "loss", "grad_abs_mean", "mutex_waits",
		"stale_samples", "stale_mean", "stale_max",
		"sat_events", "underflows", "bias_mean_quanta",
	}); err != nil {
		return err
	}
	if sn != nil {
		for i := range sn.Windows {
			win := &sn.Windows[i]
			if err := cw.Write([]string{
				fmt.Sprint(win.StartEpoch), fmt.Sprint(win.EndEpoch),
				fmt.Sprintf("%.6f", win.StartSeconds), fmt.Sprintf("%.6f", win.EndSeconds),
				fmt.Sprint(win.Steps), fmt.Sprintf("%.3f", win.StepsPerSec),
				fmt.Sprintf("%.8g", win.Loss), fmt.Sprintf("%.8g", win.GradAbsMean()),
				fmt.Sprint(win.MutexWaits),
				fmt.Sprint(win.Staleness.Count), fmt.Sprintf("%.4f", win.Staleness.Mean()),
				fmt.Sprint(win.Staleness.Max),
				fmt.Sprint(win.SatEvents), fmt.Sprint(win.Underflows),
				fmt.Sprintf("%.6g", win.BiasMeanQuanta()),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
