package obs

import (
	"io"
	"sync/atomic"
)

// ServeMetrics is the serving tier's counter set: every field is an
// atomic or a lock-free Histogram, so the daemon's request path records
// into it without taking a lock and a /metrics scrape never blocks a
// predict. One instance is shared by the HTTP front end (requests,
// rejections, latency), the batcher (batch sizes) and the promotion path
// (promotions, refusals, model epoch).
type ServeMetrics struct {
	// Request accounting. Requests counts HTTP predict requests;
	// Examples counts the individual examples inside them (a batched
	// request contributes its batch size).
	requests    atomic.Uint64
	examples    atomic.Uint64
	rejected    atomic.Uint64 // admission control: queue full -> 429
	unavailable atomic.Uint64 // no model yet, or draining -> 503
	badRequests atomic.Uint64 // malformed JSON / predict errors -> 400
	inFlight    atomic.Int64

	// Latency is measured request-in to response-written, in
	// microseconds (power-of-two buckets resolve the microsecond to
	// second range well).
	latencyUS Histogram
	// BatchSize records the number of examples the batcher handed to
	// each predict call.
	batchSize Histogram

	// Promotion accounting.
	promotions        atomic.Uint64
	promotionsRefused atomic.Uint64
	modelEpoch        atomic.Int64
	modelLossBits     atomic.Uint64

	draining atomic.Bool
}

// Request records one accepted predict request carrying n examples and
// its end-to-end latency in microseconds.
func (m *ServeMetrics) Request(n int, latencyUS uint64) {
	m.requests.Add(1)
	m.examples.Add(uint64(n))
	m.latencyUS.Observe(latencyUS)
}

// Rejected records one request turned away by admission control (429).
func (m *ServeMetrics) Rejected() { m.rejected.Add(1) }

// Unavailable records one request refused because no model is promoted
// yet or the server is draining (503).
func (m *ServeMetrics) Unavailable() { m.unavailable.Add(1) }

// BadRequest records one malformed request (400).
func (m *ServeMetrics) BadRequest() { m.badRequests.Add(1) }

// Batch records one predict batch of n examples.
func (m *ServeMetrics) Batch(n int) { m.batchSize.Observe(uint64(n)) }

// InFlight adjusts the in-flight request gauge by d (+1 on admit, -1 on
// response). The gauge is clamped at zero: a stray extra decrement (a
// double-counted response, or a decrement racing a restart) must show up
// as a too-low gauge, never as a negative one that poisons dashboards.
func (m *ServeMetrics) InFlight(d int64) {
	for {
		cur := m.inFlight.Load()
		next := cur + d
		if next < 0 {
			next = 0
		}
		if m.inFlight.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Promoted records a successful model promotion at the given cumulative
// epoch with the given training loss.
func (m *ServeMetrics) Promoted(epoch int, lossBits uint64) {
	m.promotions.Add(1)
	m.modelEpoch.Store(int64(epoch))
	m.modelLossBits.Store(lossBits)
}

// PromotionRefused records a promotion attempt turned away by the
// divergence gate.
func (m *ServeMetrics) PromotionRefused() { m.promotionsRefused.Add(1) }

// SetDraining flips the draining gauge.
func (m *ServeMetrics) SetDraining(v bool) { m.draining.Store(v) }

// ServeStats is the exportable snapshot of a ServeMetrics: the report
// form the servload experiment and -report emit.
type ServeStats struct {
	Requests          uint64       `json:"requests"`
	Examples          uint64       `json:"examples"`
	Rejected          uint64       `json:"rejected"`
	Unavailable       uint64       `json:"unavailable"`
	BadRequests       uint64       `json:"bad_requests"`
	LatencyUS         HistSnapshot `json:"latency_us"`
	BatchSize         HistSnapshot `json:"batch_size"`
	Promotions        uint64       `json:"promotions"`
	PromotionsRefused uint64       `json:"promotions_refused"`
	ModelEpoch        int64        `json:"model_epoch"`
	InFlight          int64        `json:"in_flight,omitempty"`
}

// Snapshot returns the current counters in exportable form.
func (m *ServeMetrics) Snapshot() *ServeStats {
	return &ServeStats{
		Requests:          m.requests.Load(),
		Examples:          m.examples.Load(),
		Rejected:          m.rejected.Load(),
		Unavailable:       m.unavailable.Load(),
		BadRequests:       m.badRequests.Load(),
		LatencyUS:         m.latencyUS.Snapshot(),
		BatchSize:         m.batchSize.Snapshot(),
		Promotions:        m.promotions.Load(),
		PromotionsRefused: m.promotionsRefused.Load(),
		ModelEpoch:        m.modelEpoch.Load(),
		InFlight:          m.inFlight.Load(),
	}
}

// Merge folds other into s (the report helpers merge per-experiment
// snapshots the same way RunStats and ClusterStats merge).
func (s *ServeStats) Merge(other *ServeStats) {
	if other == nil {
		return
	}
	s.Requests += other.Requests
	s.Examples += other.Examples
	s.Rejected += other.Rejected
	s.Unavailable += other.Unavailable
	s.BadRequests += other.BadRequests
	s.LatencyUS.Merge(other.LatencyUS)
	s.BatchSize.Merge(other.BatchSize)
	s.Promotions += other.Promotions
	s.PromotionsRefused += other.PromotionsRefused
	if other.ModelEpoch > s.ModelEpoch {
		s.ModelEpoch = other.ModelEpoch
	}
}

// WriteProm renders the serving counters in the Prometheus text format;
// the daemon's /metrics endpoint serves this ahead of the training-side
// exposition.
func (m *ServeMetrics) WriteProm(w io.Writer) error {
	p := newPromWriter(w)
	p.metric("buckwild_serve_requests_total", "counter", "Predict requests accepted.", float64(m.requests.Load()))
	p.metric("buckwild_serve_examples_total", "counter", "Examples predicted (batched requests count each example).", float64(m.examples.Load()))
	p.metric("buckwild_serve_rejected_total", "counter", "Requests rejected by admission control (429).", float64(m.rejected.Load()))
	p.metric("buckwild_serve_unavailable_total", "counter", "Requests refused with no model or while draining (503).", float64(m.unavailable.Load()))
	p.metric("buckwild_serve_bad_requests_total", "counter", "Malformed predict requests (400).", float64(m.badRequests.Load()))
	p.metric("buckwild_serve_in_flight", "gauge", "Requests currently being served.", float64(m.inFlight.Load()))
	p.histogram("buckwild_serve_latency_us", "Predict request latency, request-in to response-written, microseconds.", m.latencyUS.Snapshot())
	p.histogram("buckwild_serve_batch_size", "Examples per predict batch.", m.batchSize.Snapshot())
	p.metric("buckwild_serve_promotions_total", "counter", "Model snapshots promoted into serving.", float64(m.promotions.Load()))
	p.metric("buckwild_serve_promotions_refused_total", "counter", "Promotions refused by the divergence gate.", float64(m.promotionsRefused.Load()))
	p.metric("buckwild_serve_model_epoch", "gauge", "Cumulative training epoch of the serving model.", float64(m.modelEpoch.Load()))
	draining := 0.0
	if m.draining.Load() {
		draining = 1
	}
	p.metric("buckwild_serve_draining", "gauge", "1 while the server drains after SIGTERM.", draining)
	return p.err
}
