package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// populatedBundler builds a Bundler over live flight/tracer/series
// sources with some recorded content, plus a stats and config section.
func populatedBundler(t *testing.T, cfg BundleConfig) (*Bundler, *FlightRecorder) {
	t.Helper()
	rec := NewFlightRecorder(0)
	rec.Record("run", "epoch", "epoch 0 done", map[string]string{"loss": "0.5"})
	rec.Record("run", "retry", "retrying", nil)
	tr := NewTracer(0)
	tr.Begin("core", "epoch", 0).End()
	se := NewSeries(0)
	se.EpochTick(0, 0.5, 100, 0)
	se.EpochTick(1, 0.4, 200, 0)
	cfg.Flight, cfg.Tracer, cfg.Series = rec, tr, se
	b, err := NewBundler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.AddSection("stats/run", func() any { return &RunStats{Steps: 42} })
	b.AddSection("config", func() any { return map[string]string{"sig": "D8M8", "threads": "4"} })
	return b, rec
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	b, _ := populatedBundler(t, BundleConfig{Dir: dir, Prefix: "test"})

	path, wrote := b.Trigger("divergence", "epoch 3: non-finite loss")
	if !wrote {
		t.Fatal("Trigger did not write a bundle")
	}
	if !strings.HasSuffix(path, DebugBundleSuffix) {
		t.Fatalf("bundle path %q lacks suffix %q", path, DebugBundleSuffix)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	info, err := ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}

	m := info.Manifest
	if m.Reason != "divergence" || m.Detail != "epoch 3: non-finite loss" {
		t.Errorf("manifest trigger = %q/%q", m.Reason, m.Detail)
	}
	if m.Seq != 1 || m.Suppressed != 0 {
		t.Errorf("manifest seq/suppressed = %d/%d, want 1/0", m.Seq, m.Suppressed)
	}
	if m.Go == "" || m.PID == 0 {
		t.Errorf("manifest runtime identification missing: %+v", m)
	}

	if info.Flight == nil {
		t.Fatal("bundle has no decoded flight section")
	}
	// The trigger itself is recorded before the snapshot, so the bundle's
	// own flight ring shows what tripped it.
	var sawTrigger, sawEpoch bool
	for _, ev := range info.Flight.Events {
		if ev.Component == "bundle" && ev.Kind == "trigger" && ev.Message == "divergence" {
			sawTrigger = true
		}
		if ev.Kind == "epoch" {
			sawEpoch = true
		}
	}
	if !sawTrigger || !sawEpoch {
		t.Errorf("flight events missing trigger (%v) or epoch (%v)", sawTrigger, sawEpoch)
	}

	if info.Series == nil || len(info.Series.Windows) == 0 {
		t.Fatal("bundle has no decoded series windows")
	}
	if win := info.Series.Final(); win == nil || win.Loss != 0.4 {
		t.Errorf("final series window = %+v, want loss 0.4", win)
	}

	if _, ok := info.Sections["stats/run"]; !ok {
		t.Error("bundle lacks stats/run section")
	}
	var cfgSec map[string]string
	if err := json.Unmarshal(info.Sections["config"], &cfgSec); err != nil || cfgSec["sig"] != "D8M8" {
		t.Errorf("config section = %v (%v)", cfgSec, err)
	}

	// Instantaneous pprof kinds are always embedded; the manifest
	// inventories them with in-archive paths.
	kinds := map[string]bool{}
	for _, p := range m.Profiles {
		kinds[p.Kind] = true
		if !strings.HasPrefix(p.Path, "profiles/") {
			t.Errorf("profile path %q not rewritten to in-archive form", p.Path)
		}
	}
	for _, k := range []string{"heap", "goroutine"} {
		if !kinds[k] {
			t.Errorf("manifest profile inventory lacks %s: %v", k, kinds)
		}
	}
	var names []string
	for _, e := range info.Entries {
		names = append(names, e.Name)
	}
	for _, want := range []string{"manifest.json", "flight.json", "trace.json.gz", "series.json", "profiles/goroutines.txt"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("bundle entries %v missing %s", names, want)
		}
	}
}

// TestBundleTraceSummarizable checks the inner trace.json.gz is directly
// consumable by the trace-summary path (which sniffs gzip).
func TestBundleTraceSummarizable(t *testing.T) {
	b, _ := populatedBundler(t, BundleConfig{Dir: t.TempDir()})
	var buf bytes.Buffer
	if err := b.WriteTo(&buf, "on-demand", "", 0, 0); err != nil {
		t.Fatal(err)
	}
	raw := extractEntry(t, buf.Bytes(), "trace.json.gz")
	phases, err := SummarizeTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("gzipped bundle trace did not summarize: %v", err)
	}
	if len(phases) == 0 || phases[0].Name != "epoch" {
		t.Errorf("phases = %+v, want the recorded epoch span", phases)
	}
}

func TestBundleDebounce(t *testing.T) {
	dir := t.TempDir()
	b, rec := populatedBundler(t, BundleConfig{Dir: dir, Cooldown: 50 * time.Millisecond})

	if _, wrote := b.Trigger("stall", "first"); !wrote {
		t.Fatal("first trigger suppressed")
	}
	// Second trip inside the cooldown: counted, flight-logged, no file.
	if path, wrote := b.Trigger("stall", "second"); wrote {
		t.Fatalf("second trigger inside cooldown wrote %s", path)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+DebugBundleSuffix))
	if len(files) != 1 {
		t.Fatalf("two trips within cooldown produced %d bundles, want 1", len(files))
	}
	var suppressed bool
	for _, ev := range rec.Snapshot().Events {
		if ev.Component == "bundle" && ev.Kind == "suppressed" {
			suppressed = true
		}
	}
	if !suppressed {
		t.Error("suppressed trigger left no flight event")
	}

	// After the cooldown the next trigger writes, carrying the count.
	time.Sleep(60 * time.Millisecond)
	path, wrote := b.Trigger("stall", "third")
	if !wrote {
		t.Fatal("post-cooldown trigger suppressed")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	info, err := ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}
	if info.Manifest.Suppressed != 1 {
		t.Errorf("manifest.Suppressed = %d, want 1", info.Manifest.Suppressed)
	}
}

func TestBundlePrune(t *testing.T) {
	dir := t.TempDir()
	b, _ := populatedBundler(t, BundleConfig{Dir: dir, MaxBundles: 2, Cooldown: -1})
	for i := 0; i < 4; i++ {
		if _, wrote := b.Trigger("stall", "x"); !wrote {
			t.Fatalf("trigger %d suppressed with debounce disabled", i)
		}
		// File ModTime comes from the kernel's coarse clock; space the
		// writes out so prune's oldest-first ordering is deterministic.
		time.Sleep(10 * time.Millisecond)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*"+DebugBundleSuffix))
	if len(files) != 2 {
		t.Fatalf("prune kept %d bundles, want 2: %v", len(files), files)
	}
	// The survivors are the newest two (sequence numbers 3 and 4).
	for _, f := range files {
		if strings.Contains(f, "-001"+DebugBundleSuffix) || strings.Contains(f, "-002"+DebugBundleSuffix) {
			t.Errorf("prune kept old bundle %s", f)
		}
	}
}

func TestNilBundlerIsInert(t *testing.T) {
	var b *Bundler
	if path, wrote := b.Trigger("stall", "x"); wrote || path != "" {
		t.Error("nil bundler wrote a bundle")
	}
	b.AddSection("x", func() any { return nil })
}

func TestReadBundleRejectsGarbage(t *testing.T) {
	if _, err := ReadBundle(strings.NewReader("not a bundle")); err == nil {
		t.Error("ReadBundle accepted non-gzip input")
	}
}

// extractEntry walks a bundle archive and returns the named entry's raw
// bytes (ReadBundle only retains JSON sections).
func extractEntry(t *testing.T, bundle []byte, name string) []byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(bundle))
	if err != nil {
		t.Fatal(err)
	}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Name == name {
			data, err := io.ReadAll(tr)
			if err != nil {
				t.Fatal(err)
			}
			return data
		}
	}
	t.Fatalf("bundle has no entry %s", name)
	return nil
}

// TestWatchdogTripWritesBundle checks the divergence watchdog's
// bundle hookup: one trip produces exactly one bundle whose manifest
// names the trip, and the trip-once guard means later bad epochs add
// nothing.
func TestWatchdogTripWritesBundle(t *testing.T) {
	dir := t.TempDir()
	b, _ := populatedBundler(t, BundleConfig{Dir: dir})
	ctx, cancel := context.WithCancelCause(context.Background())
	wd := &HealthWatchdog{Cancel: cancel, Bundle: b}

	wd.OnEpoch(EpochInfo{Epoch: 1, Loss: 0.5})
	if files, _ := filepath.Glob(filepath.Join(dir, "*"+DebugBundleSuffix)); len(files) != 0 {
		t.Fatal("healthy epoch produced a bundle")
	}
	wd.OnEpoch(EpochInfo{Epoch: 2, Loss: math.NaN()})
	if ctx.Err() == nil {
		t.Fatal("watchdog did not cancel")
	}
	wd.OnEpoch(EpochInfo{Epoch: 3, Loss: math.NaN()}) // trip-once: no second bundle

	files, _ := filepath.Glob(filepath.Join(dir, "*"+DebugBundleSuffix))
	if len(files) != 1 {
		t.Fatalf("divergence produced %d bundles, want exactly 1: %v", len(files), files)
	}
	f, err := os.Open(files[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	info, err := ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}
	if info.Manifest.Reason != "divergence" || !strings.Contains(info.Manifest.Detail, "epoch 2") {
		t.Errorf("manifest = %q/%q, want divergence at epoch 2",
			info.Manifest.Reason, info.Manifest.Detail)
	}
}
