package obs

import (
	"context"
	"errors"
	"math"
	"testing"
)

func TestNumStatsMerge(t *testing.T) {
	a := &NumStats{
		SatBySite:   map[string]uint64{"saturate": 3},
		Saturations: 3,
		Underflows:  10,
		Bias:        RoundingBias{Mode: "unbiased-shared", Samples: 4, SumQuanta: 1},
		Weights:     &WeightStats{Epoch: 1, Count: 2, Min: -1, Max: 1, Mean: 0, AtBounds: 1},
	}
	b := &NumStats{
		SatBySite:   map[string]uint64{"saturate": 1, "quantize": 5},
		Saturations: 6,
		Underflows:  2,
		Bias:        RoundingBias{Mode: "biased", Samples: 4, SumQuanta: -3},
		Weights:     &WeightStats{Epoch: 2, Count: 2, Min: -2, Max: 0.5, Mean: -0.75, AtBounds: 2},
	}
	a.Merge(b)
	a.Merge(nil) // no-op
	if a.SatBySite["saturate"] != 4 || a.SatBySite["quantize"] != 5 {
		t.Errorf("merged sites: %v", a.SatBySite)
	}
	if a.Saturations != 9 || a.Underflows != 12 {
		t.Errorf("merged totals: %+v", a)
	}
	if a.Bias.Mode != "unbiased-shared" || a.Bias.Samples != 8 || a.Bias.SumQuanta != -2 {
		t.Errorf("merged bias: %+v", a.Bias)
	}
	if got := a.Bias.MeanQuanta(); got != -0.25 {
		t.Errorf("MeanQuanta = %v, want -0.25", got)
	}
	w := a.Weights
	if w.Epoch != 2 || w.Count != 4 || w.Min != -2 || w.Max != 1 || w.AtBounds != 3 {
		t.Errorf("merged weights: %+v", w)
	}
	if math.Abs(w.Mean-(-0.375)) > 1e-12 {
		t.Errorf("merged weight mean %v, want -0.375", w.Mean)
	}

	// Merging weights into a run that had none allocates them.
	c := &NumStats{}
	c.Merge(b)
	if c.Weights == nil || c.Weights.Count != 2 {
		t.Errorf("merge into empty: %+v", c.Weights)
	}
}

func TestHealthInfoRates(t *testing.T) {
	hi := HealthInfo{ModelWrites: 100, Saturations: 25, BiasSamples: 4, BiasSumQuanta: -1}
	if got := hi.SatRate(); got != 0.25 {
		t.Errorf("SatRate = %v, want 0.25", got)
	}
	if got := hi.BiasMeanQuanta(); got != -0.25 {
		t.Errorf("BiasMeanQuanta = %v, want -0.25", got)
	}
	var zero HealthInfo
	if zero.SatRate() != 0 || zero.BiasMeanQuanta() != 0 {
		t.Error("zero HealthInfo rates should be 0")
	}
}

// recordingHooks captures every callback kind the watchdog can forward.
type recordingHooks struct {
	NopHooks
	epochs      []int
	health      []HealthInfo
	divergences []DivergenceInfo
	checkpoints int
	retries     int
}

func (r *recordingHooks) OnEpoch(ei EpochInfo)           { r.epochs = append(r.epochs, ei.Epoch) }
func (r *recordingHooks) OnHealth(hi HealthInfo)         { r.health = append(r.health, hi) }
func (r *recordingHooks) OnDivergence(di DivergenceInfo) { r.divergences = append(r.divergences, di) }
func (r *recordingHooks) OnCheckpoint(CheckpointInfo)    { r.checkpoints++ }
func (r *recordingHooks) OnRetry(RetryInfo)              { r.retries++ }

func TestHealthWatchdogNaNLoss(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	rec := &recordingHooks{}
	wd := &HealthWatchdog{Cancel: cancel, Next: rec}
	wd.OnEpoch(EpochInfo{Epoch: 1, Loss: 0.5})
	if wd.Fired() || ctx.Err() != nil {
		t.Fatal("watchdog fired on a finite loss")
	}
	wd.OnEpoch(EpochInfo{Epoch: 2, Loss: math.NaN()})
	if !wd.Fired() {
		t.Fatal("watchdog did not fire on NaN loss")
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
	cause := context.Cause(ctx)
	if !errors.Is(cause, ErrDivergence) {
		t.Fatalf("cause %v does not match ErrDivergence", cause)
	}
	var de *DivergenceError
	if !errors.As(cause, &de) || de.Info.Epoch != 2 {
		t.Fatalf("cause %v is not the detailed DivergenceError", cause)
	}
	// Forwarding: both epochs reached the wrapped hooks, and the
	// divergence fired exactly once on them.
	if len(rec.epochs) != 2 || len(rec.divergences) != 1 {
		t.Fatalf("forwarding: epochs %v, divergences %v", rec.epochs, rec.divergences)
	}
	// Firing is once-only even if another NaN epoch arrives.
	wd.OnEpoch(EpochInfo{Epoch: 3, Loss: math.Inf(1)})
	if len(rec.divergences) != 1 {
		t.Fatal("watchdog fired twice")
	}
}

func TestHealthWatchdogSatRate(t *testing.T) {
	ctx, cancel := context.WithCancelCause(context.Background())
	rec := &recordingHooks{}
	wd := &HealthWatchdog{MaxSatRate: 0.1, MinEpochs: 2, Cancel: cancel, Next: rec}
	// Epoch 1 is within the grace period: no trip even at a wild rate.
	wd.OnHealth(HealthInfo{Epoch: 1, ModelWrites: 100, Saturations: 90})
	if wd.Fired() {
		t.Fatal("watchdog ignored the grace period")
	}
	// Epoch 2, low rate: no trip; forwarded.
	wd.OnHealth(HealthInfo{Epoch: 2, ModelWrites: 200, Saturations: 10})
	if wd.Fired() {
		t.Fatal("watchdog tripped below threshold")
	}
	// Epoch 3, rate 0.5 > 0.1: trip.
	wd.OnHealth(HealthInfo{Epoch: 3, ModelWrites: 300, Saturations: 150})
	if !wd.Fired() {
		t.Fatal("watchdog did not trip on saturation rate")
	}
	if !errors.Is(context.Cause(ctx), ErrDivergence) {
		t.Fatalf("cause = %v", context.Cause(ctx))
	}
	if len(rec.health) != 3 {
		t.Fatalf("health forwarding: got %d calls", len(rec.health))
	}
	if len(rec.divergences) != 1 || rec.divergences[0].SatRate != 0.5 {
		t.Fatalf("divergence payload: %+v", rec.divergences)
	}
}

func TestHealthWatchdogBiasDrift(t *testing.T) {
	_, cancel := context.WithCancelCause(context.Background())
	wd := &HealthWatchdog{Cancel: cancel}
	// Default threshold is 0.25 quanta; drift of -0.4 trips.
	wd.OnHealth(HealthInfo{Epoch: 1, ModelWrites: 10, BiasSamples: 100, BiasSumQuanta: -40})
	if !wd.Fired() {
		t.Fatal("watchdog did not trip on bias drift")
	}
}

func TestHealthWatchdogForwardsLifecycle(t *testing.T) {
	rec := &recordingHooks{}
	wd := &HealthWatchdog{Next: rec}
	var lh LifecycleHooks = wd
	lh.OnCheckpoint(CheckpointInfo{Epoch: 1})
	lh.OnRetry(RetryInfo{Attempt: 1})
	if rec.checkpoints != 1 || rec.retries != 1 {
		t.Fatalf("lifecycle forwarding: %d checkpoints, %d retries", rec.checkpoints, rec.retries)
	}
	// A watchdog with no Cancel and no Next must not panic.
	bare := &HealthWatchdog{}
	bare.OnEpoch(EpochInfo{Epoch: 1, Loss: math.NaN()})
	if !bare.Fired() {
		t.Fatal("bare watchdog did not record the detection")
	}
}

func TestHistQuantile(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
	var h Histogram
	// 90 zeros and 10 values in [8, 16): p50 exact at 0, p99 inside the
	// high bucket, p1.0 capped at Max.
	for i := 0; i < 90; i++ {
		h.Observe(0)
	}
	for i := 0; i < 10; i++ {
		h.Observe(uint64(8 + i))
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("p50 = %v, want 0 (zero bucket is exact)", got)
	}
	p99 := s.Quantile(0.99)
	if p99 < 8 || p99 > 18 {
		t.Errorf("p99 = %v, want within the [8,16) bucket (capped at max+1)", p99)
	}
	if got := s.Quantile(1); got < 8 || got > float64(s.Max)+1 {
		t.Errorf("p100 = %v out of range (max %d)", got, s.Max)
	}
	if got := s.Quantile(-1); got != 0 {
		t.Errorf("clamped p<0 = %v, want 0", got)
	}
	// Monotonicity across p.
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: p=%.2f -> %v after %v", p, q, prev)
		}
		prev = q
	}
}
