package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"testing"
)

func TestFlightRecorderRing(t *testing.T) {
	rec := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Record("test", "tick", fmt.Sprintf("event %d", i), nil)
	}
	snap := rec.Snapshot()
	if snap.Recorded != 10 {
		t.Errorf("recorded = %d, want 10", snap.Recorded)
	}
	if len(snap.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(snap.Events))
	}
	if snap.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", snap.Dropped)
	}
	// The ring keeps the newest events, in sequence order.
	for i, ev := range snap.Events {
		if want := uint64(6 + i); ev.Seq != want {
			t.Errorf("events[%d].Seq = %d, want %d", i, ev.Seq, want)
		}
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("dump does not round-trip: %v", err)
	}
	if len(round.Events) != 4 || round.Events[3].Message != "event 9" {
		t.Errorf("round-tripped dump = %+v", round)
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var rec *FlightRecorder
	rec.Record("test", "tick", "ignored", nil) // must not panic
	if rec.EventCount() != 0 {
		t.Error("nil recorder counted an event")
	}
	if snap := rec.Snapshot(); len(snap.Events) != 0 {
		t.Errorf("nil recorder snapshot = %+v", snap)
	}
}

// TestFlightRecorderConcurrent writes from many goroutines while
// snapshots run; the race detector is the assertion, plus every
// retained event must be intact (no torn slots).
func TestFlightRecorderConcurrent(t *testing.T) {
	rec := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				rec.Record("test", "tick", "concurrent", map[string]string{"g": fmt.Sprint(g)})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = rec.Snapshot()
		}
	}()
	wg.Wait()
	snap := rec.Snapshot()
	if snap.Recorded != 8*300 {
		t.Errorf("recorded = %d, want %d", snap.Recorded, 8*300)
	}
	if len(snap.Events) != 64 {
		t.Errorf("retained = %d, want 64", len(snap.Events))
	}
	for i, ev := range snap.Events {
		if ev.Kind != "tick" || ev.Fields["g"] == "" {
			t.Fatalf("torn event at %d: %+v", i, ev)
		}
		if i > 0 && ev.Seq <= snap.Events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d after %d", i, ev.Seq, snap.Events[i-1].Seq)
		}
	}
}

func TestFlightLogHandlerTee(t *testing.T) {
	rec := NewFlightRecorder(8)
	var buf bytes.Buffer
	base, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(rec.LogHandler(base.Handler(), slog.LevelWarn))
	logger = Component(logger, "run")
	logger.Info("below the tee threshold")
	logger.Warn("worth remembering", slog.Int("attempt", 2))

	if !bytes.Contains(buf.Bytes(), []byte("below the tee threshold")) {
		t.Error("info record did not reach the wrapped handler")
	}
	snap := rec.Snapshot()
	if len(snap.Events) != 1 {
		t.Fatalf("ring holds %d events, want only the warning", len(snap.Events))
	}
	ev := snap.Events[0]
	if ev.Kind != "log" || ev.Component != "run" || ev.Message != "worth remembering" {
		t.Errorf("teed event = %+v", ev)
	}
	if ev.Fields["attempt"] != "2" || ev.Fields["level"] != "WARN" {
		t.Errorf("teed fields = %v", ev.Fields)
	}
}

func TestNewLoggerAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("visible")
	out := buf.String()
	if bytes.Contains([]byte(out), []byte("hidden")) || !bytes.Contains([]byte(out), []byte("visible")) {
		t.Errorf("level filter broken:\n%s", out)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("json format produced non-JSON: %v\n%s", err, out)
	}

	if _, err := NewLogger(&buf, "yaml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
	if lv, err := ParseLogLevel("WARNING"); err != nil || lv != slog.LevelWarn {
		t.Errorf("ParseLogLevel(WARNING) = %v, %v", lv, err)
	}
	if Component(nil, "run") != nil {
		t.Error("Component(nil) must stay nil")
	}
}
