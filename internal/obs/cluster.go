package obs

// ClusterStats is the communication snapshot of one simulated multi-node
// training run (internal/cluster): exact wire-byte accounting, the
// simulated time split between compute and communication, and the
// observed update staleness. The byte counters follow the wire-format
// contract of DESIGN.md §11: every message is header + payload, and
//
//	WireBytes == HeaderBytes + GradBytes + ModelBytes
//
// holds exactly, so a report consumer can attribute every byte.
type ClusterStats struct {
	// Nodes is the simulated machine count; Protocol names the
	// communication protocol ("param-server" or "all-reduce").
	Nodes    int    `json:"nodes"`
	Protocol string `json:"protocol"`
	// WireBits is the gradient wire precision (the DMGC C term carried
	// across the interconnect; 32 means full-precision gradients).
	WireBits uint `json:"wire_bits"`
	// Messages counts every simulated message; GradPushes of them carried
	// a gradient payload and ModelPulls a model payload (parameter-server
	// pull responses only).
	Messages   uint64 `json:"messages"`
	GradPushes uint64 `json:"grad_pushes"`
	ModelPulls uint64 `json:"model_pulls,omitempty"`
	// WireBytes is the total bytes put on the interconnect, split exactly
	// into header, gradient-payload and model-payload bytes.
	WireBytes   uint64 `json:"wire_bytes"`
	HeaderBytes uint64 `json:"header_bytes"`
	GradBytes   uint64 `json:"grad_bytes"`
	ModelBytes  uint64 `json:"model_bytes,omitempty"`
	// SimSeconds is the simulated wall-clock of the run under the
	// latency/bandwidth network model; ComputeSeconds and CommSeconds are
	// the per-component totals (they can sum past SimSeconds when the
	// protocol overlaps them; OverlapSavedSeconds is the simulated time
	// the pipelined protocols hid).
	SimSeconds          float64 `json:"sim_seconds"`
	ComputeSeconds      float64 `json:"compute_seconds"`
	CommSeconds         float64 `json:"comm_seconds"`
	OverlapSavedSeconds float64 `json:"overlap_saved_seconds,omitempty"`
	// ExamplesPerSimSec is the simulated training throughput.
	ExamplesPerSimSec float64 `json:"examples_per_sim_sec,omitempty"`
	// Staleness is the per-update staleness histogram: how many model
	// updates landed between an update's model read and its application.
	Staleness HistSnapshot `json:"staleness"`
	// CompensatedUpdates counts updates whose learning rate was scaled
	// down by the staleness compensation rule.
	CompensatedUpdates uint64 `json:"compensated_updates,omitempty"`
	// PerNode attributes updates, bytes, time and staleness to each
	// simulated node, so a single hot or stale node is visible instead of
	// being averaged away in the run-wide aggregates above.
	PerNode []NodeStats `json:"per_node,omitempty"`
}

// NodeStats is one simulated node's share of a cluster run.
type NodeStats struct {
	Node int `json:"node"`
	// Updates counts the gradient contributions this node landed in the
	// model (parameter-server pushes applied, or all-reduce rounds).
	Updates uint64 `json:"updates"`
	// WireBytes is the bytes this node put on the interconnect (its sent
	// messages, header + payload; parameter-server pull responses are
	// attributed to the pulling node).
	WireBytes uint64 `json:"wire_bytes"`
	// ComputeSeconds and CommSeconds split the node's simulated time.
	ComputeSeconds float64 `json:"compute_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	// Staleness is the node's per-update staleness histogram, with the
	// p50/p99 quantiles precomputed for reports (FinishPerNode fills
	// them from the histogram).
	Staleness    HistSnapshot `json:"staleness"`
	StalenessP50 float64      `json:"staleness_p50"`
	StalenessP99 float64      `json:"staleness_p99"`
}

// Merge folds other into s for sweep-level aggregation. Scalar identity
// fields (Nodes, Protocol, WireBits) take other's values when s is still
// zero; throughput is recomputed from the merged totals.
func (s *ClusterStats) Merge(other *ClusterStats) {
	if other == nil {
		return
	}
	if s.Nodes == 0 {
		s.Nodes, s.Protocol, s.WireBits = other.Nodes, other.Protocol, other.WireBits
	}
	s.Messages += other.Messages
	s.GradPushes += other.GradPushes
	s.ModelPulls += other.ModelPulls
	s.WireBytes += other.WireBytes
	s.HeaderBytes += other.HeaderBytes
	s.GradBytes += other.GradBytes
	s.ModelBytes += other.ModelBytes
	s.SimSeconds += other.SimSeconds
	s.ComputeSeconds += other.ComputeSeconds
	s.CommSeconds += other.CommSeconds
	s.OverlapSavedSeconds += other.OverlapSavedSeconds
	s.CompensatedUpdates += other.CompensatedUpdates
	s.Staleness.Merge(other.Staleness)
	s.ExamplesPerSimSec = 0 // meaningless across merged runs of different shapes
	for i := range other.PerNode {
		for len(s.PerNode) <= i {
			s.PerNode = append(s.PerNode, NodeStats{Node: len(s.PerNode)})
		}
		n, o := &s.PerNode[i], &other.PerNode[i]
		n.Updates += o.Updates
		n.WireBytes += o.WireBytes
		n.ComputeSeconds += o.ComputeSeconds
		n.CommSeconds += o.CommSeconds
		n.Staleness.Merge(o.Staleness)
	}
	s.FinishPerNode()
}

// FinishPerNode recomputes each node's staleness quantiles from its
// histogram. Producers call it once after filling (or merging) PerNode.
func (s *ClusterStats) FinishPerNode() {
	for i := range s.PerNode {
		n := &s.PerNode[i]
		n.StalenessP50 = n.Staleness.Quantile(0.5)
		n.StalenessP99 = n.Staleness.Quantile(0.99)
	}
}
