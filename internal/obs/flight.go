package obs

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"sort"
	"sync/atomic"
	"time"
)

// This file holds the flight recorder: an always-on, bounded, lock-free
// ring of the run's most recent structured events (promotions, retries,
// faults, watchdog trips, slow requests, epoch/round completions). It is
// the post-mortem half of the observability stack — cheap enough to leave
// armed in production, and dumped as JSON when something goes wrong
// (divergence, supervisor exhaustion, SIGQUIT) or on demand via the serve
// daemon's GET /debug/flight.
//
// The ring is lock-free on the record path: one atomic fetch-add claims a
// slot, one atomic pointer store publishes the event. Readers snapshot by
// loading every slot pointer; a reader racing a writer sees either the
// old or the new event, never a torn one. A nil *FlightRecorder is fully
// inert, the package's established zero-cost convention.

// FlightEvent is one recorded event. Events are immutable once recorded.
type FlightEvent struct {
	// Seq is the global record sequence number (0-based); the snapshot
	// orders by it, so gaps reveal events lost to ring wrap.
	Seq uint64 `json:"seq"`
	// Time is the wall-clock record time.
	Time time.Time `json:"time"`
	// Component names the subsystem that recorded the event ("run",
	// "cluster", "serve", "log", ...).
	Component string `json:"component"`
	// Kind classifies the event ("promotion", "retry", "fault",
	// "watchdog-stall", "slow-request", "epoch", ...).
	Kind string `json:"kind"`
	// Message is the human-readable one-liner.
	Message string `json:"message,omitempty"`
	// Fields carries small structured annotations.
	Fields map[string]string `json:"fields,omitempty"`
}

// DefaultFlightCapacity is the ring size NewFlightRecorder uses for
// capacity <= 0: enough to hold the final minutes of a misbehaving run
// without ever mattering for memory.
const DefaultFlightCapacity = 512

// FlightRecorder records FlightEvents into a bounded lock-free ring;
// once full, the oldest events are overwritten. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops).
type FlightRecorder struct {
	slots []atomic.Pointer[FlightEvent]
	next  atomic.Uint64 // total events recorded, including overwritten
}

// NewFlightRecorder returns a recorder keeping the most recent capacity
// events (<= 0 selects DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[FlightEvent], capacity)}
}

// Record appends one event. fields may be nil; the recorder keeps the
// map as given, so callers must not mutate it afterwards.
func (r *FlightRecorder) Record(component, kind, message string, fields map[string]string) {
	if r == nil {
		return
	}
	ev := &FlightEvent{
		Time: time.Now(), Component: component, Kind: kind,
		Message: message, Fields: fields,
	}
	ev.Seq = r.next.Add(1) - 1
	r.slots[ev.Seq%uint64(len(r.slots))].Store(ev)
}

// EventCount returns the total number of events recorded so far,
// including any the ring has overwritten.
func (r *FlightRecorder) EventCount() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// FlightSnapshot is the exportable content of a FlightRecorder.
type FlightSnapshot struct {
	// Taken is when the snapshot was captured.
	Taken time.Time `json:"taken"`
	// Recorded is the total events recorded; Dropped of them were
	// overwritten after the ring filled.
	Recorded uint64 `json:"recorded"`
	Dropped  uint64 `json:"dropped,omitempty"`
	// Events are the retained events, oldest first.
	Events []FlightEvent `json:"events"`
}

// Snapshot copies the recorder's current contents, oldest event first.
// It may be taken while events are still being recorded; each retained
// slot is read atomically.
func (r *FlightRecorder) Snapshot() FlightSnapshot {
	snap := FlightSnapshot{Taken: time.Now()}
	if r == nil {
		return snap
	}
	snap.Recorded = r.next.Load()
	events := make([]FlightEvent, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			events = append(events, *ev)
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	snap.Events = events
	if n := uint64(len(events)); snap.Recorded > n {
		snap.Dropped = snap.Recorded - n
	}
	return snap
}

// WriteJSON dumps the recorder's snapshot as indented JSON.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}

// DumpFile writes the snapshot to path, creating or truncating it. It
// is the post-mortem exit path: call it when a run dies (divergence,
// supervisor exhaustion) or on SIGQUIT.
func (r *FlightRecorder) DumpFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ServeHTTP serves the snapshot as JSON — the serve daemon mounts this
// at GET /debug/flight.
func (r *FlightRecorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	r.WriteJSON(w)
}

// LogHandler returns a slog.Handler that forwards every record to next
// and additionally captures records at or above min into the recorder
// (component taken from the record's "component" attribute, kind "log").
// It is how the structured-logging and flight-recorder halves compose:
// warnings and errors logged anywhere automatically land in the
// post-mortem ring. next may be nil to only capture.
func (r *FlightRecorder) LogHandler(next slog.Handler, min slog.Level) slog.Handler {
	return &flightLogHandler{rec: r, next: next, min: min}
}

type flightLogHandler struct {
	rec   *FlightRecorder
	next  slog.Handler
	min   slog.Level
	attrs []slog.Attr
}

func (h *flightLogHandler) Enabled(ctx context.Context, level slog.Level) bool {
	if level >= h.min {
		return true
	}
	return h.next != nil && h.next.Enabled(ctx, level)
}

func (h *flightLogHandler) Handle(ctx context.Context, rec slog.Record) error {
	var err error
	if h.next != nil && h.next.Enabled(ctx, rec.Level) {
		err = h.next.Handle(ctx, rec.Clone())
	}
	if rec.Level < h.min {
		return err
	}
	component := "log"
	fields := make(map[string]string, rec.NumAttrs()+len(h.attrs)+1)
	add := func(a slog.Attr) {
		if a.Key == "component" {
			component = a.Value.String()
			return
		}
		fields[a.Key] = a.Value.String()
	}
	for _, a := range h.attrs {
		add(a)
	}
	rec.Attrs(func(a slog.Attr) bool { add(a); return true })
	fields["level"] = rec.Level.String()
	h.rec.Record(component, "log", rec.Message, fields)
	return err
}

func (h *flightLogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	if h.next != nil {
		nh.next = h.next.WithAttrs(attrs)
	}
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

func (h *flightLogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	if h.next != nil {
		nh.next = h.next.WithGroup(name)
	}
	return &nh
}
