package obs

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	h := tr.Begin("cat", "name", 0)
	h.End()
	h.EndArgs(map[string]string{"k": "v"})
	tr.Instant("cat", "name", 0, nil)
	tr.NameTrack(1, "worker")
	if got := tr.SpanCount(); got != 0 {
		t.Errorf("nil SpanCount = %d", got)
	}
	if snap := tr.Snapshot(); len(snap.Spans) != 0 || snap.Dropped != 0 {
		t.Errorf("nil Snapshot = %+v", snap)
	}
}

func TestTracerRecordsSpans(t *testing.T) {
	tr := NewTracer(16)
	h := tr.Begin("core", "epoch", 2)
	time.Sleep(time.Millisecond)
	h.EndArgs(map[string]string{"epoch": "1"})
	tr.Instant("run", "retry", 0, nil)
	snap := tr.Snapshot()
	if len(snap.Spans) != 2 || snap.Dropped != 0 {
		t.Fatalf("snapshot: %d spans, %d dropped", len(snap.Spans), snap.Dropped)
	}
	s := snap.Spans[0]
	if s.Cat != "core" || s.Name != "epoch" || s.TID != 2 || s.Instant {
		t.Errorf("span 0: %+v", s)
	}
	if s.Dur <= 0 {
		t.Errorf("span 0 duration = %v, want > 0", s.Dur)
	}
	if s.Args["epoch"] != "1" {
		t.Errorf("span 0 args: %v", s.Args)
	}
	if i := snap.Spans[1]; !i.Instant || i.Name != "retry" {
		t.Errorf("span 1: %+v", i)
	}
}

func TestTracerRingDropsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		h := tr.Begin("t", fmt.Sprintf("s%d", i), 0)
		h.End()
	}
	if got := tr.SpanCount(); got != 10 {
		t.Errorf("SpanCount = %d, want 10 (dropped spans still count)", got)
	}
	snap := tr.Snapshot()
	if snap.Dropped != 6 {
		t.Errorf("Dropped = %d, want 6", snap.Dropped)
	}
	if len(snap.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(snap.Spans))
	}
	// Oldest-first order across the wrap point.
	for i, s := range snap.Spans {
		if want := fmt.Sprintf("s%d", 6+i); s.Name != want {
			t.Errorf("span %d = %q, want %q", i, s.Name, want)
		}
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(128)
	var wg sync.WaitGroup
	const workers, each = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr.NameTrack(w, fmt.Sprintf("w%d", w))
			for i := 0; i < each; i++ {
				h := tr.Begin("t", "task", w)
				h.End()
			}
		}(w)
	}
	wg.Wait()
	if got := tr.SpanCount(); got != workers*each {
		t.Errorf("SpanCount = %d, want %d", got, workers*each)
	}
	if snap := tr.Snapshot(); len(snap.Spans)+int(snap.Dropped) != workers*each {
		t.Errorf("retained %d + dropped %d != %d", len(snap.Spans), snap.Dropped, workers*each)
	}
}

func TestWriteTraceChromeJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.NameTrack(1, "sweep-worker-1")
	h := tr.Begin("sweep", "task", 1)
	h.End()
	tr.Instant("run", "fault-crash", 0, map[string]string{"step": "9"})
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The export must be plain trace_event JSON any viewer accepts:
	// decode it generically, not through the package's own types.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("%d events, want 3 (metadata + span + instant)", len(doc.TraceEvents))
	}
	meta := doc.TraceEvents[0]
	if meta["ph"] != "M" || meta["name"] != "thread_name" {
		t.Errorf("event 0 should be thread_name metadata: %v", meta)
	}
	span := doc.TraceEvents[1]
	if span["ph"] != "X" || span["cat"] != "sweep" || span["pid"] != float64(1) || span["tid"] != float64(1) {
		t.Errorf("event 1: %v", span)
	}
	inst := doc.TraceEvents[2]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Errorf("event 2 should be a thread-scoped instant: %v", inst)
	}
}

func TestSummarizeTrace(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 3; i++ {
		h := tr.Begin("core", "epoch", 0)
		time.Sleep(time.Millisecond)
		h.End()
	}
	h := tr.Begin("run", "attempt", 0)
	time.Sleep(30 * time.Millisecond)
	h.End()
	tr.Instant("run", "retry", 0, nil) // ignored by the summary
	var buf bytes.Buffer
	if err := tr.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sums, err := SummarizeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("%d phases, want 2: %+v", len(sums), sums)
	}
	// Sorted by total descending: the 5ms attempt leads the ~3ms epochs.
	if sums[0].Name != "attempt" || sums[0].Count != 1 {
		t.Errorf("phase 0: %+v", sums[0])
	}
	if sums[1].Name != "epoch" || sums[1].Count != 3 {
		t.Errorf("phase 1: %+v", sums[1])
	}
	if sums[1].Min <= 0 || sums[1].Max < sums[1].Min || sums[1].Mean() < sums[1].Min {
		t.Errorf("epoch durations inconsistent: %+v", sums[1])
	}
	if _, err := SummarizeTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage input should fail")
	}
}

func TestTracerContext(t *testing.T) {
	if TracerFrom(nil) != nil || TraceTID(nil) != 0 {
		t.Error("nil context should yield nil tracer, tid 0")
	}
	tr := NewTracer(4)
	ctx := ContextWithTracer(nil, tr)
	if TracerFrom(ctx) != tr {
		t.Error("tracer not carried by context")
	}
	ctx = ContextWithTraceTID(ctx, 7)
	if TraceTID(ctx) != 7 || TracerFrom(ctx) != tr {
		t.Error("tid not carried alongside tracer")
	}
	if got := ContextWithTracer(ctx, nil); TracerFrom(got) != tr {
		t.Error("attaching a nil tracer should leave the context unchanged")
	}
}

// TestSummarizeTraceErrors pins the CLI-facing failure messages for the
// degenerate trace files a user actually produces: an empty file (run
// never wrote), a truncated document (run killed mid-write), corrupt
// bytes, and a valid document with no events.
func TestSummarizeTraceErrors(t *testing.T) {
	for _, tc := range []struct {
		name, in, want string
	}{
		{"empty", "", "trace file is empty"},
		{"truncated", `{"traceEvents":[{"ph":"X","cat":"core",`, "trace file is truncated"},
		{"corrupt", `{"traceEvents":} oops`, "corrupt at byte"},
		{"no events", `{"traceEvents":[]}`, "contains no events"},
		{"metadata only", `{"traceEvents":null,"displayTimeUnit":"ms"}`, "contains no events"},
	} {
		_, err := SummarizeTrace(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestSummarizeTraceGzip checks the summary paths accept gzipped input
// transparently — both a .json.gz written by a run and the trace.json.gz
// inside a debug bundle.
func TestSummarizeTraceGzip(t *testing.T) {
	tr := NewTracer(16)
	tr.Begin("core", "epoch", 0).End()
	tr.Begin("core", "epoch", 1).End()
	var plain bytes.Buffer
	if err := tr.WriteTrace(&plain); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}

	sums, err := SummarizeTrace(bytes.NewReader(zipped.Bytes()))
	if err != nil {
		t.Fatalf("SummarizeTrace(gzip): %v", err)
	}
	if len(sums) != 1 || sums[0].Name != "epoch" || sums[0].Count != 2 {
		t.Errorf("gzip phases = %+v", sums)
	}
	tracks, err := SummarizeTracks(bytes.NewReader(zipped.Bytes()))
	if err != nil {
		t.Fatalf("SummarizeTracks(gzip): %v", err)
	}
	if len(tracks) != 2 {
		t.Errorf("gzip tracks = %+v", tracks)
	}

	// A gzip header followed by garbage reports the gzip layer, not a
	// JSON syntax offset into the compressed bytes.
	bad := append([]byte{0x1f, 0x8b}, []byte("not a gzip stream")...)
	if _, err := SummarizeTrace(bytes.NewReader(bad)); err == nil ||
		!strings.Contains(err.Error(), "gzip") {
		t.Errorf("corrupt gzip error = %v, want a gzip mention", err)
	}
}
