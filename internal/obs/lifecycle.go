package obs

import "time"

// This file holds the observability vocabulary of the run supervisor
// (internal/run): the lifecycle callback surface and the counter snapshot
// a supervised, fault-tolerant run reports. It lives here rather than in
// internal/run so that exporters, the commands' -report documents and the
// facade all speak one observability schema.

// CheckpointInfo describes one checkpoint written to disk.
type CheckpointInfo struct {
	// Epoch is the cumulative number of completed epochs the checkpoint
	// captures.
	Epoch int
	// Path is the checkpoint file's final (post-rename) location.
	Path string
	// Bytes is the file size.
	Bytes int64
}

// RetryInfo describes one supervisor retry decision.
type RetryInfo struct {
	// Attempt numbers the attempt that just failed (1-based).
	Attempt int
	// Err is the failure that triggered the retry.
	Err error
	// Backoff is the delay before the next attempt starts.
	Backoff time.Duration
	// ResumeEpoch is the epoch the next attempt resumes from (0 when no
	// usable checkpoint exists).
	ResumeEpoch int
	// Threads is the worker count the next attempt will run with (lower
	// than the configured count after graceful degradation).
	Threads int
}

// LifecycleHooks is the optional extension of Hooks that receives the run
// supervisor's lifecycle events. A Hooks implementation that also
// implements this interface gets checkpoint and retry callbacks from
// supervised runs; implementations that do not are simply not called.
// Extending via a separate optional interface keeps existing Hooks
// implementations compiling unchanged.
//
// Both callbacks fire on the supervisor's goroutine, never concurrently
// with each other, but possibly concurrently with OnStep/OnWorker.
type LifecycleHooks interface {
	// OnCheckpoint fires after a checkpoint file has been atomically
	// renamed into place.
	OnCheckpoint(CheckpointInfo)
	// OnRetry fires after an attempt fails and before the backoff sleep.
	OnRetry(RetryInfo)
}

// SupervisorStats is the counter snapshot of one supervised run: what the
// retry/checkpoint/fault machinery did around the training attempts. The
// commands' -report documents embed it next to RunStats.
type SupervisorStats struct {
	// Attempts counts training attempts, including the successful one.
	Attempts int `json:"attempts"`
	// Retries counts attempts that were retried after a recoverable
	// failure (Attempts - 1 on a run that eventually succeeds).
	Retries int `json:"retries"`
	// Checkpoints counts checkpoint files written; CheckpointBytes is
	// their cumulative size.
	Checkpoints     int   `json:"checkpoints"`
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// Resumes counts attempts that started from a checkpoint instead of
	// from scratch; ResumedEpoch is the last resume point.
	Resumes      int `json:"resumes"`
	ResumedEpoch int `json:"resumed_epoch,omitempty"`
	// InjectedCrashes, InjectedStalls and CorruptedCheckpoints count
	// faults the injection schedule fired.
	InjectedCrashes      int `json:"injected_crashes,omitempty"`
	InjectedStalls       int `json:"injected_stalls,omitempty"`
	CorruptedCheckpoints int `json:"corrupted_checkpoints,omitempty"`
	// CheckpointFallbacks counts corrupt or unreadable checkpoint files
	// the loader skipped while resuming (each one fell back to the next
	// older checkpoint).
	CheckpointFallbacks int `json:"checkpoint_fallbacks,omitempty"`
	// StallsDetected counts watchdog firings (injected or real);
	// Degradations counts worker-count reductions they triggered.
	StallsDetected int `json:"stalls_detected,omitempty"`
	Degradations   int `json:"degradations,omitempty"`
	// FinalThreads is the worker count of the last attempt (lower than
	// configured after degradation).
	FinalThreads int `json:"final_threads"`
}
