package obs

import (
	"testing"
	"time"
)

// captureConfig is a profiler config that captures instantly: CPU
// sampling is disabled (a 2s default sample would dominate test time and
// collide with any other CPU profile in the process).
func captureConfig(dir string) ProfileConfig {
	return ProfileConfig{Dir: dir, CPUDuration: 0, Interval: time.Hour, MutexFraction: -1}
}

func TestProfilerCaptureNow(t *testing.T) {
	p, err := NewProfiler(captureConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	files, err := p.CaptureNow()
	if err != nil {
		t.Fatalf("CaptureNow: %v", err)
	}
	kinds := map[string]bool{}
	for _, f := range files {
		kinds[f.Kind] = true
		if f.Bytes <= 0 {
			t.Errorf("%s profile is empty", f.Kind)
		}
	}
	for _, k := range []string{"heap", "goroutine", "mutex"} {
		if !kinds[k] {
			t.Errorf("capture round lacks %s: %v", k, kinds)
		}
	}
	if kinds["cpu"] {
		t.Error("CPUDuration 0 still captured a cpu profile")
	}
	if got := p.Rounds(); got != 1 {
		t.Errorf("Rounds() = %d, want 1", got)
	}
	if inv := p.Inventory(); len(inv) != len(files) {
		t.Errorf("Inventory lists %d files, capture returned %d", len(inv), len(files))
	}
}

func TestProfilerEviction(t *testing.T) {
	cfg := captureConfig(t.TempDir())
	// A budget smaller than any profile: eviction must still keep the
	// newest round intact (the keep-set), removing everything older.
	cfg.MaxBytes = 1
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first, err := p.CaptureNow()
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.CaptureNow()
	if err != nil {
		t.Fatal(err)
	}
	inv := p.Inventory()
	if len(inv) != len(second) {
		t.Fatalf("ring holds %d files after eviction, want the newest round's %d", len(inv), len(second))
	}
	survivors := map[string]bool{}
	for _, f := range inv {
		survivors[f.Path] = true
	}
	for _, f := range first {
		if survivors[f.Path] {
			t.Errorf("old round's %s survived a 1-byte budget", f.Path)
		}
	}
	for _, f := range second {
		if !survivors[f.Path] {
			t.Errorf("newest round's %s was evicted", f.Path)
		}
	}
}

func TestProfilerNewest(t *testing.T) {
	p, err := NewProfiler(captureConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CaptureNow(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond) // distinct capture timestamps
	second, err := p.CaptureNow()
	if err != nil {
		t.Fatal(err)
	}
	newest := p.Newest("heap")
	if newest.Path == "" {
		t.Fatal("Newest found no heap profile")
	}
	for _, f := range second {
		if f.Kind == "heap" && f.Path != newest.Path {
			t.Errorf("Newest(heap) = %s, want the second round's %s", newest.Path, f.Path)
		}
	}
	if missing := p.Newest("cpu"); missing.Path != "" {
		t.Errorf("Newest(cpu) = %+v with CPU capture disabled", missing)
	}
}

func TestProfilerStartStop(t *testing.T) {
	p, err := NewProfiler(captureConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	deadline := time.Now().Add(5 * time.Second)
	for p.Rounds() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background loop took no capture round")
		}
		time.Sleep(time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
}

func TestProfilerStopWithoutStart(t *testing.T) {
	p, err := NewProfiler(captureConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { p.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop without Start hung")
	}
	// Stop consumed the start-once: Start must not launch the loop now.
	p.Start()
	time.Sleep(10 * time.Millisecond)
	if got := p.Rounds(); got != 0 {
		t.Errorf("loop ran after Stop-then-Start: %d rounds", got)
	}
}

func TestProfilerConfigValidation(t *testing.T) {
	if _, err := NewProfiler(ProfileConfig{}); err == nil {
		t.Error("empty Dir accepted")
	}
	if _, err := NewProfiler(ProfileConfig{Dir: t.TempDir(), CPUDuration: -time.Second}); err == nil {
		t.Error("negative CPUDuration accepted")
	}
}

func TestNilProfilerIsInert(t *testing.T) {
	var p *Profiler
	p.Start()
	p.Stop()
	if files, err := p.CaptureNow(); files != nil || err != nil {
		t.Error("nil profiler captured")
	}
	if p.Inventory() != nil || p.Rounds() != 0 || p.Newest("cpu").Path != "" {
		t.Error("nil profiler reported state")
	}
}

func TestProfileNameRoundTrip(t *testing.T) {
	now := time.Unix(0, 1700000000123456789)
	name := profileName("heap", now)
	kind, ts, ok := parseProfileName(name)
	if !ok || kind != "heap" || !ts.Equal(now) {
		t.Errorf("parseProfileName(%q) = %q, %v, %v", name, kind, ts, ok)
	}
	if _, _, ok := parseProfileName("README.md"); ok {
		t.Error("parseProfileName accepted a foreign file")
	}
}
