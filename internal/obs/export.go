package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sort"
	"sync"
)

// WriteJSON marshals v with indentation and writes it to path, creating
// or truncating the file. It is the shared exporter behind the commands'
// -report flags.
func WriteJSON(path string, v any) error {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Vars is an expvar-style registry of named snapshot functions: each
// published variable is a closure returning a JSON-marshalable value, so
// readers always see a fresh snapshot. The zero value is ready to use.
type Vars struct {
	mu   sync.Mutex
	vars map[string]func() any
}

// Publish registers fn under name, replacing any previous registration.
func (v *Vars) Publish(name string, fn func() any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.vars == nil {
		v.vars = make(map[string]func() any)
	}
	v.vars[name] = fn
}

// Snapshot evaluates every published variable.
func (v *Vars) Snapshot() map[string]any {
	v.mu.Lock()
	fns := make(map[string]func() any, len(v.vars))
	for name, fn := range v.vars {
		fns[name] = fn
	}
	v.mu.Unlock()
	// Evaluate outside the lock: snapshot closures may themselves take
	// locks.
	out := make(map[string]any, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// ServeHTTP serves the snapshot as indented JSON with sorted keys.
func (v *Vars) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := v.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, "{")
	for i, k := range keys {
		buf, err := json.MarshalIndent(snap[k], "  ", "  ")
		if err != nil {
			buf = []byte(fmt.Sprintf("%q", err.Error()))
		}
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		fmt.Fprintf(w, "  %q: %s%s\n", k, buf, comma)
	}
	fmt.Fprintln(w, "}")
}

// Default is the process-wide registry used by Publish and Serve.
var Default = new(Vars)

// Publish registers fn on the Default registry.
func Publish(name string, fn func() any) { Default.Publish(name, fn) }

// Server is a running observability endpoint.
type Server struct {
	// Addr is the address the listener is bound to (useful with ":0").
	Addr string
	srv  *http.Server
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP endpoint on addr exposing the Default registry at
// /debug/obs and the standard pprof handlers at /debug/pprof/. It
// returns once the listener is bound; the server runs until Close. This
// is the optional pprof/HTTP exporter — nothing in the engine depends on
// it.
func Serve(addr string) (*Server, error) { return ServeWith(addr, nil) }

// ServeWith is Serve with an optional Prometheus-style metrics handler
// (typically a *LiveMetrics) mounted at /metrics.
func ServeWith(addr string, metrics http.Handler) (*Server, error) {
	return ServeDebug(addr, metrics, nil)
}

// ServeDebug is ServeWith plus arbitrary extra routes — the training
// daemon uses it to expose /debug/flight, /debug/dash and /debug/bundle
// on the same mux as pprof and metrics. Nil handlers in extra are
// skipped.
func ServeDebug(addr string, metrics http.Handler, extra map[string]http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/obs", Default)
	if metrics != nil {
		mux.Handle("/metrics", metrics)
	}
	for pattern, h := range extra {
		if h != nil {
			mux.Handle(pattern, h)
		}
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{Addr: ln.Addr().String(), srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}
