package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestSeriesNilSafe(t *testing.T) {
	var s *Series
	s.ObserveSample(1, 0.5)
	s.EpochTick(1, 0.1, 100, 0)
	if s.Budget() != 0 {
		t.Error("nil Budget should be 0")
	}
	if s.Snapshot() != nil {
		t.Error("nil Snapshot should be nil")
	}
	var sn *SeriesSnapshot
	if sn.Final() != nil {
		t.Error("nil snapshot Final should be nil")
	}
}

func TestNewSeriesBudgetNormalization(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultSeriesBudget}, {-3, DefaultSeriesBudget},
		{1, 2}, {7, 8}, {8, 8},
	} {
		if got := NewSeries(tc.in).Budget(); got != tc.want {
			t.Errorf("NewSeries(%d).Budget() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// tick drives e epochs into s with synthetic cumulative counters: 100
// steps and 3 mutex waits per epoch, 2 staleness samples per epoch.
func tick(s *Series, epochs int) {
	for e := 1; e <= epochs; e++ {
		s.ObserveSample(uint64(e%4), 0.5)
		s.ObserveSample(0, 1.5)
		s.EpochTick(e, 1.0/float64(e), uint64(100*e), uint64(3*e))
	}
}

func TestSeriesDownsamplingPreservesTotals(t *testing.T) {
	const budget = 8
	for _, epochs := range []int{1, budget, budget + 1, 3 * budget, 10 * budget} {
		s := NewSeries(budget)
		tick(s, epochs)
		sn := s.Snapshot()
		if len(sn.Windows) > budget {
			t.Fatalf("epochs=%d: %d windows exceed budget %d", epochs, len(sn.Windows), budget)
		}
		var steps, waits, samples uint64
		for _, w := range sn.Windows {
			steps += w.Steps
			waits += w.MutexWaits
			samples += w.Staleness.Count
		}
		if want := uint64(100 * epochs); steps != want {
			t.Errorf("epochs=%d: total steps %d, want %d (downsampling must preserve totals)", epochs, steps, want)
		}
		if want := uint64(3 * epochs); waits != want {
			t.Errorf("epochs=%d: total waits %d, want %d", epochs, waits, want)
		}
		if want := uint64(2 * epochs); samples != want {
			t.Errorf("epochs=%d: staleness samples %d, want %d", epochs, samples, want)
		}
		// Windows tile the epoch range contiguously.
		prev := 0
		for i, w := range sn.Windows {
			if w.StartEpoch != prev {
				t.Fatalf("epochs=%d: window %d starts at %d, want %d", epochs, i, w.StartEpoch, prev)
			}
			prev = w.EndEpoch
		}
		if prev != epochs {
			t.Errorf("epochs=%d: windows end at %d", epochs, prev)
		}
		if last := sn.Final(); last.Loss != 1.0/float64(epochs) {
			t.Errorf("epochs=%d: final loss %g", epochs, last.Loss)
		}
	}
}

func TestSeriesMemoryBoundOnLongRuns(t *testing.T) {
	// The acceptance check: a 10x longer run must not grow the recorder.
	const budget = 16
	short := NewSeries(budget)
	tick(short, 100)
	long := NewSeries(budget)
	tick(long, 1000)
	ns, nl := len(short.Snapshot().Windows), len(long.Snapshot().Windows)
	if nl > budget {
		t.Fatalf("10x run: %d windows exceed budget %d", nl, budget)
	}
	if ns > budget {
		t.Fatalf("1x run: %d windows exceed budget %d", ns, budget)
	}
	// Downsampling halves to at least budget/2, never below.
	if nl < budget/2 {
		t.Errorf("10x run: %d windows, want >= %d", nl, budget/2)
	}
	if ew := long.Snapshot().EpochsPerWindow; ew != 64 {
		// 1000 epochs / 16 windows -> stride 2^ceil(log2(62.5)) = 64.
		t.Errorf("10x run stride = %d, want 64", ew)
	}
}

func TestSeriesCounterRestartResetsBaseline(t *testing.T) {
	s := NewSeries(8)
	s.EpochTick(1, 0.5, 1000, 10)
	s.EpochTick(2, 0.4, 2000, 20)
	// A supervised retry restarts the engine: cumulative counters drop.
	// The recorder must treat the post-restart counters as a fresh
	// baseline, not underflow the delta.
	s.EpochTick(2, 0.45, 900, 5)
	s.EpochTick(3, 0.35, 1800, 9)
	var steps uint64
	for _, w := range s.Snapshot().Windows {
		steps += w.Steps
	}
	if want := uint64(1000 + 1000 + 900 + 900); steps != want {
		t.Errorf("total steps %d, want %d", steps, want)
	}
}

func TestSeriesConcurrentObserve(t *testing.T) {
	s := NewSeries(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.ObserveSample(uint64(i%8), 1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := 1; e <= 50; e++ {
			s.EpochTick(e, 0.1, uint64(10*e), 0)
		}
	}()
	wg.Wait()
	<-done
	var samples uint64
	for _, w := range s.Snapshot().Windows {
		samples += w.Staleness.Count
	}
	if samples != 4000 {
		t.Errorf("samples %d, want 4000", samples)
	}
}

func TestSeriesSnapshotThroughputAndCSV(t *testing.T) {
	s := NewSeries(4)
	tick(s, 3)
	sn := s.Snapshot()
	for i, w := range sn.Windows {
		if dt := w.EndSeconds - w.StartSeconds; dt > 0 && w.StepsPerSec == 0 {
			t.Errorf("window %d: StepsPerSec not filled", i)
		}
	}
	var buf bytes.Buffer
	if err := sn.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(sn.Windows) {
		t.Fatalf("%d CSV lines, want header + %d windows", len(lines), len(sn.Windows))
	}
	if !strings.HasPrefix(lines[0], "start_epoch,end_epoch,") {
		t.Errorf("header: %q", lines[0])
	}
	cols := strings.Count(lines[0], ",") + 1
	for i, l := range lines[1:] {
		if got := strings.Count(l, ",") + 1; got != cols {
			t.Errorf("row %d has %d columns, want %d", i, got, cols)
		}
	}
}
