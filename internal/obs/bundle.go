package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file holds the anomaly-triggered debug bundle: one tar.gz that
// captures everything the obs stack knows at the moment something goes
// wrong — flight-ring snapshot, last trace window, windowed series,
// current pprof profiles, stats JSON, resolved config — so the operator
// triages from the artifact instead of re-running with the right flags.
//
// Triggers are debounced: an anomaly storm (a diverging run trips the
// watchdog, then stalls, then exhausts retries) produces one bundle per
// cooldown window, with the suppressed trigger count recorded in the
// next bundle's manifest. A nil *Bundler is fully inert.

// DebugBundleSuffix is the file-name suffix of every bundle the Bundler
// writes; CI globs for it when collecting failure artifacts.
const DebugBundleSuffix = ".debugbundle.tar.gz"

// Default BundleConfig values.
const (
	// DefaultBundleCooldown is the trigger debounce window.
	DefaultBundleCooldown = time.Minute
	// DefaultMaxBundles is how many bundles are kept on disk per prefix.
	DefaultMaxBundles = 8
)

// BundleConfig configures a Bundler. Every source is optional; absent
// sources simply produce no section in the bundle.
type BundleConfig struct {
	// Dir is where bundles are written (default "."), created if missing.
	Dir string
	// Prefix names the bundle files: <Prefix>-<reason>-<seq> + suffix
	// (default "buckwild").
	Prefix string
	// Cooldown debounces triggers: a trigger within Cooldown of the last
	// written bundle is counted, flight-logged, and dropped (default 1m;
	// negative disables debouncing).
	Cooldown time.Duration
	// MaxBundles bounds how many of this Bundler's bundles stay on disk;
	// oldest are pruned after each write (default 8).
	MaxBundles int

	// Flight, Tracer, Series and Profiler are the live obs sources
	// snapshotted into the bundle. All may be nil.
	Flight   *FlightRecorder
	Tracer   *Tracer
	Series   *Series
	Profiler *Profiler

	// Logger, when non-nil, gets one Info line per bundle written and a
	// Warn on write failure.
	Logger *slog.Logger
}

func (c *BundleConfig) fill() {
	if c.Dir == "" {
		c.Dir = "."
	}
	if c.Prefix == "" {
		c.Prefix = "buckwild"
	}
	if c.Cooldown == 0 {
		c.Cooldown = DefaultBundleCooldown
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = DefaultMaxBundles
	}
}

// BundleEntry is one file inside a bundle, as listed by the manifest.
type BundleEntry struct {
	Name  string `json:"name"`
	Bytes int64  `json:"bytes"`
}

// BundleManifest is the bundle's self-description, stored first in the
// archive as manifest.json so bundle-summary can stream it.
type BundleManifest struct {
	// Reason is the trigger class ("divergence", "stall",
	// "retries-exhausted", "slow-request", "on-demand"); Detail the
	// trigger's one-line specifics.
	Reason string    `json:"reason"`
	Detail string    `json:"detail,omitempty"`
	Time   time.Time `json:"time"`
	// Seq counts bundles written by this process; Suppressed counts
	// triggers the cooldown swallowed since the previous bundle.
	Seq        uint64 `json:"seq"`
	Suppressed uint64 `json:"suppressed,omitempty"`

	// Build/host identification.
	Go       string `json:"go"`
	OS       string `json:"os"`
	Arch     string `json:"arch"`
	NumCPU   int    `json:"num_cpu"`
	PID      int    `json:"pid"`
	Hostname string `json:"hostname,omitempty"`

	// Files inventories the archive (manifest excluded); Profiles the
	// pprof profiles under profiles/, with Path rewritten to the
	// in-archive name.
	Files    []BundleEntry `json:"files"`
	Profiles []ProfileFile `json:"profiles,omitempty"`
}

// section is one caller-registered JSON payload (stats, config).
type section struct {
	name string // archive path without the .json suffix, e.g. "stats/run"
	fn   func() any
}

// Bundler writes anomaly-triggered debug bundles. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops).
type Bundler struct {
	cfg BundleConfig

	mu         sync.Mutex
	last       time.Time
	seq        uint64
	suppressed uint64
	sections   []section
}

// NewBundler returns a Bundler writing into cfg.Dir, creating it if
// missing.
func NewBundler(cfg BundleConfig) (*Bundler, error) {
	cfg.fill()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: bundler: %w", err)
	}
	return &Bundler{cfg: cfg}, nil
}

// AddSection registers a JSON section: at bundle time fn's result is
// marshaled into <name>.json inside the archive (name may contain
// slashes, e.g. "stats/run"). fn runs under the bundle write and should
// return a snapshot, not a live struct. Nil-safe; a nil fn no-ops.
func (b *Bundler) AddSection(name string, fn func() any) {
	if b == nil || fn == nil || name == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.sections {
		if b.sections[i].name == name {
			b.sections[i].fn = fn
			return
		}
	}
	b.sections = append(b.sections, section{name: name, fn: fn})
}

// Trigger requests a bundle for an anomaly. Inside the cooldown window
// of the previous bundle the trigger is counted and dropped (wrote is
// false); otherwise a bundle is written and its path returned. Errors
// are logged, flight-recorded and swallowed — an anomaly handler must
// never die because evidence collection did. Nil-safe.
func (b *Bundler) Trigger(reason, detail string) (path string, wrote bool) {
	if b == nil {
		return "", false
	}
	b.mu.Lock()
	now := time.Now()
	if b.cfg.Cooldown > 0 && !b.last.IsZero() && now.Sub(b.last) < b.cfg.Cooldown {
		b.suppressed++
		n := b.suppressed
		b.mu.Unlock()
		b.cfg.Flight.Record("bundle", "suppressed", reason,
			map[string]string{"detail": detail, "suppressed": fmt.Sprint(n)})
		return "", false
	}
	b.last = now
	b.seq++
	seq := b.seq
	supp := b.suppressed
	b.suppressed = 0
	b.mu.Unlock()

	// Record the trigger before snapshotting the flight ring so the
	// bundle's own flight.json shows what tripped it.
	b.cfg.Flight.Record("bundle", "trigger", reason, map[string]string{"detail": detail})

	name := fmt.Sprintf("%s-%s-%03d%s", b.cfg.Prefix, sanitizeReason(reason), seq, DebugBundleSuffix)
	path = filepath.Join(b.cfg.Dir, name)
	err := b.writeFile(path, reason, detail, seq, supp)
	if err != nil {
		if b.cfg.Logger != nil {
			b.cfg.Logger.Warn("debug bundle write failed",
				slog.String("reason", reason), slog.String("error", err.Error()))
		}
		b.cfg.Flight.Record("bundle", "error", err.Error(), nil)
		return "", false
	}
	if b.cfg.Logger != nil {
		b.cfg.Logger.Info("debug bundle written",
			slog.String("reason", reason), slog.String("path", path))
	}
	b.cfg.Flight.Record("bundle", "written", path, map[string]string{"reason": reason})
	b.prune()
	return path, true
}

func sanitizeReason(reason string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, reason)
}

func (b *Bundler) writeFile(path, reason, detail string, seq, suppressed uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteTo(f, reason, detail, seq, suppressed); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// WriteTo streams one complete bundle to w. Exposed so the /debug/bundle
// endpoint can serve an on-demand bundle without touching disk. Sections
// that fail to serialize are skipped, not fatal: a bundle with most of
// the evidence beats no bundle.
func (b *Bundler) WriteTo(w io.Writer, reason, detail string, seq, suppressed uint64) error {
	if b == nil {
		return errors.New("obs: nil bundler")
	}
	now := time.Now()

	// Build every section in memory first so the manifest (written as the
	// archive's first entry) can inventory names and sizes.
	type blob struct {
		name string
		data []byte
	}
	var blobs []blob
	add := func(name string, data []byte, err error) {
		if err != nil || len(data) == 0 {
			return
		}
		blobs = append(blobs, blob{name, data})
	}

	if b.cfg.Flight != nil {
		var buf bytes.Buffer
		err := b.cfg.Flight.WriteJSON(&buf)
		add("flight.json", buf.Bytes(), err)
	}
	if b.cfg.Tracer != nil {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		err := b.cfg.Tracer.WriteTrace(gz)
		if cerr := gz.Close(); err == nil {
			err = cerr
		}
		add("trace.json.gz", buf.Bytes(), err)
	}
	if b.cfg.Series != nil {
		data, err := json.MarshalIndent(b.cfg.Series.Snapshot(), "", "  ")
		add("series.json", data, err)
	}

	b.mu.Lock()
	sections := append([]section(nil), b.sections...)
	b.mu.Unlock()
	for _, s := range sections {
		v := s.fn()
		if v == nil {
			continue
		}
		data, err := json.MarshalIndent(v, "", "  ")
		add(s.name+".json", data, err)
	}

	// Current pprof profiles: the instantaneous kinds captured inline
	// (no Profiler required), plus a human-readable goroutine dump, plus
	// the newest CPU profile from the ring when a Profiler is attached —
	// a fresh CPU capture would block the trigger path for seconds.
	var profiles []ProfileFile
	for _, kind := range []string{"heap", "goroutine", "mutex"} {
		prof := pprof.Lookup(kind)
		if prof == nil {
			continue
		}
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 0); err != nil {
			continue
		}
		name := "profiles/" + kind + ".pprof"
		blobs = append(blobs, blob{name, buf.Bytes()})
		profiles = append(profiles, ProfileFile{Kind: kind, Path: name, Bytes: int64(buf.Len()), Time: now})
	}
	if prof := pprof.Lookup("goroutine"); prof != nil {
		var buf bytes.Buffer
		if err := prof.WriteTo(&buf, 2); err == nil {
			blobs = append(blobs, blob{"profiles/goroutines.txt", buf.Bytes()})
		}
	}
	if cpu := b.cfg.Profiler.Newest("cpu"); cpu.Path != "" {
		if data, err := os.ReadFile(cpu.Path); err == nil {
			name := "profiles/cpu.pprof"
			blobs = append(blobs, blob{name, data})
			profiles = append(profiles, ProfileFile{Kind: "cpu", Path: name, Bytes: int64(len(data)), Time: cpu.Time})
		}
	}

	host, _ := os.Hostname()
	man := BundleManifest{
		Reason: reason, Detail: detail, Time: now,
		Seq: seq, Suppressed: suppressed,
		Go: runtime.Version(), OS: runtime.GOOS, Arch: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), PID: os.Getpid(), Hostname: host,
		Profiles: profiles,
	}
	for _, bl := range blobs {
		man.Files = append(man.Files, BundleEntry{Name: bl.name, Bytes: int64(len(bl.data))})
	}
	manData, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: bundle manifest: %w", err)
	}

	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	writeEntry := func(name string, data []byte) error {
		hdr := &tar.Header{Name: name, Mode: 0o644, Size: int64(len(data)), ModTime: now}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}
	if err := writeEntry("manifest.json", manData); err != nil {
		return fmt.Errorf("obs: bundle: %w", err)
	}
	for _, bl := range blobs {
		if err := writeEntry(bl.name, bl.data); err != nil {
			return fmt.Errorf("obs: bundle %s: %w", bl.name, err)
		}
	}
	if err := tw.Close(); err != nil {
		return fmt.Errorf("obs: bundle: %w", err)
	}
	if err := gz.Close(); err != nil {
		return fmt.Errorf("obs: bundle: %w", err)
	}
	return nil
}

// prune removes this Bundler's oldest bundles past MaxBundles.
func (b *Bundler) prune() {
	pattern := filepath.Join(b.cfg.Dir, b.cfg.Prefix+"-*"+DebugBundleSuffix)
	matches, err := filepath.Glob(pattern)
	if err != nil || len(matches) <= b.cfg.MaxBundles {
		return
	}
	type aged struct {
		path string
		mod  time.Time
	}
	var files []aged
	for _, m := range matches {
		st, err := os.Stat(m)
		if err != nil {
			continue
		}
		files = append(files, aged{m, st.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod.Before(files[j].mod) })
	for i := 0; i < len(files)-b.cfg.MaxBundles; i++ {
		os.Remove(files[i].path)
	}
}

// ServeHTTP writes an on-demand bundle as the response body, so
// GET /debug/bundle downloads the full evidentiary record of a live
// process. On-demand bundles bypass the debounce and do not count
// against it.
func (b *Bundler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if b == nil {
		http.Error(w, "bundling not enabled", http.StatusNotFound)
		return
	}
	name := fmt.Sprintf("%s-on-demand%s", b.cfg.Prefix, DebugBundleSuffix)
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
	if err := b.WriteTo(w, "on-demand", r.RemoteAddr, 0, 0); err != nil && b.cfg.Logger != nil {
		b.cfg.Logger.Warn("on-demand bundle failed", slog.String("error", err.Error()))
	}
}

// BundleInfo is a parsed debug bundle: the manifest plus the decoded
// flight and series sections and the raw bytes of every other entry.
type BundleInfo struct {
	Manifest BundleManifest
	Flight   *FlightSnapshot
	Series   *SeriesSnapshot
	// Sections maps the remaining .json entries (stats/run, config, ...)
	// to their raw JSON.
	Sections map[string]json.RawMessage
	// Entries lists every archive member in order.
	Entries []BundleEntry
}

// ReadBundle parses a debug bundle stream (tar.gz as written by
// Bundler.WriteTo). Unknown entries are inventoried but not decoded, so
// newer bundles stay readable by older readers.
func ReadBundle(r io.Reader) (*BundleInfo, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("obs: bundle is not gzip: %w", err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	info := &BundleInfo{Sections: make(map[string]json.RawMessage)}
	sawManifest := false
	for {
		hdr, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("obs: bundle is truncated or corrupt: %w", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("obs: bundle entry %s: %w", hdr.Name, err)
		}
		info.Entries = append(info.Entries, BundleEntry{Name: hdr.Name, Bytes: int64(len(data))})
		switch {
		case hdr.Name == "manifest.json":
			if err := json.Unmarshal(data, &info.Manifest); err != nil {
				return nil, fmt.Errorf("obs: bundle manifest: %w", err)
			}
			sawManifest = true
		case hdr.Name == "flight.json":
			var snap FlightSnapshot
			if err := json.Unmarshal(data, &snap); err == nil {
				info.Flight = &snap
			}
		case hdr.Name == "series.json":
			var snap SeriesSnapshot
			if err := json.Unmarshal(data, &snap); err == nil {
				info.Series = &snap
			}
		case strings.HasSuffix(hdr.Name, ".json"):
			info.Sections[strings.TrimSuffix(hdr.Name, ".json")] = json.RawMessage(data)
		}
	}
	if !sawManifest {
		return nil, errors.New("obs: not a debug bundle: no manifest.json")
	}
	return info, nil
}
