package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 0, 1, 2, 3, 4, 7, 8, 1 << 40} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 9 {
		t.Errorf("count = %d, want 9", s.Count)
	}
	if s.Max != 1<<40 {
		t.Errorf("max = %d", s.Max)
	}
	want := map[uint64]uint64{0: 2, 1: 1, 2: 2, 4: 2, 8: 1, 1 << 40: 1}
	// 1<<40 lands in the open-ended top bucket.
	wantTop := bucketLo(histBuckets - 1)
	delete(want, 1<<40)
	want[wantTop] = 1
	got := map[uint64]uint64{}
	for _, b := range s.Buckets {
		got[b.Lo] = b.N
	}
	for lo, n := range want {
		if got[lo] != n {
			t.Errorf("bucket lo=%d: got %d, want %d (all: %v)", lo, got[lo], n, got)
		}
	}
	if mean := s.Mean(); mean <= 0 {
		t.Errorf("mean = %v", mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4000 {
		t.Errorf("count = %d, want 4000", s.Count)
	}
}

func TestHistSnapshotMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(0)
	a.Observe(5)
	b.Observe(5)
	b.Observe(100)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 4 || sa.Sum != 110 || sa.Max != 100 {
		t.Errorf("merged = %+v", sa)
	}
	for i := 1; i < len(sa.Buckets); i++ {
		if sa.Buckets[i-1].Lo >= sa.Buckets[i].Lo {
			t.Errorf("buckets out of order: %+v", sa.Buckets)
		}
	}
}

func TestRunStatsMerge(t *testing.T) {
	a := &RunStats{Steps: 10, MutexWaits: 1, ModelWrites: map[string]uint64{"biased": 10}}
	b := &RunStats{Steps: 5, BatchFlushes: 2, ModelWrites: map[string]uint64{"biased": 4, "unbiased-shared": 1}}
	a.Merge(b)
	if a.Steps != 15 || a.MutexWaits != 1 || a.BatchFlushes != 2 {
		t.Errorf("merged = %+v", a)
	}
	if a.ModelWrites["biased"] != 14 || a.ModelWrites["unbiased-shared"] != 1 {
		t.Errorf("writes = %v", a.ModelWrites)
	}
	// Merging into a stats with a nil map allocates one.
	c := &RunStats{}
	c.Merge(b)
	if c.ModelWrites["biased"] != 4 {
		t.Errorf("nil-map merge = %v", c.ModelWrites)
	}
}

func TestObserverSamplePeriod(t *testing.T) {
	var o *Observer
	if o.SamplePeriod() != DefaultStepSample {
		t.Error("nil observer should use the default period")
	}
	if (&Observer{StepSample: 7}).SamplePeriod() != 7 {
		t.Error("explicit period ignored")
	}
}

func TestWriteJSON(t *testing.T) {
	path := t.TempDir() + "/report.json"
	if err := WriteJSON(path, map[string]int{"steps": 3}); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got["steps"] != 3 {
		t.Errorf("round trip = %v", got)
	}
}

func TestVarsSnapshotAndHandler(t *testing.T) {
	var v Vars
	v.Publish("answer", func() any { return 42 })
	v.Publish("hist", func() any { return HistSnapshot{Count: 1} })
	snap := v.Snapshot()
	if snap["answer"] != 42 {
		t.Errorf("snapshot = %v", snap)
	}
	rec := httptest.NewRecorder()
	v.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs", nil))
	var got map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("handler output not JSON: %v\n%s", err, rec.Body.String())
	}
	if _, ok := got["hist"]; !ok {
		t.Errorf("missing key: %s", rec.Body.String())
	}
}

func TestServe(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Skipf("cannot listen: %v", err)
	}
	defer s.Close()
	Publish("test-var", func() any { return "ok" })
	resp, err := http.Get("http://" + s.Addr + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "test-var") {
		t.Errorf("endpoint output: %s", sb.String())
	}
}
