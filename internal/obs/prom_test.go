package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestPromFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {42, "42"}, {-3, "-3"}, {0.25, "0.25"},
	} {
		if got := promFloat(tc.in); got != tc.want {
			t.Errorf("promFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
	if got := promFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("promFloat(+Inf) = %q", got)
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
}

func TestWriteRunStatsProm(t *testing.T) {
	rs := &RunStats{
		Steps: 1000, MutexWaits: 5, SampledSteps: 100,
		ModelWrites: map[string]uint64{"xorshift": 990, "biased": 10},
	}
	rs.Staleness.Observe(0)
	rs.Staleness.Observe(0)
	rs.Staleness.Observe(3) // bucket [2,4) -> le="3"
	ss := &SupervisorStats{Attempts: 2, Retries: 1, Checkpoints: 4, Resumes: 1, FinalThreads: 2}
	var buf bytes.Buffer
	if err := WriteRunStatsProm(&buf, rs, ss); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE buckwild_steps_total counter",
		"buckwild_steps_total 1000",
		`buckwild_model_writes_total{rounding="biased"} 10`,
		`buckwild_model_writes_total{rounding="xorshift"} 990`,
		"# TYPE buckwild_staleness histogram",
		`buckwild_staleness_bucket{le="0"} 2`,
		`buckwild_staleness_bucket{le="3"} 3`, // cumulative
		`buckwild_staleness_bucket{le="+Inf"} 3`,
		"buckwild_staleness_sum 3",
		"buckwild_staleness_count 3",
		"buckwild_supervisor_attempts_total 2",
		"buckwild_supervisor_final_threads 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Headers appear exactly once per metric.
	if n := strings.Count(out, "# TYPE buckwild_model_writes_total"); n != 1 {
		t.Errorf("model_writes TYPE header appears %d times", n)
	}
}

func TestLiveMetricsEndpoint(t *testing.T) {
	m := &LiveMetrics{Series: NewSeries(4)}
	var hooks Hooks = m
	hooks.OnEpoch(EpochInfo{Epoch: 3, Loss: 0.125, Steps: 300})
	hooks.OnStep(StepInfo{Staleness: 2})
	hooks.OnStep(StepInfo{Staleness: 0})
	var lc LifecycleHooks = m
	lc.OnCheckpoint(CheckpointInfo{Epoch: 3, Bytes: 512})
	lc.OnRetry(RetryInfo{Attempt: 1, ResumeEpoch: 2})
	m.Series.EpochTick(3, 0.125, 300, 0)

	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"buckwild_epochs_completed 3",
		"buckwild_train_loss 0.125",
		"buckwild_live_sampled_steps_total 2",
		"buckwild_checkpoints_total 1",
		"buckwild_checkpoint_bytes_total 512",
		"buckwild_retries_total 1",
		"buckwild_resume_epoch 2",
		"# TYPE buckwild_live_staleness histogram",
		`buckwild_live_staleness_bucket{le="+Inf"} 2`,
		"buckwild_window_loss 0.125",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}

	// SetFinal adds the authoritative totals to later scrapes.
	m.SetFinal(&RunStats{Steps: 300}, &SupervisorStats{Attempts: 2})
	rec = httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	out = rec.Body.String()
	if !strings.Contains(out, "buckwild_steps_total 300") ||
		!strings.Contains(out, "buckwild_supervisor_attempts_total 2") {
		t.Errorf("post-final scrape missing totals\n%s", out)
	}
}

func TestLiveMetricsNilSeries(t *testing.T) {
	m := &LiveMetrics{} // no Series attached: window gauges just absent
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "buckwild_window_") {
		t.Error("window gauges should be absent without a Series")
	}
}

// TestHistogramConcurrentMerge exercises concurrent Observe against a
// lock-free Histogram while snapshots of other histograms merge into an
// accumulator — the pattern the report aggregation uses.
func TestHistogramConcurrentMerge(t *testing.T) {
	const workers, each = 8, 2000
	var hs [workers]Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				hs[w].Observe(uint64(i % 16))
			}
		}(w)
	}
	wg.Wait()
	var acc HistSnapshot
	for w := range hs {
		acc.Merge(hs[w].Snapshot())
	}
	if acc.Count != workers*each {
		t.Errorf("merged count %d, want %d", acc.Count, workers*each)
	}
	var want uint64
	for i := 0; i < each; i++ {
		want += uint64(i % 16)
	}
	if acc.Sum != workers*want {
		t.Errorf("merged sum %d, want %d", acc.Sum, workers*want)
	}
	if acc.Max != 15 {
		t.Errorf("merged max %d, want 15", acc.Max)
	}
	var n uint64
	for i, b := range acc.Buckets {
		n += b.N
		if i > 0 && acc.Buckets[i-1].Lo >= b.Lo {
			t.Errorf("buckets out of order at %d: %+v", i, acc.Buckets)
		}
	}
	if n != acc.Count {
		t.Errorf("bucket sum %d != count %d", n, acc.Count)
	}
}

// TestWriteRunStatsPromNumHealth checks the numerical-health exposition:
// metric presence, site-label escaping, and header uniqueness.
func TestWriteRunStatsPromNumHealth(t *testing.T) {
	rs := &RunStats{
		Steps: 10,
		NumHealth: &NumStats{
			SatBySite: map[string]uint64{
				"saturate":    7,
				`odd"site\2`:  1, // exercises label escaping
				"muladd8to16": 2,
			},
			Saturations: 10,
			Underflows:  4,
			Bias:        RoundingBias{Mode: "biased", Samples: 8, SumQuanta: -2},
			Weights:     &WeightStats{Epoch: 3, Count: 100, Min: -2, Max: 1.5, Mean: 0.25, AtBounds: 6},
		},
	}
	var buf bytes.Buffer
	if err := WriteRunStatsProm(&buf, rs, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE buckwild_num_saturations_total counter",
		"buckwild_num_saturations_total 10",
		`buckwild_num_site_saturations_total{site="saturate"} 7`,
		// %q escaping: the quote and backslash in the label must come out
		// escaped, per the exposition format.
		`buckwild_num_site_saturations_total{site="odd\"site\\2"} 1`,
		"buckwild_num_underflows_total 4",
		"buckwild_rounding_bias_samples_total 8",
		"# TYPE buckwild_rounding_bias_mean_quanta gauge",
		"buckwild_rounding_bias_mean_quanta -0.25",
		"buckwild_weights_at_bounds 6",
		"buckwild_weight_min -2",
		"buckwild_weight_max 1.5",
		"buckwild_weight_mean 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE buckwild_num_site_saturations_total"); n != 1 {
		t.Errorf("site TYPE header appears %d times", n)
	}
	// Without NumHealth the health family is absent entirely.
	buf.Reset()
	if err := WriteRunStatsProm(&buf, &RunStats{Steps: 10}, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "buckwild_num_") || strings.Contains(buf.String(), "buckwild_rounding_bias") {
		t.Error("health metrics emitted without NumHealth")
	}
}

// TestPromHistogramCumulativeMonotone renders a multi-bucket histogram and
// walks its _bucket lines: le bounds must strictly increase and cumulative
// counts must be non-decreasing, ending at the +Inf count.
func TestPromHistogramCumulativeMonotone(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 0, 1, 2, 3, 5, 9, 17, 400, 70000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	p := newPromWriter(&buf)
	p.histogram("h", "test histogram", h.Snapshot())
	if p.err != nil {
		t.Fatal(p.err)
	}
	lines := strings.Split(buf.String(), "\n")
	prevLe, prevCum := -1.0, uint64(0)
	var sawInf bool
	var infCum, count uint64
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, `h_bucket{le="+Inf"}`):
			sawInf = true
			fmt.Sscanf(line, `h_bucket{le="+Inf"} %d`, &infCum)
			if infCum < prevCum {
				t.Errorf("+Inf count %d below last bucket %d", infCum, prevCum)
			}
		case strings.HasPrefix(line, "h_bucket{le="):
			var le float64
			var cum uint64
			if _, err := fmt.Sscanf(line, `h_bucket{le="%g"} %d`, &le, &cum); err != nil {
				t.Fatalf("unparseable bucket line %q: %v", line, err)
			}
			if le <= prevLe {
				t.Errorf("le bounds not increasing: %g after %g", le, prevLe)
			}
			if cum < prevCum {
				t.Errorf("cumulative count decreased: %d after %d", cum, prevCum)
			}
			prevLe, prevCum = le, cum
		case strings.HasPrefix(line, "h_count "):
			fmt.Sscanf(line, "h_count %d", &count)
		}
	}
	if !sawInf {
		t.Fatal("no +Inf bucket emitted")
	}
	if count != 10 || infCum != count {
		t.Errorf("count %d, +Inf %d, want both 10", count, infCum)
	}
}

// TestLiveMetricsHealth checks that the live health gauges appear only
// after a health callback, and the divergence gauges after OnDivergence.
func TestLiveMetricsHealth(t *testing.T) {
	m := &LiveMetrics{}
	var buf bytes.Buffer
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "buckwild_live_saturations_total") {
		t.Error("live health gauges emitted before any OnHealth")
	}
	if !strings.Contains(out, "buckwild_diverged 0") {
		t.Error("buckwild_diverged should always be scrapeable")
	}
	if strings.Contains(out, "buckwild_diverged_epoch") {
		t.Error("diverged_epoch emitted before divergence")
	}

	var hh HealthHooks = m
	hh.OnHealth(HealthInfo{Epoch: 2, ModelWrites: 100, Saturations: 12, Underflows: 3, BiasSamples: 8, BiasSumQuanta: 2, WeightsAtBounds: 5})
	var dh DivergenceHooks = m
	dh.OnDivergence(DivergenceInfo{Epoch: 2, Reason: "test"})
	buf.Reset()
	if err := m.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{
		"buckwild_live_saturations_total 12",
		"buckwild_live_underflows_total 3",
		"buckwild_live_rounding_bias_mean_quanta 0.25",
		"buckwild_live_weights_at_bounds 5",
		"buckwild_diverged 1",
		"buckwild_diverged_epoch 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q\n%s", want, out)
		}
	}
}
