package obs

import (
	"encoding/json"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds exact zeros, bucket i (1 <= i < histBuckets-1) holds values in
// [2^(i-1), 2^i), and the last bucket holds everything larger.
const histBuckets = 32

// Histogram is a lock-free power-of-two histogram. Observe may be called
// concurrently from any goroutine; Snapshot may race with writers and
// returns a consistent-enough view (each counter is read atomically).
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	b := bits.Len64(v) // v in [2^(b-1), 2^b)
	if b >= histBuckets-1 {
		return histBuckets - 1
	}
	return b
}

// bucketLo returns the inclusive lower bound of bucket i.
func bucketLo(i int) uint64 {
	if i == 0 {
		return 0
	}
	return 1 << uint(i-1)
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Snapshot returns the histogram's current contents.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{Lo: bucketLo(i), N: n})
		}
	}
	return s
}

// HistBucket is one non-empty histogram bucket: N observations with
// values in [Lo, 2*Lo) (Lo = 0 collects exact zeros; the top bucket is
// open-ended).
type HistBucket struct {
	Lo uint64 `json:"lo"`
	N  uint64 `json:"n"`
}

// HistSnapshot is the exportable form of a Histogram. Only non-empty
// buckets are listed.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Observe adds one value to the snapshot form. Unlike Histogram.Observe
// it is not safe for concurrent use; the time-series recorder calls it
// under its own lock.
func (s *HistSnapshot) Observe(v uint64) {
	s.Count++
	s.Sum += v
	if v > s.Max {
		s.Max = v
	}
	lo := bucketLo(bucketOf(v))
	for i := range s.Buckets {
		if s.Buckets[i].Lo == lo {
			s.Buckets[i].N++
			return
		}
		if s.Buckets[i].Lo > lo {
			s.Buckets = append(s.Buckets, HistBucket{})
			copy(s.Buckets[i+1:], s.Buckets[i:])
			s.Buckets[i] = HistBucket{Lo: lo, N: 1}
			return
		}
	}
	s.Buckets = append(s.Buckets, HistBucket{Lo: lo, N: 1})
}

// MarshalJSON omits empty buckets (N == 0), which merges of sparse
// snapshots can otherwise leave behind, so exported histograms list only
// populated buckets.
func (s HistSnapshot) MarshalJSON() ([]byte, error) {
	type alias HistSnapshot
	a := alias(s)
	if len(a.Buckets) > 0 {
		kept := make([]HistBucket, 0, len(a.Buckets))
		for _, b := range a.Buckets {
			if b.N > 0 {
				kept = append(kept, b)
			}
		}
		a.Buckets = kept
		if len(kept) == 0 {
			a.Buckets = nil
		}
	}
	return json.Marshal(a)
}

// Quantile estimates the p-quantile (p in [0, 1]) of the observed
// values: the rank is located in the bucket list and interpolated
// linearly within the bucket's [Lo, 2*Lo) range, so the estimate is
// exact for the zero bucket and within a factor of two otherwise. The
// top of the highest bucket is capped at Max, the largest value actually
// observed. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := p * float64(s.Count)
	var cum float64
	for i, b := range s.Buckets {
		if b.N == 0 {
			continue
		}
		next := cum + float64(b.N)
		if rank <= next || i == len(s.Buckets)-1 {
			if b.Lo == 0 {
				return 0
			}
			lo, hi := float64(b.Lo), float64(2*b.Lo)
			if hi > float64(s.Max)+1 {
				hi = float64(s.Max) + 1
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(b.N)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(s.Max)
}

// Mean returns the average observed value (0 for an empty histogram).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds other into s, combining buckets by lower bound.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	if len(other.Buckets) == 0 {
		return
	}
	byLo := make(map[uint64]int, len(s.Buckets))
	for i, b := range s.Buckets {
		byLo[b.Lo] = i
	}
	for _, b := range other.Buckets {
		if i, ok := byLo[b.Lo]; ok {
			s.Buckets[i].N += b.N
		} else {
			byLo[b.Lo] = len(s.Buckets)
			s.Buckets = append(s.Buckets, b)
		}
	}
	// Keep buckets ordered by bound for stable JSON output.
	for i := 1; i < len(s.Buckets); i++ {
		for j := i; j > 0 && s.Buckets[j-1].Lo > s.Buckets[j].Lo; j-- {
			s.Buckets[j-1], s.Buckets[j] = s.Buckets[j], s.Buckets[j-1]
		}
	}
}
