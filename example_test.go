package buckwild_test

import (
	"fmt"

	"buckwild"
)

// ExampleParseSignature shows the DMGC taxonomy of Section 3.
func ExampleParseSignature() {
	sig, err := buckwild.ParseSignature("D8i16M8")
	if err != nil {
		panic(err)
	}
	fmt.Println(sig, "sparse:", sig.Sparse())
	fmt.Println("bytes per dataset number:", sig.BytesPerElement())
	// Output:
	// D8i16M8 sparse: true
	// bytes per dataset number: 3
}

// ExamplePredictThroughput applies the Section 4 performance model.
func ExamplePredictThroughput() {
	sig, _ := buckwild.ParseSignature("D8M8")
	one, _ := buckwild.PredictThroughput(sig, 1<<20, 1)
	many, _ := buckwild.PredictThroughput(sig, 1<<20, 18)
	fmt.Printf("1 thread: %.2f GNPS\n18 threads: %.1fx faster\n", one, many/one)
	// Output:
	// 1 thread: 3.34 GNPS
	// 18 threads: 9.1x faster
}

// ExampleTrain trains 8-bit Buckwild! on synthetic data.
func ExampleTrain() {
	ds, err := buckwild.GenerateDense("D8M8", 64, 2000, 42)
	if err != nil {
		panic(err)
	}
	res, err := buckwild.Train(buckwild.Config{
		Signature: "D8M8",
		Threads:   2,
		Epochs:    5,
		StepSize:  0.1,
		Seed:      7,
	}, ds)
	if err != nil {
		panic(err)
	}
	improved := res.TrainLoss[len(res.TrainLoss)-1] < res.TrainLoss[0]
	fmt.Println("loss improved:", improved)
	// Output:
	// loss improved: true
}
