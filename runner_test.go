package buckwild

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDenseSupervised(t *testing.T) {
	ds, err := GenerateDense("D8M8", 16, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Signature: "D8M8", Epochs: 5, Seed: 21}

	base, err := TrainDense(cfg, ds)
	if err != nil {
		t.Fatal(err)
	}

	plan, err := ParseFaultPlan("crash@step=260")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDense(cfg, RunConfig{CheckpointDir: t.TempDir(), Faults: plan}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.InjectedCrashes != 1 || rep.Stats.Retries != 1 || rep.Stats.Resumes != 1 {
		t.Fatalf("stats %+v, want one recovered crash", rep.Stats)
	}
	if got, want := rep.Result.TrainLoss[5], base.TrainLoss[5]; got != want {
		t.Fatalf("supervised final loss %v, bare %v", got, want)
	}
	if rep.Checkpoint == "" {
		t.Fatal("no checkpoint reported")
	}
	ck, _, _, err := LoadLatestCheckpoint(t.TempDir())
	if err != nil || ck != nil {
		t.Fatalf("empty dir should load nothing: %v, %v", ck, err)
	}
}

func TestRunSparseSupervised(t *testing.T) {
	ds, err := GenerateSparse("D8i16M8", 64, 100, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Signature: "D8i16M8", Epochs: 4, Seed: 5}
	rep, err := RunSparse(cfg, RunConfig{CheckpointDir: t.TempDir()}, ds)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Attempts != 1 || rep.Stats.Checkpoints != 4 {
		t.Fatalf("stats %+v", rep.Stats)
	}
	ck, _, _, err := LoadLatestCheckpoint(filepath.Dir(rep.Checkpoint))
	if err != nil || ck == nil || ck.Epoch != 4 {
		t.Fatalf("latest checkpoint %+v, %v", ck, err)
	}
}

func TestRunDenseContextCancel(t *testing.T) {
	ds, err := GenerateDense("D8M8", 16, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Signature: "D8M8", Epochs: 5, Context: cancelledCtx()}
	_, err = RunDense(cfg, RunConfig{CheckpointDir: t.TempDir()}, ds)
	assertFacadeCancel(t, err, context.Canceled)
}

func TestRunDenseGivesUp(t *testing.T) {
	ds, err := GenerateDense("D8M8", 16, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaultPlan("crash@step=5,crash@step=5")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunDense(Config{Signature: "D8M8", Epochs: 3},
		RunConfig{CheckpointDir: t.TempDir(), MaxRetries: 1, Backoff: 1}, ds)
	if err != nil {
		t.Fatalf("plan unused yet: %v", err)
	}
	_, err = RunDense(Config{Signature: "D8M8", Epochs: 3},
		RunConfig{CheckpointDir: t.TempDir(), MaxRetries: 1, Backoff: 1, Faults: plan}, ds)
	if err == nil || !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("exhausted retries returned %v", err)
	}
	if !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Fatalf("error lacks facade prefix: %v", err)
	}
}

func TestGenerateFaultPlanFacade(t *testing.T) {
	a := GenerateFaultPlan(9, 3, 500)
	b := GenerateFaultPlan(9, 3, 500)
	if a.String() != b.String() || len(a.Faults) != 3 {
		t.Fatalf("plans %q vs %q", a, b)
	}
	if _, err := ParseFaultPlan("explode@step=1"); err == nil || !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Fatalf("bad spec error: %v", err)
	}
}
