package buckwild

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// The facade's context contract: cancellation and deadline expiry stop
// every entry point and come back as the context's error wrapped with
// the uniform "buckwild:" prefix, still matchable with errors.Is.

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func assertFacadeCancel(t *testing.T, err error, want error) {
	t.Helper()
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, want) {
		t.Fatalf("errors.Is(%v, %v) = false", err, want)
	}
	if !strings.HasPrefix(err.Error(), "buckwild:") {
		t.Fatalf("error lacks facade prefix: %v", err)
	}
}

func TestTrainDenseContextCancel(t *testing.T) {
	ds, err := GenerateDense("D8M8", 16, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainDense(Config{Signature: "D8M8", Epochs: 50, Context: cancelledCtx()}, ds)
	assertFacadeCancel(t, err, context.Canceled)
}

func TestTrainSparseContextDeadline(t *testing.T) {
	ds, err := GenerateSparse("D8i16M8", 64, 100, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err = TrainSparse(Config{Signature: "D8i16M8", Epochs: 50, Context: ctx}, ds)
	assertFacadeCancel(t, err, context.DeadlineExceeded)
}

func TestTrainSyncContextCancel(t *testing.T) {
	ds, err := GenerateDense("", 16, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, err = TrainSync(SyncConfig{CommBits: 8, Epochs: 50, Context: cancelledCtx()}, ds)
	assertFacadeCancel(t, err, context.Canceled)
}

func TestSimulateThroughputContextCancel(t *testing.T) {
	_, err := SimulateThroughput("D8M8", 1024, 2, SimOptions{Context: cancelledCtx()})
	assertFacadeCancel(t, err, context.Canceled)
}

func TestContextCancelMidRun(t *testing.T) {
	// Cancel from a hook mid-run rather than up front: training must
	// stop well before the configured 1000 epochs.
	ds, err := GenerateDense("D8M8", 16, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hooks := &cancelAfterSteps{n: 100, cancel: cancel}
	_, err = TrainDense(Config{
		Signature: "D8M8", Epochs: 1000, Context: ctx,
		Hooks: hooks, StepSample: 1,
	}, ds)
	assertFacadeCancel(t, err, context.Canceled)
}

type cancelAfterSteps struct {
	NopHooks
	n      int
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfterSteps) OnStep(StepInfo) {
	if c.seen++; c.seen == c.n {
		c.cancel()
	}
}
