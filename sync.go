package buckwild

import (
	"context"
	"fmt"

	"buckwild/internal/core"
)

// SyncConfig configures synchronous data-parallel SGD with quantized
// inter-worker communication — the explicit C term of the DMGC model. With
// CommBits=1 and ErrorFeedback it reproduces 1-bit SGD (Table 1's C1s).
type SyncConfig struct {
	// Problem selects the objective; the zero value is Logistic.
	Problem Problem
	// CommBits is the communication precision (1..32).
	CommBits uint
	// Workers and BatchPerWorker shape the data-parallel rounds.
	Workers        int
	BatchPerWorker int
	// ErrorFeedback carries the quantization residual forward.
	ErrorFeedback bool
	StepSize      float32
	Epochs        int
	Seed          uint64
	// Context, when non-nil, bounds the run: it is checked before every
	// communication round, and cancellation returns the context's cause
	// with the "buckwild:" prefix.
	Context context.Context
	// NumHealth collects communication-quantizer numerical health
	// (underflowed coordinates and grid rounding bias) on
	// Result.NumStats.
	NumHealth bool
}

// TrainSync runs the synchronous quantized-communication engine on a dense
// dataset (which should be stored at full precision; this engine isolates
// the C term).
func TrainSync(cfg SyncConfig, ds *DenseDataset) (*Result, error) {
	prob, err := cfg.Problem.core()
	if err != nil {
		return nil, err
	}
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("buckwild: empty dataset")
	}
	step := cfg.StepSize
	if step == 0 {
		step = 0.1
	}
	res, err := core.TrainSyncDense(core.SyncConfig{
		Problem:          prob,
		CommBits:         cfg.CommBits,
		Workers:          cfg.Workers,
		BatchPerWorker:   cfg.BatchPerWorker,
		ErrorFeedback:    cfg.ErrorFeedback,
		StepSize:         step,
		Epochs:           cfg.Epochs,
		Seed:             cfg.Seed,
		Ctx:              cfg.Context,
		CollectNumHealth: cfg.NumHealth,
	}, ds)
	return res, wrapErr(err)
}
