package buckwild

import (
	"context"
	"fmt"

	"buckwild/internal/dmgc"
	"buckwild/internal/kernels"
	"buckwild/internal/machine"
	"buckwild/internal/obs"
)

// MachineResult re-exports the simulated-machine result.
type MachineResult = machine.Result

// Toggle is a three-state boolean whose zero value means "use the
// default", so SimOptions' zero value changes nothing.
type Toggle int

// Toggle states.
const (
	// DefaultToggle keeps the option's documented default.
	DefaultToggle Toggle = iota
	// On and Off force the option.
	On
	Off
)

// enabled resolves the toggle against its default.
func (t Toggle) enabled(def bool) bool {
	switch t {
	case On:
		return true
	case Off:
		return false
	}
	return def
}

// SimOptions customizes SimulateThroughputOpts' workload. The zero value
// reproduces the historical hard-coded behaviour exactly:
//
//	Variant  ""  → hand-optimized kernels; the Section 6.1 proposed
//	               instructions when either precision is 4-bit
//	Rounding ""  → UnbiasedShared with the paper's reuse period of 8
//	Density  0   → 0.03 (sparse workloads only)
//	Prefetch 0   → on (DefaultToggle)
//	Seed     0   → 1
//
// Boolean options are Toggle-typed so that the zero value stays neutral:
// DefaultToggle (0) keeps the documented default, On and Off force the
// option. This is what lets a partially-filled SimOptions override only
// the fields it mentions.
type SimOptions struct {
	// Variant is "handopt", "generic" or "newinsn"; empty selects the
	// precision-appropriate default above.
	Variant string
	// Rounding selects the simulated rounding strategy; UnbiasedHardware
	// models the proposed QAXPY instructions.
	Rounding Rounding
	// Density is the sparse nonzero fraction.
	Density float64
	// Prefetch toggles the hardware prefetcher (Section 5.3).
	Prefetch Toggle
	// Seed seeds the simulated cache and trace randomness.
	Seed uint64
	// Context, when non-nil, bounds the simulation: it is checked between
	// simulated rounds, and cancellation returns the context's cause with
	// the "buckwild:" prefix.
	Context context.Context
	// Tracer, when non-nil, records the simulation's warm-up and
	// measurement phases as trace spans. Nil traces nothing at no cost.
	Tracer *Tracer
}

func (o SimOptions) variant(d, m kernels.Prec) (kernels.Variant, error) {
	switch o.Variant {
	case "":
		if d == kernels.I4 || m == kernels.I4 {
			return kernels.NewInsn, nil
		}
		return kernels.HandOpt, nil
	case "handopt":
		return kernels.HandOpt, nil
	case "generic":
		return kernels.Generic, nil
	case "newinsn":
		return kernels.NewInsn, nil
	}
	return 0, fmt.Errorf("buckwild: unknown kernel variant %q (use handopt, generic or newinsn)", o.Variant)
}

// SimulateThroughputOpts runs the simulated Xeon on an SGD workload with
// the given signature and options and returns its predicted hardware
// efficiency. It is the programmatic interface to the Table 2 / Figure 2
// experiments; cmd/experiments exposes the full sweeps. Pass the zero
// SimOptions for the historical workload documented on SimOptions.
func SimulateThroughputOpts(sigText string, modelSize, threads int, o SimOptions) (*MachineResult, error) {
	sig, err := dmgc.Parse(sigText)
	if err != nil {
		return nil, wrapErr(err)
	}
	d, err := precOf(sig.DatasetBits(), sig.D.Float || !sig.D.Present)
	if err != nil {
		return nil, err
	}
	m, err := precOf(sig.ModelBits(), sig.M.Float || !sig.M.Present)
	if err != nil {
		return nil, err
	}
	variant, err := o.variant(d, m)
	if err != nil {
		return nil, err
	}
	quant, err := o.Rounding.kind()
	if err != nil {
		return nil, err
	}
	density := o.Density
	if density == 0 {
		density = 0.03
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("buckwild: density %v out of (0, 1]", density)
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	w := machine.Workload{
		Sparse:      sig.Sparse(),
		D:           d,
		M:           m,
		IdxBits:     sig.IndexBits(),
		Variant:     variant,
		Quant:       quant,
		QuantPeriod: 8,
		ModelSize:   modelSize,
		Density:     density,
		Threads:     threads,
		Prefetch:    o.Prefetch.enabled(true),
		Seed:        seed,
	}
	res, err := machine.SimulateCtx(obs.ContextWithTracer(o.Context, o.Tracer), machine.Xeon(), w)
	return res, wrapErr(err)
}

// SimulateThroughput is the variadic form of SimulateThroughputOpts: at
// most one SimOptions may be given, and omitting it is the zero value.
//
// Deprecated: use SimulateThroughputOpts, which makes the options
// explicit instead of a variadic tail that only ever accepts one value.
func SimulateThroughput(sigText string, modelSize, threads int, opts ...SimOptions) (*MachineResult, error) {
	switch len(opts) {
	case 0:
		return SimulateThroughputOpts(sigText, modelSize, threads, SimOptions{})
	case 1:
		return SimulateThroughputOpts(sigText, modelSize, threads, opts[0])
	}
	return nil, fmt.Errorf("buckwild: at most one SimOptions, got %d", len(opts))
}
