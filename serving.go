package buckwild

import (
	"bytes"
	"log/slog"
	"time"

	"buckwild/internal/obs"
	"buckwild/internal/serve"
)

// This file is the facade over internal/serve: the production serving
// tier. A ModelServer answers /predict off an atomically-swapped
// immutable Model; SnapshotPromoter connects a supervised training run
// (RunConfig.Snapshotter) to it so every checkpoint becomes a candidate
// for hot promotion, routed through the framed model format (CRC
// validated) before the swap.

// Serving re-exports.
type (
	// ModelServer is the serving daemon: Start it, feed it models with
	// Promote, and stop it with Drain. See NewModelServer.
	ModelServer = serve.Server
	// ServeMetrics is the serving tier's lock-free counter set.
	ServeMetrics = obs.ServeMetrics
	// ServeStats is the exportable snapshot of a ServeMetrics.
	ServeStats = obs.ServeStats
	// PromWriter is anything that renders itself in the Prometheus text
	// format; ServeConfig.Extra appends such writers to /metrics.
	PromWriter = serve.PromWriter
)

// ServeConfig configures a ModelServer. The zero value is usable: it
// serves on 127.0.0.1:8372 with a 64-example batch cap and a 256-job
// admission queue.
type ServeConfig struct {
	// Addr is the listen address (default "127.0.0.1:8372"; ":0" lets
	// the kernel pick a port, read back with ModelServer.Addr).
	Addr string
	// MaxBatch caps the examples grouped into one predict call
	// (default 64).
	MaxBatch int
	// QueueDepth bounds the admission queue in requests; a full queue
	// answers 429 instead of queueing without bound (default 256).
	QueueDepth int
	// BatchWait is how long the batcher holds a non-full batch open for
	// more work; zero serves whatever is queued immediately (lowest
	// latency, smaller batches).
	BatchWait time.Duration
	// DrainTimeout bounds the graceful drain on shutdown (default 10s).
	DrainTimeout time.Duration
	// Metrics receives the serving counters (allocated if nil).
	Metrics *ServeMetrics
	// Extra prom writers are appended to /metrics after the serving
	// counters — install the training side's LiveMetrics here so one
	// scrape covers both halves of the daemon.
	Extra []PromWriter
	// Tracer, when non-nil, records request -> batch -> predict spans,
	// per-job queue-wait spans, and batch-assembly spans.
	Tracer *Tracer
	// Logger, when non-nil, receives structured operational logs
	// (promotions, drain progress, slow requests); it is scoped to the
	// "serve" component. Nil is silent.
	Logger *slog.Logger
	// Flight, when non-nil, records promotions, refusals, slow requests
	// and drain transitions into the post-mortem ring; the daemon serves
	// its dump at GET /debug/flight.
	Flight *FlightRecorder
	// SlowRequest, when positive, logs (and flight-records) completed
	// requests slower than this threshold.
	SlowRequest time.Duration
	// Bundle, when non-nil, gets a debug bundle triggered on each slow
	// request (debounced) and is served on demand at GET /debug/bundle.
	Bundle *Bundler
	// Dash, when non-nil, is served at GET /debug/dash with its SSE feed
	// at GET /debug/dash/events.
	Dash *Dash
}

// Validate checks the configuration without building a server.
func (sc ServeConfig) Validate() error {
	c := sc.internal()
	return wrapErr(c.Fill())
}

func (sc ServeConfig) internal() serve.Config {
	return serve.Config{
		Addr:         sc.Addr,
		MaxBatch:     sc.MaxBatch,
		QueueDepth:   sc.QueueDepth,
		BatchWait:    sc.BatchWait,
		DrainTimeout: sc.DrainTimeout,
		Metrics:      sc.Metrics,
		Extra:        sc.Extra,
		Tracer:       sc.Tracer,
		Logger:       obs.Component(sc.Logger, "serve"),
		Flight:       sc.Flight,
		SlowRequest:  sc.SlowRequest,
		Bundle:       sc.Bundle,
		Dash:         sc.Dash,
	}
}

// NewModelServer builds a serving daemon from cfg. The server is ready
// for Promote and Handler immediately; call Start to bind the listen
// address. Promote a *Model (from SavedModel.Handle or a Snapshotter)
// to begin answering /predict.
func NewModelServer(cfg ServeConfig) (*ModelServer, error) {
	s, err := serve.New(cfg.internal())
	return s, wrapErr(err)
}

// SnapshotPromoter adapts a ModelServer into a Snapshotter: install it
// as RunConfig.Snapshotter and every checkpoint-boundary snapshot of
// the supervised run becomes a promotion candidate. Each snapshot is
// round-tripped through the framed model format — encoded, CRC
// computed, decoded and re-validated — before the pointer swap, so the
// bytes promoted into serving are exactly the bytes a SaveModel of the
// snapshot would persist; a candidate that fails the frame or the
// server's promotion gate (divergence, non-finite loss) is dropped and
// counted in ServeMetrics, and the previously promoted model keeps
// serving.
func SnapshotPromoter(s *ModelServer) Snapshotter {
	return &snapshotPromoter{s: s}
}

type snapshotPromoter struct {
	s *ModelServer
}

func (sp *snapshotPromoter) OnSnapshot(snap ModelSnapshot) {
	if snap.Model == nil || len(snap.Model.w) == 0 {
		return
	}
	var buf bytes.Buffer
	if err := saveModel(&buf, snap.Model.sigText, snap.Model.w); err != nil {
		return
	}
	sm, err := LoadModel(&buf)
	if err != nil {
		sp.s.Metrics().PromotionRefused()
		return
	}
	m, err := sm.Handle()
	if err != nil {
		sp.s.Metrics().PromotionRefused()
		return
	}
	sp.s.Promote(m, snap.Epoch, snap.Loss)
}
