package main

// The serve subcommand: a long-lived training-and-inference daemon.
//
//	buckwild serve -addr :8372 -sig D8M8 -n 1024 -threads 4
//
// It answers POST /predict off an atomically-swapped immutable model
// while a supervised training loop runs in the background: each round
// trains -epochs more epochs on a freshly generated batch of examples
// (the synthetic stand-in for a streaming example source), checkpoints
// through the supervisor, and every checkpoint is round-tripped through
// the framed model format (CRC validated) and hot-promoted into
// serving. The health watchdog gates promotion: a diverged round stops
// promoting and the last healthy model keeps serving. GET /metrics
// serves the Prometheus exposition of both halves (serving latency,
// batch sizes, rejections, promotions; training steps, loss, health).
// SIGTERM/SIGINT drain gracefully: new requests get 503, in-flight
// requests complete, training stops at the next epoch boundary leaving
// its newest checkpoint on disk, and -save persists the final weights.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"buckwild"
	"buckwild/internal/obs"
)

// promotionGate chains the health watchdog's divergence signal into the
// serving tier (never promote a diverged model) while forwarding every
// observability callback to the live metrics.
type promotionGate struct {
	srv  *buckwild.ModelServer
	next *obs.LiveMetrics
}

func (g *promotionGate) OnStep(si buckwild.StepInfo)     { g.next.OnStep(si) }
func (g *promotionGate) OnEpoch(ei buckwild.EpochInfo)   { g.next.OnEpoch(ei) }
func (g *promotionGate) OnWorker(wi buckwild.WorkerInfo) { g.next.OnWorker(wi) }
func (g *promotionGate) OnHealth(hi buckwild.HealthInfo) { g.next.OnHealth(hi) }
func (g *promotionGate) OnCheckpoint(ci buckwild.CheckpointInfo) {
	g.next.OnCheckpoint(ci)
}
func (g *promotionGate) OnRetry(ri buckwild.RetryInfo) { g.next.OnRetry(ri) }

func (g *promotionGate) OnDivergence(di buckwild.DivergenceInfo) {
	g.srv.RefusePromotions(fmt.Sprintf("health watchdog: %s at epoch %d", di.Reason, di.Epoch))
	g.next.OnDivergence(di)
}

// serveCmd implements the serve subcommand.
func serveCmd(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8372", "listen address for /predict, /healthz, /metrics")
		maxBatch   = fs.Int("max-batch", 64, "max examples grouped into one predict call")
		queueDepth = fs.Int("queue-depth", 256, "admission queue depth; a full queue answers 429")
		batchWait  = fs.Duration("batch-wait", 0, "hold a non-full batch open this long for more work (0 = serve immediately)")
		drainTO    = fs.Duration("drain-timeout", 10*time.Second, "graceful drain bound on SIGTERM")

		sig      = fs.String("sig", "D8M8", "DMGC signature for background training")
		problem  = fs.String("problem", "logistic", "problem: logistic, linear or svm")
		rounding = fs.String("rounding", "unbiased-shared", "rounding: biased, unbiased-mt, unbiased-xorshift, unbiased-shared")
		n        = fs.Int("n", 512, "model size (elements)")
		m        = fs.Int("m", 10000, "examples generated per training round")
		sparse   = fs.Bool("sparse", false, "train on sparse synthetic data")
		density  = fs.Float64("density", 0.03, "sparse nonzero density")
		threads  = fs.Int("threads", 1, "asynchronous training workers")
		epochs   = fs.Int("epochs", 4, "epochs per training round")
		step     = fs.Float64("step", 0, "step size eta (0 = auto)")
		decay    = fs.Float64("decay", 1.0, "per-epoch step decay")
		seed     = fs.Uint64("seed", 1, "random seed; round r draws its examples from seed+r")
		rounds   = fs.Int("rounds", 0, "training rounds before training idles (0 = train until SIGTERM)")

		ckptDir   = fs.String("checkpoint-dir", "", "checkpoint directory (default: a fresh temp dir)")
		ckptEvery = fs.Int("checkpoint-every", 1, "checkpoint (and promotion-candidate) period in epochs")
		retries   = fs.Int("retries", 3, "max retries per round after crashes or stalls")
		stallTO   = fs.Duration("stall-timeout", 0, "cancel and retry a training attempt with no progress for this long")

		modelPath = fs.String("model", "", "serve this model file until the first promotion")
		save      = fs.String("save", "", "write the newest checkpoint's model here on shutdown")

		logFormat = fs.String("log-format", "text", "structured log format: text or json")
		logLevel  = fs.String("log-level", "info", "minimum log level: debug, info, warn or error")
		slowReq   = fs.Duration("slow-request", 0, "log (and flight-record) requests slower than this, e.g. 50ms (0 = off)")
		bundleDir = fs.String("bundle-dir", ".", "write anomaly-triggered debug bundles (*.debugbundle.tar.gz) into this directory; empty disables")
		profDir   = fs.String("profile-dir", "", "continuously capture CPU/heap/goroutine/mutex pprof profiles into a bounded on-disk ring in this directory")
		profEvery = fs.Duration("profile-interval", 0, "continuous profiler capture cadence (0 = default 30s; with -profile-dir)")
	)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: buckwild serve [flags]")
		fs.PrintDefaults()
	}
	fs.Parse(args)

	// The daemon's post-mortem ring: promotions, refusals, slow requests,
	// supervisor retries and drain transitions, served at
	// GET /debug/flight and dumped to stderr on SIGQUIT.
	rec := buckwild.NewFlightRecorder(0)
	logger := buildLogger(*logFormat, *logLevel, rec)
	watchSIGQUIT(rec)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	dir := *ckptDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "buckwild-serve-*"); err != nil {
			fatal(err)
		}
		logger.Info("checkpoints in temp dir (pass -checkpoint-dir to persist across restarts)",
			slog.String("dir", dir))
	}

	var profiler *buckwild.Profiler
	if *profDir != "" {
		var err error
		profiler, err = buckwild.NewProfiler(buckwild.ProfileConfig{
			Dir: *profDir, Interval: *profEvery, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		profiler.Start()
		defer profiler.Stop()
	}

	// The daemon-lifetime time-series: the training rounds tick it with
	// cumulative epochs, so the dashboard's charts and a bundle's series
	// section span every round.
	series := buckwild.NewSeries(0)

	// srv is declared before the dashboard and bundler so their snapshot
	// closures can capture it; it is set a few lines down, before any
	// request (or trigger) can fire them.
	var srv *buckwild.ModelServer
	serveStats := func() *buckwild.ServeStats {
		if srv == nil {
			return nil
		}
		return srv.Metrics().Snapshot()
	}
	dash := buckwild.NewDash(buckwild.DashConfig{Series: series, Serve: serveStats})
	var bundler *buckwild.Bundler
	if *bundleDir != "" {
		var err error
		bundler, err = buckwild.NewBundler(buckwild.BundleConfig{
			Dir: *bundleDir, Prefix: "buckwild-serve",
			Flight: rec, Series: series, Profiler: profiler, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		bundler.AddSection("stats/serve", func() any {
			if s := serveStats(); s != nil {
				return s
			}
			return nil
		})
		bundler.AddSection("config", func() any {
			m := make(map[string]string)
			fs.VisitAll(func(f *flag.Flag) { m[f.Name] = f.Value.String() })
			return m
		})
	}

	live := &obs.LiveMetrics{Series: series}
	srv, err := buckwild.NewModelServer(buckwild.ServeConfig{
		Addr:         *addr,
		MaxBatch:     *maxBatch,
		QueueDepth:   *queueDepth,
		BatchWait:    *batchWait,
		DrainTimeout: *drainTO,
		Extra:        []buckwild.PromWriter{live},
		Logger:       logger,
		Flight:       rec,
		SlowRequest:  *slowReq,
		Bundle:       bundler,
		Dash:         dash,
	})
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	fmt.Printf("serving on http://%s — POST /predict, GET /healthz, GET /metrics, GET /debug/flight, /debug/dash, /debug/bundle\n", srv.Addr())

	if *modelPath != "" {
		sm, err := buckwild.LoadModelFile(*modelPath)
		if err != nil {
			fatal(err)
		}
		h, err := sm.Handle()
		if err != nil {
			fatal(err)
		}
		if _, err := srv.Promote(h, 0, 0); err != nil {
			fatal(err)
		}
	}

	eta := *step
	if eta == 0 {
		eta = 6 / float64(*n)
		if *sparse {
			eta = 6 / (*density * float64(*n))
		}
	}

	// The background training loop: round r trains the cumulative epoch
	// horizon (r+1)*epochs on a fresh batch of examples drawn from
	// seed+r — the synthetic stand-in for streamed training data. The
	// supervisor resumes each round from the previous round's newest
	// checkpoint, and every checkpoint boundary publishes a promotion
	// candidate through the Snapshotter.
	trainDone := make(chan struct{})
	go func() {
		defer close(trainDone)
		for r := 0; *rounds == 0 || r < *rounds; r++ {
			if ctx.Err() != nil {
				return
			}
			roundCtx, cancelCause := context.WithCancelCause(ctx)
			gate := &promotionGate{srv: srv, next: live}
			cfg := buckwild.Config{
				Signature: *sig,
				Problem:   buckwild.Problem(*problem),
				Rounding:  buckwild.Rounding(*rounding),
				Threads:   *threads,
				StepSize:  float32(eta),
				StepDecay: float32(*decay),
				Epochs:     (r + 1) * *epochs,
				Seed:       *seed,
				NumHealth:  true,
				Hooks:      &buckwild.HealthWatchdog{Cancel: cancelCause, Bundle: bundler, Next: gate},
				Logger:     logger,
				Flight:     rec,
				TimeSeries: series,
				Bundle:     bundler,
				Context:    roundCtx,
			}
			rc := buckwild.RunConfig{
				CheckpointDir:   dir,
				CheckpointEvery: *ckptEvery,
				MaxRetries:      *retries,
				StallTimeout:    *stallTO,
				Snapshotter:     buckwild.SnapshotPromoter(srv),
			}
			var err error
			if *sparse {
				var ds *buckwild.SparseDataset
				if ds, err = buckwild.GenerateSparse(*sig, *n, *m, *density, *seed+uint64(r)); err == nil {
					_, err = buckwild.RunSparse(cfg, rc, ds)
				}
			} else {
				var ds *buckwild.DenseDataset
				if ds, err = buckwild.GenerateDense(*sig, *n, *m, *seed+uint64(r)); err == nil {
					_, err = buckwild.RunDense(cfg, rc, ds)
				}
			}
			cancelCause(nil)
			switch {
			case err == nil:
				logger.Info("training round done",
					slog.Int("round", r), slog.Int("cumulative_epoch", (r+1)**epochs))
			case errors.Is(err, context.Canceled) && ctx.Err() != nil:
				return // shutting down; newest checkpoint stays on disk
			case errors.Is(err, buckwild.ErrDivergence):
				// The watchdog already gated promotions; the last healthy
				// model keeps serving. Training stops rather than diverge
				// again on the same trajectory.
				logger.Warn("training diverged, promotions gated, serving continues",
					slog.String("error", err.Error()))
				rec.Record("run", "divergence", "training diverged, promotions gated",
					map[string]string{"round": fmt.Sprint(r), "error": err.Error()})
				return
			default:
				logger.Error("training stopped", slog.String("error", err.Error()))
				return
			}
		}
		logger.Info("training idle, serving continues", slog.Int("rounds", *rounds))
	}()

	// Serve until SIGTERM/SIGINT, then drain: stop admitting, flush
	// in-flight requests, stop training at the next epoch boundary
	// (its newest checkpoint is the final one), persist with -save.
	<-ctx.Done()
	stopSignals()
	logger.Info("signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		logger.Warn("drain", slog.String("error", err.Error()))
	}
	<-trainDone
	st := srv.Metrics().Snapshot()
	fmt.Printf("served %d requests (%d examples), p50 %.0fus p99 %.0fus; %d rejected, %d promotions (%d refused)\n",
		st.Requests, st.Examples, st.LatencyUS.Quantile(0.5), st.LatencyUS.Quantile(0.99),
		st.Rejected, st.Promotions, st.PromotionsRefused)
	if *save != "" {
		ck, path, _, err := buckwild.LoadLatestCheckpoint(dir)
		if err != nil {
			fatal(err)
		}
		if ck == nil {
			logger.Warn("no checkpoint to save (training never reached an epoch boundary)")
			return
		}
		w, err := ck.Weights()
		if err != nil {
			fatal(err)
		}
		if err := buckwild.SaveModelFile(*save, *sig, w); err != nil {
			fatal(err)
		}
		fmt.Printf("final model (from %s, epoch %d) saved to %s\n", path, ck.Epoch, *save)
	}
}
