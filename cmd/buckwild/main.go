// Command buckwild trains a model with asynchronous low-precision SGD on a
// synthetic dataset and reports convergence and throughput. It is the
// quickest way to explore the DMGC trade-off space from the shell:
//
//	buckwild -sig D8M8 -n 1024 -m 20000 -threads 4 -epochs 10
//	buckwild -sig D8i16M8 -sparse -density 0.03 -rounding biased
//
// Sparse signatures (with an "i" index term) require -sparse.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"buckwild"
	"buckwild/internal/obs"
)

// fatal logs err and exits. Facade errors already carry a "buckwild: "
// prefix, which would stutter with the log prefix; trim it.
func fatal(err error) {
	log.Fatal(strings.TrimPrefix(err.Error(), "buckwild: "))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("buckwild: ")
	var (
		sig      = flag.String("sig", "D8M8", "DMGC signature (e.g. D8M8, D16M16, D32fM32f, D8i16M8)")
		problem  = flag.String("problem", "logistic", "problem: logistic, linear or svm")
		rounding = flag.String("rounding", "unbiased-shared", "rounding: biased, unbiased-mt, unbiased-xorshift, unbiased-shared")
		n        = flag.Int("n", 512, "model size (elements)")
		m        = flag.Int("m", 10000, "number of training examples")
		sparse   = flag.Bool("sparse", false, "use a sparse dataset")
		density  = flag.Float64("density", 0.03, "sparse nonzero density")
		threads  = flag.Int("threads", 1, "asynchronous workers")
		batch    = flag.Int("batch", 1, "mini-batch size B")
		epochs   = flag.Int("epochs", 10, "training epochs")
		step     = flag.Float64("step", 0, "step size eta (0 = auto: 6/n, a good default for the synthetic generator)")
		decay    = flag.Float64("decay", 1.0, "per-epoch step decay")
		generic  = flag.Bool("generic", false, "use compiler-style generic kernels")
		locked   = flag.Bool("locked", false, "lock every update (the baseline Hogwild! beats)")
		seed     = flag.Uint64("seed", 1, "random seed")
		predict  = flag.Bool("predict", true, "also print the Section 4 performance-model prediction")
		data     = flag.String("data", "", "LIBSVM-format training file (implies -sparse; overrides -n/-m)")
		save     = flag.String("save", "", "write the trained model to this file")
		stats    = flag.Bool("stats", false, "collect and print run counters (steps, writes, staleness)")
		report   = flag.String("report", "", "write a JSON run report to this file (implies -stats)")
		httpAddr = flag.String("http", "", "serve /debug/obs and /debug/pprof on this address during the run")
	)
	flag.Parse()

	eta := *step
	if eta == 0 {
		eta = 6 / float64(*n)
		if *sparse {
			eta = 6 / (*density * float64(*n))
		}
	}

	cfg := buckwild.Config{
		Signature:      *sig,
		Problem:        buckwild.Problem(*problem),
		Rounding:       buckwild.Rounding(*rounding),
		GenericKernels: *generic,
		Locked:         *locked,
		Threads:        *threads,
		MiniBatch:      *batch,
		StepSize:       float32(eta),
		StepDecay:      float32(*decay),
		Epochs:         *epochs,
		Seed:           *seed,
		CollectStats:   *stats || *report != "",
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	if *httpAddr != "" {
		srv, err := obs.Serve(*httpAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("debug endpoints on http://%s/debug/obs and /debug/pprof\n", srv.Addr)
	}

	var res *buckwild.Result
	if *data != "" {
		ds, err := buckwild.LoadLibSVM(*data, *sig)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d examples, %d features from %s\n", ds.Len(), ds.N, *data)
		if *step == 0 {
			avgNNZ := float64(ds.NNZ()) / float64(ds.Len())
			cfg.StepSize = float32(6 / avgNNZ)
		}
		res, err = buckwild.TrainSparse(cfg, ds)
		if err != nil {
			fatal(err)
		}
	} else if *sparse {
		ds, err := buckwild.GenerateSparse(*sig, *n, *m, *density, *seed)
		if err != nil {
			fatal(err)
		}
		res, err = buckwild.TrainSparse(cfg, ds)
		if err != nil {
			fatal(err)
		}
	} else {
		ds, err := buckwild.GenerateDense(*sig, *n, *m, *seed)
		if err != nil {
			fatal(err)
		}
		res, err = buckwild.TrainDense(cfg, ds)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("signature %s, %s, %d threads, B=%d, %s rounding\n",
		*sig, *problem, *threads, *batch, *rounding)
	fmt.Printf("%-8s%s\n", "epoch", "train loss")
	for e, l := range res.TrainLoss {
		fmt.Printf("%-8d%.6f\n", e, l)
	}
	fmt.Printf("\n%d updates in %v (%.1f M numbers/s on this host)\n",
		res.Steps, res.Elapsed.Round(1e6), res.NumbersPerSec/1e6)

	if res.Stats != nil {
		s := res.Stats
		fmt.Printf("run counters: %d steps, %d mutex waits, %d batch flushes\n",
			s.Steps, s.MutexWaits, s.BatchFlushes)
		for kind, n := range s.ModelWrites {
			fmt.Printf("  model writes (%s): %d\n", kind, n)
		}
		fmt.Printf("  staleness over %d sampled steps: mean %.2f, max %d writes\n",
			s.Staleness.Count, s.Staleness.Mean(), s.Staleness.Max)
	}
	if *report != "" {
		out := struct {
			Signature string             `json:"signature"`
			Problem   string             `json:"problem"`
			Rounding  string             `json:"rounding"`
			Threads   int                `json:"threads"`
			MiniBatch int                `json:"mini_batch"`
			Epochs    int                `json:"epochs"`
			TrainLoss []float64          `json:"train_loss"`
			Stats     *buckwild.RunStats `json:"stats"`
		}{*sig, cfg.Problem.String(), *rounding, *threads, *batch, *epochs, res.TrainLoss, res.Stats}
		if err := obs.WriteJSON(*report, out); err != nil {
			fatal(err)
		}
		fmt.Printf("run report written to %s\n", *report)
	}

	if *save != "" {
		if err := buckwild.SaveModelFile(*save, *sig, res.W); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *save)
	}

	if *predict {
		parsed, err := buckwild.ParseSignature(*sig)
		if err == nil {
			if gnps, err := buckwild.PredictThroughput(parsed, *n, *threads); err == nil {
				fmt.Printf("performance model (paper Table 2 base): %.3f GNPS on the reference Xeon\n", gnps)
			}
		}
	}
}
