// Command buckwild trains a model with asynchronous low-precision SGD on a
// synthetic dataset and reports convergence and throughput. It is the
// quickest way to explore the DMGC trade-off space from the shell:
//
//	buckwild -sig D8M8 -n 1024 -m 20000 -threads 4 -epochs 10
//	buckwild -sig D8i16M8 -sparse -density 0.03 -rounding biased
//
// Sparse signatures (with an "i" index term) require -sparse.
//
// -nodes >= 2 trains on a simulated multi-node cluster instead of the
// shared-memory engine (dense datasets only): discrete-event simulated
// machines over a latency/bandwidth-modeled interconnect, gradients
// wire-quantized to the signature's C term or the explicit -wire-bits:
//
//	buckwild -sig D32fM32fC8 -nodes 4 -cluster-protocol all-reduce
//	buckwild -nodes 8 -wire-bits 8 -staleness-comp 0.3 -stats
//
// With -checkpoint-dir the run is supervised: it checkpoints
// periodically, resumes from the newest valid checkpoint after a crash
// or a detected stall (including across process restarts — rerun the
// same command to continue an interrupted run), and retries with
// exponential backoff. -fault injects a deterministic failure schedule
// for exercising those paths:
//
//	buckwild -sig D8M8 -epochs 20 -checkpoint-dir ckpt \
//	    -fault crash@step=50000,corrupt@ckpt=2
//
// SIGINT/SIGTERM cancel the run cleanly: training stops within an
// epoch, the newest checkpoint stays on disk, and a supervised run can
// be resumed later.
//
// -trace records the run's phases (attempts, epochs, checkpoints,
// resumes) as Chrome trace_event JSON loadable in chrome://tracing or
// https://ui.perfetto.dev; "buckwild trace-summary trace.json" prints a
// per-phase wall-clock breakdown of such a file. -series records the
// windowed training time-series (JSON, or CSV with a .csv path). -http
// additionally serves live Prometheus metrics at /metrics.
//
// "buckwild serve" runs the long-lived training-and-inference daemon:
// POST /predict answers off an atomically-swapped immutable model while
// a supervised training loop hot-promotes every checkpoint into
// serving. See serve.go and the README's Serving section.
//
//	buckwild serve -addr :8372 -sig D8M8 -n 1024 -threads 4
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"buckwild"
	"buckwild/internal/obs"
)

// writeSeries dumps a time-series snapshot as CSV (for .csv paths) or
// indented JSON.
func writeSeries(path string, sn *buckwild.SeriesSnapshot) error {
	if strings.HasSuffix(path, ".csv") {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := sn.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return obs.WriteJSON(path, sn)
}

// flightDump, when armed (see -flight), runs before a fatal exit so the
// post-mortem event ring reaches disk even when the run dies.
var flightDump func()

// fatal logs err and exits. Facade errors already carry a "buckwild: "
// prefix, which would stutter with the log prefix; trim it. An
// interrupt (SIGINT/SIGTERM) is not a failure: it exits 130, the
// conventional signal-exit status.
func fatal(err error) {
	if flightDump != nil {
		flightDump()
	}
	if errors.Is(err, context.Canceled) {
		log.Println("interrupted")
		os.Exit(130)
	}
	log.Fatal(strings.TrimPrefix(err.Error(), "buckwild: "))
}

// buildLogger assembles the process logger from the -log-format and
// -log-level flags and tees every warning or worse into the flight
// recorder, so the dump holds the tail of the operational log too.
func buildLogger(format, level string, rec *buckwild.FlightRecorder) *slog.Logger {
	logger, err := buckwild.NewLogger(os.Stderr, format, level)
	if err != nil {
		fatal(err)
	}
	return slog.New(rec.LogHandler(logger.Handler(), slog.LevelWarn))
}

// watchSIGQUIT dumps the flight recorder and a goroutine profile to
// stderr on SIGQUIT (kill -QUIT <pid>) and keeps running — the live
// post-mortem channel. The goroutine dump makes a hung run diagnosable
// from the first signal, without attaching a debugger or sending a
// second one.
func watchSIGQUIT(rec *buckwild.FlightRecorder) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		for range ch {
			fmt.Fprintf(os.Stderr, "buckwild: flight recorder (%d events):\n", rec.EventCount())
			rec.WriteJSON(os.Stderr)
			if prof := pprof.Lookup("goroutine"); prof != nil {
				fmt.Fprintln(os.Stderr, "buckwild: goroutine profile:")
				prof.WriteTo(os.Stderr, 1)
			}
			fmt.Fprintln(os.Stderr)
		}
	}()
}

// resolvedFlags snapshots every flag's effective value — the "resolved
// config" section of a debug bundle. The flag string forms round-trip
// the whole CLI configuration without marshaling facade types.
func resolvedFlags() any {
	m := make(map[string]string)
	flag.VisitAll(func(f *flag.Flag) { m[f.Name] = f.Value.String() })
	return m
}

// traceSummary implements the trace-summary subcommand: a per-phase
// wall-clock breakdown of a -trace output file, followed by a per-track
// breakdown when the trace uses named tracks (per-node cluster
// timelines, per-request serve spans).
func traceSummary(args []string) {
	fs := flag.NewFlagSet("trace-summary", flag.ExitOnError)
	top := fs.Int("top", 0, "show only the N phases (and tracks) with the most total time (0 = all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: buckwild trace-summary [-top N] <trace.json[.gz]>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	// Gzipped traces (a debug bundle's trace.json.gz) are decompressed
	// transparently by the summarizers.
	buf, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	phases, err := obs.SummarizeTrace(bytes.NewReader(buf))
	if err != nil {
		fatal(err)
	}
	if len(phases) == 0 {
		fmt.Println("no complete spans in trace")
		return
	}
	if *top > 0 && len(phases) > *top {
		fmt.Printf("top %d of %d phases by total time:\n", *top, len(phases))
		phases = phases[:*top]
	}
	fmt.Printf("%-10s %-18s %7s %14s %14s %14s %14s\n",
		"category", "phase", "count", "total", "mean", "min", "max")
	for _, p := range phases {
		fmt.Printf("%-10s %-18s %7d %14v %14v %14v %14v\n",
			p.Cat, p.Name, p.Count, p.Total.Round(time.Microsecond),
			p.Mean().Round(time.Microsecond), p.Min.Round(time.Microsecond),
			p.Max.Round(time.Microsecond))
	}
	tracks, err := obs.SummarizeTracks(bytes.NewReader(buf))
	if err != nil {
		fatal(err)
	}
	if len(tracks) <= 1 && (len(tracks) == 0 || tracks[0].Name == "") {
		return // single unnamed track: the per-phase table said it all
	}
	if *top > 0 && len(tracks) > *top {
		// The track table is normally in tid order; truncating only makes
		// sense by weight, so -top reorders it by total time.
		sort.Slice(tracks, func(i, j int) bool { return tracks[i].Total > tracks[j].Total })
		fmt.Printf("\ntop %d of %d tracks by total time:", *top, len(tracks))
		tracks = tracks[:*top]
	}
	fmt.Printf("\n%-6s %-28s %7s %7s %14s\n", "tid", "track", "spans", "flows", "total")
	for _, t := range tracks {
		name := t.Name
		if name == "" {
			name = "(default)"
		}
		fmt.Printf("%-6d %-28s %7d %7d %14v\n",
			t.TID, name, t.Spans, t.Flows, t.Total.Round(time.Microsecond))
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("buckwild: ")
	if len(os.Args) > 1 && os.Args[1] == "trace-summary" {
		traceSummary(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "bundle-summary" {
		bundleSummary(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		serveCmd(os.Args[2:])
		return
	}
	var (
		sig      = flag.String("sig", "D8M8", "DMGC signature (e.g. D8M8, D16M16, D32fM32f, D8i16M8)")
		problem  = flag.String("problem", "logistic", "problem: logistic, linear or svm")
		rounding = flag.String("rounding", "unbiased-shared", "rounding: biased, unbiased-mt, unbiased-xorshift, unbiased-shared")
		n        = flag.Int("n", 512, "model size (elements)")
		m        = flag.Int("m", 10000, "number of training examples")
		sparse   = flag.Bool("sparse", false, "use a sparse dataset")
		density  = flag.Float64("density", 0.03, "sparse nonzero density")
		threads  = flag.Int("threads", 1, "asynchronous workers")
		batch    = flag.Int("batch", 1, "mini-batch size B")
		epochs   = flag.Int("epochs", 10, "training epochs")
		step     = flag.Float64("step", 0, "step size eta (0 = auto: 6/n, a good default for the synthetic generator)")
		decay    = flag.Float64("decay", 1.0, "per-epoch step decay")
		generic  = flag.Bool("generic", false, "use compiler-style generic kernels")
		locked   = flag.Bool("locked", false, "lock every update (the baseline Hogwild! beats)")
		seed     = flag.Uint64("seed", 1, "random seed")
		predict  = flag.Bool("predict", true, "also print the Section 4 performance-model prediction")
		data     = flag.String("data", "", "LIBSVM-format training file (implies -sparse; overrides -n/-m)")
		save     = flag.String("save", "", "write the trained model to this file")
		stats    = flag.Bool("stats", false, "collect and print run counters (steps, writes, staleness, numerical health)")
		report   = flag.String("report", "", "write a JSON run report to this file (implies -stats)")
		healthW  = flag.Bool("health-watch", false, "abort the run on numerical divergence (NaN/Inf loss, excessive saturation rate or rounding-bias drift)")
		httpAddr = flag.String("http", "", "serve /metrics (Prometheus), /debug/obs and /debug/pprof on this address during the run")

		tracePath    = flag.String("trace", "", "write Chrome trace_event JSON of the run's phases to this file (Perfetto-loadable)")
		traceCap     = flag.Int("trace-capacity", 0, "trace ring capacity in spans (0 = default)")
		seriesPath   = flag.String("series", "", "write the windowed training time-series to this file (.csv for CSV, otherwise JSON)")
		seriesBudget = flag.Int("series-budget", 0, "time-series window budget (0 = default)")

		nodes     = flag.Int("nodes", 0, "simulated cluster size; >= 2 trains on a simulated multi-node interconnect (dense only)")
		proto     = flag.String("cluster-protocol", "", "cluster protocol: param-server or all-reduce (with -nodes; default param-server)")
		wireBits  = flag.Uint("wire-bits", 0, "gradient wire precision in bits: 4, 8, 16 or 32 (0 = the signature's C term; with -nodes)")
		staleComp = flag.Float64("staleness-comp", 0, "staleness compensation alpha: stale updates apply eta/(1+alpha*staleness) (with -nodes)")

		logFormat  = flag.String("log-format", "text", "structured log format: text or json")
		logLevel   = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		flightPath = flag.String("flight", "", "write the flight-recorder dump (recent structured events, JSON) here when the run fails; SIGQUIT dumps it to stderr any time")
		bundleDir  = flag.String("bundle-dir", ".", "write anomaly-triggered debug bundles (*.debugbundle.tar.gz: flight ring, trace, series, pprof profiles, stats, config) into this directory; empty disables")
		profDir    = flag.String("profile-dir", "", "continuously capture CPU/heap/goroutine/mutex pprof profiles into a bounded on-disk ring in this directory")
		profEvery  = flag.Duration("profile-interval", 0, "continuous profiler capture cadence (0 = default 30s; with -profile-dir)")

		ckptDir   = flag.String("checkpoint-dir", "", "supervise the run: checkpoint here, resume and retry on failure")
		ckptEvery = flag.Int("checkpoint-every", 1, "checkpoint period in epochs (with -checkpoint-dir)")
		retries   = flag.Int("retries", 3, "max retries after crashes or detected stalls (with -checkpoint-dir)")
		faultSpec = flag.String("fault", "", "deterministic fault schedule, e.g. crash@step=1500,stall@step=900,corrupt@ckpt=1 (with -checkpoint-dir)")
		stallTO   = flag.Duration("stall-timeout", 0, "cancel and retry an attempt with no progress for this long, e.g. 30s (with -checkpoint-dir)")
	)
	flag.Parse()

	rec := buckwild.NewFlightRecorder(0)
	logger := buildLogger(*logFormat, *logLevel, rec)
	watchSIGQUIT(rec)
	if *flightPath != "" {
		flightDump = func() {
			if err := rec.DumpFile(*flightPath); err != nil {
				log.Printf("flight dump: %v", err)
				return
			}
			log.Printf("flight recorder dumped to %s (%d events)", *flightPath, rec.EventCount())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The health watchdog stops a diverging run by cancelling this cause
	// context; the training call then returns the diagnostic error.
	var healthCancel context.CancelCauseFunc
	if *healthW {
		ctx, healthCancel = context.WithCancelCause(ctx)
	}

	eta := *step
	if eta == 0 {
		eta = 6 / float64(*n)
		if *sparse {
			eta = 6 / (*density * float64(*n))
		}
	}

	cfg := buckwild.Config{
		Signature:      *sig,
		Problem:        buckwild.Problem(*problem),
		Rounding:       buckwild.Rounding(*rounding),
		GenericKernels: *generic,
		Locked:         *locked,
		Threads:        *threads,
		MiniBatch:      *batch,
		StepSize:       float32(eta),
		StepDecay:      float32(*decay),
		Epochs:         *epochs,
		Seed:           *seed,
		NumHealth:      *stats || *report != "" || *healthW || *httpAddr != "",
		Logger:         logger,
		Flight:         rec,
		Context:        ctx,
		Cluster: buckwild.ClusterConfig{
			Nodes:          *nodes,
			Protocol:       buckwild.ClusterProtocol(*proto),
			WireBits:       *wireBits,
			ErrorFeedback:  true,
			BatchPerNode:   *batch,
			StalenessAlpha: *staleComp,
		},
	}
	if *tracePath != "" {
		cfg.Tracer = buckwild.NewTracer(*traceCap)
	}
	if *seriesPath != "" || *report != "" || *httpAddr != "" || *bundleDir != "" {
		// -http and -bundle-dir imply a live time-series: the /debug/dash
		// charts and a debug bundle's series section need the windowed data
		// even when no -series file was asked for — and bundles are on by
		// default, so a bare run carries the series at its default budget.
		cfg.TimeSeries = buckwild.NewSeries(*seriesBudget)
	}
	var clusterLive *buckwild.ClusterMetrics
	if *httpAddr != "" && *nodes >= 2 {
		clusterLive = &buckwild.ClusterMetrics{}
		cfg.Cluster.LiveMetrics = clusterLive
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}

	var profiler *buckwild.Profiler
	if *profDir != "" {
		var err error
		profiler, err = buckwild.NewProfiler(buckwild.ProfileConfig{
			Dir: *profDir, Interval: *profEvery, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		profiler.Start()
		defer profiler.Stop()
	}
	var bundler *buckwild.Bundler
	if *bundleDir != "" {
		var err error
		bundler, err = buckwild.NewBundler(buckwild.BundleConfig{
			Dir: *bundleDir, Flight: rec, Tracer: cfg.Tracer,
			Series: cfg.TimeSeries, Profiler: profiler, Logger: logger,
		})
		if err != nil {
			fatal(err)
		}
		bundler.AddSection("config", resolvedFlags)
		if clusterLive != nil {
			bundler.AddSection("stats/cluster", func() any { return clusterLive.Snapshot() })
		}
		cfg.Bundle = bundler
	}

	supervised := *ckptDir != ""
	if *nodes >= 2 && supervised {
		fatal(fmt.Errorf("-checkpoint-dir does not support cluster runs (drop -nodes or the checkpoint dir)"))
	}
	var plan *buckwild.FaultPlan
	if *faultSpec != "" {
		if !supervised {
			fatal(fmt.Errorf("-fault requires -checkpoint-dir (faults are injected into supervised runs)"))
		}
		var err error
		plan, err = buckwild.ParseFaultPlan(*faultSpec)
		if err != nil {
			fatal(err)
		}
	}
	rc := buckwild.RunConfig{
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		MaxRetries:      *retries,
		StallTimeout:    *stallTO,
		Faults:          plan,
	}

	// The supervised and bare paths return the same Result; the
	// supervised one also yields the supervisor's report.
	var supRep *buckwild.RunReport
	trainDense := func(ds *buckwild.DenseDataset) (*buckwild.Result, error) {
		if !supervised {
			return buckwild.Train(cfg, ds)
		}
		rep, err := buckwild.RunDense(cfg, rc, ds)
		if err != nil {
			return nil, err
		}
		supRep = rep
		return rep.Result, nil
	}
	trainSparse := func(ds *buckwild.SparseDataset) (*buckwild.Result, error) {
		if !supervised {
			return buckwild.Train(cfg, ds)
		}
		rep, err := buckwild.RunSparse(cfg, rc, ds)
		if err != nil {
			return nil, err
		}
		supRep = rep
		return rep.Result, nil
	}

	var live *obs.LiveMetrics
	if *httpAddr != "" {
		live = &obs.LiveMetrics{Series: cfg.TimeSeries, Cluster: clusterLive}
		cfg.Hooks = live
		dash := buckwild.NewDash(buckwild.DashConfig{
			Series:  cfg.TimeSeries,
			Cluster: clusterLive.Snapshot,
		})
		extra := map[string]http.Handler{
			"/debug/flight":      rec,
			"/debug/dash":        dash,
			"/debug/dash/events": http.HandlerFunc(dash.Events),
		}
		if bundler != nil {
			extra["/debug/bundle"] = bundler
		}
		srv, err := obs.ServeDebug(*httpAddr, live, extra)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Printf("live metrics on http://%s/metrics, dashboard on /debug/dash, debug endpoints on /debug/obs, /debug/flight, /debug/bundle and /debug/pprof\n", srv.Addr)
	}
	if *healthW {
		// The watchdog wraps whatever hooks are already installed (live
		// metrics included) so it adds detection without hiding them, and
		// triggers a debug bundle the moment it trips.
		cfg.Hooks = &buckwild.HealthWatchdog{Cancel: healthCancel, Bundle: bundler, Next: cfg.Hooks}
	}
	if (*stats || *report != "") && cfg.Hooks == nil {
		// Result.Stats is wanted but no live consumer is installed; the
		// nop hook alone switches the engine's counters on.
		cfg.Hooks = buckwild.NopHooks{}
	}

	var res *buckwild.Result
	if *data != "" {
		ds, err := buckwild.LoadLibSVM(*data, *sig)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d examples, %d features from %s\n", ds.Len(), ds.N, *data)
		if *step == 0 {
			avgNNZ := float64(ds.NNZ()) / float64(ds.Len())
			cfg.StepSize = float32(6 / avgNNZ)
		}
		res, err = trainSparse(ds)
		if err != nil {
			fatal(err)
		}
	} else if *sparse {
		ds, err := buckwild.GenerateSparse(*sig, *n, *m, *density, *seed)
		if err != nil {
			fatal(err)
		}
		res, err = trainSparse(ds)
		if err != nil {
			fatal(err)
		}
	} else {
		ds, err := buckwild.GenerateDense(*sig, *n, *m, *seed)
		if err != nil {
			fatal(err)
		}
		res, err = trainDense(ds)
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("signature %s, %s, %d threads, B=%d, %s rounding\n",
		*sig, *problem, *threads, *batch, *rounding)
	fmt.Printf("%-8s%s\n", "epoch", "train loss")
	for e, l := range res.TrainLoss {
		fmt.Printf("%-8d%.6f\n", e, l)
	}
	if c := res.Cluster; c != nil {
		fmt.Printf("\n%d updates in %.4f simulated seconds (%.3g examples/sim-s)\n",
			res.Steps, c.SimSeconds, c.ExamplesPerSimSec)
		fmt.Printf("cluster: %d nodes, %s protocol, C%d wire\n", c.Nodes, c.Protocol, c.WireBits)
		fmt.Printf("  %d messages (%d gradient pushes, %d model pulls): %d wire bytes = %d header + %d gradient + %d model\n",
			c.Messages, c.GradPushes, c.ModelPulls,
			c.WireBytes, c.HeaderBytes, c.GradBytes, c.ModelBytes)
		fmt.Printf("  simulated compute %.4fs, comm %.4fs, %.4fs hidden by overlap\n",
			c.ComputeSeconds, c.CommSeconds, c.OverlapSavedSeconds)
		fmt.Printf("  update staleness: mean %.2f, p99 %.0f, max %d; %d compensated updates\n",
			c.Staleness.Mean(), c.Staleness.Quantile(0.99), c.Staleness.Max, c.CompensatedUpdates)
		for _, nd := range c.PerNode {
			fmt.Printf("  node %d: %d updates, %d wire bytes, compute %.4fs, comm %.4fs, staleness p50 %.0f p99 %.0f\n",
				nd.Node, nd.Updates, nd.WireBytes, nd.ComputeSeconds, nd.CommSeconds,
				nd.StalenessP50, nd.StalenessP99)
		}
	} else {
		fmt.Printf("\n%d updates in %v (%.1f M numbers/s on this host)\n",
			res.Steps, res.Elapsed.Round(1e6), res.NumbersPerSec/1e6)
	}

	if live != nil {
		var sup *buckwild.SupervisorStats
		if supRep != nil {
			sup = &supRep.Stats
		}
		live.SetFinal(res.Stats, sup)
	}
	if *tracePath != "" {
		if err := cfg.Tracer.WriteTraceFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (%d spans recorded; load in chrome://tracing or ui.perfetto.dev)\n",
			*tracePath, cfg.Tracer.SpanCount())
	}
	if *seriesPath != "" && res.Series != nil {
		if err := writeSeries(*seriesPath, res.Series); err != nil {
			fatal(err)
		}
		fmt.Printf("time-series written to %s (%d windows of %d epochs)\n",
			*seriesPath, len(res.Series.Windows), res.Series.EpochsPerWindow)
	}
	if win := res.Series.Final(); win != nil {
		fmt.Printf("final window: epochs (%d,%d], %.0f steps/s, loss %.6f, staleness mean %.2f\n",
			win.StartEpoch, win.EndEpoch, win.StepsPerSec, win.Loss, win.Staleness.Mean())
	}

	if res.Stats != nil {
		s := res.Stats
		fmt.Printf("run counters: %d steps, %d mutex waits, %d batch flushes\n",
			s.Steps, s.MutexWaits, s.BatchFlushes)
		for kind, n := range s.ModelWrites {
			fmt.Printf("  model writes (%s): %d\n", kind, n)
		}
		fmt.Printf("  staleness over %d sampled steps: mean %.2f, p50 %.0f, p99 %.0f, max %d writes\n",
			s.Staleness.Count, s.Staleness.Mean(), s.Staleness.Quantile(0.5),
			s.Staleness.Quantile(0.99), s.Staleness.Max)
	}
	if h := res.NumStats; h != nil {
		fmt.Printf("numerical health: %d saturations, %d underflows, rounding bias %+.4g quanta over %d writes (%s)\n",
			h.Saturations, h.Underflows, h.Bias.MeanQuanta(), h.Bias.Samples, h.Bias.Mode)
		sites := make([]string, 0, len(h.SatBySite))
		for site := range h.SatBySite {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		for _, site := range sites {
			fmt.Printf("  saturations at %s: %d\n", site, h.SatBySite[site])
		}
		if w := h.Weights; w != nil {
			fmt.Printf("  weights (epoch %d): range [%.4g, %.4g], mean %.4g, %d at format bounds",
				w.Epoch, w.Min, w.Max, w.Mean, w.AtBounds)
			if w.NonFinite > 0 {
				fmt.Printf(", %d non-finite", w.NonFinite)
			}
			fmt.Println()
		}
	}
	if supRep != nil {
		s := supRep.Stats
		fmt.Printf("supervisor: %d attempts (%d retries), %d checkpoints (%d bytes), %d resumes\n",
			s.Attempts, s.Retries, s.Checkpoints, s.CheckpointBytes, s.Resumes)
		if s.InjectedCrashes+s.InjectedStalls+s.CorruptedCheckpoints > 0 {
			fmt.Printf("  injected faults: %d crashes, %d stalls, %d corrupted checkpoint writes\n",
				s.InjectedCrashes, s.InjectedStalls, s.CorruptedCheckpoints)
		}
		if s.CheckpointFallbacks > 0 {
			fmt.Printf("  checkpoint fallbacks past corrupt files: %d\n", s.CheckpointFallbacks)
		}
		if s.StallsDetected > 0 {
			fmt.Printf("  stalls detected: %d, degradations: %d (final threads %d)\n",
				s.StallsDetected, s.Degradations, s.FinalThreads)
		}
		fmt.Printf("  newest checkpoint: %s\n", supRep.Checkpoint)
	}
	if *report != "" {
		out := struct {
			Signature    string                    `json:"signature"`
			Problem      string                    `json:"problem"`
			Rounding     string                    `json:"rounding"`
			Threads      int                       `json:"threads"`
			MiniBatch    int                       `json:"mini_batch"`
			Epochs       int                       `json:"epochs"`
			TrainLoss    []float64                 `json:"train_loss"`
			Stats        *buckwild.RunStats        `json:"stats"`
			StalenessP50 float64                   `json:"staleness_p50"`
			StalenessP99 float64                   `json:"staleness_p99"`
			Series       *buckwild.SeriesSnapshot  `json:"series,omitempty"`
			Cluster      *buckwild.ClusterStats    `json:"cluster,omitempty"`
			Supervisor   *buckwild.SupervisorStats `json:"supervisor,omitempty"`
			Checkpoint   string                    `json:"checkpoint,omitempty"`
		}{Signature: *sig, Problem: cfg.Problem.String(), Rounding: *rounding,
			Threads: *threads, MiniBatch: *batch, Epochs: *epochs,
			TrainLoss: res.TrainLoss, Stats: res.Stats, Series: res.Series,
			Cluster: res.Cluster}
		if res.Stats != nil {
			out.StalenessP50 = res.Stats.Staleness.Quantile(0.5)
			out.StalenessP99 = res.Stats.Staleness.Quantile(0.99)
		}
		if supRep != nil {
			out.Supervisor = &supRep.Stats
			out.Checkpoint = supRep.Checkpoint
		}
		if err := obs.WriteJSON(*report, out); err != nil {
			fatal(err)
		}
		fmt.Printf("run report written to %s\n", *report)
	}

	if *save != "" {
		if err := buckwild.SaveModelFile(*save, *sig, res.W); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s\n", *save)
	}

	if *predict {
		parsed, err := buckwild.ParseSignature(*sig)
		if err == nil {
			if gnps, err := buckwild.PredictThroughput(parsed, *n, *threads); err == nil {
				fmt.Printf("performance model (paper Table 2 base): %.3f GNPS on the reference Xeon\n", gnps)
			}
		}
	}
}
