package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"buckwild"
)

// bundleSummary implements the bundle-summary subcommand: a
// human-readable triage report of an anomaly-triggered debug bundle,
// printed without any external tooling — what tripped, the tail of the
// flight ring, the final series window and the embedded evidence
// inventory.
func bundleSummary(args []string) {
	fs := flag.NewFlagSet("bundle-summary", flag.ExitOnError)
	events := fs.Int("events", 15, "flight events to print (most recent; 0 = all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: buckwild bundle-summary [-events N] <file.debugbundle.tar.gz>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	info, err := buckwild.ReadBundle(f)
	if err != nil {
		fatal(err)
	}

	m := info.Manifest
	fmt.Printf("debug bundle %s\n", fs.Arg(0))
	fmt.Printf("  reason:   %s\n", m.Reason)
	if m.Detail != "" {
		fmt.Printf("  detail:   %s\n", m.Detail)
	}
	fmt.Printf("  taken:    %s\n", m.Time.Format(time.RFC3339))
	fmt.Printf("  process:  pid %d on %s (%s %s/%s, %d cpus)\n",
		m.PID, orDash(m.Hostname), m.Go, m.OS, m.Arch, m.NumCPU)
	if m.Suppressed > 0 {
		fmt.Printf("  note:     %d earlier trigger(s) suppressed by the bundle cooldown\n", m.Suppressed)
	}

	fmt.Printf("\ncontents (%d entries):\n", len(info.Entries))
	for _, e := range info.Entries {
		fmt.Printf("  %-28s %9d bytes\n", e.Name, e.Bytes)
	}
	if len(m.Profiles) > 0 {
		fmt.Println("\nembedded pprof profiles (go tool pprof <extracted file>):")
		for _, p := range m.Profiles {
			fmt.Printf("  %-10s %-28s %9d bytes  captured %s\n",
				p.Kind, p.Path, p.Bytes, p.Time.Format(time.RFC3339))
		}
	}

	if fl := info.Flight; fl != nil {
		fmt.Printf("\nflight ring: %d events recorded", fl.Recorded)
		if fl.Dropped > 0 {
			fmt.Printf(" (%d dropped by ring wrap)", fl.Dropped)
		}
		fmt.Println()
		evs := fl.Events
		if *events > 0 && len(evs) > *events {
			fmt.Printf("last %d of %d retained:\n", *events, len(evs))
			evs = evs[len(evs)-*events:]
		}
		for _, ev := range evs {
			fmt.Printf("  %s %-8s %-18s %s\n",
				ev.Time.Format("15:04:05.000"), ev.Component, ev.Kind, ev.Message)
		}
	}

	if sn := info.Series; sn != nil {
		if win := sn.Final(); win != nil {
			fmt.Printf("\nfinal series window: epochs (%d,%d], loss %.6g, %.0f steps/s, staleness mean %.2f\n",
				win.StartEpoch, win.EndEpoch, win.Loss, win.StepsPerSec, win.Staleness.Mean())
		}
		fmt.Printf("series: %d windows of %d epochs each\n", len(sn.Windows), sn.EpochsPerWindow)
	}

	if raw, ok := info.Sections["config"]; ok {
		var cfg map[string]string
		if json.Unmarshal(raw, &cfg) == nil && len(cfg) > 0 {
			fmt.Printf("\nresolved config (%d flags; non-defaulted shown by value):\n", len(cfg))
			keys := make([]string, 0, len(cfg))
			for k := range cfg {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if v := cfg[k]; v != "" && v != "false" && v != "0" && v != "0s" {
					fmt.Printf("  -%s=%s\n", k, v)
				}
			}
		}
	}
	if names := otherSections(info); len(names) > 0 {
		fmt.Printf("\nother sections: %v\n", names)
	}
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// otherSections lists the bundle's JSON sections not already rendered
// above (stats/run, stats/cluster, stats/serve, ...).
func otherSections(info *buckwild.BundleInfo) []string {
	var names []string
	for name := range info.Sections {
		if name != "config" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
